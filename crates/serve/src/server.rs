//! The `mis-serve` daemon: a std-only HTTP job server over the
//! content-addressed experiment cache.
//!
//! Architecture: one non-blocking accept loop, a thread per connection
//! for request handling, and a bounded pool of worker threads that
//! drain the [`FairQueue`]. Warm submissions are answered inline by the
//! accept path (a cache `peek`, never a simulator run); only misses
//! reach the workers. Shutdown (signal or [`ServeHandle::shutdown`])
//! flips a drain flag: new submissions get `503`, in-flight and queued
//! jobs complete, then the server writes the aggregate `manifest.json`
//! and returns.

use crate::api::{ClientStats, JobStatus, JobView, StatsView};
use crate::http::{
    finish_chunks, respond_error, respond_json, start_chunked, write_chunk, Request,
};
use crate::jobs::{execute, peek_outcome, plan, JobSpec};
use crate::queue::FairQueue;
use crate::signal;
use mis_experiments::orchestrator::CACHE_SCHEMA;
use mis_experiments::{Orchestrator, RunManifest, UnitRecord};
use std::collections::HashMap;
use std::io::{self, BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// How long the accept loop sleeps between polls when idle, and the
/// worker/streaming condvar wait granularity.
const POLL: Duration = Duration::from_millis(25);

/// Configuration for [`Server::bind`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address, e.g. `"127.0.0.1:7700"`; port `0` picks a free
    /// port (read it back via [`Server::local_addr`]).
    pub addr: String,
    /// Cache directory shared with the CLI's `--cache-dir`. `None`
    /// resolves to `mis-serve-cache` under the system temp dir.
    pub cache_dir: Option<PathBuf>,
    /// Worker threads executing cache misses.
    pub workers: usize,
    /// Maximum queued (not yet running) jobs before `429`.
    pub queue_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:7700".to_string(),
            cache_dir: None,
            workers: 2,
            queue_capacity: 64,
        }
    }
}

/// What one run of the daemon accomplished — returned by [`Server::run`]
/// after a graceful drain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeSummary {
    /// Jobs executed by workers (cache misses and failures).
    pub jobs_done: u64,
    /// Submissions answered from the cache.
    pub hits: u64,
    /// Submissions that required simulator work.
    pub misses: u64,
}

/// A clonable handle for requesting shutdown from another thread.
#[derive(Debug, Clone)]
pub struct ServeHandle {
    shared: Arc<Shared>,
}

impl ServeHandle {
    /// Begin a graceful drain: refuse new submissions, finish queued and
    /// running jobs, then let [`Server::run`] return.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.queue_cv.notify_all();
    }
}

/// The bound-but-not-yet-running daemon. [`Server::run`] consumes it and
/// blocks until drained.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
    workers: usize,
}

/// One tracked job.
#[derive(Debug)]
struct JobEntry {
    view: JobView,
    spec: JobSpec,
    stream: Arc<StreamBuf>,
}

/// Replayable live-stream buffer: workers append frames, any number of
/// `GET /jobs/:id/stream` readers follow from offset 0.
#[derive(Debug, Default)]
struct StreamBuf {
    state: Mutex<StreamState>,
    cv: Condvar,
}

#[derive(Debug, Default)]
struct StreamState {
    bytes: Vec<u8>,
    done: bool,
}

impl StreamBuf {
    fn append(&self, frame: &[u8]) {
        let mut state = self.state.lock().expect("no poisoning");
        state.bytes.extend_from_slice(frame);
        self.cv.notify_all();
    }

    fn finish(&self) {
        let mut state = self.state.lock().expect("no poisoning");
        state.done = true;
        self.cv.notify_all();
    }

    /// Bytes past `offset`, or `None` once the stream is done and fully
    /// consumed. Blocks (with a poll granularity) until either appears.
    fn next_after(&self, offset: usize) -> Option<Vec<u8>> {
        let mut state = self.state.lock().expect("no poisoning");
        loop {
            if state.bytes.len() > offset {
                return Some(state.bytes[offset..].to_vec());
            }
            if state.done {
                return None;
            }
            let (next, _) = self.cv.wait_timeout(state, POLL).expect("no poisoning");
            state = next;
        }
    }
}

#[derive(Debug, Default)]
struct Stats {
    submitted: u64,
    hits: u64,
    misses: u64,
    failed: u64,
    rejected: u64,
    total_cost: u64,
    total_wall_ms: f64,
    /// client id -> (submitted, hits)
    clients: HashMap<String, (u64, u64)>,
    /// Per-unit records merged from every job's orchestrator, for the
    /// aggregate `manifest.json`.
    units: Vec<UnitRecord>,
}

#[derive(Debug)]
struct Shared {
    cache_dir: PathBuf,
    jobs: Mutex<HashMap<String, JobEntry>>,
    queue: Mutex<FairQueue>,
    queue_cv: Condvar,
    shutdown: AtomicBool,
    running: AtomicUsize,
    jobs_done: AtomicU64,
    stats: Mutex<Stats>,
}

impl Shared {
    fn draining(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst) || signal::requested()
    }

    fn orchestrator(&self) -> Orchestrator {
        Orchestrator::with_cache_dir(&self.cache_dir)
    }
}

impl Server {
    /// Bind the listen socket and prepare shared state. No threads start
    /// until [`Server::run`].
    pub fn bind(cfg: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let cache_dir = cfg
            .cache_dir
            .unwrap_or_else(|| std::env::temp_dir().join("mis-serve-cache"));
        let shared = Arc::new(Shared {
            cache_dir,
            jobs: Mutex::new(HashMap::new()),
            queue: Mutex::new(FairQueue::new(cfg.queue_capacity)),
            queue_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            running: AtomicUsize::new(0),
            jobs_done: AtomicU64::new(0),
            stats: Mutex::new(Stats::default()),
        });
        Ok(Server {
            listener,
            shared,
            workers: cfg.workers.max(1),
        })
    }

    /// The bound address (useful with port `0`).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle for shutting the server down from another thread.
    pub fn handle(&self) -> ServeHandle {
        ServeHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Serve until drained: accept connections, execute jobs, and — once
    /// shutdown is requested and the last job finishes — write the
    /// aggregate `manifest.json` and return the run's [`ServeSummary`].
    pub fn run(self) -> io::Result<ServeSummary> {
        let workers: Vec<_> = (0..self.workers)
            .map(|_| {
                let shared = Arc::clone(&self.shared);
                thread::spawn(move || worker_loop(&shared))
            })
            .collect();

        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let shared = Arc::clone(&self.shared);
                    thread::spawn(move || {
                        let _ = handle_connection(stream, &shared);
                    });
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if self.shared.draining() {
                        let queued = self.shared.queue.lock().expect("no poisoning").len();
                        if queued == 0 && self.shared.running.load(Ordering::SeqCst) == 0 {
                            break;
                        }
                    }
                    thread::sleep(POLL);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }

        // Propagate the drain to workers (a signal-initiated drain never
        // set the internal flag) and collect them.
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.queue_cv.notify_all();
        for worker in workers {
            let _ = worker.join();
        }
        // Brief linger so streaming readers of just-finished jobs can
        // flush their final chunks before the process exits.
        thread::sleep(Duration::from_millis(250));

        let stats = self.shared.stats.lock().expect("no poisoning");
        write_aggregate_manifest(&self.shared.cache_dir, &stats);
        Ok(ServeSummary {
            jobs_done: self.shared.jobs_done.load(Ordering::SeqCst),
            hits: stats.hits,
            misses: stats.misses,
        })
    }
}

/// Merge every job's unit records into one deterministic manifest at
/// `<cache-dir>/manifest.json` — the same cost ledger format the CLI's
/// orchestrator writes, summed across clients.
fn write_aggregate_manifest(cache_dir: &std::path::Path, stats: &Stats) {
    let mut units = stats.units.clone();
    units.sort_by(|a, b| (&a.experiment, &a.cell, &a.hash).cmp(&(&b.experiment, &b.cell, &b.hash)));
    let manifest = RunManifest {
        schema: CACHE_SCHEMA,
        seed: 0,
        quick: false,
        units,
    };
    if std::fs::create_dir_all(cache_dir).is_ok() {
        if let Ok(json) = serde_json::to_vec_pretty(&manifest) {
            let _ = std::fs::write(cache_dir.join("manifest.json"), json);
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let popped = {
            let mut queue = shared.queue.lock().expect("no poisoning");
            loop {
                if let Some(next) = queue.pop() {
                    // Visible as "running" before the queue lock drops, so
                    // the drain check never sees an empty queue with this
                    // job in limbo.
                    shared.running.fetch_add(1, Ordering::SeqCst);
                    break Some(next);
                }
                if shared.draining() {
                    break None;
                }
                let (next, _) = shared
                    .queue_cv
                    .wait_timeout(queue, POLL)
                    .expect("no poisoning");
                queue = next;
            }
        };
        let Some((_client, job_id)) = popped else {
            return;
        };
        run_job(shared, &job_id);
        shared.running.fetch_sub(1, Ordering::SeqCst);
        shared.queue_cv.notify_all();
    }
}

/// Execute one queued job and publish its result.
fn run_job(shared: &Shared, job_id: &str) {
    let (spec, stream) = {
        let mut jobs = shared.jobs.lock().expect("no poisoning");
        let Some(entry) = jobs.get_mut(job_id) else {
            return;
        };
        entry.view.status = JobStatus::Running;
        (entry.spec.clone(), Arc::clone(&entry.stream))
    };

    let traced = matches!(
        spec.request,
        crate::api::JobRequest::Sim { trace: true, .. }
    );
    let (frames, drainer) = if traced {
        let (tx, rx) = std::sync::mpsc::channel::<Vec<u8>>();
        let buf = Arc::clone(&stream);
        let drainer = thread::spawn(move || {
            for frame in rx {
                buf.append(&frame);
            }
        });
        (Some(tx), Some(drainer))
    } else {
        (None, None)
    };

    let orch = shared.orchestrator();
    let started = Instant::now();
    let result = catch_unwind(AssertUnwindSafe(|| execute(&orch, &spec, frames)));
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;
    if let Some(drainer) = drainer {
        let _ = drainer.join();
    }
    stream.finish();

    let outcome = match result {
        Ok(Ok(payload)) => Ok(payload),
        Ok(Err(msg)) => Err(msg),
        Err(panic) => Err(panic_message(panic.as_ref())),
    };
    let hit = orch.misses() == 0 && orch.hits() > 0;
    let cost = orch.total_cost();
    let manifest_units = orch.manifest().units;

    // Stats first, then the publicly visible status flip: a client that
    // polls its job to `Done` and immediately reads `GET /stats` must see
    // the job already accounted for.
    {
        let mut stats = shared.stats.lock().expect("no poisoning");
        match &outcome {
            Ok(_) if hit => stats.hits += 1,
            Ok(_) => stats.misses += 1,
            Err(_) => stats.failed += 1,
        }
        stats.total_cost += cost;
        stats.total_wall_ms += wall_ms;
        stats.units.extend(manifest_units);
    }
    shared.jobs_done.fetch_add(1, Ordering::SeqCst);
    {
        let mut jobs = shared.jobs.lock().expect("no poisoning");
        if let Some(entry) = jobs.get_mut(job_id) {
            entry.view.wall_ms = wall_ms;
            entry.view.cost = cost;
            entry.view.hit = hit;
            match &outcome {
                Ok(payload) => {
                    entry.view.status = JobStatus::Done;
                    entry.view.payload = Some(payload.clone());
                }
                Err(msg) => {
                    entry.view.status = JobStatus::Failed;
                    entry.view.error = Some(msg.clone());
                }
            }
        }
    }
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        format!("job panicked: {s}")
    } else if let Some(s) = panic.downcast_ref::<String>() {
        format!("job panicked: {s}")
    } else {
        "job panicked".to_string()
    }
}

fn handle_connection(stream: TcpStream, shared: &Shared) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let Some(request) = Request::read_from(&mut reader)? else {
        return Ok(());
    };
    route(&request, &mut writer, shared)
}

fn route(request: &Request, writer: &mut BufWriter<TcpStream>, shared: &Shared) -> io::Result<()> {
    let path = request.path.trim_end_matches('/');
    match (request.method.as_str(), path) {
        ("POST", "/jobs") => handle_submit(request, writer, shared),
        ("GET", "/stats") => handle_stats(writer, shared),
        ("GET", p) if p.starts_with("/jobs/") && p.ends_with("/stream") => {
            let id = p
                .trim_start_matches("/jobs/")
                .trim_end_matches("/stream")
                .trim_end_matches('/');
            handle_stream(id, writer, shared)
        }
        ("GET", p) if p.starts_with("/jobs/") => {
            let id = p.trim_start_matches("/jobs/");
            handle_job(id, writer, shared)
        }
        _ => respond_error(writer, 404, "no such endpoint"),
    }
}

fn handle_submit(
    request: &Request,
    writer: &mut BufWriter<TcpStream>,
    shared: &Shared,
) -> io::Result<()> {
    if shared.draining() {
        return respond_error(writer, 503, "server is draining; not accepting new jobs");
    }
    let parsed: Result<crate::api::JobRequest, _> = serde_json::from_slice(&request.body);
    let job_request = match parsed {
        Ok(r) => r,
        Err(e) => return respond_error(writer, 400, &format!("malformed job request: {e}")),
    };
    let spec = match plan(&job_request) {
        Ok(s) => s,
        Err(msg) => return respond_error(writer, 400, &msg),
    };
    let id = spec.id();
    let client = request.header("x-client").unwrap_or("anon").to_string();
    {
        let mut stats = shared.stats.lock().expect("no poisoning");
        stats.submitted += 1;
        stats.clients.entry(client.clone()).or_default().0 += 1;
    }

    // Re-submission of a job this server already tracks.
    {
        let mut jobs = shared.jobs.lock().expect("no poisoning");
        if let Some(entry) = jobs.get(&id) {
            match entry.view.status {
                JobStatus::Done => {
                    let mut view = entry.view.clone();
                    view.hit = true; // answered without new simulator work
                    drop(jobs);
                    let mut stats = shared.stats.lock().expect("no poisoning");
                    stats.hits += 1;
                    stats.clients.entry(client).or_default().1 += 1;
                    drop(stats);
                    return respond_json(writer, 200, &view);
                }
                JobStatus::Queued | JobStatus::Running => {
                    let view = entry.view.clone();
                    drop(jobs);
                    return respond_json(writer, 202, &view);
                }
                // A failed job may be retried: forget it and fall through.
                JobStatus::Failed => {
                    jobs.remove(&id);
                }
            }
        }
    }

    // Content-addressed fast path: answer warm submissions inline.
    let started = Instant::now();
    let orch = shared.orchestrator();
    if let Some(payload) = peek_outcome(&orch, &spec) {
        let wall_ms = started.elapsed().as_secs_f64() * 1e3;
        let view = JobView {
            id: id.clone(),
            status: JobStatus::Done,
            hit: true,
            wall_ms,
            cost: 0,
            payload: Some(payload),
            error: None,
        };
        let stream = Arc::new(StreamBuf::default());
        stream.finish(); // hits have no live frames
        let mut jobs = shared.jobs.lock().expect("no poisoning");
        jobs.insert(
            id,
            JobEntry {
                view: view.clone(),
                spec,
                stream,
            },
        );
        drop(jobs);
        let mut stats = shared.stats.lock().expect("no poisoning");
        stats.hits += 1;
        stats.total_wall_ms += wall_ms;
        stats.units.extend(orch.manifest().units);
        stats.clients.entry(client).or_default().1 += 1;
        drop(stats);
        return respond_json(writer, 200, &view);
    }

    // Cold: enqueue for the worker pool.
    let view = JobView {
        id: id.clone(),
        status: JobStatus::Queued,
        hit: false,
        wall_ms: 0.0,
        cost: 0,
        payload: None,
        error: None,
    };
    {
        let mut jobs = shared.jobs.lock().expect("no poisoning");
        jobs.insert(
            id.clone(),
            JobEntry {
                view: view.clone(),
                spec,
                stream: Arc::new(StreamBuf::default()),
            },
        );
    }
    let enqueued = {
        let mut queue = shared.queue.lock().expect("no poisoning");
        queue.push(&client, id.clone())
    };
    match enqueued {
        Ok(()) => {
            shared.queue_cv.notify_all();
            respond_json(writer, 202, &view)
        }
        Err(msg) => {
            shared.jobs.lock().expect("no poisoning").remove(&id);
            shared.stats.lock().expect("no poisoning").rejected += 1;
            respond_error(writer, 429, &msg)
        }
    }
}

fn handle_job(id: &str, writer: &mut BufWriter<TcpStream>, shared: &Shared) -> io::Result<()> {
    let view = {
        let jobs = shared.jobs.lock().expect("no poisoning");
        jobs.get(id).map(|entry| entry.view.clone())
    };
    match view {
        Some(view) => respond_json(writer, 200, &view),
        None => respond_error(writer, 404, "unknown job id"),
    }
}

fn handle_stream(id: &str, writer: &mut BufWriter<TcpStream>, shared: &Shared) -> io::Result<()> {
    let stream = {
        let jobs = shared.jobs.lock().expect("no poisoning");
        jobs.get(id).map(|entry| Arc::clone(&entry.stream))
    };
    let Some(stream) = stream else {
        return respond_error(writer, 404, "unknown job id");
    };
    start_chunked(writer, 200)?;
    let mut offset = 0usize;
    while let Some(chunk) = stream.next_after(offset) {
        offset += chunk.len();
        write_chunk(writer, &chunk)?;
    }
    finish_chunks(writer)
}

fn handle_stats(writer: &mut BufWriter<TcpStream>, shared: &Shared) -> io::Result<()> {
    let (queued, running, draining) = (
        shared.queue.lock().expect("no poisoning").len() as u64,
        shared.running.load(Ordering::SeqCst) as u64,
        shared.draining(),
    );
    let stats = shared.stats.lock().expect("no poisoning");
    let mut clients: Vec<ClientStats> = stats
        .clients
        .iter()
        .map(|(client, (submitted, hits))| ClientStats {
            client: client.clone(),
            submitted: *submitted,
            hits: *hits,
        })
        .collect();
    clients.sort_by(|a, b| a.client.cmp(&b.client));
    let view = StatsView {
        submitted: stats.submitted,
        hits: stats.hits,
        misses: stats.misses,
        failed: stats.failed,
        rejected: stats.rejected,
        queued,
        running,
        total_cost: stats.total_cost,
        total_wall_ms: stats.total_wall_ms,
        draining,
        clients,
    };
    drop(stats);
    respond_json(writer, 200, &view)
}
