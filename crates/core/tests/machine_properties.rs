//! Property-based tests of the sub-protocol machines' scheduling
//! invariants: every machine must act only within its window, sleep only
//! forward, and account for exactly the awake rounds the lemmas claim.

use proptest::prelude::*;
use radio_mis::backoff::{backoff_window, DecayReceiver, DecaySender, RecEBackoff, SndEBackoff};
use radio_mis::competition::Competition;
use radio_mis::low_degree::LowDegreeInstance;
use radio_mis::params::{LowDegreeParams, NoCdParams};
use radio_netsim::{Action, Feedback, Message, NodeRng};
use rand::{Rng, SeedableRng};

/// Drives a machine's `act` through its window with scripted feedback;
/// returns (awake rounds, transmit rounds, rounds visited in order).
fn drive<M>(
    m: &mut M,
    act: fn(&mut M, u64) -> Action,
    feedback: fn(&mut M, u64, Feedback),
    start: u64,
    end: u64,
    hear_probability: f64,
    rng: &mut NodeRng,
) -> (u64, u64, Vec<u64>) {
    let mut awake = 0;
    let mut tx = 0;
    let mut visited = Vec::new();
    let mut round = start;
    while round < end {
        visited.push(round);
        match act(m, round) {
            Action::Listen => {
                awake += 1;
                let fb = if rng.gen_bool(hear_probability) {
                    Feedback::Heard(Message::unary())
                } else {
                    Feedback::Silence
                };
                feedback(m, round, fb);
                round += 1;
            }
            Action::Transmit(_) => {
                awake += 1;
                tx += 1;
                feedback(m, round, Feedback::Sent);
                round += 1;
            }
            Action::Sleep { wake_at } => {
                assert!(wake_at > round, "sleep must move forward");
                round = wake_at;
            }
        }
    }
    (awake, tx, visited)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Lemma 8, sender side: exactly k awake rounds, all transmissions,
    /// regardless of Δ and seed.
    #[test]
    fn snd_backoff_awake_exactly_k(
        k in 1u32..32,
        delta in 1usize..5000,
        start in 0u64..1000,
        seed in any::<u64>(),
    ) {
        let mut rng = NodeRng::seed_from_u64(seed);
        let mut m = SndEBackoff::new(start, k, delta, &mut rng);
        let end = m.end();
        prop_assert_eq!(end - start, (k * backoff_window(delta)) as u64);
        let (awake, tx, _) = drive(
            &mut m,
            |m, r| m.act(r),
            |_, _, _| {},
            start,
            end,
            0.0,
            &mut rng,
        );
        prop_assert_eq!(awake, k as u64);
        prop_assert_eq!(tx, k as u64);
    }

    /// Lemma 8, receiver side: at most k·W_est awake rounds; exactly that
    /// many when nothing is ever heard; strictly fewer once heard early.
    #[test]
    fn rec_backoff_awake_bounded(
        k in 1u32..32,
        delta in 2usize..5000,
        d_est in 1usize..5000,
        hear_pct in 0u32..=100,
        seed in any::<u64>(),
    ) {
        let mut rng = NodeRng::seed_from_u64(seed);
        let mut m = RecEBackoff::new(0, k, delta, d_est);
        let end = m.end();
        let w_est = backoff_window(d_est).min(backoff_window(delta));
        let (awake, tx, _) = drive(
            &mut m,
            |m, r| m.act(r),
            |m, r, fb| m.feedback(r, fb),
            0,
            end,
            hear_pct as f64 / 100.0,
            &mut rng,
        );
        prop_assert_eq!(tx, 0);
        prop_assert!(awake <= (k * w_est) as u64);
        if hear_pct == 0 {
            prop_assert_eq!(awake, (k * w_est) as u64);
            prop_assert!(!m.heard());
        }
        if m.heard() {
            // Early sleep kicked in: the machine reports what it heard.
            prop_assert!(awake <= (k * w_est) as u64);
        }
    }

    /// Traditional Decay: the receiver is awake for the whole window.
    #[test]
    fn decay_receiver_always_full_window(
        k in 1u32..16,
        delta in 2usize..2000,
    ) {
        let mut rng = NodeRng::seed_from_u64(1);
        let mut m = DecayReceiver::new(0, k, delta);
        let end = m.end();
        let (awake, _, _) = drive(
            &mut m,
            |m, r| m.act(r),
            |m, r, fb| m.feedback(r, fb),
            0,
            end,
            0.0,
            &mut rng,
        );
        prop_assert_eq!(awake, (k * backoff_window(delta)) as u64);
    }

    /// Traditional Decay sender transmits at least once per iteration and
    /// each iteration's transmissions form a prefix.
    #[test]
    fn decay_sender_prefix_per_iteration(
        k in 1u32..16,
        delta in 2usize..2000,
        seed in any::<u64>(),
    ) {
        let mut rng = NodeRng::seed_from_u64(seed);
        let mut m = DecaySender::new(0, k, delta, &mut rng);
        let w = backoff_window(delta) as u64;
        let end = m.end();
        let mut tx_rounds = Vec::new();
        let mut round = 0u64;
        while round < end {
            match m.act(round) {
                Action::Transmit(_) => {
                    tx_rounds.push(round);
                    round += 1;
                }
                Action::Sleep { wake_at } => {
                    prop_assert!(wake_at > round);
                    round = wake_at;
                }
                Action::Listen => prop_assert!(false, "sender never listens"),
            }
        }
        for iter in 0..k as u64 {
            let in_iter: Vec<u64> = tx_rounds
                .iter()
                .filter(|&&r| r / w == iter)
                .map(|&r| r % w)
                .collect();
            prop_assert!(!in_iter.is_empty(), "iteration {iter} never transmitted");
            for (i, &j) in in_iter.iter().enumerate() {
                prop_assert_eq!(j, i as u64, "transmissions must form a prefix");
            }
        }
    }

    /// The competition machine stays within its window, sleeps forward,
    /// and always finalizes to a definite outcome.
    #[test]
    fn competition_always_resolves(
        n_exp in 4u32..10,
        delta in 2usize..512,
        hear_pct in 0u32..=100,
        seed in any::<u64>(),
    ) {
        let params = NoCdParams::for_n(1usize << n_exp, delta);
        let mut rng = NodeRng::seed_from_u64(seed);
        let mut comp = Competition::new(0, &params);
        let end = comp.end();
        prop_assert_eq!(end, params.t_competition());
        let hear = hear_pct as f64 / 100.0;
        let mut round = 0u64;
        while round < end {
            match comp.act(round, &mut rng) {
                Action::Listen => {
                    let fb = if rng.gen_bool(hear) {
                        Feedback::Heard(Message::unary())
                    } else {
                        Feedback::Silence
                    };
                    comp.feedback(round, fb);
                    round += 1;
                }
                Action::Transmit(_) => round += 1,
                Action::Sleep { wake_at } => {
                    prop_assert!(wake_at > round && wake_at <= end);
                    round = wake_at;
                }
            }
        }
        comp.finalize(round);
        // outcome() must not panic and must be consistent with commit info.
        let outcome = comp.outcome();
        use radio_mis::competition::CompetitionOutcome as O;
        match outcome {
            O::Lose => prop_assert!(comp.committed_at_bit().is_none()),
            O::Commit => prop_assert!(comp.committed_at_bit().is_some()),
            O::Win { committed } => {
                prop_assert_eq!(committed, comp.committed_at_bit().is_some())
            }
        }
    }

    /// A LowDegreeMIS instance driven alone (all silence) always decides
    /// InMis — an isolated node must join.
    #[test]
    fn low_degree_isolated_always_joins(
        n_exp in 4u32..9,
        d_max in 1usize..64,
        seed in any::<u64>(),
    ) {
        let params = LowDegreeParams::for_n(1usize << n_exp, d_max);
        let mut rng = NodeRng::seed_from_u64(seed);
        let mut inst = LowDegreeInstance::new(0, params);
        let end = inst.end();
        let mut round = 0u64;
        while round < end {
            match inst.act(round, &mut rng) {
                Action::Listen => {
                    inst.feedback(round, Feedback::Silence);
                    round += 1;
                }
                Action::Transmit(_) => round += 1,
                Action::Sleep { wake_at } => {
                    prop_assert!(wake_at > round);
                    round = wake_at.min(end);
                }
            }
        }
        inst.finalize(end);
        prop_assert_eq!(inst.decision(), radio_netsim::NodeStatus::InMis);
        // Joining happened through the mark rule, not the timeout rule.
        prop_assert!(!inst.timed_out());
    }
}
