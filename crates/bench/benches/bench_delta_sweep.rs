//! E10 family: Algorithm 2 across degree bounds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mis_graphs::generators;
use radio_mis::nocd::NoCdMis;
use radio_mis::params::NoCdParams;
use radio_netsim::{ChannelModel, SimConfig, Simulator};

fn bench(c: &mut Criterion) {
    let n = 256usize;
    let mut group = c.benchmark_group("delta_sweep");
    group.sample_size(10);
    for d in [4usize, 32, 128] {
        let g = generators::bounded_degree(n, d, 7);
        let params = NoCdParams::for_n(n, d);
        group.bench_with_input(BenchmarkId::from_parameter(d), &d, |b, _| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                Simulator::new(&g, SimConfig::new(ChannelModel::NoCd).with_seed(seed))
                    .run(|_, _| NoCdMis::new(params))
                    .rounds
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
