//! Least-squares fits of measured complexities against candidate growth
//! laws.
//!
//! The paper's theorems predict specific shapes — Theorem 2: energy
//! Θ(log n), rounds Θ(log²n); Theorem 10: energy Θ(log²n·loglog n), rounds
//! Θ(log³n·log Δ). The experiments fit each measured series `y(n)` to
//! `y = a + b·f(n)` for every candidate `f` and report R², so
//! `EXPERIMENTS.md` can state *which* growth law explains the data best.

use serde::{Deserialize, Serialize};

/// Candidate growth laws `f(n)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GrowthModel {
    /// f(n) = 1 (constant).
    Constant,
    /// f(n) = log₂ n.
    LogN,
    /// f(n) = log₂²n.
    Log2N,
    /// f(n) = log₂²n · log₂log₂ n.
    Log2NLogLogN,
    /// f(n) = log₂³n.
    Log3N,
    /// f(n) = log₂⁴n.
    Log4N,
    /// f(n) = √n.
    SqrtN,
    /// f(n) = n.
    Linear,
}

impl GrowthModel {
    /// All candidates, in increasing asymptotic order.
    pub fn all() -> [GrowthModel; 8] {
        [
            GrowthModel::Constant,
            GrowthModel::LogN,
            GrowthModel::Log2N,
            GrowthModel::Log2NLogLogN,
            GrowthModel::Log3N,
            GrowthModel::Log4N,
            GrowthModel::SqrtN,
            GrowthModel::Linear,
        ]
    }

    /// Evaluates f(n).
    pub fn eval(self, n: f64) -> f64 {
        let n = n.max(2.0);
        let l = n.log2();
        match self {
            GrowthModel::Constant => 1.0,
            GrowthModel::LogN => l,
            GrowthModel::Log2N => l * l,
            GrowthModel::Log2NLogLogN => l * l * l.max(2.0).log2(),
            GrowthModel::Log3N => l * l * l,
            GrowthModel::Log4N => l * l * l * l,
            GrowthModel::SqrtN => n.sqrt(),
            GrowthModel::Linear => n,
        }
    }

    /// Human-readable formula.
    pub fn label(self) -> &'static str {
        match self {
            GrowthModel::Constant => "O(1)",
            GrowthModel::LogN => "log n",
            GrowthModel::Log2N => "log^2 n",
            GrowthModel::Log2NLogLogN => "log^2 n loglog n",
            GrowthModel::Log3N => "log^3 n",
            GrowthModel::Log4N => "log^4 n",
            GrowthModel::SqrtN => "sqrt n",
            GrowthModel::Linear => "n",
        }
    }
}

impl std::fmt::Display for GrowthModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A least-squares fit `y ≈ intercept + slope·f(n)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fit {
    /// Fitted slope b.
    pub slope: f64,
    /// Fitted intercept a.
    pub intercept: f64,
    /// Coefficient of determination.
    pub r2: f64,
}

/// Ordinary least squares of `y = a + b·x`.
///
/// # Panics
///
/// Panics if the series lengths differ or fewer than 2 points are given.
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> Fit {
    assert_eq!(xs.len(), ys.len(), "series length mismatch");
    assert!(xs.len() >= 2, "need at least two points");
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let sxx: f64 = xs.iter().map(|x| (x - mx).powi(2)).sum();
    let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    let slope = if sxx == 0.0 { 0.0 } else { sxy / sxx };
    let intercept = my - slope * mx;
    let ss_tot: f64 = ys.iter().map(|y| (y - my).powi(2)).sum();
    let ss_res: f64 = xs
        .iter()
        .zip(ys)
        .map(|(x, y)| (y - (intercept + slope * x)).powi(2))
        .sum();
    let r2 = if ss_tot == 0.0 {
        1.0
    } else {
        1.0 - ss_res / ss_tot
    };
    Fit {
        slope,
        intercept,
        r2,
    }
}

/// Fits `ys` against a specific growth model of `ns`.
pub fn fit_model(model: GrowthModel, ns: &[f64], ys: &[f64]) -> Fit {
    let xs: Vec<f64> = ns.iter().map(|&n| model.eval(n)).collect();
    linear_fit(&xs, ys)
}

/// Fits every candidate model and returns the one with the best R²,
/// preferring slower-growing models on near-ties (within 0.002 R²) and
/// rejecting fits with negative slopes (a complexity cannot decrease in n).
pub fn best_fit(ns: &[f64], ys: &[f64]) -> (GrowthModel, Fit) {
    let mut best: Option<(GrowthModel, Fit)> = None;
    for model in GrowthModel::all() {
        let fit = fit_model(model, ns, ys);
        if model != GrowthModel::Constant && fit.slope < 0.0 {
            continue;
        }
        match &best {
            None => best = Some((model, fit)),
            Some((_, b)) => {
                if fit.r2 > b.r2 + 0.002 {
                    best = Some((model, fit));
                }
            }
        }
    }
    best.expect("Constant model always eligible")
}

/// R² of every model, for the per-experiment diagnostics table.
pub fn all_fits(ns: &[f64], ys: &[f64]) -> Vec<(GrowthModel, Fit)> {
    GrowthModel::all()
        .into_iter()
        .map(|m| (m, fit_model(m, ns, ys)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ns() -> Vec<f64> {
        (6..18).map(|k| (1u64 << k) as f64).collect()
    }

    #[test]
    fn linear_fit_exact() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [5.0, 7.0, 9.0];
        let f = linear_fit(&xs, &ys);
        assert!((f.slope - 2.0).abs() < 1e-12);
        assert!((f.intercept - 3.0).abs() < 1e-12);
        assert!((f.r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn recovers_log_n() {
        let ys: Vec<f64> = ns().iter().map(|&n| 7.0 * n.log2() + 2.0).collect();
        let (m, f) = best_fit(&ns(), &ys);
        assert_eq!(m, GrowthModel::LogN);
        assert!((f.slope - 7.0).abs() < 1e-9);
    }

    #[test]
    fn recovers_log2_n() {
        let ys: Vec<f64> = ns().iter().map(|&n| 3.0 * n.log2().powi(2)).collect();
        let (m, _) = best_fit(&ns(), &ys);
        assert_eq!(m, GrowthModel::Log2N);
    }

    #[test]
    fn recovers_log2_loglog_up_to_near_tie() {
        // Over experiment-scale n, log²n·loglog n and log²n are affinely
        // near-indistinguishable (the loglog factor moves by ~1.5× while
        // log² moves by ~8×), so best_fit may legitimately report either —
        // but the true model must fit essentially perfectly.
        let ys: Vec<f64> = ns()
            .iter()
            .map(|&n| {
                let l = n.log2();
                2.0 * l * l * l.log2()
            })
            .collect();
        let (m, f) = best_fit(&ns(), &ys);
        assert!(
            matches!(m, GrowthModel::Log2NLogLogN | GrowthModel::Log2N),
            "winner {m:?}"
        );
        assert!(f.r2 > 0.99);
        let exact = fit_model(GrowthModel::Log2NLogLogN, &ns(), &ys);
        assert!((exact.r2 - 1.0).abs() < 1e-9);
        assert!((exact.slope - 2.0).abs() < 1e-9);
    }

    #[test]
    fn recovers_log3_n() {
        let ys: Vec<f64> = ns()
            .iter()
            .map(|&n| 0.5 * n.log2().powi(3) + 10.0)
            .collect();
        let (m, _) = best_fit(&ns(), &ys);
        assert_eq!(m, GrowthModel::Log3N);
    }

    #[test]
    fn recovers_linear() {
        let ys: Vec<f64> = ns().iter().map(|&n| 0.25 * n).collect();
        let (m, _) = best_fit(&ns(), &ys);
        assert_eq!(m, GrowthModel::Linear);
    }

    #[test]
    fn noisy_log_n_still_wins() {
        // Deterministic ±10% ripple.
        let ys: Vec<f64> = ns()
            .iter()
            .enumerate()
            .map(|(i, &n)| 5.0 * n.log2() * (1.0 + 0.1 * if i % 2 == 0 { 1.0 } else { -1.0 }))
            .collect();
        let (m, f) = best_fit(&ns(), &ys);
        assert_eq!(m, GrowthModel::LogN);
        // ±10% multiplicative ripple leaves roughly 1 − 0.25·E[l²]/Var(5l)
        // of the variance explained.
        assert!(f.r2 > 0.8, "r2 = {}", f.r2);
    }

    #[test]
    fn constant_data() {
        let ys = vec![4.0; ns().len()];
        let (m, f) = best_fit(&ns(), &ys);
        assert_eq!(m, GrowthModel::Constant);
        assert!((f.r2 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn all_fits_covers_all_models() {
        let ys: Vec<f64> = ns().iter().map(|&n| n.log2()).collect();
        assert_eq!(all_fits(&ns(), &ys).len(), GrowthModel::all().len());
    }

    #[test]
    fn model_labels_distinct() {
        let labels: std::collections::HashSet<_> =
            GrowthModel::all().iter().map(|m| m.label()).collect();
        assert_eq!(labels.len(), GrowthModel::all().len());
    }
}
