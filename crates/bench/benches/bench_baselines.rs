//! E4/E5 families: the baselines against the paper's algorithms.

use criterion::{criterion_group, criterion_main, Criterion};
use mis_bench::workload;
use radio_mis::baselines::naive_luby_cd;
use radio_mis::baselines::nocd_naive::{NaiveSimParams, NoCdNaive};
use radio_mis::cd::CdMis;
use radio_mis::low_degree::LowDegreeMis;
use radio_mis::params::{CdParams, LowDegreeParams};
use radio_netsim::{ChannelModel, SimConfig, Simulator};

fn bench(c: &mut Criterion) {
    let n = 512usize;
    let g = workload(n, 44);
    let delta = g.max_degree().max(2);
    let cd_params = CdParams::for_n(n);
    let ld_params = LowDegreeParams::for_n(n, delta);
    let sim_params = NaiveSimParams::for_n(n, delta);

    let mut group = c.benchmark_group("baselines");
    group.sample_size(10);
    group.bench_function("cd_algorithm1", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            Simulator::new(&g, SimConfig::new(ChannelModel::Cd).with_seed(seed))
                .run(|_, _| CdMis::new(cd_params))
                .max_energy()
        })
    });
    group.bench_function("cd_naive_luby", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            Simulator::new(&g, SimConfig::new(ChannelModel::Cd).with_seed(seed))
                .run(|_, _| naive_luby_cd(cd_params))
                .max_energy()
        })
    });
    group.bench_function("nocd_low_degree_mis", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            Simulator::new(&g, SimConfig::new(ChannelModel::NoCd).with_seed(seed))
                .run(|_, _| LowDegreeMis::new(ld_params))
                .max_energy()
        })
    });
    group.bench_function("nocd_naive", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            Simulator::new(&g, SimConfig::new(ChannelModel::NoCd).with_seed(seed))
                .run(|_, _| NoCdNaive::new(cd_params, sim_params))
                .max_energy()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
