//! Execution tracing: event kinds, sink masks, and streaming sinks.
//!
//! The engine emits [`TraceEvent`]s to a [`TraceSink`]. Which kinds of
//! events a sink wants is declared through its [`EventMask`]; the default
//! [`NullTrace`] masks everything out and compiles to nothing. Five
//! recording sinks are provided:
//!
//! - [`VecTrace`] — stores every event in memory, for tests and small runs;
//! - [`JsonlTrace`] — streams every event as one JSON line to any writer,
//!   for offline analysis of long runs;
//! - [`ChannelTrace`] — serializes every event to one JSONL frame and
//!   sends it over an in-process `mpsc` channel, for live streaming to
//!   another thread (frames concatenate to the exact bytes [`JsonlTrace`]
//!   would have written — the `mis-serve` daemon streams these frames to
//!   HTTP clients);
//! - [`RingTrace`] — keeps only the last `capacity` events, for "what just
//!   happened" debugging of runs too long to record fully;
//! - [`FilteredTrace`] — wraps any other sink and filters by event kind,
//!   node set, and round range.
//!
//! # The event-mask contract
//!
//! [`TraceSink::mask`] is a *promise*, not a filter: it tells the engine
//! which event kinds the sink cares about, so the engine can skip
//! constructing the others entirely (this is what keeps [`NullTrace`] —
//! and therefore every untraced run — zero-cost). The contract has three
//! clauses:
//!
//! 1. the engine queries `mask()` **once, at run start** — a sink must
//!    return the same mask for the whole run;
//! 2. the engine **may** skip any event whose kind is masked out, but is
//!    not required to — a sink must tolerate receiving a masked-out kind
//!    (ignoring it is fine, as [`FilteredTrace`] does);
//! 3. the engine delivers every event whose kind is *in* the mask, in
//!    deterministic order (ascending round; within a round: crashes and
//!    other faults taking effect, then actions, then feedback, then status
//!    changes and finishes; jammer [`TraceEvent::Fault`] events are emitted
//!    up-front at run start with round 0).
//!
//! Quiet rounds — rounds in which no node is due — are never processed and
//! emit no events at all, so consecutive events may jump many rounds; the
//! stream is identical whichever [`EngineMode`](crate::EngineMode) drives
//! the run (the `engine_differential` suite asserts the two backends'
//! streams byte-for-byte). The same holds across thread counts: the
//! parallel engine ([`SimConfig::with_threads`](crate::SimConfig::with_threads))
//! emits events only from its serial merge stages, in ascending node
//! order within each stage, so the stream a sink sees is byte-identical
//! at every thread count — sinks need no synchronization and are called
//! from exactly one thread (see `docs/PARALLEL_ENGINE.md` §3).

use crate::fault::FaultKind;
use crate::metrics::RoundMetrics;
use crate::model::{Action, Feedback, NodeStatus};
use mis_graphs::NodeId;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::collections::VecDeque;
use std::io::Write;

/// One engine event.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[serde(tag = "event")]
pub enum TraceEvent {
    /// A node declared an action at a round.
    Acted {
        /// Round number.
        round: u64,
        /// The acting node.
        node: NodeId,
        /// Its action.
        action: Action,
    },
    /// A node received feedback at a round.
    Fed {
        /// Round number.
        round: u64,
        /// The node receiving feedback.
        node: NodeId,
        /// The feedback delivered.
        feedback: Feedback,
    },
    /// A node's status changed.
    StatusChanged {
        /// Round number at which the change was observed.
        round: u64,
        /// The node.
        node: NodeId,
        /// The new status.
        status: NodeStatus,
    },
    /// A node was retired (finished).
    Finished {
        /// Round number.
        round: u64,
        /// The node.
        node: NodeId,
    },
    /// A fault took effect at a node (crash, jammer, dormancy onset). Only
    /// emitted by runs with a non-inert
    /// [`FaultPlan`](crate::FaultPlan); see [`FaultKind`] for when each
    /// kind fires.
    Fault {
        /// Round number.
        round: u64,
        /// The affected node.
        node: NodeId,
        /// What happened to it.
        fault: FaultKind,
    },
    /// A processed round ended; carries the aggregated channel metrics.
    RoundEnd {
        /// The per-round metrics record.
        metrics: RoundMetrics,
    },
}

impl TraceEvent {
    /// The kind of this event.
    pub fn kind(&self) -> EventKind {
        match self {
            TraceEvent::Acted { .. } => EventKind::Acted,
            TraceEvent::Fed { .. } => EventKind::Fed,
            TraceEvent::StatusChanged { .. } => EventKind::StatusChanged,
            TraceEvent::Finished { .. } => EventKind::Finished,
            TraceEvent::Fault { .. } => EventKind::Fault,
            TraceEvent::RoundEnd { .. } => EventKind::RoundMetrics,
        }
    }

    /// The round the event belongs to.
    pub fn round(&self) -> u64 {
        match self {
            TraceEvent::Acted { round, .. }
            | TraceEvent::Fed { round, .. }
            | TraceEvent::StatusChanged { round, .. }
            | TraceEvent::Finished { round, .. }
            | TraceEvent::Fault { round, .. } => *round,
            TraceEvent::RoundEnd { metrics } => metrics.round,
        }
    }

    /// The node the event concerns, if it is a per-node event
    /// (`RoundEnd` is channel-wide and has no node).
    pub fn node(&self) -> Option<NodeId> {
        match self {
            TraceEvent::Acted { node, .. }
            | TraceEvent::Fed { node, .. }
            | TraceEvent::StatusChanged { node, .. }
            | TraceEvent::Finished { node, .. }
            | TraceEvent::Fault { node, .. } => Some(*node),
            TraceEvent::RoundEnd { .. } => None,
        }
    }
}

/// The kinds of [`TraceEvent`] a sink can subscribe to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EventKind {
    /// Per-node actions ([`TraceEvent::Acted`]).
    Acted,
    /// Per-node feedback deliveries ([`TraceEvent::Fed`]).
    Fed,
    /// Per-node status changes ([`TraceEvent::StatusChanged`]).
    StatusChanged,
    /// Per-node retirements ([`TraceEvent::Finished`]).
    Finished,
    /// Per-node fault occurrences ([`TraceEvent::Fault`]).
    Fault,
    /// Per-round aggregated metrics ([`TraceEvent::RoundEnd`]).
    RoundMetrics,
}

impl EventKind {
    /// All kinds, in delivery order.
    pub fn all() -> [EventKind; 6] {
        [
            EventKind::Acted,
            EventKind::Fed,
            EventKind::StatusChanged,
            EventKind::Finished,
            EventKind::Fault,
            EventKind::RoundMetrics,
        ]
    }

    /// Stable lower-case label (used by the `mis-sim trace --events` flag).
    pub fn label(self) -> &'static str {
        match self {
            EventKind::Acted => "acted",
            EventKind::Fed => "fed",
            EventKind::StatusChanged => "status",
            EventKind::Finished => "finished",
            EventKind::Fault => "fault",
            EventKind::RoundMetrics => "metrics",
        }
    }

    /// Parses a label produced by [`EventKind::label`].
    ///
    /// # Errors
    ///
    /// Lists the accepted labels on failure.
    pub fn parse(label: &str) -> Result<EventKind, String> {
        EventKind::all()
            .into_iter()
            .find(|k| k.label() == label)
            .ok_or_else(|| {
                format!(
                    "unknown event kind {label:?}; expected one of: {}",
                    EventKind::all().map(EventKind::label).join(", ")
                )
            })
    }

    fn bit(self) -> u8 {
        match self {
            EventKind::Acted => 1 << 0,
            EventKind::Fed => 1 << 1,
            EventKind::StatusChanged => 1 << 2,
            EventKind::Finished => 1 << 3,
            EventKind::Fault => 1 << 4,
            EventKind::RoundMetrics => 1 << 5,
        }
    }
}

/// A set of [`EventKind`]s — the subscription a [`TraceSink`] declares.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventMask(u8);

impl EventMask {
    /// The empty mask: no events wanted ([`NullTrace`]'s mask).
    pub const NONE: EventMask = EventMask(0);
    /// Every event kind.
    pub const ALL: EventMask = EventMask(0b11_1111);

    /// A mask containing exactly the given kinds.
    pub fn only<I: IntoIterator<Item = EventKind>>(kinds: I) -> EventMask {
        kinds.into_iter().fold(EventMask::NONE, |m, k| m.with(k))
    }

    /// Whether `kind` is in the mask.
    pub fn contains(self, kind: EventKind) -> bool {
        self.0 & kind.bit() != 0
    }

    /// This mask with `kind` added.
    pub fn with(self, kind: EventKind) -> EventMask {
        EventMask(self.0 | kind.bit())
    }

    /// This mask with `kind` removed.
    pub fn without(self, kind: EventKind) -> EventMask {
        EventMask(self.0 & !kind.bit())
    }

    /// The kinds present in both masks.
    pub fn intersect(self, other: EventMask) -> EventMask {
        EventMask(self.0 & other.0)
    }

    /// Whether no kind is wanted.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }
}

impl Default for EventMask {
    fn default() -> EventMask {
        EventMask::ALL
    }
}

/// Receives engine events. See the [module docs](self) for the event-mask
/// contract a sink and the engine agree on.
pub trait TraceSink {
    /// Records one event.
    fn record(&mut self, event: TraceEvent);

    /// The event kinds this sink wants delivered. Queried once at run
    /// start; must be constant for the lifetime of a run. Defaults to
    /// [`EventMask::ALL`].
    fn mask(&self) -> EventMask {
        EventMask::ALL
    }
}

/// Discards everything; the default sink. Its mask is [`EventMask::NONE`],
/// so the engine constructs no events at all — untraced runs pay nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullTrace;

impl TraceSink for NullTrace {
    fn record(&mut self, _event: TraceEvent) {}
    fn mask(&self) -> EventMask {
        EventMask::NONE
    }
}

/// Stores every event in order.
#[derive(Debug, Clone, Default)]
pub struct VecTrace {
    /// The recorded events, in emission order.
    pub events: Vec<TraceEvent>,
}

impl VecTrace {
    /// Creates an empty trace.
    pub fn new() -> VecTrace {
        VecTrace::default()
    }

    /// Iterates over the per-node events of one node.
    pub fn for_node(&self, node: NodeId) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.node() == Some(node))
    }

    /// Number of awake actions recorded for a node (its traced energy).
    pub fn awake_actions(&self, node: NodeId) -> usize {
        self.for_node(node)
            .filter(|e| matches!(e, TraceEvent::Acted { action, .. } if action.is_awake()))
            .count()
    }
}

impl TraceSink for VecTrace {
    fn record(&mut self, event: TraceEvent) {
        self.events.push(event);
    }
}

/// Streams every event as one JSON line (JSONL) to a writer.
///
/// The sink never panics on IO failure: the first error is stored, further
/// events are dropped, and the error is surfaced by [`JsonlTrace::into_inner`]
/// (or inspected mid-run via [`JsonlTrace::io_error`]).
///
/// ```
/// use radio_netsim::{JsonlTrace, TraceEvent, TraceSink};
///
/// let mut sink = JsonlTrace::new(Vec::new());
/// sink.record(TraceEvent::Finished { round: 3, node: 0 });
/// assert_eq!(sink.events_written(), 1);
/// let bytes = sink.into_inner().unwrap();
/// let line = String::from_utf8(bytes).unwrap();
/// assert_eq!(line, "{\"event\":\"Finished\",\"round\":3,\"node\":0}\n");
/// ```
#[derive(Debug)]
pub struct JsonlTrace<W: Write> {
    writer: W,
    mask: EventMask,
    written: u64,
    failed: Option<std::io::Error>,
}

impl<W: Write> JsonlTrace<W> {
    /// Creates a sink streaming to `writer`, subscribed to every event kind.
    pub fn new(writer: W) -> JsonlTrace<W> {
        JsonlTrace {
            writer,
            mask: EventMask::ALL,
            written: 0,
            failed: None,
        }
    }

    /// Restricts the subscription to `mask`.
    pub fn with_mask(mut self, mask: EventMask) -> JsonlTrace<W> {
        self.mask = mask;
        self
    }

    /// Number of lines successfully written so far.
    pub fn events_written(&self) -> u64 {
        self.written
    }

    /// The first IO error encountered, if any.
    pub fn io_error(&self) -> Option<&std::io::Error> {
        self.failed.as_ref()
    }

    /// Flushes and returns the underlying writer.
    ///
    /// # Errors
    ///
    /// Returns the first IO error encountered during recording or the
    /// final flush.
    pub fn into_inner(mut self) -> std::io::Result<W> {
        if let Some(e) = self.failed {
            return Err(e);
        }
        self.writer.flush()?;
        Ok(self.writer)
    }
}

impl<W: Write> TraceSink for JsonlTrace<W> {
    fn record(&mut self, event: TraceEvent) {
        if self.failed.is_some() || !self.mask.contains(event.kind()) {
            return;
        }
        let result = serde_json::to_writer(&mut self.writer, &event)
            .map_err(std::io::Error::from)
            .and_then(|()| self.writer.write_all(b"\n"));
        match result {
            Ok(()) => self.written += 1,
            Err(e) => self.failed = Some(e),
        }
    }

    fn mask(&self) -> EventMask {
        self.mask
    }
}

/// Streams every event as one serialized JSONL frame over an in-process
/// [`mpsc`](std::sync::mpsc) channel.
///
/// Frame `k` carries exactly the bytes [`JsonlTrace`] would have written
/// for the `k`-th recorded event — one compact JSON object plus a trailing
/// newline — so a receiver that concatenates frames reconstructs the
/// `JsonlTrace` byte stream of the same run verbatim
/// (`crates/netsim/tests/trace_stream.rs` pins this equivalence). Unlike
/// `JsonlTrace`, delivery is decoupled from the simulating thread: the
/// channel is unbounded, so the engine never blocks on a slow consumer,
/// and a vanished consumer (dropped [`Receiver`](std::sync::mpsc::Receiver))
/// quietly ends the stream — further frames are counted in
/// [`ChannelTrace::dropped`] instead of failing the run.
///
/// ```
/// use radio_netsim::{ChannelTrace, TraceEvent, TraceSink};
///
/// let (mut sink, rx) = ChannelTrace::channel();
/// sink.record(TraceEvent::Finished { round: 3, node: 0 });
/// assert_eq!(sink.frames_sent(), 1);
/// let frame = rx.recv().unwrap();
/// assert_eq!(frame, b"{\"event\":\"Finished\",\"round\":3,\"node\":0}\n");
/// ```
#[derive(Debug)]
pub struct ChannelTrace {
    tx: std::sync::mpsc::Sender<Vec<u8>>,
    mask: EventMask,
    sent: u64,
    dropped: u64,
}

impl ChannelTrace {
    /// Creates a connected (sink, receiver) pair, subscribed to every
    /// event kind — the trace analogue of [`std::sync::mpsc::channel`].
    pub fn channel() -> (ChannelTrace, std::sync::mpsc::Receiver<Vec<u8>>) {
        let (tx, rx) = std::sync::mpsc::channel();
        (ChannelTrace::from_sender(tx), rx)
    }

    /// Wraps an existing sender, for fan-in or pre-wired channels.
    pub fn from_sender(tx: std::sync::mpsc::Sender<Vec<u8>>) -> ChannelTrace {
        ChannelTrace {
            tx,
            mask: EventMask::ALL,
            sent: 0,
            dropped: 0,
        }
    }

    /// Restricts the subscription to `mask`.
    pub fn with_mask(mut self, mask: EventMask) -> ChannelTrace {
        self.mask = mask;
        self
    }

    /// Number of frames successfully handed to the channel so far.
    pub fn frames_sent(&self) -> u64 {
        self.sent
    }

    /// Frames dropped because the receiver was gone (or, in principle,
    /// because an event failed to serialize).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

impl TraceSink for ChannelTrace {
    fn record(&mut self, event: TraceEvent) {
        if !self.mask.contains(event.kind()) {
            return;
        }
        let Ok(mut frame) = serde_json::to_vec(&event) else {
            self.dropped += 1;
            return;
        };
        frame.push(b'\n');
        match self.tx.send(frame) {
            Ok(()) => self.sent += 1,
            Err(_) => self.dropped += 1,
        }
    }

    fn mask(&self) -> EventMask {
        self.mask
    }
}

/// Bounded sink that keeps only the most recent `capacity` events.
///
/// Long runs produce unboundedly many events; `RingTrace` answers "what
/// just happened" without the memory cost of a full [`VecTrace`].
///
/// ```
/// use radio_netsim::{RingTrace, TraceEvent, TraceSink};
///
/// let mut sink = RingTrace::new(2);
/// for round in 0..5 {
///     sink.record(TraceEvent::Finished { round, node: 0 });
/// }
/// assert_eq!(sink.len(), 2);
/// assert_eq!(sink.dropped(), 3);
/// let kept: Vec<u64> = sink.events().map(|e| e.round()).collect();
/// assert_eq!(kept, vec![3, 4]); // only the most recent survive
/// ```
#[derive(Debug, Clone)]
pub struct RingTrace {
    buf: VecDeque<TraceEvent>,
    capacity: usize,
    mask: EventMask,
    dropped: u64,
}

impl RingTrace {
    /// Creates a ring keeping the last `capacity` events, subscribed to
    /// every event kind. A capacity of 0 keeps nothing (every event is
    /// counted as dropped).
    pub fn new(capacity: usize) -> RingTrace {
        RingTrace {
            buf: VecDeque::with_capacity(capacity),
            capacity,
            mask: EventMask::ALL,
            dropped: 0,
        }
    }

    /// Restricts the subscription to `mask`.
    pub fn with_mask(mut self, mask: EventMask) -> RingTrace {
        self.mask = mask;
        self
    }

    /// Events currently retained, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.buf.iter()
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether no event is retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Number of events evicted (or refused, for capacity 0) so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

impl TraceSink for RingTrace {
    fn record(&mut self, event: TraceEvent) {
        if !self.mask.contains(event.kind()) {
            return;
        }
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(event);
    }

    fn mask(&self) -> EventMask {
        self.mask
    }
}

/// Wraps another sink, forwarding only events that pass an event-kind mask,
/// an optional node set, and an optional round range.
///
/// The advertised mask is the intersection of this filter's mask with the
/// inner sink's, so the engine still skips construction of everything
/// neither side wants. Node and round filters are applied per event;
/// channel-wide events ([`TraceEvent::RoundEnd`]) pass any node filter.
#[derive(Debug, Clone)]
pub struct FilteredTrace<T: TraceSink> {
    inner: T,
    mask: EventMask,
    nodes: Option<HashSet<NodeId>>,
    rounds: Option<std::ops::Range<u64>>,
}

impl<T: TraceSink> FilteredTrace<T> {
    /// Wraps `inner` with an all-pass filter.
    pub fn new(inner: T) -> FilteredTrace<T> {
        FilteredTrace {
            inner,
            mask: EventMask::ALL,
            nodes: None,
            rounds: None,
        }
    }

    /// Forwards only events whose kind is in `mask`.
    pub fn with_mask(mut self, mask: EventMask) -> FilteredTrace<T> {
        self.mask = mask;
        self
    }

    /// Forwards only per-node events concerning one of `nodes`
    /// (channel-wide events still pass).
    pub fn with_nodes<I: IntoIterator<Item = NodeId>>(mut self, nodes: I) -> FilteredTrace<T> {
        self.nodes = Some(nodes.into_iter().collect());
        self
    }

    /// Forwards only events from rounds in `rounds` (half-open).
    pub fn with_rounds(mut self, rounds: std::ops::Range<u64>) -> FilteredTrace<T> {
        self.rounds = Some(rounds);
        self
    }

    /// A shared reference to the wrapped sink.
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// Unwraps the filter, returning the inner sink.
    pub fn into_inner(self) -> T {
        self.inner
    }
}

impl<T: TraceSink> TraceSink for FilteredTrace<T> {
    fn record(&mut self, event: TraceEvent) {
        if !self.mask.contains(event.kind()) {
            return;
        }
        if let Some(rounds) = &self.rounds {
            if !rounds.contains(&event.round()) {
                return;
            }
        }
        if let (Some(nodes), Some(node)) = (&self.nodes, event.node()) {
            if !nodes.contains(&node) {
                return;
            }
        }
        self.inner.record(event);
    }

    fn mask(&self) -> EventMask {
        self.mask.intersect(self.inner.mask())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Message;

    fn acted(round: u64, node: NodeId) -> TraceEvent {
        TraceEvent::Acted {
            round,
            node,
            action: Action::Listen,
        }
    }

    #[test]
    fn vec_trace_filters_by_node() {
        let mut t = VecTrace::new();
        t.record(acted(0, 1));
        t.record(TraceEvent::Acted {
            round: 0,
            node: 2,
            action: Action::Transmit(Message::unary()),
        });
        t.record(TraceEvent::Fed {
            round: 0,
            node: 1,
            feedback: Feedback::Heard(Message::unary()),
        });
        t.record(TraceEvent::RoundEnd {
            metrics: RoundMetrics::default(),
        });
        assert_eq!(t.for_node(1).count(), 2);
        assert_eq!(t.for_node(2).count(), 1);
        assert_eq!(t.awake_actions(1), 1);
        assert_eq!(t.awake_actions(3), 0);
    }

    #[test]
    fn null_trace_is_quiet() {
        let mut t = NullTrace;
        assert!(t.mask().is_empty());
        t.record(TraceEvent::Finished { round: 0, node: 0 });
    }

    #[test]
    fn mask_set_operations() {
        let m = EventMask::only([EventKind::Acted, EventKind::RoundMetrics]);
        assert!(m.contains(EventKind::Acted));
        assert!(m.contains(EventKind::RoundMetrics));
        assert!(!m.contains(EventKind::Fed));
        assert!(m
            .without(EventKind::Acted)
            .contains(EventKind::RoundMetrics));
        assert!(!m.without(EventKind::Acted).contains(EventKind::Acted));
        let other = EventMask::only([EventKind::Acted, EventKind::Fed]);
        assert_eq!(m.intersect(other), EventMask::only([EventKind::Acted]));
        assert!(EventMask::NONE.is_empty());
        assert!(!EventMask::ALL.is_empty());
        for kind in EventKind::all() {
            assert!(EventMask::ALL.contains(kind));
            assert!(EventMask::default().contains(kind));
        }
    }

    #[test]
    fn event_kind_labels_roundtrip() {
        for kind in EventKind::all() {
            assert_eq!(EventKind::parse(kind.label()), Ok(kind));
        }
        assert!(EventKind::parse("bogus").unwrap_err().contains("metrics"));
    }

    #[test]
    fn event_accessors() {
        let e = acted(4, 9);
        assert_eq!(e.kind(), EventKind::Acted);
        assert_eq!(e.round(), 4);
        assert_eq!(e.node(), Some(9));
        let r = TraceEvent::RoundEnd {
            metrics: RoundMetrics {
                round: 11,
                ..RoundMetrics::default()
            },
        };
        assert_eq!(r.kind(), EventKind::RoundMetrics);
        assert_eq!(r.round(), 11);
        assert_eq!(r.node(), None);
    }

    #[test]
    fn fault_event_accessors_and_serde() {
        let e = TraceEvent::Fault {
            round: 6,
            node: 2,
            fault: FaultKind::Crash,
        };
        assert_eq!(e.kind(), EventKind::Fault);
        assert_eq!(e.round(), 6);
        assert_eq!(e.node(), Some(2));
        let json = serde_json::to_string(&e).unwrap();
        assert!(json.contains("\"Fault\""));
        assert!(json.contains("Crash"));
        let back: TraceEvent = serde_json::from_str(&json).unwrap();
        assert_eq!(back, e);
        assert_eq!(EventKind::parse("fault"), Ok(EventKind::Fault));
    }

    #[test]
    fn jsonl_lines_parse_back() {
        let mut sink = JsonlTrace::new(Vec::new());
        sink.record(acted(0, 1));
        sink.record(TraceEvent::Fed {
            round: 0,
            node: 1,
            feedback: Feedback::Collision,
        });
        sink.record(TraceEvent::RoundEnd {
            metrics: RoundMetrics {
                round: 0,
                transmitting: 1,
                ..RoundMetrics::default()
            },
        });
        assert_eq!(sink.events_written(), 3);
        assert!(sink.io_error().is_none());
        let bytes = sink.into_inner().unwrap();
        let text = String::from_utf8(bytes).unwrap();
        let events: Vec<TraceEvent> = text
            .lines()
            .map(|l| serde_json::from_str(l).unwrap())
            .collect();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0], acted(0, 1));
        assert!(matches!(events[2], TraceEvent::RoundEnd { metrics } if metrics.transmitting == 1));
    }

    #[test]
    fn jsonl_respects_mask() {
        let mut sink =
            JsonlTrace::new(Vec::new()).with_mask(EventMask::only([EventKind::Finished]));
        sink.record(acted(0, 1));
        sink.record(TraceEvent::Finished { round: 0, node: 1 });
        assert_eq!(sink.events_written(), 1);
        let text = String::from_utf8(sink.into_inner().unwrap()).unwrap();
        assert_eq!(text.lines().count(), 1);
        assert!(text.contains("Finished"));
    }

    #[test]
    fn channel_frames_match_jsonl_bytes() {
        let events = [
            acted(0, 1),
            TraceEvent::Fed {
                round: 0,
                node: 1,
                feedback: Feedback::Collision,
            },
            TraceEvent::RoundEnd {
                metrics: RoundMetrics {
                    round: 0,
                    transmitting: 1,
                    ..RoundMetrics::default()
                },
            },
            TraceEvent::Finished { round: 2, node: 1 },
        ];
        let mut jsonl = JsonlTrace::new(Vec::new());
        let (mut chan, rx) = ChannelTrace::channel();
        for e in &events {
            jsonl.record(e.clone());
            chan.record(e.clone());
        }
        assert_eq!(chan.frames_sent(), events.len() as u64);
        assert_eq!(chan.dropped(), 0);
        drop(chan); // close the channel so the drain below terminates
        let frames: Vec<Vec<u8>> = rx.iter().collect();
        assert_eq!(frames.len(), events.len());
        // Every frame is one complete line…
        for frame in &frames {
            assert_eq!(frame.iter().filter(|&&b| b == b'\n').count(), 1);
            assert_eq!(*frame.last().unwrap(), b'\n');
        }
        // …and the concatenation is the JsonlTrace byte stream verbatim.
        assert_eq!(frames.concat(), jsonl.into_inner().unwrap());
    }

    #[test]
    fn channel_trace_respects_mask() {
        let (sink, rx) = ChannelTrace::channel();
        let mut sink = sink.with_mask(EventMask::only([EventKind::Finished]));
        sink.record(acted(0, 1));
        sink.record(TraceEvent::Finished { round: 0, node: 1 });
        assert_eq!(sink.frames_sent(), 1);
        assert!(!sink.mask().contains(EventKind::Acted));
        drop(sink);
        let frames: Vec<Vec<u8>> = rx.iter().collect();
        assert_eq!(frames.len(), 1);
        assert!(String::from_utf8(frames.concat())
            .unwrap()
            .contains("Finished"));
    }

    #[test]
    fn channel_trace_survives_dropped_receiver() {
        let (mut sink, rx) = ChannelTrace::channel();
        sink.record(acted(0, 1));
        drop(rx);
        sink.record(acted(1, 1));
        sink.record(acted(2, 1));
        assert_eq!(sink.frames_sent(), 1);
        assert_eq!(sink.dropped(), 2);
    }

    #[test]
    fn ring_trace_keeps_tail_and_counts_drops() {
        let mut sink = RingTrace::new(3);
        for round in 0..10 {
            sink.record(acted(round, 0));
        }
        assert_eq!(sink.len(), 3);
        assert_eq!(sink.dropped(), 7);
        let rounds: Vec<u64> = sink.events().map(TraceEvent::round).collect();
        assert_eq!(rounds, vec![7, 8, 9]);
        assert!(!sink.is_empty());
    }

    #[test]
    fn ring_trace_capacity_zero_drops_everything() {
        let mut sink = RingTrace::new(0);
        sink.record(acted(0, 0));
        assert!(sink.is_empty());
        assert_eq!(sink.dropped(), 1);
    }

    #[test]
    fn filtered_trace_masks_kinds_nodes_and_rounds() {
        let mut sink = FilteredTrace::new(VecTrace::new())
            .with_mask(EventMask::ALL.without(EventKind::Fed))
            .with_nodes([1usize, 3])
            .with_rounds(5..10);
        // Wrong kind, right node and round.
        sink.record(TraceEvent::Fed {
            round: 6,
            node: 1,
            feedback: Feedback::Silence,
        });
        // Right kind, wrong node.
        sink.record(acted(6, 2));
        // Right kind, right node, wrong round.
        sink.record(acted(12, 1));
        // Passes.
        sink.record(acted(6, 3));
        // Channel-wide event in range: passes the node filter.
        sink.record(TraceEvent::RoundEnd {
            metrics: RoundMetrics {
                round: 7,
                ..RoundMetrics::default()
            },
        });
        let inner = sink.into_inner();
        assert_eq!(inner.events.len(), 2);
        assert_eq!(inner.events[0], acted(6, 3));
        assert_eq!(inner.events[1].kind(), EventKind::RoundMetrics);
    }

    #[test]
    fn filtered_trace_intersects_masks() {
        let sink = FilteredTrace::new(
            RingTrace::new(4).with_mask(EventMask::only([EventKind::Acted, EventKind::Fed])),
        )
        .with_mask(EventMask::only([EventKind::Fed, EventKind::Finished]));
        assert_eq!(sink.mask(), EventMask::only([EventKind::Fed]));
        assert!(sink.inner().is_empty());
        let null = FilteredTrace::new(NullTrace);
        assert!(null.mask().is_empty());
    }
}
