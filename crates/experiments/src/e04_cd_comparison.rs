//! E4 — §1.3: Algorithm 1 vs the naive Luby baseline vs the beeping model.
//!
//! Head-to-head on common topologies at a fixed n: Algorithm 1's max and
//! node-averaged energy should sit at Θ(log n) while naive Luby pays
//! Θ(log²n) (energy ≈ rounds); the beeping variant must match Algorithm 1.

use crate::harness::{pct, ExpConfig, ExperimentOutput, Section};
use crate::orchestrator::{Orchestrator, TrialStats, UnitKey};
use mis_graphs::generators::Family;
use mis_graphs::{mis, parallel};
use mis_stats::table::fmt_num;
use mis_stats::{Summary, Table};
use radio_mis::baselines::naive_luby_cd;
use radio_mis::beeping_native::{BeepingParams, NativeBeepingMis};
use radio_mis::cd::CdMis;
use radio_mis::params::CdParams;
use radio_netsim::{ChannelModel, SimConfig};
use serde::{Deserialize, Serialize};

fn row_stats(stats: &TrialStats) -> (String, String, String, String) {
    (
        fmt_num(Summary::of(&stats.energies).mean),
        fmt_num(Summary::of(&stats.avg_energies).mean),
        fmt_num(Summary::of(&stats.rounds).mean),
        pct(stats.correct, stats.successes()),
    )
}

/// One cached cell of the centralized "global-knowledge cost" baseline
/// panel: what sequential greedy and the parallel priority solver achieve
/// when the whole topology is known up front. Deterministic given the
/// graph recipe (portable RNG / split-seed priorities only), so every
/// field is cache-stable.
#[derive(Debug, Serialize, Deserialize)]
struct CentralCell {
    greedy_size: u64,
    random_greedy_size: u64,
    prio_size: u64,
    push_rounds: u32,
    pull_rounds: u32,
    auto_elimination: String,
    valid: bool,
}

fn central_cell(g: &mis_graphs::Graph, seed: u64) -> CentralCell {
    let greedy = mis::greedy_mis(g);
    let random_greedy = mis::random_greedy_mis(g, seed);
    let push = parallel::prio_mis_with(g, seed, 2, parallel::Elimination::Push);
    let pull = parallel::prio_mis_with(g, seed, 2, parallel::Elimination::Pull);
    let valid = push.mask == pull.mask
        && parallel::verify_mis_par(g, &push.mask, 2).is_ok()
        && mis::verify_mis(g, &greedy).is_ok()
        && mis::verify_mis(g, &random_greedy).is_ok();
    CentralCell {
        greedy_size: mis::set_size(&greedy) as u64,
        random_greedy_size: mis::set_size(&random_greedy) as u64,
        prio_size: mis::set_size(&push.mask) as u64,
        push_rounds: push.rounds,
        pull_rounds: pull.rounds,
        auto_elimination: parallel::choose_elimination(g).label().to_string(),
        valid,
    }
}

/// Runs E4.
pub fn run(cfg: &ExpConfig, orch: &Orchestrator) -> ExperimentOutput {
    let n = if cfg.quick { 256 } else { 2048 };
    let trials = cfg.trials(15);
    let mut table = Table::new([
        "family",
        "algorithm",
        "energy(max)",
        "energy(avg)",
        "rounds",
        "success",
    ]);
    let mut ratios = Vec::new();
    for fam in [
        Family::GnpAvgDegree(8),
        Family::GeometricAvgDegree(8),
        Family::Grid,
        Family::Star,
    ] {
        let g = fam.generate(n, cfg.seed ^ 0xE4);
        let graph_recipe = format!("{}/seed={:#x}", fam.label(), cfg.seed ^ 0xE4);
        let params = CdParams::for_n(n);
        let cd = orch.trials(
            UnitKey::new("e4", format!("{}/cd", fam.label()))
                .with("graph", &graph_recipe)
                .with("alg", "CdMis")
                .with("params", format!("{params:?}")),
            &g,
            SimConfig::new(ChannelModel::Cd).with_seed(cfg.seed ^ 1),
            trials,
            |_, _| CdMis::new(params),
        );
        let naive = orch.trials(
            UnitKey::new("e4", format!("{}/naive-luby", fam.label()))
                .with("graph", &graph_recipe)
                .with("alg", "naive_luby_cd")
                .with("params", format!("{params:?}")),
            &g,
            SimConfig::new(ChannelModel::Cd).with_seed(cfg.seed ^ 2),
            trials,
            |_, _| naive_luby_cd(params),
        );
        let beep = orch.trials(
            UnitKey::new("e4", format!("{}/beeping", fam.label()))
                .with("graph", &graph_recipe)
                .with("alg", "CdMis")
                .with("params", format!("{params:?}")),
            &g,
            SimConfig::new(ChannelModel::Beeping).with_seed(cfg.seed ^ 3),
            trials,
            |_, _| CdMis::new(params),
        );
        let native_params = BeepingParams::for_n(n);
        let native = orch.trials(
            UnitKey::new("e4", format!("{}/native-beeping", fam.label()))
                .with("graph", &graph_recipe)
                .with("alg", "NativeBeepingMis")
                .with("params", format!("{native_params:?}")),
            &g,
            SimConfig::new(ChannelModel::BeepingSenderCd).with_seed(cfg.seed ^ 4),
            trials,
            |_, _| NativeBeepingMis::new(native_params),
        );
        for (name, set) in [
            ("Algorithm 1 (CD)", &cd),
            ("naive Luby (CD)", &naive),
            ("Algorithm 1 (beeping)", &beep),
            ("native beeping MIS (sender CD, [28]-style)", &native),
        ] {
            let (emax, eavg, rounds, succ) = row_stats(set);
            table.push_row([fam.label(), name.to_string(), emax, eavg, rounds, succ]);
        }
        let cd_avg = Summary::of(&cd.avg_energies).mean;
        let naive_avg = Summary::of(&naive.avg_energies).mean;
        if cd_avg > 0.0 {
            ratios.push(naive_avg / cd_avg);
        }
    }
    let mean_ratio = ratios.iter().sum::<f64>() / ratios.len().max(1) as f64;

    // Centralized global-knowledge baselines: what the set sizes and round
    // counts look like when a solver sees the entire topology (sequential
    // greedy, portable random greedy, and the parallel priority solver in
    // both elimination modes) — the cost-of-distributedness yardstick the
    // Dani–Hayes comparison needs. Power-law joins the panel because it is
    // the topology where push-vs-pull selection actually flips.
    let mut central = Table::new([
        "family",
        "|MIS| greedy",
        "|MIS| rand-greedy",
        "|MIS| prio",
        "push rounds",
        "pull rounds",
        "auto",
        "valid",
    ]);
    for fam in [
        Family::GnpAvgDegree(8),
        Family::GeometricAvgDegree(8),
        Family::Grid,
        Family::Star,
        Family::PowerLaw(3),
    ] {
        let g = fam.generate(n, cfg.seed ^ 0xE4);
        let graph_recipe = format!("{}/seed={:#x}", fam.label(), cfg.seed ^ 0xE4);
        let cell: CentralCell = orch.unit(
            &UnitKey::new("e4", format!("{}/central", fam.label()))
                .with("graph", &graph_recipe)
                .with("alg", "centralized-baselines")
                .with("seed", format!("{:#x}", cfg.seed ^ 5)),
            || central_cell(&g, cfg.seed ^ 5),
        );
        central.push_row([
            fam.label(),
            cell.greedy_size.to_string(),
            cell.random_greedy_size.to_string(),
            cell.prio_size.to_string(),
            cell.push_rounds.to_string(),
            cell.pull_rounds.to_string(),
            cell.auto_elimination,
            if cell.valid {
                "yes".into()
            } else {
                "NO".into()
            },
        ]);
    }

    ExperimentOutput {
        id: "e4",
        title: "CD model: Algorithm 1 vs naive Luby vs beeping".into(),
        claim: "§1.3: a straightforward Luby implementation takes O(log²n) energy in the \
                CD model; Algorithm 1 takes O(log n); the beeping variant has identical \
                complexities (§3.1)."
            .into(),
        sections: vec![
            Section {
                caption: format!("n = {n}, {trials} trials per cell"),
                table,
            },
            Section {
                caption: format!(
                    "centralized global-knowledge baselines at n = {n} \
                     (set sizes + parallel-solver rounds; no radio rounds, no energy)"
                ),
                table: central,
            },
        ],
        findings: vec![
            format!(
                "naive Luby's node-averaged energy is {:.1}× Algorithm 1's (mean over \
                 families) — the log n separation the paper claims",
                mean_ratio
            ),
            "the beeping run matches Algorithm 1's energy and rounds (same machine, \
             same schedule)"
                .into(),
            "the native sender-CD beeping baseline shows what the extra power buys: \
             deterministic independence and O(log n)-scale rounds, at energy ≈ rounds \
             (no sleeping) — the §1.4 trade-off"
                .into(),
            "the centralized panel is the global-knowledge yardstick: with the whole \
             topology in hand, the priority solver settles in a handful of \
             bulk-synchronous rounds and both elimination modes agree byte-for-byte — \
             the distributed algorithms pay their rounds/energy for *not* knowing the \
             graph, not for set quality"
                .into(),
        ],
        charts: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_shows_separation() {
        let out = run(&ExpConfig::quick(9), &Orchestrator::ephemeral());
        assert!(out.findings[0].contains('×'));
        // 4 families × 4 algorithms.
        assert_eq!(out.sections[0].table.len(), 16);
        // Centralized panel: one row per family, power-law included, and
        // every solver output must have verified as a valid MIS.
        let central = &out.sections[1].table;
        assert_eq!(central.len(), 5);
        for line in central.to_csv().lines().skip(1) {
            assert!(line.ends_with(",yes"), "{line}");
        }
    }
}
