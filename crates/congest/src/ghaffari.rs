//! Ghaffari's MIS algorithm \[22\] in the SLEEPING-CONGEST model — the exact
//! dynamics that `radio-mis`'s LowDegreeMIS approximates over radio.
//!
//! Every node keeps a *desire level* `p(v)`, initially 1/2. Per algorithm
//! round (three CONGEST rounds here):
//!
//! 1. **Desire exchange**: broadcast `p(v)`; compute the effective degree
//!    `d(v) = Σ_{active u ∈ N(v)} p(u)` exactly (radio can only estimate
//!    this — compare `radio_mis::low_degree`).
//! 2. **Mark exchange**: mark with probability `p(v)` and broadcast the
//!    mark; a marked node with no marked neighbor joins the MIS.
//! 3. **Announce**: MIS nodes broadcast; hearers leave as `out-MIS`.
//!
//! Update: `p ← p/2` if `d(v) ≥ 2`, else `p ← min(2p, 1/2)`.

use crate::engine::{CongestProtocol, NextWake};
use radio_netsim::{NodeRng, NodeStatus};
use rand::Rng;

/// Messages exchanged by [`GhaffariCongest`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GhaffariMsg {
    /// Phase-1 desire level.
    Desire(f64),
    /// Phase-2 mark.
    Marked,
    /// Phase-3 MIS announcement.
    Joined,
}

/// Per-node Ghaffari state machine.
#[derive(Debug, Clone)]
pub struct GhaffariCongest {
    max_rounds_alg: u64,
    p: f64,
    p_min: f64,
    effective_degree: f64,
    marked: bool,
    heard_mark: bool,
    status: NodeStatus,
    done: bool,
}

impl GhaffariCongest {
    /// Creates a Ghaffari node; `n` bounds the network size and `d_max`
    /// the degree (sets the desire floor to `1/(4·d_max)` and the round
    /// budget to `8·⌈log₂ n⌉`).
    pub fn new(n: usize, d_max: usize) -> GhaffariCongest {
        let log = (n.max(2) as f64).log2().ceil() as u64;
        GhaffariCongest {
            max_rounds_alg: 8 * log + 8,
            p: 0.5,
            p_min: 1.0 / (4.0 * d_max.max(1) as f64),
            effective_degree: 0.0,
            marked: false,
            heard_mark: false,
            status: NodeStatus::Undecided,
            done: false,
        }
    }

    /// Current desire level (for cross-validation against the radio
    /// estimate-driven version).
    pub fn desire(&self) -> f64 {
        self.p
    }
}

impl CongestProtocol for GhaffariCongest {
    type Msg = GhaffariMsg;

    fn send(&mut self, round: u64, rng: &mut NodeRng) -> Option<GhaffariMsg> {
        match round % 3 {
            0 => Some(GhaffariMsg::Desire(self.p)),
            1 => {
                self.marked = rng.gen_bool(self.p);
                self.heard_mark = false;
                self.marked.then_some(GhaffariMsg::Marked)
            }
            _ => {
                if self.status == NodeStatus::InMis {
                    Some(GhaffariMsg::Joined)
                } else {
                    None
                }
            }
        }
    }

    fn receive(&mut self, round: u64, inbox: &[GhaffariMsg], _rng: &mut NodeRng) -> NextWake {
        match round % 3 {
            0 => {
                self.effective_degree = inbox
                    .iter()
                    .map(|m| match m {
                        GhaffariMsg::Desire(p) => *p,
                        _ => 0.0,
                    })
                    .sum();
                NextWake::Next
            }
            1 => {
                self.heard_mark = inbox.iter().any(|m| matches!(m, GhaffariMsg::Marked));
                if self.marked && !self.heard_mark {
                    self.status = NodeStatus::InMis;
                }
                NextWake::Next
            }
            _ => {
                if self.status == NodeStatus::InMis {
                    self.done = true;
                    return NextWake::Halt;
                }
                if inbox.iter().any(|m| matches!(m, GhaffariMsg::Joined)) {
                    self.status = NodeStatus::OutMis;
                    self.done = true;
                    return NextWake::Halt;
                }
                // Desire update for the next algorithm round.
                if self.effective_degree >= 2.0 {
                    self.p = (self.p / 2.0).max(self.p_min);
                } else {
                    self.p = (self.p * 2.0).min(0.5);
                }
                if round / 3 + 1 >= self.max_rounds_alg {
                    self.done = true;
                    return NextWake::Halt;
                }
                NextWake::Next
            }
        }
    }

    fn status(&self) -> NodeStatus {
        self.status
    }

    fn finished(&self) -> bool {
        self.done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::CongestSim;
    use mis_graphs::generators;

    #[test]
    fn solves_standard_graphs() {
        for g in [
            generators::empty(8),
            generators::path(50),
            generators::star(64),
            generators::clique(32),
            generators::gnp(200, 0.05, 4),
            generators::grid2d(10, 10),
        ] {
            let report = CongestSim::new(&g, 5)
                .run(|_, _| GhaffariCongest::new(g.len().max(4), g.max_degree().max(1)));
            assert!(report.is_correct_mis(&g), "failed on {g:?}");
        }
    }

    #[test]
    fn clique_single_winner() {
        let g = generators::clique(20);
        let report = CongestSim::new(&g, 8).run(|_, _| GhaffariCongest::new(20, 19));
        assert!(report.is_correct_mis(&g));
        assert_eq!(report.mis_mask().iter().filter(|&&b| b).count(), 1);
    }

    #[test]
    fn awake_complexity_logarithmic() {
        let g = generators::gnp(1000, 0.01, 6);
        let report = CongestSim::new(&g, 2).run(|_, _| GhaffariCongest::new(1000, g.max_degree()));
        assert!(report.is_correct_mis(&g));
        let log = (1000f64).log2();
        assert!(
            (report.max_awake() as f64) < 30.0 * log,
            "awake {} not O(log n)",
            report.max_awake()
        );
    }
}
