//! Failure injection: how the algorithms degrade when the channel loses
//! receptions (outside the paper's model — fading, interference).
//!
//! These tests pin the *qualitative* behavior: runs always terminate and
//! verification catches any damage; the no-CD algorithm tolerates mild loss
//! (its backoffs already repeat Θ(log n) times), while Algorithm 1 in the
//! CD model is brittle (one lost check-round reception can strand a node).

use energy_mis::graphs::generators;
use energy_mis::mis::cd::CdMis;
use energy_mis::mis::nocd::NoCdMis;
use energy_mis::mis::params::{CdParams, NoCdParams};
use energy_mis::netsim::{split_seed, ChannelModel, SimConfig, Simulator};

#[test]
fn runs_always_terminate_under_any_loss() {
    let g = generators::gnp(64, 0.1, 1);
    for loss in [0.0, 0.2, 0.8, 1.0] {
        let params = CdParams::for_n(256);
        let config = SimConfig::new(ChannelModel::Cd)
            .with_seed(11)
            .with_loss_probability(loss);
        let report = Simulator::new(&g, config).run(|_, _| CdMis::new(params));
        assert!(report.completed, "loss {loss}: run did not terminate");
        // Verification never panics; it reports honestly.
        let _ = report.verify_mis(&g);
    }
}

#[test]
fn total_loss_makes_everyone_a_winner() {
    // With loss = 1.0 every reception fades — including multi-transmitter
    // collisions, which the fade model used to (incorrectly) let through.
    // Every node hears pure Silence, believes it is isolated, and joins;
    // on a path that is maximally non-independent, and verification says so.
    let g = generators::path(8);
    let params = CdParams::for_n(64);
    let config = SimConfig::new(ChannelModel::Cd)
        .with_seed(3)
        .with_loss_probability(1.0);
    let report = Simulator::new(&g, config).run(|_, _| CdMis::new(params));
    assert!(report.completed);
    assert!(!report.is_correct_mis(&g));
    // *Everyone* joined: with collisions silenced too, no signal of any
    // kind survives to knock a node out.
    let joined = report.mis_mask().iter().filter(|&&b| b).count();
    assert_eq!(joined, 8, "only {joined} joined under total loss");
}

#[test]
fn nocd_tolerates_mild_loss() {
    // The no-CD algorithm's Θ(log n)-repeated backoffs provide redundancy:
    // a 2% reception-loss rate should usually still yield a correct MIS.
    let g = generators::gnp(48, 0.12, 5);
    let params = NoCdParams::for_n(192, g.max_degree().max(2));
    let mut successes = 0;
    let trials = 5;
    for t in 0..trials {
        let config = SimConfig::new(ChannelModel::NoCd)
            .with_seed(split_seed(77, t))
            .with_loss_probability(0.02);
        let report = Simulator::new(&g, config).run(|_, _| NoCdMis::new(params));
        assert!(report.completed);
        if report.is_correct_mis(&g) {
            successes += 1;
        }
    }
    assert!(
        successes >= trials - 1,
        "only {successes}/{trials} succeeded at 2% loss"
    );
}

#[test]
fn nocd_survives_even_heavy_loss_but_breaks_eventually() {
    // The Θ(log n)-repeated backoffs absorb a remarkable amount of loss:
    // measured, the success curve stays at 100% through ~60% loss and
    // collapses by ~90%. Pin both ends.
    let g = generators::gnp(48, 0.12, 9);
    let params = NoCdParams::for_n(192, g.max_degree().max(2));
    let run = |loss: f64, seed: u64| {
        let config = SimConfig::new(ChannelModel::NoCd)
            .with_seed(seed)
            .with_loss_probability(loss);
        Simulator::new(&g, config)
            .run(|_, _| NoCdMis::new(params))
            .is_correct_mis(&g)
    };
    let clean: usize = (0..4).filter(|&t| run(0.0, split_seed(5, t))).count();
    let moderate: usize = (0..4).filter(|&t| run(0.6, split_seed(6, t))).count();
    let extreme: usize = (0..4).filter(|&t| run(0.9, split_seed(7, t))).count();
    assert_eq!(clean, 4, "clean runs must all succeed");
    assert!(
        moderate >= 3,
        "60% loss should be absorbed, got {moderate}/4"
    );
    assert!(extreme <= 1, "90% loss unexpectedly succeeded {extreme}/4");
}

#[test]
fn synchronous_wakeup_assumption_is_load_bearing() {
    // §1.1: the paper assumes all nodes wake at round 0. Because nodes
    // share the global round clock, sub-phase staggering is absorbed
    // (late wakers are still schedule-aligned); but staggering across
    // *multiple phases* makes late wakers miss winners' one-shot
    // announcements entirely, and verification starts failing.
    use energy_mis::netsim::split_seed;
    let g = generators::gnp(64, 0.1, 13);
    let params = CdParams::for_n(256);
    let stagger = 8 * params.phase_len();
    let trials = 8u64;
    let run = |staggered: bool, t: u64| {
        let seed = split_seed(31, t);
        let sim = Simulator::new(&g, SimConfig::new(ChannelModel::Cd).with_seed(seed));
        let sim = if staggered {
            let offsets: Vec<u64> = (0..g.len() as u64)
                .map(|v| split_seed(seed, v) % stagger)
                .collect();
            sim.with_wake_offsets(offsets)
        } else {
            sim
        };
        sim.run(|_, _| CdMis::new(params)).is_correct_mis(&g)
    };
    let sync_ok = (0..trials).filter(|&t| run(false, t)).count();
    let async_ok = (0..trials).filter(|&t| run(true, t)).count();
    assert_eq!(
        sync_ok, trials as usize,
        "synchronous baseline must succeed"
    );
    assert!(
        async_ok < trials as usize,
        "staggered wake-up unexpectedly always succeeded ({async_ok}/{trials})"
    );
}

#[test]
fn crashed_nodes_are_exempt_and_survivors_still_solve_mis() {
    // Crash-stop faults through the facade: the fault-aware verifier judges
    // the surviving subgraph, so random crashes must not break correctness.
    use energy_mis::netsim::FaultPlan;
    let g = generators::gnp(48, 0.12, 21);
    let params = NoCdParams::for_n(192, g.max_degree().max(2));
    let mut successes = 0;
    let trials = 5;
    for t in 0..trials {
        // Crash rounds ≤ 10: early enough that every victim is still
        // active, so all six crashes are guaranteed to land.
        let plan = FaultPlan::none().with_random_crashes(6, 10);
        let config = SimConfig::new(ChannelModel::NoCd)
            .with_seed(split_seed(123, t))
            .with_faults(plan);
        let report = Simulator::new(&g, config).run(|_, _| NoCdMis::new(params));
        assert!(report.completed);
        assert_eq!(
            report.faulty.iter().filter(|&&f| f).count(),
            6,
            "every injected crash must be recorded as faulty"
        );
        if report.is_correct_mis(&g) {
            successes += 1;
        }
    }
    assert!(
        successes >= trials - 1,
        "only {successes}/{trials} solved the surviving subgraph under crashes"
    );
}

#[test]
fn jammers_strand_their_neighborhood_but_the_run_stays_bounded() {
    // A jammer is pure noise: its CD-model neighbors hear Collision forever
    // and can never decide, so the run must be capped — and the residual
    // undecided population must sit inside the jammed neighborhood.
    use energy_mis::netsim::FaultPlan;
    let g = generators::gnp(48, 0.12, 33);
    let params = CdParams::for_n(192);
    let plan = FaultPlan::none().with_jammer(0);
    let config = SimConfig::new(ChannelModel::Cd)
        .with_seed(9)
        .with_faults(plan)
        .with_max_rounds(50_000);
    let report = Simulator::new(&g, config).run(|_, _| CdMis::new(params));
    assert!(report.is_faulty(0), "the jammer itself is faulty");
    assert_eq!(report.meters[0].energy(), 0, "jammers meter no energy");
    // Every undecided survivor borders the jammer.
    for v in 1..g.len() {
        if report.meters[v].decided_at.is_none() {
            assert!(
                g.neighbors(v).contains(&0),
                "node {v} is stuck but does not border the jammer"
            );
        }
    }
}
