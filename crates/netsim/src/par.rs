//! Deterministic intra-round parallelism: the engine's worker pools and
//! the id-range shard splitter.
//!
//! The engine never makes scheduling-dependent decisions in parallel
//! code. Both round phases that shard — action collection and feedback
//! delivery — write into pre-sized output slots indexed by the node's
//! position in the (ascending) worklist, and every node draws only from
//! its own pre-split RNG stream. The serial merge that follows reads
//! those slots back in ascending id order, so thread count and work
//! stealing cannot change a single output byte. The argument is spelled
//! out in `docs/PARALLEL_ENGINE.md`.

use crate::protocol::NodeRng;
use mis_graphs::NodeId;
use std::sync::{Mutex, OnceLock};

/// At or below this many worklist entries a stage runs inline: sharding
/// overhead would dominate, and the differential suites deliberately
/// straddle the threshold so both the inline and the split paths are
/// exercised.
pub(crate) const MIN_PAR_GRAIN: usize = 64;

/// Engine pools built so far, keyed by worker count. Pools are leaked
/// (see [`engine_pool`]) so the entries are `'static`.
static POOLS: OnceLock<Mutex<Vec<(usize, &'static rayon::ThreadPool)>>> = OnceLock::new();

/// The process-wide engine pool with `threads` workers.
///
/// Pools are built lazily, once per distinct thread count, and
/// deliberately leaked: the steady-state round loop must stay
/// allocation-free (see the `engine_alloc` test), and a run's single
/// `install` onto a long-lived pool keeps every `rayon::join` on
/// pre-existing worker stacks. The pool size is pinned explicitly, so
/// `RAYON_NUM_THREADS` governs only rayon's global pool (the
/// experiments harness), never an engine run's `--threads`.
pub(crate) fn engine_pool(threads: usize) -> &'static rayon::ThreadPool {
    let registry = POOLS.get_or_init(|| Mutex::new(Vec::new()));
    let mut pools = registry.lock().expect("engine pool registry poisoned");
    if let Some(&(_, pool)) = pools.iter().find(|&&(t, _)| t == threads) {
        return pool;
    }
    let pool = Box::leak(Box::new(
        rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .thread_name(|i| format!("netsim-engine-{i}"))
            .build()
            .expect("failed to build the engine thread pool"),
    ));
    pools.push((threads, pool));
    pool
}

/// Applies `f` to every id in `ids`, handing it disjoint `&mut` access
/// to the node's slab entry and RNG plus the positionally-matching
/// output slot.
///
/// `ids` must be strictly ascending with every id in
/// `base..base + nodes.len()`, and `out.len() == ids.len()`. With `par`
/// false — or at or below [`MIN_PAR_GRAIN`] ids — this is a plain
/// ascending loop. With `par` true it halves the worklist, divides the
/// slabs at the split id with `split_at_mut`, and recurses under
/// `rayon::join`: every node is processed exactly once with the same
/// per-node inputs as the serial walk, which is why thread count cannot
/// change any output byte. `f` must touch nothing but its arguments and
/// shared read-only captures.
pub(crate) fn shard_slices<P, O, F>(
    ids: &[NodeId],
    base: usize,
    nodes: &mut [P],
    rngs: &mut [NodeRng],
    out: &mut [O],
    par: bool,
    f: &F,
) where
    P: Send,
    O: Send,
    F: Fn(NodeId, &mut P, &mut NodeRng, &mut O) + Sync,
{
    debug_assert_eq!(ids.len(), out.len());
    debug_assert_eq!(nodes.len(), rngs.len());
    // The disjointness of the split_at_mut sharding below rests on ids
    // being strictly ascending and inside the slab range.
    debug_assert!(ids.windows(2).all(|w| w[0] < w[1]));
    debug_assert!(ids.first().is_none_or(|&v| v >= base));
    debug_assert!(ids.last().is_none_or(|&v| v - base < nodes.len()));
    if !par || ids.len() <= MIN_PAR_GRAIN {
        for (slot, &v) in out.iter_mut().zip(ids) {
            f(v, &mut nodes[v - base], &mut rngs[v - base], slot);
        }
        return;
    }
    let mid = ids.len() / 2;
    let (left_ids, right_ids) = ids.split_at(mid);
    // Ids are strictly ascending, so every left id indexes below the
    // first right id and the slab split below is exact.
    let cut = right_ids[0] - base;
    let (left_nodes, right_nodes) = nodes.split_at_mut(cut);
    let (left_rngs, right_rngs) = rngs.split_at_mut(cut);
    let (left_out, right_out) = out.split_at_mut(mid);
    rayon::join(
        || shard_slices(left_ids, base, left_nodes, left_rngs, left_out, true, f),
        || {
            shard_slices(
                right_ids,
                base + cut,
                right_nodes,
                right_rngs,
                right_out,
                true,
                f,
            )
        },
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn run_shard(ids: &[NodeId], n: usize, par: bool) -> (Vec<u32>, Vec<u64>) {
        let mut nodes: Vec<u32> = vec![0; n];
        let mut rngs: Vec<NodeRng> = (0..n)
            .map(|v| NodeRng::seed_from_u64(crate::rng::split_seed(7, v as u64)))
            .collect();
        let mut out: Vec<u64> = vec![0; ids.len()];
        shard_slices(
            ids,
            0,
            &mut nodes,
            &mut rngs,
            &mut out,
            par,
            &|v: NodeId, node: &mut u32, rng: &mut NodeRng, slot: &mut u64| {
                *node += 1;
                *slot = v as u64 ^ rng.gen::<u64>();
            },
        );
        (nodes, out)
    }

    #[test]
    fn parallel_split_matches_serial_walk_exactly() {
        // Enough ids to split several times, with gaps so base arithmetic
        // is exercised.
        let ids: Vec<NodeId> = (0..500).filter(|v| v % 3 != 1).collect();
        let (serial_nodes, serial_out) = run_shard(&ids, 500, false);
        let (par_nodes, par_out) = engine_pool(3).install(|| run_shard(&ids, 500, true));
        assert_eq!(serial_nodes, par_nodes);
        assert_eq!(serial_out, par_out);
        // Every listed node was visited exactly once, unlisted never.
        for v in 0..500 {
            assert_eq!(serial_nodes[v], u32::from(ids.contains(&v)));
        }
    }

    #[test]
    fn small_worklists_run_inline_even_when_parallel() {
        let ids: Vec<NodeId> = (10..30).collect();
        let (a, ao) = run_shard(&ids, 40, false);
        let (b, bo) = run_shard(&ids, 40, true);
        assert_eq!(a, b);
        assert_eq!(ao, bo);
    }

    #[test]
    fn engine_pool_is_cached_per_thread_count() {
        let p2a = engine_pool(2) as *const rayon::ThreadPool;
        let p2b = engine_pool(2) as *const rayon::ThreadPool;
        assert!(std::ptr::eq(p2a, p2b));
        assert_eq!(engine_pool(2).current_num_threads(), 2);
    }
}
