//! The evaluation harness: one experiment per claim of the paper.
//!
//! The paper is a theory-only brief announcement, so its "tables and
//! figures" are its theorems and lemmas; each module here turns one claim
//! into a measured table (see `DESIGN.md` §4 for the index):
//!
//! | id | claim | module |
//! |----|-------|--------|
//! | E1 | Thm 1 — Ω(log n) energy lower bound | [`e01_lower_bound`] |
//! | E2 | Thm 2 — CD: O(log n) energy, O(log²n) rounds | [`e02_cd_scaling`] |
//! | E3 | Thm 10 — no-CD: O(log²n·loglog n) energy | [`e03_nocd_scaling`] |
//! | E4 | §1.3 — CD vs naive Luby vs beeping | [`e04_cd_comparison`] |
//! | E5 | §1.3/§5 — no-CD vs Davies-style vs naive | [`e05_nocd_comparison`] |
//! | E6 | Lemmas 5 & 20 — residual-edge decay | [`e06_residual`] |
//! | E7 | Lemmas 8–9 — backoff complexity/success | [`e07_backoff`] |
//! | E8 | Cor. 13 / Lemma 11 — committed subgraph | [`e08_committed`] |
//! | E9 | Lemmas 14–15 — winner properties | [`e09_winners`] |
//! | E10 | Thm 10 — the log Δ round factor | [`e10_delta_sweep`] |
//! | E11 | §5.1 — design ablations | [`e11_ablation`] |
//! | E12 | §1.1 fn.1 — unknown-Δ guessing | [`e12_unknown_delta`] |
//! | E13 | \[13\]/\[22\] — wired SLEEPING-CONGEST context | [`e13_congest`] |
//! | E14 | Fig. 2 — Algorithm 2's per-component energy | [`e14_energy_breakdown`] |
//! | E15 | beyond-model robustness: loss & async wake-up | [`e15_robustness`] |
//! | E16 | churn & recovery: self-healing MIS maintenance | [`e16_churn_recovery`] |
//! | E17 | multichannel jamming resilience (Daum–Kuhn) | [`e17_multichannel`] |
//! | E18 | generic energy conservation (Dani–Hayes) | [`e18_conserve`] |
//!
//! Run everything with `cargo run --release -p mis-experiments --bin
//! experiments -- all`; each experiment is deterministic given `--seed`.
//! Every experiment resolves its simulation work through the
//! [`orchestrator`]: with `--cache-dir`, results are content-addressed and
//! reruns recompute only invalidated cells (see
//! `docs/EXPERIMENT_PIPELINE.md`).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod e01_lower_bound;
pub mod e02_cd_scaling;
pub mod e03_nocd_scaling;
pub mod e04_cd_comparison;
pub mod e05_nocd_comparison;
pub mod e06_residual;
pub mod e07_backoff;
pub mod e08_committed;
pub mod e09_winners;
pub mod e10_delta_sweep;
pub mod e11_ablation;
pub mod e12_unknown_delta;
pub mod e13_congest;
pub mod e14_energy_breakdown;
pub mod e15_robustness;
pub mod e16_churn_recovery;
pub mod e17_multichannel;
pub mod e18_conserve;
pub mod harness;
pub mod orchestrator;

pub use harness::{ExpConfig, ExperimentOutput, OrderedSink, Section};
pub use orchestrator::{Orchestrator, RunManifest, TrialStats, UnitKey, UnitRecord};

/// All experiment ids, in order.
pub const ALL_IDS: [&str; 18] = [
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13", "e14", "e15",
    "e16", "e17", "e18",
];

/// Runs one experiment by id with a throwaway (uncached) orchestrator.
///
/// # Panics
///
/// Panics on an unknown id (the binary validates first).
pub fn run_experiment(id: &str, cfg: &ExpConfig) -> ExperimentOutput {
    run_experiment_in(id, cfg, &Orchestrator::ephemeral())
}

/// Runs one experiment by id, resolving its job units through `orch` —
/// the cache-aware entry point behind [`run_experiment`] and [`run_all`].
///
/// # Panics
///
/// Panics on an unknown id (the binary validates first).
pub fn run_experiment_in(id: &str, cfg: &ExpConfig, orch: &Orchestrator) -> ExperimentOutput {
    match id {
        "e1" => e01_lower_bound::run(cfg, orch),
        "e2" => e02_cd_scaling::run(cfg, orch),
        "e3" => e03_nocd_scaling::run(cfg, orch),
        "e4" => e04_cd_comparison::run(cfg, orch),
        "e5" => e05_nocd_comparison::run(cfg, orch),
        "e6" => e06_residual::run(cfg, orch),
        "e7" => e07_backoff::run(cfg, orch),
        "e8" => e08_committed::run(cfg, orch),
        "e9" => e09_winners::run(cfg, orch),
        "e10" => e10_delta_sweep::run(cfg, orch),
        "e11" => e11_ablation::run(cfg, orch),
        "e12" => e12_unknown_delta::run(cfg, orch),
        "e13" => e13_congest::run(cfg, orch),
        "e14" => e14_energy_breakdown::run(cfg, orch),
        "e15" => e15_robustness::run(cfg, orch),
        "e16" => e16_churn_recovery::run(cfg, orch),
        "e17" => e17_multichannel::run(cfg, orch),
        "e18" => e18_conserve::run(cfg, orch),
        other => panic!("unknown experiment id {other:?}"),
    }
}

/// Runs a batch of experiments on the shared rayon pool, collecting their
/// outputs in *input order* (an [`OrderedSink`] keyed by position — never
/// completion order, which work stealing makes nondeterministic). One pool
/// drains the whole job graph: experiments fan out here and their trial
/// blocks fan out beneath, so wide sweeps steal idle workers from cheap
/// experiments that finished early.
///
/// # Panics
///
/// Panics on an unknown id (the binary validates first).
pub fn run_all(ids: &[&str], cfg: &ExpConfig, orch: &Orchestrator) -> Vec<ExperimentOutput> {
    use rayon::prelude::*;
    let sink = OrderedSink::new();
    ids.par_iter().enumerate().for_each(|(i, id)| {
        sink.push(i, run_experiment_in(id, cfg, orch));
    });
    sink.into_ordered()
}
