//! Hand-rolled argument parsing (keeps the dependency set to the workspace
//! baseline).

use mis_graphs::generators::Family;
use radio_netsim::EventKind;

/// Which algorithm `mis-sim run` executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// Algorithm 1 in the CD model.
    Cd,
    /// Algorithm 1 in the beeping model.
    Beeping,
    /// Native beeping MIS with sender-side CD (\[28\]-style).
    BeepingNative,
    /// Naive Luby in the CD model (no early sleep).
    NaiveLuby,
    /// Algorithm 2 in the no-CD model.
    NoCd,
    /// Davies-style LowDegreeMIS (no-CD) on the full graph.
    LowDegree,
    /// Naive CD-over-backoff simulation (no-CD).
    NoCdNaive,
    /// Algorithm 2 with unknown Δ (doubly-exponential guessing).
    UnknownDelta,
    /// Luby in the wired SLEEPING-CONGEST model.
    CongestLuby,
    /// Ghaffari in the wired SLEEPING-CONGEST model.
    CongestGhaffari,
}

impl Algorithm {
    /// All algorithm labels, for `mis-sim list`.
    pub fn all() -> [(&'static str, Algorithm); 10] {
        [
            ("cd", Algorithm::Cd),
            ("beeping", Algorithm::Beeping),
            ("beeping-native", Algorithm::BeepingNative),
            ("naive-luby", Algorithm::NaiveLuby),
            ("nocd", Algorithm::NoCd),
            ("low-degree", Algorithm::LowDegree),
            ("nocd-naive", Algorithm::NoCdNaive),
            ("unknown-delta", Algorithm::UnknownDelta),
            ("congest-luby", Algorithm::CongestLuby),
            ("congest-ghaffari", Algorithm::CongestGhaffari),
        ]
    }

    /// Parses an algorithm label.
    ///
    /// # Errors
    ///
    /// Lists the accepted labels on failure.
    pub fn parse(label: &str) -> Result<Algorithm, String> {
        Algorithm::all()
            .into_iter()
            .find(|(l, _)| *l == label)
            .map(|(_, a)| a)
            .ok_or_else(|| {
                format!(
                    "unknown algorithm {label:?}; expected one of: {}",
                    Algorithm::all().map(|(l, _)| l).join(", ")
                )
            })
    }

    /// The stable label.
    pub fn label(self) -> &'static str {
        Algorithm::all()
            .into_iter()
            .find(|(_, a)| *a == self)
            .map(|(l, _)| l)
            .expect("all variants labelled")
    }
}

/// Options for `mis-sim run`.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOpts {
    /// Algorithm to execute.
    pub algorithm: Algorithm,
    /// Topology family (ignored when `graph_path` is set).
    pub family: Family,
    /// Network size (ignored when `graph_path` is set).
    pub n: usize,
    /// Load the topology from an edge-list file instead of generating.
    pub graph_path: Option<String>,
    /// Number of independently seeded trials.
    pub trials: usize,
    /// Master seed.
    pub seed: u64,
    /// Channel reception-loss probability.
    pub loss: f64,
    /// Use the paper's asymptotic constants instead of the calibrated
    /// presets.
    pub paper_constants: bool,
    /// Emit JSON instead of a table.
    pub json: bool,
    /// Write each trial's per-round metrics as JSON Lines to this path.
    pub metrics: Option<String>,
}

impl Default for RunOpts {
    fn default() -> RunOpts {
        RunOpts {
            algorithm: Algorithm::Cd,
            family: Family::GnpAvgDegree(8),
            n: 256,
            graph_path: None,
            trials: 5,
            seed: 0,
            loss: 0.0,
            paper_constants: false,
            json: false,
            metrics: None,
        }
    }
}

/// Options for `mis-sim trace`.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceOpts {
    /// Algorithm to trace (radio algorithms only).
    pub algorithm: Algorithm,
    /// Topology family (ignored when `graph_path` is set).
    pub family: Family,
    /// Network size (ignored when `graph_path` is set).
    pub n: usize,
    /// Load the topology from an edge-list file instead of generating.
    pub graph_path: Option<String>,
    /// Master seed of the (single) traced run.
    pub seed: u64,
    /// Channel reception-loss probability.
    pub loss: f64,
    /// Use the paper's asymptotic constants instead of the calibrated
    /// presets.
    pub paper_constants: bool,
    /// Event kinds to record (`None` = every kind).
    pub events: Option<Vec<EventKind>>,
    /// Restrict per-node events to these nodes (`None` = all nodes).
    pub nodes: Option<Vec<usize>>,
    /// First round to record (inclusive).
    pub from: Option<u64>,
    /// Last round to record (exclusive).
    pub to: Option<u64>,
    /// Write the JSONL stream here instead of stdout.
    pub out: Option<String>,
}

impl Default for TraceOpts {
    fn default() -> TraceOpts {
        TraceOpts {
            algorithm: Algorithm::Cd,
            family: Family::GnpAvgDegree(8),
            n: 256,
            graph_path: None,
            seed: 0,
            loss: 0.0,
            paper_constants: false,
            events: None,
            nodes: None,
            from: None,
            to: None,
            out: None,
        }
    }
}

/// Options for `mis-sim graph`.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphOpts {
    /// Topology family.
    pub family: Family,
    /// Network size.
    pub n: usize,
    /// Generator seed.
    pub seed: u64,
    /// Write the edge list here (stdout summary only when `None`).
    pub out: Option<String>,
}

/// Options for `mis-sim verify`.
#[derive(Debug, Clone, PartialEq)]
pub struct VerifyOpts {
    /// Edge-list file of the topology.
    pub graph: String,
    /// File with one in-MIS node id per line.
    pub set: String,
}

/// A parsed invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `mis-sim run`.
    Run(RunOpts),
    /// `mis-sim trace`.
    Trace(TraceOpts),
    /// `mis-sim graph`.
    Graph(GraphOpts),
    /// `mis-sim verify`.
    Verify(VerifyOpts),
    /// `mis-sim list`.
    List,
}

/// The full parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub struct Cli {
    /// The subcommand.
    pub command: Command,
}

/// Usage text.
pub const USAGE: &str = "\
mis-sim — energy-efficient radio MIS simulator

USAGE:
  mis-sim run    --algorithm <ALG> (--family <FAM> --n <N> | --graph <FILE>)
                 [--trials <T>] [--seed <S>] [--loss <P>]
                 [--paper-constants] [--json] [--metrics <FILE>]
  mis-sim trace  --algorithm <ALG> (--family <FAM> --n <N> | --graph <FILE>)
                 [--seed <S>] [--loss <P>] [--paper-constants]
                 [--events <K,K,..>] [--nodes <V,V,..>]
                 [--from <ROUND>] [--to <ROUND>] [--out <FILE>]
  mis-sim graph  --family <FAM> --n <N> [--seed <S>] [--out <FILE>]
  mis-sim verify --graph <FILE> --set <FILE>
  mis-sim list

`run --metrics` appends one JSON line per (trial, processed round) with the
channel metrics of that round. `trace` streams the events of a single run
as JSON Lines; event kinds are acted, fed, status, finished, metrics.

Run `mis-sim list` for the available algorithms and families.";

/// Parses a full argument vector (without the program name).
///
/// # Errors
///
/// Returns a user-facing message (usually followed by [`USAGE`]).
pub fn parse(args: &[String]) -> Result<Cli, String> {
    let mut it = args.iter().map(String::as_str);
    let sub = it.next().ok_or("missing subcommand")?;
    let rest: Vec<&str> = it.collect();
    let command = match sub {
        "run" => Command::Run(parse_run(&rest)?),
        "trace" => Command::Trace(parse_trace(&rest)?),
        "graph" => Command::Graph(parse_graph(&rest)?),
        "verify" => Command::Verify(parse_verify(&rest)?),
        "list" => {
            if !rest.is_empty() {
                return Err("`list` takes no options".into());
            }
            Command::List
        }
        other => return Err(format!("unknown subcommand {other:?}")),
    };
    Ok(Cli { command })
}

/// Pulls `--key value` pairs and bare flags out of an argument list.
fn take_options<'a>(
    args: &[&'a str],
    flags: &[&str],
) -> Result<std::collections::HashMap<String, Option<&'a str>>, String> {
    let mut out = std::collections::HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let key = args[i];
        if !key.starts_with("--") {
            return Err(format!("unexpected argument {key:?}"));
        }
        let name = key.trim_start_matches("--").to_string();
        if flags.contains(&name.as_str()) {
            out.insert(name, None);
            i += 1;
        } else {
            let value = args
                .get(i + 1)
                .ok_or_else(|| format!("{key} requires a value"))?;
            out.insert(name, Some(*value));
            i += 2;
        }
    }
    Ok(out)
}

fn req<'a>(
    opts: &std::collections::HashMap<String, Option<&'a str>>,
    key: &str,
) -> Result<&'a str, String> {
    opts.get(key)
        .and_then(|v| *v)
        .ok_or_else(|| format!("missing required option --{key}"))
}

fn parse_num<T: std::str::FromStr>(value: &str, key: &str) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    value
        .parse()
        .map_err(|e| format!("invalid --{key} {value:?}: {e}"))
}

fn parse_run(args: &[&str]) -> Result<RunOpts, String> {
    let opts = take_options(args, &["paper-constants", "json"])?;
    for key in opts.keys() {
        if !["algorithm", "family", "n", "graph", "trials", "seed", "loss",
             "paper-constants", "json", "metrics"]
            .contains(&key.as_str())
        {
            return Err(format!("unknown option --{key} for `run`"));
        }
    }
    let mut run = RunOpts {
        algorithm: Algorithm::parse(req(&opts, "algorithm")?)?,
        ..RunOpts::default()
    };
    run.graph_path = opts.get("graph").and_then(|v| v.map(str::to_string));
    if run.graph_path.is_none() {
        run.family = Family::parse(req(&opts, "family")?)?;
        run.n = parse_num(req(&opts, "n")?, "n")?;
    }
    if let Some(Some(v)) = opts.get("trials") {
        run.trials = parse_num(v, "trials")?;
    }
    if let Some(Some(v)) = opts.get("seed") {
        run.seed = parse_num(v, "seed")?;
    }
    if let Some(Some(v)) = opts.get("loss") {
        run.loss = parse_num(v, "loss")?;
        if !(0.0..=1.0).contains(&run.loss) {
            return Err(format!("--loss {} outside [0, 1]", run.loss));
        }
    }
    run.paper_constants = opts.contains_key("paper-constants");
    run.json = opts.contains_key("json");
    run.metrics = opts.get("metrics").and_then(|v| v.map(str::to_string));
    if run.trials == 0 {
        return Err("--trials must be ≥ 1".into());
    }
    Ok(run)
}

/// Parses a comma-separated list with one error message per bad element.
fn parse_list<T>(
    value: &str,
    key: &str,
    parse_one: impl Fn(&str) -> Result<T, String>,
) -> Result<Vec<T>, String> {
    value
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|s| parse_one(s).map_err(|e| format!("invalid --{key} element {s:?}: {e}")))
        .collect()
}

fn parse_trace(args: &[&str]) -> Result<TraceOpts, String> {
    let opts = take_options(args, &["paper-constants"])?;
    for key in opts.keys() {
        if !["algorithm", "family", "n", "graph", "seed", "loss", "paper-constants",
             "events", "nodes", "from", "to", "out"]
            .contains(&key.as_str())
        {
            return Err(format!("unknown option --{key} for `trace`"));
        }
    }
    let mut trace = TraceOpts {
        algorithm: Algorithm::parse(req(&opts, "algorithm")?)?,
        ..TraceOpts::default()
    };
    trace.graph_path = opts.get("graph").and_then(|v| v.map(str::to_string));
    if trace.graph_path.is_none() {
        trace.family = Family::parse(req(&opts, "family")?)?;
        trace.n = parse_num(req(&opts, "n")?, "n")?;
    }
    if let Some(Some(v)) = opts.get("seed") {
        trace.seed = parse_num(v, "seed")?;
    }
    if let Some(Some(v)) = opts.get("loss") {
        trace.loss = parse_num(v, "loss")?;
        if !(0.0..=1.0).contains(&trace.loss) {
            return Err(format!("--loss {} outside [0, 1]", trace.loss));
        }
    }
    trace.paper_constants = opts.contains_key("paper-constants");
    if let Some(Some(v)) = opts.get("events") {
        trace.events = Some(parse_list(v, "events", EventKind::parse)?);
    }
    if let Some(Some(v)) = opts.get("nodes") {
        trace.nodes = Some(parse_list(v, "nodes", |s| parse_num(s, "nodes"))?);
    }
    if let Some(Some(v)) = opts.get("from") {
        trace.from = Some(parse_num(v, "from")?);
    }
    if let Some(Some(v)) = opts.get("to") {
        trace.to = Some(parse_num(v, "to")?);
    }
    if let (Some(from), Some(to)) = (trace.from, trace.to) {
        if from >= to {
            return Err(format!("--from {from} must be below --to {to}"));
        }
    }
    trace.out = opts.get("out").and_then(|v| v.map(str::to_string));
    Ok(trace)
}

fn parse_graph(args: &[&str]) -> Result<GraphOpts, String> {
    let opts = take_options(args, &[])?;
    for key in opts.keys() {
        if !["family", "n", "seed", "out"].contains(&key.as_str()) {
            return Err(format!("unknown option --{key} for `graph`"));
        }
    }
    Ok(GraphOpts {
        family: Family::parse(req(&opts, "family")?)?,
        n: parse_num(req(&opts, "n")?, "n")?,
        seed: match opts.get("seed") {
            Some(Some(v)) => parse_num(v, "seed")?,
            _ => 0,
        },
        out: opts.get("out").and_then(|v| v.map(str::to_string)),
    })
}

fn parse_verify(args: &[&str]) -> Result<VerifyOpts, String> {
    let opts = take_options(args, &[])?;
    Ok(VerifyOpts {
        graph: req(&opts, "graph")?.to_string(),
        set: req(&opts, "set")?.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(line: &str) -> Cli {
        let args: Vec<String> = line.split_whitespace().map(str::to_string).collect();
        parse(&args).unwrap()
    }

    #[test]
    fn parses_run() {
        let cli = parse_ok(
            "run --algorithm nocd --family udg-d10 --n 500 --trials 3 --seed 9 --loss 0.1 --json",
        );
        match cli.command {
            Command::Run(r) => {
                assert_eq!(r.algorithm, Algorithm::NoCd);
                assert_eq!(r.family, Family::GeometricAvgDegree(10));
                assert_eq!(r.n, 500);
                assert_eq!(r.trials, 3);
                assert_eq!(r.seed, 9);
                assert!((r.loss - 0.1).abs() < 1e-12);
                assert!(r.json);
                assert!(!r.paper_constants);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_run_with_metrics_path() {
        let cli = parse_ok("run --algorithm cd --family star --n 16 --metrics out.jsonl");
        match cli.command {
            Command::Run(r) => assert_eq!(r.metrics.as_deref(), Some("out.jsonl")),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_trace() {
        let cli = parse_ok(
            "trace --algorithm nocd --family star --n 32 --seed 4 \
             --events acted,metrics --nodes 0,3,5 --from 2 --to 9 --out t.jsonl",
        );
        match cli.command {
            Command::Trace(t) => {
                assert_eq!(t.algorithm, Algorithm::NoCd);
                assert_eq!(t.n, 32);
                assert_eq!(t.seed, 4);
                assert_eq!(
                    t.events,
                    Some(vec![EventKind::Acted, EventKind::RoundMetrics])
                );
                assert_eq!(t.nodes, Some(vec![0, 3, 5]));
                assert_eq!(t.from, Some(2));
                assert_eq!(t.to, Some(9));
                assert_eq!(t.out.as_deref(), Some("t.jsonl"));
                assert!(!t.paper_constants);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn trace_defaults_are_unfiltered() {
        let cli = parse_ok("trace --algorithm cd --graph topo.txt");
        match cli.command {
            Command::Trace(t) => {
                assert_eq!(t.graph_path.as_deref(), Some("topo.txt"));
                assert_eq!(t.events, None);
                assert_eq!(t.nodes, None);
                assert_eq!(t.from, None);
                assert_eq!(t.to, None);
                assert_eq!(t.out, None);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_run_with_graph_file() {
        let cli = parse_ok("run --algorithm cd --graph topo.txt");
        match cli.command {
            Command::Run(r) => assert_eq!(r.graph_path.as_deref(), Some("topo.txt")),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_graph_and_verify_and_list() {
        assert!(matches!(
            parse_ok("graph --family star --n 64 --out g.txt").command,
            Command::Graph(_)
        ));
        assert!(matches!(
            parse_ok("verify --graph g.txt --set s.txt").command,
            Command::Verify(_)
        ));
        assert_eq!(parse_ok("list").command, Command::List);
    }

    #[test]
    fn rejects_bad_inputs() {
        let check = |line: &str, needle: &str| {
            let args: Vec<String> = line.split_whitespace().map(str::to_string).collect();
            let err = parse(&args).unwrap_err();
            assert!(err.contains(needle), "{err:?} missing {needle:?}");
        };
        check("run --algorithm warp --family star --n 4", "unknown algorithm");
        check("run --algorithm cd --family nope --n 4", "unknown family");
        check("run --algorithm cd --family star", "missing required option --n");
        check("run --algorithm cd --family star --n x", "invalid --n");
        check("run --algorithm cd --family star --n 4 --loss 2", "outside [0, 1]");
        check("run --algorithm cd --family star --n 4 --trials 0", "≥ 1");
        check("frobnicate", "unknown subcommand");
        check("list --extra x", "takes no options");
        check("run --algorithm cd --family star --n 4 --bogus 1", "unknown option");
        check("trace --algorithm cd --family star --n 4 --events warp", "unknown event kind");
        check("trace --algorithm cd --family star --n 4 --nodes 1,x", "invalid --nodes");
        check("trace --algorithm cd --family star --n 4 --from 9 --to 3", "below");
        check("trace --algorithm cd --family star --n 4 --bogus 1", "unknown option");
    }

    #[test]
    fn algorithm_labels_roundtrip() {
        for (label, alg) in Algorithm::all() {
            assert_eq!(Algorithm::parse(label), Ok(alg));
            assert_eq!(alg.label(), label);
        }
    }
}
