//! Markdown / CSV table rendering for experiment outputs.

/// A simple rectangular table with a header row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> Table {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn push_row<S: Into<String>>(&mut self, row: impl IntoIterator<Item = S>) -> &mut Table {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width {} != header width {}",
            row.len(),
            self.headers.len()
        );
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders GitHub-flavored markdown with padded columns.
    pub fn to_markdown(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let render_row = |cells: &[String]| -> String {
            let padded: Vec<String> = cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:width$}", c, width = widths[i]))
                .collect();
            format!("| {} |", padded.join(" | "))
        };
        let mut out = String::new();
        out.push_str(&render_row(&self.headers));
        out.push('\n');
        let sep: Vec<String> = (0..cols).map(|i| "-".repeat(widths[i])).collect();
        out.push_str(&format!("| {} |", sep.join(" | ")));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row));
            out.push('\n');
        }
        out
    }

    /// Renders RFC-4180-ish CSV (quotes cells containing commas or quotes).
    pub fn to_csv(&self) -> String {
        let esc = |s: &String| -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.clone()
            }
        };
        let mut out = String::new();
        out.push_str(&self.headers.iter().map(esc).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(esc).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with sensible precision for tables: integers as
/// integers, otherwise 2–3 significant decimals. Non-finite values —
/// e.g. the `NaN` an empty trial set summarizes to, or an infinity from
/// a zero division — render as `n/a` rather than leaking `NaN` into
/// reports.
pub fn fmt_num(x: f64) -> String {
    if !x.is_finite() {
        "n/a".to_string()
    } else if x == x.trunc() && x.abs() < 1e12 {
        format!("{}", x as i64)
    } else if x.abs() >= 100.0 {
        format!("{x:.1}")
    } else if x.abs() >= 1.0 {
        format!("{x:.2}")
    } else {
        format!("{x:.4}")
    }
}

/// Formats a wall-clock duration given in milliseconds for tables and
/// progress lines: sub-second durations in ms, sub-minute in seconds,
/// longer ones as `MmSSs`. Non-finite or negative inputs render as `n/a`.
pub fn fmt_duration_ms(ms: f64) -> String {
    if !ms.is_finite() || ms < 0.0 {
        "n/a".to_string()
    } else if ms < 1000.0 {
        format!("{ms:.0}ms")
    } else if ms < 60_000.0 {
        format!("{:.1}s", ms / 1000.0)
    } else {
        let total_secs = (ms / 1000.0).round() as u64;
        format!("{}m{:02}s", total_secs / 60, total_secs % 60)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_render() {
        let mut t = Table::new(["n", "energy"]);
        t.push_row(["256", "41"]);
        t.push_row(["1024", "55"]);
        let md = t.to_markdown();
        assert!(md.starts_with("| n    | energy |"));
        assert!(md.contains("| 1024 | 55     |"));
        assert_eq!(md.lines().count(), 4);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_render_with_escaping() {
        let mut t = Table::new(["a", "b"]);
        t.push_row(["x,y", "he said \"hi\""]);
        let csv = t.to_csv();
        assert_eq!(csv, "a,b\n\"x,y\",\"he said \"\"hi\"\"\"\n");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn width_mismatch_rejected() {
        let mut t = Table::new(["a", "b"]);
        t.push_row(["only one"]);
    }

    #[test]
    fn number_formatting() {
        assert_eq!(fmt_num(42.0), "42");
        assert_eq!(fmt_num(3.14159), "3.14");
        assert_eq!(fmt_num(123.456), "123.5");
        assert_eq!(fmt_num(0.01234), "0.0123");
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration_ms(0.4), "0ms");
        assert_eq!(fmt_duration_ms(75.0), "75ms");
        assert_eq!(fmt_duration_ms(1499.0), "1.5s");
        assert_eq!(fmt_duration_ms(59_940.0), "59.9s");
        assert_eq!(fmt_duration_ms(61_000.0), "1m01s");
        assert_eq!(fmt_duration_ms(3_601_000.0), "60m01s");
        assert_eq!(fmt_duration_ms(f64::NAN), "n/a");
        assert_eq!(fmt_duration_ms(-5.0), "n/a");
    }

    #[test]
    fn non_finite_values_render_as_na() {
        assert_eq!(fmt_num(f64::NAN), "n/a");
        assert_eq!(fmt_num(f64::INFINITY), "n/a");
        assert_eq!(fmt_num(f64::NEG_INFINITY), "n/a");
    }
}
