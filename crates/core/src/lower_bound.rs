//! The Ω(log n) energy lower bound of Theorem 1, as executable models.
//!
//! Theorem 1 argues about *any* algorithm whose nodes are awake for at most
//! `b` rounds: a node's behavior is a random sequence over {Sleep,
//! Transmit, Listen} with ≤ b awake entries, followed "until it hears a
//! message or a collision". On the hard instance — n/4 disjoint edges plus
//! n/2 isolated nodes ([`mis_graphs::generators::lower_bound_family`]) — a
//! node that hears nothing within its budget cannot distinguish itself
//! from an isolated node and must join the MIS; a matched pair in which
//! *neither* endpoint ever hears the other therefore produces two adjacent
//! MIS nodes. The proof shows this happens to some pair with probability
//! ≥ 1 − e^(−n/4^(b+1)), so `b ≥ ½·log₂ n` is required.
//!
//! Two executable models:
//!
//! - [`RandomStrategy`]: the proof's strategy object — i.i.d. rounds
//!   (awake with probability `awake_prob`, then transmit/listen fairly)
//!   until the budget is spent; joins iff it never heard. Experiment E1
//!   sweeps `b` and measures the both-join probability against the
//!   4^(−b)-per-pair prediction.
//! - [`EnergyCapped`]: wraps a *real* protocol (e.g. Algorithm 1) with a
//!   hard budget `b`; at the cap the node decides by the proof's Bayes
//!   rule (join iff it never heard activity). Sweeping `b` shows the
//!   algorithm's failure probability collapsing once `b` crosses
//!   Θ(log n).

use radio_netsim::{Action, Feedback, Message, NodeRng, NodeStatus, Protocol};
use rand::Rng;

/// The Theorem-1 strategy model: i.i.d. awake/asleep rounds with a hard
/// awake budget.
#[derive(Debug, Clone)]
pub struct RandomStrategy {
    budget: u64,
    awake_prob: f64,
    spent: u64,
    heard: bool,
    decided: bool,
}

impl RandomStrategy {
    /// Creates a strategy node with awake budget `budget` and per-round
    /// wake probability `awake_prob`.
    ///
    /// # Panics
    ///
    /// Panics if `awake_prob` is not in `(0, 1]`.
    pub fn new(budget: u64, awake_prob: f64) -> RandomStrategy {
        assert!(
            awake_prob > 0.0 && awake_prob <= 1.0,
            "awake_prob {awake_prob} outside (0, 1]"
        );
        RandomStrategy {
            budget,
            awake_prob,
            spent: 0,
            heard: false,
            decided: false,
        }
    }

    /// Whether the node heard any activity before deciding.
    pub fn heard(&self) -> bool {
        self.heard
    }
}

impl Protocol for RandomStrategy {
    fn act(&mut self, _round: u64, rng: &mut NodeRng) -> Action {
        if self.heard || self.spent >= self.budget {
            // Sequence over: decide by the proof's rule.
            self.decided = true;
            return Action::halt();
        }
        if rng.gen_bool(self.awake_prob) {
            self.spent += 1;
            if rng.gen_bool(0.5) {
                Action::Transmit(Message::unary())
            } else {
                Action::Listen
            }
        } else {
            Action::Sleep {
                wake_at: _round + 1,
            }
        }
    }

    fn feedback(&mut self, _round: u64, fb: Feedback, _rng: &mut NodeRng) {
        if fb.heard_activity() {
            self.heard = true;
        }
    }

    fn status(&self) -> NodeStatus {
        if !self.decided {
            NodeStatus::Undecided
        } else if self.heard {
            // Heard a neighbor: in the hard instance this identifies the
            // node as matched; it stays out and lets its partner join.
            NodeStatus::OutMis
        } else {
            // Indistinguishable from isolated: must join (Bayes' rule in
            // the proof of Theorem 1).
            NodeStatus::InMis
        }
    }

    fn finished(&self) -> bool {
        self.decided
    }
}

/// Wraps any protocol with a hard energy budget: once the inner protocol
/// has spent `budget` awake rounds, the node sleeps forever and — if still
/// undecided — applies the Theorem-1 decision rule (join iff it never
/// heard activity).
#[derive(Debug, Clone)]
pub struct EnergyCapped<P> {
    inner: P,
    budget: u64,
    spent: u64,
    heard: bool,
    capped: bool,
}

impl<P: Protocol> EnergyCapped<P> {
    /// Caps `inner` at `budget` awake rounds.
    pub fn new(inner: P, budget: u64) -> EnergyCapped<P> {
        EnergyCapped {
            inner,
            budget,
            spent: 0,
            heard: false,
            capped: false,
        }
    }

    /// Whether the cap fired before the inner protocol decided.
    pub fn capped(&self) -> bool {
        self.capped
    }

    /// Awake rounds spent.
    pub fn spent(&self) -> u64 {
        self.spent
    }
}

impl<P: Protocol> Protocol for EnergyCapped<P> {
    fn act(&mut self, round: u64, rng: &mut NodeRng) -> Action {
        if self.capped {
            return Action::halt();
        }
        if self.spent >= self.budget && !self.inner.status().is_decided() {
            self.capped = true;
            return Action::halt();
        }
        if self.spent >= self.budget {
            // Inner decided but not finished (e.g. an MIS node that keeps
            // announcing): it is simply cut off.
            self.capped = true;
            return Action::halt();
        }
        let action = self.inner.act(round, rng);
        if action.is_awake() {
            self.spent += 1;
        }
        action
    }

    fn feedback(&mut self, round: u64, fb: Feedback, rng: &mut NodeRng) {
        if fb.heard_activity() {
            self.heard = true;
        }
        self.inner.feedback(round, fb, rng);
    }

    fn status(&self) -> NodeStatus {
        let s = self.inner.status();
        if s.is_decided() {
            s
        } else if self.capped {
            // Theorem 1's rule for budget-exhausted undecided nodes.
            if self.heard {
                NodeStatus::OutMis
            } else {
                NodeStatus::InMis
            }
        } else {
            NodeStatus::Undecided
        }
    }

    fn finished(&self) -> bool {
        self.capped || self.inner.finished()
    }
}

/// The Theorem-1 failure predicate: some matched pair of the hard instance
/// ended with both endpoints in the MIS.
///
/// # Panics
///
/// Panics if `statuses.len() < 2 * pairs`.
pub fn some_pair_both_joined(statuses: &[NodeStatus], pairs: usize) -> bool {
    assert!(statuses.len() >= 2 * pairs, "status vector too short");
    (0..pairs)
        .any(|i| statuses[2 * i] == NodeStatus::InMis && statuses[2 * i + 1] == NodeStatus::InMis)
}

/// Theorem 1's closed-form failure floor: 1 − e^(−n/4^(b+1)).
pub fn theorem1_failure_floor(n: usize, b: u64) -> f64 {
    let exponent = -(n as f64) / 4f64.powf(b as f64 + 1.0);
    1.0 - exponent.exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cd::CdMis;
    use crate::params::CdParams;
    use mis_graphs::generators;
    use radio_netsim::{ChannelModel, SimConfig, Simulator};

    #[test]
    fn strategy_with_tiny_budget_fails_often() {
        // n = 256: pairs = 64. With b = 2, per-pair both-join probability
        // is ≥ 4^-b /const, so some pair should fail almost surely.
        let g = generators::lower_bound_family(256);
        let pairs = 64;
        let mut failures = 0;
        let trials = 20;
        for seed in 0..trials {
            let report = Simulator::new(&g, SimConfig::new(ChannelModel::Cd).with_seed(seed))
                .run(|_, _| RandomStrategy::new(2, 0.5));
            if some_pair_both_joined(&report.statuses, pairs) {
                failures += 1;
            }
        }
        assert!(
            failures >= trials * 3 / 4,
            "only {failures}/{trials} failed with b = 2"
        );
    }

    #[test]
    fn strategy_with_large_budget_rarely_fails() {
        let g = generators::lower_bound_family(256);
        let pairs = 64;
        let b = 40; // ≫ log₂ 256 = 8
        let mut failures = 0;
        let trials = 20;
        for seed in 0..trials {
            let report = Simulator::new(&g, SimConfig::new(ChannelModel::Cd).with_seed(seed))
                .run(|_, _| RandomStrategy::new(b, 0.5));
            if some_pair_both_joined(&report.statuses, pairs) {
                failures += 1;
            }
        }
        assert!(failures <= 2, "{failures}/{trials} failed with b = {b}");
    }

    #[test]
    fn capped_cd_algorithm_recovers_with_budget() {
        // With a generous budget the cap never fires and Algorithm 1 is
        // unaffected.
        let g = generators::lower_bound_family(64);
        let params = CdParams::for_n(64);
        let report = Simulator::new(&g, SimConfig::new(ChannelModel::Cd).with_seed(3))
            .run(|_, _| EnergyCapped::new(CdMis::new(params), 10_000));
        assert!(report.is_correct_mis(&g));
    }

    #[test]
    fn capped_cd_algorithm_breaks_with_tiny_budget() {
        let g = generators::lower_bound_family(256);
        let params = CdParams::for_n(256);
        let mut failures = 0;
        let trials = 10;
        for seed in 0..trials {
            let report = Simulator::new(&g, SimConfig::new(ChannelModel::Cd).with_seed(seed))
                .run(|_, _| EnergyCapped::new(CdMis::new(params), 2));
            if !report.is_correct_mis(&g) {
                failures += 1;
            }
        }
        assert!(failures >= trials / 2, "only {failures}/{trials} failed");
    }

    #[test]
    fn failure_floor_shape() {
        // Below the threshold the floor is ≈ 1; above it ≈ 0.
        assert!(theorem1_failure_floor(1 << 16, 2) > 0.99);
        assert!(theorem1_failure_floor(1 << 16, 20) < 0.01);
        // Monotone decreasing in b.
        let n = 4096;
        let mut prev = 2.0;
        for b in 0..16 {
            let f = theorem1_failure_floor(n, b);
            assert!(f <= prev);
            prev = f;
        }
    }

    #[test]
    fn pair_predicate() {
        use NodeStatus::*;
        assert!(some_pair_both_joined(&[InMis, InMis, OutMis, InMis], 2));
        assert!(!some_pair_both_joined(&[InMis, OutMis, OutMis, InMis], 2));
        assert!(!some_pair_both_joined(&[InMis, InMis], 0));
    }

    #[test]
    #[should_panic(expected = "outside (0, 1]")]
    fn rejects_bad_awake_prob() {
        let _ = RandomStrategy::new(5, 0.0);
    }
}
