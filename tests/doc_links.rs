//! Checks that relative links in the repo's markdown files resolve.
//!
//! Std-only on purpose: this is the link half of the CI docs job (the
//! rustdoc half is `cargo doc` with `-D warnings`), and it must not pull
//! in a markdown parser for what is a ten-line scan. Only inline
//! `[text](target)` links are checked; external URLs and in-page anchors
//! are skipped.

use std::path::{Path, PathBuf};

/// The markdown files under the link check, relative to the repo root.
const DOC_FILES: &[&str] = &[
    "README.md",
    "DESIGN.md",
    "EXPERIMENTS.md",
    "CHANGELOG.md",
    "docs/ARCHITECTURE.md",
    "docs/EXPERIMENT_PIPELINE.md",
    "docs/PARALLEL_ENGINE.md",
    "docs/MULTICHANNEL.md",
    "docs/CONSERVE.md",
    "docs/SERVE.md",
    "docs/INDEX.md",
];

/// Extracts inline-link targets from markdown source.
fn link_targets(text: &str) -> Vec<String> {
    let mut targets = Vec::new();
    let mut rest = text;
    while let Some(open) = rest.find("](") {
        rest = &rest[open + 2..];
        let Some(close) = rest.find(')') else { break };
        targets.push(rest[..close].to_string());
        rest = &rest[close + 1..];
    }
    targets
}

/// Whether a target needs a filesystem check (relative path, not URL or
/// pure anchor).
fn is_relative(target: &str) -> bool {
    !(target.starts_with("http://")
        || target.starts_with("https://")
        || target.starts_with("mailto:")
        || target.starts_with('#'))
}

#[test]
fn relative_markdown_links_resolve() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let mut broken = Vec::new();
    for file in DOC_FILES {
        let path = root.join(file);
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
        let base = path.parent().unwrap_or(Path::new(""));
        for target in link_targets(&text).iter().filter(|t| is_relative(t)) {
            // Drop a trailing `#section` anchor before resolving.
            let file_part = target.split('#').next().unwrap_or(target);
            if file_part.is_empty() {
                continue;
            }
            if !base.join(file_part).exists() {
                broken.push(format!("{file}: ({target})"));
            }
        }
    }
    assert!(
        broken.is_empty(),
        "broken relative links:\n{}",
        broken.join("\n")
    );
}

#[test]
fn doc_files_under_check_exist() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    for file in DOC_FILES {
        assert!(root.join(file).exists(), "missing doc file {file}");
    }
}

#[test]
fn extractor_handles_mixed_content() {
    let text = "see [a](docs/x.md), [b](https://e.com/p), [c](#anchor), `act(round)`";
    let targets = link_targets(text);
    assert_eq!(targets, vec!["docs/x.md", "https://e.com/p", "#anchor"]);
    assert!(is_relative("docs/x.md"));
    assert!(!is_relative("https://e.com/p"));
    assert!(!is_relative("#anchor"));
}
