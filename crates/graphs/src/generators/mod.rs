//! Graph generators for the evaluation workloads.
//!
//! The paper's algorithms work on *arbitrary and unknown* topologies, so the
//! evaluation sweeps several structurally different families:
//!
//! - deterministic families ([`classic`]): paths, cycles, stars, cliques,
//!   grids, bipartite graphs, trees — cover extreme degree distributions;
//! - random families ([`random`]): Erdős–Rényi G(n,p)/G(n,m), bounded-degree
//!   random graphs, random trees — "arbitrary topology" workloads;
//! - geometric families ([`geometric`]): random geometric (unit-disk) graphs,
//!   the classical ad-hoc / sensor-network topology the paper's introduction
//!   motivates;
//! - the adversarial family of Theorem 1 ([`lower_bound`]).
//!
//! Every randomized generator takes an explicit `seed` and is deterministic
//! given it.

/// Deterministic families: paths, cycles, stars, cliques, grids, trees.
pub mod classic;
/// Random geometric (unit-disk) graphs, plane and torus variants.
pub mod geometric;
/// The adversarial Theorem-1 lower-bound family.
pub mod lower_bound;
/// Random families: G(n,p), G(n,m), bounded-degree, random trees, power-law.
pub mod random;

pub use classic::{binary_tree, clique, complete_bipartite, cycle, empty, grid2d, path, star};
pub use geometric::{random_geometric, random_geometric_torus};
pub use lower_bound::{lower_bound_family, matching_plus_isolated};
pub use random::{bounded_degree, gnm, gnp, power_law, random_tree};

use crate::Graph;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Creates the deterministic RNG used by all generators in this crate.
pub(crate) fn rng(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

/// A named graph family used by the experiment sweeps, so tables can report
/// which topology a row came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Family {
    /// Erdős–Rényi with expected average degree given by the family parameter.
    GnpAvgDegree(u32),
    /// Random geometric graph with expected average degree given by the parameter.
    GeometricAvgDegree(u32),
    /// 2D grid (near-square).
    Grid,
    /// Star K_{1,n-1}: one hub.
    Star,
    /// Clique K_n.
    Clique,
    /// Path P_n.
    Path,
    /// Cycle C_n.
    Cycle,
    /// Empty graph (isolated nodes only).
    Empty,
    /// Random tree (uniform via Prüfer sequences).
    RandomTree,
    /// Bounded-degree random graph with max degree given by the parameter.
    BoundedDegree(u32),
    /// Theorem 1 lower-bound family: n/4 disjoint edges + n/2 isolated nodes.
    LowerBound,
    /// Power-law (Barabási–Albert) graph attaching the parameter's worth of
    /// edges per arriving node.
    PowerLaw(u32),
}

impl Family {
    /// Instantiates this family at size `n` using `seed` (deterministic
    /// given the pair, like every generator in this crate).
    ///
    /// ```
    /// use mis_graphs::generators::Family;
    ///
    /// let g = Family::Star.generate(16, 0);
    /// assert_eq!(g.len(), 16);
    /// assert_eq!(g.max_degree(), 15); // the hub
    ///
    /// let a = Family::GnpAvgDegree(8).generate(256, 42);
    /// let b = Family::GnpAvgDegree(8).generate(256, 42);
    /// assert!(a.edges().eq(b.edges()));
    /// ```
    pub fn generate(self, n: usize, seed: u64) -> Graph {
        match self {
            Family::GnpAvgDegree(d) => {
                let p = if n <= 1 {
                    0.0
                } else {
                    (d as f64 / (n as f64 - 1.0)).min(1.0)
                };
                gnp(n, p, seed)
            }
            Family::GeometricAvgDegree(d) => {
                // In a unit square with n points, expected degree ≈ n·π·r².
                let r = if n == 0 {
                    0.0
                } else {
                    (d as f64 / (n as f64 * std::f64::consts::PI)).sqrt()
                };
                random_geometric(n, r, seed)
            }
            Family::Grid => {
                let side = (n as f64).sqrt().round().max(1.0) as usize;
                grid2d(side, n.div_ceil(side.max(1)))
            }
            Family::Star => star(n),
            Family::Clique => clique(n),
            Family::Path => path(n),
            Family::Cycle => cycle(n),
            Family::Empty => empty(n),
            Family::RandomTree => random_tree(n, seed),
            Family::BoundedDegree(d) => bounded_degree(n, d as usize, seed),
            Family::LowerBound => lower_bound_family(n),
            Family::PowerLaw(m) => power_law(n, m as usize, seed),
        }
    }

    /// Short stable label used in experiment tables.
    pub fn label(self) -> String {
        match self {
            Family::GnpAvgDegree(d) => format!("gnp-d{d}"),
            Family::GeometricAvgDegree(d) => format!("udg-d{d}"),
            Family::Grid => "grid".into(),
            Family::Star => "star".into(),
            Family::Clique => "clique".into(),
            Family::Path => "path".into(),
            Family::Cycle => "cycle".into(),
            Family::Empty => "empty".into(),
            Family::RandomTree => "tree".into(),
            Family::BoundedDegree(d) => format!("bdeg-{d}"),
            Family::LowerBound => "lowerbound".into(),
            Family::PowerLaw(m) => format!("plaw-{m}"),
        }
    }
}

impl Family {
    /// Parses the labels produced by [`Family::label`] (e.g. `"gnp-d8"`,
    /// `"udg-d6"`, `"bdeg-5"`, `"star"`).
    ///
    /// # Errors
    ///
    /// Returns a description of the expected syntax on failure.
    pub fn parse(label: &str) -> Result<Family, String> {
        let parse_param = |prefix: &str| -> Option<Result<u32, String>> {
            label.strip_prefix(prefix).map(|rest| {
                rest.parse::<u32>()
                    .map_err(|e| format!("bad parameter in {label:?}: {e}"))
            })
        };
        if let Some(d) = parse_param("gnp-d") {
            return d.map(Family::GnpAvgDegree);
        }
        if let Some(d) = parse_param("udg-d") {
            return d.map(Family::GeometricAvgDegree);
        }
        if let Some(d) = parse_param("bdeg-") {
            return d.map(Family::BoundedDegree);
        }
        if let Some(m) = parse_param("plaw-") {
            return m.map(Family::PowerLaw);
        }
        match label {
            "grid" => Ok(Family::Grid),
            "star" => Ok(Family::Star),
            "clique" => Ok(Family::Clique),
            "path" => Ok(Family::Path),
            "cycle" => Ok(Family::Cycle),
            "empty" => Ok(Family::Empty),
            "tree" => Ok(Family::RandomTree),
            "lowerbound" => Ok(Family::LowerBound),
            other => Err(format!(
                "unknown family {other:?}; expected one of gnp-d<K>, udg-d<K>, bdeg-<K>, plaw-<K>,                  grid, star, clique, path, cycle, empty, tree, lowerbound"
            )),
        }
    }
}

impl std::str::FromStr for Family {
    type Err = String;
    fn from_str(s: &str) -> Result<Family, String> {
        Family::parse(s)
    }
}

impl std::fmt::Display for Family {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_generate_is_deterministic() {
        for fam in [
            Family::GnpAvgDegree(8),
            Family::GeometricAvgDegree(6),
            Family::Grid,
            Family::Star,
            Family::Clique,
            Family::Path,
            Family::Cycle,
            Family::Empty,
            Family::RandomTree,
            Family::BoundedDegree(5),
            Family::LowerBound,
            Family::PowerLaw(3),
        ] {
            let a = fam.generate(64, 7);
            let b = fam.generate(64, 7);
            assert_eq!(a, b, "family {fam} not deterministic");
            a.validate().unwrap();
        }
    }

    #[test]
    fn family_labels_are_unique() {
        let fams = [
            Family::GnpAvgDegree(8),
            Family::GeometricAvgDegree(6),
            Family::Grid,
            Family::Star,
            Family::Clique,
            Family::Path,
            Family::Cycle,
            Family::Empty,
            Family::RandomTree,
            Family::BoundedDegree(5),
            Family::LowerBound,
            Family::PowerLaw(3),
        ];
        let labels: std::collections::HashSet<_> = fams.iter().map(|f| f.label()).collect();
        assert_eq!(labels.len(), fams.len());
    }

    #[test]
    fn parse_roundtrips_labels() {
        for fam in [
            Family::GnpAvgDegree(8),
            Family::GeometricAvgDegree(6),
            Family::Grid,
            Family::Star,
            Family::Clique,
            Family::Path,
            Family::Cycle,
            Family::Empty,
            Family::RandomTree,
            Family::BoundedDegree(5),
            Family::LowerBound,
            Family::PowerLaw(3),
        ] {
            assert_eq!(Family::parse(&fam.label()), Ok(fam), "{fam}");
        }
        assert!(Family::parse("nope").is_err());
        assert!(Family::parse("gnp-dxyz").is_err());
        assert_eq!("gnp-d12".parse::<Family>(), Ok(Family::GnpAvgDegree(12)));
    }

    #[test]
    fn geometric_family_hits_target_degree_roughly() {
        let g = Family::GeometricAvgDegree(10).generate(2000, 3);
        let avg = g.avg_degree();
        assert!(
            avg > 5.0 && avg < 20.0,
            "avg degree {avg} far from target 10"
        );
    }
}
