//! E11 — ablations of Algorithm 2's two design ideas (§5.1).
//!
//! Variants measured against the full algorithm:
//!
//! 1. **deep shallow check** — losers run a w.h.p. deep check every phase
//!    instead of the constant-probability shallow one (§5.1.2 argues this
//!    blows up loser energy);
//! 2. **no commit/Δ_est reduction** — committed nodes keep listening with
//!    the full Δ window (§5.1.1 argues this costs Θ(log n·log Δ) per
//!    0-bit);
//! 3. **naive simulation with early-sleep inner** — the halfway point
//!    between Algorithm 2 and the naive baseline.

use crate::harness::{pct, ExpConfig, ExperimentOutput, Section};
use crate::orchestrator::{Orchestrator, TrialStats, UnitKey};
use mis_graphs::generators::Family;
use mis_stats::table::fmt_num;
use mis_stats::{Summary, Table};
use radio_mis::baselines::nocd_naive::{NaiveSimParams, NoCdNaive};
use radio_mis::cd::EnergyMode;
use radio_mis::nocd::NoCdMis;
use radio_mis::params::{CdParams, NoCdParams};
use radio_netsim::{ChannelModel, SimConfig};

/// Runs E11.
pub fn run(cfg: &ExpConfig, orch: &Orchestrator) -> ExperimentOutput {
    let n = if cfg.quick { 128 } else { 512 };
    let trials = cfg.trials(9);
    let g = Family::GnpAvgDegree(64).generate(n, cfg.seed ^ 0xE11);
    let delta = g.max_degree().max(2);
    let base = NoCdParams::for_n(n, delta);
    let graph_recipe = format!(
        "{}/seed={:#x}",
        Family::GnpAvgDegree(64).label(),
        cfg.seed ^ 0xE11
    );

    let run_variant = |cell: &str, params: NoCdParams, salt: u64| -> TrialStats {
        orch.trials(
            UnitKey::new("e11", cell)
                .with("graph", &graph_recipe)
                .with("alg", "NoCdMis")
                .with("params", format!("{params:?}")),
            &g,
            SimConfig::new(ChannelModel::NoCd).with_seed(cfg.seed ^ salt),
            trials,
            |_, _| NoCdMis::new(params),
        )
    };

    let full = run_variant("full", base, 21);
    let deep_shallow = run_variant(
        "deep-shallow",
        NoCdParams {
            ablate_deep_shallow: true,
            ..base
        },
        22,
    );
    let no_reduction = run_variant(
        "no-commit-reduction",
        NoCdParams {
            ablate_no_commit_reduction: true,
            ..base
        },
        23,
    );
    let halfway_cd = CdParams::for_n(n);
    let halfway_sim = NaiveSimParams::for_n(n, delta);
    let halfway = orch.trials(
        UnitKey::new("e11", "naive-early-sleep")
            .with("graph", &graph_recipe)
            .with("alg", "NoCdNaive/EarlySleep")
            .with("params", format!("{halfway_cd:?}/{halfway_sim:?}")),
        &g,
        SimConfig::new(ChannelModel::NoCd).with_seed(cfg.seed ^ 24),
        trials,
        |_, _| NoCdNaive::with_inner_mode(halfway_cd, halfway_sim, EnergyMode::EarlySleep),
    );

    let mut table = Table::new(["variant", "energy(max)", "energy(avg)", "rounds", "success"]);
    let mut energies = Vec::new();
    for (name, set) in [
        ("Algorithm 2 (full)", &full),
        ("ablation: deep check for losers", &deep_shallow),
        ("ablation: no Δ_est reduction", &no_reduction),
        ("Alg. 1 early-sleep over naive backoff", &halfway),
    ] {
        let e = Summary::of(&set.energies).mean;
        energies.push((name, e));
        table.push_row([
            name.to_string(),
            fmt_num(e),
            fmt_num(Summary::of(&set.avg_energies).mean),
            fmt_num(Summary::of(&set.rounds).mean),
            pct(set.correct, set.successes()),
        ]);
    }
    let full_e = energies[0].1;
    let deep_ratio = energies[1].1 / full_e.max(1e-9);
    let nored_ratio = energies[2].1 / full_e.max(1e-9);

    ExperimentOutput {
        id: "e11",
        title: "design ablations for Algorithm 2".into(),
        claim: "§5.1: both the shallow check for losers and the committed-degree \
                reduction are necessary to reach O(log²n·loglog n) energy; removing \
                either re-introduces a log-factor of energy."
            .into(),
        sections: vec![Section {
            caption: format!("gnp-d64, n = {n}, Δ = {delta}, {trials} trials per variant"),
            table,
        }],
        findings: vec![
            format!(
                "upgrading the shallow check to a deep check multiplies max energy by \
                 {deep_ratio:.2}×"
            ),
            format!("disabling the Δ_est reduction multiplies max energy by {nored_ratio:.2}×"),
        ],
        charts: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_has_four_variants() {
        let out = run(&ExpConfig::quick(23), &Orchestrator::ephemeral());
        assert_eq!(out.sections[0].table.len(), 4);
    }
}
