//! Quickstart: solve MIS on a random radio network in the CD model and
//! inspect the energy ledger.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use energy_mis::graphs::{generators, mis};
use energy_mis::mis::cd::CdMis;
use energy_mis::mis::params::CdParams;
use energy_mis::netsim::{ChannelModel, SimConfig, Simulator};

fn main() {
    // An "arbitrary and unknown" topology: G(n, p) with average degree ~8.
    let n = 1000;
    let graph = generators::gnp(n, 8.0 / (n as f64 - 1.0), 42);
    println!(
        "network: {} nodes, {} edges, Δ = {}",
        graph.len(),
        graph.edge_count(),
        graph.max_degree()
    );

    // Algorithm 1 with the calibrated experiment constants.
    let params = CdParams::for_n(n);
    let config = SimConfig::new(ChannelModel::Cd).with_seed(7);
    let report = Simulator::new(&graph, config).run(|_, _| CdMis::new(params));

    // The output is verified against the graph, not trusted.
    match report.verify_mis(&graph) {
        Ok(()) => println!("output verified: maximal independent set ✓"),
        Err(e) => println!("output INVALID: {e}"),
    }
    let mis_size = mis::set_size(&report.mis_mask());
    println!(
        "MIS size {mis_size}; rounds = {}; energy: max = {} awake rounds, avg = {:.1}",
        report.rounds,
        report.max_energy(),
        report.avg_energy()
    );
    println!(
        "(Theorem 2: energy O(log n) — log2 n = {:.1}; schedule allows {} rounds)",
        (n as f64).log2(),
        params.total_rounds()
    );
}
