//! Core model types: channel models, actions, feedback, messages, statuses.

use serde::{Deserialize, Serialize};

/// How simultaneous transmissions at a listener are resolved (§1.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ChannelModel {
    /// Collision detection: a listener distinguishes silence (0 transmitting
    /// neighbors) from a collision (≥ 2).
    Cd,
    /// No collision detection: ≥ 2 transmitting neighbors are
    /// indistinguishable from silence.
    NoCd,
    /// Beeping model: a listener hears a (content-free) beep iff ≥ 1 neighbor
    /// beeps. No sender-side collision detection.
    Beeping,
    /// Beeping model *with sender-side collision detection* (the \[28\]
    /// Jeavons–Scott–Xu setting, §1.4): a beeping node also hears a beep
    /// when at least one neighbor beeps in the same round. The paper's
    /// radio model explicitly excludes this power; it exists here for the
    /// native beeping MIS baseline.
    BeepingSenderCd,
}

impl ChannelModel {
    /// Short stable label for tables.
    pub fn label(self) -> &'static str {
        match self {
            ChannelModel::Cd => "CD",
            ChannelModel::NoCd => "no-CD",
            ChannelModel::Beeping => "beeping",
            ChannelModel::BeepingSenderCd => "beeping+senderCD",
        }
    }
}

impl std::fmt::Display for ChannelModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A radio message. RADIO-CONGEST limits messages to O(log n) bits; the
/// engine enforces [`crate::SimConfig::message_bits`] against the payload.
///
/// The paper's algorithms only ever perform *unary* communication
/// (transmitting a "1"); richer payloads exist for the LowDegreeMIS
/// simulation and for debugging.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Message {
    payload: u64,
}

impl Message {
    /// The unary "1" bit used by Algorithms 1–4.
    pub fn unary() -> Message {
        Message { payload: 1 }
    }

    /// A message carrying an arbitrary payload (validated against the
    /// configured bit budget at transmit time).
    pub fn with_payload(payload: u64) -> Message {
        Message { payload }
    }

    /// The payload bits.
    pub fn payload(self) -> u64 {
        self.payload
    }

    /// Number of bits needed to represent the payload.
    pub fn bit_len(self) -> u32 {
        64 - self.payload.leading_zeros()
    }
}

impl Default for Message {
    fn default() -> Self {
        Message::unary()
    }
}

/// What a node does in a round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Action {
    /// Sleep through every round `< wake_at`; the engine will next poll the
    /// node at round `wake_at`. Must be strictly greater than the current
    /// round. Sleeping rounds cost no energy.
    ///
    /// Messages sent to a sleeping node are *lost* (§1 of the paper), and
    /// the engine attributes the sleep to the node, not to any layer inside
    /// it: when a wrapper protocol sleeps, its inner machine's traffic is
    /// dropped with it. A wrapper must therefore either keep the radio on
    /// whenever its inner machine would listen, or reconstruct the missed
    /// feedback itself — `Conserve` does the latter via buffered replay
    /// (`docs/CONSERVE.md`), which is only sound because its wake-up
    /// advertisements prove the missed rounds were silent.
    Sleep {
        /// First round at which the node is polled again. Use `u64::MAX` to
        /// sleep forever (the node should then also report `finished()`).
        wake_at: u64,
    },
    /// Transmit a message this round (awake; costs 1 energy).
    Transmit(Message),
    /// Listen this round (awake; costs 1 energy).
    Listen,
    /// Transmit a message on a specific channel (awake; costs 1 energy).
    /// Channel indices are `0..F` where `F` is
    /// [`crate::SimConfig::channels`]; selecting a channel `>= F` is a
    /// protocol bug the engine panics on. `Transmit(m)` is equivalent to
    /// `TransmitOn(m, 0)`.
    TransmitOn(Message, u16),
    /// Listen on a specific channel (awake; costs 1 energy). `Listen` is
    /// equivalent to `ListenOn(0)`.
    ListenOn(u16),
}

impl Action {
    /// Sleep forever. The node should also report `finished()` so the engine
    /// can retire it.
    pub fn halt() -> Action {
        Action::Sleep { wake_at: u64::MAX }
    }

    /// Whether this action costs energy.
    pub fn is_awake(&self) -> bool {
        !matches!(self, Action::Sleep { .. })
    }

    /// Retargets an awake action onto channel `c` (sleeps pass through).
    /// Channel 0 normalizes back to the legacy single-channel variants, so
    /// `a.on_channel(0) == a` for canonical actions — single-channel
    /// protocols and their traces are unaffected by the multichannel API.
    pub fn on_channel(self, c: u16) -> Action {
        match (self, c) {
            (Action::Transmit(m) | Action::TransmitOn(m, _), 0) => Action::Transmit(m),
            (Action::Transmit(m) | Action::TransmitOn(m, _), c) => Action::TransmitOn(m, c),
            (Action::Listen | Action::ListenOn(_), 0) => Action::Listen,
            (Action::Listen | Action::ListenOn(_), c) => Action::ListenOn(c),
            (sleep, _) => sleep,
        }
    }

    /// The channel an awake action uses (0 for the legacy variants and for
    /// sleeps, which use no channel at all).
    pub fn channel(&self) -> u16 {
        match self {
            Action::TransmitOn(_, c) | Action::ListenOn(c) => *c,
            _ => 0,
        }
    }
}

/// What a node learns at the end of a round it was awake for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Feedback {
    /// The node transmitted. (No sender-side collision detection: a
    /// transmitter learns nothing about concurrent transmissions.)
    Sent,
    /// The node listened and heard nothing. In the no-CD model this also
    /// covers ≥ 2 transmitting neighbors.
    Silence,
    /// CD model only: the node listened and ≥ 2 neighbors transmitted.
    Collision,
    /// The node listened and exactly one neighbor transmitted (CD / no-CD).
    Heard(Message),
    /// Beeping model only: ≥ 1 neighbor beeped.
    Beep,
}

impl Feedback {
    /// Whether the listener detected neighbor activity. In the CD model this
    /// is "heard a 1 or a collision" (Algorithm 1's test); in the beeping
    /// model "heard a beep"; in the no-CD model "heard a message".
    pub fn heard_activity(&self) -> bool {
        matches!(
            self,
            Feedback::Collision | Feedback::Heard(_) | Feedback::Beep
        )
    }
}

/// A node's externally visible decision state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeStatus {
    /// Not yet committed to a decision.
    Undecided,
    /// Irrevocably in the MIS.
    InMis,
    /// Irrevocably dominated (not in the MIS).
    OutMis,
}

impl NodeStatus {
    /// Whether the node has irrevocably decided.
    pub fn is_decided(self) -> bool {
        !matches!(self, NodeStatus::Undecided)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_bits() {
        assert_eq!(Message::unary().bit_len(), 1);
        assert_eq!(Message::with_payload(0).bit_len(), 0);
        assert_eq!(Message::with_payload(255).bit_len(), 8);
        assert_eq!(Message::with_payload(256).bit_len(), 9);
        assert_eq!(Message::default(), Message::unary());
    }

    #[test]
    fn feedback_activity() {
        assert!(Feedback::Collision.heard_activity());
        assert!(Feedback::Heard(Message::unary()).heard_activity());
        assert!(Feedback::Beep.heard_activity());
        assert!(!Feedback::Silence.heard_activity());
        assert!(!Feedback::Sent.heard_activity());
    }

    #[test]
    fn action_awake() {
        assert!(Action::Listen.is_awake());
        assert!(Action::Transmit(Message::unary()).is_awake());
        assert!(!Action::Sleep { wake_at: 5 }.is_awake());
        assert!(Action::ListenOn(3).is_awake());
        assert!(Action::TransmitOn(Message::unary(), 3).is_awake());
    }

    #[test]
    fn action_channels() {
        let m = Message::unary();
        // Channel 0 normalizes to the legacy variants.
        assert_eq!(Action::Transmit(m).on_channel(0), Action::Transmit(m));
        assert_eq!(Action::TransmitOn(m, 2).on_channel(0), Action::Transmit(m));
        assert_eq!(Action::Listen.on_channel(0), Action::Listen);
        assert_eq!(Action::ListenOn(7).on_channel(0), Action::Listen);
        // Nonzero channels use the *On variants.
        assert_eq!(Action::Transmit(m).on_channel(2), Action::TransmitOn(m, 2));
        assert_eq!(Action::Listen.on_channel(5), Action::ListenOn(5));
        assert_eq!(Action::ListenOn(1).on_channel(5), Action::ListenOn(5));
        // Sleeps pass through untouched.
        assert_eq!(
            Action::Sleep { wake_at: 9 }.on_channel(4),
            Action::Sleep { wake_at: 9 }
        );
        // Channel accessor.
        assert_eq!(Action::Listen.channel(), 0);
        assert_eq!(Action::Transmit(m).channel(), 0);
        assert_eq!(Action::ListenOn(3).channel(), 3);
        assert_eq!(Action::TransmitOn(m, 6).channel(), 6);
        assert_eq!(Action::Sleep { wake_at: 1 }.channel(), 0);
    }

    #[test]
    fn status_decided() {
        assert!(!NodeStatus::Undecided.is_decided());
        assert!(NodeStatus::InMis.is_decided());
        assert!(NodeStatus::OutMis.is_decided());
    }

    #[test]
    fn channel_labels() {
        assert_eq!(ChannelModel::Cd.label(), "CD");
        assert_eq!(ChannelModel::NoCd.to_string(), "no-CD");
        assert_eq!(ChannelModel::Beeping.label(), "beeping");
        assert_eq!(ChannelModel::BeepingSenderCd.label(), "beeping+senderCD");
    }
}
