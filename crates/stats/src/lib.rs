//! Statistics substrate for the energy-MIS evaluation harness.
//!
//! Three pieces:
//!
//! - [`summary`] — descriptive statistics (mean, std, quantiles, 95% CI)
//!   over trial measurements;
//! - [`fit`] — least-squares fits of measured complexities against the
//!   candidate growth laws the paper's theorems predict (log n, log²n,
//!   log²n·loglog n, …) with R² model selection;
//! - [`table`] — markdown/CSV table rendering for `EXPERIMENTS.md`;
//! - [`plot`] — dependency-free SVG line charts for the experiment figures;
//! - [`timeline`] — time-series analysis of the per-round metrics records
//!   the simulator's observability layer emits (geometric decay-rate fits,
//!   series summaries).
//!
//! ```
//! use mis_stats::fit::{best_fit, GrowthModel};
//!
//! // Perfect log²n data is attributed to the right model.
//! let ns: Vec<f64> = (6..16).map(|k| (1u64 << k) as f64).collect();
//! let ys: Vec<f64> = ns.iter().map(|&n| 3.0 * n.log2().powi(2) + 5.0).collect();
//! let (model, fit) = best_fit(&ns, &ys);
//! assert_eq!(model, GrowthModel::Log2N);
//! assert!(fit.r2 > 0.999);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

/// Least-squares growth-law fitting with R² model selection.
pub mod fit;
/// Dependency-free SVG line charts.
pub mod plot;
/// Descriptive statistics over trial measurements.
pub mod summary;
/// Markdown/CSV table rendering.
pub mod table;
/// Time-series analysis of per-round metrics records.
pub mod timeline;

pub use fit::{best_fit, Fit, GrowthModel};
pub use plot::LineChart;
pub use summary::Summary;
pub use table::{fmt_duration_ms, Table};
pub use timeline::{exp_decay_fit, DecayFit, TimelineSummary};
