//! Differential equivalence rig: sparse wake-queue backend vs dense
//! oracle, and serial vs parallel execution.
//!
//! [`EngineMode::Dense`] and [`EngineMode::Sparse`] promise *byte-identical*
//! outputs for any (graph, config, protocol) triple, and so does every
//! [`SimConfig::with_threads`] worker count (the determinism contract of
//! `docs/PARALLEL_ENGINE.md`). This suite fuzzes both promises over a
//! corpus of (graph × channel model × fault plan × seed × sleep-span)
//! combinations — plus a multichannel axis (F ∈ {1, 2, 4} with
//! channel-hopping protocols and the channel-jamming adversary corpus) —
//! asserting three layers of equality per case:
//!
//! 1. the [`RunReport`]s compare equal (`PartialEq`);
//! 2. their serialized JSON is identical byte-for-byte;
//! 3. the full JSONL trace streams — every event kind, `RoundEnd` metrics
//!    rows included — are identical byte-for-byte.
//!
//! The case count honours the `PROPTEST_CASES` environment variable (CI
//! raises it to give equivalence real fuzzing budget on every PR) and
//! defaults to 32 locally.

use mis_graphs::{Graph, GraphBuilder};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use radio_netsim::{
    Action, ChannelModel, ConvergencePolicy, DownTime, EngineMode, FaultPlan, Feedback, JsonlTrace,
    Layer, Message, NodeRng, NodeStatus, Protocol, RunReport, SimConfig, Simulator, VirtualClock,
};
use rand::Rng;

fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(32)
}

fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..24).prop_flat_map(|n| {
        let edge = (0..n, 0..n).prop_filter("no loops", |(u, v)| u != v);
        proptest::collection::vec(edge, 0..(2 * n)).prop_map(move |edges| {
            let mut b = GraphBuilder::new(n);
            for (u, v) in edges {
                b.add_edge(u, v).unwrap();
            }
            b.build()
        })
    })
}

/// A protocol that acts randomly for a bounded number of awake rounds,
/// napping up to `max_nap` rounds at a time — long naps are what open the
/// quiet spans the sparse backend jumps over. On a multichannel config it
/// also hops channels uniformly; the channel draw happens *only* when
/// `channels > 1`, so the single-channel draw sequence is untouched.
struct Chaotic {
    awake_left: u32,
    max_nap: u64,
    channels: u16,
    done: bool,
}

impl Chaotic {
    fn hop(&self, action: Action, rng: &mut NodeRng) -> Action {
        if self.channels > 1 {
            action.on_channel(rng.gen_range(0..self.channels))
        } else {
            action
        }
    }
}

impl Protocol for Chaotic {
    fn act(&mut self, round: u64, rng: &mut NodeRng) -> Action {
        if self.awake_left == 0 {
            self.done = true;
            return Action::halt();
        }
        match rng.gen_range(0..4u8) {
            0 => Action::Sleep {
                wake_at: round + rng.gen_range(1..self.max_nap),
            },
            1 => {
                self.awake_left -= 1;
                self.hop(Action::Transmit(Message::unary()), rng)
            }
            _ => {
                self.awake_left -= 1;
                self.hop(Action::Listen, rng)
            }
        }
    }
    fn feedback(&mut self, _round: u64, _fb: Feedback, _rng: &mut NodeRng) {}
    fn status(&self) -> NodeStatus {
        NodeStatus::OutMis
    }
    fn finished(&self) -> bool {
        self.done
    }
}

/// A minimal layered wrapper on the [`Layer`] contract: it dilates its
/// inner machine's clock by `stride`, simulating virtual round `v` at real
/// round `v·stride` and sleeping through the gaps. Chaotic-under-Stretch
/// exercises exactly the wrapper/engine interaction surface (virtualized
/// sleeps crossing fast-forwarded quiet spans, feedback handed back on the
/// virtual clock) that the real `Conserve` combinator relies on, without a
/// dependency on the algorithms crate.
struct Stretch<P> {
    inner: P,
    stride: u64,
    clock: VirtualClock,
}

impl<P: Protocol> Protocol for Stretch<P> {
    fn act(&mut self, round: u64, rng: &mut NodeRng) -> Action {
        if round % self.stride != 0 {
            // The round after an awake inner round: nothing is due until
            // the next stride boundary.
            return Action::Sleep {
                wake_at: round + self.stride - round % self.stride,
            };
        }
        let v = round / self.stride;
        self.clock.observe(v);
        match self.inner.act(v, rng) {
            Action::Sleep { wake_at } => {
                if wake_at == u64::MAX {
                    Action::halt()
                } else {
                    Action::Sleep {
                        wake_at: wake_at * self.stride,
                    }
                }
            }
            awake => awake,
        }
    }
    fn feedback(&mut self, round: u64, fb: Feedback, rng: &mut NodeRng) {
        let v = round / self.stride;
        self.clock.observe(v);
        self.inner.feedback(v, fb, rng);
    }
    fn status(&self) -> NodeStatus {
        self.inner.status()
    }
    fn finished(&self) -> bool {
        self.inner.finished()
    }
}

impl<P: Protocol> Layer for Stretch<P> {
    type Inner = P;
    fn inner(&self) -> Option<&P> {
        Some(&self.inner)
    }
    fn virtual_now(&self) -> Option<u64> {
        self.clock.now()
    }
}

fn run_layered(
    g: &Graph,
    config: &SimConfig,
    budget: u32,
    max_nap: u64,
    stride: u64,
) -> (RunReport, Vec<u8>) {
    let mut sink = JsonlTrace::new(Vec::<u8>::new());
    let report = Simulator::new(g, config.clone()).run_traced(
        |_, _| Stretch {
            inner: Chaotic {
                awake_left: budget,
                max_nap,
                channels: 1,
                done: false,
            },
            stride,
            clock: VirtualClock::new(),
        },
        &mut sink,
    );
    (
        report,
        sink.into_inner().expect("in-memory writer cannot fail"),
    )
}

const ALL_CHANNELS: [ChannelModel; 4] = [
    ChannelModel::Cd,
    ChannelModel::NoCd,
    ChannelModel::Beeping,
    ChannelModel::BeepingSenderCd,
];

/// The fault-plan corpus: inert, the multi-clause lossy/jammer/dormancy
/// plan, the churn/recovery/join plan, a jammer-plus-staggered-wake plan,
/// and a heavy-loss dormancy plan.
fn fault_corpus(pick: u8) -> FaultPlan {
    match pick {
        0 => FaultPlan::none(),
        1 => FaultPlan::none()
            .with_loss(0.35)
            .with_random_crashes(2, 6)
            .with_random_jammers(1)
            .with_wake_window(4)
            .with_dormancy(0.25, 5, 3),
        2 => FaultPlan::none()
            .with_recovery(0, 3, 7)
            .with_churn(0.05, 25, DownTime::Fixed(4))
            .with_join(1, 5),
        3 => FaultPlan::none().with_random_jammers(1).with_wake_window(9),
        _ => FaultPlan::none().with_loss(0.6).with_dormancy(0.5, 2, 6),
    }
}

/// The channel-jamming corpus for the multichannel axis: every
/// [`radio_netsim::ChannelAdversary`] class, alone and mixed with
/// node-level faults. Budgets may meet or exceed `F - 1`; the engine
/// clamps the jam set below the channel count, so the same plans are
/// valid at every `F` (at `F = 1` they jam nothing).
fn jam_corpus(pick: u8) -> FaultPlan {
    match pick {
        0 => FaultPlan::none(),
        1 => FaultPlan::none().with_fixed_channel_jam(vec![0]),
        2 => FaultPlan::none().with_roaming_channel_jam(1),
        3 => FaultPlan::none().with_adaptive_channel_jam(2),
        _ => FaultPlan::none()
            .with_adaptive_channel_jam(1)
            .with_loss(0.3)
            .with_wake_window(6),
    }
}

/// Channel counts exercised by the multichannel differential cases.
const CHANNEL_COUNTS: [u16; 3] = [1, 2, 4];

fn run_mode(
    g: &Graph,
    config: &SimConfig,
    mode: EngineMode,
    budget: u32,
    max_nap: u64,
) -> (RunReport, Vec<u8>) {
    run_config(g, &config.clone().with_engine_mode(mode), budget, max_nap)
}

fn run_config(g: &Graph, config: &SimConfig, budget: u32, max_nap: u64) -> (RunReport, Vec<u8>) {
    let mut sink = JsonlTrace::new(Vec::<u8>::new());
    let channels = config.channels;
    let report = Simulator::new(g, config.clone()).run_traced(
        |_, _| Chaotic {
            awake_left: budget,
            max_nap,
            channels,
            done: false,
        },
        &mut sink,
    );
    (
        report,
        sink.into_inner().expect("in-memory writer cannot fail"),
    )
}

/// Graphs wide enough that the parallel engine's sharding grain (64
/// nodes per leaf slice) actually splits worklists across workers —
/// below that threshold the parallel path degenerates to the inline
/// loop and the thread axis would be untested.
fn arb_wide_graph() -> impl Strategy<Value = Graph> {
    (65usize..200).prop_flat_map(|n| {
        let edge = (0..n, 0..n).prop_filter("no loops", |(u, v)| u != v);
        proptest::collection::vec(edge, 0..(3 * n)).prop_map(move |edges| {
            let mut b = GraphBuilder::new(n);
            for (u, v) in edges {
                b.add_edge(u, v).unwrap();
            }
            b.build()
        })
    })
}

/// Runs the same config at thread counts {1, 2, 8} and asserts all three
/// layers of equality between the serial run and each parallel run.
fn assert_threads_equivalent(
    g: &Graph,
    config: &SimConfig,
    budget: u32,
    max_nap: u64,
) -> Result<RunReport, TestCaseError> {
    let (serial_report, serial_trace) =
        run_config(g, &config.clone().with_threads(1), budget, max_nap);
    prop_assert!(
        !serial_trace.is_empty(),
        "trace stream empty: nothing was compared"
    );
    for threads in [2usize, 8] {
        let (report, trace) = run_config(g, &config.clone().with_threads(threads), budget, max_nap);
        prop_assert_eq!(
            &serial_report,
            &report,
            "reports diverged at {} threads",
            threads
        );
        prop_assert_eq!(
            serde_json::to_string(&serial_report).expect("reports serialize"),
            serde_json::to_string(&report).expect("reports serialize")
        );
        prop_assert_eq!(
            &serial_trace,
            &trace,
            "trace streams diverged at {} threads",
            threads
        );
    }
    Ok(serial_report)
}

/// Runs both backends and asserts all three layers of equality.
fn assert_equivalent(
    g: &Graph,
    config: &SimConfig,
    budget: u32,
    max_nap: u64,
) -> Result<RunReport, TestCaseError> {
    let (rd, td) = run_mode(g, config, EngineMode::Dense, budget, max_nap);
    let (rs, ts) = run_mode(g, config, EngineMode::Sparse, budget, max_nap);
    prop_assert_eq!(&rd, &rs, "reports diverged");
    prop_assert_eq!(
        serde_json::to_string(&rd).expect("reports serialize"),
        serde_json::to_string(&rs).expect("reports serialize")
    );
    prop_assert_eq!(&td, &ts, "trace streams diverged");
    prop_assert!(!ts.is_empty(), "trace stream empty: nothing was compared");
    Ok(rs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases()))]

    /// The headline property: across the full corpus — every channel
    /// model, every fault plan (crash/churn/jammer plans from the fault
    /// subsystem included), random seeds and nap lengths — sparse and
    /// dense produce byte-identical reports and trace streams.
    #[test]
    fn sparse_equals_dense_across_the_corpus(
        g in arb_graph(),
        seed in any::<u64>(),
        channel_pick in 0usize..4,
        plan_pick in 0u8..5,
        max_nap in 2u64..40,
    ) {
        let config = SimConfig::new(ALL_CHANNELS[channel_pick])
            .with_seed(seed)
            .with_faults(fault_corpus(plan_pick))
            .with_round_metrics();
        assert_equivalent(&g, &config, 8, max_nap)?;
    }

    /// Convergence policies fire identically in both backends, including
    /// stability stops and watchdog aborts whose deadline round falls
    /// inside a fast-forwarded quiet span (the long naps make sure such
    /// spans exist).
    #[test]
    fn sparse_equals_dense_under_convergence_policies(
        g in arb_graph(),
        seed in any::<u64>(),
        stability in 1u64..20,
        max_nap in 16u64..200,
    ) {
        let config = SimConfig::new(ChannelModel::Cd)
            .with_seed(seed)
            .with_faults(fault_corpus(2))
            .with_convergence(
                ConvergencePolicy::new(stability).with_quiescence(stability + 60),
            )
            .with_max_rounds(500)
            .with_round_metrics();
        assert_equivalent(&g, &config, 6, max_nap)?;
    }

    /// `max_rounds` truncation — including a cap that lands mid-skip —
    /// is identical in both backends.
    #[test]
    fn sparse_equals_dense_on_truncated_runs(
        g in arb_graph(),
        seed in any::<u64>(),
        cap in 5u64..60,
    ) {
        let config = SimConfig::new(ChannelModel::NoCd)
            .with_seed(seed)
            .with_max_rounds(cap)
            .with_round_metrics();
        // An effectively unbounded awake budget: the cap does the stopping.
        let report = assert_equivalent(&g, &config, u32::MAX, 100)?;
        prop_assert!(report.rounds <= cap);
    }

    /// The parallel determinism contract: on graphs wide enough to engage
    /// the sharded act/delivery stages, thread counts {1, 2, 8} produce
    /// byte-identical reports and trace streams across every channel
    /// model and every fault plan in the corpus.
    #[test]
    fn parallel_equals_serial_across_the_corpus(
        g in arb_wide_graph(),
        seed in any::<u64>(),
        channel_pick in 0usize..4,
        plan_pick in 0u8..5,
        max_nap in 2u64..40,
    ) {
        let config = SimConfig::new(ALL_CHANNELS[channel_pick])
            .with_seed(seed)
            .with_faults(fault_corpus(plan_pick))
            .with_round_metrics();
        assert_threads_equivalent(&g, &config, 8, max_nap)?;
    }

    /// Convergence policies — stability stops, quiescence watchdogs —
    /// fire on the same round regardless of the worker count.
    #[test]
    fn parallel_equals_serial_under_convergence_policies(
        g in arb_wide_graph(),
        seed in any::<u64>(),
        stability in 1u64..20,
        max_nap in 16u64..200,
    ) {
        let config = SimConfig::new(ChannelModel::Cd)
            .with_seed(seed)
            .with_faults(fault_corpus(2))
            .with_convergence(
                ConvergencePolicy::new(stability).with_quiescence(stability + 60),
            )
            .with_max_rounds(500)
            .with_round_metrics();
        assert_threads_equivalent(&g, &config, 6, max_nap)?;
    }

    /// The multichannel axis of the backend contract: for F ∈ {1, 2, 4},
    /// with channel-hopping protocols and every channel-adversary class
    /// (fixed, roaming, adaptive — alone and mixed with loss/stagger),
    /// sparse and dense produce byte-identical reports and trace streams.
    #[test]
    fn sparse_equals_dense_across_channel_counts(
        g in arb_graph(),
        seed in any::<u64>(),
        channel_pick in 0usize..4,
        channels_pick in 0usize..3,
        jam_pick in 0u8..5,
        max_nap in 2u64..40,
    ) {
        let config = SimConfig::new(ALL_CHANNELS[channel_pick])
            .with_seed(seed)
            .with_channels(CHANNEL_COUNTS[channels_pick])
            .with_faults(jam_corpus(jam_pick))
            .with_round_metrics();
        assert_equivalent(&g, &config, 8, max_nap)?;
    }

    /// The multichannel axis of the parallel determinism contract: thread
    /// counts {1, 2, 8} produce byte-identical output at every channel
    /// count and under every channel-adversary class.
    #[test]
    fn parallel_equals_serial_across_channel_counts(
        g in arb_wide_graph(),
        seed in any::<u64>(),
        channels_pick in 0usize..3,
        jam_pick in 0u8..5,
        max_nap in 2u64..40,
    ) {
        let config = SimConfig::new(ChannelModel::Cd)
            .with_seed(seed)
            .with_channels(CHANNEL_COUNTS[channels_pick])
            .with_faults(jam_corpus(jam_pick))
            .with_round_metrics();
        assert_threads_equivalent(&g, &config, 8, max_nap)?;
    }

    /// Thread-count invariance holds in both engine modes: the sparse
    /// wake-queue backend parallelizes to the same bytes as the dense one.
    #[test]
    fn parallel_equals_serial_in_both_engine_modes(
        g in arb_wide_graph(),
        seed in any::<u64>(),
        plan_pick in 0u8..5,
    ) {
        let base = SimConfig::new(ChannelModel::NoCd)
            .with_seed(seed)
            .with_faults(fault_corpus(plan_pick))
            .with_round_metrics();
        let dense = assert_threads_equivalent(
            &g, &base.clone().with_engine_mode(EngineMode::Dense), 8, 20,
        )?;
        let sparse = assert_threads_equivalent(
            &g, &base.with_engine_mode(EngineMode::Sparse), 8, 20,
        )?;
        prop_assert_eq!(&dense, &sparse, "backends diverged");
    }

    /// The layered-protocol axis of the backend contract: a wrapper that
    /// virtualizes its inner machine's clock (Chaotic under `Stretch`)
    /// produces byte-identical reports and trace streams in both engine
    /// modes, across channel models, fault plans, and clock dilations.
    #[test]
    fn layered_sparse_equals_dense_across_the_corpus(
        g in arb_graph(),
        seed in any::<u64>(),
        channel_pick in 0usize..4,
        plan_pick in 0u8..5,
        stride in 1u64..9,
        max_nap in 2u64..40,
    ) {
        let config = SimConfig::new(ALL_CHANNELS[channel_pick])
            .with_seed(seed)
            .with_faults(fault_corpus(plan_pick))
            .with_round_metrics();
        let (rd, td) = run_layered(
            &g, &config.clone().with_engine_mode(EngineMode::Dense), 6, max_nap, stride,
        );
        let (rs, ts) = run_layered(
            &g, &config.clone().with_engine_mode(EngineMode::Sparse), 6, max_nap, stride,
        );
        prop_assert_eq!(&rd, &rs, "layered reports diverged");
        prop_assert_eq!(&td, &ts, "layered trace streams diverged");
        prop_assert!(!ts.is_empty(), "trace stream empty: nothing was compared");
    }

    /// The layered-protocol axis of the parallel determinism contract:
    /// thread counts {1, 2, 8} produce byte-identical output for the
    /// virtual-clock wrapper on graphs wide enough to engage sharding.
    #[test]
    fn layered_parallel_equals_serial(
        g in arb_wide_graph(),
        seed in any::<u64>(),
        plan_pick in 0u8..5,
        stride in 1u64..9,
    ) {
        let config = SimConfig::new(ChannelModel::Cd)
            .with_seed(seed)
            .with_faults(fault_corpus(plan_pick))
            .with_round_metrics();
        let (serial_report, serial_trace) =
            run_layered(&g, &config.clone().with_threads(1), 6, 20, stride);
        prop_assert!(!serial_trace.is_empty());
        for threads in [2usize, 8] {
            let (report, trace) =
                run_layered(&g, &config.clone().with_threads(threads), 6, 20, stride);
            prop_assert_eq!(&serial_report, &report, "diverged at {} threads", threads);
            prop_assert_eq!(&serial_trace, &trace, "traces diverged at {} threads", threads);
        }
    }
}
