//! E7 — Lemmas 8–9: the energy-efficient backoff primitives.
//!
//! A star topology with the hub running `Rec-EBackoff(k, Δ, Δ_est)` and
//! `d` leaves running `Snd-EBackoff(k, Δ)` simultaneously. Measures
//!
//! - detection success rate vs the Lemma 9 bound 1 − (7/8)^k;
//! - sender awake rounds (Lemma 8: exactly k) and receiver awake rounds
//!   (Lemma 8: ≤ k·⌈log Δ_est⌉, much less in expectation when senders
//!   exist).
//!
//! Like every experiment module, `run` resolves its simulation work
//! through an [`Orchestrator`] job unit per `(d, k)` cell, so reruns with
//! a warm cache skip the simulator entirely:
//!
//! ```
//! use mis_experiments::e07_backoff;
//! use mis_experiments::{ExpConfig, Orchestrator};
//!
//! let orch = Orchestrator::ephemeral();
//! let out = e07_backoff::run(&ExpConfig::quick(11), &orch);
//! assert_eq!(out.id, "e7");
//! // quick mode: 2 sender counts × 3 repetition counts = 6 job units.
//! assert_eq!(orch.units_done(), 6);
//! assert_eq!(orch.hits(), 0); // ephemeral orchestrators never cache
//! ```

use crate::harness::{pct, ExpConfig, ExperimentOutput, Section};
use crate::orchestrator::{Orchestrator, UnitKey};
use mis_graphs::generators;
use mis_stats::table::fmt_num;
use mis_stats::{Summary, Table};
use radio_mis::backoff::{backoff_window, RecEBackoff, SndEBackoff};
use radio_netsim::{
    split_seed, Action, ChannelModel, Feedback, NodeRng, NodeStatus, Protocol, SimConfig, Simulator,
};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Cached value of one `(d, k)` cell: per-trial `(heard, receiver awake,
/// sender awake)` outcomes.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct BackoffCell {
    outcomes: Vec<(bool, u64, u64)>,
}

/// A node that runs exactly one backoff machine and retires.
enum BackoffNode {
    Snd(SndEBackoff, bool),
    Rec(RecEBackoff, bool),
}

impl Protocol for BackoffNode {
    fn act(&mut self, round: u64, _rng: &mut NodeRng) -> Action {
        match self {
            BackoffNode::Snd(m, done) => {
                if m.is_done(round) {
                    *done = true;
                    Action::halt()
                } else {
                    m.act(round)
                }
            }
            BackoffNode::Rec(m, done) => {
                if m.is_done(round) {
                    *done = true;
                    Action::halt()
                } else {
                    m.act(round)
                }
            }
        }
    }
    fn feedback(&mut self, round: u64, fb: Feedback, _rng: &mut NodeRng) {
        if let BackoffNode::Rec(m, _) = self {
            m.feedback(round, fb);
        }
    }
    fn status(&self) -> NodeStatus {
        // Encode "heard" in the status so the report carries it out.
        match self {
            BackoffNode::Rec(m, _) if m.heard() => NodeStatus::InMis,
            _ => NodeStatus::OutMis,
        }
    }
    fn finished(&self) -> bool {
        match self {
            BackoffNode::Snd(_, done) | BackoffNode::Rec(_, done) => *done,
        }
    }
}

/// Runs E7.
pub fn run(cfg: &ExpConfig, orch: &Orchestrator) -> ExperimentOutput {
    let delta = 1usize << 10;
    let trials = cfg.trials(200);
    let ks: &[u32] = if cfg.quick {
        &[1, 4, 8]
    } else {
        &[1, 2, 4, 8, 16, 24]
    };
    let ds: &[usize] = if cfg.quick {
        &[1, 8]
    } else {
        &[1, 2, 8, 64, 512]
    };

    let mut success_table = Table::new(["senders d", "k", "detection rate", "Lemma 9 bound"]);
    let mut energy_table = Table::new([
        "senders d",
        "k",
        "sender awake (=k?)",
        "receiver awake (≤ k·W_est)",
        "receiver awake bound",
    ]);
    let mut all_above_bound = true;
    for &d in ds {
        let g = generators::star(d + 1);
        for &k in ks {
            let cell = orch.unit_with_cost(
                &UnitKey::new("e7", format!("d={d}/k={k}"))
                    .with("graph", format!("star/{}", d + 1))
                    .with("alg", "Snd+RecEBackoff")
                    .with("delta", delta)
                    .with("k", k)
                    .with("channel", "NoCd")
                    .with("seed", cfg.seed)
                    .with("trials", trials),
                || {
                    let outcomes = (0..trials)
                        .into_par_iter()
                        .map(|t| {
                            let seed = split_seed(
                                cfg.seed,
                                ((d as u64) << 40) ^ ((k as u64) << 20) ^ t as u64,
                            );
                            let report = Simulator::new(
                                &g,
                                SimConfig::new(ChannelModel::NoCd).with_seed(seed),
                            )
                            .run(|v, rng| {
                                if v == 0 {
                                    BackoffNode::Rec(RecEBackoff::new(0, k, delta, delta), false)
                                } else {
                                    BackoffNode::Snd(SndEBackoff::new(0, k, delta, rng), false)
                                }
                            });
                            let heard = report.statuses[0] == NodeStatus::InMis;
                            let sender_awake = if d > 0 { report.meters[1].energy() } else { 0 };
                            (heard, report.meters[0].energy(), sender_awake)
                        })
                        .collect();
                    BackoffCell { outcomes }
                },
                |c| c.outcomes.iter().map(|o| o.1 + o.2).sum(),
            );
            let outcomes = &cell.outcomes;
            let heard_count = outcomes.iter().filter(|o| o.0).count();
            let bound = 1.0 - (7f64 / 8.0).powi(k as i32);
            if (heard_count as f64 / trials as f64) < bound - 0.1 {
                all_above_bound = false;
            }
            success_table.push_row([
                d.to_string(),
                k.to_string(),
                pct(heard_count, trials),
                fmt_num(bound),
            ]);
            let rec_awake: Vec<f64> = outcomes.iter().map(|o| o.1 as f64).collect();
            let snd_awake: Vec<f64> = outcomes.iter().map(|o| o.2 as f64).collect();
            energy_table.push_row([
                d.to_string(),
                k.to_string(),
                fmt_num(Summary::of(&snd_awake).mean),
                fmt_num(Summary::of(&rec_awake).mean),
                (k as u64 * backoff_window(delta) as u64).to_string(),
            ]);
        }
    }

    ExperimentOutput {
        id: "e7",
        title: "Snd-EBackoff / Rec-EBackoff primitives".into(),
        claim: "Lemma 8: a k-repeated backoff takes O(k·log Δ) rounds; the sender is \
                awake exactly k rounds, the receiver O(k·log Δ_est). Lemma 9: with \
                ≤ Δ_est simultaneous senders, the receiver detects them w.p. \
                ≥ 1 − (7/8)^k."
            .into(),
        sections: vec![
            Section {
                caption: format!("detection success on a star, Δ = {delta}, {trials} trials"),
                table: success_table,
            },
            Section {
                caption: "awake-round accounting (sender exactly k; receiver early-sleeps \
                          after hearing)"
                    .into(),
                table: energy_table,
            },
        ],
        findings: vec![
            if all_above_bound {
                "every (d, k) cell meets the 1 − (7/8)^k detection bound (within sampling \
                 noise)"
                    .to_string()
            } else {
                "WARNING: some cell fell >10pp below the Lemma 9 bound".to_string()
            },
            "sender awake rounds equal k exactly; receiver awake rounds collapse towards \
             O(1) iterations once senders exist (early sleep after first hearing)"
                .into(),
        ],
        charts: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_meets_bound() {
        let out = run(&ExpConfig::quick(11), &Orchestrator::ephemeral());
        assert!(out.findings[0].contains("bound"));
        assert!(!out.findings[0].contains("WARNING"), "{}", out.findings[0]);
    }
}
