//! E12 — §1.1 footnote 1: running without a known Δ.
//!
//! Compares [`UnknownDeltaMis`] (guesses 2^(2^i)) against Algorithm 2 with
//! the true Δ, on graphs whose Δ defeats several early guesses. Reports
//! the measured energy and round overhead factors against the footnote's
//! claimed O(loglog n)× energy and O(1)× rounds.

use crate::harness::{pct, ExpConfig, ExperimentOutput, Section};
use crate::orchestrator::{Orchestrator, UnitKey};
use mis_graphs::generators::{self, Family};
use mis_stats::table::fmt_num;
use mis_stats::{Summary, Table};
use radio_mis::nocd::NoCdMis;
use radio_mis::params::NoCdParams;
use radio_mis::unknown_delta::{delta_guesses, UnknownDeltaMis};
use radio_netsim::{ChannelModel, SimConfig};

/// Runs E12.
pub fn run(cfg: &ExpConfig, orch: &Orchestrator) -> ExperimentOutput {
    let n = if cfg.quick { 128 } else { 512 };
    let trials = cfg.trials(9);
    let mut table = Table::new(["graph", "Δ", "variant", "energy(max)", "rounds", "success"]);
    let mut energy_ratios = Vec::new();
    let mut round_ratios = Vec::new();
    let graphs = vec![
        (
            "gnp-d8".to_string(),
            format!(
                "{}/seed={:#x}",
                Family::GnpAvgDegree(8).label(),
                cfg.seed ^ 0x12
            ),
            Family::GnpAvgDegree(8).generate(n, cfg.seed ^ 0x12),
        ),
        ("star".to_string(), format!("star/{n}"), generators::star(n)),
    ];
    for (label, recipe, g) in &graphs {
        let delta = g.max_degree().max(2);
        let known_params = NoCdParams::for_n(n, delta);
        let template = NoCdParams::for_n(n, 2);
        let known = orch.trials(
            UnitKey::new("e12", format!("{label}/known-delta"))
                .with("graph", recipe)
                .with("alg", "NoCdMis")
                .with("params", format!("{known_params:?}")),
            g,
            SimConfig::new(ChannelModel::NoCd).with_seed(cfg.seed ^ 31),
            trials,
            |_, _| NoCdMis::new(known_params),
        );
        let unknown = orch.trials(
            UnitKey::new("e12", format!("{label}/unknown-delta"))
                .with("graph", recipe)
                .with("alg", "UnknownDeltaMis")
                .with("params", format!("{template:?}")),
            g,
            SimConfig::new(ChannelModel::NoCd).with_seed(cfg.seed ^ 32),
            trials,
            |_, _| UnknownDeltaMis::new(n, template),
        );
        for (name, set) in [("known Δ", &known), ("unknown Δ (2^2^i guesses)", &unknown)] {
            table.push_row([
                label.clone(),
                delta.to_string(),
                name.to_string(),
                fmt_num(Summary::of(&set.energies).mean),
                fmt_num(Summary::of(&set.rounds).mean),
                pct(set.correct, set.successes()),
            ]);
        }
        let ke = Summary::of(&known.energies).mean.max(1e-9);
        let ue = Summary::of(&unknown.energies).mean;
        let kr = Summary::of(&known.rounds).mean.max(1e-9);
        let ur = Summary::of(&unknown.rounds).mean;
        energy_ratios.push(ue / ke);
        round_ratios.push(ur / kr);
    }
    let guesses = delta_guesses(n);
    let mean_e = energy_ratios.iter().sum::<f64>() / energy_ratios.len().max(1) as f64;
    let mean_r = round_ratios.iter().sum::<f64>() / round_ratios.len().max(1) as f64;

    ExperimentOutput {
        id: "e12",
        title: "unknown Δ via doubly-exponential guessing".into(),
        claim: "§1.1 footnote 1: guessing Δ as 2^(2^i) carries an O(loglog n) factor in \
                energy and an O(1) factor in rounds."
            .into(),
        sections: vec![Section {
            caption: format!("n = {n}, guesses {:?}, {trials} trials per cell", guesses),
            table,
        }],
        findings: vec![
            format!(
                "measured energy overhead {:.1}× (guess count = {} ≈ loglog n + 1) and \
                 round overhead {:.1}× vs the known-Δ run",
                mean_e,
                guesses.len(),
                mean_r
            ),
            "our reconstruction repairs independence violations with end-of-epoch audits \
             but does not individually repair dominated-by-reverted nodes (the part the \
             paper leaves open); the success column shows the residual effect"
                .into(),
        ],
        charts: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_reports_overheads() {
        let out = run(&ExpConfig::quick(29), &Orchestrator::ephemeral());
        assert_eq!(out.sections[0].table.len(), 4);
        assert!(out.findings[0].contains("overhead"));
    }
}
