//! Naive Luby in the CD model: Algorithm 1's logic without the early sleep.
//!
//! Every non-terminated node stays awake through every round of every Luby
//! phase, so energy equals round complexity: Θ(log²n). This is the §1.3
//! baseline that motivates Algorithm 1's O(log n) energy bound.

use crate::cd::{CdMis, EnergyMode};
use crate::params::CdParams;

/// Constructs a naive-Luby node: identical MIS logic to [`CdMis`], losers
/// keep listening instead of sleeping.
pub fn naive_luby_cd(params: CdParams) -> CdMis {
    CdMis::with_mode(params, EnergyMode::Naive)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mis_graphs::generators;
    use radio_netsim::{ChannelModel, SimConfig, Simulator};

    #[test]
    fn naive_energy_tracks_rounds() {
        // In the naive version an undecided node is awake every round, so
        // max energy ≈ the round at which the last node decided.
        let g = generators::gnp(128, 0.06, 5);
        let params = CdParams::for_n(128);
        let report = Simulator::new(&g, SimConfig::new(ChannelModel::Cd).with_seed(9))
            .run(|_, _| naive_luby_cd(params));
        assert!(report.is_correct_mis(&g));
        let max_decided = report
            .meters
            .iter()
            .map(|m| m.decided_at.unwrap())
            .max()
            .unwrap();
        let energy = report.max_energy();
        // Energy within 1 of the slowest decision round (awake every round
        // until deciding).
        assert!(
            energy >= max_decided && energy <= max_decided + 1,
            "energy {energy} vs last decision {max_decided}"
        );
    }
}
