//! Round-loop backends head to head: the sparse wake queue vs the dense
//! per-node-scan oracle, on the sparse-awake workload the queue exists for.
//!
//! The workload wakes nodes in staggered batches of 100: at any processed
//! round only ~100 of n nodes are due, so the dense backend pays an O(n)
//! wake-table scan per processed round while the sparse backend pays
//! O(batch · log n) heap traffic. The gap is the whole point of the
//! `EngineMode::Sparse` default; `BENCH_engine.json` at the repo root pins
//! the expected speedup ratios.
//!
//! Two entry points:
//! - `cargo bench --bench bench_engine_sparse` — full criterion run over
//!   n ∈ {10³, 10⁴, 10⁵} × {path, UDG, G(n,p)} × {dense, sparse};
//! - `ENGINE_BENCH_SMOKE=1 cargo bench --bench bench_engine_sparse` — a
//!   quick wall-clock check at n = 10⁵ that fails (exit 1) if any measured
//!   speedup drops below max(5, 0.8 × baseline): the CI regression gate.

use criterion::{criterion_group, BenchmarkId, Criterion};
use mis_bench::workload;
use mis_graphs::generators::{self, Family};
use mis_graphs::Graph;
use radio_netsim::{
    Action, ChannelModel, EngineMode, Feedback, NodeRng, NodeStatus, Protocol, SimConfig, Simulator,
};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Nodes awake together per wake slot.
const BATCH: usize = 100;
/// Awake (listening) rounds each node spends in its slot.
const WORK: u64 = 2;
/// Rounds between consecutive wake slots — the quiet span the engine jumps.
const STRIDE: u64 = 8;

/// Sleeps until its batch's wake slot, listens for [`WORK`] rounds, halts.
struct Staggered {
    slot: u64,
    work_left: u64,
    done: bool,
}

impl Protocol for Staggered {
    fn act(&mut self, round: u64, _rng: &mut NodeRng) -> Action {
        if round < self.slot {
            return Action::Sleep { wake_at: self.slot };
        }
        if self.work_left == 0 {
            self.done = true;
            return Action::halt();
        }
        self.work_left -= 1;
        Action::Listen
    }
    fn feedback(&mut self, _round: u64, _fb: Feedback, _rng: &mut NodeRng) {}
    fn status(&self) -> NodeStatus {
        NodeStatus::OutMis
    }
    fn finished(&self) -> bool {
        self.done
    }
}

fn staggered(v: usize) -> Staggered {
    Staggered {
        slot: (v / BATCH) as u64 * STRIDE,
        work_left: WORK,
        done: false,
    }
}

fn run(g: &Graph, mode: EngineMode) -> u64 {
    let config = SimConfig::new(ChannelModel::Cd)
        .with_seed(1)
        .with_engine_mode(mode);
    let report = Simulator::new(g, config).run(|v, _| staggered(v));
    assert!(report.completed, "staggered workload must finish");
    report.rounds
}

fn topologies(n: usize) -> Vec<(&'static str, Graph)> {
    vec![
        ("path", generators::path(n)),
        ("udg6", Family::GeometricAvgDegree(6).generate(n, 42)),
        ("gnp8", workload(n, 42)),
    ]
}

fn bench(c: &mut Criterion) {
    for &n in &[1_000usize, 10_000, 100_000] {
        let mut group = c.benchmark_group(format!("engine_round_loop/n={n}"));
        group.sample_size(10);
        for (label, g) in topologies(n) {
            for mode in [EngineMode::Dense, EngineMode::Sparse] {
                group.bench_with_input(BenchmarkId::new(format!("{mode:?}"), label), &g, |b, g| {
                    b.iter(|| run(g, mode))
                });
            }
        }
        group.finish();
    }
}

criterion_group!(benches, bench);

/// Best-of-3 wall-clock time for one run.
fn measure(g: &Graph, mode: EngineMode) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..3 {
        let start = Instant::now();
        run(g, mode);
        best = best.min(start.elapsed());
    }
    best
}

/// Loads the committed speedup baselines (`{"speedup": {"path/100000": …}}`).
fn load_baseline() -> HashMap<String, f64> {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_engine.json");
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
    let v: serde_json::Value = serde_json::from_str(&text).expect("baseline must parse");
    v["speedup"]
        .as_object()
        .expect("baseline needs a \"speedup\" table")
        .iter()
        .map(|(k, val)| (k.clone(), val.as_f64().expect("speedup must be numeric")))
        .collect()
}

/// The CI regression gate: measures the dense/sparse ratio at n = 10⁵ and
/// fails on a >20% regression against the committed baseline (never below
/// the 5× acceptance floor).
fn smoke() {
    let baseline = load_baseline();
    let n = 100_000;
    let mut failed = false;
    for (label, g) in topologies(n) {
        let dense = measure(&g, EngineMode::Dense);
        let sparse = measure(&g, EngineMode::Sparse);
        let speedup = dense.as_secs_f64() / sparse.as_secs_f64().max(1e-9);
        let key = format!("{label}/{n}");
        let floor = baseline.get(&key).map_or(5.0, |&b| (0.8 * b).max(5.0));
        println!("{key}: dense {dense:?} / sparse {sparse:?} = {speedup:.1}x (floor {floor:.1}x)");
        if speedup < floor {
            eprintln!("REGRESSION: {key} speedup {speedup:.1}x below floor {floor:.1}x");
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
    println!("engine smoke: all speedups above their floors");
}

fn main() {
    if std::env::var_os("ENGINE_BENCH_SMOKE").is_some() {
        smoke();
        return;
    }
    benches();
    Criterion::default().configure_from_args().final_summary();
}
