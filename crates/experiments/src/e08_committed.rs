//! E8 — Corollary 13 / Lemma 11: the committed subgraph.
//!
//! From instrumented Algorithm 2 runs on dense graphs, reconstructs the
//! per-phase committed sets C_i (nodes whose competition record carries a
//! `committed_at_bit`) and audits:
//!
//! - the maximum degree of the subgraph induced by C_i against the
//!   κ·log₂ n bound that justifies the Δ_est reduction (Corollary 13);
//! - whether adjacent committed nodes committed in the *same* bitty phase
//!   (Lemma 11).

use crate::harness::{run_nocd_instrumented, ExpConfig, ExperimentOutput, Section};
use crate::orchestrator::{Orchestrator, UnitKey};
use mis_graphs::generators::Family;
use mis_stats::table::fmt_num;
use mis_stats::Table;
use radio_mis::params::NoCdParams;
use radio_netsim::split_seed;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Cached value of one instrumented trial: per-phase
/// `(phase, |C_i|, max deg in C_i, same-bit pairs, adjacent pairs)` rows
/// plus the run's correctness flag.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct CommitTrial {
    rows: Vec<(u32, usize, usize, usize, usize)>,
    success: bool,
    cost: u64,
}

/// Runs E8.
pub fn run(cfg: &ExpConfig, orch: &Orchestrator) -> ExperimentOutput {
    let n = if cfg.quick { 256 } else { 1024 };
    let trials = cfg.trials(6);
    let g = Family::GnpAvgDegree(32).generate(n, cfg.seed ^ 0xE8);
    let params = NoCdParams::for_n(n, g.max_degree().max(2));
    let bound = (params.kappa * (n as f64).log2()).ceil();
    let graph_recipe = format!(
        "{}/seed={:#x}",
        Family::GnpAvgDegree(32).label(),
        cfg.seed ^ 0xE8
    );

    // (phase -> (committed nodes with their bit)) aggregated per trial.
    let mut table = Table::new([
        "trial",
        "phase",
        "|C_i|",
        "max deg in C_i",
        "κ·log n bound",
        "adjacent pairs same-bit",
    ]);
    let mut max_deg_overall = 0usize;
    let mut same_bit_pairs = 0usize;
    let mut total_pairs = 0usize;
    let mut success = true;
    for t in 0..trials {
        let cell = orch.unit_with_cost(
            &UnitKey::new("e8", format!("trial={t}"))
                .with("graph", &graph_recipe)
                .with("n", n)
                .with("alg", "NoCdMis/instrumented")
                .with("params", format!("{params:?}"))
                .with("seed", cfg.seed)
                .with("trial", t),
            || {
                let seed = split_seed(cfg.seed, t as u64);
                let (report, inst) = run_nocd_instrumented(&g, params, seed);
                let mut per_phase: HashMap<u32, Vec<(usize, u32)>> = HashMap::new();
                for (v, h) in inst.histories.iter().enumerate() {
                    for rec in h {
                        if let Some(bit) = rec.committed_at_bit {
                            per_phase.entry(rec.phase).or_default().push((v, bit));
                        }
                    }
                }
                let mut phases: Vec<u32> = per_phase.keys().copied().collect();
                phases.sort_unstable();
                let mut rows = Vec::new();
                for phase in phases.iter().take(4) {
                    let committed = &per_phase[phase];
                    let mut mask = vec![false; g.len()];
                    let mut bit_of = vec![u32::MAX; g.len()];
                    for &(v, bit) in committed {
                        mask[v] = true;
                        bit_of[v] = bit;
                    }
                    let max_deg = g.max_degree_within(&mask);
                    let mut same = 0usize;
                    let mut pairs = 0usize;
                    for (u, v) in g.edges() {
                        if mask[u] && mask[v] {
                            pairs += 1;
                            if bit_of[u] == bit_of[v] {
                                same += 1;
                            }
                        }
                    }
                    rows.push((*phase, committed.len(), max_deg, same, pairs));
                }
                CommitTrial {
                    rows,
                    success: report.is_correct_mis(&g),
                    cost: report.meters.iter().map(|m| m.energy()).sum(),
                }
            },
            |c| c.cost,
        );
        success &= cell.success;
        for &(phase, committed, max_deg, same, pairs) in &cell.rows {
            max_deg_overall = max_deg_overall.max(max_deg);
            same_bit_pairs += same;
            total_pairs += pairs;
            table.push_row([
                t.to_string(),
                phase.to_string(),
                committed.to_string(),
                max_deg.to_string(),
                fmt_num(bound),
                if pairs == 0 {
                    "—".to_string()
                } else {
                    format!("{same}/{pairs}")
                },
            ]);
        }
    }

    let same_bit_rate = if total_pairs == 0 {
        1.0
    } else {
        same_bit_pairs as f64 / total_pairs as f64
    };
    ExperimentOutput {
        id: "e8",
        title: "committed subgraph degree and synchrony".into(),
        claim: "Corollary 13: the subgraph induced by the committed set C_i has maximum \
                degree O(log n) (whence Δ_est ← κ·log n is sound). Lemma 11: adjacent \
                committed nodes committed in the same bitty phase w.h.p."
            .into(),
        sections: vec![Section {
            caption: format!(
                "gnp-d32, n = {n} (Δ = {}), first phases of {trials} instrumented runs",
                g.max_degree()
            ),
            table,
        }],
        findings: vec![
            format!(
                "max committed-subgraph degree observed: {max_deg_overall} vs bound \
                 κ·log n = {bound} — Corollary 13 holds{}",
                if (max_deg_overall as f64) <= bound {
                    ""
                } else {
                    " (VIOLATED)"
                }
            ),
            format!(
                "{:.0}% of adjacent committed pairs committed in the same bitty phase \
                 (Lemma 11 predicts ≈ 100%)",
                100.0 * same_bit_rate
            ),
            format!("all runs produced verified MIS outputs: {success}"),
        ],
        charts: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_respects_bound() {
        let out = run(&ExpConfig::quick(13), &Orchestrator::ephemeral());
        assert!(!out.findings[0].contains("VIOLATED"), "{}", out.findings[0]);
    }
}
