//! MIS as a building block: matching and coloring on a sensor field.
//!
//! The paper's introduction motivates MIS as the primitive from which
//! ad-hoc networks derive higher-level structure. This example derives two
//! such structures with the crate's application layer:
//!
//! - a **maximal matching** (pairing links for interference-free
//!   scheduling), via MIS on the line graph;
//! - a **(Δ+1)-coloring** (TDMA slot assignment), via iterated MIS.
//!
//! ```text
//! cargo run --release -p energy-mis --example backbone_applications
//! ```

use energy_mis::graphs::{generators, mis};
use energy_mis::mis::applications::{coloring_via_mis, maximal_matching};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 300;
    let radius = (8.0 / (n as f64 * std::f64::consts::PI)).sqrt();
    let field = generators::random_geometric(n, radius, 7);
    println!(
        "sensor field: {n} nodes, {} links, Δ = {}",
        field.edge_count(),
        field.max_degree()
    );

    let matching = maximal_matching(&field, 42)?;
    assert!(mis::is_maximal_matching(&field, &matching.result));
    println!(
        "maximal matching: {} pairs ({} of {} links), via 1 MIS run on L(G) \
         ({} simulated link-radios, energy {})",
        matching.result.len(),
        matching.result.len(),
        field.edge_count(),
        field.edge_count(),
        matching.energy
    );

    let coloring = coloring_via_mis(&field, 43)?;
    assert!(mis::is_proper_coloring(&field, &coloring.result));
    let slots = coloring.result.iter().max().unwrap() + 1;
    println!(
        "TDMA coloring: {slots} slots (Δ+1 = {}), via {} MIS runs, total energy {}",
        field.max_degree() + 1,
        coloring.mis_runs,
        coloring.energy
    );
    // Slot occupancy histogram.
    let mut per_slot = vec![0usize; slots];
    for &c in &coloring.result {
        per_slot[c] += 1;
    }
    println!("slot sizes: {per_slot:?}");
    Ok(())
}
