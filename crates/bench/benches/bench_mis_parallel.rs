//! Parallel MIS solving and verification: push vs pull, serial vs sharded.
//!
//! Two questions, both about `mis_graphs::parallel`:
//!
//! 1. **Solve** — how do the push and pull elimination sides of
//!    `prio_mis_with` compare across topologies? The selection rule
//!    (`choose_elimination`) claims pull only pays on hub-dominated
//!    graphs; the criterion group measures both sides on a path, a
//!    unit-disk graph, G(n,p), and a power-law graph so the claim is a
//!    number, not an assertion.
//! 2. **Verify** — how much does `verify_mis_par` buy over the serial
//!    `mis::verify_mis` scan? `BENCH_verify.json` pins the speedup
//!    floor the CI smoke gate enforces.
//!
//! Entry points:
//! - `cargo bench --bench bench_mis_parallel` — criterion run: push/pull
//!   solves at n = 10⁵ per family, verify at thread counts {1, 2, max};
//! - `MIS_BENCH_SMOKE=1 cargo bench --bench bench_mis_parallel` —
//!   wall-clock serial/parallel verify ratios at n ∈ {10⁵, 10⁶} on
//!   G(n, p) with average degree 8, enforced against the committed
//!   `verify_speedup` baselines only on hosts with ≥ 4 cores (printed
//!   but not gated on smaller machines, where the floor is unreachable
//!   by construction);
//! - `MIS_BENCH_FULL=1` additionally runs the 10⁸-edge row — G(n, p)
//!   at n = 10⁷ with average degree 20 — the "verify a 10⁸-edge graph
//!   in seconds" headline, kept out of the default smoke run because
//!   building the graph alone needs several GiB of RAM.

use criterion::{criterion_group, BenchmarkId, Criterion};
use mis_graphs::generators::Family;
use mis_graphs::parallel::{self, Elimination};
use mis_graphs::{mis, Graph};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// The topology panel for the solve group: the selection rule's claimed
/// "pull wins" case (power-law) plus three "push wins" shapes.
fn solve_families() -> [Family; 4] {
    [
        Family::Path,
        Family::GeometricAvgDegree(8),
        Family::GnpAvgDegree(8),
        Family::PowerLaw(3),
    ]
}

fn bench(c: &mut Criterion) {
    let n = 100_000;
    let threads = available_cores().min(8);
    for fam in solve_families() {
        let g = fam.generate(n, 7);
        let mut group = c.benchmark_group(format!("mis_parallel/solve/{}", fam.label()));
        group.sample_size(10);
        for elim in [Elimination::Push, Elimination::Pull] {
            group.bench_with_input(
                BenchmarkId::new(elim.label(), threads),
                &elim,
                |b, &elim| b.iter(|| parallel::prio_mis_with(&g, 7, threads, elim).rounds),
            );
        }
        group.finish();
    }

    let g = Family::GnpAvgDegree(8).generate(n, 7);
    let mask = parallel::prio_mis(&g, 7, threads);
    let mut group = c.benchmark_group("mis_parallel/verify/gnp8-1e5");
    group.sample_size(10);
    group.bench_function("serial", |b| b.iter(|| mis::verify_mis(&g, &mask).is_ok()));
    for t in [1usize, 2, threads] {
        group.bench_with_input(BenchmarkId::new("threads", t), &t, |b, &t| {
            b.iter(|| parallel::verify_mis_par(&g, &mask, t).is_ok())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);

fn available_cores() -> usize {
    std::thread::available_parallelism().map_or(1, |c| c.get())
}

/// Best-of-`reps` wall-clock time for one verification pass.
fn measure(reps: u32, mut pass: impl FnMut() -> bool) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..reps {
        let start = Instant::now();
        assert!(pass(), "benchmark mask must verify");
        best = best.min(start.elapsed());
    }
    best
}

/// Loads the committed verify-speedup baselines
/// (`{"verify_speedup": {"1e6": …}}`).
fn load_baseline() -> HashMap<String, f64> {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_verify.json");
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
    let v: serde_json::Value = serde_json::from_str(&text).expect("baseline must parse");
    v["verify_speedup"]
        .as_object()
        .expect("baseline needs a \"verify_speedup\" table")
        .iter()
        .map(|(k, val)| (k.clone(), val.as_f64().expect("speedup must be numeric")))
        .collect()
}

/// Hard acceptance floors per size, independent of the committed
/// baseline: the 10⁶-node row must clear 2× (the PR's acceptance
/// criterion); 10⁵ tolerates more per-range overhead relative to work.
fn absolute_floor(key: &str) -> f64 {
    if key == "1e5" {
        1.3
    } else {
        2.0
    }
}

/// One smoke row: build the graph and a valid MIS, race the serial and
/// sharded verifiers, return the wall ratio.
fn smoke_row(n: usize, avg_degree: usize, threads: usize, reps: u32) -> (Graph, f64, Duration) {
    let g = Family::GnpAvgDegree(avg_degree as u32).generate(n, 7);
    let mask = parallel::prio_mis(&g, 7, threads);
    let serial = measure(reps, || mis::verify_mis(&g, &mask).is_ok());
    let par = measure(reps, || {
        parallel::verify_mis_par(&g, &mask, threads).is_ok()
    });
    let ratio = serial.as_secs_f64() / par.as_secs_f64().max(1e-9);
    (g, ratio, par)
}

/// The CI regression gate: serial/parallel verify wall ratios, enforced
/// against `max(absolute, 0.8 × baseline)` — but only on hosts with
/// ≥ 4 cores.
fn smoke() {
    let cores = available_cores();
    let threads = cores.min(8);
    let enforce = cores >= 4;
    let baseline = load_baseline();
    let mut failed = false;
    for (n, key, reps) in [(100_000usize, "1e5", 3u32), (1_000_000, "1e6", 3)] {
        let (g, ratio, par) = smoke_row(n, 8, threads, reps);
        let floor = baseline.get(key).map_or_else(
            || absolute_floor(key),
            |&b| (0.8 * b).max(absolute_floor(key)),
        );
        println!(
            "{key}: {} edges, {threads}-thread verify {par:?}, serial/parallel = \
             {ratio:.2}x (floor {floor:.2}x, {})",
            g.edge_count(),
            if enforce {
                "enforced"
            } else {
                "print-only: < 4 cores"
            }
        );
        if enforce && ratio < floor {
            eprintln!("REGRESSION: {key} verify speedup {ratio:.2}x below floor {floor:.2}x");
            failed = true;
        }
    }
    if std::env::var_os("MIS_BENCH_FULL").is_some() {
        // The headline row: ~10⁸ edges (n = 10⁷, average degree 20).
        // Completion within the run — not a speedup floor — is the
        // acceptance criterion; the ratio is printed for the record.
        let (g, ratio, par) = smoke_row(10_000_000, 20, threads, 1);
        println!(
            "1e8-edges: {} edges, {threads}-thread verify {par:?}, \
             serial/parallel = {ratio:.2}x (print-only)",
            g.edge_count()
        );
    }
    if failed {
        std::process::exit(1);
    }
    println!("mis parallel smoke: done");
}

fn main() {
    if std::env::var_os("MIS_BENCH_SMOKE").is_some() {
        smoke();
        return;
    }
    benches();
    Criterion::default().configure_from_args().final_summary();
}
