//! Deterministic intra-round parallelism: the engine's worker pools and
//! the id-range shard splitter.
//!
//! The engine never makes scheduling-dependent decisions in parallel
//! code. Both round phases that shard — action collection and feedback
//! delivery — write into pre-sized output slots indexed by the node's
//! position in the (ascending) worklist, and every node draws only from
//! its own pre-split RNG stream. The serial merge that follows reads
//! those slots back in ascending id order, so thread count and work
//! stealing cannot change a single output byte. The argument is spelled
//! out in `docs/PARALLEL_ENGINE.md`.
//!
//! The machinery itself — the leaked per-thread-count pools and the
//! recursive `split_at_mut` sharder, now generic over the per-node RNG
//! slab — lives in `mis_graphs::parallel`, where the parallel MIS solver
//! and verifier share it; this module pins the engine-facing aliases so
//! engine code keeps reading as before.

pub(crate) use mis_graphs::parallel::{pool as engine_pool, shard_slices, MIN_PAR_GRAIN};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::NodeRng;
    use mis_graphs::NodeId;
    use rand::{Rng, SeedableRng};

    // These tests exercise the shared sharder through the engine-facing
    // types (a concrete NodeRng slab), complementing the generic-slab
    // tests in mis_graphs::parallel.

    fn run_shard(ids: &[NodeId], n: usize, par: bool) -> (Vec<u32>, Vec<u64>) {
        let mut nodes: Vec<u32> = vec![0; n];
        let mut rngs: Vec<NodeRng> = (0..n)
            .map(|v| NodeRng::seed_from_u64(crate::rng::split_seed(7, v as u64)))
            .collect();
        let mut out: Vec<u64> = vec![0; ids.len()];
        shard_slices(
            ids,
            0,
            &mut nodes,
            &mut rngs,
            &mut out,
            par,
            &|v: NodeId, node: &mut u32, rng: &mut NodeRng, slot: &mut u64| {
                *node += 1;
                *slot = v as u64 ^ rng.gen::<u64>();
            },
        );
        (nodes, out)
    }

    #[test]
    fn parallel_split_matches_serial_walk_exactly() {
        // Enough ids to split several times, with gaps so base arithmetic
        // is exercised.
        let ids: Vec<NodeId> = (0..500).filter(|v| v % 3 != 1).collect();
        let (serial_nodes, serial_out) = run_shard(&ids, 500, false);
        let (par_nodes, par_out) = engine_pool(3).install(|| run_shard(&ids, 500, true));
        assert_eq!(serial_nodes, par_nodes);
        assert_eq!(serial_out, par_out);
        // Every listed node was visited exactly once, unlisted never.
        for v in 0..500 {
            assert_eq!(serial_nodes[v], u32::from(ids.contains(&v)));
        }
    }

    #[test]
    fn small_worklists_run_inline_even_when_parallel() {
        let ids: Vec<NodeId> = (10..30).collect();
        let (a, ao) = run_shard(&ids, 40, false);
        let (b, bo) = run_shard(&ids, 40, true);
        assert_eq!(a, b);
        assert_eq!(ao, bo);
        assert!(ids.len() <= MIN_PAR_GRAIN);
    }

    #[test]
    fn engine_pool_is_cached_per_thread_count() {
        let p2a = engine_pool(2) as *const rayon::ThreadPool;
        let p2b = engine_pool(2) as *const rayon::ThreadPool;
        assert!(std::ptr::eq(p2a, p2b));
        assert_eq!(engine_pool(2).current_num_threads(), 2);
    }
}
