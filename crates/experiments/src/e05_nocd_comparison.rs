//! E5 — §1.3/§5: Algorithm 2 vs the Davies-style LowDegreeMIS baseline vs
//! the naive no-CD simulation.
//!
//! The paper's headline: Algorithm 2's energy O(log²n·loglog n) beats
//! LowDegreeMIS-on-the-full-graph's Θ(log²n·log Δ) energy (where every
//! active node is awake for most of the schedule), which in turn beats the
//! naive ≈ log⁴n simulation. Round complexity ordering partially reverses:
//! LowDegreeMIS is the round-efficient one (§4.2).

use crate::harness::{pct, ExpConfig, ExperimentOutput, Section};
use crate::orchestrator::{Orchestrator, TrialStats, UnitKey};
use mis_graphs::generators::Family;
use mis_stats::table::fmt_num;
use mis_stats::{LineChart, Summary, Table};
use radio_mis::baselines::nocd_naive::{NaiveSimParams, NoCdNaive};
use radio_mis::low_degree::LowDegreeMis;
use radio_mis::nocd::NoCdMis;
use radio_mis::params::{CdParams, LowDegreeParams, NoCdParams};
use radio_netsim::{ChannelModel, SimConfig};

fn stats(stats: &TrialStats) -> (String, String, String, String) {
    (
        fmt_num(Summary::of(&stats.energies).mean),
        fmt_num(Summary::of(&stats.avg_energies).mean),
        fmt_num(Summary::of(&stats.rounds).mean),
        pct(stats.correct, stats.successes()),
    )
}

/// Runs E5.
pub fn run(cfg: &ExpConfig, orch: &Orchestrator) -> ExperimentOutput {
    let n = if cfg.quick { 128 } else { 1024 };
    let trials = cfg.trials(9);
    let mut table = Table::new([
        "family",
        "algorithm",
        "energy(max)",
        "energy(avg)",
        "rounds",
        "success",
    ]);
    let mut energy_ratios = Vec::new();
    for fam in [Family::GnpAvgDegree(8), Family::GeometricAvgDegree(8)] {
        let g = fam.generate(n, cfg.seed ^ 0xE5);
        let delta = g.max_degree().max(2);
        let nocd_params = NoCdParams::for_n(n, delta);
        let ld_params = LowDegreeParams::for_n(n, delta);
        let naive_cd = CdParams::for_n(n);
        let naive_sim = NaiveSimParams::for_n(n, delta);

        let graph_recipe = format!("{}/seed={:#x}", fam.label(), cfg.seed ^ 0xE5);
        let alg2 = orch.trials(
            UnitKey::new("e5", format!("{}/alg2", fam.label()))
                .with("graph", &graph_recipe)
                .with("alg", "NoCdMis")
                .with("params", format!("{nocd_params:?}")),
            &g,
            SimConfig::new(ChannelModel::NoCd).with_seed(cfg.seed ^ 11),
            trials,
            |_, _| NoCdMis::new(nocd_params),
        );
        let davies = orch.trials(
            UnitKey::new("e5", format!("{}/davies", fam.label()))
                .with("graph", &graph_recipe)
                .with("alg", "LowDegreeMis")
                .with("params", format!("{ld_params:?}")),
            &g,
            SimConfig::new(ChannelModel::NoCd).with_seed(cfg.seed ^ 12),
            trials,
            |_, _| LowDegreeMis::new(ld_params),
        );
        let naive = orch.trials(
            UnitKey::new("e5", format!("{}/naive", fam.label()))
                .with("graph", &graph_recipe)
                .with("alg", "NoCdNaive")
                .with("params", format!("{naive_cd:?}/{naive_sim:?}")),
            &g,
            SimConfig::new(ChannelModel::NoCd).with_seed(cfg.seed ^ 13),
            trials,
            |_, _| NoCdNaive::new(naive_cd, naive_sim),
        );
        for (name, set) in [
            ("Algorithm 2", &alg2),
            ("LowDegreeMIS on full graph (Davies-style)", &davies),
            ("naive Luby-over-backoff", &naive),
        ] {
            let (emax, eavg, rounds, succ) = stats(set);
            table.push_row([fam.label(), name.to_string(), emax, eavg, rounds, succ]);
        }
        let a = Summary::of(&alg2.energies).mean;
        let d = Summary::of(&davies.energies).mean;
        if a > 0.0 {
            energy_ratios.push(d / a);
        }
    }
    let mean_ratio = energy_ratios.iter().sum::<f64>() / energy_ratios.len().max(1) as f64;

    // Δ sweep at fixed n: the separation factor is log Δ vs loglog n, so
    // the crossover only appears once Δ is large.
    let sweep_trials = cfg.trials(6);
    let sweep_degrees: Vec<u32> = if cfg.quick {
        vec![8, 64]
    } else {
        vec![8, 32, 128, 400]
    };
    let mut sweep_table = Table::new([
        "avg degree",
        "Δ",
        "Alg 2 energy(max)",
        "Davies-style energy(max)",
        "ratio",
    ]);
    let mut first_ratio = None;
    let mut last_ratio = None;
    let mut sweep_points_alg2 = Vec::new();
    let mut sweep_points_davies = Vec::new();
    for &d in &sweep_degrees {
        let g = Family::GnpAvgDegree(d).generate(n, cfg.seed ^ (d as u64) << 3);
        let delta = g.max_degree().max(2);
        let graph_recipe = format!(
            "{}/seed={:#x}",
            Family::GnpAvgDegree(d).label(),
            cfg.seed ^ (d as u64) << 3
        );
        let alg2 = orch.trials(
            UnitKey::new("e5", format!("dsweep/d={d}/alg2"))
                .with("graph", &graph_recipe)
                .with("alg", "NoCdMis")
                .with("params", format!("{:?}", NoCdParams::for_n(n, delta))),
            &g,
            SimConfig::new(ChannelModel::NoCd).with_seed(cfg.seed ^ 41),
            sweep_trials,
            |_, _| NoCdMis::new(NoCdParams::for_n(n, delta)),
        );
        let davies = orch.trials(
            UnitKey::new("e5", format!("dsweep/d={d}/davies"))
                .with("graph", &graph_recipe)
                .with("alg", "LowDegreeMis")
                .with("params", format!("{:?}", LowDegreeParams::for_n(n, delta))),
            &g,
            SimConfig::new(ChannelModel::NoCd).with_seed(cfg.seed ^ 42),
            sweep_trials,
            |_, _| LowDegreeMis::new(LowDegreeParams::for_n(n, delta)),
        );
        let a = Summary::of(&alg2.energies).mean;
        let dv = Summary::of(&davies.energies).mean;
        let ratio = dv / a.max(1e-9);
        if first_ratio.is_none() {
            first_ratio = Some(ratio);
        }
        last_ratio = Some(ratio);
        sweep_points_alg2.push((delta as f64, a));
        sweep_points_davies.push((delta as f64, dv));
        sweep_table.push_row([
            d.to_string(),
            delta.to_string(),
            fmt_num(a),
            fmt_num(dv),
            format!("{ratio:.2}"),
        ]);
    }

    let mut sweep_chart = LineChart::new(
        "no-CD energy vs max degree at fixed n",
        "max degree (log scale)",
        "max awake rounds (mean)",
    )
    .with_log_x();
    sweep_chart.push_series("Algorithm 2", sweep_points_alg2);
    sweep_chart.push_series("Davies-style LowDegreeMIS", sweep_points_davies);

    ExperimentOutput {
        id: "e5",
        title: "no-CD model: Algorithm 2 vs prior art".into(),
        claim: "§1.3: Algorithm 2's O(log²n·loglog n) energy is significantly below the \
                O(log³n)-type energy of the best known round-efficient algorithm \
                (Davies/LowDegreeMIS, §4.2) and far below the naive O(log⁴n) simulation."
            .into(),
        sections: vec![
            Section {
                caption: format!("n = {n}, {trials} trials per cell"),
                table,
            },
            Section {
                caption: format!(
                    "Δ sweep at n = {n}: Davies-style energy grows with log Δ, \
                     Algorithm 2's stays flat"
                ),
                table: sweep_table,
            },
        ],
        findings: vec![
            format!(
                "at sparse Δ the Davies-style baseline spends {mean_ratio:.2}× Algorithm \
                 2's max energy; the naive simulation is far beyond both"
            ),
            format!(
                "across the Δ sweep the Davies/Alg-2 energy ratio moves from {:.2} to \
                 {:.2}: Algorithm 2's energy is Δ-insensitive while the baseline pays the \
                 log Δ factor — at laptop-scale n the asymptotic win (log Δ vs loglog n) \
                 only materializes at large Δ, exactly as the complexity formulas predict; \
                 the *shape* (flat vs growing) matches the paper",
                first_ratio.unwrap_or(0.0),
                last_ratio.unwrap_or(0.0)
            ),
        ],
        charts: vec![("e5_energy_vs_delta".into(), sweep_chart)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_orders_algorithms() {
        let out = run(&ExpConfig::quick(4), &Orchestrator::ephemeral());
        assert_eq!(out.sections.len(), 2);
        assert_eq!(out.sections[0].table.len(), 6);
        assert!(out.findings[0].contains('×'));
    }
}
