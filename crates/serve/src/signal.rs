//! SIGTERM/SIGINT handling for graceful drain.
//!
//! The daemon installs a minimal handler that flips one atomic flag; the
//! accept loop polls [`requested`] and starts draining (refuse new jobs,
//! finish in-flight ones) when it goes high. Keeping the handler down to
//! a single atomic store is what makes it async-signal-safe.

use std::sync::atomic::{AtomicBool, Ordering};

static REQUESTED: AtomicBool = AtomicBool::new(false);

/// `true` once shutdown has been requested, by a signal or by
/// [`request`].
pub fn requested() -> bool {
    REQUESTED.load(Ordering::SeqCst)
}

/// Request shutdown programmatically — used by tests and as the
/// non-unix fallback path.
pub fn request() {
    REQUESTED.store(true, Ordering::SeqCst);
}

/// Install SIGTERM and SIGINT handlers that call [`request`]. On
/// non-unix targets this is a no-op (the daemon still drains via
/// [`crate::ServeHandle::shutdown`]).
pub fn install() {
    imp::install();
}

#[cfg(unix)]
#[allow(unsafe_code)]
mod imp {
    //! The one unsafe corner of the crate: registering a C signal
    //! handler. Isolated here so the crate root can keep
    //! `#![deny(unsafe_code)]`.

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        super::request();
    }

    pub fn install() {
        unsafe {
            signal(SIGTERM, on_signal as usize);
            signal(SIGINT, on_signal as usize);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_flips_the_flag() {
        // The flag is process-global and one-way, so only the post-state
        // is asserted — another test may have raised it already.
        request();
        assert!(requested());
    }
}
