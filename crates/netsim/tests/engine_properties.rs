//! Property-based tests of the round engine's conservation laws.

use mis_graphs::{Graph, GraphBuilder};
use proptest::prelude::*;
use radio_netsim::{
    Action, ChannelModel, DownTime, FaultPlan, Feedback, JsonlTrace, Message, NodeRng, NodeStatus,
    Protocol, SimConfig, Simulator, TraceEvent, VecTrace,
};
use rand::Rng;

const ALL_CHANNELS: [ChannelModel; 4] = [
    ChannelModel::Cd,
    ChannelModel::NoCd,
    ChannelModel::Beeping,
    ChannelModel::BeepingSenderCd,
];

fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..24).prop_flat_map(|n| {
        let edge = (0..n, 0..n).prop_filter("no loops", |(u, v)| u != v);
        proptest::collection::vec(edge, 0..(2 * n)).prop_map(move |edges| {
            let mut b = GraphBuilder::new(n);
            for (u, v) in edges {
                b.add_edge(u, v).unwrap();
            }
            b.build()
        })
    })
}

/// A protocol that acts randomly for a bounded number of awake rounds.
struct Chaotic {
    awake_left: u32,
    done: bool,
}

impl Protocol for Chaotic {
    fn act(&mut self, round: u64, rng: &mut NodeRng) -> Action {
        if self.awake_left == 0 {
            self.done = true;
            return Action::halt();
        }
        match rng.gen_range(0..4u8) {
            0 => Action::Sleep {
                wake_at: round + rng.gen_range(1..5u64),
            },
            1 => {
                self.awake_left -= 1;
                Action::Transmit(Message::unary())
            }
            _ => {
                self.awake_left -= 1;
                Action::Listen
            }
        }
    }
    fn feedback(&mut self, _round: u64, _fb: Feedback, _rng: &mut NodeRng) {}
    fn status(&self) -> NodeStatus {
        NodeStatus::OutMis
    }
    fn finished(&self) -> bool {
        self.done
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Meters equal the traced action counts, and energy = tx + listen.
    #[test]
    fn meters_match_trace(g in arb_graph(), seed in any::<u64>(),
                          channel_pick in 0u8..3) {
        let channel = match channel_pick {
            0 => ChannelModel::Cd,
            1 => ChannelModel::NoCd,
            _ => ChannelModel::Beeping,
        };
        let mut trace = VecTrace::new();
        let report = Simulator::new(&g, SimConfig::new(channel).with_seed(seed))
            .run_traced(|_, _| Chaotic { awake_left: 12, done: false }, &mut trace);
        prop_assert!(report.completed);
        for v in 0..g.len() {
            let traced_awake = trace.awake_actions(v) as u64;
            prop_assert_eq!(report.meters[v].energy(), traced_awake);
            let traced_tx = trace
                .for_node(v)
                .filter(|e| matches!(e, TraceEvent::Acted { action: Action::Transmit(_), .. }))
                .count() as u64;
            prop_assert_eq!(report.meters[v].transmit_rounds, traced_tx);
            // Exactly 12 awake rounds were budgeted and all were used.
            prop_assert_eq!(report.meters[v].energy(), 12);
        }
    }

    /// Every feedback is consistent with the channel model: a CD node never
    /// sees Beep, a beeping node never sees Heard/Collision, a no-CD node
    /// never sees Collision/Beep.
    #[test]
    fn feedback_respects_channel(g in arb_graph(), seed in any::<u64>()) {
        for channel in [ChannelModel::Cd, ChannelModel::NoCd, ChannelModel::Beeping] {
            let mut trace = VecTrace::new();
            let _ = Simulator::new(&g, SimConfig::new(channel).with_seed(seed))
                .run_traced(|_, _| Chaotic { awake_left: 8, done: false }, &mut trace);
            for e in &trace.events {
                if let TraceEvent::Fed { feedback, .. } = e {
                    match channel {
                        ChannelModel::Cd => {
                            prop_assert!(!matches!(feedback, Feedback::Beep))
                        }
                        ChannelModel::NoCd => prop_assert!(!matches!(
                            feedback,
                            Feedback::Beep | Feedback::Collision
                        )),
                        ChannelModel::Beeping | ChannelModel::BeepingSenderCd => {
                            prop_assert!(!matches!(
                                feedback,
                                Feedback::Heard(_) | Feedback::Collision
                            ))
                        }
                    }
                }
            }
        }
    }

    /// Runs are reproducible and node-count invariants hold.
    #[test]
    fn reproducible_and_complete(g in arb_graph(), seed in any::<u64>()) {
        let run = || Simulator::new(&g, SimConfig::new(ChannelModel::NoCd).with_seed(seed))
            .run(|_, _| Chaotic { awake_left: 6, done: false });
        let a = run();
        let b = run();
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.len(), g.len());
        prop_assert!(a.completed);
        // Everyone finished and was stamped.
        for m in &a.meters {
            prop_assert!(m.finished_at.is_some());
            prop_assert!(m.energy() <= a.rounds);
        }
    }

    /// With loss = 1.0 every arrival fades, so in *every* channel model a
    /// listener's feedback is exactly `Silence` — never `Heard`, never
    /// `Collision`, never a multi-beeper `Beep` — and a transmitter's is
    /// exactly `Sent` (sender-side collision detection included: the
    /// concurrent beeps it would hear also fade).
    #[test]
    fn total_loss_silences_every_model(g in arb_graph(), seed in any::<u64>()) {
        for channel in ALL_CHANNELS {
            let mut trace = VecTrace::new();
            let config = SimConfig::new(channel)
                .with_seed(seed)
                .with_loss_probability(1.0);
            let _ = Simulator::new(&g, config)
                .run_traced(|_, _| Chaotic { awake_left: 10, done: false }, &mut trace);
            for e in &trace.events {
                if let TraceEvent::Fed { feedback, .. } = e {
                    prop_assert!(
                        matches!(feedback, Feedback::Silence | Feedback::Sent),
                        "{} leaked {:?} through total loss", channel, feedback
                    );
                }
            }
        }
    }

    /// Aggregation invariants survive the combination of skipped all-asleep
    /// rounds and loss injection, in all four channel models: population
    /// conservation per record, monotone cumulative curves, disjoint
    /// post-fade reception/loss accounting, and a final cumulative energy
    /// equal to the metered totals.
    #[test]
    fn metrics_invariants_hold_under_loss(g in arb_graph(), seed in any::<u64>(),
                                          loss in 0.05f64..0.95) {
        for channel in ALL_CHANNELS {
            let config = SimConfig::new(channel)
                .with_seed(seed)
                .with_loss_probability(loss)
                .with_round_metrics();
            let report = Simulator::new(&g, config)
                .run(|_, _| Chaotic { awake_left: 8, done: false });
            prop_assert!(report.completed);
            let timeline = report.metrics.as_ref().unwrap();
            prop_assert!(!timeline.is_empty());
            let n = g.len() as u32;
            let mut prev_round = None;
            let mut prev_decided = 0u32;
            let mut prev_energy = 0u64;
            for m in timeline {
                prop_assert_eq!(m.node_count(), n, "round {}", m.round);
                if let Some(p) = prev_round {
                    prop_assert!(m.round > p, "rounds must strictly increase");
                }
                prev_round = Some(m.round);
                prop_assert!(m.decided >= prev_decided);
                prev_decided = m.decided;
                prop_assert!(m.cumulative_energy >= prev_energy);
                prev_energy = m.cumulative_energy;
                // Receptions and lost receptions are disjoint listener
                // outcomes; collisions are a third.
                prop_assert!(
                    m.receptions + m.lost_receptions + m.collisions <= m.listening
                );
                // A fully-faded listener faded at least one edge each.
                prop_assert!(m.lost_receptions <= m.faded_edges);
                // No jammers or crashes in this plan.
                prop_assert_eq!(m.jamming, 0);
                prop_assert_eq!(m.crashed, 0);
                prop_assert_eq!(m.jammed_receptions, 0);
            }
            let metered: u64 = report.meters.iter().map(|mtr| mtr.energy()).sum();
            prop_assert_eq!(timeline.last().unwrap().cumulative_energy, metered);
        }
    }

    /// Two same-seed runs under an active multi-clause FaultPlan produce
    /// byte-identical JSONL trace streams.
    #[test]
    fn jsonl_streams_are_deterministic_under_faults(g in arb_graph(), seed in any::<u64>()) {
        let plan = FaultPlan::none()
            .with_loss(0.35)
            .with_random_crashes(2, 6)
            .with_random_jammers(1)
            .with_wake_window(4)
            .with_dormancy(0.25, 5, 3);
        let stream = || {
            let config = SimConfig::new(ChannelModel::Cd)
                .with_seed(seed)
                .with_faults(plan.clone());
            let mut sink = JsonlTrace::new(Vec::<u8>::new());
            let _ = Simulator::new(&g, config)
                .run_traced(|_, _| Chaotic { awake_left: 8, done: false }, &mut sink);
            sink.into_inner().expect("in-memory writer cannot fail")
        };
        let a = stream();
        let b = stream();
        prop_assert!(!a.is_empty());
        prop_assert_eq!(a, b);
    }

    /// Two same-seed runs under a crash-recovery plan — an explicit down
    /// window, seeded churn, and a mid-run join — produce byte-identical
    /// JSONL trace streams and identical reports, and both runs complete
    /// (every revived node finishes its rebuilt protocol).
    #[test]
    fn jsonl_streams_are_deterministic_under_recovery(g in arb_graph(), seed in any::<u64>()) {
        let plan = FaultPlan::none()
            .with_recovery(0, 3, 7)
            .with_churn(0.05, 25, DownTime::Fixed(4))
            .with_join(1, 5);
        let stream = || {
            let config = SimConfig::new(ChannelModel::Cd)
                .with_seed(seed)
                .with_faults(plan.clone())
                .with_round_metrics();
            let mut sink = JsonlTrace::new(Vec::<u8>::new());
            let report = Simulator::new(&g, config)
                .run_traced(|_, _| Chaotic { awake_left: 8, done: false }, &mut sink);
            (report, sink.into_inner().expect("in-memory writer cannot fail"))
        };
        let (ra, a) = stream();
        let (rb, b) = stream();
        prop_assert!(ra.completed);
        prop_assert!(!a.is_empty());
        prop_assert_eq!(a, b);
        prop_assert_eq!(ra, rb);
    }
}
