//! Descriptive statistics over trial measurements.

use serde::{Deserialize, Serialize};

/// Summary statistics of a sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Sample size.
    pub count: usize,
    /// Arithmetic mean (0 for an empty sample).
    pub mean: f64,
    /// Sample standard deviation (Bessel-corrected; 0 for < 2 samples).
    pub std: f64,
    /// Minimum (0 for an empty sample).
    pub min: f64,
    /// Maximum (0 for an empty sample).
    pub max: f64,
    /// Median (interpolated).
    pub median: f64,
    /// Half-width of the normal-approximation 95% confidence interval for
    /// the mean.
    pub ci95: f64,
}

impl Summary {
    /// Computes the summary of a sample.
    pub fn of(xs: &[f64]) -> Summary {
        if xs.is_empty() {
            return Summary {
                count: 0,
                mean: 0.0,
                std: 0.0,
                min: 0.0,
                max: 0.0,
                median: 0.0,
                ci95: 0.0,
            };
        }
        let count = xs.len();
        let mean = xs.iter().sum::<f64>() / count as f64;
        let var = if count > 1 {
            xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (count as f64 - 1.0)
        } else {
            0.0
        };
        let std = var.sqrt();
        let mut sorted = xs.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in measurements"));
        Summary {
            count,
            mean,
            std,
            min: sorted[0],
            max: sorted[count - 1],
            median: quantile_sorted(&sorted, 0.5),
            ci95: 1.96 * std / (count as f64).sqrt(),
        }
    }

    /// Computes the summary of the *finite* values in a sample, silently
    /// dropping `NaN`/`±∞` entries.
    ///
    /// Trial harnesses encode missing measurements as `NaN` — a
    /// watchdog-aborted run has no `converged_at`, a failed trial has no
    /// energy — and [`Summary::of`] would panic sorting them. This filters
    /// first; `count` reports how many measurements survived, so callers
    /// can render `"n/a"` when none did.
    pub fn of_finite(xs: &[f64]) -> Summary {
        let finite: Vec<f64> = xs.iter().copied().filter(|x| x.is_finite()).collect();
        Summary::of(&finite)
    }

    /// Interpolated quantile of the sample, `q ∈ [0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(xs: &[f64], q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0, 1]");
        if xs.is_empty() {
            return 0.0;
        }
        let mut sorted = xs.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in measurements"));
        quantile_sorted(&sorted, q)
    }
}

fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_summary() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.count, 5);
        assert!((s.mean - 3.0).abs() < 1e-12);
        assert!((s.std - (2.5f64).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.median, 3.0);
        assert!(s.ci95 > 0.0);
    }

    #[test]
    fn empty_and_singleton() {
        let e = Summary::of(&[]);
        assert_eq!(e.count, 0);
        assert_eq!(e.mean, 0.0);
        let s = Summary::of(&[7.0]);
        assert_eq!(s.mean, 7.0);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.median, 7.0);
    }

    #[test]
    fn finite_filtering_drops_missing_measurements() {
        let s = Summary::of_finite(&[1.0, f64::NAN, 3.0, f64::INFINITY, 2.0]);
        assert_eq!(s.count, 3);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        // All-missing collapses to the empty summary, not a panic.
        let none = Summary::of_finite(&[f64::NAN, f64::NAN]);
        assert_eq!(none.count, 0);
        assert_eq!(none.mean, 0.0);
    }

    #[test]
    fn quantiles() {
        let xs = [4.0, 1.0, 3.0, 2.0];
        assert_eq!(Summary::quantile(&xs, 0.0), 1.0);
        assert_eq!(Summary::quantile(&xs, 1.0), 4.0);
        assert!((Summary::quantile(&xs, 0.5) - 2.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn quantile_range_checked() {
        let _ = Summary::quantile(&[1.0], 1.5);
    }
}
