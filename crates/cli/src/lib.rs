//! `mis-sim`: the command-line driver for the energy-MIS simulator.
//!
//! ```text
//! mis-sim run   --algorithm cd --family gnp-d8 --n 1000 [--trials 10]
//!               [--seed S] [--loss P] [--paper-constants] [--json]
//!               [--metrics FILE]
//! mis-sim trace --algorithm cd --family gnp-d8 --n 1000 [--seed S]
//!               [--events K,K,..] [--nodes V,V,..] [--from R] [--to R]
//!               [--out FILE]
//! mis-sim graph --family udg-d10 --n 500 [--seed S] [--out FILE]
//! mis-sim verify --graph FILE --set FILE
//! mis-sim solve --family plaw-3 --n 100000 [--seed S] [--mode auto]
//!               [--threads T] [--out FILE] [--verify]
//! mis-sim bench-serve [--addr HOST:PORT] [--clients C] [--jobs J]
//!               [--algorithm cd] [--family gnp-d8] [--n N] [--trials T]
//! mis-sim list
//! ```
//!
//! The library half of the crate (this module tree) holds the parser and
//! command logic so everything is unit-testable; `main.rs` is a thin shell.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod commands;

pub use args::{Cli, Command};

/// Executes a parsed command, returning the text to print.
///
/// # Errors
///
/// Returns a user-facing message on invalid inputs or IO failures.
pub fn execute(cli: &Cli) -> Result<String, String> {
    match &cli.command {
        Command::Run(opts) => commands::run::execute(opts),
        Command::Trace(opts) => commands::trace::execute(opts),
        Command::Graph(opts) => commands::graph::execute(opts),
        Command::Verify(opts) => commands::verify::execute(opts),
        Command::Solve(opts) => commands::solve::execute(opts),
        Command::BenchServe(opts) => commands::bench_serve::execute(opts),
        Command::List => Ok(commands::list_text()),
    }
}
