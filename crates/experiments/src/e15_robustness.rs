//! E15 — beyond the model: reception loss and asynchronous wake-up.
//!
//! The paper's model is lossless with synchronous wake-up (§1.1). This
//! experiment sweeps both assumptions:
//!
//! - **loss sweep**: success rate of Algorithms 1 and 2 vs per-reception
//!   fade probability. Algorithm 2's Θ(log n)-repeated backoffs absorb
//!   substantial loss; Algorithm 1's one-shot CD rounds do not.
//! - **wake-up stagger sweep**: success rate of Algorithm 1 vs the width
//!   of the random wake-up window (in Luby phases). Sub-phase staggering
//!   is absorbed (the global round clock keeps late wakers aligned);
//!   multi-phase staggering silently loses winners' announcements.

use crate::harness::{pct, ExpConfig, ExperimentOutput, Section};
use mis_graphs::generators::Family;
use mis_stats::{LineChart, Table};
use radio_mis::cd::CdMis;
use radio_mis::nocd::NoCdMis;
use radio_mis::params::{CdParams, NoCdParams};
use radio_netsim::{split_seed, ChannelModel, SimConfig, Simulator};
use rayon::prelude::*;

/// Runs E15.
pub fn run(cfg: &ExpConfig) -> ExperimentOutput {
    let n = if cfg.quick { 64 } else { 256 };
    let trials = cfg.trials(12);
    let g = Family::GnpAvgDegree(8).generate(n, cfg.seed ^ 0x15);
    let cd_params = CdParams::for_n(4 * n);
    let nocd_params = NoCdParams::for_n(4 * n, g.max_degree().max(2));

    // Loss sweep.
    let losses: Vec<f64> = if cfg.quick {
        vec![0.0, 0.3, 0.9]
    } else {
        vec![0.0, 0.1, 0.3, 0.5, 0.7, 0.9]
    };
    let mut loss_table = Table::new(["loss", "Algorithm 1 (CD) success", "Algorithm 2 (no-CD) success"]);
    let mut cd_curve = Vec::new();
    let mut nocd_curve = Vec::new();
    for &loss in &losses {
        let cd_ok: usize = (0..trials)
            .into_par_iter()
            .filter(|&t| {
                let seed = split_seed(cfg.seed ^ 0x51, ((loss * 100.0) as u64) << 8 ^ t as u64);
                let mut config = SimConfig::new(ChannelModel::Cd).with_seed(seed);
                if loss > 0.0 {
                    config = config.with_loss_probability(loss);
                }
                Simulator::new(&g, config)
                    .run(|_, _| CdMis::new(cd_params))
                    .is_correct_mis(&g)
            })
            .count();
        let nocd_ok: usize = (0..trials)
            .into_par_iter()
            .filter(|&t| {
                let seed = split_seed(cfg.seed ^ 0x52, ((loss * 100.0) as u64) << 8 ^ t as u64);
                let mut config = SimConfig::new(ChannelModel::NoCd).with_seed(seed);
                if loss > 0.0 {
                    config = config.with_loss_probability(loss);
                }
                Simulator::new(&g, config)
                    .run(|_, _| NoCdMis::new(nocd_params))
                    .is_correct_mis(&g)
            })
            .count();
        loss_table.push_row([
            format!("{loss:.1}"),
            pct(cd_ok, trials),
            pct(nocd_ok, trials),
        ]);
        cd_curve.push((loss, cd_ok as f64 / trials as f64));
        nocd_curve.push((loss, nocd_ok as f64 / trials as f64));
    }

    // Wake-up stagger sweep (Algorithm 1; stagger measured in phases).
    let staggers: Vec<u64> = if cfg.quick {
        vec![0, 1, 8]
    } else {
        vec![0, 1, 2, 4, 8, 16]
    };
    let mut wake_table = Table::new(["stagger (phases)", "Algorithm 1 success"]);
    let mut wake_curve = Vec::new();
    for &phases in &staggers {
        let window = phases * cd_params.phase_len();
        let ok: usize = (0..trials)
            .into_par_iter()
            .filter(|&t| {
                let seed = split_seed(cfg.seed ^ 0x53, (phases << 8) ^ t as u64);
                let sim_base =
                    Simulator::new(&g, SimConfig::new(ChannelModel::Cd).with_seed(seed));
                let sim = if window == 0 {
                    sim_base
                } else {
                    let offsets: Vec<u64> = (0..g.len() as u64)
                        .map(|v| split_seed(seed, v) % window)
                        .collect();
                    sim_base.with_wake_offsets(offsets)
                };
                sim.run(|_, _| CdMis::new(cd_params)).is_correct_mis(&g)
            })
            .count();
        wake_table.push_row([phases.to_string(), pct(ok, trials)]);
        wake_curve.push((phases as f64, ok as f64 / trials as f64));
    }

    // Measured fade rate from the engine's round metrics: over a whole run,
    // lost_receptions / (receptions + lost_receptions) should track the
    // configured loss probability, confirming the fade model actually bites
    // as hard as the sweep label claims.
    let mut fade_table = Table::new(["loss", "receptions", "lost", "measured fade"]);
    let mut fade_gap: f64 = 0.0;
    for &loss in losses.iter().filter(|&&l| l > 0.0) {
        let config = SimConfig::new(ChannelModel::NoCd)
            .with_seed(split_seed(cfg.seed ^ 0x54, (loss * 100.0) as u64))
            .with_loss_probability(loss)
            .with_round_metrics();
        let report = Simulator::new(&g, config).run(|_, _| NoCdMis::new(nocd_params));
        // `receptions` counts single-transmitter listens *before* loss
        // injection; `lost_receptions` is the faded subset of those.
        let attempts: u64 = report
            .metrics_timeline()
            .iter()
            .map(|m| u64::from(m.receptions))
            .sum();
        let lost: u64 = report
            .metrics_timeline()
            .iter()
            .map(|m| u64::from(m.lost_receptions))
            .sum();
        let measured = if attempts == 0 {
            0.0
        } else {
            lost as f64 / attempts as f64
        };
        fade_gap = fade_gap.max((measured - loss).abs());
        fade_table.push_row([
            format!("{loss:.1}"),
            attempts.to_string(),
            lost.to_string(),
            format!("{measured:.3}"),
        ]);
    }
    let fade_finding = format!(
        "measured fade rate (lost / attempted receptions, from round metrics) tracks \
         the configured loss probability within {fade_gap:.3} across the sweep — the \
         loss knob delivers the advertised fade"
    );

    let mut loss_chart = LineChart::new(
        "Success rate vs reception-loss probability",
        "loss probability",
        "success rate",
    );
    loss_chart.push_series("Algorithm 1 (CD)", cd_curve.clone());
    loss_chart.push_series("Algorithm 2 (no-CD)", nocd_curve.clone());
    let mut wake_chart = LineChart::new(
        "Algorithm 1 success vs wake-up stagger",
        "stagger window (Luby phases)",
        "success rate",
    );
    wake_chart.push_series("Algorithm 1 (CD)", wake_curve);

    // Findings based on the endpoints.
    let nocd_mid = nocd_curve
        .iter()
        .find(|(l, _)| (*l - 0.3).abs() < 1e-9)
        .map(|&(_, r)| r)
        .unwrap_or(1.0);
    let cd_mid = cd_curve
        .iter()
        .find(|(l, _)| (*l - 0.3).abs() < 1e-9)
        .map(|&(_, r)| r)
        .unwrap_or(0.0);

    ExperimentOutput {
        id: "e15",
        title: "robustness beyond the paper's model".into(),
        claim: "No claim in the paper — the model is lossless with synchronous wake-up \
                (§1.1). This experiment measures how far each assumption carries."
            .into(),
        sections: vec![
            Section {
                caption: format!("reception-loss sweep (gnp-d8, n = {n}, {trials} trials)"),
                table: loss_table,
            },
            Section {
                caption: "wake-up stagger sweep (Algorithm 1)".into(),
                table: wake_table,
            },
            Section {
                caption: "measured fade rate from round metrics (Algorithm 2, one run per loss)"
                    .into(),
                table: fade_table,
            },
        ],
        findings: vec![
            fade_finding,
            format!(
                "at 30% loss Algorithm 2 succeeds {:.0}% of the time (its Θ(log n) backoff \
                 repetitions are natural redundancy) vs {:.0}% for Algorithm 1's one-shot \
                 CD rounds",
                100.0 * nocd_mid,
                100.0 * cd_mid
            ),
            "sub-phase wake staggering is absorbed by the shared round clock; staggering \
             across several phases breaks Algorithm 1 (missed one-shot announcements) — \
             §1.1's synchronous wake-up assumption is load-bearing"
                .into(),
        ],
        charts: vec![
            ("e15_loss_sweep".into(), loss_chart),
            ("e15_wake_stagger".into(), wake_chart),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_curves() {
        let out = run(&ExpConfig::quick(41));
        assert_eq!(out.sections.len(), 3);
        assert_eq!(out.charts.len(), 2);
        // Clean runs at loss 0 must succeed.
        assert!(out.sections[0].table.to_markdown().contains("100%"));
        // One fade-rate row per nonzero loss in the quick sweep.
        assert_eq!(out.sections[2].table.len(), 2);
        assert!(out.findings.iter().any(|f| f.contains("measured fade")));
    }
}
