//! A deliberately small HTTP/1.1 layer over `std::net` — just enough for
//! the job API: request parsing with `Content-Length` bodies, JSON
//! responses, and chunked transfer-encoding for live NDJSON streams.
//!
//! No async runtime, no external HTTP crate: the daemon serves a handful
//! of cooperating clients on a thread-per-connection model, and blocking
//! I/O keeps the whole stack inspectable.

use std::io::{self, BufRead, Write};

/// Maximum accepted request body, to bound memory per connection.
const MAX_BODY: usize = 1 << 20;

/// A parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// Request method (`GET`, `POST`, ...), uppercase as received.
    pub method: String,
    /// Request path without query string, e.g. `/jobs/abc123/stream`.
    pub path: String,
    /// Headers as `(lowercased-name, value)` pairs in arrival order.
    pub headers: Vec<(String, String)>,
    /// Raw request body (`Content-Length` bytes; empty when absent).
    pub body: Vec<u8>,
}

impl Request {
    /// Read and parse one request from a buffered stream. Returns
    /// `Ok(None)` on a clean EOF before any bytes (client closed idle
    /// connection), `Err` on malformed input.
    pub fn read_from<R: BufRead>(reader: &mut R) -> io::Result<Option<Request>> {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Ok(None);
        }
        let mut parts = line.split_whitespace();
        let method = parts
            .next()
            .ok_or_else(|| bad("empty request line"))?
            .to_string();
        let target = parts.next().ok_or_else(|| bad("missing request target"))?;
        let path = target.split('?').next().unwrap_or(target).to_string();

        let mut headers = Vec::new();
        loop {
            let mut header = String::new();
            if reader.read_line(&mut header)? == 0 {
                return Err(bad("eof inside headers"));
            }
            let header = header.trim_end();
            if header.is_empty() {
                break;
            }
            if let Some((name, value)) = header.split_once(':') {
                headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
            }
        }

        let length: usize = headers
            .iter()
            .find(|(name, _)| name == "content-length")
            .and_then(|(_, value)| value.parse().ok())
            .unwrap_or(0);
        if length > MAX_BODY {
            return Err(bad("request body too large"));
        }
        let mut body = vec![0u8; length];
        if length > 0 {
            io::Read::read_exact(reader, &mut body)?;
        }
        Ok(Some(Request {
            method,
            path,
            headers,
            body,
        }))
    }

    /// Case-insensitive header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Standard reason phrase for the handful of statuses the daemon emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Serialize `body` as JSON and write a complete `Connection: close`
/// response.
pub fn respond_json<W: Write, T: serde::Serialize>(
    writer: &mut W,
    status: u16,
    body: &T,
) -> io::Result<()> {
    let json = serde_json::to_vec(body).map_err(io::Error::other)?;
    write!(
        writer,
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        reason(status),
        json.len(),
    )?;
    writer.write_all(&json)?;
    writer.flush()
}

/// Write a JSON error envelope `{"error": msg}`.
pub fn respond_error<W: Write>(writer: &mut W, status: u16, msg: &str) -> io::Result<()> {
    respond_json(writer, status, &serde_json::json!({ "error": msg }))
}

/// Start a chunked `application/x-ndjson` response; follow with
/// [`write_chunk`] calls and a final [`finish_chunks`].
pub fn start_chunked<W: Write>(writer: &mut W, status: u16) -> io::Result<()> {
    write!(
        writer,
        "HTTP/1.1 {status} {}\r\nContent-Type: application/x-ndjson\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n",
        reason(status),
    )?;
    writer.flush()
}

/// Write one chunk of a chunked response. Empty input is skipped (an
/// empty chunk would terminate the stream).
pub fn write_chunk<W: Write>(writer: &mut W, data: &[u8]) -> io::Result<()> {
    if data.is_empty() {
        return Ok(());
    }
    write!(writer, "{:x}\r\n", data.len())?;
    writer.write_all(data)?;
    writer.write_all(b"\r\n")?;
    writer.flush()
}

/// Terminate a chunked response.
pub fn finish_chunks<W: Write>(writer: &mut W) -> io::Result<()> {
    writer.write_all(b"0\r\n\r\n")?;
    writer.flush()
}

/// Decode a chunked transfer-encoded body from a buffered stream
/// (client side of [`start_chunked`]).
pub fn read_chunked<R: BufRead>(reader: &mut R) -> io::Result<Vec<u8>> {
    let mut out = Vec::new();
    loop {
        let mut size_line = String::new();
        if reader.read_line(&mut size_line)? == 0 {
            return Err(bad("eof inside chunked body"));
        }
        let size =
            usize::from_str_radix(size_line.trim(), 16).map_err(|_| bad("malformed chunk size"))?;
        if size == 0 {
            let mut trailer = String::new();
            let _ = reader.read_line(&mut trailer);
            return Ok(out);
        }
        let start = out.len();
        out.resize(start + size, 0);
        io::Read::read_exact(reader, &mut out[start..])?;
        let mut crlf = [0u8; 2];
        io::Read::read_exact(reader, &mut crlf)?;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn parses_post_with_body_and_headers() {
        let raw =
            b"POST /jobs HTTP/1.1\r\nHost: x\r\nX-Client: alice\r\nContent-Length: 4\r\n\r\nabcd";
        let mut reader = BufReader::new(&raw[..]);
        let req = Request::read_from(&mut reader).unwrap().unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/jobs");
        assert_eq!(req.header("x-client"), Some("alice"));
        assert_eq!(req.header("X-CLIENT"), Some("alice"));
        assert_eq!(req.body, b"abcd");
    }

    #[test]
    fn strips_query_string_from_path() {
        let raw = b"GET /stats?pretty=1 HTTP/1.1\r\n\r\n";
        let mut reader = BufReader::new(&raw[..]);
        let req = Request::read_from(&mut reader).unwrap().unwrap();
        assert_eq!(req.path, "/stats");
    }

    #[test]
    fn clean_eof_is_none() {
        let mut reader = BufReader::new(&b""[..]);
        assert!(Request::read_from(&mut reader).unwrap().is_none());
    }

    #[test]
    fn chunked_round_trip() {
        let mut wire = Vec::new();
        start_chunked(&mut wire, 200).unwrap();
        write_chunk(&mut wire, b"{\"a\":1}\n").unwrap();
        write_chunk(&mut wire, b"").unwrap(); // skipped, not a terminator
        write_chunk(&mut wire, b"{\"b\":2}\n").unwrap();
        finish_chunks(&mut wire).unwrap();

        let header_end = wire.windows(4).position(|w| w == b"\r\n\r\n").unwrap() + 4;
        let mut reader = BufReader::new(&wire[header_end..]);
        let body = read_chunked(&mut reader).unwrap();
        assert_eq!(body, b"{\"a\":1}\n{\"b\":2}\n");
    }

    #[test]
    fn json_response_has_content_length() {
        let mut wire = Vec::new();
        respond_json(&mut wire, 200, &serde_json::json!({"ok": true})).unwrap();
        let text = String::from_utf8(wire).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.ends_with("{\"ok\":true}"));
    }

    #[test]
    fn oversized_body_is_rejected() {
        let raw = format!(
            "POST /jobs HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        let mut reader = BufReader::new(raw.as_bytes());
        assert!(Request::read_from(&mut reader).is_err());
    }
}
