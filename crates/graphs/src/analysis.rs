//! Structural graph analysis helpers used by experiments and tests.

use crate::graph::{Graph, NodeId};

/// Number of connected components (isolated nodes count as components).
pub fn connected_components(g: &Graph) -> usize {
    let mut seen = vec![false; g.len()];
    let mut components = 0;
    let mut stack = Vec::new();
    for start in g.nodes() {
        if seen[start] {
            continue;
        }
        components += 1;
        seen[start] = true;
        stack.push(start);
        while let Some(v) = stack.pop() {
            for &u in g.neighbors(v) {
                if !seen[u] {
                    seen[u] = true;
                    stack.push(u);
                }
            }
        }
    }
    components
}

/// Histogram of degrees: `hist[d]` = number of nodes with degree `d`.
pub fn degree_histogram(g: &Graph) -> Vec<usize> {
    let mut hist = vec![0usize; g.max_degree() + 1];
    for v in g.nodes() {
        hist[g.degree(v)] += 1;
    }
    hist
}

/// The degeneracy of the graph and a degeneracy ordering (smallest-last).
///
/// The degeneracy is the smallest `k` such that every subgraph has a node of
/// degree ≤ `k`; it upper-bounds the chromatic number minus one and is a
/// useful sparsity measure when reporting workload characteristics.
pub fn degeneracy(g: &Graph) -> (usize, Vec<NodeId>) {
    let n = g.len();
    let mut degree: Vec<usize> = g.nodes().map(|v| g.degree(v)).collect();
    let max_d = degree.iter().copied().max().unwrap_or(0);
    let mut buckets: Vec<Vec<NodeId>> = vec![Vec::new(); max_d + 1];
    for v in g.nodes() {
        buckets[degree[v]].push(v);
    }
    let mut removed = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut degen = 0usize;
    let mut cursor = 0usize;
    for _ in 0..n {
        // Find the lowest non-empty bucket at or below the cursor; the cursor
        // can decrease by at most 1 per removal, so start one lower.
        cursor = cursor.saturating_sub(1);
        loop {
            while cursor <= max_d && buckets[cursor].is_empty() {
                cursor += 1;
            }
            let v = match buckets[cursor].pop() {
                Some(v) => v,
                None => continue,
            };
            if removed[v] || degree[v] != cursor {
                // Stale entry: the node moved buckets since insertion.
                continue;
            }
            removed[v] = true;
            order.push(v);
            degen = degen.max(cursor);
            for &u in g.neighbors(v) {
                if !removed[u] {
                    degree[u] -= 1;
                    buckets[degree[u]].push(u);
                    if degree[u] < cursor {
                        cursor = degree[u];
                    }
                }
            }
            break;
        }
    }
    (degen, order)
}

/// Count of isolated (degree-0) nodes.
pub fn isolated_count(g: &Graph) -> usize {
    g.nodes().filter(|&v| g.degree(v) == 0).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn components_of_matching() {
        let g = generators::matching_plus_isolated(3, 4);
        assert_eq!(connected_components(&g), 7);
    }

    #[test]
    fn components_of_connected() {
        assert_eq!(connected_components(&generators::cycle(10)), 1);
        assert_eq!(connected_components(&generators::empty(5)), 5);
        assert_eq!(connected_components(&generators::empty(0)), 0);
    }

    #[test]
    fn histogram_star() {
        let g = generators::star(5);
        let h = degree_histogram(&g);
        assert_eq!(h[1], 4);
        assert_eq!(h[4], 1);
    }

    #[test]
    fn degeneracy_values() {
        assert_eq!(degeneracy(&generators::clique(6)).0, 5);
        assert_eq!(degeneracy(&generators::path(10)).0, 1);
        assert_eq!(degeneracy(&generators::cycle(10)).0, 2);
        assert_eq!(degeneracy(&generators::star(10)).0, 1);
        assert_eq!(degeneracy(&generators::empty(4)).0, 0);
        assert_eq!(degeneracy(&generators::grid2d(5, 5)).0, 2);
    }

    #[test]
    fn degeneracy_order_is_permutation() {
        let g = generators::gnp(60, 0.1, 2);
        let (_, order) = degeneracy(&g);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..60).collect::<Vec<_>>());
    }

    #[test]
    fn isolated_counting() {
        assert_eq!(isolated_count(&generators::lower_bound_family(16)), 8);
        assert_eq!(isolated_count(&generators::clique(4)), 0);
    }
}
