//! Cross-crate integration: every algorithm solves MIS on every topology
//! family, verified against the graph.

use energy_mis::congest::{CongestSim, GhaffariCongest, LubyCongest};
use energy_mis::graphs::generators::Family;
use energy_mis::mis::baselines::naive_luby_cd;
use energy_mis::mis::baselines::nocd_naive::{NaiveSimParams, NoCdNaive};
use energy_mis::mis::cd::CdMis;
use energy_mis::mis::low_degree::LowDegreeMis;
use energy_mis::mis::nocd::NoCdMis;
use energy_mis::mis::params::{CdParams, LowDegreeParams, NoCdParams};
use energy_mis::mis::unknown_delta::UnknownDeltaMis;
use energy_mis::netsim::{ChannelModel, SimConfig, Simulator};

fn families(n: usize) -> Vec<(String, energy_mis::graphs::Graph)> {
    [
        Family::GnpAvgDegree(8),
        Family::GeometricAvgDegree(6),
        Family::Grid,
        Family::Star,
        Family::Path,
        Family::Cycle,
        Family::Empty,
        Family::RandomTree,
        Family::BoundedDegree(4),
        Family::LowerBound,
    ]
    .into_iter()
    .map(|f| (f.label(), f.generate(n, 1234)))
    .chain(std::iter::once((
        "clique".to_string(),
        Family::Clique.generate(n.min(24), 0),
    )))
    .collect()
}

#[test]
fn cd_mis_on_every_family() {
    for (label, g) in families(72) {
        let params = CdParams::for_n(512);
        let report = Simulator::new(&g, SimConfig::new(ChannelModel::Cd).with_seed(5))
            .run(|_, _| CdMis::new(params));
        assert!(
            report.is_correct_mis(&g),
            "CdMis failed on {label}: {:?}",
            report.verify_mis(&g)
        );
    }
}

#[test]
fn beeping_mis_on_every_family() {
    for (label, g) in families(72) {
        let params = CdParams::for_n(512);
        let report = Simulator::new(&g, SimConfig::new(ChannelModel::Beeping).with_seed(6))
            .run(|_, _| CdMis::new(params));
        assert!(
            report.is_correct_mis(&g),
            "beeping CdMis failed on {label}: {:?}",
            report.verify_mis(&g)
        );
    }
}

#[test]
fn naive_luby_on_every_family() {
    for (label, g) in families(72) {
        let params = CdParams::for_n(512);
        let report = Simulator::new(&g, SimConfig::new(ChannelModel::Cd).with_seed(7))
            .run(|_, _| naive_luby_cd(params));
        assert!(
            report.is_correct_mis(&g),
            "naive Luby failed on {label}: {:?}",
            report.verify_mis(&g)
        );
    }
}

#[test]
fn nocd_mis_on_every_family() {
    for (label, g) in families(48) {
        let params = NoCdParams::for_n(256, g.max_degree().max(2));
        let report = Simulator::new(&g, SimConfig::new(ChannelModel::NoCd).with_seed(8))
            .run(|_, _| NoCdMis::new(params));
        assert!(
            report.is_correct_mis(&g),
            "NoCdMis failed on {label}: {:?}",
            report.verify_mis(&g)
        );
    }
}

#[test]
fn low_degree_mis_on_every_family() {
    for (label, g) in families(48) {
        let params = LowDegreeParams::for_n(256, g.max_degree().max(2));
        let report = Simulator::new(&g, SimConfig::new(ChannelModel::NoCd).with_seed(9))
            .run(|_, _| LowDegreeMis::new(params));
        assert!(
            report.is_correct_mis(&g),
            "LowDegreeMis failed on {label}: {:?}",
            report.verify_mis(&g)
        );
    }
}

#[test]
fn nocd_naive_on_every_family() {
    for (label, g) in families(40) {
        let cd = CdParams::for_n(256);
        let sim = NaiveSimParams::for_n(256, g.max_degree().max(2));
        let report = Simulator::new(&g, SimConfig::new(ChannelModel::NoCd).with_seed(10))
            .run(|_, _| NoCdNaive::new(cd, sim));
        assert!(
            report.is_correct_mis(&g),
            "NoCdNaive failed on {label}: {:?}",
            report.verify_mis(&g)
        );
    }
}

#[test]
fn unknown_delta_on_low_degree_families() {
    for fam in [
        Family::Path,
        Family::Cycle,
        Family::Empty,
        Family::BoundedDegree(4),
    ] {
        let g = fam.generate(32, 77);
        let template = NoCdParams::for_n(128, 2);
        let report = Simulator::new(&g, SimConfig::new(ChannelModel::NoCd).with_seed(11))
            .run(|_, _| UnknownDeltaMis::new(128, template));
        assert!(
            report.is_correct_mis(&g),
            "UnknownDeltaMis failed on {}: {:?}",
            fam.label(),
            report.verify_mis(&g)
        );
    }
}

#[test]
fn congest_references_on_every_family() {
    for (label, g) in families(72) {
        let luby = CongestSim::new(&g, 12).run(|_, _| LubyCongest::new(512));
        assert!(luby.is_correct_mis(&g), "Luby failed on {label}");
        let gha =
            CongestSim::new(&g, 13).run(|_, _| GhaffariCongest::new(512, g.max_degree().max(1)));
        assert!(gha.is_correct_mis(&g), "Ghaffari failed on {label}");
    }
}
