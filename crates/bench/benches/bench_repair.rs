//! Recovery-layer overhead: pricing the self-healing wrapper and a repair.
//!
//! `plain_cd` is the baseline one-shot run. `wrapper_no_faults` wraps the
//! same machine in [`RepairingMis`] under an inert fault plan, so it pays
//! the initial run plus the cover/duel monitoring epochs until the
//! convergence policy stops it — the steady-state cost of *maintaining*
//! an MIS rather than computing one. `one_recovery` adds a single
//! crash-recovery window, pricing a full repair episode (violation
//! detection, neighborhood re-run, re-convergence) end to end.

use criterion::{criterion_group, criterion_main, Criterion};
use mis_bench::workload;
use radio_mis::cd::CdMis;
use radio_mis::params::CdParams;
use radio_mis::{RepairConfig, RepairingMis};
use radio_netsim::{ChannelModel, ConvergencePolicy, FaultPlan, NodeRng, SimConfig, Simulator};

const N: usize = 256;

fn bench(c: &mut Criterion) {
    let g = workload(N, 42);
    let params = CdParams::for_n(N);
    let rc = RepairConfig::for_cd(params.total_rounds());
    let e = rc.epoch_len();
    let mut group = c.benchmark_group("repair");
    group.sample_size(10);

    group.bench_function("plain_cd", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let config = SimConfig::new(ChannelModel::Cd).with_seed(seed);
            let report = Simulator::new(&g, config).run(|_, _| CdMis::new(params));
            assert!(report.completed);
            report.rounds
        })
    });

    group.bench_function("wrapper_no_faults", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let config = SimConfig::new(ChannelModel::Cd)
                .with_seed(seed)
                .with_convergence(ConvergencePolicy::new(3 * e))
                .with_max_rounds(600 * e);
            let report = Simulator::new(&g, config)
                .run(|_, _| RepairingMis::new(rc, move |_rng: &mut NodeRng| CdMis::new(params)));
            assert!(report.completed);
            report.rounds
        })
    });

    group.bench_function("one_recovery", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let plan = FaultPlan::none().with_recovery(0, e + 1, 2 * e + 1);
            let config = SimConfig::new(ChannelModel::Cd)
                .with_seed(seed)
                .with_faults(plan)
                .with_convergence(ConvergencePolicy::new(3 * e))
                .with_max_rounds(600 * e);
            let report = Simulator::new(&g, config)
                .run(|_, _| RepairingMis::new(rc, move |_rng: &mut NodeRng| CdMis::new(params)));
            assert!(report.completed);
            report.rounds
        })
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
