//! Shared construction of radio-model runs.
//!
//! `mis-sim run` and `mis-sim trace` both need to instantiate the right
//! protocol family for an [`Algorithm`] and drive it through the simulator;
//! this module centralizes that match so the two commands cannot drift.

use crate::args::Algorithm;
use mis_graphs::Graph;
use radio_mis::baselines::naive_luby_cd;
use radio_mis::baselines::nocd_naive::{NaiveSimParams, NoCdNaive};
use radio_mis::beeping_native::{BeepingParams, NativeBeepingMis};
use radio_mis::cd::CdMis;
use radio_mis::conserve::{Conserve, ConserveConfig};
use radio_mis::low_degree::LowDegreeMis;
use radio_mis::multichannel::MultichannelMis;
use radio_mis::nocd::NoCdMis;
use radio_mis::params::{CdParams, LowDegreeParams, MultichannelParams, NoCdParams};
use radio_mis::unknown_delta::UnknownDeltaMis;
use radio_netsim::{
    run_trials_resumable, ChannelModel, NodeRng, Protocol, RunReport, SimConfig, Simulator,
    TraceSink, TrialSet,
};
use std::path::Path;

/// The radio channel model `alg` runs under, or `None` for the wired
/// CONGEST reference algorithms.
pub fn radio_channel(alg: Algorithm) -> Option<ChannelModel> {
    match alg {
        Algorithm::Cd | Algorithm::NaiveLuby | Algorithm::Multichannel => Some(ChannelModel::Cd),
        Algorithm::Beeping => Some(ChannelModel::Beeping),
        Algorithm::BeepingNative => Some(ChannelModel::BeepingSenderCd),
        Algorithm::NoCd | Algorithm::LowDegree | Algorithm::NoCdNaive | Algorithm::UnknownDelta => {
            Some(ChannelModel::NoCd)
        }
        Algorithm::CongestLuby | Algorithm::CongestGhaffari => None,
    }
}

/// The `--conserve` preset for `alg`: the lossless CD-class preset on
/// collision-detecting/beeping channels, the whp advertise preset on no-CD.
///
/// # Errors
///
/// Rejects the multichannel algorithm (the combinator's single advertise
/// window cannot watch traffic spread over F channels) and the wired
/// CONGEST algorithms (not a radio model).
fn conserve_preset(alg: Algorithm) -> Result<ConserveConfig, String> {
    match radio_channel(alg) {
        Some(ChannelModel::NoCd) => Ok(ConserveConfig::for_nocd(32)),
        Some(_) if alg != Algorithm::Multichannel => Ok(ConserveConfig::for_cd(16)),
        _ => Err(format!(
            "--conserve applies to the single-channel radio algorithms only, not {}",
            alg.label()
        )),
    }
}

/// Runs the simulation, wrapping each node's machine in [`Conserve`] when a
/// preset is given — one generic seam instead of doubling every match arm.
fn traced_maybe_conserved<P, F, T>(
    sim: &Simulator<'_>,
    ccfg: Option<ConserveConfig>,
    mut factory: F,
    trace: &mut T,
) -> RunReport
where
    P: Protocol + Send,
    F: FnMut(usize, &mut NodeRng) -> P + Send,
    T: TraceSink + Send,
{
    match ccfg {
        Some(c) => sim.run_traced(move |v, rng| Conserve::new(factory(v, rng), c), trace),
        None => sim.run_traced(factory, trace),
    }
}

/// The checkpointed counterpart of [`traced_maybe_conserved`].
fn resumable_maybe_conserved<P, F>(
    g: &Graph,
    config: SimConfig,
    trials: usize,
    checkpoint: &Path,
    ccfg: Option<ConserveConfig>,
    factory: F,
) -> std::io::Result<TrialSet>
where
    P: Protocol + Send,
    F: Fn(usize, &mut NodeRng) -> P + Sync,
{
    match ccfg {
        Some(c) => run_trials_resumable(g, config, trials, None, checkpoint, move |v, rng| {
            Conserve::new(factory(v, rng), c)
        }),
        None => run_trials_resumable(g, config, trials, None, checkpoint, factory),
    }
}

/// Runs one traced radio simulation of `alg` on `g` under `config`.
///
/// `paper` selects the paper's asymptotic constants over the calibrated
/// presets; `conserve` wraps every node in the energy-conservation
/// combinator (docs/CONSERVE.md). The channel model in `config` should come
/// from [`radio_channel`].
///
/// # Errors
///
/// Returns a message for the wired CONGEST algorithms, which have no radio
/// simulation (and no trace/metrics support), and for `conserve` on the
/// multichannel algorithm.
pub fn run_radio_traced<T: TraceSink + Send>(
    g: &Graph,
    alg: Algorithm,
    config: SimConfig,
    paper: bool,
    conserve: bool,
    trace: &mut T,
) -> Result<RunReport, String> {
    let n_bound = g.len().max(2);
    let delta = g.max_degree().max(2);
    // The multichannel algorithm sizes its resilience t from the config it
    // actually runs under: the largest channel-jamming budget in the fault
    // plan, clamped below the channel count (the engine enforces t < F).
    let channels = config.channels.max(1);
    let resilience = config.faults.max_jammed_channels().min(channels - 1);
    let ccfg = if conserve {
        Some(conserve_preset(alg)?)
    } else {
        None
    };
    let sim = Simulator::new(g, config);
    let report = match alg {
        Algorithm::Cd | Algorithm::Beeping => {
            let p = if paper {
                CdParams::paper(n_bound)
            } else {
                CdParams::for_n(n_bound)
            };
            traced_maybe_conserved(&sim, ccfg, |_, _| CdMis::new(p), trace)
        }
        Algorithm::BeepingNative => {
            let p = BeepingParams::for_n(n_bound);
            traced_maybe_conserved(&sim, ccfg, |_, _| NativeBeepingMis::new(p), trace)
        }
        Algorithm::NaiveLuby => {
            let p = if paper {
                CdParams::paper(n_bound)
            } else {
                CdParams::for_n(n_bound)
            };
            traced_maybe_conserved(&sim, ccfg, |_, _| naive_luby_cd(p), trace)
        }
        Algorithm::NoCd => {
            let p = if paper {
                NoCdParams::paper(n_bound, delta)
            } else {
                NoCdParams::for_n(n_bound, delta)
            };
            traced_maybe_conserved(&sim, ccfg, |_, _| NoCdMis::new(p), trace)
        }
        Algorithm::LowDegree => {
            let p = if paper {
                LowDegreeParams::paper(n_bound, delta)
            } else {
                LowDegreeParams::for_n(n_bound, delta)
            };
            traced_maybe_conserved(&sim, ccfg, |_, _| LowDegreeMis::new(p), trace)
        }
        Algorithm::NoCdNaive => {
            let cd = if paper {
                CdParams::paper(n_bound)
            } else {
                CdParams::for_n(n_bound)
            };
            traced_maybe_conserved(
                &sim,
                ccfg,
                |_, _| NoCdNaive::new(cd, NaiveSimParams::for_n(n_bound, delta)),
                trace,
            )
        }
        Algorithm::UnknownDelta => {
            let template = if paper {
                NoCdParams::paper(n_bound, 2)
            } else {
                NoCdParams::for_n(n_bound, 2)
            };
            traced_maybe_conserved(
                &sim,
                ccfg,
                |_, _| UnknownDeltaMis::new(n_bound, template),
                trace,
            )
        }
        Algorithm::Multichannel => {
            let p = if paper {
                MultichannelParams::paper(n_bound, channels, resilience)
            } else {
                MultichannelParams::for_n(n_bound, channels, resilience)
            };
            sim.run_traced(move |v, _| MultichannelMis::with_id(p, v), trace)
        }
        Algorithm::CongestLuby | Algorithm::CongestGhaffari => {
            return Err(format!(
                "{} is a wired CONGEST algorithm; tracing and metrics apply to radio algorithms only",
                alg.label()
            ));
        }
    };
    Ok(report)
}

/// Runs `trials` checkpointed trials of `alg` on `g`, appending each
/// finished trial to the JSONL file at `checkpoint` and skipping trials
/// already recorded there (see
/// [`run_trials_resumable`](radio_netsim::run_trials_resumable)).
///
/// Trial `t` runs with seed `split_seed(config.seed, t)`, exactly like the
/// non-resumable path, so a resumed sweep merges byte-identically with a
/// fresh one. Panicking trials land in [`TrialSet::failures`] instead of
/// aborting the sweep.
///
/// # Errors
///
/// Returns a message for the wired CONGEST algorithms, for `conserve` on
/// the multichannel algorithm, and for checkpoint I/O failures.
pub fn run_radio_resumable(
    g: &Graph,
    alg: Algorithm,
    config: SimConfig,
    paper: bool,
    conserve: bool,
    trials: usize,
    checkpoint: &Path,
) -> Result<TrialSet, String> {
    let n_bound = g.len().max(2);
    let delta = g.max_degree().max(2);
    let channels = config.channels.max(1);
    let resilience = config.faults.max_jammed_channels().min(channels - 1);
    let ccfg = if conserve {
        Some(conserve_preset(alg)?)
    } else {
        None
    };
    let set = match alg {
        Algorithm::Cd | Algorithm::Beeping => {
            let p = if paper {
                CdParams::paper(n_bound)
            } else {
                CdParams::for_n(n_bound)
            };
            resumable_maybe_conserved(g, config, trials, checkpoint, ccfg, |_, _| CdMis::new(p))
        }
        Algorithm::BeepingNative => {
            let p = BeepingParams::for_n(n_bound);
            resumable_maybe_conserved(g, config, trials, checkpoint, ccfg, |_, _| {
                NativeBeepingMis::new(p)
            })
        }
        Algorithm::NaiveLuby => {
            let p = if paper {
                CdParams::paper(n_bound)
            } else {
                CdParams::for_n(n_bound)
            };
            resumable_maybe_conserved(g, config, trials, checkpoint, ccfg, |_, _| naive_luby_cd(p))
        }
        Algorithm::NoCd => {
            let p = if paper {
                NoCdParams::paper(n_bound, delta)
            } else {
                NoCdParams::for_n(n_bound, delta)
            };
            resumable_maybe_conserved(g, config, trials, checkpoint, ccfg, |_, _| NoCdMis::new(p))
        }
        Algorithm::LowDegree => {
            let p = if paper {
                LowDegreeParams::paper(n_bound, delta)
            } else {
                LowDegreeParams::for_n(n_bound, delta)
            };
            resumable_maybe_conserved(g, config, trials, checkpoint, ccfg, |_, _| {
                LowDegreeMis::new(p)
            })
        }
        Algorithm::NoCdNaive => {
            let cd = if paper {
                CdParams::paper(n_bound)
            } else {
                CdParams::for_n(n_bound)
            };
            resumable_maybe_conserved(g, config, trials, checkpoint, ccfg, |_, _| {
                NoCdNaive::new(cd, NaiveSimParams::for_n(n_bound, delta))
            })
        }
        Algorithm::UnknownDelta => {
            let template = if paper {
                NoCdParams::paper(n_bound, 2)
            } else {
                NoCdParams::for_n(n_bound, 2)
            };
            resumable_maybe_conserved(g, config, trials, checkpoint, ccfg, |_, _| {
                UnknownDeltaMis::new(n_bound, template)
            })
        }
        Algorithm::Multichannel => {
            let p = if paper {
                MultichannelParams::paper(n_bound, channels, resilience)
            } else {
                MultichannelParams::for_n(n_bound, channels, resilience)
            };
            run_trials_resumable(g, config, trials, None, checkpoint, move |v, _| {
                MultichannelMis::with_id(p, v)
            })
        }
        Algorithm::CongestLuby | Algorithm::CongestGhaffari => {
            return Err(format!(
                "{} is a wired CONGEST algorithm; --resume checkpointing applies to radio algorithms only",
                alg.label()
            ));
        }
    };
    set.map_err(|e| format!("checkpoint {}: {e}", checkpoint.display()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use radio_netsim::NullTrace;

    #[test]
    fn channel_mapping_covers_all_algorithms() {
        for (_, alg) in Algorithm::all() {
            let ch = radio_channel(alg);
            match alg {
                Algorithm::CongestLuby | Algorithm::CongestGhaffari => assert!(ch.is_none()),
                _ => assert!(ch.is_some()),
            }
        }
    }

    #[test]
    fn runs_every_radio_algorithm() {
        let g = mis_graphs::generators::gnp(48, 0.1, 1);
        for (_, alg) in Algorithm::all() {
            let Some(channel) = radio_channel(alg) else {
                continue;
            };
            let config = SimConfig::new(channel).with_seed(7);
            let report = run_radio_traced(&g, alg, config, false, false, &mut NullTrace).unwrap();
            assert!(report.is_correct_mis(&g), "{} failed", alg.label());
        }
    }

    #[test]
    fn conserve_wraps_every_single_channel_algorithm() {
        let g = mis_graphs::generators::gnp(48, 0.1, 1);
        for (_, alg) in Algorithm::all() {
            let Some(channel) = radio_channel(alg) else {
                continue;
            };
            if alg == Algorithm::Multichannel {
                continue;
            }
            let config = SimConfig::new(channel).with_seed(7);
            let report = run_radio_traced(&g, alg, config, false, true, &mut NullTrace).unwrap();
            assert!(
                report.is_correct_mis(&g),
                "{} failed under --conserve",
                alg.label()
            );
        }
    }

    #[test]
    fn conserve_rejects_multichannel_and_congest() {
        let g = mis_graphs::generators::path(4);
        let config = SimConfig::new(ChannelModel::Cd).with_channels(2);
        let err = run_radio_traced(
            &g,
            Algorithm::Multichannel,
            config,
            false,
            true,
            &mut NullTrace,
        )
        .unwrap_err();
        assert!(err.contains("--conserve"), "{err}");
        let config = SimConfig::new(ChannelModel::Cd);
        let err = run_radio_traced(
            &g,
            Algorithm::CongestLuby,
            config,
            false,
            true,
            &mut NullTrace,
        )
        .unwrap_err();
        assert!(err.contains("--conserve"), "{err}");
    }

    #[test]
    fn congest_algorithms_are_rejected() {
        let g = mis_graphs::generators::path(4);
        let config = SimConfig::new(ChannelModel::Cd);
        let err = run_radio_traced(
            &g,
            Algorithm::CongestLuby,
            config,
            false,
            false,
            &mut NullTrace,
        )
        .unwrap_err();
        assert!(err.contains("radio"), "{err}");
    }

    #[test]
    fn resumable_dispatch_checkpoints_and_skips_recorded_trials() {
        let dir = std::env::temp_dir().join(format!("mis_cli_radio_resume_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sweep.jsonl");
        let _ = std::fs::remove_file(&path);

        let g = mis_graphs::generators::gnp(32, 0.1, 1);
        let config = SimConfig::new(ChannelModel::Cd).with_seed(11);
        let first =
            run_radio_resumable(&g, Algorithm::Cd, config.clone(), false, false, 2, &path).unwrap();
        assert_eq!(first.len(), 2);
        assert_eq!(std::fs::read_to_string(&path).unwrap().lines().count(), 2);

        // Asking for 4 trials appends only the 2 missing ones.
        let second =
            run_radio_resumable(&g, Algorithm::Cd, config, false, false, 4, &path).unwrap();
        assert_eq!(second.len(), 4);
        assert_eq!(std::fs::read_to_string(&path).unwrap().lines().count(), 4);
        assert!(second.outcomes.iter().all(|o| o.correct));

        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn resumable_dispatch_rejects_congest() {
        let g = mis_graphs::generators::path(4);
        let config = SimConfig::new(ChannelModel::Cd);
        let err = run_radio_resumable(
            &g,
            Algorithm::CongestGhaffari,
            config,
            false,
            false,
            1,
            Path::new("unused.jsonl"),
        )
        .unwrap_err();
        assert!(err.contains("radio"), "{err}");
    }
}
