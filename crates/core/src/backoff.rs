//! Energy-efficient backoff procedures (Algorithm 4, Appendix C) and the
//! traditional Decay backoff they improve on.
//!
//! A *k-repeated backoff* consists of `k` iterations of `W = ⌈log₂ Δ⌉`
//! rounds. Within one iteration:
//!
//! - an energy-efficient **sender** ([`SndEBackoff`]) samples a geometric
//!   round index `x` (capped at `W`) and transmits *only* at round `x`,
//!   sleeping otherwise — `k` awake rounds total (Lemma 8);
//! - an energy-efficient **receiver** ([`RecEBackoff`]) listens through the
//!   first `⌈log₂ Δ_est⌉` rounds of each iteration *until it first hears a
//!   message*, then sleeps to the end — O(k·log Δ_est) awake rounds worst
//!   case, O(log Δ_est) expected when a sender neighbor exists;
//! - the **traditional** Decay sender ([`DecaySender`]) transmits in every
//!   round `1..g` for geometric `g`, and the traditional receiver
//!   ([`DecayReceiver`]) listens through all `k·W` rounds — both are the
//!   energy-hungry baselines the paper's procedures replace.
//!
//! Lemma 9: a receiver with ≤ Δ_est sender neighbors learns whether at
//! least one neighbor is sending with probability ≥ 1 − (7/8)^k.
//!
//! # Engine contract
//!
//! These are *sub-protocol machines* composed inside a parent
//! [`radio_netsim::Protocol`]. Each machine owns an absolute round window
//! `[start, end)`. The parent delegates `act`/`feedback` while
//! `!is_done(round)`; the machine's sleep actions let the engine skip the
//! parent entirely during idle stretches.

use crate::params::log2_ceil;
use radio_netsim::{Action, Feedback, Message, NodeRng};
use rand::Rng;

/// The backoff window width used throughout: `W = ⌈log₂ Δ⌉ + 1`.
///
/// The paper uses `⌈log Δ⌉`, which degenerates for Δ ≤ 2: the capped
/// geometric then transmits in round 1 with probability 1, so two senders
/// *always* collide and Lemma 9 fails. One extra round restores the
/// 1/2-probability first round at every Δ without changing the asymptotics
/// (documented in DESIGN.md).
pub fn backoff_window(delta: usize) -> u32 {
    log2_ceil(delta.max(2)) + 1
}

/// Samples the capped geometric round index of Algorithm 4 line 4–5:
/// `min(Geometric(1/2), w)`, in `1..=w`.
pub fn capped_geometric(rng: &mut NodeRng, w: u32) -> u32 {
    debug_assert!(w >= 1);
    let mut x = 1;
    while x < w && rng.gen_bool(0.5) {
        x += 1;
    }
    x
}

/// Energy-efficient sender backoff: `Snd-EBackoff(k, Δ)`.
#[derive(Debug, Clone)]
pub struct SndEBackoff {
    start: u64,
    w: u32,
    /// Absolute transmit rounds, one per iteration, strictly increasing.
    schedule: Vec<u64>,
    end: u64,
}

impl SndEBackoff {
    /// Creates a sender backoff occupying rounds `[start, start + k·W)`
    /// with `W = ⌈log₂ Δ⌉`, presampling one transmit round per iteration.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(start: u64, k: u32, delta: usize, rng: &mut NodeRng) -> SndEBackoff {
        assert!(k >= 1, "k must be positive (Lemma 8)");
        let w = backoff_window(delta);
        let schedule = (0..k)
            .map(|i| start + i as u64 * w as u64 + (capped_geometric(rng, w) - 1) as u64)
            .collect();
        SndEBackoff {
            start,
            w,
            schedule,
            end: start + k as u64 * w as u64,
        }
    }

    /// First round of the window.
    pub fn start(&self) -> u64 {
        self.start
    }

    /// One past the last round of the window.
    pub fn end(&self) -> u64 {
        self.end
    }

    /// Window width W.
    pub fn window(&self) -> u32 {
        self.w
    }

    /// Whether the machine's window is over.
    pub fn is_done(&self, round: u64) -> bool {
        round >= self.end
    }

    /// Action for `round` (must be within the window): transmit at the
    /// sampled rounds, sleep between them.
    ///
    /// # Panics
    ///
    /// Panics (debug) if called outside `[start, end)`.
    pub fn act(&mut self, round: u64) -> Action {
        debug_assert!(round >= self.start && round < self.end);
        // The schedule is sorted; drop past entries.
        while let Some(&next) = self.schedule.first() {
            if next < round {
                self.schedule.remove(0);
            } else if next == round {
                self.schedule.remove(0);
                return Action::Transmit(Message::unary());
            } else {
                return Action::Sleep { wake_at: next };
            }
        }
        Action::Sleep { wake_at: self.end }
    }
}

/// Energy-efficient receiver backoff: `Rec-EBackoff(k, Δ, Δ_est)`.
#[derive(Debug, Clone)]
pub struct RecEBackoff {
    start: u64,
    w: u32,
    w_est: u32,
    end: u64,
    heard: bool,
}

impl RecEBackoff {
    /// Creates a receiver backoff occupying rounds `[start, start + k·W)`,
    /// listening only through the first `⌈log₂ Δ_est⌉` rounds of each
    /// iteration (Algorithm 4 line 18).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(start: u64, k: u32, delta: usize, delta_est: usize) -> RecEBackoff {
        assert!(k >= 1, "k must be positive (Lemma 8)");
        let w = backoff_window(delta);
        let w_est = backoff_window(delta_est).min(w);
        RecEBackoff {
            start,
            w,
            w_est,
            end: start + k as u64 * w as u64,
            heard: false,
        }
    }

    /// Receiver with `Δ_est = Δ` (the default third argument).
    pub fn new_full(start: u64, k: u32, delta: usize) -> RecEBackoff {
        RecEBackoff::new(start, k, delta, delta)
    }

    /// First round of the window.
    pub fn start(&self) -> u64 {
        self.start
    }

    /// One past the last round of the window.
    pub fn end(&self) -> u64 {
        self.end
    }

    /// Whether the machine's window is over.
    pub fn is_done(&self, round: u64) -> bool {
        round >= self.end
    }

    /// Whether a message has been heard so far (the procedure's return
    /// value once done).
    pub fn heard(&self) -> bool {
        self.heard
    }

    /// Action for `round`: listen while relevant, sleep once `heard` or
    /// past the Δ_est prefix of the iteration.
    ///
    /// # Panics
    ///
    /// Panics (debug) if called outside `[start, end)`.
    pub fn act(&mut self, round: u64) -> Action {
        debug_assert!(round >= self.start && round < self.end);
        if self.heard {
            return Action::Sleep { wake_at: self.end };
        }
        let rel = round - self.start;
        let j = (rel % self.w as u64) as u32;
        if j < self.w_est {
            Action::Listen
        } else {
            // Sleep to the start of the next iteration.
            let next_iter = self.start + (rel / self.w as u64 + 1) * self.w as u64;
            Action::Sleep {
                wake_at: next_iter.min(self.end),
            }
        }
    }

    /// Feedback for a round this machine acted in.
    pub fn feedback(&mut self, _round: u64, fb: Feedback) {
        if matches!(fb, Feedback::Heard(_) | Feedback::Beep) {
            self.heard = true;
        }
    }
}

/// Traditional Decay sender: transmits in rounds `1..=g` of each iteration
/// for geometric `g` (capped at W), i.e. keeps transmitting while fair
/// coin-flips succeed. Strictly more awake rounds than [`SndEBackoff`].
#[derive(Debug, Clone)]
pub struct DecaySender {
    start: u64,
    w: u32,
    k: u32,
    /// Per-iteration transmit-prefix lengths.
    prefixes: Vec<u32>,
    end: u64,
}

impl DecaySender {
    /// Creates a traditional Decay sender over `[start, start + k·W)`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(start: u64, k: u32, delta: usize, rng: &mut NodeRng) -> DecaySender {
        assert!(k >= 1);
        let w = backoff_window(delta);
        let prefixes = (0..k).map(|_| capped_geometric(rng, w)).collect();
        DecaySender {
            start,
            w,
            k,
            prefixes,
            end: start + k as u64 * w as u64,
        }
    }

    /// One past the last round of the window.
    pub fn end(&self) -> u64 {
        self.end
    }

    /// Whether the machine's window is over.
    pub fn is_done(&self, round: u64) -> bool {
        round >= self.end
    }

    /// Action for `round`: transmit through the iteration's prefix, sleep
    /// after.
    pub fn act(&mut self, round: u64) -> Action {
        debug_assert!(round >= self.start && round < self.end);
        let rel = round - self.start;
        let iter = (rel / self.w as u64) as u32;
        let j = (rel % self.w as u64) as u32;
        debug_assert!(iter < self.k);
        if j < self.prefixes[iter as usize] {
            Action::Transmit(Message::unary())
        } else {
            let next_iter = self.start + (iter as u64 + 1) * self.w as u64;
            Action::Sleep {
                wake_at: next_iter.min(self.end),
            }
        }
    }
}

/// Traditional Decay receiver: listens through every round of the window —
/// the full `k·W` energy cost the paper's receiver avoids.
#[derive(Debug, Clone)]
pub struct DecayReceiver {
    start: u64,
    end: u64,
    heard: bool,
}

impl DecayReceiver {
    /// Creates a traditional receiver over `[start, start + k·W)`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(start: u64, k: u32, delta: usize) -> DecayReceiver {
        assert!(k >= 1);
        let w = backoff_window(delta);
        DecayReceiver {
            start,
            end: start + k as u64 * w as u64,
            heard: false,
        }
    }

    /// One past the last round of the window.
    pub fn end(&self) -> u64 {
        self.end
    }

    /// Whether the machine's window is over.
    pub fn is_done(&self, round: u64) -> bool {
        round >= self.end
    }

    /// Whether a message has been heard so far.
    pub fn heard(&self) -> bool {
        self.heard
    }

    /// Always listens within the window.
    pub fn act(&mut self, round: u64) -> Action {
        debug_assert!(round >= self.start && round < self.end);
        Action::Listen
    }

    /// Feedback for a round this machine acted in.
    pub fn feedback(&mut self, _round: u64, fb: Feedback) {
        if matches!(fb, Feedback::Heard(_) | Feedback::Beep) {
            self.heard = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> NodeRng {
        NodeRng::seed_from_u64(seed)
    }

    #[test]
    fn capped_geometric_in_range() {
        let mut r = rng(1);
        for w in [1u32, 2, 5, 16] {
            for _ in 0..200 {
                let x = capped_geometric(&mut r, w);
                assert!((1..=w).contains(&x), "x={x} w={w}");
            }
        }
    }

    #[test]
    fn capped_geometric_distribution() {
        // P(x = 1) = 1/2; P(x = w) = 2^-(w-1).
        let mut r = rng(2);
        let n = 20_000;
        let w = 8;
        let mut ones = 0;
        for _ in 0..n {
            if capped_geometric(&mut r, w) == 1 {
                ones += 1;
            }
        }
        let frac = ones as f64 / n as f64;
        assert!((0.47..0.53).contains(&frac), "frac {frac}");
    }

    /// Drives a sender machine through its window, collecting per-round
    /// actions, and checks Lemma 8's exact awake count.
    #[test]
    fn snd_transmits_exactly_k_times() {
        let mut r = rng(3);
        for (k, delta) in [(1u32, 2usize), (5, 16), (12, 100), (3, 1)] {
            let mut snd = SndEBackoff::new(10, k, delta, &mut r);
            let w = backoff_window(delta);
            assert_eq!(snd.end(), 10 + (k * w) as u64);
            let mut transmits = 0;
            let mut round = 10;
            while !snd.is_done(round) {
                match snd.act(round) {
                    Action::Transmit(_) => {
                        transmits += 1;
                        round += 1;
                    }
                    Action::Sleep { wake_at } => {
                        assert!(wake_at > round);
                        round = wake_at;
                    }
                    Action::Listen => panic!("sender never listens"),
                }
            }
            assert_eq!(transmits, k, "k={k} delta={delta}");
            assert_eq!(round, snd.end());
        }
    }

    #[test]
    fn snd_transmits_once_per_iteration() {
        let mut r = rng(4);
        let k = 50u32;
        let delta = 64usize;
        let w = backoff_window(delta) as u64;
        let mut snd = SndEBackoff::new(0, k, delta, &mut r);
        let mut per_iter = vec![0u32; k as usize];
        let mut round = 0u64;
        while !snd.is_done(round) {
            match snd.act(round) {
                Action::Transmit(_) => {
                    per_iter[(round / w) as usize] += 1;
                    round += 1;
                }
                Action::Sleep { wake_at } => round = wake_at,
                Action::Listen => unreachable!(),
            }
        }
        assert!(per_iter.iter().all(|&c| c == 1));
    }

    #[test]
    fn rec_listens_prefix_until_heard() {
        // Δ = 256 (W = 9), Δ_est = 4 (listen first 3 rounds of each iter).
        let mut rec = RecEBackoff::new(0, 3, 256, 4);
        assert_eq!(rec.end(), 27);
        // Iteration 0: listens rounds 0..3; sleeps to 9.
        for r in 0..3 {
            assert_eq!(rec.act(r), Action::Listen);
            rec.feedback(r, Feedback::Silence);
        }
        assert_eq!(rec.act(3), Action::Sleep { wake_at: 9 });
        // Iteration 1: hears at round 9 → sleeps to end.
        assert_eq!(rec.act(9), Action::Listen);
        rec.feedback(9, Feedback::Heard(Message::unary()));
        assert!(rec.heard());
        assert_eq!(rec.act(10), Action::Sleep { wake_at: 27 });
        assert!(rec.is_done(27));
    }

    #[test]
    fn rec_awake_bound_lemma8() {
        // Worst case (never hears): awake exactly k·⌈log Δ_est⌉ rounds.
        let k = 7u32;
        let delta = 1 << 10;
        let d_est = 16;
        let mut rec = RecEBackoff::new(0, k, delta, d_est);
        let mut awake = 0;
        let mut round = 0u64;
        while !rec.is_done(round) {
            match rec.act(round) {
                Action::Listen => {
                    rec.feedback(round, Feedback::Silence);
                    awake += 1;
                    round += 1;
                }
                Action::Sleep { wake_at } => round = wake_at,
                Action::Transmit(_) => panic!("receiver never transmits"),
            }
        }
        assert_eq!(awake, (k * backoff_window(d_est)) as u64);
        assert!(!rec.heard());
    }

    #[test]
    fn rec_est_capped_at_w() {
        // Δ_est > Δ just clamps to the full window.
        let rec = RecEBackoff::new(0, 1, 8, 1 << 20);
        assert_eq!(rec.end(), 4); // W = ⌈log₂ 8⌉ + 1 = 4
        let full = RecEBackoff::new_full(0, 1, 8);
        assert_eq!(full.end(), 4);
    }

    #[test]
    fn decay_sender_transmits_prefix() {
        let mut r = rng(5);
        let mut s = DecaySender::new(0, 4, 64, &mut r);
        let w = 7u64;
        let mut round = 0u64;
        let mut in_iter_transmits: Vec<Vec<u64>> = vec![Vec::new(); 4];
        while !s.is_done(round) {
            match s.act(round) {
                Action::Transmit(_) => {
                    in_iter_transmits[(round / w) as usize].push(round % w);
                    round += 1;
                }
                Action::Sleep { wake_at } => round = wake_at,
                Action::Listen => unreachable!(),
            }
        }
        for tx in &in_iter_transmits {
            // Transmissions form a prefix 0..g of the iteration.
            assert!(!tx.is_empty());
            for (i, &j) in tx.iter().enumerate() {
                assert_eq!(j, i as u64);
            }
        }
    }

    #[test]
    fn decay_receiver_always_awake() {
        let mut rec = DecayReceiver::new(5, 3, 16);
        let mut awake = 0;
        for round in 5..rec.end() {
            assert_eq!(rec.act(round), Action::Listen);
            rec.feedback(round, Feedback::Silence);
            awake += 1;
        }
        assert_eq!(awake, 3 * 5); // k·W with W = ⌈log₂ 16⌉ + 1 = 5
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_rejected() {
        let mut r = rng(6);
        let _ = SndEBackoff::new(0, 0, 4, &mut r);
    }
}
