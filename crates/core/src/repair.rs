//! Self-healing MIS: a wrapper that detects post-fault violations locally
//! and re-runs the underlying MIS machine on the affected neighborhood.
//!
//! The paper's algorithms compute an MIS once and terminate; under the
//! crash-recovery and churn clauses of
//! [`radio_netsim::FaultPlan`] that is not enough — a revived or joined
//! node comes back blank, and the set it rejoins may no longer be correct
//! around it. [`RepairingMis`] wraps any MIS [`Protocol`] (the inner
//! *schedule*, e.g. [`CdMis`](crate::cd::CdMis)) in a maintenance loop that
//! keeps the MIS invariant locally checkable and locally repairable. It is
//! a [`radio_netsim::Layer`]: each epoch's work rounds are handed to a
//! fresh inner instance on a dense virtual clock `0..schedule_len`, with
//! the delegation rules of that contract (status verbatim whenever an
//! inner machine exists, timeline reset only when the machine is rebuilt):
//!
//! Time is divided into **epochs** of `schedule_len + 2` rounds:
//!
//! - **Cover round** (offset 0): every `in-MIS` monitor transmits with
//!   probability `cover_tx_prob`; everyone else listens. An `out-MIS`
//!   monitor that hears activity is still covered and resets its miss
//!   counter; one that misses `miss_threshold` consecutive covers concludes
//!   its dominator is gone and *reopens* (reverts to undecided). An
//!   undecided (repairing) node that hears a cover adopts `out-MIS`
//!   directly — its dominator announced itself. An `in-MIS` monitor that
//!   *listened* (only possible when `cover_tx_prob < 1`) and heard activity
//!   has an adjacent `in-MIS` node: it reopens.
//! - **Duel round** (offset 1): `in-MIS` monitors flip a fair coin between
//!   transmitting and listening; a listener that hears activity has an
//!   adjacent `in-MIS` transmitter and reopens. Only listeners reopen, so
//!   two adjacent `in-MIS` nodes are never both dropped in the same duel —
//!   the asymmetry is what breaks the tie.
//! - **Work rounds** (offsets `2..schedule_len + 2`): reopened nodes run a
//!   *fresh* instance of the inner schedule (built by the wrapper's
//!   factory), with the epoch's work rounds presented to it as rounds
//!   `0..schedule_len`. Monitors sleep through the work rounds, so a
//!   repairing neighborhood competes only with itself.
//!
//! A node that reopens mid-epoch (at a cover or duel) does **not** run the
//! inner schedule in the same epoch: it first listens to the *next* cover.
//! This is load-bearing, not an optimisation — a duel loser that re-ran
//! immediately would compete against sleeping monitors, win unopposed, and
//! duel its neighbor forever. Checking the cover first lets it adopt
//! `out-MIS` under its surviving dominator and converge.
//!
//! Restarted nodes (rebuilt by the engine after a down window, see
//! [`Protocol::on_restart`]) and mid-run joiners enter the same way: they
//! wait for the next cover, fast-adopt `out-MIS` if they hear one, and
//! otherwise run the inner schedule in the following epoch.
//!
//! # Termination and convergence
//!
//! With `monitor_epochs = None` (the default) monitors never retire, so the
//! wrapped protocol never finishes on its own — runs are ended by a
//! [`ConvergencePolicy`](radio_netsim::ConvergencePolicy), which stops once
//! the live-subgraph MIS has been stable for a configured window and
//! reports [`RunReport::converged_at`](radio_netsim::RunReport). With
//! `monitor_epochs = Some(k)`, an `out-MIS` monitor retires after `k`
//! consecutive covered epochs and an `in-MIS` monitor at its `k + 1`-th
//! quiet cover, so a fault-free tail ends by itself.
//!
//! # Channel-model caveats
//!
//! Cover and duel detection use [`Feedback::heard_activity`], so the loop
//! runs unchanged in the CD, no-CD and beeping models — with two caveats.
//! Under **no-CD**, two simultaneous cover transmissions read as silence,
//! so coverage can be missed spuriously; [`RepairConfig::for_nocd`]
//! compensates with `cover_tx_prob = 0.5` and a deeper miss threshold.
//! Under **jamming**, cover rounds can read as activity that isn't a
//! dominator, making repairing nodes adopt `out-MIS` spuriously; the
//! wrapper is designed for the *terminal* fault classes (crash-recovery,
//! churn, joins), and composing it with continuous jammers trades repair
//! latency for false coverage.

use radio_netsim::{Action, Feedback, Layer, Message, NodeRng, NodeStatus, Protocol, VirtualClock};
use rand::Rng;

/// Tuning for the [`RepairingMis`] maintenance loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RepairConfig {
    /// Length of the inner schedule in rounds: the wrapper presents each
    /// epoch's work rounds to a fresh inner instance as rounds
    /// `0..schedule_len` (e.g. [`CdParams::total_rounds`](crate::params::CdParams::total_rounds)).
    pub schedule_len: u64,
    /// Probability that an `in-MIS` monitor transmits in a cover round
    /// (listening otherwise). `1.0` for models where collisions are
    /// audible; below `1.0` where two covers would cancel to silence.
    pub cover_tx_prob: f64,
    /// Consecutive missed covers after which an `out-MIS` monitor reopens.
    pub miss_threshold: u32,
    /// If `Some(k)`, monitors retire after `k` quiet epochs (`k + 1` for
    /// `in-MIS`, which outlives the neighbors it covers); if `None`, they
    /// monitor forever and the run is ended by a
    /// [`ConvergencePolicy`](radio_netsim::ConvergencePolicy).
    pub monitor_epochs: Option<u64>,
}

impl RepairConfig {
    /// Preset for channels with audible collisions (CD, beeping): covers
    /// are always transmitted, and two misses prove the dominator gone.
    pub fn for_cd(schedule_len: u64) -> RepairConfig {
        assert!(
            schedule_len >= 1,
            "inner schedule must have at least 1 round"
        );
        RepairConfig {
            schedule_len,
            cover_tx_prob: 1.0,
            miss_threshold: 2,
            monitor_epochs: None,
        }
    }

    /// Preset for the no-CD model, where simultaneous covers cancel to
    /// silence: covers are halved and the miss threshold deepened so a
    /// covered node is overwhelmingly likely to hear a lone cover before
    /// concluding it is orphaned.
    pub fn for_nocd(schedule_len: u64) -> RepairConfig {
        assert!(
            schedule_len >= 1,
            "inner schedule must have at least 1 round"
        );
        RepairConfig {
            schedule_len,
            cover_tx_prob: 0.5,
            miss_threshold: 6,
            monitor_epochs: None,
        }
    }

    /// Makes monitors retire after `k` quiet epochs (see
    /// [`RepairConfig::monitor_epochs`]).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn with_monitor_epochs(mut self, k: u64) -> RepairConfig {
        assert!(k >= 1, "monitoring for 0 epochs would retire unverified");
        self.monitor_epochs = Some(k);
        self
    }

    /// Rounds per epoch: cover + duel + the inner schedule.
    pub fn epoch_len(&self) -> u64 {
        self.schedule_len + 2
    }
}

/// Self-healing wrapper around an inner MIS schedule (module docs).
///
/// `make` builds a fresh inner instance each time the node (re)enters
/// repair; the wrapper never reuses a partially-run inner across epochs.
#[derive(Debug)]
pub struct RepairingMis<P, F> {
    config: RepairConfig,
    make: F,
    /// The inner machine currently being driven; `None` while monitoring
    /// or while waiting for the next cover before repairing.
    inner: Option<P>,
    /// Virtual clock for the current inner instance: each epoch's work
    /// rounds are presented to it as rounds `0..schedule_len`, and the
    /// clock is reset whenever the instance is dropped — the [`Layer`]
    /// contract's "fresh machine, fresh timeline" rule.
    clock: VirtualClock,
    /// Decided status held while monitoring.
    status: NodeStatus,
    /// `true` once the inner schedule has decided and the node is in the
    /// cover/duel maintenance loop.
    monitoring: bool,
    /// Earliest cover round from which the inner schedule may be (re)run.
    /// Reopening mid-epoch pushes this to the next cover (module docs).
    work_from: u64,
    /// Consecutive missed covers (out-MIS monitors only).
    misses: u32,
    /// Consecutive quiet epochs (towards `monitor_epochs` retirement).
    quiet: u64,
    finished: bool,
    /// Whether the engine revived this instance after a down window.
    pub restarted: bool,
    /// Awake rounds spent monitoring (covers and duels).
    pub monitor_rounds: u64,
    /// Awake rounds spent repairing (cover checks while undecided plus
    /// inner work rounds).
    pub repair_rounds: u64,
    /// Times this node revoked a decision (miss-threshold, cover conflict
    /// or duel loss).
    pub repairs: u32,
}

impl<P, F> RepairingMis<P, F>
where
    P: Protocol,
    F: FnMut(&mut NodeRng) -> P,
{
    /// Creates a repairing node; the first inner instance is built at the
    /// first work round.
    pub fn new(config: RepairConfig, make: F) -> RepairingMis<P, F> {
        RepairingMis {
            config,
            make,
            inner: None,
            clock: VirtualClock::new(),
            status: NodeStatus::Undecided,
            monitoring: false,
            work_from: 0,
            misses: 0,
            quiet: 0,
            finished: false,
            restarted: false,
            monitor_rounds: 0,
            repair_rounds: 0,
            repairs: 0,
        }
    }

    /// The wrapper's tuning.
    pub fn config(&self) -> &RepairConfig {
        &self.config
    }

    /// Revokes the node's decision: it re-checks the next cover and, if
    /// still undominated, re-runs the inner schedule in the epoch after.
    fn reopen(&mut self, round: u64) {
        let e = self.config.epoch_len();
        self.monitoring = false;
        self.status = NodeStatus::Undecided;
        self.inner = None;
        self.clock.reset();
        self.misses = 0;
        self.quiet = 0;
        self.work_from = round - round % e + e;
        self.repairs += 1;
    }

    /// Adopts a decided status and enters the maintenance loop.
    fn start_monitoring(&mut self, status: NodeStatus) {
        debug_assert!(status.is_decided());
        self.monitoring = true;
        self.status = status;
        self.inner = None;
        self.clock.reset();
        self.misses = 0;
        self.quiet = 0;
    }
}

impl<P, F> Protocol for RepairingMis<P, F>
where
    P: Protocol,
    F: FnMut(&mut NodeRng) -> P,
{
    fn act(&mut self, round: u64, rng: &mut NodeRng) -> Action {
        let e = self.config.epoch_len();
        let base = round - round % e;
        let offset = round % e;
        if self.finished {
            // Defensive: the engine does not poll finished nodes.
            return Action::halt();
        }
        if self.monitoring {
            if offset == 0 {
                if self.status == NodeStatus::InMis {
                    if let Some(k) = self.config.monitor_epochs {
                        self.quiet += 1;
                        if self.quiet > k {
                            self.finished = true;
                            return Action::halt();
                        }
                    }
                    self.monitor_rounds += 1;
                    return if rng.gen_bool(self.config.cover_tx_prob) {
                        Action::Transmit(Message::unary())
                    } else {
                        Action::Listen
                    };
                }
                // Out-MIS: check coverage.
                self.monitor_rounds += 1;
                return Action::Listen;
            }
            if offset == 1 && self.status == NodeStatus::InMis {
                self.monitor_rounds += 1;
                return if rng.gen_bool(0.5) {
                    Action::Transmit(Message::unary())
                } else {
                    Action::Listen
                };
            }
            // Monitors sleep through the work rounds.
            return Action::Sleep { wake_at: base + e };
        }
        // Repairing (undecided).
        if offset == 0 {
            // Listen to the cover: a dominator announcing itself lets the
            // node adopt out-MIS without re-running the schedule. Any
            // half-run inner from a previous epoch is stale by now.
            self.inner = None;
            self.clock.reset();
            self.repair_rounds += 1;
            return Action::Listen;
        }
        if base < self.work_from {
            // Reopened mid-epoch: wait for the next cover (module docs).
            return Action::Sleep {
                wake_at: self.work_from,
            };
        }
        if offset == 1 {
            return Action::Sleep { wake_at: base + 2 };
        }
        // Work round.
        if self.inner.is_none() {
            if offset != 2 {
                // Mid-schedule arrival (restart or join): the inner can
                // only start at a work-round 0; wait for the next epoch.
                return Action::Sleep { wake_at: base + e };
            }
            self.clock.reset();
            self.inner = Some((self.make)(rng));
        }
        let vround = offset - 2;
        self.clock.observe(vround);
        let inner = self.inner.as_mut().expect("inner built above");
        match inner.act(vround, rng) {
            Action::Sleep { wake_at } => {
                if wake_at >= self.config.schedule_len {
                    Action::Sleep { wake_at: base + e }
                } else {
                    Action::Sleep {
                        wake_at: base + 2 + wake_at,
                    }
                }
            }
            awake => {
                self.repair_rounds += 1;
                awake
            }
        }
    }

    fn feedback(&mut self, round: u64, fb: Feedback, rng: &mut NodeRng) {
        let e = self.config.epoch_len();
        let offset = round % e;
        if self.monitoring {
            if offset == 0 {
                if self.status == NodeStatus::InMis {
                    // Only possible outcome of a transmitted cover is
                    // `Sent`; a *listening* in-MIS monitor that hears a
                    // cover has an adjacent in-MIS node.
                    if fb.heard_activity() {
                        self.reopen(round);
                    }
                } else if fb.heard_activity() {
                    self.misses = 0;
                    if let Some(k) = self.config.monitor_epochs {
                        self.quiet += 1;
                        if self.quiet >= k {
                            self.finished = true;
                        }
                    }
                } else {
                    self.misses += 1;
                    self.quiet = 0;
                    if self.misses >= self.config.miss_threshold {
                        self.reopen(round);
                    }
                }
            } else if offset == 1 && fb.heard_activity() {
                // Duel loss: an adjacent in-MIS monitor transmitted while
                // this one listened.
                self.reopen(round);
            }
            return;
        }
        if offset == 0 {
            if fb.heard_activity() {
                // A dominator covered us: adopt out-MIS directly.
                self.start_monitoring(NodeStatus::OutMis);
            }
            return;
        }
        if offset >= 2 {
            if self.inner.is_some() {
                self.clock.observe(offset - 2);
            }
            if let Some(inner) = self.inner.as_mut() {
                inner.feedback(offset - 2, fb, rng);
                if inner.finished() {
                    let s = inner.status();
                    if s.is_decided() {
                        self.start_monitoring(s);
                    } else {
                        // Inner gave up undecided: retry with a fresh
                        // instance next epoch.
                        self.inner = None;
                        self.clock.reset();
                    }
                }
            }
        }
    }

    fn status(&self) -> NodeStatus {
        if self.monitoring {
            self.status
        } else {
            self.inner
                .as_ref()
                .map_or(NodeStatus::Undecided, |i| i.status())
        }
    }

    fn finished(&self) -> bool {
        self.finished
    }

    fn on_restart(&mut self, _round: u64, _rng: &mut NodeRng) {
        // The engine rebuilds the node via the factory before calling this,
        // so state (including the virtual clock) is already blank; the flag
        // records the revival and the `work_from` machinery handles the
        // mid-epoch arrival.
        self.restarted = true;
    }
}

impl<P, F> Layer for RepairingMis<P, F>
where
    P: Protocol,
    F: FnMut(&mut NodeRng) -> P,
{
    type Inner = P;

    fn inner(&self) -> Option<&P> {
        self.inner.as_ref()
    }

    fn virtual_now(&self) -> Option<u64> {
        self.clock.now()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mis_graphs::generators;
    use proptest::prelude::*;
    use radio_netsim::{
        ChannelModel, ConvergencePolicy, FaultPlan, RunReport, SimConfig, Simulator,
    };

    /// Trivial 1-round inner schedule: transmits once and adopts `target`
    /// on any feedback. Deterministic, so the wrapper's timing is exactly
    /// checkable.
    struct Claim {
        target: NodeStatus,
        status: NodeStatus,
        done: bool,
    }
    impl Claim {
        fn new(target: NodeStatus) -> Claim {
            Claim {
                target,
                status: NodeStatus::Undecided,
                done: false,
            }
        }
    }
    impl Protocol for Claim {
        fn act(&mut self, _round: u64, _rng: &mut NodeRng) -> Action {
            Action::Transmit(Message::unary())
        }
        fn feedback(&mut self, _round: u64, _fb: Feedback, _rng: &mut NodeRng) {
            self.status = self.target;
            self.done = true;
        }
        fn status(&self) -> NodeStatus {
            self.status
        }
        fn finished(&self) -> bool {
            self.done
        }
    }

    // With `Claim`, schedule_len = 1 and epochs are 3 rounds:
    // cover (0), duel (1), work (2).
    const E: u64 = 3;

    fn claim_config() -> RepairConfig {
        RepairConfig::for_cd(1)
    }

    #[test]
    fn epoch_len_and_presets() {
        assert_eq!(RepairConfig::for_cd(7).epoch_len(), 9);
        assert_eq!(RepairConfig::for_cd(1).miss_threshold, 2);
        assert_eq!(RepairConfig::for_nocd(1).miss_threshold, 6);
        assert!(RepairConfig::for_nocd(1).cover_tx_prob < 1.0);
        assert_eq!(
            RepairConfig::for_cd(4)
                .with_monitor_epochs(3)
                .monitor_epochs,
            Some(3)
        );
    }

    #[test]
    #[should_panic(expected = "0 epochs")]
    fn zero_monitor_epochs_is_rejected() {
        let _ = RepairConfig::for_cd(1).with_monitor_epochs(0);
    }

    /// The wrapper honors the [`Layer`] delegation rules: no inner machine
    /// (and no virtual time) outside work epochs, a dense virtual timeline
    /// while one runs, and verbatim status delegation whenever it exists.
    #[test]
    fn layer_contract_tracks_the_inner_lifecycle() {
        use rand::SeedableRng;
        let mut node = RepairingMis::new(claim_config(), |_rng: &mut NodeRng| {
            Claim::new(NodeStatus::InMis)
        });
        let mut rng = NodeRng::seed_from_u64(1);
        // Repairing, cover round: no inner yet, no virtual time.
        assert_eq!(node.act(0, &mut rng), Action::Listen);
        assert!(node.inner().is_none());
        assert_eq!(node.virtual_now(), None);
        node.feedback(0, Feedback::Silence, &mut rng);
        // Duel round is slept through; the work round builds the inner and
        // drives it at virtual round 0.
        assert_eq!(node.act(1, &mut rng), Action::Sleep { wake_at: 2 });
        let a = node.act(2, &mut rng);
        assert!(a.is_awake());
        assert!(node.inner().is_some());
        assert_eq!(node.virtual_now(), Some(0));
        assert_eq!(node.status(), node.inner().unwrap().status());
        // The inner decides on feedback: the wrapper starts monitoring,
        // drops the machine, and resets the virtual timeline with it.
        node.feedback(2, Feedback::Sent, &mut rng);
        assert_eq!(node.status(), NodeStatus::InMis);
        assert!(node.inner().is_none());
        assert_eq!(node.virtual_now(), None);
    }

    /// Path 0-1 where node 0 claims in-MIS and node 1 claims out-MIS: a
    /// stable configuration from epoch 0. Crashing node 0 permanently
    /// leaves node 1 uncovered; it must miss two covers, reopen, and
    /// re-decide in-MIS — at an exactly predictable round.
    #[test]
    fn uncovered_out_mis_node_repairs_itself_after_miss_threshold() {
        let g = generators::path(2);
        let config = SimConfig::new(ChannelModel::Cd)
            .with_faults(FaultPlan::none().with_crash(0, 4))
            .with_convergence(ConvergencePolicy::new(2 * E))
            .with_round_metrics();
        let report = Simulator::new(&g, config).run(|v, _| {
            RepairingMis::new(claim_config(), move |_rng: &mut NodeRng| {
                Claim::new(if v == 0 {
                    NodeStatus::InMis
                } else {
                    NodeStatus::OutMis
                })
            })
        });
        assert!(report.completed, "policy should stop the stable tail");
        assert!(!report.watchdog_fired);
        // Node 0 crashes at round 4 (its epoch-1 duel). Node 1 misses the
        // covers at rounds 6 and 9, reopens, checks the (silent) cover at
        // round 12, and re-decides in-MIS at the work round 14.
        assert_eq!(report.converged_at, Some(14));
        assert_eq!(report.statuses[1], NodeStatus::InMis);
        assert_eq!(report.faulty, vec![true, false]);
        // The revoked decision reopened the stamp: node 1's decision time
        // is the repair round, not its original epoch-0 decision.
        assert_eq!(report.meters[1].decided_at, Some(14));
        // Population identity holds on every record even while the node
        // cycles out of and back into the decided set.
        for m in report.metrics.as_deref().unwrap() {
            assert_eq!(m.node_count(), 2, "round {}", m.round);
        }
        // The repairing column was live while the decision was revoked
        // (rounds 9..14) and empty again after the re-decision.
        let timeline = report.metrics.unwrap();
        assert!(timeline.iter().any(|m| m.repairing == 1));
        assert_eq!(timeline.last().unwrap().repairing, 0);
    }

    /// Two adjacent nodes that both claim in-MIS: the duels must whittle
    /// the conflict down to a single in-MIS node, and the loser must adopt
    /// out-MIS from its rival's cover.
    #[test]
    fn adjacent_in_mis_monitors_duel_down_to_one() {
        let g = generators::path(2);
        let config = SimConfig::new(ChannelModel::Cd)
            .with_seed(5)
            .with_convergence(ConvergencePolicy::new(4 * E))
            .with_max_rounds(3000);
        let report = Simulator::new(&g, config).run(|_, _| {
            RepairingMis::new(claim_config(), |_rng: &mut NodeRng| {
                Claim::new(NodeStatus::InMis)
            })
        });
        assert!(report.completed, "duels failed to resolve the conflict");
        assert!(report.converged_at.is_some());
        assert!(report.is_correct_mis(&g), "{:?}", report.verify_mis(&g));
    }

    /// A restarted node re-enters through the cover fast-path: it adopts
    /// out-MIS under its surviving dominator without re-running the inner
    /// schedule, and its `restarted` flag is set by the engine hook.
    #[test]
    fn revived_node_fast_adopts_out_mis_under_surviving_dominator() {
        let g = generators::path(2);
        let config = SimConfig::new(ChannelModel::Cd)
            .with_faults(FaultPlan::none().with_recovery(1, 4, 5))
            .with_convergence(ConvergencePolicy::new(2 * E));
        let report = Simulator::new(&g, config).run(|v, _| {
            RepairingMis::new(claim_config(), move |_rng: &mut NodeRng| {
                Claim::new(if v == 0 {
                    NodeStatus::InMis
                } else {
                    NodeStatus::OutMis
                })
            })
        });
        assert!(report.completed);
        assert_eq!(report.faulty, vec![false, false]);
        // Node 1 went down at round 4 and was rebuilt at round 5; its first
        // chance to hear node 0's cover is round 6, where it adopts
        // out-MIS — converged one round after the last fault.
        assert_eq!(report.statuses[1], NodeStatus::OutMis);
        assert_eq!(report.converged_at, Some(6));
        assert_eq!(report.meters[1].decided_at, Some(6));
    }

    /// `monitor_epochs` retires a stable configuration without a policy:
    /// the out-MIS node leaves after k covered epochs, the in-MIS node one
    /// cover later, and the run completes on its own.
    #[test]
    fn monitor_epochs_retire_a_stable_configuration() {
        let g = generators::path(2);
        let config = SimConfig::new(ChannelModel::Cd).with_max_rounds(200);
        let report = Simulator::new(&g, config).run(|v, _| {
            RepairingMis::new(
                claim_config().with_monitor_epochs(3),
                move |_rng: &mut NodeRng| {
                    Claim::new(if v == 0 {
                        NodeStatus::InMis
                    } else {
                        NodeStatus::OutMis
                    })
                },
            )
        });
        assert!(report.completed, "monitors never retired");
        assert_eq!(report.statuses[0], NodeStatus::InMis);
        assert_eq!(report.statuses[1], NodeStatus::OutMis);
        // In-MIS outlives out-MIS: it must keep covering until its
        // dependants are gone.
        let f0 = report.meters[0].finished_at.unwrap();
        let f1 = report.meters[1].finished_at.unwrap();
        assert!(f0 > f1, "in-MIS retired at {f0}, before out-MIS at {f1}");
    }

    /// End-to-end repair with the real CD schedule as the inner machine:
    /// crash-then-recover a node on corpus graphs and require the run to
    /// re-converge, with the population identity intact on every round.
    fn repair_run(n: usize, graph_kind: u8, seed: u64) -> (RunReport, mis_graphs::Graph) {
        use crate::cd::CdMis;
        use crate::params::CdParams;
        let g = match graph_kind {
            0 => generators::path(n),
            1 => generators::star(n),
            2 => generators::cycle(n),
            _ => generators::clique(n),
        };
        let params = CdParams::for_n(32);
        let config = RepairConfig::for_cd(params.total_rounds());
        let e = config.epoch_len();
        let sim = SimConfig::new(ChannelModel::Cd)
            .with_seed(seed)
            .with_faults(FaultPlan::none().with_recovery(0, e + 1, e + e / 2))
            .with_convergence(ConvergencePolicy::new(3 * e))
            .with_max_rounds(400 * e)
            .with_round_metrics();
        let report = Simulator::new(&g, sim)
            .run(|_, _| RepairingMis::new(config, move |_rng: &mut NodeRng| CdMis::new(params)));
        (report, g)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]

        /// Satellite invariant: a crash-then-recover run of the self-healing
        /// wrapper re-converges, and nodes leaving and re-entering the
        /// decided set never unbalance the per-round population identity.
        #[test]
        fn crash_recover_runs_reconverge_with_balanced_populations(
            n in 4usize..10,
            graph_kind in 0u8..4,
            seed in 0u64..1000,
        ) {
            let (report, g) = repair_run(n, graph_kind, seed);
            prop_assert!(report.completed, "no convergence: {report:?}");
            prop_assert!(report.converged_at.is_some());
            prop_assert!(!report.watchdog_fired);
            prop_assert!(report.is_correct_mis(&g), "{:?}", report.verify_mis(&g));
            for m in report.metrics.as_deref().unwrap() {
                prop_assert_eq!(m.node_count(), g.len() as u32, "round {}", m.round);
                prop_assert!(m.decided <= g.len() as u32);
            }
        }
    }
}
