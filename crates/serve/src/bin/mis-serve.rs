//! The `mis-serve` daemon binary.
//!
//! ```text
//! mis-serve [--addr 127.0.0.1:7700] [--cache-dir DIR] [--workers N] [--queue-cap N]
//! ```
//!
//! Serves the job API until SIGTERM/SIGINT, then drains gracefully:
//! queued and running jobs finish, new submissions get `503`, and the
//! process exits 0 after writing the aggregate `manifest.json`.

use mis_serve::{signal, ServeConfig, Server};
use std::path::PathBuf;
use std::process::exit;
use std::time::Duration;

const USAGE: &str =
    "usage: mis-serve [--addr HOST:PORT] [--cache-dir DIR] [--workers N] [--queue-cap N]

Serve MIS simulations over HTTP (see docs/SERVE.md):
  POST /jobs            submit an experiment or sim request (content-addressed)
  GET  /jobs/:id        poll a job
  GET  /jobs/:id/stream follow live JSONL trace frames (chunked)
  GET  /stats           hit/miss/cost accounting

defaults: --addr 127.0.0.1:7700, --cache-dir <tmp>/mis-serve-cache, --workers 2, --queue-cap 64";

fn main() {
    let mut cfg = ServeConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--addr" => cfg.addr = req(&mut args, "--addr"),
            "--cache-dir" => cfg.cache_dir = Some(PathBuf::from(req(&mut args, "--cache-dir"))),
            "--workers" => cfg.workers = parse_num(&req(&mut args, "--workers"), "--workers"),
            "--queue-cap" => {
                cfg.queue_capacity = parse_num(&req(&mut args, "--queue-cap"), "--queue-cap")
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => die(&format!("unknown option `{other}`")),
        }
    }

    signal::install();
    let server = match Server::bind(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("mis-serve: bind failed: {e}");
            exit(1);
        }
    };
    let addr = server.local_addr().expect("bound listener has an address");
    println!("mis-serve listening on http://{addr}");

    // Relay OS signals into the server's drain flag. The accept loop also
    // polls `signal::requested()` directly; this thread just makes the
    // worker condvar wake promptly.
    let handle = server.handle();
    std::thread::spawn(move || loop {
        if signal::requested() {
            handle.shutdown();
            return;
        }
        std::thread::sleep(Duration::from_millis(50));
    });

    match server.run() {
        Ok(summary) => {
            println!(
                "mis-serve drained: {} jobs executed, {} hits, {} misses",
                summary.jobs_done, summary.hits, summary.misses
            );
        }
        Err(e) => {
            eprintln!("mis-serve: server error: {e}");
            exit(1);
        }
    }
}

fn req(args: &mut impl Iterator<Item = String>, flag: &str) -> String {
    args.next()
        .unwrap_or_else(|| die(&format!("{flag} requires a value")))
}

fn parse_num(value: &str, flag: &str) -> usize {
    value
        .parse()
        .unwrap_or_else(|_| die(&format!("{flag} expects a number, got `{value}`")))
}

fn die(msg: &str) -> ! {
    eprintln!("mis-serve: {msg}\n{USAGE}");
    exit(2)
}
