//! Run outcomes: statuses, energy ledgers, and verification helpers.

use crate::energy::EnergyMeter;
use crate::metrics::{ChannelRoundMetrics, RoundMetrics};
use crate::model::{ChannelModel, NodeStatus};
use mis_graphs::{mis, parallel, Graph, MisViolation};
use serde::{Deserialize, Serialize};

/// CSR weight (`n + 2m`) at which [`RunReport::verify_mis`] switches from
/// the sequential scan to the sharded parallel verifier. Below this the
/// scan finishes in well under a millisecond and pool dispatch would only
/// add noise; above it the parallel backend's speedup pays for itself
/// (the `bench_mis_parallel` floors are measured far above this point).
const VERIFY_PAR_THRESHOLD: usize = 1 << 20;

/// Worker count for threshold-triggered parallel verification: the host's
/// available parallelism, capped so verification never oversubscribes a
/// trial harness that is already running trials on most cores.
fn verify_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8)
}

/// The result of one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Final status of every node.
    pub statuses: Vec<NodeStatus>,
    /// Per-node energy ledgers.
    pub meters: Vec<EnergyMeter>,
    /// Fault mask: `faulty[v]` is true iff node `v` was a jammer or crashed
    /// during the run. Empty (length 0) for runs whose
    /// [`FaultPlan`](crate::FaultPlan) had neither — use
    /// [`RunReport::is_faulty`] rather than indexing directly. Faulty nodes
    /// are exempted from MIS verification: they cannot be required to
    /// decide, and their neighbors cannot be required to cover them.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub faulty: Vec<bool>,
    /// Round complexity: rounds elapsed until the last node finished (or the
    /// cap, for incomplete runs).
    pub rounds: u64,
    /// Whether every node finished before `max_rounds`, or — for runs ended
    /// by a [`ConvergencePolicy`](crate::ConvergencePolicy) — whether the
    /// run converged and was stopped early.
    pub completed: bool,
    /// First round at or after the last scheduled fault where the induced
    /// live-subgraph MIS became correct *and stayed correct* through the end
    /// of the run. `None` for runs that never converged, and for runs
    /// without convergence tracking (no recovery clauses and no
    /// [`ConvergencePolicy`](crate::ConvergencePolicy)).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub converged_at: Option<u64>,
    /// Whether the quiescence watchdog of a
    /// [`ConvergencePolicy`](crate::ConvergencePolicy) aborted the run
    /// because it failed to re-converge within the budget.
    #[serde(default, skip_serializing_if = "std::ops::Not::not")]
    pub watchdog_fired: bool,
    /// Channel model the run used.
    pub channel: ChannelModel,
    /// Master seed of the run.
    pub seed: u64,
    /// Resolved RADIO-CONGEST message budget (bits).
    pub message_bits: u32,
    /// Per-round metrics timeline, one record per *processed* round.
    ///
    /// `None` unless the run was configured with
    /// [`SimConfig::with_round_metrics`](crate::SimConfig::with_round_metrics).
    /// Rounds in which every node slept are skipped by the engine and
    /// produce no record; see [`crate::metrics`] for the counting
    /// conventions.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub metrics: Option<Vec<RoundMetrics>>,
    /// Per-(round, channel) metrics of a multichannel run, one record per
    /// channel per processed round (channels ascending within a round).
    ///
    /// `None` unless the run collected round metrics **and** was configured
    /// with [`SimConfig::channels`](crate::SimConfig::channels) `> 1` —
    /// single-channel reports omit the field entirely, keeping their
    /// stable-JSON bytes identical to pre-multichannel output.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub channel_metrics: Option<Vec<ChannelRoundMetrics>>,
}

impl RunReport {
    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.statuses.len()
    }

    /// Whether the run had zero nodes.
    pub fn is_empty(&self) -> bool {
        self.statuses.is_empty()
    }

    /// The round-metrics timeline, if collected (empty slice otherwise).
    pub fn metrics_timeline(&self) -> &[RoundMetrics] {
        self.metrics.as_deref().unwrap_or(&[])
    }

    /// Membership mask of the computed set (`status == InMis`).
    pub fn mis_mask(&self) -> Vec<bool> {
        self.statuses
            .iter()
            .map(|&s| s == NodeStatus::InMis)
            .collect()
    }

    /// Energy complexity of the run: max awake rounds over all nodes.
    pub fn max_energy(&self) -> u64 {
        self.meters.iter().map(|m| m.energy()).max().unwrap_or(0)
    }

    /// Mean awake rounds per node (node-averaged awake complexity).
    pub fn avg_energy(&self) -> f64 {
        if self.meters.is_empty() {
            0.0
        } else {
            self.meters.iter().map(|m| m.energy()).sum::<u64>() as f64 / self.meters.len() as f64
        }
    }

    /// Max transmit rounds over all nodes.
    pub fn max_transmissions(&self) -> u64 {
        self.meters
            .iter()
            .map(|m| m.transmit_rounds)
            .max()
            .unwrap_or(0)
    }

    /// Max listen rounds over all nodes.
    pub fn max_listens(&self) -> u64 {
        self.meters
            .iter()
            .map(|m| m.listen_rounds)
            .max()
            .unwrap_or(0)
    }

    /// Whether node `v` was faulty (a jammer, or crashed) during the run.
    pub fn is_faulty(&self, v: usize) -> bool {
        self.faulty.get(v).copied().unwrap_or(false)
    }

    /// Whether the run had any faulty (jammer or crashed) nodes.
    pub fn has_faulty(&self) -> bool {
        self.faulty.iter().any(|&f| f)
    }

    /// Number of *non-faulty* nodes still undecided at the end. Jammers and
    /// crashed nodes never get to decide and are not counted against the
    /// protocol.
    pub fn undecided_count(&self) -> usize {
        self.statuses
            .iter()
            .enumerate()
            .filter(|&(v, s)| !s.is_decided() && !self.is_faulty(v))
            .count()
    }

    /// Whether the run completed with every non-faulty node decided and the
    /// output is a maximal independent set of the subgraph induced by the
    /// non-faulty nodes (for fault-free runs: of `graph` itself).
    ///
    /// # Panics
    ///
    /// Panics if `graph` has a different node count than the run.
    pub fn is_correct_mis(&self, graph: &Graph) -> bool {
        assert_eq!(graph.len(), self.len(), "graph/run size mismatch");
        self.verify_mis(graph).is_ok()
    }

    /// Detailed verification: `Ok` iff [`RunReport::is_correct_mis`].
    ///
    /// Faulty nodes (jammers, crashed nodes) are exempt: they need not
    /// decide, their `InMis` claims are ignored, and a non-faulty node is
    /// considered covered only by a *non-faulty* `InMis` neighbor — i.e.
    /// the check is MIS-ness on the subgraph induced by non-faulty nodes.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first failure: an
    /// incomplete run, an undecided node, or an MIS violation.
    pub fn verify_mis(&self, graph: &Graph) -> Result<(), String> {
        // Large runs (10^6+ CSR cells) get the sharded parallel verifier;
        // it reports byte-identical results, so the switch is invisible
        // beyond wall-clock.
        let big = graph.len() + 2 * graph.edge_count() >= VERIFY_PAR_THRESHOLD;
        self.verify_mis_with(graph, big)
    }

    /// [`RunReport::verify_mis`] with the backend pinned: `false` forces
    /// the sequential scan, `true` the sharded parallel verifier
    /// ([`mis_graphs::parallel::verify_mis_par`] /
    /// [`verify_mis_induced_par`](mis_graphs::parallel::verify_mis_induced_par)).
    /// Both backends return identical results — [`RunReport::verify_mis`]
    /// picks by graph size purely for wall-clock.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first failure: an
    /// incomplete run, an undecided node, or an MIS violation.
    pub fn verify_mis_with(&self, graph: &Graph, parallel_backend: bool) -> Result<(), String> {
        if !self.completed {
            return Err(format!("run hit the round cap at {} rounds", self.rounds));
        }
        if let Some(v) = self
            .statuses
            .iter()
            .enumerate()
            .position(|(v, s)| !s.is_decided() && !self.is_faulty(v))
        {
            return Err(format!("node {v} finished undecided"));
        }
        if !self.has_faulty() {
            let mask = self.mis_mask();
            let result = if parallel_backend {
                parallel::verify_mis_par(graph, &mask, verify_threads())
            } else {
                mis::verify_mis(graph, &mask)
            };
            return result.map_err(|e| e.to_string());
        }
        // Fault-aware check: MIS-ness on the induced non-faulty subgraph.
        // Faulty nodes' InMis claims are passed through as-is — the
        // induced verifiers ignore a non-healthy node's membership.
        let claims: Vec<bool> = self
            .statuses
            .iter()
            .map(|&s| s == NodeStatus::InMis)
            .collect();
        let healthy: Vec<bool> = (0..graph.len()).map(|v| !self.is_faulty(v)).collect();
        let result = if parallel_backend {
            parallel::verify_mis_induced_par(graph, &claims, &healthy, verify_threads())
        } else {
            mis::verify_mis_induced(graph, &claims, &healthy)
        };
        result.map_err(|e| match e {
            MisViolation::NotIndependent { u, v } => {
                format!("independence violated: adjacent nodes {u} and {v} are both in the set")
            }
            MisViolation::NotDominated { v } => {
                format!("maximality violated: node {v} has no non-faulty neighbor in the set")
            }
            other => other.to_string(),
        })
    }

    /// Serializes the report to its *stable* JSON form — the canonical byte
    /// representation used by the experiment result cache.
    ///
    /// Stability contract: within one crate version, serializing equal
    /// reports always yields identical bytes (single-line JSON, fields in
    /// declaration order, default-valued optional fields omitted, floats in
    /// shortest round-trip form), and
    /// [`from_stable_json`](RunReport::from_stable_json) restores a report
    /// that compares equal — so a cached report re-serializes to the exact
    /// bytes that were stored. Cross-version stability is *not* promised;
    /// cache layers must salt their keys with the crate version instead.
    ///
    /// # Errors
    ///
    /// Returns the underlying serializer error (not expected in practice —
    /// the type contains no non-serializable values).
    pub fn to_stable_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string(self)
    }

    /// Parses a report from its [stable JSON](RunReport::to_stable_json)
    /// form.
    ///
    /// # Errors
    ///
    /// Returns the underlying parse error for malformed or incompatible
    /// input.
    pub fn from_stable_json(s: &str) -> Result<RunReport, serde_json::Error> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(statuses: Vec<NodeStatus>, energies: Vec<u64>) -> RunReport {
        RunReport {
            meters: energies
                .iter()
                .map(|&e| EnergyMeter {
                    transmit_rounds: e / 2,
                    listen_rounds: e - e / 2,
                    decided_at: Some(0),
                    finished_at: Some(0),
                })
                .collect(),
            statuses,
            faulty: Vec::new(),
            rounds: 10,
            completed: true,
            converged_at: None,
            watchdog_fired: false,
            channel: ChannelModel::Cd,
            seed: 0,
            message_bits: 16,
            metrics: None,
            channel_metrics: None,
        }
    }

    #[test]
    fn summaries() {
        use NodeStatus::*;
        let r = report(vec![InMis, OutMis, InMis], vec![3, 7, 2]);
        assert_eq!(r.max_energy(), 7);
        assert!((r.avg_energy() - 4.0).abs() < 1e-12);
        assert_eq!(r.mis_mask(), vec![true, false, true]);
        assert_eq!(r.undecided_count(), 0);
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn verify_against_graph() {
        use NodeStatus::*;
        let g = mis_graphs::generators::path(3);
        let good = report(vec![InMis, OutMis, InMis], vec![1, 1, 1]);
        assert!(good.is_correct_mis(&g));
        assert!(good.verify_mis(&g).is_ok());

        let bad = report(vec![InMis, InMis, OutMis], vec![1, 1, 1]);
        assert!(!bad.is_correct_mis(&g));
        assert!(bad.verify_mis(&g).unwrap_err().contains("adjacent"));

        let undecided = report(vec![InMis, OutMis, Undecided], vec![1, 1, 1]);
        assert!(!undecided.is_correct_mis(&g));
        assert!(undecided.verify_mis(&g).unwrap_err().contains("undecided"));

        let mut incomplete = good.clone();
        incomplete.completed = false;
        assert!(incomplete.verify_mis(&g).unwrap_err().contains("round cap"));
    }

    #[test]
    fn faulty_nodes_are_exempt_from_verification() {
        use NodeStatus::*;
        // Path 0-1-2-3: node 2 crashed undecided. The induced subgraph on
        // {0, 1, 3} is 0-1 plus isolated 3; {0, 3} is a valid MIS of it.
        let g = mis_graphs::generators::path(4);
        let mut r = report(vec![InMis, OutMis, Undecided, InMis], vec![1; 4]);
        r.faulty = vec![false, false, true, false];
        assert!(r.is_faulty(2) && r.has_faulty());
        assert_eq!(r.undecided_count(), 0);
        assert!(r.verify_mis(&g).is_ok());

        // Without the fault mask the same statuses fail (node 2 undecided).
        let plain = report(vec![InMis, OutMis, Undecided, InMis], vec![1; 4]);
        assert!(!plain.has_faulty());
        assert_eq!(plain.undecided_count(), 1);
        assert!(plain.verify_mis(&g).unwrap_err().contains("undecided"));

        // A faulty node's InMis claim is ignored: node 1 (crashed) claims
        // InMis next to node 0, but independence is checked on survivors.
        let mut r = report(vec![InMis, InMis, OutMis, InMis], vec![1; 4]);
        r.faulty = vec![false, true, false, false];
        assert!(r.verify_mis(&g).is_ok());

        // Coverage must come from a non-faulty neighbor: node 2 is OutMis
        // and its only InMis neighbor is faulty node 1 — while node 3,
        // also a neighbor, stays out. Maximality fails.
        let mut r = report(vec![InMis, InMis, OutMis, OutMis], vec![1; 4]);
        r.faulty = vec![false, true, false, false];
        let err = r.verify_mis(&g).unwrap_err();
        assert!(err.contains("maximality"), "{err}");

        // Adjacent non-faulty InMis nodes still violate independence.
        let mut r = report(vec![InMis, OutMis, InMis, InMis], vec![1; 4]);
        r.faulty = vec![false, true, false, false];
        let err = r.verify_mis(&g).unwrap_err();
        assert!(err.contains("independence"), "{err}");
    }

    #[test]
    fn verifier_backends_agree() {
        use NodeStatus::*;
        let g = mis_graphs::generators::path(4);
        let mut cases = vec![
            report(vec![InMis, OutMis, InMis, OutMis], vec![1; 4]), // valid
            report(vec![InMis, InMis, OutMis, OutMis], vec![1; 4]), // not independent
            report(vec![InMis, OutMis, OutMis, OutMis], vec![1; 4]), // not dominated
        ];
        let mut faulty = report(vec![InMis, InMis, OutMis, OutMis], vec![1; 4]);
        faulty.faulty = vec![false, true, false, false];
        cases.push(faulty); // induced check, maximality fails at node 2
        for r in &cases {
            let seq = r.verify_mis_with(&g, false);
            let par = r.verify_mis_with(&g, true);
            assert_eq!(seq, par);
            // The size-based default resolves to one of the two.
            assert_eq!(r.verify_mis(&g), seq);
        }
    }

    #[test]
    fn empty_report() {
        let r = report(vec![], vec![]);
        assert!(r.is_empty());
        assert_eq!(r.max_energy(), 0);
        assert_eq!(r.avg_energy(), 0.0);
    }

    #[test]
    fn serde_roundtrip() {
        use NodeStatus::*;
        let mut r = report(vec![InMis, OutMis], vec![2, 3]);
        r.converged_at = Some(6);
        r.watchdog_fired = true;
        let json = serde_json::to_string(&r).unwrap();
        let back: RunReport = serde_json::from_str(&json).unwrap();
        assert_eq!(r, back);
    }

    #[test]
    fn stable_json_roundtrip_is_byte_identical() {
        use NodeStatus::*;
        let mut r = report(vec![InMis, OutMis], vec![2, 3]);
        r.converged_at = Some(6);
        let bytes = r.to_stable_json().unwrap();
        let back = RunReport::from_stable_json(&bytes).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.to_stable_json().unwrap(), bytes);
    }

    #[test]
    fn pre_recovery_reports_deserialize_with_convergence_defaults() {
        // PR 2 reports predate convergence tracking; serde must default the
        // new fields, and default-valued fields must not be serialized.
        let json = r#"{"statuses":[],"meters":[],"rounds":3,"completed":true,
            "channel":"Cd","seed":1,"message_bits":16}"#;
        let r: RunReport = serde_json::from_str(json).unwrap();
        assert_eq!(r.converged_at, None);
        assert!(!r.watchdog_fired);
        let out = serde_json::to_string(&r).unwrap();
        assert!(!out.contains("converged_at"), "{out}");
        assert!(!out.contains("watchdog_fired"), "{out}");
        // Pre-multichannel reports likewise lack channel metrics; the
        // field defaults to None and stays out of single-channel JSON.
        assert_eq!(r.channel_metrics, None);
        assert!(!out.contains("channel_metrics"), "{out}");
    }

    #[test]
    fn channel_metrics_roundtrip_when_present() {
        use NodeStatus::*;
        let mut r = report(vec![InMis, OutMis], vec![2, 3]);
        r.channel_metrics = Some(vec![ChannelRoundMetrics {
            round: 1,
            channel: 1,
            jammed: true,
            transmitting: 2,
            listening: 1,
            collisions: 1,
            receptions: 0,
        }]);
        let json = r.to_stable_json().unwrap();
        assert!(json.contains("channel_metrics"), "{json}");
        let back = RunReport::from_stable_json(&json).unwrap();
        assert_eq!(back, r);
    }
}
