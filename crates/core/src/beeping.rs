//! The beeping-model variant of Algorithm 1 (§3.1).
//!
//! The paper observes that Algorithm 1 performs only unary communication
//! and only tests the predicate "heard a 1 or a collision", which in the
//! beeping model becomes "heard a beep". The state machine is therefore
//! *identical*; this module exists to make the claim explicit in the API
//! and in the test suite.
//!
//! Run [`BeepingMis`] under [`radio_netsim::ChannelModel::Beeping`]; the
//! energy and round complexities of Theorem 2 carry over unchanged.

use crate::cd::CdMis;
use crate::params::CdParams;

/// Algorithm 1 interpreted in the beeping model ("transmit 1" ↦ "beep",
/// "heard 1 or collision" ↦ "heard a beep").
pub type BeepingMis = CdMis;

/// Constructs a beeping-model MIS node (identical machine to
/// [`CdMis::new`]; see the module docs).
pub fn beeping_mis(params: CdParams) -> BeepingMis {
    CdMis::new(params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mis_graphs::generators;
    use radio_netsim::{ChannelModel, SimConfig, Simulator};

    #[test]
    fn beeping_solves_same_graphs_as_cd() {
        let params = CdParams::for_n(128);
        for g in [
            generators::gnp(128, 0.05, 4),
            generators::star(64),
            generators::grid2d(8, 8),
        ] {
            let report = Simulator::new(&g, SimConfig::new(ChannelModel::Beeping).with_seed(2))
                .run(|_, _| beeping_mis(params));
            assert!(report.is_correct_mis(&g), "{:?}", report.verify_mis(&g));
        }
    }

    #[test]
    fn beeping_energy_matches_cd_asymptotics() {
        // Same machine, same schedule: energy in beeping within a small
        // factor of CD energy on the same graph.
        let g = generators::gnp(256, 0.04, 8);
        let params = CdParams::for_n(256);
        let beep = Simulator::new(&g, SimConfig::new(ChannelModel::Beeping).with_seed(3))
            .run(|_, _| beeping_mis(params));
        let cd = Simulator::new(&g, SimConfig::new(ChannelModel::Cd).with_seed(3))
            .run(|_, _| CdMis::new(params));
        assert!(beep.is_correct_mis(&g));
        assert!(cd.is_correct_mis(&g));
        let (be, ce) = (beep.max_energy() as f64, cd.max_energy() as f64);
        assert!(be <= 3.0 * ce && ce <= 3.0 * be, "beep {be} vs cd {ce}");
    }
}
