//! `mis-sim trace`: stream the events of a single run as JSON Lines.

use super::radio::{radio_channel, run_radio_traced};
use crate::args::TraceOpts;
use mis_graphs::{io, Graph};
use radio_netsim::{EventMask, FilteredTrace, JsonlTrace, RunReport, SimConfig};
use std::io::Write;

/// Executes `mis-sim trace`.
///
/// # Errors
///
/// Returns a message on graph IO failures, on a wired CONGEST algorithm
/// (which has no radio trace), or on output-write failures.
pub fn execute(opts: &TraceOpts) -> Result<String, String> {
    let graph = match &opts.graph_path {
        Some(path) => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            io::from_text(&text).map_err(|e| format!("cannot parse {path}: {e}"))?
        }
        None => opts.family.generate(opts.n, opts.seed),
    };
    let channel = radio_channel(opts.algorithm).ok_or_else(|| {
        format!(
            "{} is a wired CONGEST algorithm; `trace` supports radio algorithms only",
            opts.algorithm.label()
        )
    })?;
    let mut config = SimConfig::new(channel)
        .with_seed(opts.seed)
        .with_channels(opts.channels)
        .with_faults(opts.faults.clone())
        .with_engine_mode(opts.engine)
        .with_threads(opts.threads);
    if let Some(cap) = opts.max_rounds {
        config = config.with_max_rounds(cap);
    }

    match &opts.out {
        Some(path) => {
            let file =
                std::fs::File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?;
            let (report, written, _) =
                trace_to(&graph, opts, config, std::io::BufWriter::new(file))?;
            Ok(format!(
                "traced {written} events → {path}\n{} on {} nodes: {} rounds, completed = {}, MIS correct = {}\n",
                opts.algorithm.label(),
                graph.len(),
                report.rounds,
                report.completed,
                report.is_correct_mis(&graph),
            ))
        }
        None => {
            let (_, _, bytes) = trace_to(&graph, opts, config, Vec::new())?;
            String::from_utf8(bytes).map_err(|e| format!("non-UTF8 trace output: {e}"))
        }
    }
}

/// Runs the traced simulation, streaming filtered events into `writer`.
/// Returns the run report, the number of events written, and the writer.
fn trace_to<W: Write + Send>(
    graph: &Graph,
    opts: &TraceOpts,
    config: SimConfig,
    writer: W,
) -> Result<(RunReport, u64, W), String> {
    let mask = match &opts.events {
        Some(kinds) => EventMask::only(kinds.iter().copied()),
        None => EventMask::ALL,
    };
    let mut sink = FilteredTrace::new(JsonlTrace::new(writer).with_mask(mask));
    if let Some(nodes) = &opts.nodes {
        sink = sink.with_nodes(nodes.iter().copied());
    }
    if opts.from.is_some() || opts.to.is_some() {
        sink = sink.with_rounds(opts.from.unwrap_or(0)..opts.to.unwrap_or(u64::MAX));
    }
    let report = run_radio_traced(
        graph,
        opts.algorithm,
        config,
        opts.paper_constants,
        opts.conserve,
        &mut sink,
    )?;
    let jsonl = sink.into_inner();
    let written = jsonl.events_written();
    let writer = jsonl
        .into_inner()
        .map_err(|e| format!("trace write failure: {e}"))?;
    Ok((report, written, writer))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::{Algorithm, TraceOpts};
    use radio_netsim::EventKind;

    fn small(algorithm: Algorithm) -> TraceOpts {
        TraceOpts {
            algorithm,
            n: 32,
            ..TraceOpts::default()
        }
    }

    #[test]
    fn streams_parseable_jsonl_to_stdout() {
        let out = execute(&small(Algorithm::Cd)).unwrap();
        assert!(!out.trim().is_empty());
        for line in out.lines() {
            let v: serde_json::Value = serde_json::from_str(line).unwrap();
            assert!(v["event"].is_string(), "{line}");
        }
    }

    #[test]
    fn event_filter_restricts_kinds() {
        let mut opts = small(Algorithm::Cd);
        opts.events = Some(vec![EventKind::RoundMetrics]);
        let out = execute(&opts).unwrap();
        assert!(!out.trim().is_empty());
        for line in out.lines() {
            let v: serde_json::Value = serde_json::from_str(line).unwrap();
            assert_eq!(v["event"], "RoundEnd", "{line}");
            assert!(v["metrics"]["round"].is_u64(), "{line}");
        }
    }

    #[test]
    fn node_and_round_filters_apply() {
        let mut opts = small(Algorithm::Cd);
        opts.events = Some(vec![EventKind::Acted]);
        opts.nodes = Some(vec![3]);
        opts.from = Some(0);
        opts.to = Some(4);
        let out = execute(&opts).unwrap();
        for line in out.lines() {
            let v: serde_json::Value = serde_json::from_str(line).unwrap();
            assert_eq!(v["node"], 3, "{line}");
            assert!(v["round"].as_u64().unwrap() < 4, "{line}");
        }
    }

    #[test]
    fn writes_to_file_with_summary() {
        let dir = std::env::temp_dir().join("mis_cli_test_trace");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.jsonl");
        let mut opts = small(Algorithm::Beeping);
        opts.out = Some(path.to_string_lossy().into_owned());
        let summary = execute(&opts).unwrap();
        assert!(summary.contains("traced"), "{summary}");
        assert!(summary.contains("MIS correct = true"), "{summary}");
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.lines().count() > 0);
    }

    #[test]
    fn dense_engine_streams_an_identical_trace() {
        use radio_netsim::EngineMode;
        let mut opts = small(Algorithm::Cd);
        opts.faults = radio_netsim::FaultPlan::none().with_wake_window(16);
        let sparse = execute(&opts).unwrap();
        opts.engine = EngineMode::Dense;
        let dense = execute(&opts).unwrap();
        assert_eq!(sparse, dense, "--engine must never change the stream");
    }

    #[test]
    fn threaded_run_streams_an_identical_trace() {
        let mut opts = small(Algorithm::Cd);
        opts.n = 96;
        opts.faults = radio_netsim::FaultPlan::none().with_wake_window(16);
        let serial = execute(&opts).unwrap();
        opts.threads = 4;
        let threaded = execute(&opts).unwrap();
        assert_eq!(serial, threaded, "--threads must never change the stream");
    }

    #[test]
    fn traces_multichannel_runs_under_jamming() {
        let mut opts = small(Algorithm::Multichannel);
        opts.n = 16;
        opts.channels = 2;
        opts.faults = radio_netsim::FaultPlan::none().with_adaptive_channel_jam(1);
        opts.events = Some(vec![EventKind::RoundMetrics]);
        let out = execute(&opts).unwrap();
        assert!(!out.trim().is_empty());
        for line in out.lines() {
            let v: serde_json::Value = serde_json::from_str(line).unwrap();
            assert_eq!(v["event"], "RoundEnd", "{line}");
        }
    }

    #[test]
    fn conserved_trace_streams_and_decides_correctly() {
        let dir = std::env::temp_dir().join("mis_cli_test_trace_conserve");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("c.jsonl");
        let mut opts = small(Algorithm::Cd);
        opts.conserve = true;
        opts.out = Some(path.to_string_lossy().into_owned());
        let summary = execute(&opts).unwrap();
        assert!(summary.contains("MIS correct = true"), "{summary}");
    }

    #[test]
    fn rejects_conserve_on_multichannel() {
        let mut opts = small(Algorithm::Multichannel);
        opts.n = 16;
        opts.channels = 2;
        opts.conserve = true;
        let err = execute(&opts).unwrap_err();
        assert!(err.contains("--conserve"), "{err}");
    }

    #[test]
    fn rejects_congest_algorithms() {
        let err = execute(&small(Algorithm::CongestGhaffari)).unwrap_err();
        assert!(err.contains("radio"), "{err}");
    }

    #[test]
    fn fault_events_appear_in_the_stream() {
        use radio_netsim::FaultPlan;
        let mut opts = small(Algorithm::Cd);
        opts.faults = FaultPlan::none().with_random_jammers(2).with_loss(0.1);
        // Nodes bordering a jammer can never decide in the CD model; cap
        // the run so the trace terminates.
        opts.max_rounds = Some(400);
        opts.events = Some(vec![EventKind::Fault]);
        let out = execute(&opts).unwrap();
        // Two jammers announce themselves up-front.
        let mut jams = 0;
        for line in out.lines() {
            let v: serde_json::Value = serde_json::from_str(line).unwrap();
            assert_eq!(v["event"], "Fault", "{line}");
            if v["fault"] == "Jam" {
                jams += 1;
            }
        }
        assert_eq!(jams, 2);
    }
}
