//! Shared experiment infrastructure: configuration, output formatting, and
//! instrumented-run helpers.

use mis_stats::{LineChart, Table};
use radio_mis::nocd::{EnergyBreakdown, NoCdMis, PhaseRecord};
use radio_mis::params::NoCdParams;
use radio_netsim::{
    Action, ChannelModel, Feedback, NodeRng, NodeStatus, Protocol, RunReport, SimConfig, Simulator,
};
use std::sync::Mutex;

/// Experiment configuration.
#[derive(Debug, Clone, Copy)]
pub struct ExpConfig {
    /// Shrinks sweeps and trial counts for CI / smoke testing.
    pub quick: bool,
    /// Master seed; every experiment derives all randomness from it.
    pub seed: u64,
    /// Worker threads for the intra-round engine stages of each
    /// simulation (`--threads`). Every count produces byte-identical
    /// results, so this is *not* a cache ingredient: warm cache entries
    /// stay valid across thread counts (`SimConfig::fingerprint` is
    /// thread-invariant by the same contract).
    pub threads: usize,
}

impl Default for ExpConfig {
    fn default() -> Self {
        ExpConfig {
            quick: false,
            seed: 0x00E1_7E55,
            threads: 1,
        }
    }
}

impl ExpConfig {
    /// A quick-mode config (used by the test suite).
    ///
    /// ```
    /// use mis_experiments::ExpConfig;
    ///
    /// let quick = ExpConfig::quick(7);
    /// assert!(quick.quick);
    /// // Sweeps truncate to three sizes and trial counts shrink to a third.
    /// assert_eq!(quick.ns(6, 12), vec![64, 128, 256]);
    /// assert_eq!(quick.trials(30), 10);
    ///
    /// let full = ExpConfig::default();
    /// assert_eq!(full.ns(6, 8), vec![64, 128, 256]);
    /// assert_eq!(full.trials(30), 30);
    /// ```
    pub fn quick(seed: u64) -> ExpConfig {
        ExpConfig {
            quick: true,
            seed,
            threads: 1,
        }
    }

    /// Powers of two `2^min ..= 2^max`, truncated in quick mode.
    pub fn ns(&self, min_exp: u32, max_exp: u32) -> Vec<usize> {
        let max_exp = if self.quick {
            (min_exp + 2).min(max_exp)
        } else {
            max_exp
        };
        (min_exp..=max_exp).map(|k| 1usize << k).collect()
    }

    /// Trial count: `full`, or a third of it (≥ 2) in quick mode.
    pub fn trials(&self, full: usize) -> usize {
        if self.quick {
            (full / 3).max(2)
        } else {
            full
        }
    }
}

/// One captioned table within an experiment's output.
#[derive(Debug, Clone)]
pub struct Section {
    /// Caption rendered above the table.
    pub caption: String,
    /// The data.
    pub table: Table,
}

/// The rendered result of one experiment.
#[derive(Debug, Clone)]
pub struct ExperimentOutput {
    /// Experiment id (`"e1"`, …).
    pub id: &'static str,
    /// Human-readable title.
    pub title: String,
    /// The paper claim being validated (with its reference).
    pub claim: String,
    /// Measured tables.
    pub sections: Vec<Section>,
    /// Measured-vs-claimed conclusions, one bullet each.
    pub findings: Vec<String>,
    /// Figures: (file stem, chart). Written as SVG when the runner is
    /// given `--svg-dir`.
    pub charts: Vec<(String, LineChart)>,
}

impl ExperimentOutput {
    /// Renders the experiment as a markdown fragment for `EXPERIMENTS.md`.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "### {} — {}\n\n",
            self.id.to_uppercase(),
            self.title
        ));
        out.push_str(&format!("**Claim (paper).** {}\n\n", self.claim));
        for sec in &self.sections {
            out.push_str(&format!("*{}*\n\n", sec.caption));
            out.push_str(&sec.table.to_markdown());
            out.push('\n');
        }
        if !self.charts.is_empty() {
            let names: Vec<String> = self
                .charts
                .iter()
                .map(|(stem, _)| format!("`{stem}.svg`"))
                .collect();
            out.push_str(&format!(
                "Figures (with `--svg-dir`): {}.\n\n",
                names.join(", ")
            ));
        }
        if !self.findings.is_empty() {
            out.push_str("**Measured.**\n\n");
            for f in &self.findings {
                out.push_str(&format!("- {f}\n"));
            }
            out.push('\n');
        }
        out
    }
}

/// Instrumentation capture for Algorithm 2 runs: per-node phase records
/// plus cap/timeout flags.
#[derive(Debug, Clone, Default)]
pub struct NoCdInstruments {
    /// Per-node per-phase competition records.
    pub histories: Vec<Vec<PhaseRecord>>,
    /// Per-node energy-cap flags.
    pub capped: Vec<bool>,
    /// Per-node LowDegreeMIS-timeout flags.
    pub ld_timed_out: Vec<bool>,
    /// Per-node per-component energy attribution (Figure 2).
    pub breakdowns: Vec<EnergyBreakdown>,
}

/// Runs Algorithm 2 once while harvesting each node's diagnostics.
pub fn run_nocd_instrumented(
    graph: &mis_graphs::Graph,
    params: NoCdParams,
    seed: u64,
) -> (RunReport, NoCdInstruments) {
    let n = graph.len();
    let cell: Mutex<NoCdInstruments> = Mutex::new(NoCdInstruments {
        histories: vec![Vec::new(); n],
        capped: vec![false; n],
        ld_timed_out: vec![false; n],
        breakdowns: vec![EnergyBreakdown::default(); n],
    });
    struct Harvest<'a> {
        inner: NoCdMis,
        id: usize,
        cell: &'a Mutex<NoCdInstruments>,
    }
    impl Harvest<'_> {
        fn flush(&self) {
            let mut c = self.cell.lock().expect("no poisoning");
            c.histories[self.id] = self.inner.history().to_vec();
            c.capped[self.id] = self.inner.capped();
            c.ld_timed_out[self.id] = self.inner.ld_timed_out();
            c.breakdowns[self.id] = self.inner.energy_breakdown();
        }
    }
    impl Protocol for Harvest<'_> {
        fn act(&mut self, round: u64, rng: &mut NodeRng) -> Action {
            let a = self.inner.act(round, rng);
            if self.inner.finished() || matches!(a, Action::Sleep { .. }) {
                self.flush();
            }
            a
        }
        fn feedback(&mut self, round: u64, fb: Feedback, rng: &mut NodeRng) {
            self.inner.feedback(round, fb, rng);
        }
        fn status(&self) -> NodeStatus {
            self.inner.status()
        }
        fn finished(&self) -> bool {
            self.finished_inner()
        }
    }
    impl Harvest<'_> {
        fn finished_inner(&self) -> bool {
            if self.inner.finished() {
                self.flush();
                true
            } else {
                false
            }
        }
    }
    let report =
        Simulator::new(graph, SimConfig::new(ChannelModel::NoCd).with_seed(seed)).run(|v, _| {
            Harvest {
                inner: NoCdMis::new(params),
                id: v,
                cell: &cell,
            }
        });
    (report, cell.into_inner().expect("no poisoning"))
}

/// An order-preserving collection sink for results produced on the shared
/// scheduler.
///
/// Under the orchestrator, experiments (and sweep cells within one
/// experiment) complete in work-stealing order, which varies run to run.
/// Anything that assembles user-visible output from parallel work must
/// therefore collect through this sink — results are pushed under a lock
/// tagged with their unit index and read back *sorted by index*, never by
/// completion time — or `experiment_results.md` would not be reproducible,
/// let alone byte-identical between cold and warm cache runs.
pub struct OrderedSink<T> {
    slots: Mutex<Vec<(usize, T)>>,
}

impl<T> OrderedSink<T> {
    /// An empty sink.
    pub fn new() -> OrderedSink<T> {
        OrderedSink {
            slots: Mutex::new(Vec::new()),
        }
    }

    /// Records the result of unit `index`. Callable from any thread.
    pub fn push(&self, index: usize, value: T) {
        self.slots
            .lock()
            .expect("no poisoning")
            .push((index, value));
    }

    /// Results collected so far.
    pub fn len(&self) -> usize {
        self.slots.lock().expect("no poisoning").len()
    }

    /// Whether nothing has been collected yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Consumes the sink, returning the values sorted by unit index.
    pub fn into_ordered(self) -> Vec<T> {
        let mut slots = self.slots.into_inner().expect("no poisoning");
        slots.sort_by_key(|&(i, _)| i);
        slots.into_iter().map(|(_, v)| v).collect()
    }
}

impl<T> Default for OrderedSink<T> {
    fn default() -> OrderedSink<T> {
        OrderedSink::new()
    }
}

/// Formats a success-rate as `"97% (29/30)"`.
pub fn pct(successes: usize, total: usize) -> String {
    if total == 0 {
        "n/a".to_string()
    } else {
        format!(
            "{:.0}% ({successes}/{total})",
            100.0 * successes as f64 / total as f64
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mis_graphs::generators;

    #[test]
    fn config_scaling() {
        let full = ExpConfig::default();
        assert_eq!(full.ns(6, 9), vec![64, 128, 256, 512]);
        assert_eq!(full.trials(30), 30);
        let quick = ExpConfig::quick(1);
        assert_eq!(quick.ns(6, 9), vec![64, 128, 256]);
        assert_eq!(quick.trials(30), 10);
        assert_eq!(quick.trials(3), 2);
    }

    #[test]
    fn markdown_rendering() {
        let mut t = Table::new(["x"]);
        t.push_row(["1"]);
        let out = ExperimentOutput {
            id: "e0",
            title: "demo".into(),
            claim: "something holds".into(),
            sections: vec![Section {
                caption: "numbers".into(),
                table: t,
            }],
            findings: vec!["it held".into()],
            charts: Vec::new(),
        };
        let md = out.to_markdown();
        assert!(md.contains("### E0 — demo"));
        assert!(md.contains("**Claim (paper).** something holds"));
        assert!(md.contains("*numbers*"));
        assert!(md.contains("- it held"));
    }

    #[test]
    fn instrumented_run_collects_history() {
        let g = generators::clique(10);
        let params = NoCdParams::for_n(64, 9);
        let (report, inst) = run_nocd_instrumented(&g, params, 7);
        assert!(report.is_correct_mis(&g));
        assert_eq!(inst.histories.len(), 10);
        assert!(inst.histories.iter().any(|h| !h.is_empty()));
    }

    #[test]
    fn pct_formatting() {
        assert_eq!(pct(29, 30), "97% (29/30)");
        assert_eq!(pct(0, 0), "n/a");
    }

    #[test]
    fn ordered_sink_orders_by_unit_index_not_completion_time() {
        // Push in reverse "completion" order from parallel workers; the
        // sink must still read back in unit order.
        use rayon::prelude::*;
        let sink = OrderedSink::new();
        assert!(sink.is_empty());
        (0..16usize).into_par_iter().rev().for_each(|i| {
            sink.push(i, format!("unit-{i}"));
        });
        assert_eq!(sink.len(), 16);
        let ordered = sink.into_ordered();
        let expect: Vec<String> = (0..16).map(|i| format!("unit-{i}")).collect();
        assert_eq!(ordered, expect);
    }
}
