//! `mis-serve`: simulation-as-a-service over the content-addressed
//! experiment cache.
//!
//! The daemon exposes the [`mis_experiments::Orchestrator`] as a shared
//! HTTP job API, turning the cache directory from a per-invocation
//! artifact into a multi-client result store (full API reference:
//! `docs/SERVE.md`):
//!
//! - `POST /jobs` — submit an experiment-cell or simulation request
//!   ([`JobRequest`]). Jobs are content-addressed: the job id *is* the
//!   [`UnitKey`](mis_experiments::UnitKey) hash of the request's canonical
//!   ingredients (graph recipe,
//!   [`SimConfig::fingerprint`](radio_netsim::SimConfig::fingerprint) —
//!   seed, channel model, fault plan, engine mode —, trial count, …). A
//!   warm submission
//!   answers instantly from the cache with the identical payload and zero
//!   simulator runs; a cold one enqueues onto a bounded worker pool with
//!   fair per-client round-robin queueing.
//! - `GET /jobs/:id` — poll a job's [`JobView`].
//! - `GET /jobs/:id/stream` — follow a traced job's live JSONL engine
//!   frames over a chunked response; frames are byte-identical to the
//!   [`JsonlTrace`](radio_netsim::JsonlTrace) file output of the same run.
//! - `GET /stats` — hit/miss/cost accounting ([`StatsView`]), aggregated
//!   per client and persisted as the cache's `manifest.json`.
//!
//! The crate is std-only by design (threads, `std::net`, `std::sync::mpsc`
//! — no async runtime), so the daemon adds no dependencies beyond the
//! workspace's existing serde stack; simulation work itself still fans out
//! on the rayon pools inside `radio-netsim`/`mis-experiments`.
//!
//! ```
//! use mis_serve::{JobRequest, ServeClient, ServeConfig, Server};
//! use std::time::Duration;
//!
//! let dir = std::env::temp_dir().join(format!("mis-serve-doc-{}", std::process::id()));
//! let _ = std::fs::remove_dir_all(&dir);
//! let mut cfg = ServeConfig::default();
//! cfg.addr = "127.0.0.1:0".to_string(); // any free port
//! cfg.cache_dir = Some(dir.clone());
//! let server = Server::bind(cfg).unwrap();
//! let addr = server.local_addr().unwrap();
//! let handle = server.handle();
//! let daemon = std::thread::spawn(move || server.run());
//!
//! let client = ServeClient::new(addr.to_string()).with_client_id("docs");
//! let job = JobRequest::Sim {
//!     algorithm: "cd".to_string(),
//!     family: "path".to_string(),
//!     n: 32,
//!     seed: 7,
//!     trials: 1,
//!     trace: false,
//!     threads: 1,
//! };
//! let cold = client.submit_and_wait(&job, Duration::from_secs(120)).unwrap();
//! assert!(!cold.hit && cold.payload.is_some());
//! let warm = client.submit_and_wait(&job, Duration::from_secs(120)).unwrap();
//! assert!(warm.hit, "second submission must be a content-addressed hit");
//! assert_eq!(warm.payload, cold.payload);
//!
//! handle.shutdown();
//! daemon.join().unwrap().unwrap();
//! let _ = std::fs::remove_dir_all(&dir);
//! ```

#![deny(unsafe_code)]
#![deny(missing_docs)]

pub mod api;
pub mod client;
pub mod http;
pub mod jobs;
pub mod queue;
pub mod server;
pub mod signal;

pub use api::{ClientStats, JobRequest, JobStatus, JobView, StatsView};
pub use client::ServeClient;
pub use server::{ServeConfig, ServeHandle, ServeSummary, Server};
