//! E3 — Theorem 10: no-CD MIS scaling.
//!
//! Sweeps n on constant-average-degree G(n, p), measuring max energy
//! (expect Θ(log²n·loglog n), empirically near-indistinguishable from
//! log²n at these sizes — both are reported), rounds (expect within the
//! O(log³n·log Δ) schedule), and success rate.

use crate::harness::{pct, ExpConfig, ExperimentOutput, Section};
use crate::orchestrator::{Orchestrator, UnitKey};
use mis_graphs::generators::Family;
use mis_stats::fit::{best_fit, fit_model, GrowthModel};
use mis_stats::table::fmt_num;
use mis_stats::{LineChart, Summary, Table};
use radio_mis::nocd::NoCdMis;
use radio_mis::params::NoCdParams;
use radio_netsim::{ChannelModel, SimConfig, Simulator};
use serde::{Deserialize, Serialize};

/// Cached value of the energy-checkpoint cell: quarter-point rows plus the
/// totals the halfway finding is written from.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct CheckpointSample {
    /// (run fraction, round, undecided, awake, cumulative energy).
    rows: Vec<(f64, u64, u32, u32, u64)>,
    /// Final (round, cumulative energy), `None` for an empty timeline.
    last: Option<(u64, u64)>,
    /// First round by which half the total awake budget was spent.
    halfway: u64,
    cost: u64,
}

/// Runs E3.
pub fn run(cfg: &ExpConfig, orch: &Orchestrator) -> ExperimentOutput {
    // The sparse wake-queue engine lifts the full-mode ceiling from 2^11
    // to 2^15 (33k nodes, 16x): the no-CD machine's long sleep phases are
    // exactly the quiet spans the engine now jumps over.
    let ns = cfg.ns(6, if cfg.quick { 8 } else { 15 });
    let trials = cfg.trials(12);
    let mut table = Table::new([
        "n",
        "Δ",
        "energy (mean ± ci)",
        "energy (worst)",
        "rounds (mean)",
        "schedule T",
        "success",
    ]);
    let mut nsf = Vec::new();
    let mut energy_means = Vec::new();
    let mut round_means = Vec::new();
    for &n in &ns {
        let g = Family::GnpAvgDegree(8).generate(n, cfg.seed ^ n as u64);
        let params = NoCdParams::for_n(n, g.max_degree().max(2));
        let stats = orch.trials(
            UnitKey::new("e3", format!("scale/n={n}"))
                .with(
                    "graph",
                    format!(
                        "{}/seed={:#x}",
                        Family::GnpAvgDegree(8).label(),
                        cfg.seed ^ n as u64
                    ),
                )
                .with("alg", "NoCdMis")
                .with("params", format!("{params:?}")),
            &g,
            SimConfig::new(ChannelModel::NoCd)
                .with_seed(cfg.seed ^ (n as u64) << 9)
                .with_threads(cfg.threads),
            trials,
            |_, _| NoCdMis::new(params),
        );
        let es = Summary::of(&stats.energies);
        let rs = Summary::of(&stats.rounds);
        table.push_row([
            n.to_string(),
            g.max_degree().to_string(),
            format!("{} ± {}", fmt_num(es.mean), fmt_num(es.ci95)),
            fmt_num(es.max),
            fmt_num(rs.mean),
            params.total_rounds().to_string(),
            pct(stats.correct, stats.successes()),
        ]);
        nsf.push(n as f64);
        energy_means.push(es.mean);
        round_means.push(rs.mean);
    }
    let (e_model, e_fit) = best_fit(&nsf, &energy_means);
    let claimed = fit_model(GrowthModel::Log2NLogLogN, &nsf, &energy_means);
    let log3 = fit_model(GrowthModel::Log3N, &nsf, &round_means);
    let (r_model, r_fit) = best_fit(&nsf, &round_means);

    let mut chart = LineChart::new(
        "Algorithm 2 (no-CD): energy and rounds vs n",
        "n (log scale)",
        "rounds (log scale)",
    )
    .with_log_x()
    .with_log_y();
    chart.push_series(
        "max energy (mean)",
        nsf.iter().copied().zip(energy_means.iter().copied()),
    );
    chart.push_series(
        "rounds (mean)",
        nsf.iter().copied().zip(round_means.iter().copied()),
    );
    chart.push_series(
        format!("fit of energy: {:.1}*log^2 n loglog n", claimed.slope),
        nsf.iter().map(|&n| {
            (
                n,
                (claimed.intercept + claimed.slope * GrowthModel::Log2NLogLogN.eval(n)).max(1.0),
            )
        }),
    );

    // Cumulative-energy checkpoints at the largest size, from the engine's
    // per-round metrics: Theorem 10's budget is about *total* awake rounds,
    // so the interesting shape is how early the spending happens.
    let n_big = *ns.last().expect("sweep is non-empty");
    // `threads` is absent from `fingerprint()` (thread-count invariance),
    // so the `sim` cache ingredient below stays stable across --threads.
    let checkpoint_config = SimConfig::new(ChannelModel::NoCd)
        .with_seed(cfg.seed ^ 0xE3E3)
        .with_round_metrics()
        .with_threads(cfg.threads);
    let sample = orch.unit_with_cost(
        &UnitKey::new("e3", format!("checkpoints/n={n_big}"))
            .with(
                "graph",
                format!(
                    "{}/seed={:#x}",
                    Family::GnpAvgDegree(8).label(),
                    cfg.seed ^ n_big as u64
                ),
            )
            .with("alg", "NoCdMis")
            .with("sim", checkpoint_config.fingerprint()),
        || {
            let g_big = Family::GnpAvgDegree(8).generate(n_big, cfg.seed ^ n_big as u64);
            let big_params = NoCdParams::for_n(n_big, g_big.max_degree().max(2));
            let report = Simulator::new(&g_big, checkpoint_config.clone())
                .run(|_, _| NoCdMis::new(big_params));
            let timeline = report.metrics_timeline();
            let mut rows = Vec::new();
            for quarter in [0.25, 0.5, 0.75, 1.0] {
                let idx = ((timeline.len() as f64 * quarter) as usize)
                    .min(timeline.len().saturating_sub(1));
                let Some(m) = timeline.get(idx) else { continue };
                rows.push((
                    quarter,
                    m.round,
                    m.undecided(),
                    m.awake(),
                    m.cumulative_energy,
                ));
            }
            let last = timeline.last().map(|m| (m.round, m.cumulative_energy));
            let halfway = match last {
                Some((round, cum)) => timeline
                    .iter()
                    .find(|m| m.cumulative_energy * 2 >= cum)
                    .map(|m| m.round)
                    .unwrap_or(round),
                None => 0,
            };
            CheckpointSample {
                rows,
                last,
                halfway,
                cost: report.meters.iter().map(|m| m.energy()).sum(),
            }
        },
        |s| s.cost,
    );
    let mut energy_table = Table::new([
        "run fraction",
        "round",
        "undecided",
        "awake",
        "cum. energy",
        "cum. energy / n",
    ]);
    for &(quarter, round, undecided, awake, cum) in &sample.rows {
        energy_table.push_row([
            format!("{quarter:.2}"),
            round.to_string(),
            undecided.to_string(),
            awake.to_string(),
            cum.to_string(),
            fmt_num(cum as f64 / n_big as f64),
        ]);
    }
    let energy_finding = match sample.last {
        Some((last_round, total)) => {
            let halfway = sample.halfway;
            format!(
                "at n = {n_big} half of the total awake budget ({total} node-rounds, \
                 {:.1}/node) is spent by round {halfway} of {last_round} — energy spending is \
                 front-loaded into the early, crowded Luby phases",
                total as f64 / n_big as f64,
            )
        }
        None => "energy-checkpoint timeline empty (degenerate run)".to_string(),
    };

    ExperimentOutput {
        id: "e3",
        title: "no-CD MIS: energy and round scaling".into(),
        claim: "Theorem 10: Algorithm 2 outputs an MIS w.p. ≥ 1 − 1/n using \
                O(log²n·loglog n) energy in O(log³n·log Δ) rounds."
            .into(),
        sections: vec![
            Section {
                caption: format!("n sweep on gnp-d8, {trials} trials each"),
                table,
            },
            Section {
                caption: format!(
                    "cumulative awake-energy checkpoints (round metrics, n = {n_big})"
                ),
                table: energy_table,
            },
        ],
        findings: vec![
            energy_finding,
            format!(
                "energy best fit: {e_model} (R² = {:.3}); claimed log²n·loglog n model \
                 R² = {:.3} — the two are empirically indistinguishable at these sizes, \
                 and both are far below the round curve",
                e_fit.r2, claimed.r2
            ),
            format!(
                "rounds best fit: {r_model} (R² = {:.3}); log³n model R² = {:.3} — \
                 within the schedule bound",
                r_fit.r2, log3.r2
            ),
        ],
        charts: vec![("e3_energy_rounds_vs_n".into(), chart)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_completes() {
        let out = run(&ExpConfig::quick(7), &Orchestrator::ephemeral());
        assert_eq!(out.id, "e3");
        assert_eq!(out.sections.len(), 2);
        assert!(!out.sections[0].table.is_empty());
        // Quarter-point checkpoints from the metrics timeline.
        assert!(!out.sections[1].table.is_empty());
        assert!(out
            .findings
            .iter()
            .any(|f| f.contains("awake budget") || f.contains("energy-checkpoint")));
    }
}
