//! E1 family: the Theorem-1 strategy model on the hard instance.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mis_bench::hard_instance;
use radio_mis::lower_bound::RandomStrategy;
use radio_netsim::{ChannelModel, SimConfig, Simulator};

fn bench(c: &mut Criterion) {
    let g = hard_instance(4096);
    let mut group = c.benchmark_group("lower_bound_strategy");
    for b_budget in [2u64, 8, 24] {
        group.bench_with_input(
            BenchmarkId::from_parameter(b_budget),
            &b_budget,
            |b, &budget| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    Simulator::new(&g, SimConfig::new(ChannelModel::Cd).with_seed(seed))
                        .run(|_, _| RandomStrategy::new(budget, 0.5))
                        .rounds
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
