//! The paper's contribution: energy-efficient MIS algorithms for radio
//! networks with arbitrary and unknown topology.
//!
//! This crate implements, as [`radio_netsim::Protocol`] state machines:
//!
//! - **Algorithm 1** ([`cd::CdMis`]): the energy-*optimal* MIS algorithm for
//!   the collision-detection (CD) model — O(log n) energy, O(log²n) rounds
//!   (Theorem 2) — and its [`beeping`]-model variant (§3.1);
//! - **Algorithms 2–3** ([`nocd::NoCdMis`], [`competition::Competition`]):
//!   the energy-efficient MIS algorithm for the harder no-CD model —
//!   O(log²n·loglog n) energy, O(log³n·log Δ) rounds (Theorem 10);
//! - **Algorithm 4** ([`backoff`]): the energy-efficient sender/receiver
//!   backoff primitives (Lemmas 8–9) plus the traditional Decay backoff;
//! - **LowDegreeMIS** ([`low_degree`]): the Davies-style radio simulation of
//!   Ghaffari's MIS used as Algorithm 2's low-degree subroutine and as the
//!   prior-art baseline (§4.2);
//! - **Baselines** ([`baselines`]): the naive Luby implementations the paper
//!   compares against in §1.3;
//! - **Theorem 1's lower-bound model** ([`lower_bound`]): strategy sampling
//!   and energy-capped protocols for the Ω(log n) bound;
//! - **Unknown-Δ doubling** ([`unknown_delta`]): the 2^(2^i) guessing scheme
//!   sketched in §1.1;
//! - **Applications** ([`applications`]): maximal matching (via the line
//!   graph) and (Δ+1)-coloring (via iterated MIS) — the backbone-building
//!   uses the paper's introduction motivates;
//! - **Multichannel MIS** ([`multichannel::MultichannelMis`]): the
//!   t-resilient MIS for the Daum–Kuhn multichannel model — Luby phases
//!   lifted onto F channels with channel-hopping Decay blocks, tolerating
//!   an adversary that jams up to t < F channels per round
//!   ([`radio_netsim::ChannelAdversary`], docs/MULTICHANNEL.md);
//! - **Energy conservation** ([`conserve::Conserve`]): the Dani–Hayes
//!   generic energy-conservation combinator — wraps *any* of the above on
//!   the [`radio_netsim::Layer`] contract, slicing time into
//!   advertise/work epochs so that nodes sleep through slices their
//!   neighborhoods provably leave silent (docs/CONSERVE.md);
//! - **Self-healing MIS** ([`repair::RepairingMis`]): a maintenance wrapper
//!   that detects post-fault MIS violations locally (uncovered nodes,
//!   adjacent in-MIS pairs) and re-runs any of the above schedules on the
//!   affected neighborhood — the repair layer for the crash-recovery,
//!   churn, and join fault clauses of
//!   [`radio_netsim::FaultPlan`].
//!
//! All tunable constants live in [`params`], with both the paper's
//! asymptotic-regime values and calibrated presets for finite-n experiments.
//!
//! # Example: solve MIS in the CD model
//!
//! ```
//! use mis_graphs::generators;
//! use radio_mis::cd::CdMis;
//! use radio_mis::params::CdParams;
//! use radio_netsim::{ChannelModel, SimConfig, Simulator};
//!
//! let g = generators::gnp(300, 0.03, 7);
//! let params = CdParams::for_n(g.len());
//! let report = Simulator::new(&g, SimConfig::new(ChannelModel::Cd).with_seed(1))
//!     .run(|_, _| CdMis::new(params));
//! assert!(report.is_correct_mis(&g));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod applications;
pub mod backoff;
pub mod baselines;
pub mod beeping;
pub mod beeping_native;
pub mod cd;
pub mod competition;
pub mod conserve;
pub mod low_degree;
pub mod lower_bound;
pub mod multichannel;
pub mod nocd;
pub mod params;
pub mod repair;
pub mod unknown_delta;

pub use cd::CdMis;
pub use conserve::{Conserve, ConserveConfig};
pub use multichannel::MultichannelMis;
pub use nocd::NoCdMis;
pub use repair::{RepairConfig, RepairingMis};
