//! E13 family: the wired SLEEPING-CONGEST references.

use congest_sim::{CongestSim, GhaffariCongest, LubyCongest};
use criterion::{criterion_group, criterion_main, Criterion};
use mis_bench::workload;

fn bench(c: &mut Criterion) {
    let n = 4096usize;
    let g = workload(n, 45);
    let mut group = c.benchmark_group("congest");
    group.bench_function("luby", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            CongestSim::new(&g, seed)
                .run(|_, _| LubyCongest::new(n))
                .max_awake()
        })
    });
    group.bench_function("ghaffari", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            CongestSim::new(&g, seed)
                .run(|_, _| GhaffariCongest::new(n, g.max_degree().max(1)))
                .max_awake()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
