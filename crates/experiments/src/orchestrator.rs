//! The experiment orchestrator: content-addressed result caching, a shared
//! cross-experiment scheduler, run manifests, and progress reporting.
//!
//! Every experiment decomposes its work into *job units* — one
//! `(experiment, cell, trial-block)` worth of simulation, identified by a
//! [`UnitKey`]. A key carries the unit's full configuration (graph family,
//! `n`, params preset, seed, fault plan, engine mode, …) plus a crate
//! version salt, and hashes to a stable content address. When the
//! orchestrator has a `--cache-dir`, each unit is looked up there before it
//! is run; hits deserialize the stored value, misses run the closure and
//! persist the result. Because experiments render their tables *from unit
//! values* in both cases, a warm rerun is byte-identical to a cold one (see
//! `docs/EXPERIMENT_PIPELINE.md` for the full determinism contract).
//!
//! Scheduling is shared: the binary fans all experiments out on the global
//! rayon pool ([`crate::run_all`]) and units fan their trial blocks out
//! beneath that, so one work-stealing pool drains the whole job graph
//! instead of 17 experiments each saturating it in sequence.
//!
//! ```
//! use mis_experiments::{Orchestrator, UnitKey};
//!
//! let dir = std::env::temp_dir().join(format!("orch-doc-{}", std::process::id()));
//! let _ = std::fs::remove_dir_all(&dir);
//! let orch = Orchestrator::with_cache_dir(&dir);
//! let key = UnitKey::new("e0", "demo").with("n", 8).with("seed", 42);
//!
//! // Cold: the closure runs and the value is persisted.
//! let v: u64 = orch.unit(&key, || 6 * 7);
//! assert_eq!(v, 42);
//! // Warm: resolved from the cache; the closure must not run.
//! let v: u64 = orch.unit(&key, || unreachable!());
//! assert_eq!(v, 42);
//! assert_eq!((orch.hits(), orch.misses()), (1, 1));
//! let _ = std::fs::remove_dir_all(&dir);
//! ```

use mis_graphs::{Graph, NodeId};
use mis_stats::{fmt_duration_ms, Table};
use radio_netsim::{run_trials, NodeRng, Protocol, RunReport, SimConfig, TrialSet};
use serde::de::DeserializeOwned;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::fmt::Display;
use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Version of the on-disk cache layout. Bumping it orphans every existing
/// entry (they stop matching and are recomputed in place).
///
/// History: 2 — per-(node, round) fade re-keying changed lossy-run
/// results without changing `SimConfig::fingerprint()` (thread-count
/// invariance pins the fingerprint byte layout), so caches warmed under
/// schema 1 must not replay for `loss > 0` cells.
/// 3 — the multichannel engine rework moved fade draws onto a dedicated
/// per-channel stream and rebuilt collision resolution per channel, which
/// perturbs every lossy or jammed run; single-channel fault-free cells are
/// unchanged but the schema cannot distinguish them, so everything is
/// orphaned.
/// 4 — the protocol-layering refactor (`Layer`, `VirtualClock`, the
/// `may_transmit_before` oracle) and the new E18 `Conserve` cells landed
/// together; native protocol runs are bit-identical, but the contract
/// additions touch every machine's vtable and the conservative choice is
/// to orphan and recompute rather than trust that nothing shifted.
pub const CACHE_SCHEMA: u32 = 4;

/// Content address of one job unit: experiment id, human-readable cell
/// label, and the named ingredients that fully determine the unit's result.
///
/// The canonical form (and therefore the hash) covers the cache schema and
/// the crate version in addition to the ingredients, so a release that
/// could change simulation behaviour or serialization formatting never
/// reuses stale entries. Two keys collide only if their canonical strings
/// are equal — the cache stores the canonical string alongside the value
/// and treats a hash match with a different canonical string as a miss.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnitKey {
    experiment: String,
    cell: String,
    parts: Vec<(String, String)>,
}

impl UnitKey {
    /// A key for the given experiment id (`"e2"`) and cell label
    /// (`"scale/n=1024"`). Add ingredients with [`UnitKey::with`].
    pub fn new(experiment: impl Into<String>, cell: impl Into<String>) -> UnitKey {
        UnitKey {
            experiment: experiment.into(),
            cell: cell.into(),
            parts: Vec::new(),
        }
    }

    /// Appends a named ingredient (seed, params preset, graph recipe, …).
    /// Order is significant: the canonical form lists ingredients in
    /// insertion order.
    pub fn with(mut self, name: &str, value: impl Display) -> UnitKey {
        self.parts.push((name.to_string(), value.to_string()));
        self
    }

    /// The experiment id this unit belongs to.
    pub fn experiment(&self) -> &str {
        &self.experiment
    }

    /// The cell label within the experiment.
    pub fn cell(&self) -> &str {
        &self.cell
    }

    /// The canonical key string: one `name=value` line per ingredient,
    /// prefixed by schema, crate version, experiment, and cell.
    pub fn canonical(&self) -> String {
        let mut s = format!(
            "schema={}\ncrate={}\nexperiment={}\ncell={}\n",
            CACHE_SCHEMA,
            env!("CARGO_PKG_VERSION"),
            self.experiment,
            self.cell
        );
        for (name, value) in &self.parts {
            let _ = writeln!(s, "{name}={value}");
        }
        s
    }

    /// The unit's content address: FNV-1a (64-bit) of the canonical string,
    /// as 16 lowercase hex digits.
    pub fn hash_hex(&self) -> String {
        format!("{:016x}", fnv1a64(self.canonical().as_bytes()))
    }
}

/// FNV-1a, 64-bit. Dependency-free and stable across platforms/releases —
/// exactly what a content address needs (collision *detection* is handled
/// by storing the canonical key next to the value).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// On-disk cache entry (write side). The canonical key is stored verbatim
/// so hash collisions and schema drift read as misses, never as wrong data.
#[derive(Serialize)]
struct CacheEntryOut<'a, T> {
    schema: u32,
    key: &'a str,
    value: &'a T,
}

/// On-disk cache entry (read side).
#[derive(Deserialize)]
struct CacheEntryIn<T> {
    schema: u32,
    key: String,
    value: T,
}

/// Derived statistics of one trial block — the compact, serializable form
/// of a [`TrialSet`] that units cache instead of full per-trial reports
/// (a full `TrialSet` at the top sweep sizes is hundreds of megabytes of
/// JSON; this is a few kilobytes).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrialStats {
    /// Node count of the graph the trials ran on.
    pub n: usize,
    /// Trials attempted (including panicked ones).
    pub attempted: usize,
    /// Trials whose output verified as a correct MIS.
    pub correct: usize,
    /// Trials that panicked (isolated by the runner).
    pub failed: usize,
    /// Per-trial max energy (awake rounds of the worst node), one entry
    /// per non-panicked trial.
    pub energies: Vec<f64>,
    /// Per-trial node-averaged energy.
    pub avg_energies: Vec<f64>,
    /// Per-trial round counts.
    pub rounds: Vec<f64>,
    /// Worst per-node energy over every trial.
    pub worst_energy: u64,
    /// Total simulated cost of the block, in awake node-rounds summed over
    /// all nodes of all trials — the unit of the manifest's cost column.
    pub cost: u64,
}

impl TrialStats {
    /// Summarizes a freshly simulated [`TrialSet`].
    pub fn of(set: &TrialSet) -> TrialStats {
        let cost = set
            .outcomes
            .iter()
            .map(|o| o.report.meters.iter().map(|m| m.energy()).sum::<u64>())
            .sum();
        TrialStats {
            n: set.outcomes.first().map_or(0, |o| o.report.len()),
            attempted: set.attempted(),
            correct: set.outcomes.iter().filter(|o| o.correct).count(),
            failed: set.failed(),
            energies: set.energies(),
            avg_energies: set.avg_energies(),
            rounds: set.rounds(),
            worst_energy: set.worst_energy(),
            cost,
        }
    }

    /// Trials that ran to completion (denominator for success rates).
    pub fn successes(&self) -> usize {
        self.energies.len()
    }
}

/// One unit's row in the [`RunManifest`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UnitRecord {
    /// Experiment id.
    pub experiment: String,
    /// Cell label.
    pub cell: String,
    /// Content address ([`UnitKey::hash_hex`]).
    pub hash: String,
    /// Whether the unit was resolved from the cache.
    pub hit: bool,
    /// Wall-clock time spent resolving the unit, in milliseconds.
    pub wall_ms: f64,
    /// Simulated cost in awake node-rounds (0 when resolved from cache —
    /// the manifest's cost column counts *fresh* simulation work).
    pub cost: u64,
}

/// The manifest of one orchestrated run: every unit resolved, with hit
/// flags, wall time, and simulated cost. Written to
/// `<cache-dir>/manifest.json`; the next run uses it for progress totals
/// and ETA estimates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunManifest {
    /// Cache schema the run used.
    pub schema: u32,
    /// Master seed of the run.
    pub seed: u64,
    /// Whether the run was in quick mode.
    pub quick: bool,
    /// Per-unit records, sorted by (experiment, cell) for determinism.
    pub units: Vec<UnitRecord>,
}

impl RunManifest {
    /// Units resolved from the cache.
    pub fn hits(&self) -> usize {
        self.units.iter().filter(|u| u.hit).count()
    }

    /// Units that ran fresh simulation.
    pub fn misses(&self) -> usize {
        self.units.len() - self.hits()
    }

    /// Total wall-clock milliseconds across all units.
    pub fn total_wall_ms(&self) -> f64 {
        self.units.iter().map(|u| u.wall_ms).sum()
    }

    /// Total simulated cost in awake node-rounds (fresh work only).
    pub fn total_cost(&self) -> u64 {
        self.units.iter().map(|u| u.cost).sum()
    }

    /// Per-experiment summary (units, hits, wall time, simulated cost)
    /// with a trailing total row — the table behind `EXPERIMENTS.md`'s
    /// "cost of a full run" section.
    pub fn summary_table(&self) -> Table {
        let mut table = Table::new([
            "experiment",
            "units",
            "cache hits",
            "wall",
            "sim cost (awake node-rounds)",
        ]);
        let mut order: Vec<String> = Vec::new();
        let mut groups: HashMap<String, (usize, usize, f64, u64)> = HashMap::new();
        for u in &self.units {
            let entry = groups.entry(u.experiment.clone()).or_insert_with(|| {
                order.push(u.experiment.clone());
                (0, 0, 0.0, 0)
            });
            entry.0 += 1;
            entry.1 += usize::from(u.hit);
            entry.2 += u.wall_ms;
            entry.3 += u.cost;
        }
        for id in &order {
            let (units, hits, wall, cost) = groups[id];
            table.push_row([
                id.clone(),
                units.to_string(),
                hits.to_string(),
                fmt_duration_ms(wall),
                cost.to_string(),
            ]);
        }
        table.push_row([
            "total".to_string(),
            self.units.len().to_string(),
            self.hits().to_string(),
            fmt_duration_ms(self.total_wall_ms()),
            self.total_cost().to_string(),
        ]);
        table
    }
}

/// A `--force` / `--only` selector: a whole experiment (`e15`) or a
/// cell-prefix within one (`e15:loss`).
#[derive(Debug, Clone, PartialEq, Eq)]
struct Selector {
    experiment: String,
    cell_prefix: Option<String>,
}

impl Selector {
    fn parse(s: &str) -> Selector {
        match s.split_once(':') {
            Some((exp, prefix)) => Selector {
                experiment: canonical_experiment_id(exp).unwrap_or_else(|| exp.to_string()),
                cell_prefix: Some(prefix.to_string()),
            },
            None => Selector {
                experiment: canonical_experiment_id(s).unwrap_or_else(|| s.to_string()),
                cell_prefix: None,
            },
        }
    }

    fn matches(&self, key: &UnitKey) -> bool {
        if self.experiment != key.experiment {
            return false;
        }
        match &self.cell_prefix {
            None => true,
            Some(prefix) => key.cell.starts_with(prefix.as_str()),
        }
    }
}

/// Normalizes a user-typed experiment id: `"e02"`, `"E2"`, and `"2"` all
/// mean `"e2"`. Returns `None` for strings with no experiment number.
pub fn canonical_experiment_id(s: &str) -> Option<String> {
    let t = s.trim().trim_start_matches(['e', 'E']);
    t.parse::<usize>().ok().map(|num| format!("e{num}"))
}

/// Sort rank of an experiment id: numeric for `eN`, last otherwise.
fn exp_rank(id: &str) -> usize {
    id.strip_prefix('e')
        .and_then(|r| r.parse::<usize>().ok())
        .unwrap_or(usize::MAX)
}

/// The shared execution context every experiment resolves its job units
/// through: cache lookup/persist, force selectors, run counters, manifest
/// recording, and progress lines (module docs for the full picture).
pub struct Orchestrator {
    cache_dir: Option<PathBuf>,
    /// `None`: never force. `Some([])`: force everything. Otherwise force
    /// units matching any selector.
    force: Option<Vec<Selector>>,
    progress: bool,
    seed: u64,
    quick: bool,
    records: Mutex<Vec<UnitRecord>>,
    done: Mutex<HashSet<String>>,
    hit_count: AtomicUsize,
    miss_count: AtomicUsize,
    cost_total: AtomicU64,
    /// Previous run's units by hash, for totals/ETA/slowest-pending.
    prev: HashMap<String, UnitRecord>,
    tmp_seq: AtomicUsize,
    started: Instant,
}

impl Orchestrator {
    /// An orchestrator with no cache directory: every unit runs fresh and
    /// nothing is persisted. Used by tests and by [`crate::run_experiment`]
    /// for one-shot library calls.
    pub fn ephemeral() -> Orchestrator {
        Orchestrator {
            cache_dir: None,
            force: None,
            progress: false,
            seed: 0,
            quick: false,
            records: Mutex::new(Vec::new()),
            done: Mutex::new(HashSet::new()),
            hit_count: AtomicUsize::new(0),
            miss_count: AtomicUsize::new(0),
            cost_total: AtomicU64::new(0),
            prev: HashMap::new(),
            tmp_seq: AtomicUsize::new(0),
            started: Instant::now(),
        }
    }

    /// An orchestrator backed by the given cache directory (created on
    /// first write). Loads the previous run's manifest, if any, for
    /// progress totals and ETA estimates.
    pub fn with_cache_dir(dir: impl AsRef<Path>) -> Orchestrator {
        let dir = dir.as_ref().to_path_buf();
        let prev = load_manifest(&dir)
            .map(|m| m.units.into_iter().map(|u| (u.hash.clone(), u)).collect())
            .unwrap_or_default();
        Orchestrator {
            cache_dir: Some(dir),
            prev,
            ..Orchestrator::ephemeral()
        }
    }

    /// Enables per-unit progress lines on stderr.
    pub fn with_progress(mut self) -> Orchestrator {
        self.progress = true;
        self
    }

    /// Installs force selectors: matching units bypass the cache *read*
    /// (they still write their fresh result back). An empty slice forces
    /// every unit. Selector syntax: `e15` (whole experiment) or
    /// `e15:loss` (cells with that prefix); ids are normalized, so
    /// `e02` and `e2` are the same experiment.
    pub fn with_force(mut self, selectors: &[String]) -> Orchestrator {
        self.force = Some(selectors.iter().map(|s| Selector::parse(s)).collect());
        self
    }

    /// Records the run context (master seed, quick mode) stamped into the
    /// manifest.
    pub fn with_run_context(mut self, seed: u64, quick: bool) -> Orchestrator {
        self.seed = seed;
        self.quick = quick;
        self
    }

    /// Whether a cache directory is configured.
    pub fn cache_enabled(&self) -> bool {
        self.cache_dir.is_some()
    }

    /// Units resolved from the cache so far.
    pub fn hits(&self) -> usize {
        self.hit_count.load(Ordering::Relaxed)
    }

    /// Units that ran fresh simulation so far.
    pub fn misses(&self) -> usize {
        self.miss_count.load(Ordering::Relaxed)
    }

    /// Units resolved so far (hits + misses).
    pub fn units_done(&self) -> usize {
        self.hits() + self.misses()
    }

    /// Total simulated cost so far, in awake node-rounds (fresh work only).
    pub fn total_cost(&self) -> u64 {
        self.cost_total.load(Ordering::Relaxed)
    }

    /// Resolves one job unit: cache hit or fresh run of `run`.
    ///
    /// The value type must serialize losslessly through JSON (finite
    /// floats only — `serde_json` cannot round-trip NaN/∞) so that a
    /// cached value renders byte-identically to a fresh one.
    pub fn unit<T, F>(&self, key: &UnitKey, run: F) -> T
    where
        T: Serialize + DeserializeOwned,
        F: FnOnce() -> T,
    {
        self.unit_with_cost(key, run, |_| 0)
    }

    /// [`Orchestrator::unit`] with a cost extractor: `cost_of` reports the
    /// unit's simulated cost in awake node-rounds, charged to the manifest
    /// only when the unit ran fresh.
    pub fn unit_with_cost<T, F, C>(&self, key: &UnitKey, run: F, cost_of: C) -> T
    where
        T: Serialize + DeserializeOwned,
        F: FnOnce() -> T,
        C: Fn(&T) -> u64,
    {
        let canonical = key.canonical();
        let hash = key.hash_hex();
        let path = self.entry_path(key, &hash);
        let unit_started = Instant::now();
        if !self.forced(key) {
            if let Some(value) = path.as_deref().and_then(|p| load_entry::<T>(p, &canonical)) {
                let wall = unit_started.elapsed().as_secs_f64() * 1e3;
                self.record(key, hash, true, wall, 0);
                return value;
            }
        }
        let value = run();
        let cost = cost_of(&value);
        if let Some(p) = &path {
            self.store_entry(p, &canonical, &value);
        }
        let wall = unit_started.elapsed().as_secs_f64() * 1e3;
        self.record(key, hash, false, wall, cost);
        value
    }

    /// The read half of [`Orchestrator::unit`], split out for callers that
    /// must answer "is this already computed?" without being prepared to
    /// compute it — the `mis-serve` daemon answers warm `POST /jobs`
    /// submissions instantly through this, never occupying a worker.
    ///
    /// Returns the cached value when the cache holds a current entry for
    /// `key` (schema and canonical string both match), `None` otherwise;
    /// ephemeral orchestrators always return `None`. A successful peek is
    /// recorded as a cache hit in the counters and the manifest. Force
    /// selectors do not apply: peek only reads, it never invalidates.
    ///
    /// ```
    /// use mis_experiments::{Orchestrator, UnitKey};
    ///
    /// let dir = std::env::temp_dir().join(format!("orch-peek-doc-{}", std::process::id()));
    /// let _ = std::fs::remove_dir_all(&dir);
    /// let orch = Orchestrator::with_cache_dir(&dir);
    /// let key = UnitKey::new("e0", "demo").with("seed", 5);
    ///
    /// assert_eq!(orch.peek::<u64>(&key), None); // cold: nothing stored yet
    /// let _: u64 = orch.unit(&key, || 40 + 2);
    /// assert_eq!(orch.peek::<u64>(&key), Some(42)); // warm: read without running
    /// assert_eq!((orch.hits(), orch.misses()), (1, 1));
    /// let _ = std::fs::remove_dir_all(&dir);
    /// ```
    pub fn peek<T: DeserializeOwned>(&self, key: &UnitKey) -> Option<T> {
        let canonical = key.canonical();
        let hash = key.hash_hex();
        let path = self.entry_path(key, &hash)?;
        let unit_started = Instant::now();
        let value = load_entry::<T>(&path, &canonical)?;
        let wall = unit_started.elapsed().as_secs_f64() * 1e3;
        self.record(key, hash, true, wall, 0);
        Some(value)
    }

    /// Trial-block sugar: runs [`run_trials`] as a cached unit, returning
    /// the compact [`TrialStats`]. The graph size, the full
    /// [`SimConfig::fingerprint`] (seed, channel, fault plan, engine mode,
    /// …), and the trial count are appended to `key` as ingredients, so
    /// flipping any of them invalidates the unit.
    pub fn trials<P, F>(
        &self,
        key: UnitKey,
        graph: &Graph,
        base: SimConfig,
        trials: usize,
        factory: F,
    ) -> TrialStats
    where
        P: Protocol + Send,
        F: Fn(NodeId, &mut NodeRng) -> P + Sync,
    {
        let key = key
            .with("n", graph.len())
            .with("sim", base.fingerprint())
            .with("trials", trials);
        self.unit_with_cost(
            &key,
            || TrialStats::of(&run_trials(graph, base, trials, factory)),
            |stats| stats.cost,
        )
    }

    /// Caches a whole [`RunReport`] as a unit value. Sound because the
    /// report's [`RunReport::to_stable_json`] contract guarantees a
    /// byte-stable round trip within one crate version (and the key's
    /// version salt covers releases). Reserve this for small-`n` runs —
    /// reports carry per-node state.
    pub fn report<F>(&self, key: &UnitKey, run: F) -> RunReport
    where
        F: FnOnce() -> RunReport,
    {
        self.unit_with_cost(key, run, |r| {
            r.meters.iter().map(|m| m.energy()).sum::<u64>()
        })
    }

    /// The manifest of everything resolved so far, sorted by
    /// (experiment, cell, hash) so equal runs produce equal manifests
    /// regardless of scheduling order.
    pub fn manifest(&self) -> RunManifest {
        let mut units = self.records.lock().expect("no poisoning").clone();
        units.sort_by(|a, b| {
            (exp_rank(&a.experiment), &a.experiment, &a.cell, &a.hash).cmp(&(
                exp_rank(&b.experiment),
                &b.experiment,
                &b.cell,
                &b.hash,
            ))
        });
        RunManifest {
            schema: CACHE_SCHEMA,
            seed: self.seed,
            quick: self.quick,
            units,
        }
    }

    /// Writes the manifest to `<cache-dir>/manifest.json`. Returns the
    /// path, or `None` when no cache directory is configured or the write
    /// failed (caching is best-effort by design).
    pub fn write_manifest(&self) -> Option<PathBuf> {
        let dir = self.cache_dir.as_ref()?;
        let path = dir.join("manifest.json");
        let json = serde_json::to_string_pretty(&self.manifest()).ok()?;
        fs::create_dir_all(dir).ok()?;
        fs::write(&path, json).ok()?;
        Some(path)
    }

    /// Announces the plan on stderr (unit total and slowest unit of the
    /// previous run) when progress is enabled.
    pub fn announce_plan(&self) {
        if !self.progress {
            return;
        }
        if self.prev.is_empty() {
            eprintln!("orchestrator: cold cache — this run records the first manifest");
        } else if let Some((label, wall)) = self.slowest_pending() {
            eprintln!(
                "orchestrator: previous run resolved {} units in {}; slowest: {} ({})",
                self.prev.len(),
                fmt_duration_ms(self.prev.values().map(|u| u.wall_ms).sum()),
                label,
                fmt_duration_ms(wall),
            );
        }
    }

    /// One-line run summary (hit rate, fresh wall time, simulated cost).
    /// The binary prints this after rendering; CI greps the hit rate.
    pub fn summary_line(&self) -> String {
        let done = self.units_done();
        let pct = if done == 0 {
            100.0
        } else {
            100.0 * self.hits() as f64 / done as f64
        };
        format!(
            "cache hits: {}/{} ({:.0}%) · wall {} · simulated cost {} awake node-rounds",
            self.hits(),
            done,
            pct,
            fmt_duration_ms(self.started.elapsed().as_secs_f64() * 1e3),
            self.total_cost(),
        )
    }

    fn forced(&self, key: &UnitKey) -> bool {
        match &self.force {
            None => false,
            Some(sels) if sels.is_empty() => true,
            Some(sels) => sels.iter().any(|s| s.matches(key)),
        }
    }

    fn entry_path(&self, key: &UnitKey, hash: &str) -> Option<PathBuf> {
        let dir = self.cache_dir.as_ref()?;
        let mut slug: String = key
            .cell
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() {
                    c.to_ascii_lowercase()
                } else {
                    '-'
                }
            })
            .collect();
        slug.truncate(48);
        let slug = slug.trim_matches('-');
        let file = if slug.is_empty() {
            format!("{hash}.json")
        } else {
            format!("{slug}-{hash}.json")
        };
        Some(dir.join(&key.experiment).join(file))
    }

    /// Atomic-rename write; failures are swallowed (a broken cache write
    /// must never fail the run — the unit simply reruns next time).
    fn store_entry<T: Serialize>(&self, path: &Path, canonical: &str, value: &T) {
        let Some(parent) = path.parent() else { return };
        if fs::create_dir_all(parent).is_err() {
            return;
        }
        let entry = CacheEntryOut {
            schema: CACHE_SCHEMA,
            key: canonical,
            value,
        };
        let Ok(json) = serde_json::to_string(&entry) else {
            return;
        };
        let tmp = path.with_extension(format!(
            "tmp.{}.{}",
            std::process::id(),
            self.tmp_seq.fetch_add(1, Ordering::Relaxed)
        ));
        if fs::write(&tmp, json).is_ok() && fs::rename(&tmp, path).is_err() {
            let _ = fs::remove_file(&tmp);
        }
    }

    fn record(&self, key: &UnitKey, hash: String, hit: bool, wall_ms: f64, cost: u64) {
        if hit {
            self.hit_count.fetch_add(1, Ordering::Relaxed);
        } else {
            self.miss_count.fetch_add(1, Ordering::Relaxed);
        }
        self.cost_total.fetch_add(cost, Ordering::Relaxed);
        let done = {
            let mut done = self.done.lock().expect("no poisoning");
            done.insert(hash.clone());
            done.len()
        };
        self.records.lock().expect("no poisoning").push(UnitRecord {
            experiment: key.experiment.clone(),
            cell: key.cell.clone(),
            hash,
            hit,
            wall_ms,
            cost,
        });
        if self.progress {
            self.emit_progress(key, hit, wall_ms, done);
        }
    }

    fn slowest_pending(&self) -> Option<(String, f64)> {
        let done = self.done.lock().expect("no poisoning");
        self.prev
            .values()
            .filter(|u| !done.contains(&u.hash))
            .max_by(|a, b| a.wall_ms.total_cmp(&b.wall_ms))
            .map(|u| (format!("{} · {}", u.experiment, u.cell), u.wall_ms))
    }

    fn emit_progress(&self, key: &UnitKey, hit: bool, wall_ms: f64, done: usize) {
        let mut line = if self.prev.is_empty() {
            format!("[{done}/?]")
        } else {
            format!("[{done}/≈{}]", self.prev.len())
        };
        let _ = write!(
            line,
            " {} · {} — {}",
            key.experiment,
            key.cell,
            if hit {
                "hit".to_string()
            } else {
                format!("ran {}", fmt_duration_ms(wall_ms))
            }
        );
        let _ = write!(line, " · hits {}/{}", self.hits(), self.units_done());
        if let Some((label, wall)) = self.slowest_pending() {
            let _ = write!(
                line,
                " · slowest pending: {label} (~{})",
                fmt_duration_ms(wall)
            );
        }
        eprintln!("{line}");
    }
}

fn load_manifest(dir: &Path) -> Option<RunManifest> {
    let text = fs::read_to_string(dir.join("manifest.json")).ok()?;
    serde_json::from_str(&text).ok()
}

fn load_entry<T: DeserializeOwned>(path: &Path, canonical: &str) -> Option<T> {
    let text = fs::read_to_string(path).ok()?;
    let entry: CacheEntryIn<T> = serde_json::from_str(&text).ok()?;
    if entry.schema == CACHE_SCHEMA && entry.key == canonical {
        Some(entry.value)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use radio_netsim::ChannelModel;
    use std::sync::atomic::AtomicUsize;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mis-exp-orch-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn hashes_are_stable_and_ingredient_sensitive() {
        let key = |seed: u64, n: usize, preset: &str, mode: &str| {
            UnitKey::new("e2", "scale")
                .with("seed", seed)
                .with("n", n)
                .with("preset", preset)
                .with("engine", mode)
        };
        let base = key(1, 128, "CdParams{p:0.5}", "Sparse");
        assert_eq!(
            base.hash_hex(),
            key(1, 128, "CdParams{p:0.5}", "Sparse").hash_hex()
        );
        // Flipping any single ingredient invalidates the unit.
        for other in [
            key(2, 128, "CdParams{p:0.5}", "Sparse"),
            key(1, 256, "CdParams{p:0.5}", "Sparse"),
            key(1, 128, "CdParams{p:0.6}", "Sparse"),
            key(1, 128, "CdParams{p:0.5}", "Dense"),
        ] {
            assert_ne!(base.hash_hex(), other.hash_hex(), "{}", other.canonical());
        }
        // So does the cell, and so does renaming an ingredient.
        assert_ne!(
            base.hash_hex(),
            UnitKey::new("e2", "families").with("seed", 1u64).hash_hex()
        );
        assert_ne!(
            UnitKey::new("e1", "c").with("a", 1).hash_hex(),
            UnitKey::new("e1", "c").with("b", 1).hash_hex()
        );
    }

    #[test]
    fn sim_fingerprint_flip_invalidates_trial_units() {
        let a = UnitKey::new("e2", "scale").with(
            "sim",
            SimConfig::new(ChannelModel::Cd).with_seed(1).fingerprint(),
        );
        let b = UnitKey::new("e2", "scale").with(
            "sim",
            SimConfig::new(ChannelModel::Cd).with_seed(2).fingerprint(),
        );
        assert_ne!(a.hash_hex(), b.hash_hex());
    }

    #[test]
    fn ephemeral_units_always_run() {
        let orch = Orchestrator::ephemeral();
        let key = UnitKey::new("e0", "x").with("seed", 1u64);
        let calls = AtomicUsize::new(0);
        for _ in 0..2 {
            let v: u32 = orch.unit(&key, || {
                calls.fetch_add(1, Ordering::Relaxed);
                9
            });
            assert_eq!(v, 9);
        }
        assert_eq!(calls.load(Ordering::Relaxed), 2);
        assert_eq!(orch.misses(), 2);
        assert_eq!(orch.hits(), 0);
    }

    #[test]
    fn peek_reads_without_running_and_counts_hits() {
        let dir = tmp_dir("peek");
        let key = UnitKey::new("e0", "peek/a=1").with("seed", 5u64);

        // Ephemeral orchestrators have nothing to peek at.
        assert_eq!(Orchestrator::ephemeral().peek::<u32>(&key), None);

        let orch = Orchestrator::with_cache_dir(&dir);
        assert_eq!(orch.peek::<u32>(&key), None); // cold
        assert_eq!((orch.hits(), orch.misses()), (0, 0)); // a failed peek records nothing
        let _: u32 = orch.unit(&key, || 7);
        assert_eq!(orch.peek::<u32>(&key), Some(7));
        assert_eq!((orch.hits(), orch.misses()), (1, 1));
        // The hit lands in the manifest like any other resolved unit.
        let manifest = orch.manifest();
        assert_eq!(manifest.hits(), 1);
        assert_eq!(manifest.units.len(), 2);

        // A fresh orchestrator over the same dir peeks the persisted value.
        let warm = Orchestrator::with_cache_dir(&dir);
        assert_eq!(warm.peek::<u32>(&key), Some(7));
        assert_eq!((warm.hits(), warm.misses()), (1, 0));

        // A different ingredient, or the wrong type shape, reads as None —
        // never as wrong data.
        let other = UnitKey::new("e0", "peek/a=1").with("seed", 6u64);
        assert_eq!(warm.peek::<u32>(&other), None);
        assert_eq!(warm.peek::<Vec<String>>(&key), None);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn peek_ignores_force_selectors() {
        let dir = tmp_dir("peek-force");
        let key = UnitKey::new("e3", "cell").with("seed", 1u64);
        let _: u32 = Orchestrator::with_cache_dir(&dir).unit(&key, || 9);
        // Forcing e3 bypasses cache *reads* in unit(), but peek still
        // answers from the store: it is a pure read, not a recompute path.
        let forced = Orchestrator::with_cache_dir(&dir).with_force(&["e3".to_string()]);
        assert_eq!(forced.peek::<u32>(&key), Some(9));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn cache_roundtrip_hits_without_running() {
        let dir = tmp_dir("roundtrip");
        let key = UnitKey::new("e0", "cell/a=1").with("seed", 3u64);
        let cold = Orchestrator::with_cache_dir(&dir);
        let v: Vec<f64> = cold.unit(&key, || vec![1.5, 2.25]);
        assert_eq!(v, vec![1.5, 2.25]);
        assert_eq!((cold.hits(), cold.misses()), (0, 1));

        let warm = Orchestrator::with_cache_dir(&dir);
        let v: Vec<f64> = warm.unit(&key, || panic!("must not run"));
        assert_eq!(v, vec![1.5, 2.25]);
        assert_eq!((warm.hits(), warm.misses()), (1, 0));

        // A different key ingredient misses even with the same cell label.
        let other = UnitKey::new("e0", "cell/a=1").with("seed", 4u64);
        let v: Vec<f64> = warm.unit(&other, || vec![9.0]);
        assert_eq!(v, vec![9.0]);
        assert_eq!(warm.misses(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_and_mismatched_entries_read_as_misses() {
        let dir = tmp_dir("corrupt");
        let key = UnitKey::new("e0", "c").with("seed", 1u64);
        let orch = Orchestrator::with_cache_dir(&dir);
        let _: u32 = orch.unit(&key, || 5);
        let path = orch.entry_path(&key, &key.hash_hex()).unwrap();
        assert!(path.exists());

        // Corrupt the file: next resolution reruns and repairs it.
        fs::write(&path, "{not json").unwrap();
        let warm = Orchestrator::with_cache_dir(&dir);
        let v: u32 = warm.unit(&key, || 6);
        assert_eq!(v, 6);
        assert_eq!(warm.misses(), 1);

        // A canonical-key mismatch under the same path is also a miss.
        let text = fs::read_to_string(&path).unwrap();
        fs::write(&path, text.replace("seed=1", "seed=9")).unwrap();
        let warm = Orchestrator::with_cache_dir(&dir);
        let v: u32 = warm.unit(&key, || 7);
        assert_eq!(v, 7);
        assert_eq!(warm.misses(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn force_selectors_scope_recomputation() {
        let dir = tmp_dir("force");
        let keys = [
            UnitKey::new("e2", "scale/n=64"),
            UnitKey::new("e2", "families/grid"),
            UnitKey::new("e15", "loss/0.5"),
        ];
        let cold = Orchestrator::with_cache_dir(&dir);
        for k in &keys {
            let _: u32 = cold.unit(k, || 1);
        }
        // `e2:scale` forces exactly the matching cell.
        let orch = Orchestrator::with_cache_dir(&dir).with_force(&["e2:scale".to_string()]);
        for k in &keys {
            let _: u32 = orch.unit(k, || 2);
        }
        assert_eq!((orch.hits(), orch.misses()), (2, 1));
        // A forced unit still writes its result back.
        let warm = Orchestrator::with_cache_dir(&dir);
        let v: u32 = warm.unit(&keys[0], || panic!("must hit"));
        assert_eq!(v, 2);
        // `--force` with no selectors forces everything; `e02` == `e2`.
        let all = Orchestrator::with_cache_dir(&dir).with_force(&[]);
        let _: u32 = all.unit(&keys[0], || 3);
        assert_eq!(all.misses(), 1);
        let e02 = Orchestrator::with_cache_dir(&dir).with_force(&["e02".to_string()]);
        for k in &keys {
            let _: u32 = e02.unit(k, || 4);
        }
        assert_eq!((e02.hits(), e02.misses()), (1, 2));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn cached_reports_roundtrip_byte_identically() {
        use radio_netsim::{SimConfig, Simulator};
        let dir = tmp_dir("report");
        let g = mis_graphs::generators::clique(6);
        let run = || {
            Simulator::new(&g, SimConfig::new(ChannelModel::Cd).with_seed(11))
                .run(|_, _| radio_mis::cd::CdMis::new(radio_mis::params::CdParams::for_n(6)))
        };
        let key = UnitKey::new("e0", "report").with("seed", 11u64);
        let cold = Orchestrator::with_cache_dir(&dir);
        let fresh = cold.report(&key, run);
        let warm = Orchestrator::with_cache_dir(&dir);
        let cached = warm.report(&key, || panic!("must hit"));
        assert_eq!(cached, fresh);
        // The stable-serialization contract that makes this sound.
        assert_eq!(
            cached.to_stable_json().unwrap(),
            fresh.to_stable_json().unwrap()
        );
        assert_eq!(warm.hits(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifest_is_sorted_and_summarized() {
        let orch = Orchestrator::ephemeral().with_run_context(7, true);
        let _: u32 = orch.unit(&UnitKey::new("e10", "z"), || 1);
        let _: u32 = orch.unit(&UnitKey::new("e2", "b"), || 1);
        let _: u32 = orch.unit(&UnitKey::new("e2", "a"), || 1);
        let m = orch.manifest();
        assert_eq!(m.seed, 7);
        assert!(m.quick);
        let labels: Vec<(String, String)> = m
            .units
            .iter()
            .map(|u| (u.experiment.clone(), u.cell.clone()))
            .collect();
        assert_eq!(
            labels,
            vec![
                ("e2".to_string(), "a".to_string()),
                ("e2".to_string(), "b".to_string()),
                ("e10".to_string(), "z".to_string()),
            ]
        );
        assert_eq!(m.hits(), 0);
        assert_eq!(m.misses(), 3);
        let table = m.summary_table().to_markdown();
        assert!(table.contains("e2"), "{table}");
        assert!(table.contains("total"), "{table}");
    }

    #[test]
    fn manifest_roundtrips_and_feeds_progress_totals() {
        let dir = tmp_dir("manifest");
        let orch = Orchestrator::with_cache_dir(&dir).with_run_context(1, false);
        let _: u32 = orch.unit(&UnitKey::new("e1", "a"), || 1);
        let path = orch.write_manifest().expect("cache dir configured");
        assert!(path.ends_with("manifest.json"));
        let next = Orchestrator::with_cache_dir(&dir);
        assert_eq!(next.prev.len(), 1);
        assert!(next.slowest_pending().is_some());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn id_normalization() {
        assert_eq!(canonical_experiment_id("e02").as_deref(), Some("e2"));
        assert_eq!(canonical_experiment_id("E15").as_deref(), Some("e15"));
        assert_eq!(canonical_experiment_id("7").as_deref(), Some("e7"));
        assert_eq!(canonical_experiment_id("all"), None);
    }

    #[test]
    fn summary_line_reports_hit_rate() {
        let orch = Orchestrator::ephemeral();
        let _: u32 = orch.unit(&UnitKey::new("e1", "a"), || 1);
        let line = orch.summary_line();
        assert!(line.contains("cache hits: 0/1 (0%)"), "{line}");
    }

    #[test]
    fn trial_stats_summarize_a_set() {
        let g = mis_graphs::generators::path(4);
        let set = run_trials(
            &g,
            SimConfig::new(ChannelModel::Cd).with_seed(5),
            3,
            |_, _| radio_mis::cd::CdMis::new(radio_mis::params::CdParams::for_n(4)),
        );
        let stats = TrialStats::of(&set);
        assert_eq!(stats.n, 4);
        assert_eq!(stats.attempted, 3);
        assert_eq!(stats.successes(), stats.energies.len());
        assert!(stats.cost > 0);
        assert_eq!(stats.correct, 3);
    }
}
