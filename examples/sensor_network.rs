//! Sensor-network scenario: build a communication backbone on a unit-disk
//! network without collision detection — the application the paper's
//! introduction motivates.
//!
//! Battery-powered sensors are scattered over a field; nodes within radio
//! range are neighbors; no node knows its neighbors beforehand. The MIS
//! becomes the backbone (cluster heads), and every sensor is within one
//! hop of a head. Energy = awake rounds = battery drain.
//!
//! ```text
//! cargo run --release --example sensor_network
//! ```

use energy_mis::graphs::{analysis, generators};
use energy_mis::mis::nocd::NoCdMis;
use energy_mis::mis::params::NoCdParams;
use energy_mis::netsim::{ChannelModel, SimConfig, Simulator};
use energy_mis::stats::Summary;

fn main() {
    // 800 sensors in a unit square with transmission radius chosen for
    // average degree ~10.
    let n = 800;
    let radius = (10.0 / (n as f64 * std::f64::consts::PI)).sqrt();
    let field = generators::random_geometric(n, radius, 2024);
    println!(
        "deployed {n} sensors, radius {radius:.3}: {} links, Δ = {}, {} connected components",
        field.edge_count(),
        field.max_degree(),
        analysis::connected_components(&field)
    );

    // The harder, realistic channel: no collision detection.
    let params = NoCdParams::for_n(n, field.max_degree().max(2));
    let config = SimConfig::new(ChannelModel::NoCd).with_seed(99);
    let report = Simulator::new(&field, config).run(|_, _| NoCdMis::new(params));

    match report.verify_mis(&field) {
        Ok(()) => println!("backbone verified: every sensor is a head or hears one ✓"),
        Err(e) => println!("backbone INVALID: {e}"),
    }
    let heads = report.mis_mask().iter().filter(|&&b| b).count();
    println!(
        "cluster heads: {heads} ({:.1}% of sensors)",
        100.0 * heads as f64 / n as f64
    );

    // Battery report: the whole point of the sleeping model.
    let energies: Vec<f64> = report.meters.iter().map(|m| m.energy() as f64).collect();
    let s = Summary::of(&energies);
    println!(
        "awake rounds per sensor: mean {:.0}, median {:.0}, p95 {:.0}, worst {:.0}",
        s.mean,
        s.median,
        Summary::quantile(&energies, 0.95),
        s.max
    );
    println!(
        "total schedule: {} rounds — each sensor slept through {:.1}% of it",
        report.rounds,
        100.0 * (1.0 - s.mean / report.rounds as f64)
    );
    let tx: u64 = report.meters.iter().map(|m| m.transmit_rounds).sum();
    let listen: u64 = report.meters.iter().map(|m| m.listen_rounds).sum();
    println!("fleet totals: {tx} transmissions, {listen} listen rounds");
}
