//! Deterministic random-stream derivation.
//!
//! Every simulation run takes a single 64-bit master seed. Per-node streams
//! are derived with SplitMix64 so that (a) runs are exactly reproducible,
//! (b) node streams are statistically independent, and (c) the engine's
//! processing order cannot influence any node's randomness.

/// One step of the SplitMix64 generator: mixes `state + index·GOLDEN` into a
/// well-distributed 64-bit value.
///
/// # Examples
///
/// ```
/// let a = radio_netsim::split_seed(42, 0);
/// let b = radio_netsim::split_seed(42, 1);
/// assert_ne!(a, b);
/// assert_eq!(a, radio_netsim::split_seed(42, 0));
/// ```
pub fn split_seed(master: u64, index: u64) -> u64 {
    let mut z = master.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(index.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn deterministic() {
        assert_eq!(split_seed(1, 2), split_seed(1, 2));
    }

    #[test]
    fn distinct_across_indices() {
        let seeds: HashSet<u64> = (0..10_000).map(|i| split_seed(7, i)).collect();
        assert_eq!(seeds.len(), 10_000);
    }

    #[test]
    fn distinct_across_masters() {
        assert_ne!(split_seed(1, 0), split_seed(2, 0));
        // Adjacent masters should still decorrelate.
        let a: Vec<u64> = (0..8).map(|i| split_seed(100, i)).collect();
        let b: Vec<u64> = (0..8).map(|i| split_seed(101, i)).collect();
        assert!(a.iter().zip(&b).all(|(x, y)| x != y));
    }

    #[test]
    fn bits_look_balanced() {
        // Crude sanity check: across many outputs, each bit position should
        // be set roughly half the time.
        let n = 4096u64;
        for bit in [0u32, 13, 31, 47, 63] {
            let ones = (0..n)
                .filter(|&i| split_seed(99, i) >> bit & 1 == 1)
                .count() as f64;
            let frac = ones / n as f64;
            assert!((0.4..0.6).contains(&frac), "bit {bit} frac {frac}");
        }
    }
}
