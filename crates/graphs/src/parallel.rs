//! Deterministic shared-memory parallelism: the priority-based MIS solver,
//! the sharded MIS verifiers, and the worker-pool / slab-splitting
//! machinery the simulation engine shares.
//!
//! Everything in this module obeys one contract: **thread count never
//! changes an output byte**. Three constructions make that hold:
//!
//! - [`shard_slices`] hands each worker disjoint `&mut` slab windows keyed
//!   by strictly ascending id worklists, with positionally-indexed output
//!   slots read back in order by a serial merge — the engine's round
//!   pipeline (see `docs/PARALLEL_ENGINE.md`).
//! - [`prio_mis`] runs bulk-synchronous rounds in which every decision is
//!   a pure function of the previous round's frozen status snapshot, so
//!   scheduling cannot perturb any round's outcome, and the fixpoint
//!   equals the sequential greedy MIS over the priority order (see
//!   [`prio_mis_with`] for the argument).
//! - [`verify_mis_par`] scans disjoint ascending node ranges and reduces
//!   with rayon's `find_map_first`, which returns the *sequentially
//!   leftmost* hit regardless of which worker found what first — so the
//!   reported violation is byte-identical to the sequential scan's.

use crate::graph::{Graph, NodeId};
use crate::mis::MisViolation;
use crate::rng::split_seed;
use rayon::prelude::*;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};

/// At or below this many worklist entries a sharded stage runs inline:
/// splitting overhead would dominate, and the differential suites
/// deliberately straddle the threshold so both the inline and the split
/// paths are exercised.
pub const MIN_PAR_GRAIN: usize = 64;

/// Worker pools built so far, keyed by worker count. Pools are leaked
/// (see [`pool`]) so the entries are `'static`.
static POOLS: OnceLock<Mutex<Vec<(usize, &'static rayon::ThreadPool)>>> = OnceLock::new();

/// The process-wide worker pool with `threads` workers.
///
/// Pools are built lazily, once per distinct thread count, and
/// deliberately leaked: the engine's steady-state round loop must stay
/// allocation-free (see the netsim `engine_alloc` test), and a run's
/// single `install` onto a long-lived pool keeps every `rayon::join` on
/// pre-existing worker stacks. The pool size is pinned explicitly, so
/// `RAYON_NUM_THREADS` governs only rayon's global pool (the experiments
/// harness), never an explicit `threads` argument.
pub fn pool(threads: usize) -> &'static rayon::ThreadPool {
    let registry = POOLS.get_or_init(|| Mutex::new(Vec::new()));
    let mut pools = registry.lock().expect("worker pool registry poisoned");
    if let Some(&(_, pool)) = pools.iter().find(|&&(t, _)| t == threads) {
        return pool;
    }
    let pool = Box::leak(Box::new(
        rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .thread_name(|i| format!("mis-par-{i}"))
            .build()
            .expect("failed to build a worker thread pool"),
    ));
    pools.push((threads, pool));
    pool
}

/// Applies `f` to every id in `ids`, handing it disjoint `&mut` access
/// to the node's slab entry and per-node state plus the
/// positionally-matching output slot.
///
/// `ids` must be strictly ascending with every id in
/// `base..base + nodes.len()`, and `out.len() == ids.len()`. With `par`
/// false — or at or below [`MIN_PAR_GRAIN`] ids — this is a plain
/// ascending loop. With `par` true it halves the worklist, divides the
/// slabs at the split id with `split_at_mut`, and recurses under
/// `rayon::join`: every node is processed exactly once with the same
/// per-node inputs as the serial walk, which is why thread count cannot
/// change any output byte. `f` must touch nothing but its arguments and
/// shared read-only captures.
pub fn shard_slices<P, R, O, F>(
    ids: &[NodeId],
    base: usize,
    nodes: &mut [P],
    rngs: &mut [R],
    out: &mut [O],
    par: bool,
    f: &F,
) where
    P: Send,
    R: Send,
    O: Send,
    F: Fn(NodeId, &mut P, &mut R, &mut O) + Sync,
{
    debug_assert_eq!(ids.len(), out.len());
    debug_assert_eq!(nodes.len(), rngs.len());
    // The disjointness of the split_at_mut sharding below rests on ids
    // being strictly ascending and inside the slab range.
    debug_assert!(ids.windows(2).all(|w| w[0] < w[1]));
    debug_assert!(ids.first().is_none_or(|&v| v >= base));
    debug_assert!(ids.last().is_none_or(|&v| v - base < nodes.len()));
    if !par || ids.len() <= MIN_PAR_GRAIN {
        for (slot, &v) in out.iter_mut().zip(ids) {
            f(v, &mut nodes[v - base], &mut rngs[v - base], slot);
        }
        return;
    }
    let mid = ids.len() / 2;
    let (left_ids, right_ids) = ids.split_at(mid);
    // Ids are strictly ascending, so every left id indexes below the
    // first right id and the slab split below is exact.
    let cut = right_ids[0] - base;
    let (left_nodes, right_nodes) = nodes.split_at_mut(cut);
    let (left_rngs, right_rngs) = rngs.split_at_mut(cut);
    let (left_out, right_out) = out.split_at_mut(mid);
    rayon::join(
        || shard_slices(left_ids, base, left_nodes, left_rngs, left_out, true, f),
        || {
            shard_slices(
                right_ids,
                base + cut,
                right_nodes,
                right_rngs,
                right_out,
                true,
                f,
            )
        },
    );
}

/// Splits `0..g.len()` into at most `chunks + 1` contiguous ranges of
/// roughly equal CSR weight (one cell per node plus one per adjacency
/// entry), so a hub-heavy graph doesn't starve all but one worker.
///
/// Deterministic in `(g, chunks)`; the concatenation of the ranges is
/// always exactly `0..g.len()` in order, which is what lets callers
/// reduce per-range results with `find_map_first` or ordered concat
/// without any cross-range bookkeeping.
pub fn edge_balanced_ranges(g: &Graph, chunks: usize) -> Vec<(NodeId, NodeId)> {
    let n = g.len();
    if n == 0 {
        return Vec::new();
    }
    let chunks = chunks.max(1);
    let total = n + 2 * g.edge_count();
    let target = total.div_ceil(chunks).max(1);
    let mut ranges = Vec::with_capacity(chunks + 1);
    let mut start = 0;
    let mut weight = 0usize;
    for v in 0..n {
        weight += 1 + g.degree(v);
        if weight >= target {
            ranges.push((start, v + 1));
            start = v + 1;
            weight = 0;
        }
    }
    if start < n {
        ranges.push((start, n));
    }
    ranges
}

/// How [`prio_mis_with`] eliminates the neighbors of a round's winners
/// (the Galois ECL-MIS push/pull distinction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Elimination {
    /// Winners mark their neighbors `OUT` in the same round. One status
    /// write per adjacency of a winner; best when degrees are modest and
    /// even (paths, grids, unit-disk, G(n,p)).
    Push,
    /// Every undecided node checks its own neighborhood for an `IN` node
    /// in the next round and retires itself. Writes stay per-node (no
    /// write contention on hub neighborhoods); best on heavy-tailed
    /// (power-law) degree distributions.
    Pull,
}

impl Elimination {
    /// Stable lowercase label, for tables and CLI surfaces.
    pub fn label(self) -> &'static str {
        match self {
            Elimination::Push => "push",
            Elimination::Pull => "pull",
        }
    }
}

/// Picks the elimination side from the topology, per the Galois ECL-MIS
/// guidance: pull on heavy-tailed (power-law-like) degree distributions,
/// push otherwise.
///
/// The proxy for "heavy-tailed" is a hub test: a maximum degree that is
/// both large in absolute terms and far above the average degree. Stars,
/// power-law graphs, and lopsided trees select [`Elimination::Pull`];
/// paths, cycles, grids, unit-disk and G(n,p) graphs select
/// [`Elimination::Push`].
pub fn choose_elimination(g: &Graph) -> Elimination {
    let hub = g.max_degree() as f64;
    if hub >= 32.0 && hub > 8.0 * g.avg_degree().max(1.0) {
        Elimination::Pull
    } else {
        Elimination::Push
    }
}

/// Result of one [`prio_mis_with`] run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrioRun {
    /// MIS membership mask, indexed by node id.
    pub mask: Vec<bool>,
    /// Bulk-synchronous rounds until every node was decided. Deterministic
    /// in `(graph, seed, elimination)` — but *not* in the elimination
    /// side, which trades rounds for write locality.
    pub rounds: u32,
}

/// Node states in the solver's status array.
const UNDECIDED: u8 = 0;
const IN: u8 = 1;
const OUT: u8 = 2;

/// Priority-based parallel MIS (the Galois ECL-MIS `prio` scheme) with
/// topology-driven push/pull selection via [`choose_elimination`].
///
/// Every node draws the pinned priority `split_seed(seed, v)`; a node
/// joins the set when it beats every undecided neighbor, where `v` beats
/// `u` iff `(priority[v], v) > (priority[u], u)` — the id tie-break makes
/// the order total, so the result is the unique greedy MIS over nodes
/// sorted by descending `(priority, id)`. Deterministic in `(g, seed)`:
/// thread count and elimination side never change the mask.
///
/// ```
/// use mis_graphs::{generators, mis, parallel};
///
/// let g = generators::gnp(300, 0.03, 7);
/// let set = parallel::prio_mis(&g, 42, 2);
/// assert!(mis::verify_mis(&g, &set).is_ok());
/// assert_eq!(set, parallel::prio_mis(&g, 42, 1));
/// ```
pub fn prio_mis(g: &Graph, seed: u64, threads: usize) -> Vec<bool> {
    prio_mis_with(g, seed, threads, choose_elimination(g)).mask
}

/// [`prio_mis`] with an explicit elimination side, also reporting the
/// round count.
///
/// # Determinism argument
///
/// Rounds are bulk-synchronous: phase A computes every undecided node's
/// decision from the status snapshot frozen at the start of the round
/// (no status cell is written while phase A runs); phase B applies the
/// decisions (push: winners store `IN` on themselves and `OUT` on their
/// neighbors — two winners are never adjacent, so the only concurrent
/// writes are same-value `OUT` stores; pull: every node writes only its
/// own cell); phase C rebuilds the worklist by filtering ascending chunks
/// and concatenating them in chunk order, which preserves ascending order
/// exactly. Every phase's output is therefore a pure function of the
/// previous snapshot, independent of scheduling — thread count cannot
/// change the mask *or* the round count.
///
/// The fixpoint is the greedy MIS over descending `(priority, id)` order:
/// by induction over that order, a node enters the set iff none of its
/// higher-priority neighbors did — exactly the greedy rule — and both
/// elimination sides enforce the same membership condition, differing
/// only in *when* a loser learns it lost (push: the round its neighbor
/// won; pull: the round after). Each round the undecided node with the
/// globally highest priority wins, so the loop terminates.
pub fn prio_mis_with(g: &Graph, seed: u64, threads: usize, elim: Elimination) -> PrioRun {
    let n = g.len();
    let threads = threads.max(1);
    let prio: Vec<u64> = (0..n).map(|v| split_seed(seed, v as u64)).collect();
    let status: Vec<AtomicU8> = (0..n).map(|_| AtomicU8::new(UNDECIDED)).collect();
    let mut worklist: Vec<NodeId> = (0..n).collect();
    let mut rounds = 0u32;
    pool(threads).install(|| {
        while !worklist.is_empty() {
            rounds += 1;
            let chunk = chunk_len(worklist.len(), threads);
            let mut decisions = vec![UNDECIDED; worklist.len()];
            // Phase A: decide from the frozen snapshot. Only `decisions`
            // is written, so the snapshot stays frozen throughout.
            worklist
                .par_chunks(chunk)
                .zip(decisions.par_chunks_mut(chunk))
                .for_each(|(ids, dec)| {
                    for (&v, d) in ids.iter().zip(dec.iter_mut()) {
                        *d = decide(g, &prio, &status, v, elim);
                    }
                });
            // Phase B: apply the decisions.
            worklist
                .par_chunks(chunk)
                .zip(decisions.par_chunks(chunk))
                .for_each(|(ids, dec)| {
                    for (&v, &d) in ids.iter().zip(dec.iter()) {
                        match (elim, d) {
                            (Elimination::Push, IN) => {
                                status[v].store(IN, Ordering::Relaxed);
                                // Neighbors of a winner are UNDECIDED or
                                // OUT (an IN neighbor would have marked v
                                // OUT when it won), so concurrent stores
                                // here always write the same value.
                                for &u in g.neighbors(v) {
                                    status[u].store(OUT, Ordering::Relaxed);
                                }
                            }
                            (Elimination::Pull, IN) | (Elimination::Pull, OUT) => {
                                status[v].store(d, Ordering::Relaxed);
                            }
                            _ => {}
                        }
                    }
                });
            // Phase C: keep the still-undecided ids. Filtering ascending
            // chunks and concatenating in chunk order keeps the worklist
            // ascending regardless of chunk boundaries.
            let kept: Vec<Vec<NodeId>> = worklist
                .par_chunks(chunk)
                .map(|ids| {
                    ids.iter()
                        .copied()
                        .filter(|&v| status[v].load(Ordering::Relaxed) == UNDECIDED)
                        .collect()
                })
                .collect();
            worklist = kept.concat();
        }
    });
    let mask = status
        .iter()
        .map(|s| s.load(Ordering::Relaxed) == IN)
        .collect();
    PrioRun { mask, rounds }
}

/// Worklist chunk length: about four chunks per worker for stealing slack,
/// never below [`MIN_PAR_GRAIN`].
fn chunk_len(len: usize, threads: usize) -> usize {
    len.div_ceil(threads.max(1) * 4).max(MIN_PAR_GRAIN)
}

/// One node's phase-A decision against the frozen snapshot.
fn decide(g: &Graph, prio: &[u64], status: &[AtomicU8], v: NodeId, elim: Elimination) -> u8 {
    let beats = |u: NodeId, w: NodeId| -> bool { (prio[u], u) > (prio[w], w) };
    let mut blocked = false;
    for &u in g.neighbors(v) {
        match status[u].load(Ordering::Relaxed) {
            // Pull mode discovers IN neighbors one round late; push mode
            // never sees one (the winner already marked v OUT).
            IN => return OUT,
            UNDECIDED if beats(u, v) => blocked = true,
            _ => {}
        }
    }
    if blocked {
        UNDECIDED
    } else {
        IN
    }
}

/// Sharded parallel MIS verification, byte-identical to
/// [`crate::mis::verify_mis`]: same `Ok`/`Err` outcome *and* the same
/// first violation in canonical scan order, at every thread count.
///
/// Node ranges are split by [`edge_balanced_ranges`] and scanned
/// concurrently; rayon's `find_map_first` returns the sequentially
/// leftmost hit, so work-stealing cannot surface a later violation.
///
/// ```
/// use mis_graphs::{generators, mis, parallel};
///
/// let g = generators::path(5);
/// let set = mis::greedy_mis(&g);
/// assert!(parallel::verify_mis_par(&g, &set, 4).is_ok());
/// assert_eq!(
///     parallel::verify_mis_par(&g, &[true; 5], 4),
///     mis::verify_mis(&g, &[true; 5]),
/// );
/// ```
///
/// # Errors
///
/// Returns the first [`MisViolation`] in the same (length, then
/// independence, then domination; each in ascending scan order) priority
/// as the sequential verifier.
pub fn verify_mis_par(g: &Graph, set: &[bool], threads: usize) -> Result<(), MisViolation> {
    if set.len() != g.len() {
        return Err(MisViolation::WrongLength {
            got: set.len(),
            expected: g.len(),
        });
    }
    verify_par_inner(g, set, None, threads)
}

/// Fault-aware variant of [`verify_mis_par`]: checks MIS-ness of `set` on
/// the subgraph induced by `healthy` nodes, byte-identical to
/// [`crate::mis::verify_mis_induced`] at every thread count.
///
/// # Errors
///
/// Returns the first [`MisViolation`] in the sequential induced scan
/// order (independence, then domination; non-healthy nodes are neither
/// counted in the set nor required to be dominated).
///
/// # Panics
///
/// Panics if `healthy.len() != g.len()` (a caller bug, unlike a claimed
/// mask of the wrong length, which is reported as
/// [`MisViolation::WrongLength`]).
pub fn verify_mis_induced_par(
    g: &Graph,
    set: &[bool],
    healthy: &[bool],
    threads: usize,
) -> Result<(), MisViolation> {
    if set.len() != g.len() {
        return Err(MisViolation::WrongLength {
            got: set.len(),
            expected: g.len(),
        });
    }
    assert_eq!(healthy.len(), g.len(), "healthy mask length mismatch");
    verify_par_inner(g, set, Some(healthy), threads)
}

/// Shared two-pass scan behind both parallel verifiers. `healthy` of
/// `None` means every node is healthy (the plain-MIS case).
fn verify_par_inner(
    g: &Graph,
    set: &[bool],
    healthy: Option<&[bool]>,
    threads: usize,
) -> Result<(), MisViolation> {
    let threads = threads.max(1);
    let ranges = edge_balanced_ranges(g, threads * 8);
    let in_set = |v: NodeId| set[v] && healthy.is_none_or(|h| h[v]);
    pool(threads).install(|| {
        let independence = ranges.par_iter().find_map_first(|&(lo, hi)| {
            for v in lo..hi {
                if !in_set(v) {
                    continue;
                }
                for &u in g.neighbors(v) {
                    if u > v && in_set(u) {
                        return Some(MisViolation::NotIndependent { u: v, v: u });
                    }
                }
            }
            None
        });
        if let Some(violation) = independence {
            return Err(violation);
        }
        let domination = ranges.par_iter().find_map_first(|&(lo, hi)| {
            for v in lo..hi {
                if healthy.is_some_and(|h| !h[v]) || in_set(v) {
                    continue;
                }
                if !g.neighbors(v).iter().any(|&u| in_set(u)) {
                    return Some(MisViolation::NotDominated { v });
                }
            }
            None
        });
        match domination {
            Some(violation) => Err(violation),
            None => Ok(()),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::mis;

    #[test]
    fn prio_pinned_masks() {
        // Reference outputs computed independently from the frozen
        // split_seed priorities; they pin the (priority, id) comparator
        // and the greedy fixpoint in one go.
        let cases: [(Graph, u64, &[bool]); 4] = [
            (
                generators::path(6),
                1,
                &[true, false, true, false, false, true],
            ),
            (
                generators::cycle(9),
                2,
                &[false, true, false, true, false, true, false, true, false],
            ),
            (
                generators::star(7),
                3,
                &[false, true, true, true, true, true, true],
            ),
            (
                generators::grid2d(3, 4),
                5,
                &[
                    false, true, false, true, true, false, true, false, false, true, false, true,
                ],
            ),
        ];
        for (g, seed, expected) in &cases {
            for elim in [Elimination::Push, Elimination::Pull] {
                let run = prio_mis_with(g, *seed, 1, elim);
                assert_eq!(&run.mask, expected, "seed {seed} {elim:?}");
            }
            assert_eq!(&prio_mis(g, *seed, 2), expected, "seed {seed} auto");
        }
    }

    #[test]
    fn prio_equals_priority_order_greedy() {
        for (i, g) in [
            generators::gnp(150, 0.05, 3),
            generators::star(40),
            generators::grid2d(7, 9),
            generators::random_tree(90, 4),
            generators::clique(12),
            generators::empty(10),
        ]
        .iter()
        .enumerate()
        {
            for seed in 0..4u64 {
                let mut order: Vec<NodeId> = g.nodes().collect();
                order.sort_by_key(|&v| std::cmp::Reverse((split_seed(seed, v as u64), v)));
                let sequential = mis::greedy_mis_in_order(g, order);
                for elim in [Elimination::Push, Elimination::Pull] {
                    let run = prio_mis_with(g, seed, 2, elim);
                    assert_eq!(run.mask, sequential, "graph #{i} seed {seed} {elim:?}");
                    assert!(run.rounds as usize <= g.len().max(1));
                }
                assert!(mis::verify_mis(g, &sequential).is_ok());
            }
        }
    }

    #[test]
    fn prio_thread_counts_agree() {
        let g = generators::gnp(400, 0.02, 11);
        for elim in [Elimination::Push, Elimination::Pull] {
            let one = prio_mis_with(&g, 9, 1, elim);
            for threads in [2usize, 4, 8] {
                assert_eq!(
                    prio_mis_with(&g, 9, threads, elim),
                    one,
                    "{elim:?} t={threads}"
                );
            }
        }
    }

    #[test]
    fn prio_on_degenerate_graphs() {
        assert_eq!(prio_mis(&Graph::empty(0), 1, 4), Vec::<bool>::new());
        assert_eq!(prio_mis(&Graph::empty(3), 1, 4), vec![true; 3]);
        let run = prio_mis_with(&Graph::empty(0), 1, 1, Elimination::Push);
        assert_eq!(run.rounds, 0);
    }

    #[test]
    fn elimination_choice_follows_topology() {
        assert_eq!(
            choose_elimination(&generators::path(500)),
            Elimination::Push
        );
        assert_eq!(
            choose_elimination(&generators::grid2d(20, 25)),
            Elimination::Push
        );
        assert_eq!(
            choose_elimination(&generators::star(500)),
            Elimination::Pull
        );
        // Small graphs never qualify as heavy-tailed (hub < 32).
        assert_eq!(choose_elimination(&generators::star(8)), Elimination::Push);
        assert_eq!(choose_elimination(&Graph::empty(10)), Elimination::Push);
    }

    #[test]
    fn elimination_labels() {
        assert_eq!(Elimination::Push.label(), "push");
        assert_eq!(Elimination::Pull.label(), "pull");
    }

    #[test]
    fn ranges_partition_the_node_span() {
        for (g, chunks) in [
            (generators::gnp(200, 0.05, 1), 7),
            (generators::star(100), 4),
            (generators::path(10), 100),
            (Graph::empty(5), 3),
        ] {
            let ranges = edge_balanced_ranges(&g, chunks);
            assert!(ranges.len() <= chunks + 1);
            let mut expected_start = 0;
            for &(lo, hi) in &ranges {
                assert_eq!(lo, expected_start);
                assert!(lo < hi);
                expected_start = hi;
            }
            assert_eq!(expected_start, g.len());
        }
        assert!(edge_balanced_ranges(&Graph::empty(0), 4).is_empty());
    }

    #[test]
    fn ranges_balance_hub_weight() {
        // On a star, the hub's weight must not drag every node into one
        // range: the hub's own range ends immediately after it.
        let g = generators::star(1000);
        let ranges = edge_balanced_ranges(&g, 8);
        assert!(ranges.len() > 1, "{ranges:?}");
        assert_eq!(ranges[0], (0, 1), "{ranges:?}");
    }

    #[test]
    fn parallel_verifier_matches_sequential_verdicts() {
        let g = generators::gnp(120, 0.06, 5);
        let good = mis::greedy_mis(&g);
        for threads in [1usize, 2, 8] {
            assert_eq!(verify_mis_par(&g, &good, threads), Ok(()));
            // Corrupt independence: add a neighbor of an in-set node.
            let mut both_ends = good.clone();
            let (u, v) = g.edges().next().expect("gnp(120, .06) has edges");
            both_ends[u] = true;
            both_ends[v] = true;
            assert_eq!(
                verify_mis_par(&g, &both_ends, threads),
                mis::verify_mis(&g, &both_ends)
            );
            // Corrupt domination: empty set on a non-empty graph.
            let nobody = vec![false; g.len()];
            assert_eq!(
                verify_mis_par(&g, &nobody, threads),
                mis::verify_mis(&g, &nobody)
            );
            assert_eq!(
                verify_mis_par(&g, &nobody, threads),
                Err(MisViolation::NotDominated { v: 0 })
            );
            // Wrong length reports like the sequential verifier.
            assert_eq!(
                verify_mis_par(&g, &[], threads),
                Err(MisViolation::WrongLength {
                    got: 0,
                    expected: g.len()
                })
            );
        }
    }

    #[test]
    fn parallel_verifier_reports_leftmost_violation() {
        // Two independence violations; the canonical scan must always
        // report the (1, 2) pair, never (7, 8), at any thread count.
        let g = generators::path(10);
        let mut set = vec![false; 10];
        for v in [1, 2, 5, 7, 8] {
            set[v] = true;
        }
        let expected = mis::verify_mis(&g, &set);
        assert_eq!(expected, Err(MisViolation::NotIndependent { u: 1, v: 2 }));
        for threads in [1usize, 2, 8] {
            assert_eq!(verify_mis_par(&g, &set, threads), expected);
        }
    }

    #[test]
    fn induced_parallel_verifier_matches_sequential() {
        // Path 0-1-2-3: node 2 unhealthy; {0, 3} is an MIS of the induced
        // subgraph on {0, 1, 3}.
        let g = generators::path(4);
        let healthy = vec![true, true, false, true];
        let set = vec![true, false, false, true];
        for threads in [1usize, 2, 8] {
            assert_eq!(verify_mis_induced_par(&g, &set, &healthy, threads), Ok(()));
            // An unhealthy node's membership claim is ignored...
            let claims = vec![true, true, false, true];
            let seq = mis::verify_mis_induced(&g, &claims, &healthy);
            assert_eq!(verify_mis_induced_par(&g, &claims, &healthy, threads), seq);
            // ...and coverage must come from a healthy neighbor.
            let uncovered = vec![true, false, false, false];
            let seq = mis::verify_mis_induced(&g, &uncovered, &healthy);
            assert_eq!(seq, Err(MisViolation::NotDominated { v: 3 }));
            assert_eq!(
                verify_mis_induced_par(&g, &uncovered, &healthy, threads),
                seq
            );
        }
    }

    #[test]
    #[should_panic(expected = "healthy mask length mismatch")]
    fn induced_parallel_verifier_rejects_bad_healthy_len() {
        let g = generators::path(3);
        let _ = verify_mis_induced_par(&g, &[false; 3], &[true; 2], 1);
    }

    #[test]
    fn pool_is_cached_per_thread_count() {
        let p2a = pool(2) as *const rayon::ThreadPool;
        let p2b = pool(2) as *const rayon::ThreadPool;
        assert!(std::ptr::eq(p2a, p2b));
        assert_eq!(pool(2).current_num_threads(), 2);
    }

    #[test]
    fn shard_slices_parallel_matches_serial() {
        // Mirror of the netsim-level test, against the generic signature:
        // per-node u64 "rng" state instead of a NodeRng.
        fn run(ids: &[NodeId], n: usize, par: bool) -> (Vec<u32>, Vec<u64>) {
            let mut nodes: Vec<u32> = vec![0; n];
            let mut states: Vec<u64> = (0..n as u64).map(|v| split_seed(3, v)).collect();
            let mut out: Vec<u64> = vec![0; ids.len()];
            shard_slices(
                ids,
                0,
                &mut nodes,
                &mut states,
                &mut out,
                par,
                &|v: NodeId, node: &mut u32, state: &mut u64, slot: &mut u64| {
                    *node += 1;
                    *state = split_seed(*state, 1);
                    *slot = v as u64 ^ *state;
                },
            );
            (nodes, out)
        }
        let ids: Vec<NodeId> = (0..500).filter(|v| v % 3 != 1).collect();
        let serial = run(&ids, 500, false);
        let parallel = pool(3).install(|| run(&ids, 500, true));
        assert_eq!(serial, parallel);
        for v in 0..500 {
            assert_eq!(serial.0[v], u32::from(ids.contains(&v)));
        }
    }
}
