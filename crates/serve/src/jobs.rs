//! Job planning and execution: from a [`JobRequest`] to a content
//! address, and from a content address to a cached payload.
//!
//! Planning ([`plan`]) is cheap and synchronous — it validates the
//! request and derives its [`UnitKey`], whose 16-hex hash *is* the job
//! id. Execution ([`execute`]) runs on a worker thread through the
//! orchestrator, so every payload lands in the same content-addressed
//! cache the CLI uses; [`peek_outcome`] is the read-only half the server
//! uses to answer warm submissions without occupying a worker.

use crate::api::JobRequest;
use mis_experiments::{run_experiment_in, ExpConfig, Orchestrator, TrialStats, UnitKey, ALL_IDS};
use mis_graphs::generators::Family;
use mis_graphs::{Graph, NodeId};
use radio_mis::baselines::naive_luby_cd;
use radio_mis::params::{CdParams, LowDegreeParams, NoCdParams};
use radio_mis::{low_degree::LowDegreeMis, CdMis, NoCdMis};
use radio_netsim::{
    run_trials, ChannelModel, ChannelTrace, NodeRng, Protocol, RunReport, SimConfig, Simulator,
};
use std::sync::mpsc::Sender;

/// Upper bound on `n` for sim jobs, so one request cannot wedge the
/// worker pool on a graph generation the cache will never amortize.
const MAX_N: usize = 1 << 20;

/// A validated job: the original request plus its content address.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// The request as submitted (after serde defaults).
    pub request: JobRequest,
    /// Canonical cache key; [`UnitKey::hash_hex`] of this is the job id.
    pub key: UnitKey,
}

impl JobSpec {
    /// The content-addressed job id (16 hex chars).
    pub fn id(&self) -> String {
        self.key.hash_hex()
    }
}

/// Map an algorithm label to the channel model it runs under, mirroring
/// the CLI's dispatch. Unknown labels are a client error.
pub fn channel_for(algorithm: &str) -> Result<ChannelModel, String> {
    match algorithm {
        "cd" | "naive-luby" => Ok(ChannelModel::Cd),
        "beeping" => Ok(ChannelModel::Beeping),
        "nocd" | "low-degree" => Ok(ChannelModel::NoCd),
        other => Err(format!(
            "unknown algorithm `{other}` (expected cd, beeping, nocd, low-degree, or naive-luby)"
        )),
    }
}

/// Validate a request and derive its content address.
///
/// The key folds in every ingredient that changes the result: experiment
/// id/seed/quick for experiment jobs; algorithm, graph family, realized
/// node count, the full [`SimConfig::fingerprint`] (seed, channel model,
/// fault plan, engine mode), and the trial count for sim jobs. Worker
/// thread counts are deliberately *not* ingredients — the engine's
/// determinism contract makes results thread-invariant, so warm entries
/// stay valid across `threads` settings.
pub fn plan(request: &JobRequest) -> Result<JobSpec, String> {
    match request {
        JobRequest::Experiment { id, seed, quick } => {
            if !ALL_IDS.contains(&id.as_str()) {
                return Err(format!(
                    "unknown experiment `{id}` (expected one of e1..e{})",
                    ALL_IDS.len()
                ));
            }
            let key = UnitKey::new("serve", format!("experiment-{id}"))
                .with("id", id.as_str())
                .with("seed", *seed)
                .with("quick", *quick);
            Ok(JobSpec {
                request: request.clone(),
                key,
            })
        }
        JobRequest::Sim {
            algorithm,
            family,
            n,
            seed,
            trials,
            trace,
            threads: _,
        } => {
            let channel = channel_for(algorithm)?;
            let fam = Family::parse(family)?;
            if *n == 0 || *n > MAX_N {
                return Err(format!("n must be in 1..={MAX_N}, got {n}"));
            }
            if !*trace && *trials == 0 {
                return Err("trials must be positive".to_string());
            }
            let graph = fam.generate(*n, *seed);
            let config = SimConfig::new(channel).with_seed(*seed);
            let prefix = if *trace { "trace" } else { "sim" };
            let mut key = UnitKey::new("serve", format!("{prefix}-{algorithm}-{family}-n{n}"))
                .with("alg", algorithm.as_str())
                .with("family", family.as_str())
                .with("n", graph.len())
                .with("sim", config.fingerprint());
            if !*trace {
                key = key.with("trials", *trials);
            }
            Ok(JobSpec {
                request: request.clone(),
                key,
            })
        }
    }
}

/// Cache-only lookup for a planned job: the payload if the content
/// address already resolves, `None` otherwise. Records a hit on the
/// orchestrator when it succeeds; never runs the simulator.
pub fn peek_outcome(orch: &Orchestrator, spec: &JobSpec) -> Option<serde_json::Value> {
    match &spec.request {
        JobRequest::Experiment { .. } => orch
            .peek::<String>(&spec.key)
            .map(serde_json::Value::String),
        JobRequest::Sim {
            family,
            n,
            seed,
            trace: true,
            ..
        } => {
            let report = orch.peek::<RunReport>(&spec.key)?;
            let graph = Family::parse(family).ok()?.generate(*n, *seed);
            Some(trace_payload(&report, &graph))
        }
        JobRequest::Sim { .. } => {
            let stats = orch.peek::<TrialStats>(&spec.key)?;
            serde_json::to_value(stats).ok()
        }
    }
}

/// Execute a planned job through `orch`, returning its JSON payload.
///
/// For traced sim jobs, `frames` (when provided) receives the engine's
/// live JSONL trace frames — byte-identical to what
/// [`radio_netsim::JsonlTrace`] would write to a file. Cache hits skip
/// the simulator entirely and therefore emit no frames.
pub fn execute(
    orch: &Orchestrator,
    spec: &JobSpec,
    frames: Option<Sender<Vec<u8>>>,
) -> Result<serde_json::Value, String> {
    match &spec.request {
        JobRequest::Experiment { id, seed, quick } => {
            let cfg = ExpConfig {
                quick: *quick,
                seed: *seed,
                threads: 1,
            };
            let markdown: String = orch.unit(&spec.key, || {
                run_experiment_in(id, &cfg, orch).to_markdown()
            });
            Ok(serde_json::Value::String(markdown))
        }
        JobRequest::Sim {
            algorithm,
            family,
            n,
            seed,
            trials,
            trace,
            threads,
        } => {
            let channel = channel_for(algorithm)?;
            let graph = Family::parse(family)?.generate(*n, *seed);
            let config = SimConfig::new(channel)
                .with_seed(*seed)
                .with_threads((*threads).max(1));
            let n_bound = graph.len().max(2);
            let delta = graph.max_degree().max(2);
            if *trace {
                let report = run_traced(
                    orch, &spec.key, &graph, config, algorithm, n_bound, delta, frames,
                );
                Ok(trace_payload(&report, &graph))
            } else {
                let stats = run_trial_block(
                    orch, &spec.key, &graph, config, *trials, algorithm, n_bound, delta,
                );
                serde_json::to_value(stats).map_err(|e| e.to_string())
            }
        }
    }
}

/// The compact payload derived from a traced run's full report.
fn trace_payload(report: &RunReport, graph: &Graph) -> serde_json::Value {
    serde_json::json!({
        "n": graph.len(),
        "rounds": report.rounds,
        "completed": report.completed,
        "max_energy": report.meters.iter().map(|m| m.energy()).max().unwrap_or(0),
        "correct": report.is_correct_mis(graph),
    })
}

/// Run (or replay from cache) an aggregated trial block.
#[allow(clippy::too_many_arguments)]
fn run_trial_block(
    orch: &Orchestrator,
    key: &UnitKey,
    graph: &Graph,
    config: SimConfig,
    trials: usize,
    algorithm: &str,
    n_bound: usize,
    delta: usize,
) -> TrialStats {
    match algorithm {
        "cd" | "beeping" => {
            let p = CdParams::for_n(n_bound);
            trial_unit(orch, key, graph, config, trials, move |_, _| CdMis::new(p))
        }
        "naive-luby" => {
            let p = CdParams::for_n(n_bound);
            trial_unit(orch, key, graph, config, trials, move |_, _| {
                naive_luby_cd(p)
            })
        }
        "nocd" => {
            let p = NoCdParams::for_n(n_bound, delta);
            trial_unit(orch, key, graph, config, trials, move |_, _| {
                NoCdMis::new(p)
            })
        }
        "low-degree" => {
            let p = LowDegreeParams::for_n(n_bound, delta);
            trial_unit(orch, key, graph, config, trials, move |_, _| {
                LowDegreeMis::new(p)
            })
        }
        other => unreachable!("algorithm `{other}` was validated by plan()"),
    }
}

fn trial_unit<P, F>(
    orch: &Orchestrator,
    key: &UnitKey,
    graph: &Graph,
    config: SimConfig,
    trials: usize,
    factory: F,
) -> TrialStats
where
    P: Protocol + Send,
    F: Fn(NodeId, &mut NodeRng) -> P + Sync,
{
    orch.unit_with_cost(
        key,
        || TrialStats::of(&run_trials(graph, config, trials, factory)),
        |stats| stats.cost,
    )
}

/// Run (or replay from cache) a single traced simulation, streaming
/// frames to `frames` when the run is live.
#[allow(clippy::too_many_arguments)]
fn run_traced(
    orch: &Orchestrator,
    key: &UnitKey,
    graph: &Graph,
    config: SimConfig,
    algorithm: &str,
    n_bound: usize,
    delta: usize,
    frames: Option<Sender<Vec<u8>>>,
) -> RunReport {
    let mut sink = match frames {
        Some(tx) => ChannelTrace::from_sender(tx),
        // No subscriber: a pre-dropped receiver makes every send a
        // counted no-op, keeping one code path.
        None => ChannelTrace::channel().0,
    };
    let sim = Simulator::new(graph, config);
    orch.report(key, || match algorithm {
        "cd" | "beeping" => {
            let p = CdParams::for_n(n_bound);
            sim.run_traced(|_, _| CdMis::new(p), &mut sink)
        }
        "naive-luby" => {
            let p = CdParams::for_n(n_bound);
            sim.run_traced(|_, _| naive_luby_cd(p), &mut sink)
        }
        "nocd" => {
            let p = NoCdParams::for_n(n_bound, delta);
            sim.run_traced(|_, _| NoCdMis::new(p), &mut sink)
        }
        "low-degree" => {
            let p = LowDegreeParams::for_n(n_bound, delta);
            sim.run_traced(|_, _| LowDegreeMis::new(p), &mut sink)
        }
        other => unreachable!("algorithm `{other}` was validated by plan()"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim_request(seed: u64, trace: bool) -> JobRequest {
        JobRequest::Sim {
            algorithm: "cd".to_string(),
            family: "path".to_string(),
            n: 24,
            seed,
            trials: 2,
            trace,
            threads: 1,
        }
    }

    #[test]
    fn plan_is_deterministic_and_seed_sensitive() {
        let a = plan(&sim_request(1, false)).unwrap();
        let b = plan(&sim_request(1, false)).unwrap();
        let c = plan(&sim_request(2, false)).unwrap();
        assert_eq!(a.id(), b.id());
        assert_ne!(a.id(), c.id());
        assert_eq!(a.id().len(), 16);
    }

    #[test]
    fn traced_and_untraced_jobs_have_distinct_addresses() {
        let plain = plan(&sim_request(1, false)).unwrap();
        let traced = plan(&sim_request(1, true)).unwrap();
        assert_ne!(plain.id(), traced.id());
    }

    #[test]
    fn plan_rejects_bad_requests() {
        let bad_alg = JobRequest::Sim {
            algorithm: "quantum".to_string(),
            family: "path".to_string(),
            n: 8,
            seed: 0,
            trials: 1,
            trace: false,
            threads: 1,
        };
        assert!(plan(&bad_alg).is_err());

        let bad_exp = JobRequest::Experiment {
            id: "e99".to_string(),
            seed: 0,
            quick: true,
        };
        assert!(plan(&bad_exp).is_err());
    }

    #[test]
    fn execute_then_peek_round_trips_through_the_cache() {
        let dir = std::env::temp_dir().join(format!("mis-serve-jobs-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        let spec = plan(&sim_request(7, false)).unwrap();
        let cold = Orchestrator::with_cache_dir(&dir);
        assert_eq!(peek_outcome(&cold, &spec), None);
        let payload = execute(&cold, &spec, None).unwrap();
        assert_eq!(cold.misses(), 1);

        let warm = Orchestrator::with_cache_dir(&dir);
        let peeked = peek_outcome(&warm, &spec).expect("cached after execute");
        assert_eq!(peeked, payload);
        assert_eq!((warm.hits(), warm.misses()), (1, 0));

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn traced_execute_streams_frames_and_caches_the_report() {
        let dir = std::env::temp_dir().join(format!("mis-serve-jobs-tr-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        let spec = plan(&sim_request(3, true)).unwrap();
        let (tx, rx) = std::sync::mpsc::channel();
        let cold = Orchestrator::with_cache_dir(&dir);
        let payload = execute(&cold, &spec, Some(tx)).unwrap();
        let frames: Vec<Vec<u8>> = rx.iter().collect();
        assert!(!frames.is_empty(), "a live traced run must emit frames");
        assert!(frames.iter().all(|f| f.ends_with(b"\n")));
        assert_eq!(payload["correct"], serde_json::json!(true));

        // Warm re-execution: identical payload, no frames (no simulator).
        let (tx2, rx2) = std::sync::mpsc::channel();
        let warm = Orchestrator::with_cache_dir(&dir);
        let replay = execute(&warm, &spec, Some(tx2)).unwrap();
        assert_eq!(replay, payload);
        assert_eq!(warm.hits(), 1);
        assert_eq!(rx2.iter().count(), 0, "cache hits emit no trace frames");

        let _ = std::fs::remove_dir_all(&dir);
    }
}
