//! A native beeping-model MIS with sender-side collision detection —
//! the §1.4 related-work setting of Jeavons–Scott–Xu \[28\].
//!
//! The paper's radio model forbids sender-side CD (a transmitter learns
//! nothing); \[28\] shows that *with* it, the beeping model admits an
//! optimal O(log n)-round MIS. This module implements the feedback-driven
//! dynamics in that spirit, as a baseline runnable under
//! [`radio_netsim::ChannelModel::BeepingSenderCd`]:
//!
//! - rounds alternate **competition** (even) and **announcement** (odd);
//! - an active node beeps in a competition round with its current desire
//!   `p` and listens otherwise;
//! - sender-side CD makes joining *deterministically safe*: a node joins
//!   the MIS iff it beeped and heard **no** beep — two adjacent nodes
//!   beeping together both hear each other and neither joins, so
//!   independence can never be violated (unlike every radio algorithm in
//!   this crate, whose failure probability is 1/poly(n));
//! - desires adapt from the channel feedback alone (the "feedback from
//!   nature" idea of \[28\]): contention — beeping into a beep, or hearing
//!   one — halves `p`; silence doubles it (capped at 1/2);
//! - MIS nodes beep in every announcement round; active nodes that hear
//!   an announcement leave as dominated.
//!
//! Maximality holds as long as the round budget suffices; the budget is a
//! parameter and the tests enforce the calibrated default.

use crate::params::log2f;
use radio_netsim::{Action, Feedback, Message, NodeRng, NodeStatus, Protocol};
use rand::Rng;

/// Parameters for [`NativeBeepingMis`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BeepingParams {
    /// Network size bound.
    pub n: usize,
    /// Round-pair budget multiplier: the schedule runs ⌈c·log₂ n⌉
    /// competition/announcement pairs.
    pub c: f64,
}

impl BeepingParams {
    /// Calibrated preset (c = 16; validated by the test suite).
    pub fn for_n(n: usize) -> BeepingParams {
        BeepingParams { n, c: 16.0 }
    }

    /// Number of competition/announcement pairs.
    pub fn pairs(&self) -> u64 {
        (self.c * log2f(self.n)).ceil().max(1.0) as u64
    }

    /// Total rounds (2 per pair).
    pub fn total_rounds(&self) -> u64 {
        2 * self.pairs()
    }

    /// Smallest desire exponent (p ≥ 2^-exp); desires never drop below
    /// ~1/(4n).
    pub fn max_desire_exp(&self) -> u32 {
        (log2f(self.n).ceil() as u32) + 2
    }
}

/// The per-node state machine. Run under
/// [`radio_netsim::ChannelModel::BeepingSenderCd`].
#[derive(Debug, Clone)]
pub struct NativeBeepingMis {
    params: BeepingParams,
    /// Desire p = 2^-desire_exp.
    desire_exp: u32,
    /// Whether this node beeped in the current competition round.
    beeped: bool,
    status: NodeStatus,
    finished: bool,
}

impl NativeBeepingMis {
    /// Creates a node.
    pub fn new(params: BeepingParams) -> NativeBeepingMis {
        NativeBeepingMis {
            params,
            desire_exp: 1,
            beeped: false,
            status: NodeStatus::Undecided,
            finished: false,
        }
    }

    /// Current desire exponent (diagnostics).
    pub fn desire_exp(&self) -> u32 {
        self.desire_exp
    }

    fn bump_down(&mut self) {
        self.desire_exp = (self.desire_exp + 1).min(self.params.max_desire_exp());
    }

    fn bump_up(&mut self) {
        self.desire_exp = self.desire_exp.saturating_sub(1).max(1);
    }
}

impl Protocol for NativeBeepingMis {
    fn act(&mut self, round: u64, rng: &mut NodeRng) -> Action {
        if round >= self.params.total_rounds() {
            self.finished = true;
            return Action::halt();
        }
        if round.is_multiple_of(2) {
            // Competition round.
            match self.status {
                NodeStatus::InMis => Action::Sleep { wake_at: round + 1 },
                NodeStatus::OutMis => unreachable!("dominated nodes terminate"),
                NodeStatus::Undecided => {
                    let p = 0.5f64.powi(self.desire_exp as i32);
                    self.beeped = rng.gen_bool(p);
                    if self.beeped {
                        Action::Transmit(Message::unary())
                    } else {
                        Action::Listen
                    }
                }
            }
        } else {
            // Announcement round.
            match self.status {
                NodeStatus::InMis => Action::Transmit(Message::unary()),
                NodeStatus::OutMis => unreachable!("dominated nodes terminate"),
                NodeStatus::Undecided => Action::Listen,
            }
        }
    }

    fn feedback(&mut self, round: u64, fb: Feedback, _rng: &mut NodeRng) {
        if round.is_multiple_of(2) {
            if self.status != NodeStatus::Undecided {
                return;
            }
            match (self.beeped, fb) {
                // Beeped alone: join. Sender-side CD guarantees no beeping
                // neighbor, so this is always independent.
                (true, Feedback::Sent) => self.status = NodeStatus::InMis,
                // Beeped into a beep: contention; back off.
                (true, Feedback::Beep) => self.bump_down(),
                // Listened and heard competition: back off.
                (false, Feedback::Beep) => self.bump_down(),
                // Quiet neighborhood: push forward.
                (false, Feedback::Silence) => self.bump_up(),
                _ => {}
            }
        } else if self.status == NodeStatus::Undecided && fb.heard_activity() {
            // An MIS neighbor announced: dominated.
            self.status = NodeStatus::OutMis;
            self.finished = true;
        }
    }

    fn status(&self) -> NodeStatus {
        self.status
    }

    fn finished(&self) -> bool {
        self.finished
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mis_graphs::generators;
    use radio_netsim::{ChannelModel, SimConfig, Simulator};

    fn run_native(g: &mis_graphs::Graph, seed: u64) -> radio_netsim::RunReport {
        let params = BeepingParams::for_n((4 * g.len()).max(64));
        Simulator::new(
            g,
            SimConfig::new(ChannelModel::BeepingSenderCd).with_seed(seed),
        )
        .run(|_, _| NativeBeepingMis::new(params))
    }

    #[test]
    fn solves_standard_graphs() {
        for g in [
            generators::empty(12),
            generators::path(40),
            generators::star(48),
            generators::clique(24),
            generators::gnp(96, 0.1, 4),
            generators::grid2d(8, 8),
            generators::lower_bound_family(40),
        ] {
            let report = run_native(&g, 9);
            assert!(
                report.is_correct_mis(&g),
                "failed on {g:?}: {:?}",
                report.verify_mis(&g)
            );
        }
    }

    #[test]
    fn independence_never_violated_even_when_truncated() {
        // Unlike the radio algorithms, independence is structural here:
        // even with an absurdly short budget the joined set is independent
        // (maximality is what needs the budget).
        let g = generators::gnp(64, 0.2, 7);
        for seed in 0..10 {
            let params = BeepingParams { n: 256, c: 0.5 };
            let report = Simulator::new(
                &g,
                SimConfig::new(ChannelModel::BeepingSenderCd).with_seed(seed),
            )
            .run(|_, _| NativeBeepingMis::new(params));
            assert!(
                mis_graphs::mis::is_independent(&g, &report.mis_mask()),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn rounds_are_logarithmic_scale() {
        let g = generators::gnp(256, 0.05, 3);
        let report = run_native(&g, 5);
        assert!(report.is_correct_mis(&g));
        let params = BeepingParams::for_n(1024);
        assert!(report.rounds <= params.total_rounds() + 1);
        // Energy ≈ rounds until decision (no sleeping in the beeping model
        // aside from MIS nodes skipping competition rounds).
        assert!(report.max_energy() <= report.rounds);
    }

    #[test]
    fn requires_sender_side_cd() {
        // Under plain beeping (no sender CD), a beeping node always sees
        // `Sent` and immediately "joins" — adjacent pairs collide. The
        // machine is only sound under BeepingSenderCd; verify the failure
        // is detected under the weaker model.
        let g = generators::clique(16);
        let params = BeepingParams::for_n(64);
        let mut violations = 0;
        for seed in 0..5 {
            let report = Simulator::new(&g, SimConfig::new(ChannelModel::Beeping).with_seed(seed))
                .run(|_, _| NativeBeepingMis::new(params));
            if !mis_graphs::mis::is_independent(&g, &report.mis_mask()) {
                violations += 1;
            }
        }
        assert!(
            violations > 0,
            "expected independence violations without sender CD"
        );
    }
}
