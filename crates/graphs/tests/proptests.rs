//! Property-based tests for the graph substrate.

use mis_graphs::{analysis, generators, io, mis, Graph, GraphBuilder};
use proptest::prelude::*;

/// Strategy producing an arbitrary small simple graph.
fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..40).prop_flat_map(|n| {
        let edge = (0..n, 0..n).prop_filter("no self-loops", |(u, v)| u != v);
        proptest::collection::vec(edge, 0..(n * 3)).prop_map(move |edges| {
            let mut b = GraphBuilder::new(n);
            for (u, v) in edges {
                b.add_edge(u, v).unwrap();
            }
            b.build()
        })
    })
}

proptest! {
    #[test]
    fn built_graphs_validate(g in arb_graph()) {
        prop_assert!(g.validate().is_ok());
    }

    #[test]
    fn handshake_lemma(g in arb_graph()) {
        let degree_sum: usize = g.nodes().map(|v| g.degree(v)).sum();
        prop_assert_eq!(degree_sum, 2 * g.edge_count());
    }

    #[test]
    fn edges_match_has_edge(g in arb_graph()) {
        for (u, v) in g.edges() {
            prop_assert!(g.has_edge(u, v));
            prop_assert!(g.has_edge(v, u));
        }
        // Random non-edges are reported absent.
        let n = g.len();
        for u in 0..n.min(6) {
            for v in 0..n.min(6) {
                let expected = u != v && g.neighbors(u).contains(&v);
                prop_assert_eq!(g.has_edge(u, v), expected);
            }
        }
    }

    #[test]
    fn greedy_mis_is_mis(g in arb_graph()) {
        let set = mis::greedy_mis(&g);
        prop_assert!(mis::verify_mis(&g, &set).is_ok());
    }

    #[test]
    fn random_greedy_mis_is_mis(g in arb_graph(), seed in any::<u64>()) {
        let set = mis::random_greedy_mis(&g, seed);
        prop_assert!(mis::verify_mis(&g, &set).is_ok());
    }

    #[test]
    fn io_roundtrip(g in arb_graph()) {
        let back = io::from_text(&io::to_text(&g)).unwrap();
        prop_assert_eq!(g, back);
    }

    #[test]
    fn induced_subgraph_preserves_edges(g in arb_graph(), mask_seed in any::<u64>()) {
        let n = g.len();
        let keep: Vec<bool> = (0..n).map(|v| (mask_seed >> (v % 64)) & 1 == 1).collect();
        let (sub, back) = g.induced_subgraph(&keep);
        prop_assert!(sub.validate().is_ok());
        // Every subgraph edge maps to an original edge within the mask.
        for (u, v) in sub.edges() {
            prop_assert!(g.has_edge(back[u], back[v]));
            prop_assert!(keep[back[u]] && keep[back[v]]);
        }
        prop_assert_eq!(sub.edge_count(), g.edges_within(&keep));
        prop_assert_eq!(sub.max_degree(), g.max_degree_within(&keep));
    }

    #[test]
    fn components_bounds(g in arb_graph()) {
        let c = analysis::connected_components(&g);
        prop_assert!(c >= 1);
        prop_assert!(c <= g.len());
        // Adding edges can only reduce or keep the component count; compare
        // with the fully isolated count.
        prop_assert!(c >= g.len().saturating_sub(g.edge_count()));
    }

    #[test]
    fn degeneracy_le_max_degree(g in arb_graph()) {
        let (d, order) = analysis::degeneracy(&g);
        prop_assert!(d <= g.max_degree());
        prop_assert_eq!(order.len(), g.len());
    }

    #[test]
    fn gnp_valid(n in 2usize..120, pm in 0u32..100, seed in any::<u64>()) {
        let g = generators::gnp(n, pm as f64 / 100.0, seed);
        prop_assert!(g.validate().is_ok());
        prop_assert_eq!(g.len(), n);
    }

    #[test]
    fn trees_have_n_minus_1_edges(n in 2usize..80, seed in any::<u64>()) {
        let g = generators::random_tree(n, seed);
        prop_assert_eq!(g.edge_count(), n - 1);
        prop_assert_eq!(analysis::connected_components(&g), 1);
    }
}
