//! `mis-sim run`: execute an algorithm over trials and summarize.

use crate::args::{Algorithm, RunOpts};
use congest_sim::{CongestSim, GhaffariCongest, LubyCongest};
use mis_graphs::{io, mis, Graph};
use mis_stats::table::fmt_num;
use mis_stats::{Summary, Table};
use radio_mis::baselines::nocd_naive::{NaiveSimParams, NoCdNaive};
use radio_mis::baselines::naive_luby_cd;
use radio_mis::beeping_native::{BeepingParams, NativeBeepingMis};
use radio_mis::cd::CdMis;
use radio_mis::low_degree::LowDegreeMis;
use radio_mis::nocd::NoCdMis;
use radio_mis::params::{CdParams, LowDegreeParams, NoCdParams};
use radio_mis::unknown_delta::UnknownDeltaMis;
use radio_netsim::{split_seed, ChannelModel, SimConfig, Simulator};
use serde::Serialize;

/// Per-trial record for the report.
#[derive(Debug, Clone, Serialize)]
struct TrialRow {
    trial: usize,
    seed: u64,
    correct: bool,
    mis_size: usize,
    energy_max: u64,
    energy_avg: f64,
    rounds: u64,
}

/// Aggregated run report (serialized with `--json`).
#[derive(Debug, Clone, Serialize)]
struct RunSummary {
    algorithm: String,
    channel: String,
    graph_nodes: usize,
    graph_edges: usize,
    graph_max_degree: usize,
    trials: Vec<TrialRow>,
    success_rate: f64,
    energy_max_mean: f64,
    energy_avg_mean: f64,
    rounds_mean: f64,
}

/// The channel model an algorithm runs under.
fn channel_of(alg: Algorithm) -> &'static str {
    match alg {
        Algorithm::Cd | Algorithm::NaiveLuby => "CD",
        Algorithm::Beeping => "beeping",
        Algorithm::BeepingNative => "beeping+senderCD",
        Algorithm::NoCd
        | Algorithm::LowDegree
        | Algorithm::NoCdNaive
        | Algorithm::UnknownDelta => "no-CD",
        Algorithm::CongestLuby | Algorithm::CongestGhaffari => "wired CONGEST",
    }
}

/// Runs one radio trial, returning (correct, mis_size, e_max, e_avg, rounds).
#[allow(clippy::too_many_arguments)]
fn radio_trial(
    g: &Graph,
    alg: Algorithm,
    seed: u64,
    loss: f64,
    paper: bool,
) -> (bool, usize, u64, f64, u64) {
    let n_bound = g.len().max(2);
    let delta = g.max_degree().max(2);
    let channel = match alg {
        Algorithm::Beeping => ChannelModel::Beeping,
        Algorithm::BeepingNative => ChannelModel::BeepingSenderCd,
        Algorithm::Cd | Algorithm::NaiveLuby => ChannelModel::Cd,
        _ => ChannelModel::NoCd,
    };
    let mut config = SimConfig::new(channel).with_seed(seed);
    if loss > 0.0 {
        config = config.with_loss_probability(loss);
    }
    let sim = Simulator::new(g, config);
    let report = match alg {
        Algorithm::Cd | Algorithm::Beeping => {
            let p = if paper {
                CdParams::paper(n_bound)
            } else {
                CdParams::for_n(n_bound)
            };
            sim.run(|_, _| CdMis::new(p))
        }
        Algorithm::BeepingNative => {
            let p = BeepingParams::for_n(n_bound);
            sim.run(|_, _| NativeBeepingMis::new(p))
        }
        Algorithm::NaiveLuby => {
            let p = if paper {
                CdParams::paper(n_bound)
            } else {
                CdParams::for_n(n_bound)
            };
            sim.run(|_, _| naive_luby_cd(p))
        }
        Algorithm::NoCd => {
            let p = if paper {
                NoCdParams::paper(n_bound, delta)
            } else {
                NoCdParams::for_n(n_bound, delta)
            };
            sim.run(|_, _| NoCdMis::new(p))
        }
        Algorithm::LowDegree => {
            let p = if paper {
                LowDegreeParams::paper(n_bound, delta)
            } else {
                LowDegreeParams::for_n(n_bound, delta)
            };
            sim.run(|_, _| LowDegreeMis::new(p))
        }
        Algorithm::NoCdNaive => {
            let cd = if paper {
                CdParams::paper(n_bound)
            } else {
                CdParams::for_n(n_bound)
            };
            sim.run(|_, _| NoCdNaive::new(cd, NaiveSimParams::for_n(n_bound, delta)))
        }
        Algorithm::UnknownDelta => {
            let template = if paper {
                NoCdParams::paper(n_bound, 2)
            } else {
                NoCdParams::for_n(n_bound, 2)
            };
            sim.run(|_, _| UnknownDeltaMis::new(n_bound, template))
        }
        Algorithm::CongestLuby | Algorithm::CongestGhaffari => unreachable!("handled by caller"),
    };
    (
        report.is_correct_mis(g),
        mis::set_size(&report.mis_mask()),
        report.max_energy(),
        report.avg_energy(),
        report.rounds,
    )
}

fn congest_trial(g: &Graph, alg: Algorithm, seed: u64) -> (bool, usize, u64, f64, u64) {
    let n_bound = g.len().max(2);
    let sim = CongestSim::new(g, seed);
    let report = match alg {
        Algorithm::CongestLuby => sim.run(|_, _| LubyCongest::new(n_bound)),
        Algorithm::CongestGhaffari => {
            sim.run(|_, _| GhaffariCongest::new(n_bound, g.max_degree().max(1)))
        }
        _ => unreachable!("radio algorithms handled elsewhere"),
    };
    (
        report.is_correct_mis(g),
        report.mis_mask().iter().filter(|&&b| b).count(),
        report.max_awake(),
        report.avg_awake(),
        report.rounds,
    )
}

/// Executes `mis-sim run`.
///
/// # Errors
///
/// Returns a message on graph-file IO/parsing failures.
pub fn execute(opts: &RunOpts) -> Result<String, String> {
    let graph = match &opts.graph_path {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read {path}: {e}"))?;
            io::from_text(&text).map_err(|e| format!("cannot parse {path}: {e}"))?
        }
        None => opts.family.generate(opts.n, opts.seed),
    };
    if matches!(
        opts.algorithm,
        Algorithm::CongestLuby | Algorithm::CongestGhaffari
    ) && opts.loss > 0.0
    {
        return Err("--loss applies only to radio algorithms".into());
    }

    let mut rows = Vec::with_capacity(opts.trials);
    for t in 0..opts.trials {
        let seed = split_seed(opts.seed, t as u64);
        let (correct, mis_size, emax, eavg, rounds) = match opts.algorithm {
            Algorithm::CongestLuby | Algorithm::CongestGhaffari => {
                congest_trial(&graph, opts.algorithm, seed)
            }
            alg => radio_trial(&graph, alg, seed, opts.loss, opts.paper_constants),
        };
        rows.push(TrialRow {
            trial: t,
            seed,
            correct,
            mis_size,
            energy_max: emax,
            energy_avg: eavg,
            rounds,
        });
    }
    let summary = RunSummary {
        algorithm: opts.algorithm.label().to_string(),
        channel: channel_of(opts.algorithm).to_string(),
        graph_nodes: graph.len(),
        graph_edges: graph.edge_count(),
        graph_max_degree: graph.max_degree(),
        success_rate: rows.iter().filter(|r| r.correct).count() as f64
            / rows.len().max(1) as f64,
        energy_max_mean: Summary::of(
            &rows.iter().map(|r| r.energy_max as f64).collect::<Vec<_>>(),
        )
        .mean,
        energy_avg_mean: Summary::of(&rows.iter().map(|r| r.energy_avg).collect::<Vec<_>>())
            .mean,
        rounds_mean: Summary::of(&rows.iter().map(|r| r.rounds as f64).collect::<Vec<_>>())
            .mean,
        trials: rows,
    };

    if opts.json {
        return serde_json::to_string_pretty(&summary).map_err(|e| e.to_string());
    }
    let mut out = format!(
        "{} ({} model) on {} nodes / {} edges (Δ = {})\n\n",
        summary.algorithm,
        summary.channel,
        summary.graph_nodes,
        summary.graph_edges,
        summary.graph_max_degree
    );
    let mut table = Table::new(["trial", "MIS?", "|MIS|", "energy(max)", "energy(avg)", "rounds"]);
    for r in &summary.trials {
        table.push_row([
            r.trial.to_string(),
            if r.correct { "✓".into() } else { "✗".to_string() },
            r.mis_size.to_string(),
            r.energy_max.to_string(),
            fmt_num(r.energy_avg),
            r.rounds.to_string(),
        ]);
    }
    out.push_str(&table.to_markdown());
    out.push_str(&format!(
        "\nsuccess {:.0}%  ·  mean energy(max) {}  ·  mean energy(avg) {}  ·  mean rounds {}\n",
        100.0 * summary.success_rate,
        fmt_num(summary.energy_max_mean),
        fmt_num(summary.energy_avg_mean),
        fmt_num(summary.rounds_mean),
    ));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::RunOpts;

    #[test]
    fn runs_cd_table_output() {
        let opts = RunOpts {
            n: 64,
            trials: 2,
            ..RunOpts::default()
        };
        let out = execute(&opts).unwrap();
        assert!(out.contains("cd (CD model)"));
        assert!(out.contains("success 100%"), "{out}");
    }

    #[test]
    fn runs_congest_json_output() {
        let opts = RunOpts {
            algorithm: Algorithm::CongestLuby,
            n: 64,
            trials: 2,
            json: true,
            ..RunOpts::default()
        };
        let out = execute(&opts).unwrap();
        let parsed: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert_eq!(parsed["algorithm"], "congest-luby");
        assert_eq!(parsed["success_rate"], 1.0);
    }

    #[test]
    fn rejects_loss_on_congest() {
        let opts = RunOpts {
            algorithm: Algorithm::CongestLuby,
            loss: 0.1,
            ..RunOpts::default()
        };
        assert!(execute(&opts).unwrap_err().contains("radio"));
    }

    #[test]
    fn loads_graph_from_file() {
        let dir = std::env::temp_dir().join("mis_cli_test_run");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.txt");
        let g = mis_graphs::generators::path(6);
        std::fs::write(&path, mis_graphs::io::to_text(&g)).unwrap();
        let opts = RunOpts {
            graph_path: Some(path.to_string_lossy().into_owned()),
            trials: 1,
            ..RunOpts::default()
        };
        let out = execute(&opts).unwrap();
        assert!(out.contains("6 nodes / 5 edges"), "{out}");
    }

    #[test]
    fn missing_graph_file_errors() {
        let opts = RunOpts {
            graph_path: Some("/definitely/not/here.txt".into()),
            ..RunOpts::default()
        };
        assert!(execute(&opts).unwrap_err().contains("cannot read"));
    }
}
