//! E9 — Lemmas 14–15: competition winners.
//!
//! From instrumented Algorithm 2 runs, audits the per-phase winner sets
//! W_i: winners must be independent (Lemma 15, w.h.p.), and phases with
//! surviving competitors should keep producing winners (Lemma 14's local
//! maxima win w.h.p., so W_i ≠ ∅ while undecided nodes remain).

use crate::harness::{pct, run_nocd_instrumented, ExpConfig, ExperimentOutput, Section};
use crate::orchestrator::{Orchestrator, UnitKey};
use mis_graphs::generators::Family;
use mis_stats::Table;
use radio_mis::nocd::PhaseOutcome;
use radio_mis::params::NoCdParams;
use radio_netsim::split_seed;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Cached value of one instrumented trial: the winner-set audit counts.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct WinnerTrial {
    phases: usize,
    with_winner: usize,
    adjacent_pairs: usize,
    correct: bool,
    cost: u64,
}

/// Runs E9.
pub fn run(cfg: &ExpConfig, orch: &Orchestrator) -> ExperimentOutput {
    let n = if cfg.quick { 256 } else { 1024 };
    let trials = cfg.trials(6);
    let g = Family::GnpAvgDegree(8).generate(n, cfg.seed ^ 0xE9);
    let params = NoCdParams::for_n(n, g.max_degree().max(2));
    let graph_recipe = format!(
        "{}/seed={:#x}",
        Family::GnpAvgDegree(8).label(),
        cfg.seed ^ 0xE9
    );

    let mut table = Table::new([
        "trial",
        "phases with competitors",
        "phases with ≥1 winner",
        "adjacent-winner pairs",
        "MIS verified",
    ]);
    let mut total_adjacent_winner_pairs = 0usize;
    let mut total_phases = 0usize;
    let mut total_with_winner = 0usize;
    for t in 0..trials {
        let cell = orch.unit_with_cost(
            &UnitKey::new("e9", format!("trial={t}"))
                .with("graph", &graph_recipe)
                .with("n", n)
                .with("alg", "NoCdMis/instrumented")
                .with("params", format!("{params:?}"))
                .with("seed", cfg.seed)
                .with("trial", t),
            || {
                let seed = split_seed(cfg.seed, t as u64);
                let (report, inst) = run_nocd_instrumented(&g, params, seed);
                // phase -> winner set.
                let mut winners: HashMap<u32, Vec<usize>> = HashMap::new();
                let mut competitors: HashMap<u32, usize> = HashMap::new();
                for (v, h) in inst.histories.iter().enumerate() {
                    for rec in h {
                        *competitors.entry(rec.phase).or_default() += 1;
                        if rec.outcome == PhaseOutcome::Win {
                            winners.entry(rec.phase).or_default().push(v);
                        }
                    }
                }
                let phases = competitors.len();
                let with_winner = competitors
                    .keys()
                    .filter(|p| winners.get(p).map(|w| !w.is_empty()).unwrap_or(false))
                    .count();
                let mut adjacent_pairs = 0usize;
                for ws in winners.values() {
                    for (i, &u) in ws.iter().enumerate() {
                        for &v in &ws[i + 1..] {
                            if g.has_edge(u, v) {
                                adjacent_pairs += 1;
                            }
                        }
                    }
                }
                WinnerTrial {
                    phases,
                    with_winner,
                    adjacent_pairs,
                    correct: report.is_correct_mis(&g),
                    cost: report.meters.iter().map(|m| m.energy()).sum(),
                }
            },
            |c| c.cost,
        );
        total_adjacent_winner_pairs += cell.adjacent_pairs;
        total_phases += cell.phases;
        total_with_winner += cell.with_winner;
        table.push_row([
            t.to_string(),
            cell.phases.to_string(),
            cell.with_winner.to_string(),
            cell.adjacent_pairs.to_string(),
            cell.correct.to_string(),
        ]);
    }

    ExperimentOutput {
        id: "e9",
        title: "competition winner properties".into(),
        claim: "Lemma 14: an undecided node with a locally maximum rank wins w.p. \
                ≥ 1 − 1/n². Lemma 15: two neighbors both win w.p. ≤ 6/n⁴ — winner \
                sets are independent w.h.p."
            .into(),
        sections: vec![Section {
            caption: format!("gnp-d8, n = {n}, {trials} instrumented runs"),
            table,
        }],
        findings: vec![
            format!(
                "adjacent-winner pairs observed: {total_adjacent_winner_pairs} across all \
                 phases and trials (Lemma 15 predicts ≈ 0)"
            ),
            format!(
                "phases producing at least one winner: {} — competitions keep making \
                 progress (Lemma 14)",
                pct(total_with_winner, total_phases)
            ),
        ],
        charts: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_no_adjacent_winners() {
        let out = run(&ExpConfig::quick(17), &Orchestrator::ephemeral());
        assert!(
            out.findings[0].contains("pairs observed: 0"),
            "{}",
            out.findings[0]
        );
    }
}
