//! Composable fault injection: reception loss, crash-stop faults, jammers,
//! and staggered wake-up / dormancy windows.
//!
//! The paper's model (§1.1) is clean: lossless channel, synchronous wake-up,
//! no adversary. A [`FaultPlan`] describes how far a run departs from it:
//!
//! - **reception loss** ([`FaultPlan::with_loss`]): every (listener,
//!   transmitter) signal edge fades independently with probability `loss`
//!   *before* the channel is resolved, so every channel model — CD, no-CD,
//!   beeping, beeping + sender CD — experiences the same physical fade and
//!   feedback is re-derived from the surviving arrivals. At `loss = 1.0`
//!   every listener hears silence, whatever the model;
//! - **crash-stop faults** ([`FaultPlan::with_crash`],
//!   [`FaultPlan::with_random_crashes`]): node `v` dies at round `r` — it is
//!   retired the next time it would act, never transmits or listens again,
//!   and is excluded from MIS verification
//!   (see [`RunReport::faulty`](crate::RunReport::faulty));
//! - **jammers** ([`FaultPlan::with_jammer`],
//!   [`FaultPlan::with_random_jammers`]): adversarial nodes that transmit
//!   noise every round they are awake instead of running the protocol.
//!   Their noise collides with (and fades like) any real transmission;
//! - **staggered wake-up / dormancy** ([`WakePlan`],
//!   [`FaultPlan::with_dormancy`]): generalizing
//!   [`Simulator::with_wake_offsets`](crate::Simulator::with_wake_offsets),
//!   nodes may wake late (drawn from a window) or go radio-dormant for a
//!   contiguous window mid-run — still spending energy, but deaf and mute.
//!
//! All randomness (random crash picks, jammer picks, wake windows, dormancy
//! windows) is drawn from a dedicated stream `split_seed(seed, u64::MAX - 2)`
//! — distinct from both the per-node protocol streams and the channel-fade
//! stream — so enabling one fault class never perturbs the draws of another
//! or of the protocol itself. Same seed + same plan ⇒ bit-identical run.

use crate::protocol::NodeRng;
use crate::rng::split_seed;
use mis_graphs::NodeId;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Stream index (for [`split_seed`]) of the fault-resolution RNG.
/// `u64::MAX - 1` is the channel-fade stream; node streams use `0..n`.
const FAULT_STREAM_INDEX: u64 = u64::MAX - 2;

/// An explicit crash-stop fault: `node` dies at round `round`.
///
/// The crash takes effect the next time the node would act: a node asleep
/// through its crash round is retired when its wake round arrives (which is
/// observably identical — a sleeping node does nothing anyway).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Crash {
    /// The node that crashes.
    pub node: NodeId,
    /// First round at which the node is dead.
    pub round: u64,
}

/// Randomly drawn crash-stop faults: `count` distinct non-jammer nodes each
/// crash at a round drawn uniformly from `0..=by_round`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RandomCrashes {
    /// How many nodes crash (clamped to the number of eligible nodes).
    pub count: usize,
    /// Latest possible crash round (inclusive).
    pub by_round: u64,
}

/// Random dormancy windows: each node independently, with `probability`,
/// goes radio-dormant for `duration` rounds starting at a round drawn
/// uniformly from `0..=latest_start`.
///
/// A dormant node keeps running the protocol and keeps paying energy for
/// awake rounds, but its radio is dead: its transmissions never reach the
/// channel (it still believes it `Sent`) and its listens hear `Silence`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Dormancy {
    /// Per-node probability of having a dormant window.
    pub probability: f64,
    /// Latest possible window start (inclusive).
    pub latest_start: u64,
    /// Window length in rounds (must be ≥ 1).
    pub duration: u64,
}

/// When nodes first wake up. Generalizes
/// [`Simulator::with_wake_offsets`](crate::Simulator::with_wake_offsets)
/// (which, when set, takes precedence over the plan's `WakePlan`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum WakePlan {
    /// The paper's model: every node wakes at round 0.
    #[default]
    Synchronous,
    /// Node `v` wakes at `offsets[v]` (length must equal the node count).
    Explicit(Vec<u64>),
    /// Each node's wake round is drawn uniformly from `0..window`
    /// (a window of 0 means synchronous).
    RandomWindow(u64),
}

/// The kind of a fault occurrence, carried by
/// [`TraceEvent::Fault`](crate::TraceEvent::Fault).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultKind {
    /// The node crashed (crash-stop); `round` is its first dead round.
    Crash,
    /// The node is a jammer. Emitted once at run start with `round` 0; the
    /// jammer transmits noise from its wake round until it crashes (if
    /// ever).
    Jam,
    /// The node entered its dormancy window. Emitted at the first round the
    /// node *acts* while dormant (a node that sleeps through its whole
    /// window never surfaces it).
    Dormant,
}

/// A composable description of every fault a run injects. The default plan
/// ([`FaultPlan::none`]) is inert and costs the engine nothing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Per-(listener, transmitter) signal-fade probability, applied to every
    /// arriving signal (real or jammer noise) before channel resolution.
    pub loss: f64,
    /// Explicit crash-stop faults.
    pub crashes: Vec<Crash>,
    /// Randomly drawn crash-stop faults (on top of any explicit ones).
    pub random_crashes: Option<RandomCrashes>,
    /// Explicit jammer nodes.
    pub jammers: Vec<NodeId>,
    /// Number of additional jammers drawn uniformly at random.
    pub random_jammers: usize,
    /// When nodes wake up.
    pub wake: WakePlan,
    /// Random dormancy windows.
    pub dormancy: Option<Dormancy>,
}

impl Default for FaultPlan {
    fn default() -> FaultPlan {
        FaultPlan::none()
    }
}

impl FaultPlan {
    /// The inert plan: no loss, no crashes, no jammers, synchronous wake-up.
    pub fn none() -> FaultPlan {
        FaultPlan {
            loss: 0.0,
            crashes: Vec::new(),
            random_crashes: None,
            jammers: Vec::new(),
            random_jammers: 0,
            wake: WakePlan::Synchronous,
            dormancy: None,
        }
    }

    /// Whether this plan injects nothing (the engine then takes its
    /// fault-free fast paths everywhere).
    pub fn is_inert(&self) -> bool {
        self.loss == 0.0
            && self.crashes.is_empty()
            && self.random_crashes.is_none()
            && self.jammers.is_empty()
            && self.random_jammers == 0
            && self.wake == WakePlan::Synchronous
            && self.dormancy.is_none()
    }

    /// Sets the per-edge reception-loss probability.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    pub fn with_loss(mut self, p: f64) -> FaultPlan {
        assert!(
            (0.0..=1.0).contains(&p),
            "loss probability {p} outside [0, 1]"
        );
        self.loss = p;
        self
    }

    /// Adds an explicit crash-stop fault: `node` dies at round `round`.
    pub fn with_crash(mut self, node: NodeId, round: u64) -> FaultPlan {
        self.crashes.push(Crash { node, round });
        self
    }

    /// Draws `count` random crash-stop faults, each at a round uniform in
    /// `0..=by_round` (from the dedicated fault stream).
    pub fn with_random_crashes(mut self, count: usize, by_round: u64) -> FaultPlan {
        self.random_crashes = Some(RandomCrashes { count, by_round });
        self
    }

    /// Makes `node` a jammer: it never runs the protocol and transmits
    /// noise every round from its wake round until it crashes (if ever).
    pub fn with_jammer(mut self, node: NodeId) -> FaultPlan {
        self.jammers.push(node);
        self
    }

    /// Draws `count` additional random jammers (from the fault stream).
    pub fn with_random_jammers(mut self, count: usize) -> FaultPlan {
        self.random_jammers = count;
        self
    }

    /// Sets the wake-up plan.
    pub fn with_wake(mut self, wake: WakePlan) -> FaultPlan {
        self.wake = wake;
        self
    }

    /// Staggered wake-up sugar: each node's wake round is drawn uniformly
    /// from `0..window`.
    pub fn with_wake_window(mut self, window: u64) -> FaultPlan {
        self.wake = WakePlan::RandomWindow(window);
        self
    }

    /// Gives each node, with `probability`, a radio-dormant window of
    /// `duration` rounds starting uniformly in `0..=latest_start`.
    ///
    /// # Panics
    ///
    /// Panics if `probability` is outside `[0, 1]` or `duration` is 0.
    pub fn with_dormancy(
        mut self,
        probability: f64,
        latest_start: u64,
        duration: u64,
    ) -> FaultPlan {
        assert!(
            (0.0..=1.0).contains(&probability),
            "dormancy probability {probability} outside [0, 1]"
        );
        assert!(duration > 0, "dormancy duration must be >= 1 round");
        self.dormancy = Some(Dormancy {
            probability,
            latest_start,
            duration,
        });
        self
    }

    /// Resolves the plan against a concrete node count and master seed:
    /// draws every random choice (jammer picks, crash picks and rounds,
    /// wake offsets, dormancy windows) from the dedicated fault stream.
    ///
    /// Deterministic: same `(plan, n, seed)` ⇒ same resolution. The draw
    /// order is fixed (wake, jammers, crashes, dormancy) so that e.g.
    /// adding a dormancy clause never re-rolls the jammer picks... within
    /// one plan; across plans the stream is shared.
    ///
    /// # Panics
    ///
    /// Panics if an explicit crash/jammer node is out of range, or an
    /// explicit wake-offset vector has the wrong length.
    pub(crate) fn resolve(&self, n: usize, master_seed: u64) -> ResolvedFaults {
        if self.is_inert() || n == 0 {
            return ResolvedFaults::inert();
        }
        let mut rng = NodeRng::seed_from_u64(split_seed(master_seed, FAULT_STREAM_INDEX));

        // 1. Wake offsets.
        let wake_offsets = match &self.wake {
            WakePlan::Synchronous => None,
            WakePlan::Explicit(offsets) => {
                assert_eq!(offsets.len(), n, "explicit wake-offset length mismatch");
                Some(offsets.clone())
            }
            WakePlan::RandomWindow(0) => None,
            WakePlan::RandomWindow(w) => Some((0..n).map(|_| rng.gen_range(0..*w)).collect()),
        };

        // 2. Jammers: explicit first, then distinct random picks.
        let any_jammers = !self.jammers.is_empty() || self.random_jammers > 0;
        let mut jammer = if any_jammers {
            vec![false; n]
        } else {
            Vec::new()
        };
        for &j in &self.jammers {
            assert!(j < n, "jammer node {j} out of range (n = {n})");
            jammer[j] = true;
        }
        if self.random_jammers > 0 {
            let placed = jammer.iter().filter(|&&b| b).count();
            let mut remaining = self.random_jammers.min(n - placed);
            while remaining > 0 {
                let v = rng.gen_range(0..n);
                if !jammer[v] {
                    jammer[v] = true;
                    remaining -= 1;
                }
            }
        }
        let jammer_list: Vec<NodeId> = jammer
            .iter()
            .enumerate()
            .filter_map(|(v, &b)| b.then_some(v))
            .collect();

        // 3. Crashes: explicit (earliest round wins), then distinct random
        // picks among non-jammer, not-yet-crashing nodes.
        let any_crashes = !self.crashes.is_empty() || self.random_crashes.is_some();
        let mut crash_round = if any_crashes {
            vec![u64::MAX; n]
        } else {
            Vec::new()
        };
        for c in &self.crashes {
            assert!(c.node < n, "crash node {} out of range (n = {n})", c.node);
            crash_round[c.node] = crash_round[c.node].min(c.round);
        }
        if let Some(rc) = self.random_crashes {
            let eligible = (0..n)
                .filter(|&v| crash_round[v] == u64::MAX && !jammer.get(v).copied().unwrap_or(false))
                .count();
            let mut remaining = rc.count.min(eligible);
            while remaining > 0 {
                let v = rng.gen_range(0..n);
                if crash_round[v] == u64::MAX && !jammer.get(v).copied().unwrap_or(false) {
                    crash_round[v] = rng.gen_range(0..=rc.by_round);
                    remaining -= 1;
                }
            }
        }

        // 4. Dormancy windows.
        let (dormant_from, dormant_len) = match self.dormancy {
            None => (Vec::new(), 0),
            Some(d) => {
                let from: Vec<u64> = (0..n)
                    .map(|_| {
                        if rng.gen_bool(d.probability) {
                            rng.gen_range(0..=d.latest_start)
                        } else {
                            u64::MAX
                        }
                    })
                    .collect();
                (from, d.duration)
            }
        };

        ResolvedFaults {
            wake_offsets,
            crash_round,
            jammer,
            jammer_list,
            dormant_from,
            dormant_len,
        }
    }
}

/// A [`FaultPlan`] with every random choice drawn: the concrete per-node
/// fault schedule the engine executes.
///
/// Empty vectors mean "this fault class is absent" — the engine checks the
/// class flags once per run and skips absent classes entirely.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct ResolvedFaults {
    /// Per-node wake rounds from the plan's [`WakePlan`] (`None` =
    /// synchronous). Overridden by `Simulator::with_wake_offsets`.
    pub wake_offsets: Option<Vec<u64>>,
    /// Per-node first dead round (`u64::MAX` = never crashes). Empty when
    /// the plan has no crash faults.
    pub crash_round: Vec<u64>,
    /// Per-node jammer flag. Empty when the plan has no jammers.
    pub jammer: Vec<bool>,
    /// The jammer nodes, ascending.
    pub jammer_list: Vec<NodeId>,
    /// Per-node dormancy-window start (`u64::MAX` = none). Empty when the
    /// plan has no dormancy clause.
    pub dormant_from: Vec<u64>,
    /// Dormancy-window length in rounds.
    pub dormant_len: u64,
}

impl ResolvedFaults {
    /// The resolution of an inert plan.
    pub fn inert() -> ResolvedFaults {
        ResolvedFaults {
            wake_offsets: None,
            crash_round: Vec::new(),
            jammer: Vec::new(),
            jammer_list: Vec::new(),
            dormant_from: Vec::new(),
            dormant_len: 0,
        }
    }

    /// Whether any node ever crashes.
    pub fn has_crashes(&self) -> bool {
        !self.crash_round.is_empty()
    }

    /// Whether any node has a dormancy window.
    pub fn has_dormancy(&self) -> bool {
        !self.dormant_from.is_empty()
    }

    /// First dead round of `v` (`u64::MAX` if it never crashes).
    pub fn crash_of(&self, v: NodeId) -> u64 {
        self.crash_round.get(v).copied().unwrap_or(u64::MAX)
    }

    /// Whether `v`'s radio is dormant at `round`.
    pub fn is_dormant(&self, v: NodeId, round: u64) -> bool {
        match self.dormant_from.get(v) {
            Some(&from) => round >= from && round - from < self.dormant_len,
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_inert() {
        let plan = FaultPlan::none();
        assert!(plan.is_inert());
        assert_eq!(plan, FaultPlan::default());
        let r = plan.resolve(16, 7);
        assert_eq!(r, ResolvedFaults::inert());
        assert!(!r.has_crashes());
        assert!(!r.has_dormancy());
        assert_eq!(r.crash_of(3), u64::MAX);
        assert!(!r.is_dormant(3, 0));
    }

    #[test]
    fn every_clause_deactivates_inertness() {
        assert!(!FaultPlan::none().with_loss(0.5).is_inert());
        assert!(!FaultPlan::none().with_crash(0, 1).is_inert());
        assert!(!FaultPlan::none().with_random_crashes(1, 10).is_inert());
        assert!(!FaultPlan::none().with_jammer(0).is_inert());
        assert!(!FaultPlan::none().with_random_jammers(1).is_inert());
        assert!(!FaultPlan::none().with_wake_window(4).is_inert());
        assert!(!FaultPlan::none().with_dormancy(0.5, 10, 3).is_inert());
        // Degenerate-but-explicit clauses still count as faults configured,
        // except loss 0.0 and a synchronous wake plan.
        assert!(FaultPlan::none().with_loss(0.0).is_inert());
        assert!(FaultPlan::none()
            .with_wake(WakePlan::Synchronous)
            .is_inert());
    }

    #[test]
    fn explicit_crashes_and_jammers_resolve_verbatim() {
        let plan = FaultPlan::none()
            .with_crash(3, 10)
            .with_crash(3, 4) // earliest wins
            .with_crash(5, 0)
            .with_jammer(1)
            .with_jammer(1); // idempotent
        let r = plan.resolve(8, 99);
        assert_eq!(r.crash_of(3), 4);
        assert_eq!(r.crash_of(5), 0);
        assert_eq!(r.crash_of(0), u64::MAX);
        assert_eq!(r.jammer_list, vec![1]);
        assert!(r.jammer[1]);
        assert!(!r.jammer[2]);
    }

    #[test]
    fn random_draws_are_seed_deterministic_and_in_range() {
        let plan = FaultPlan::none()
            .with_random_crashes(3, 20)
            .with_random_jammers(2)
            .with_wake_window(16)
            .with_dormancy(0.5, 30, 5);
        let a = plan.resolve(32, 42);
        let b = plan.resolve(32, 42);
        let c = plan.resolve(32, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);

        assert_eq!(a.jammer_list.len(), 2);
        let crashed: Vec<usize> = (0..32).filter(|&v| a.crash_of(v) != u64::MAX).collect();
        assert_eq!(crashed.len(), 3);
        for &v in &crashed {
            assert!(a.crash_of(v) <= 20);
            assert!(!a.jammer[v], "random crashes never hit jammers");
        }
        for off in a.wake_offsets.as_ref().unwrap() {
            assert!(*off < 16);
        }
        for &from in &a.dormant_from {
            assert!(from == u64::MAX || from <= 30);
        }
        assert_eq!(a.dormant_len, 5);
    }

    #[test]
    fn random_counts_clamp_to_population() {
        let plan = FaultPlan::none()
            .with_random_jammers(100)
            .with_random_crashes(100, 5);
        let r = plan.resolve(4, 1);
        assert_eq!(r.jammer_list.len(), 4);
        // All nodes are jammers, so no node is eligible to crash.
        assert!((0..4).all(|v| r.crash_of(v) == u64::MAX));
    }

    #[test]
    fn dormancy_window_arithmetic() {
        let r = ResolvedFaults {
            dormant_from: vec![5, u64::MAX],
            dormant_len: 3,
            ..ResolvedFaults::inert()
        };
        assert!(!r.is_dormant(0, 4));
        assert!(r.is_dormant(0, 5));
        assert!(r.is_dormant(0, 7));
        assert!(!r.is_dormant(0, 8));
        assert!(!r.is_dormant(1, 5));
        // Out-of-range node defaults to not dormant.
        assert!(!r.is_dormant(9, 5));
    }

    #[test]
    fn wake_window_of_zero_is_synchronous() {
        let r = FaultPlan::none()
            .with_wake_window(0)
            .with_loss(0.1) // keep the plan non-inert
            .resolve(4, 0);
        assert!(r.wake_offsets.is_none());
    }

    #[test]
    fn explicit_wake_offsets_pass_through() {
        let plan = FaultPlan::none().with_wake(WakePlan::Explicit(vec![0, 3, 9]));
        let r = plan.resolve(3, 0);
        assert_eq!(r.wake_offsets, Some(vec![0, 3, 9]));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn explicit_wake_offsets_length_checked() {
        let _ = FaultPlan::none()
            .with_wake(WakePlan::Explicit(vec![0, 3]))
            .resolve(3, 0);
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn loss_validated() {
        let _ = FaultPlan::none().with_loss(-0.1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn crash_node_validated() {
        let _ = FaultPlan::none().with_crash(9, 0).resolve(4, 0);
    }

    #[test]
    #[should_panic(expected = "duration")]
    fn dormancy_duration_validated() {
        let _ = FaultPlan::none().with_dormancy(0.5, 10, 0);
    }

    #[test]
    fn serde_roundtrip() {
        let plan = FaultPlan::none()
            .with_loss(0.25)
            .with_crash(1, 7)
            .with_jammer(0)
            .with_wake_window(8)
            .with_dormancy(0.1, 20, 4);
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(plan, back);
    }
}
