//! Luby's classical MIS algorithm \[31\] in the SLEEPING-CONGEST model.
//!
//! Each phase takes two rounds among the still-active nodes:
//!
//! 1. **Compare**: every active node draws a fresh random rank and
//!    broadcasts it; a node whose rank strictly exceeds every received rank
//!    joins the MIS.
//! 2. **Announce**: new MIS nodes broadcast `Joined`; any active node
//!    hearing one leaves as `out-MIS` and halts. MIS nodes halt right after
//!    announcing.
//!
//! With no collisions, O(log n) phases suffice w.h.p., and every node is
//! awake in every phase it is still active — awake complexity O(log n).

use crate::engine::{CongestProtocol, NextWake};
use radio_netsim::{NodeRng, NodeStatus};
use rand::Rng;

/// Messages exchanged by [`LubyCongest`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LubyMsg {
    /// A phase-1 rank.
    Rank(u64),
    /// A phase-2 MIS announcement.
    Joined,
}

/// Per-node Luby state machine.
#[derive(Debug, Clone)]
pub struct LubyCongest {
    max_phases: u64,
    status: NodeStatus,
    /// Whether the node won the current phase's comparison.
    won: bool,
    my_rank: u64,
    done: bool,
}

impl LubyCongest {
    /// Creates a Luby node; `n` bounds the network size (sets the phase
    /// budget to `4·⌈log₂ n⌉ + 4`).
    pub fn new(n: usize) -> LubyCongest {
        let log = (n.max(2) as f64).log2().ceil() as u64;
        LubyCongest {
            max_phases: 4 * log + 4,
            status: NodeStatus::Undecided,
            won: false,
            my_rank: 0,
            done: false,
        }
    }
}

impl CongestProtocol for LubyCongest {
    type Msg = LubyMsg;

    fn send(&mut self, round: u64, rng: &mut NodeRng) -> Option<LubyMsg> {
        if round.is_multiple_of(2) {
            // Compare round.
            self.my_rank = rng.gen();
            Some(LubyMsg::Rank(self.my_rank))
        } else if self.won {
            Some(LubyMsg::Joined)
        } else {
            None
        }
    }

    fn receive(&mut self, round: u64, inbox: &[LubyMsg], _rng: &mut NodeRng) -> NextWake {
        if round.is_multiple_of(2) {
            // Rank comparison: strict local maximum wins. (Rank ties lose
            // for both — they retry next phase; with 64-bit ranks ties are
            // negligible.)
            self.won = inbox.iter().all(|m| match m {
                LubyMsg::Rank(r) => *r < self.my_rank,
                LubyMsg::Joined => true,
            });
            NextWake::Next
        } else {
            if self.won {
                self.status = NodeStatus::InMis;
                self.done = true;
                return NextWake::Halt;
            }
            if inbox.iter().any(|m| matches!(m, LubyMsg::Joined)) {
                self.status = NodeStatus::OutMis;
                self.done = true;
                return NextWake::Halt;
            }
            if round / 2 + 1 >= self.max_phases {
                // Phase budget exhausted while undecided: failure.
                self.done = true;
                return NextWake::Halt;
            }
            NextWake::Next
        }
    }

    fn status(&self) -> NodeStatus {
        self.status
    }

    fn finished(&self) -> bool {
        self.done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::CongestSim;
    use mis_graphs::generators;

    #[test]
    fn solves_standard_graphs() {
        for g in [
            generators::empty(10),
            generators::path(50),
            generators::star(64),
            generators::clique(32),
            generators::gnp(200, 0.05, 4),
            generators::grid2d(10, 10),
        ] {
            let report = CongestSim::new(&g, 5).run(|_, _| LubyCongest::new(g.len().max(4)));
            assert!(report.is_correct_mis(&g), "failed on {g:?}");
        }
    }

    #[test]
    fn awake_complexity_logarithmic() {
        let g = generators::gnp(1000, 0.01, 9);
        let report = CongestSim::new(&g, 2).run(|_, _| LubyCongest::new(1000));
        assert!(report.is_correct_mis(&g));
        // 2 rounds per phase, O(log n) phases.
        let log = (1000f64).log2();
        assert!(
            (report.max_awake() as f64) < 6.0 * log,
            "awake {} not O(log n)",
            report.max_awake()
        );
    }

    #[test]
    fn isolated_nodes_join_in_one_phase() {
        let g = generators::empty(5);
        let report = CongestSim::new(&g, 3).run(|_, _| LubyCongest::new(5));
        assert!(report.is_correct_mis(&g));
        assert_eq!(report.max_awake(), 2);
    }
}
