//! The node-protocol interface driven by the simulator.

use crate::model::{Action, Feedback, NodeStatus};

/// The RNG handed to protocol callbacks: every node owns an independent,
/// deterministic stream derived from the run's master seed.
pub type NodeRng = rand::rngs::SmallRng;

/// A per-node distributed protocol, written as an explicit state machine.
///
/// The engine drives each non-finished node with a two-phase round contract:
///
/// 1. [`Protocol::act`] — the node declares what it does this round;
/// 2. [`Protocol::feedback`] — after global resolution, the node learns the
///    outcome (only for awake rounds) and may transition state.
///
/// A node that returns [`Action::Sleep`] is not polled again until its
/// `wake_at` round and receives no feedback for the skipped rounds (messages
/// sent to a sleeping node are lost — §1 of the paper). Do not rely on
/// being observed *between* scheduled rounds in any way: when every node
/// sleeps, the engine fast-forwards over the quiet span without processing
/// the intervening rounds at all (whichever
/// [`EngineMode`](crate::EngineMode) backend drives the run), so a
/// protocol's only clock is the `round` argument it is handed.
///
/// Protocols must be *oblivious to global state*: their only inputs are the
/// construction parameters (n, Δ, …), the round number, their private RNG,
/// and the feedback they hear. This is enforced by construction — the trait
/// gives access to nothing else.
pub trait Protocol {
    /// Declares the node's action for `round`.
    ///
    /// Only called at rounds the node is scheduled for (round 0, rounds
    /// following an awake round, and the `wake_at` of a sleep).
    fn act(&mut self, round: u64, rng: &mut NodeRng) -> Action;

    /// Delivers the outcome of an awake round (never called for sleeping
    /// rounds).
    fn feedback(&mut self, round: u64, fb: Feedback, rng: &mut NodeRng);

    /// The node's current (irrevocable once decided) MIS status.
    fn status(&self) -> NodeStatus;

    /// Whether the node is permanently done (will sleep forever). Finished
    /// nodes are retired by the engine; a run completes when every node is
    /// finished.
    fn finished(&self) -> bool;

    /// Called once when the node comes back from a crash-recovery window
    /// (see [`FaultPlan::with_recovery`](crate::FaultPlan::with_recovery)).
    ///
    /// The engine guarantees a full state reset regardless of this hook: it
    /// rebuilds the node via the run's factory and calls `on_restart` on
    /// the *fresh* instance, at the restart round, before the node's first
    /// post-recovery `act` (which happens at `round + 1`). Implementations
    /// use it to learn that they are a revived node rather than an original
    /// one — e.g. a self-healing wrapper switches into repair mode instead
    /// of re-running its initial schedule. The default does nothing.
    fn on_restart(&mut self, round: u64, rng: &mut NodeRng) {
        let _ = (round, rng);
    }
}

/// Blanket impl so `Box<dyn Protocol>` works where a concrete type is
/// expected.
impl<P: Protocol + ?Sized> Protocol for Box<P> {
    fn act(&mut self, round: u64, rng: &mut NodeRng) -> Action {
        (**self).act(round, rng)
    }
    fn feedback(&mut self, round: u64, fb: Feedback, rng: &mut NodeRng) {
        (**self).feedback(round, fb, rng)
    }
    fn status(&self) -> NodeStatus {
        (**self).status()
    }
    fn finished(&self) -> bool {
        (**self).finished()
    }
    fn on_restart(&mut self, round: u64, rng: &mut NodeRng) {
        (**self).on_restart(round, rng)
    }
}

/// Poll-style completion for composable sub-protocols (backoffs, competition
/// phases, …): `Pending` while the sub-machine still owns upcoming rounds,
/// `Ready(T)` once it has produced its result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubPoll<T> {
    /// The sub-protocol continues next round.
    Pending,
    /// The sub-protocol completed with this output; the parent machine owns
    /// the next round.
    Ready(T),
}

impl<T> SubPoll<T> {
    /// Returns the completed value, if any.
    pub fn ready(self) -> Option<T> {
        match self {
            SubPoll::Pending => None,
            SubPoll::Ready(t) => Some(t),
        }
    }

    /// Whether the sub-protocol is still running.
    pub fn is_pending(&self) -> bool {
        matches!(self, SubPoll::Pending)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Message;
    use rand::SeedableRng;

    struct Fixed;
    impl Protocol for Fixed {
        fn act(&mut self, _round: u64, _rng: &mut NodeRng) -> Action {
            Action::Transmit(Message::unary())
        }
        fn feedback(&mut self, _round: u64, _fb: Feedback, _rng: &mut NodeRng) {}
        fn status(&self) -> NodeStatus {
            NodeStatus::InMis
        }
        fn finished(&self) -> bool {
            true
        }
    }

    #[test]
    fn boxed_protocol_delegates() {
        let mut p: Box<dyn Protocol> = Box::new(Fixed);
        let mut rng = NodeRng::seed_from_u64(0);
        assert_eq!(p.act(0, &mut rng), Action::Transmit(Message::unary()));
        p.feedback(0, Feedback::Sent, &mut rng);
        assert_eq!(p.status(), NodeStatus::InMis);
        assert!(p.finished());
        // The default restart hook is a no-op and delegates through Box.
        p.on_restart(3, &mut rng);
        assert!(p.finished());
    }

    #[test]
    fn subpoll_accessors() {
        let p: SubPoll<u32> = SubPoll::Pending;
        assert!(p.is_pending());
        assert_eq!(p.ready(), None);
        let r = SubPoll::Ready(7u32);
        assert!(!r.is_pending());
        assert_eq!(r.ready(), Some(7));
    }
}
