//! Flat bitset storage for the engine's struct-of-arrays state.
//!
//! The round loop keeps every per-node boolean — faulty, down, parked,
//! join-pending, dormancy-noted, reopened, queued — in one of these
//! word-packed bitsets instead of a `Vec<bool>`: an 8× densification
//! that keeps the hot membership tests of a 10^7-node sweep inside a
//! few cache lines per shard. See `docs/PARALLEL_ENGINE.md` for the
//! full layout.

/// A fixed-capacity bitset over node ids, packed 64 per word.
///
/// The empty value ([`BitSet::new`], zero words) doubles as an "absent"
/// sentinel, mirroring the empty-`Vec<bool>` idiom it replaced: state
/// that is only materialised when its fault class is active stays a
/// zero-allocation empty bitset otherwise, and [`BitSet::get`] reads
/// `false` for any index outside the allocated words.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub(crate) struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    /// The empty (sentinel) bitset: no words, every `get` false.
    pub(crate) fn new() -> BitSet {
        BitSet { words: Vec::new() }
    }

    /// An all-false bitset with capacity for ids `0..n`.
    pub(crate) fn with_len(n: usize) -> BitSet {
        BitSet {
            words: vec![0; n.div_ceil(64)],
        }
    }

    /// Whether no words are allocated — the sentinel state, **not**
    /// "all bits zero". Matches `Vec::is_empty` on the `Vec<bool>` this
    /// type replaced: `with_len(n)` for `n > 0` is non-empty even when
    /// every bit is clear.
    pub(crate) fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// The bit at `i`; `false` beyond the allocated words.
    pub(crate) fn get(&self, i: usize) -> bool {
        self.words
            .get(i / 64)
            .is_some_and(|w| (w >> (i % 64)) & 1 == 1)
    }

    /// Sets the bit at `i`. Panics beyond the allocated capacity.
    pub(crate) fn set(&mut self, i: usize) {
        self.words[i / 64] |= 1 << (i % 64);
    }

    /// Clears the bit at `i`. Panics beyond the allocated capacity.
    pub(crate) fn clear(&mut self, i: usize) {
        self.words[i / 64] &= !(1 << (i % 64));
    }

    /// The first set bit at or after `from`, scanning whole words.
    pub(crate) fn next_set_from(&self, from: usize) -> Option<usize> {
        let mut w = from / 64;
        if w >= self.words.len() {
            return None;
        }
        let mut word = self.words[w] & (u64::MAX << (from % 64));
        loop {
            if word != 0 {
                return Some(w * 64 + word.trailing_zeros() as usize);
            }
            w += 1;
            if w >= self.words.len() {
                return None;
            }
            word = self.words[w];
        }
    }

    /// Expands to the `Vec<bool>` report form over ids `0..n`,
    /// preserving the sentinel: an empty bitset stays an empty vec.
    pub(crate) fn to_vec_bools(&self, n: usize) -> Vec<bool> {
        if self.words.is_empty() {
            Vec::new()
        } else {
            (0..n).map(|i| self.get(i)).collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sentinel_reads_false_everywhere_and_stays_empty() {
        let b = BitSet::new();
        assert!(b.is_empty());
        assert!(!b.get(0));
        assert!(!b.get(1_000_000));
        assert_eq!(b.next_set_from(0), None);
        assert_eq!(b.to_vec_bools(5), Vec::<bool>::new());
    }

    #[test]
    fn with_len_is_allocated_even_when_all_clear() {
        let b = BitSet::with_len(3);
        assert!(!b.is_empty());
        assert_eq!(b.to_vec_bools(3), vec![false; 3]);
        assert!(BitSet::with_len(0).is_empty());
    }

    #[test]
    fn set_clear_get_roundtrip_across_word_boundaries() {
        let mut b = BitSet::with_len(200);
        for i in [0, 1, 63, 64, 65, 127, 128, 199] {
            assert!(!b.get(i));
            b.set(i);
            assert!(b.get(i));
        }
        b.clear(64);
        assert!(!b.get(64));
        assert!(b.get(63) && b.get(65));
        // Out-of-capacity reads are false, not a panic.
        assert!(!b.get(1 << 20));
    }

    #[test]
    fn next_set_from_walks_sparse_bits_in_order() {
        let mut b = BitSet::with_len(300);
        for i in [5, 64, 191, 256] {
            b.set(i);
        }
        let mut seen = Vec::new();
        let mut from = 0;
        while let Some(i) = b.next_set_from(from) {
            seen.push(i);
            from = i + 1;
        }
        assert_eq!(seen, vec![5, 64, 191, 256]);
        assert_eq!(b.next_set_from(257), None);
        assert_eq!(b.next_set_from(100_000), None);
    }

    #[test]
    fn to_vec_bools_matches_gets() {
        let mut b = BitSet::with_len(70);
        b.set(0);
        b.set(69);
        let v = b.to_vec_bools(70);
        assert_eq!(v.len(), 70);
        assert!(v[0] && v[69]);
        assert_eq!(v.iter().filter(|&&x| x).count(), 2);
    }
}
