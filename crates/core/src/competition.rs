//! Algorithm 3: the no-CD competition, with the commit/energy-budget
//! mechanism of §5.1.1.
//!
//! The competition walks a fresh `β·log n`-bit rank bit by bit, like
//! Algorithm 1's, but each bit becomes a `C′·log n`-repeated backoff block
//! so it survives the lack of collision detection:
//!
//! - on a 1-bit the node runs [`SndEBackoff`] (one transmission per
//!   iteration — cheap);
//! - on a 0-bit it runs [`RecEBackoff`] and reacts to the outcome:
//!   - hearing a competitor at the node's *first* 0-bit → **lose** (sleep
//!     out the rest of the competition);
//!   - hearing nothing at the first 0-bit → **commit**: the node has just
//!     paid a full Θ(log n·log Δ) listen and cannot afford another, so it
//!     (a) reduces its degree estimate to κ·log n — justified by
//!     Corollary 13 — shortening all later listens to Θ(log n·loglog n),
//!     and (b) promises to decide within this Luby phase;
//!   - a committed node that hears later stays committed (it will run
//!     LowDegreeMIS); one that never hears **wins**.
//! - nodes whose rank bits are all 1 never listen and win outright.
//!
//! Lemmas 11–15 are validated against this machine by experiment E8/E9 and
//! the unit tests below.

use crate::backoff::{RecEBackoff, SndEBackoff};
use crate::params::NoCdParams;
use radio_netsim::{Action, Feedback, NodeRng};
use rand::Rng;

/// Final status of a node after one competition (Algorithm 3's `status`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompetitionOutcome {
    /// Heard nothing through every bitty phase: attempt to join the MIS via
    /// the deep check (Algorithm 2 line 8).
    Win {
        /// Whether the node had committed along the way (it is then in both
        /// W_i and C_i).
        committed: bool,
    },
    /// Committed at its first 0-bit, then heard a competitor: decide within
    /// this phase via LowDegreeMIS (Algorithm 2 line 17).
    Commit,
    /// Heard a competitor at its first 0-bit: sleep out the phase and do
    /// only the shallow check.
    Lose,
}

#[derive(Debug, Clone)]
enum Sub {
    Snd(SndEBackoff),
    Rec(RecEBackoff),
}

/// The per-node competition state machine, occupying the fixed window
/// `[start, start + T_C)`.
#[derive(Debug, Clone)]
pub struct Competition {
    start: u64,
    end: u64,
    block: u64,
    bits: u32,
    k: u32,
    delta: usize,
    committed_degree: usize,
    /// Cumulative `heard` flag (Algorithm 3 line 8).
    heard: bool,
    committed: bool,
    lost: bool,
    /// Bitty phase (0-based) at which the node committed, for the Lemma 11
    /// audit.
    committed_at_bit: Option<u32>,
    sub: Option<Sub>,
}

impl Competition {
    /// Creates a competition starting at absolute round `start`.
    pub fn new(start: u64, params: &NoCdParams) -> Competition {
        let k = params.k_deep();
        let block = params.t_backoff(k);
        let bits = params.rank_bits();
        Competition {
            start,
            end: start + bits as u64 * block,
            block,
            bits,
            k,
            delta: params.delta.max(1),
            committed_degree: params.committed_degree(),
            heard: false,
            committed: false,
            lost: false,
            committed_at_bit: None,
            sub: None,
        }
    }

    /// First round of the window.
    pub fn start(&self) -> u64 {
        self.start
    }

    /// One past the last round of the window (= `start + T_C`).
    pub fn end(&self) -> u64 {
        self.end
    }

    /// Whether the window is over.
    pub fn is_done(&self, round: u64) -> bool {
        round >= self.end
    }

    /// The competition's result; meaningful once [`Competition::is_done`].
    pub fn outcome(&self) -> CompetitionOutcome {
        if self.lost {
            CompetitionOutcome::Lose
        } else if self.heard {
            debug_assert!(self.committed, "heard without losing implies committed");
            CompetitionOutcome::Commit
        } else {
            CompetitionOutcome::Win {
                committed: self.committed,
            }
        }
    }

    /// Bitty phase at which the node committed, if it did (Lemma 11 audit).
    pub fn committed_at_bit(&self) -> Option<u32> {
        self.committed_at_bit
    }

    /// Closes the completed backoff block, applying Algorithm 3 lines 8–13.
    fn close_sub(&mut self) {
        if let Some(Sub::Rec(rec)) = self.sub.take() {
            if rec.heard() {
                self.heard = true;
                if !self.committed {
                    self.lost = true;
                }
            } else if !self.heard {
                // First silent 0-bit: commit and shrink the degree estimate
                // (Algorithm 3 lines 11–13).
                if !self.committed {
                    self.committed = true;
                    let bit = ((rec.start() - self.start) / self.block) as u32;
                    self.committed_at_bit = Some(bit);
                }
            }
        } else {
            self.sub = None;
        }
    }

    /// Action for `round` (must be within the window).
    ///
    /// # Panics
    ///
    /// Panics (debug) if called outside `[start, end)`.
    pub fn act(&mut self, round: u64, rng: &mut NodeRng) -> Action {
        debug_assert!(round >= self.start && round < self.end);
        // Close a finished block.
        let sub_done = match &self.sub {
            Some(Sub::Snd(s)) => s.is_done(round),
            Some(Sub::Rec(r)) => r.is_done(round),
            None => false,
        };
        if sub_done {
            self.close_sub();
        }
        if self.lost {
            // Algorithm 3 line 5: sleep through the remaining bitty phases.
            return Action::Sleep { wake_at: self.end };
        }
        match &mut self.sub {
            Some(Sub::Snd(s)) => s.act(round),
            Some(Sub::Rec(r)) => r.act(round),
            None => {
                debug_assert_eq!((round - self.start) % self.block, 0, "block misalignment");
                let bit_idx = ((round - self.start) / self.block) as u32;
                debug_assert!(bit_idx < self.bits);
                // Sample this rank bit lazily (i.i.d. uniform bits).
                if rng.gen_bool(0.5) {
                    let s = SndEBackoff::new(round, self.k, self.delta, rng);
                    self.sub = Some(Sub::Snd(s));
                    match self.sub.as_mut().expect("just set") {
                        Sub::Snd(s) => s.act(round),
                        Sub::Rec(_) => unreachable!(),
                    }
                } else {
                    let d_est = if self.committed {
                        self.committed_degree
                    } else {
                        self.delta
                    };
                    let r = RecEBackoff::new(round, self.k, self.delta, d_est);
                    self.sub = Some(Sub::Rec(r));
                    match self.sub.as_mut().expect("just set") {
                        Sub::Rec(r) => r.act(round),
                        Sub::Snd(_) => unreachable!(),
                    }
                }
            }
        }
    }

    /// Feedback for a round this machine acted in.
    pub fn feedback(&mut self, round: u64, fb: Feedback) {
        if let Some(Sub::Rec(r)) = &mut self.sub {
            r.feedback(round, fb);
        }
    }

    /// Finalizes the machine at the end of the window (delivers the last
    /// block's outcome). Call once `is_done` before reading
    /// [`Competition::outcome`].
    pub fn finalize(&mut self, round: u64) {
        debug_assert!(self.is_done(round));
        let sub_done = match &self.sub {
            Some(Sub::Snd(s)) => s.is_done(round),
            Some(Sub::Rec(r)) => r.is_done(round),
            None => true,
        };
        debug_assert!(sub_done, "finalize before last block completed");
        self.close_sub();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn params() -> NoCdParams {
        NoCdParams::for_n(64, 16)
    }

    fn rng(seed: u64) -> NodeRng {
        NodeRng::seed_from_u64(seed)
    }

    /// Drives one competition machine alone (no neighbors): it must win.
    #[test]
    fn isolated_node_wins() {
        let p = params();
        let mut c = Competition::new(0, &p);
        let mut r = rng(1);
        let mut round = 0u64;
        while !c.is_done(round) {
            match c.act(round, &mut r) {
                Action::Listen => {
                    c.feedback(round, Feedback::Silence);
                    round += 1;
                }
                Action::Transmit(_) => round += 1,
                Action::Sleep { wake_at } => round = wake_at,
            }
        }
        c.finalize(round);
        match c.outcome() {
            CompetitionOutcome::Win { .. } => {}
            other => panic!("expected Win, got {other:?}"),
        }
        // A node with at least one 0-bit must have committed.
        if c.committed_at_bit().is_some() {
            assert!(matches!(
                c.outcome(),
                CompetitionOutcome::Win { committed: true }
            ));
        }
    }

    /// A node that hears activity at its first 0-bit loses and then sleeps
    /// to the end of the window.
    #[test]
    fn hearing_at_first_zero_bit_loses() {
        let p = params();
        let mut c = Competition::new(0, &p);
        let mut r = rng(2);
        let mut round = 0u64;
        let mut lost_seen = false;
        while !c.is_done(round) {
            match c.act(round, &mut r) {
                Action::Listen => {
                    // Adversarially always report a heard message.
                    c.feedback(round, Feedback::Heard(radio_netsim::Message::unary()));
                    round += 1;
                }
                Action::Transmit(_) => round += 1,
                Action::Sleep { wake_at } => {
                    if wake_at == c.end() && !lost_seen {
                        lost_seen = true;
                    }
                    round = wake_at;
                }
            }
        }
        c.finalize(round);
        // With seed 2 the rank has at least one 0-bit among β·log n bits
        // (probability 2^-12 of all-ones would make this Win instead).
        assert_eq!(c.outcome(), CompetitionOutcome::Lose);
        assert_eq!(c.committed_at_bit(), None);
    }

    /// A node that hears nothing at its first 0-bit commits; hearing later
    /// leaves it committed (not lost).
    #[test]
    fn commit_then_hear_stays_committed() {
        let p = params();
        let mut c = Competition::new(0, &p);
        let mut r = rng(3);
        let mut round = 0u64;
        let mut silent_blocks = 0u32;
        while !c.is_done(round) {
            match c.act(round, &mut r) {
                Action::Listen => {
                    // Stay silent for the node's first 0-bit block, then
                    // report activity afterwards.
                    let fb = if silent_blocks == 0 {
                        Feedback::Silence
                    } else {
                        Feedback::Heard(radio_netsim::Message::unary())
                    };
                    c.feedback(round, fb);
                    round += 1;
                }
                Action::Transmit(_) => round += 1,
                Action::Sleep { wake_at } => {
                    // Completed a listening block (or skipped estimate tail).
                    if c.committed_at_bit().is_some() && silent_blocks == 0 {
                        silent_blocks = 1;
                    }
                    round = wake_at;
                }
            }
        }
        c.finalize(round);
        // The node committed at its first 0-bit...
        assert!(c.committed_at_bit().is_some());
        // ...and heard afterwards (unless its rank had only one 0-bit and it
        // was last — the chosen seed avoids that).
        assert!(matches!(
            c.outcome(),
            CompetitionOutcome::Commit | CompetitionOutcome::Win { committed: true }
        ));
    }

    /// The committed degree estimate shortens listening: a committed node's
    /// awake rounds per 0-bit block drop from k·⌈log Δ⌉ to
    /// k·⌈log(κ log n)⌉.
    #[test]
    fn commit_shrinks_listening() {
        let p = NoCdParams::for_n(1 << 12, 1 << 10); // Δ = 1024 ≫ κ·log n = 48
        let mut c = Competition::new(0, &p);
        let mut r = rng(5);
        let mut round = 0u64;
        let mut listens_per_block: Vec<(bool, u64)> = Vec::new(); // (committed?, count)
        let mut current_block_listens = 0u64;
        let mut last_block = u64::MAX;
        while !c.is_done(round) {
            let block = round / p.t_backoff(p.k_deep());
            if block != last_block {
                if last_block != u64::MAX && current_block_listens > 0 {
                    listens_per_block.push((c.committed_at_bit().is_some(), current_block_listens));
                }
                current_block_listens = 0;
                last_block = block;
            }
            match c.act(round, &mut r) {
                Action::Listen => {
                    c.feedback(round, Feedback::Silence);
                    current_block_listens += 1;
                    round += 1;
                }
                Action::Transmit(_) => round += 1,
                Action::Sleep { wake_at } => round = wake_at,
            }
        }
        if current_block_listens > 0 {
            listens_per_block.push((true, current_block_listens));
        }
        c.finalize(round);
        let k = p.k_deep() as u64;
        let w = p.window() as u64;
        let w_est = crate::backoff::backoff_window(p.committed_degree()) as u64;
        assert!(w_est < w, "test premise: reduced window strictly smaller");
        let pre: Vec<u64> = listens_per_block
            .iter()
            .filter(|(c, _)| !c)
            .map(|&(_, l)| l)
            .collect();
        let post: Vec<u64> = listens_per_block
            .iter()
            .filter(|(c, _)| *c)
            .map(|&(_, l)| l)
            .collect();
        // First 0-bit block: full window listening.
        assert_eq!(pre, vec![k * w]);
        // Later 0-bit blocks: reduced listening.
        for l in post {
            assert_eq!(l, k * w_est);
        }
    }

    #[test]
    fn window_length_matches_params() {
        let p = params();
        let c = Competition::new(100, &p);
        assert_eq!(c.end() - c.start(), p.t_competition());
    }
}
