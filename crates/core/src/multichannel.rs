//! t-resilient MIS for multichannel radio networks under adversarial
//! jamming (the Daum–Kuhn model; see docs/MULTICHANNEL.md).
//!
//! The network has `F = channels` parallel channels and an adversary that
//! disrupts up to `t = resilience < F` of them per round (fixed, roaming,
//! or adaptive — [`radio_netsim::ChannelAdversary`]). In the CD model a
//! jammed channel reads as a collision, so jamming can *forge* activity but
//! never *suppress* it. [`MultichannelMis`] exploits that asymmetry: it is
//! Algorithm 1's Luby-phase structure with every single-channel round
//! lifted to a *block* of channel-hopping Decay slots, and with all
//! decisions driven by **cleanly heard messages only** — collisions (real
//! or jammed) are ignored, so the adversary cannot fake a competitor or a
//! winner.
//!
//! A phase is `rank_bits` competition blocks plus one check block:
//!
//! - **Competition block for bit b**: a node whose fresh rank bit is 1 is a
//!   *caller* — each slot it hops to a uniformly random channel and
//!   transmits its announce with the Decay probability 2^−(slot mod W),
//!   sleeping otherwise; a 0-bit node *listens* on a uniformly random
//!   channel each slot and **loses** the phase the first time it cleanly
//!   hears any announce (some co-surviving competitor has a 1 where it has
//!   a 0). Losers sleep until the check block.
//! - **Check block**: a node that survived every bit **wins** — it sets
//!   in-MIS and Decay-beacons on hopping channels; losers listen on hopping
//!   channels and set out-MIS on cleanly hearing any beacon (beacons are
//!   only ever sent by genuine just-joined neighbors, so out-MIS coverage
//!   is exact, never forged by jamming).
//!
//! Blocks hold `⌈γ·F²/(F−t)·log₂ n⌉` Decay windows: a listener meets a
//! given caller on an unjammed channel with probability ≥ (F−t)/F² per
//! slot, and the Decay sweep defeats unknown contention, so a block misses
//! a live caller with probability ≤ exp(−γ·log₂n/e) = 1/poly(n). The
//! highest-ranked active node in a component never cleanly hears a beater,
//! so every phase produces a winner deterministically — jamming only slows
//! detection by the F²/(F−t) block stretch, the Daum–Kuhn overhead. As
//! with [`crate::cd::CdMis`], identical-rank ties are the residual failure
//! mode (probability 2^−rank_bits per adjacent pair per phase).
//!
//! Energy: a listener is awake for whole blocks, so per-node energy is
//! Θ(F²/(F−t)·log³n) — the resilience premium over Algorithm 1's O(log n).
//! Experiment E17 measures both sides of that trade.
//!
//! # Example
//!
//! ```
//! use mis_graphs::generators;
//! use radio_mis::multichannel::MultichannelMis;
//! use radio_mis::params::MultichannelParams;
//! use radio_netsim::{ChannelModel, FaultPlan, SimConfig, Simulator};
//!
//! // Two channels, one of which an adaptive adversary jams every round.
//! // The n-bound only needs to be an upper bound on the network size;
//! // a generous one widens the ranks and so suppresses tie failures.
//! let g = generators::gnp(16, 0.2, 1);
//! let params = MultichannelParams::for_n(64, 2, 1);
//! let config = SimConfig::new(ChannelModel::Cd)
//!     .with_channels(2)
//!     .with_seed(9)
//!     .with_faults(FaultPlan::none().with_adaptive_channel_jam(1));
//! let report = Simulator::new(&g, config).run(|_, _| MultichannelMis::new(params));
//! assert!(report.is_correct_mis(&g));
//! ```

use crate::params::MultichannelParams;
use radio_netsim::{Action, Feedback, Message, NodeRng, NodeStatus, Protocol};
use rand::Rng;

/// Encodes a competition announce: even payload, nonzero for any id.
pub fn announce(id: usize) -> Message {
    Message::with_payload((id as u64 + 1) * 2)
}

/// Encodes a winner beacon: odd payload, nonzero for any id.
pub fn beacon(id: usize) -> Message {
    Message::with_payload((id as u64 + 1) * 2 + 1)
}

/// Decodes a payload into `(id, is_beacon)`; `None` for foreign payloads.
pub fn decode(payload: u64) -> Option<(usize, bool)> {
    if payload < 2 {
        return None;
    }
    Some(((payload / 2 - 1) as usize, payload % 2 == 1))
}

/// Per-node state machine for the t-resilient multichannel MIS.
#[derive(Debug, Clone)]
pub struct MultichannelMis {
    params: MultichannelParams,
    status: NodeStatus,
    finished: bool,
    /// Phase whose per-phase state (`lost`, `winning`) is current.
    phase_of_state: u64,
    lost: bool,
    /// Whether the node survived every competition bit of the current
    /// phase and is beaconing through the check block.
    winning: bool,
    /// This block's lazily sampled rank bit, keyed by global block index.
    bit: bool,
    bit_block: u64,
    /// Node id, used only to label announces/beacons for traces.
    id: usize,
}

impl MultichannelMis {
    /// Creates a node running the multichannel MIS with the given
    /// parameters. The run's [`radio_netsim::SimConfig`] must be configured
    /// with at least [`MultichannelParams::channels`] channels.
    pub fn new(params: MultichannelParams) -> MultichannelMis {
        MultichannelMis::with_id(params, 0)
    }

    /// Creates a node with an explicit id to stamp into its messages; the
    /// id carries no protocol meaning beyond trace readability.
    pub fn with_id(params: MultichannelParams, id: usize) -> MultichannelMis {
        MultichannelMis {
            params,
            status: NodeStatus::Undecided,
            finished: false,
            phase_of_state: 0,
            lost: false,
            winning: false,
            bit: false,
            bit_block: u64::MAX,
            id,
        }
    }

    /// The parameters this node runs with.
    pub fn params(&self) -> &MultichannelParams {
        &self.params
    }

    /// The Luby phase a slot belongs to.
    fn phase_of(&self, round: u64) -> u64 {
        round / self.params.phase_len()
    }

    /// Block index within the phase (0..rank_bits are competition, the
    /// last is the check block).
    fn block_of(&self, round: u64) -> u64 {
        (round % self.params.phase_len()) / self.params.block_len()
    }

    /// Decay transmit probability for this slot: 2^−(slot mod W).
    fn decay_p(&self, round: u64) -> f64 {
        let wpos = (round % self.params.block_len()) % self.params.decay_window() as u64;
        0.5f64.powi(wpos as i32)
    }

    fn enter_phase(&mut self, phase: u64) {
        if phase != self.phase_of_state {
            self.phase_of_state = phase;
            self.lost = false;
            self.winning = false;
        }
    }

    /// Hop: a fresh uniformly random channel for this slot.
    fn hop(&self, rng: &mut NodeRng) -> u16 {
        rng.gen_range(0..self.params.channels)
    }

    /// A Decay transmission slot: transmit `msg` on a random channel with
    /// probability `p`, otherwise sleep through the slot (senders spend no
    /// energy between their transmissions).
    fn decay_slot(&self, round: u64, msg: Message, rng: &mut NodeRng) -> Action {
        if rng.gen_bool(self.decay_p(round)) {
            Action::Transmit(msg).on_channel(self.hop(rng))
        } else {
            Action::Sleep { wake_at: round + 1 }
        }
    }
}

impl Protocol for MultichannelMis {
    fn act(&mut self, round: u64, rng: &mut NodeRng) -> Action {
        let phase = self.phase_of(round);
        // A winner retires once its check block is over (next phase or end
        // of schedule); it already holds in-MIS status.
        if self.winning && (round >= self.params.total_rounds() || phase != self.phase_of_state) {
            self.finished = true;
            return Action::halt();
        }
        if round >= self.params.total_rounds() {
            // Schedule exhausted while undecided: retire as a run failure.
            self.finished = true;
            return Action::halt();
        }
        self.enter_phase(phase);
        let block = self.block_of(round);
        if block < self.params.rank_bits() as u64 {
            if self.lost {
                // Sleep out the rest of the competition; wake for the check
                // block to learn whether a neighbor won.
                return Action::Sleep {
                    wake_at: phase * self.params.phase_len()
                        + self.params.rank_bits() as u64 * self.params.block_len(),
                };
            }
            // Sample this block's rank bit lazily on first entry; the bits
            // are i.i.d. uniform so this matches drawing the rank up front.
            let global_block = round / self.params.block_len();
            if self.bit_block != global_block {
                self.bit_block = global_block;
                self.bit = rng.gen_bool(0.5);
            }
            if self.bit {
                self.decay_slot(round, announce(self.id), rng)
            } else {
                Action::Listen.on_channel(self.hop(rng))
            }
        } else if self.lost {
            // Check block, loser: hop-listen for a winner's beacon.
            Action::Listen.on_channel(self.hop(rng))
        } else {
            // Survived every bit: the node joins the MIS and beacons so its
            // losers can leave.
            if !self.winning {
                self.winning = true;
                self.status = NodeStatus::InMis;
            }
            self.decay_slot(round, beacon(self.id), rng)
        }
    }

    fn feedback(&mut self, round: u64, fb: Feedback, _rng: &mut NodeRng) {
        // Only cleanly heard messages carry information: a collision may be
        // adversarial jam noise and silence may just be a missed channel
        // meeting, so everything but Heard is ignored.
        let Feedback::Heard(msg) = fb else {
            return;
        };
        let Some((_, is_beacon)) = decode(msg.payload()) else {
            return;
        };
        let in_competition = self.block_of(round) < self.params.rank_bits() as u64;
        if in_competition {
            // Listening on a 0-bit and cleanly heard a competitor's
            // announce: some co-survivor has a 1 here, defer to it.
            if !self.lost && !is_beacon {
                self.lost = true;
            }
        } else if self.lost && is_beacon {
            // A neighbor just joined the MIS; beacons are never forged, so
            // this coverage is exact.
            self.status = NodeStatus::OutMis;
            self.finished = true;
        }
    }

    fn status(&self) -> NodeStatus {
        self.status
    }

    fn finished(&self) -> bool {
        self.finished
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cd::CdMis;
    use crate::params::CdParams;
    use mis_graphs::generators;
    use radio_netsim::{ChannelModel, FaultPlan, SimConfig, Simulator};

    fn run_mc(
        g: &mis_graphs::Graph,
        params: MultichannelParams,
        seed: u64,
        faults: FaultPlan,
    ) -> radio_netsim::RunReport {
        let config = SimConfig::new(ChannelModel::Cd)
            .with_channels(params.channels)
            .with_seed(seed)
            .with_faults(faults);
        Simulator::new(g, config).run(move |v, _| MultichannelMis::with_id(params, v))
    }

    #[test]
    fn payload_codec_roundtrip() {
        for id in [0usize, 1, 7, 500] {
            assert_eq!(decode(announce(id).payload()), Some((id, false)));
            assert_eq!(decode(beacon(id).payload()), Some((id, true)));
        }
        assert_eq!(decode(0), None);
        assert_eq!(decode(1), None);
    }

    #[test]
    fn solves_small_graphs_across_channel_counts() {
        for channels in [1u16, 2, 4] {
            for g in [
                generators::path(20),
                generators::star(20),
                generators::clique(12),
                generators::gnp(40, 0.1, 5),
                generators::empty(10),
            ] {
                // n-bound 64 > every corpus graph: wide ranks make
                // identical-rank ties negligible (same idiom as cd.rs).
                let params = MultichannelParams::for_n(64, channels, 0);
                let report = run_mc(&g, params, 11, FaultPlan::none());
                assert!(
                    report.is_correct_mis(&g),
                    "failed on {g:?} at F={channels}: {:?}",
                    report.verify_mis(&g)
                );
            }
        }
    }

    #[test]
    fn survives_adaptive_jamming() {
        let g = generators::gnp(30, 0.1, 3);
        let params = MultichannelParams::for_n(64, 2, 1);
        let report = run_mc(
            &g,
            params,
            7,
            FaultPlan::none().with_adaptive_channel_jam(1),
        );
        assert!(
            report.is_correct_mis(&g),
            "adaptive jam broke the MIS: {:?}",
            report.verify_mis(&g)
        );
    }

    #[test]
    fn survives_fixed_and_roaming_jamming() {
        let g = generators::path(16);
        let params = MultichannelParams::for_n(64, 4, 2);
        for faults in [
            FaultPlan::none().with_fixed_channel_jam(vec![0, 2]),
            FaultPlan::none().with_roaming_channel_jam(2),
        ] {
            let report = run_mc(&g, params, 13, faults);
            assert!(
                report.is_correct_mis(&g),
                "jam plan broke the MIS: {:?}",
                report.verify_mis(&g)
            );
        }
    }

    #[test]
    fn single_channel_luby_fails_where_multichannel_survives() {
        // E17's headline in miniature: CdMis keeps all its traffic on
        // channel 0, so an adaptive jammer with budget 1 forges collisions
        // every round — every competitor "loses" immediately and every
        // loser mistakes check-round jam noise for a winner, leaving
        // out-MIS nodes with no in-MIS neighbor.
        let g = generators::gnp(30, 0.1, 3);
        let jam = FaultPlan::none().with_adaptive_channel_jam(1);

        let cd_config = SimConfig::new(ChannelModel::Cd)
            .with_channels(2)
            .with_seed(5)
            .with_faults(jam.clone());
        let cd_params = CdParams::for_n(30);
        let cd_report = Simulator::new(&g, cd_config).run(|_, _| CdMis::new(cd_params));
        assert!(
            !cd_report.is_correct_mis(&g),
            "single-channel CdMis should be broken by an adaptive jammer"
        );

        let params = MultichannelParams::for_n(64, 2, 1);
        let report = run_mc(&g, params, 5, jam);
        assert!(
            report.is_correct_mis(&g),
            "multichannel MIS should tolerate t=1 < F=2: {:?}",
            report.verify_mis(&g)
        );
    }

    #[test]
    fn isolated_node_wins_first_phase() {
        let g = generators::empty(1);
        let params = MultichannelParams::for_n(16, 2, 1);
        let report = run_mc(&g, params, 3, FaultPlan::none());
        assert!(report.is_correct_mis(&g));
        assert!(report.meters[0].decided_at.unwrap() < params.phase_len());
        // Decay sleeping keeps even the winner's energy below a full
        // always-awake phase.
        assert!(report.max_energy() < params.phase_len());
    }

    #[test]
    fn rounds_within_schedule() {
        let g = generators::gnp(40, 0.1, 5);
        let params = MultichannelParams::for_n(64, 2, 1);
        let report = run_mc(
            &g,
            params,
            17,
            FaultPlan::none().with_adaptive_channel_jam(1),
        );
        assert!(report.is_correct_mis(&g));
        assert!(report.rounds <= params.total_rounds());
    }

    #[test]
    fn deterministic_given_seed() {
        let g = generators::gnp(24, 0.15, 6);
        let params = MultichannelParams::for_n(24, 2, 1);
        let faults = FaultPlan::none().with_adaptive_channel_jam(1);
        let a = run_mc(&g, params, 5, faults.clone());
        let b = run_mc(&g, params, 5, faults);
        assert_eq!(a, b);
    }
}
