//! Randomized graph families: G(n,p), G(n,m), bounded-degree, random trees,
//! and power-law (preferential-attachment) graphs.

use super::rng;
use crate::graph::{Graph, GraphBuilder, NodeId};
use rand::distributions::{Distribution, Uniform};
use rand::seq::SliceRandom;
use rand::Rng;

/// Erdős–Rényi G(n, p): each of the n·(n−1)/2 possible edges is present
/// independently with probability `p`.
///
/// Uses geometric skipping, so the cost is O(n + m) rather than O(n²) for
/// sparse graphs.
///
/// Deterministic given `seed`:
///
/// ```
/// use mis_graphs::generators::gnp;
///
/// let a = gnp(200, 0.05, 7);
/// let b = gnp(200, 0.05, 7);
/// assert_eq!(a.edge_count(), b.edge_count());
/// assert!(a.edges().eq(b.edges()));
/// assert_eq!(gnp(10, 0.0, 7).edge_count(), 0);
/// assert_eq!(gnp(10, 1.0, 7).edge_count(), 45);
/// ```
///
/// # Panics
///
/// Panics if `p` is not within `[0, 1]` or is NaN.
pub fn gnp(n: usize, p: f64, seed: u64) -> Graph {
    assert!((0.0..=1.0).contains(&p), "p = {p} outside [0, 1]");
    let mut b = GraphBuilder::new(n);
    if n < 2 || p == 0.0 {
        return b.build();
    }
    let mut r = rng(seed);
    if p >= 1.0 {
        for u in 0..n {
            for v in (u + 1)..n {
                b.add_edge(u, v).expect("ids valid");
            }
        }
        return b.build();
    }
    // Batagelj–Brandes geometric skipping over the lexicographic edge stream.
    let log1mp = (1.0 - p).ln();
    let mut v: i64 = 1;
    let mut w: i64 = -1;
    let n = n as i64;
    while v < n {
        let u: f64 = r.gen_range(0.0..1.0);
        let skip = ((1.0 - u).ln() / log1mp).floor() as i64;
        w += 1 + skip;
        while w >= v && v < n {
            w -= v;
            v += 1;
        }
        if v < n {
            b.add_edge(w as NodeId, v as NodeId).expect("ids valid");
        }
    }
    b.build()
}

/// Erdős–Rényi G(n, m): exactly `m` distinct edges chosen uniformly at
/// random (capped at the number of possible edges).
pub fn gnm(n: usize, m: usize, seed: u64) -> Graph {
    let possible = n.saturating_mul(n.saturating_sub(1)) / 2;
    let m = m.min(possible);
    let mut r = rng(seed);
    let mut b = GraphBuilder::new(n);
    if n < 2 || m == 0 {
        return b.build();
    }
    let mut chosen = std::collections::HashSet::with_capacity(m * 2);
    let side = Uniform::new(0, n);
    while chosen.len() < m {
        let u = side.sample(&mut r);
        let v = side.sample(&mut r);
        if u == v {
            continue;
        }
        let key = if u < v { (u, v) } else { (v, u) };
        if chosen.insert(key) {
            b.add_edge(key.0, key.1).expect("ids valid");
        }
    }
    b.build()
}

/// A random graph with maximum degree at most `d_max`, built by sampling
/// candidate edges uniformly and keeping those that respect the bound.
///
/// The result is *not* a uniform d-regular graph; it is a simple workload
/// with a hard Δ cap, which is what the Δ-sweep experiments need.
pub fn bounded_degree(n: usize, d_max: usize, seed: u64) -> Graph {
    let mut r = rng(seed);
    let mut b = GraphBuilder::new(n);
    if n < 2 || d_max == 0 {
        return b.build();
    }
    let mut degree = vec![0usize; n];
    let mut present = std::collections::HashSet::new();
    // Aim for a near-saturated graph: try ~ n·d_max/2 edges with a bounded
    // number of rejection retries.
    let target = n * d_max / 2;
    let mut attempts = 0usize;
    let max_attempts = target * 20 + 100;
    let side = Uniform::new(0, n);
    let mut added = 0usize;
    while added < target && attempts < max_attempts {
        attempts += 1;
        let u = side.sample(&mut r);
        let v = side.sample(&mut r);
        if u == v || degree[u] >= d_max || degree[v] >= d_max {
            continue;
        }
        let key = if u < v { (u, v) } else { (v, u) };
        if present.insert(key) {
            degree[u] += 1;
            degree[v] += 1;
            b.add_edge(key.0, key.1).expect("ids valid");
            added += 1;
        }
    }
    b.build()
}

/// A uniformly random labelled tree on `n` nodes, generated from a random
/// Prüfer sequence. For `n <= 1` the graph has no edges; `n == 2` is a
/// single edge.
pub fn random_tree(n: usize, seed: u64) -> Graph {
    let mut b = GraphBuilder::new(n);
    match n {
        0 | 1 => return b.build(),
        2 => {
            b.add_edge(0, 1).expect("ids valid");
            return b.build();
        }
        _ => {}
    }
    let mut r = rng(seed);
    let prufer: Vec<NodeId> = (0..n - 2).map(|_| r.gen_range(0..n)).collect();
    let mut degree = vec![1usize; n];
    for &v in &prufer {
        degree[v] += 1;
    }
    // Standard Prüfer decoding with a min-heap of current leaves.
    let mut leaves: std::collections::BinaryHeap<std::cmp::Reverse<NodeId>> = (0..n)
        .filter(|&v| degree[v] == 1)
        .map(std::cmp::Reverse)
        .collect();
    for &v in &prufer {
        let std::cmp::Reverse(leaf) = leaves.pop().expect("a leaf always exists");
        b.add_edge(leaf, v).expect("ids valid");
        degree[leaf] -= 1;
        degree[v] -= 1;
        if degree[v] == 1 {
            leaves.push(std::cmp::Reverse(v));
        }
    }
    let std::cmp::Reverse(a) = leaves.pop().expect("two leaves remain");
    let std::cmp::Reverse(c) = leaves.pop().expect("two leaves remain");
    b.add_edge(a, c).expect("ids valid");
    b.build()
}

/// A power-law (heavy-tailed) random graph via Barabási–Albert preferential
/// attachment: nodes arrive one at a time and wire `m` edges to distinct
/// existing nodes chosen proportionally to current degree.
///
/// The seed core is a star on the first `m + 1` nodes; every later node
/// attaches `m` edges, so the graph has exactly `m · (n − m)` edges, average
/// degree ≈ `2m`, and a degree tail decaying like `deg⁻³` with hubs of order
/// `m·√n` — the heavy-tailed regime where the parallel MIS solver's *pull*
/// elimination pays off (see `parallel::choose_elimination`). `m` is capped
/// at `n − 1`; `m == 0` or `n < 2` yields an empty edge set.
///
/// Deterministic given `seed`:
///
/// ```
/// use mis_graphs::generators::power_law;
///
/// let a = power_law(500, 3, 7);
/// assert!(a.edges().eq(power_law(500, 3, 7).edges()));
/// assert_eq!(a.edge_count(), 3 * (500 - 3));
/// ```
pub fn power_law(n: usize, m: usize, seed: u64) -> Graph {
    let mut b = GraphBuilder::new(n);
    let m = m.min(n.saturating_sub(1));
    if n < 2 || m == 0 {
        return b.build();
    }
    let mut r = rng(seed);
    // One entry per edge endpoint: sampling uniformly from this list is
    // sampling nodes proportionally to degree.
    let mut endpoints: Vec<NodeId> = Vec::with_capacity(2 * m * n.saturating_sub(m));
    for v in 0..m {
        b.add_edge(v, m).expect("ids valid");
        endpoints.push(v);
        endpoints.push(m);
    }
    let mut targets: Vec<NodeId> = Vec::with_capacity(m);
    for v in (m + 1)..n {
        // The core has m + 1 distinct nodes, so m distinct targets always
        // exist and the rejection loop terminates.
        targets.clear();
        while targets.len() < m {
            let t = endpoints[r.gen_range(0..endpoints.len())];
            if !targets.contains(&t) {
                targets.push(t);
            }
        }
        // Register v's endpoints only after sampling, so v never self-loops.
        for &t in &targets {
            b.add_edge(t, v).expect("ids valid");
            endpoints.push(t);
            endpoints.push(v);
        }
    }
    b.build()
}

/// A uniformly random permutation of `0..n`, useful for randomized node
/// orders in baselines.
pub fn random_permutation(n: usize, seed: u64) -> Vec<NodeId> {
    let mut r = rng(seed);
    let mut perm: Vec<NodeId> = (0..n).collect();
    perm.shuffle(&mut r);
    perm
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gnp_extremes() {
        assert_eq!(gnp(10, 0.0, 1).edge_count(), 0);
        assert_eq!(gnp(10, 1.0, 1).edge_count(), 45);
        assert_eq!(gnp(0, 0.5, 1).len(), 0);
        assert_eq!(gnp(1, 0.5, 1).edge_count(), 0);
    }

    #[test]
    fn gnp_density_close_to_expectation() {
        let n = 400;
        let p = 0.05;
        let g = gnp(n, p, 99);
        let expected = p * (n * (n - 1) / 2) as f64;
        let m = g.edge_count() as f64;
        assert!(
            (m - expected).abs() < 0.25 * expected,
            "edge count {m} far from expectation {expected}"
        );
        g.validate().unwrap();
    }

    #[test]
    fn gnp_deterministic_by_seed() {
        assert_eq!(gnp(100, 0.1, 5), gnp(100, 0.1, 5));
        assert_ne!(gnp(100, 0.1, 5), gnp(100, 0.1, 6));
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn gnp_rejects_bad_p() {
        let _ = gnp(10, 1.5, 0);
    }

    #[test]
    fn gnm_exact_count() {
        let g = gnm(50, 100, 7);
        assert_eq!(g.edge_count(), 100);
        g.validate().unwrap();
        // Cap at complete graph.
        assert_eq!(gnm(5, 1000, 7).edge_count(), 10);
        assert_eq!(gnm(1, 5, 7).edge_count(), 0);
    }

    #[test]
    fn bounded_degree_respects_cap() {
        for d in [1, 2, 3, 8] {
            let g = bounded_degree(200, d, 11);
            assert!(g.max_degree() <= d, "Δ = {} > cap {d}", g.max_degree());
            g.validate().unwrap();
        }
        assert_eq!(bounded_degree(10, 0, 1).edge_count(), 0);
    }

    #[test]
    fn bounded_degree_nearly_saturates() {
        let g = bounded_degree(500, 4, 3);
        // Should get close to n·d/2 = 1000 edges.
        assert!(g.edge_count() > 800, "only {} edges", g.edge_count());
    }

    #[test]
    fn random_tree_is_tree() {
        for n in [2usize, 3, 10, 100] {
            let g = random_tree(n, 13);
            assert_eq!(g.edge_count(), n - 1, "n = {n}");
            assert_eq!(crate::analysis::connected_components(&g), 1, "n = {n}");
        }
        assert_eq!(random_tree(0, 1).len(), 0);
        assert_eq!(random_tree(1, 1).edge_count(), 0);
    }

    #[test]
    fn power_law_edge_count_and_validity() {
        for (n, m) in [(2usize, 1usize), (50, 1), (200, 3), (500, 5)] {
            let g = power_law(n, m, 17);
            assert_eq!(g.edge_count(), m * (n - m), "n={n} m={m}");
            g.validate().unwrap();
            assert_eq!(crate::analysis::connected_components(&g), 1, "n={n} m={m}");
        }
        assert_eq!(power_law(10, 0, 1).edge_count(), 0);
        assert_eq!(power_law(1, 3, 1).edge_count(), 0);
        assert_eq!(power_law(0, 3, 1).len(), 0);
        // m capped at n - 1: a 4-node graph with "m = 100" is just the core star.
        assert_eq!(power_law(4, 100, 1).edge_count(), 3);
    }

    #[test]
    fn power_law_deterministic_by_seed() {
        assert_eq!(power_law(300, 2, 5), power_law(300, 2, 5));
        assert_ne!(power_law(300, 2, 5), power_law(300, 2, 6));
    }

    #[test]
    fn power_law_has_heavy_tail() {
        // Preferential attachment concentrates degree: the hub should sit
        // far above the ~2m average (order m·√n ≈ 89 at n = 2000, m = 2).
        let g = power_law(2000, 2, 9);
        assert!(
            g.max_degree() as f64 > 4.0 * g.avg_degree(),
            "Δ = {} vs avg {}",
            g.max_degree(),
            g.avg_degree()
        );
    }

    #[test]
    fn random_permutation_is_permutation() {
        let p = random_permutation(20, 5);
        let mut sorted = p.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
    }
}
