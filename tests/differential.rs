//! Facade-level differential equivalence: the sparse wake-queue engine vs
//! the dense oracle, driven by the *real* paper protocols.
//!
//! The in-crate rig (`crates/netsim/tests/engine_differential.rs`) fuzzes
//! the two [`EngineMode`] backends with a synthetic chaotic protocol; this
//! suite closes the loop the way a library consumer would — `energy_mis::`
//! re-exports only, actual MIS machines (`CdMis`, `NoCdMis`, and the
//! self-healing `RepairingMis` under churn/recovery plans) — asserting
//! identical [`RunReport`]s and byte-identical JSONL trace streams.

use energy_mis::graphs::{generators, Graph};
use energy_mis::mis::cd::CdMis;
use energy_mis::mis::conserve::{Conserve, ConserveConfig};
use energy_mis::mis::multichannel::MultichannelMis;
use energy_mis::mis::nocd::NoCdMis;
use energy_mis::mis::params::{CdParams, MultichannelParams, NoCdParams};
use energy_mis::mis::{RepairConfig, RepairingMis};
use energy_mis::netsim::{
    ChannelModel, ConvergencePolicy, DownTime, EngineMode, FaultPlan, JsonlTrace, NodeRng,
    Protocol, RunReport, SimConfig, Simulator,
};
use proptest::prelude::*;

fn corpus_graph(kind: u8, n: usize, seed: u64) -> Graph {
    match kind {
        0 => generators::path(n),
        1 => generators::star(n),
        2 => generators::cycle(n),
        3 => generators::clique(n),
        4 => generators::binary_tree(n),
        _ => generators::random_tree(n, seed),
    }
}

/// Runs the same (graph, config, protocol factory) under both engine
/// backends and asserts report equality plus byte-identical trace streams.
/// Returns the (shared) report for further assertions.
fn assert_modes_agree<P, F>(g: &Graph, config: &SimConfig, factory: F) -> RunReport
where
    P: Protocol,
    F: Fn(usize, &mut NodeRng) -> P + Copy,
{
    let run = |mode: EngineMode| {
        let mut sink = JsonlTrace::new(Vec::<u8>::new());
        let report =
            Simulator::new(g, config.clone().with_engine_mode(mode)).run_traced(factory, &mut sink);
        (report, sink.into_inner().expect("in-memory writer"))
    };
    let (dense, dense_jsonl) = run(EngineMode::Dense);
    let (sparse, sparse_jsonl) = run(EngineMode::Sparse);
    assert_eq!(dense, sparse, "reports diverged between engine modes");
    assert_eq!(
        dense_jsonl, sparse_jsonl,
        "JSONL trace streams diverged between engine modes"
    );
    assert!(
        !sparse_jsonl.is_empty(),
        "empty trace: nothing was compared"
    );
    sparse
}

/// The exported default is the sparse backend, so existing consumers get
/// the fast path without touching their configs.
#[test]
fn facade_default_mode_is_sparse() {
    assert_eq!(SimConfig::new(ChannelModel::Cd).mode, EngineMode::Sparse);
    assert_eq!(EngineMode::default(), EngineMode::Sparse);
}

/// The self-healing wrapper under explicit recovery windows, churn, and a
/// join — the heaviest fault machinery the engine has — is byte-identical
/// across backends, and the run still re-converges.
#[test]
fn repairing_mis_under_churn_is_mode_independent() {
    let g = generators::path(12);
    let params = CdParams::for_n(32);
    let rc = RepairConfig::for_cd(params.total_rounds());
    let e = rc.epoch_len();
    let plan = FaultPlan::none()
        .with_recovery(2, e + 1, e + 2)
        .with_churn(0.02, 3 * e, DownTime::Fixed(4))
        .with_join(11, 3);
    let config = SimConfig::new(ChannelModel::Cd)
        .with_seed(9)
        .with_faults(plan)
        .with_convergence(ConvergencePolicy::new(3 * e).with_quiescence(40 * e))
        .with_max_rounds(600 * e)
        .with_round_metrics();
    let report = assert_modes_agree(&g, &config, |_, _| {
        RepairingMis::new(rc, move |_rng: &mut NodeRng| CdMis::new(params))
    });
    assert!(report.completed, "policy never stopped the run");
    assert!(report.is_correct_mis(&g), "{:?}", report.verify_mis(&g));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// `CdMis` — whose sleep schedule is exactly the sparse-awake workload
    /// the wake queue exists for — produces byte-identical runs in both
    /// modes on every corpus topology.
    #[test]
    fn cd_mis_is_mode_independent(
        n in 4usize..24,
        kind in 0u8..6,
        seed in any::<u64>(),
    ) {
        let g = corpus_graph(kind, n, seed);
        let params = CdParams::for_n(64);
        let config = SimConfig::new(ChannelModel::Cd)
            .with_seed(seed)
            .with_round_metrics();
        let report = assert_modes_agree(&g, &config, |_, _| CdMis::new(params));
        prop_assert!(report.is_correct_mis(&g), "{:?}", report.verify_mis(&g));
    }

    /// The multichannel machine under the adaptive channel jammer: channel
    /// selection, per-channel collision resolution, and the adversary's
    /// jam-set draws must all be backend-independent — and the MIS must
    /// still come out correct despite the jamming.
    #[test]
    fn multichannel_mis_under_jamming_is_mode_independent(
        n in 4usize..16,
        kind in 0u8..6,
        seed in any::<u64>(),
    ) {
        let g = corpus_graph(kind, n, seed);
        // Sized like the CdMis case above: an n-bound of 64 keeps the
        // rank wide enough that identical-rank ties are negligible under
        // random seeds.
        let params = MultichannelParams::for_n(64, 2, 1);
        let config = SimConfig::new(ChannelModel::Cd)
            .with_seed(seed)
            .with_channels(2)
            .with_faults(FaultPlan::none().with_adaptive_channel_jam(1))
            .with_round_metrics();
        let report = assert_modes_agree(&g, &config, move |v, _| MultichannelMis::with_id(params, v));
        prop_assert!(report.is_correct_mis(&g), "{:?}", report.verify_mis(&g));
    }

    /// Same for the no-CD machine on the lossy channel: loss resolution
    /// draws from the channel RNG stream, which must advance identically
    /// whichever backend drives the run.
    #[test]
    fn nocd_mis_under_loss_is_mode_independent(
        n in 4usize..16,
        kind in 0u8..6,
        seed in any::<u64>(),
    ) {
        let g = corpus_graph(kind, n, seed);
        let params = NoCdParams::for_n(256, g.max_degree().max(2));
        let config = SimConfig::new(ChannelModel::NoCd)
            .with_seed(seed)
            .with_faults(FaultPlan::none().with_loss(0.1));
        let report = assert_modes_agree(&g, &config, |_, _| NoCdMis::new(params));
        prop_assert!(report.is_correct_mis(&g), "{:?}", report.verify_mis(&g));
    }

    /// The layered axis: `Conserve<CdMis>` under the CD preset is
    /// byte-identical across engine backends AND across worker-thread
    /// counts {1, 2, 8}, decides the exact native statuses (the preset's
    /// losslessness theorem, docs/CONSERVE.md), and the decided mask is a
    /// verifier-correct MIS.
    #[test]
    fn conserve_cd_is_mode_and_thread_independent(
        n in 4usize..20,
        kind in 0u8..6,
        slice in 2u64..24,
        seed in any::<u64>(),
    ) {
        let g = corpus_graph(kind, n, seed);
        let params = CdParams::for_n(64);
        let cfg = ConserveConfig::for_cd(slice);
        let config = SimConfig::new(ChannelModel::Cd)
            .with_seed(seed)
            .with_round_metrics();
        let factory = move |_: usize, _: &mut NodeRng| Conserve::new(CdMis::new(params), cfg);
        let report = assert_modes_agree(&g, &config, factory);
        for threads in [2usize, 8] {
            let threaded = Simulator::new(&g, config.clone().with_threads(threads))
                .run(factory);
            prop_assert_eq!(
                &threaded, &report,
                "conserved run diverged at {} threads", threads
            );
        }
        let native = Simulator::new(&g, config.clone()).run(|_, _| CdMis::new(params));
        prop_assert_eq!(&native.statuses, &report.statuses, "CD preset must be lossless");
        prop_assert!(report.is_correct_mis(&g), "{:?}", report.verify_mis(&g));
    }

    /// The no-CD preset cannot promise native equality (collided wake-up
    /// advertisements read as silence), but its runs are still
    /// backend-deterministic and must decide a verifier-correct MIS.
    #[test]
    fn conserve_nocd_is_mode_independent_and_correct(
        n in 4usize..14,
        kind in 0u8..6,
        seed in any::<u64>(),
    ) {
        let g = corpus_graph(kind, n, seed);
        let params = NoCdParams::for_n(256, g.max_degree().max(2));
        let cfg = ConserveConfig::for_nocd(32);
        let config = SimConfig::new(ChannelModel::NoCd).with_seed(seed);
        let report = assert_modes_agree(&g, &config, move |_, _| {
            Conserve::new(NoCdMis::new(params), cfg)
        });
        prop_assert!(report.is_correct_mis(&g), "{:?}", report.verify_mis(&g));
    }
}
