//! `mis-sim graph`: generate a topology, print stats, optionally save it.

use crate::args::GraphOpts;
use mis_graphs::{analysis, io};

/// Executes `mis-sim graph`.
///
/// # Errors
///
/// Returns a message on write failures.
pub fn execute(opts: &GraphOpts) -> Result<String, String> {
    let g = opts.family.generate(opts.n, opts.seed);
    let (degeneracy, _) = analysis::degeneracy(&g);
    let mut out = format!(
        "family {} · n = {} · m = {} · Δ = {} · avg degree {:.2} · components {} · degeneracy {} · isolated {}\n",
        opts.family,
        g.len(),
        g.edge_count(),
        g.max_degree(),
        g.avg_degree(),
        analysis::connected_components(&g),
        degeneracy,
        analysis::isolated_count(&g),
    );
    if let Some(path) = &opts.out {
        std::fs::write(path, io::to_text(&g)).map_err(|e| format!("cannot write {path}: {e}"))?;
        out.push_str(&format!("wrote edge list to {path}\n"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mis_graphs::generators::Family;

    #[test]
    fn summarizes_and_saves() {
        let dir = std::env::temp_dir().join("mis_cli_test_graph");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("star.txt");
        let opts = GraphOpts {
            family: Family::Star,
            n: 9,
            seed: 0,
            out: Some(path.to_string_lossy().into_owned()),
        };
        let out = execute(&opts).unwrap();
        assert!(out.contains("n = 9"));
        assert!(out.contains("Δ = 8"));
        let text = std::fs::read_to_string(&path).unwrap();
        let back = io::from_text(&text).unwrap();
        assert_eq!(back.len(), 9);
    }

    #[test]
    fn bad_path_errors() {
        let opts = GraphOpts {
            family: Family::Path,
            n: 4,
            seed: 0,
            out: Some("/no/such/dir/g.txt".into()),
        };
        assert!(execute(&opts).unwrap_err().contains("cannot write"));
    }
}
