//! The adversarial graph family from the paper's Theorem 1.
//!
//! The Ω(log n) energy lower bound is proved on the anonymous n-node graph
//! that is the union of n/4 disjoint edges and n/2 isolated nodes: every
//! isolated node must join the MIS, while each matched pair must break the
//! tie — which requires one endpoint to *hear* the other, and hearing is
//! exactly what costs energy.

use crate::graph::{Graph, GraphBuilder};

/// The Theorem-1 family at size `n`: `⌊n/4⌋` disjoint edges followed by
/// isolated nodes filling up to `n`.
///
/// Node layout: nodes `2i` and `2i+1` are matched for `i < ⌊n/4⌋`; all nodes
/// `>= 2⌊n/4⌋` are isolated.
pub fn lower_bound_family(n: usize) -> Graph {
    matching_plus_isolated(n / 4, n - 2 * (n / 4))
}

/// A union of `pairs` disjoint edges and `isolated` isolated nodes
/// (`2·pairs + isolated` nodes total). [`lower_bound_family`] is the paper's
/// n/4 + n/2 instantiation.
pub fn matching_plus_isolated(pairs: usize, isolated: usize) -> Graph {
    let mut b = GraphBuilder::new(2 * pairs + isolated);
    for i in 0..pairs {
        b.add_edge(2 * i, 2 * i + 1).expect("ids valid");
    }
    b.build()
}

/// Returns the matched partner of `v` in a [`matching_plus_isolated`] graph
/// with `pairs` pairs, or `None` if `v` is isolated.
pub fn partner(v: usize, pairs: usize) -> Option<usize> {
    if v < 2 * pairs {
        Some(v ^ 1)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_shape() {
        let g = lower_bound_family(16);
        assert_eq!(g.len(), 16);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.max_degree(), 1);
        // Nodes 0..8 are matched, 8..16 isolated.
        for i in 0..4 {
            assert!(g.has_edge(2 * i, 2 * i + 1));
        }
        for v in 8..16 {
            assert_eq!(g.degree(v), 0);
        }
    }

    #[test]
    fn family_handles_non_multiples_of_four() {
        for n in [0usize, 1, 2, 3, 5, 7, 13] {
            let g = lower_bound_family(n);
            assert_eq!(g.len(), n);
            assert_eq!(g.edge_count(), n / 4);
            g.validate().unwrap();
        }
    }

    #[test]
    fn partner_mapping() {
        assert_eq!(partner(0, 3), Some(1));
        assert_eq!(partner(1, 3), Some(0));
        assert_eq!(partner(5, 3), Some(4));
        assert_eq!(partner(6, 3), None);
    }

    #[test]
    fn unique_mis_on_family() {
        // The MIS must contain all isolated nodes and exactly one endpoint
        // per pair, so it has size pairs + isolated.
        let g = matching_plus_isolated(5, 7);
        let mis = crate::mis::greedy_mis(&g);
        assert!(crate::mis::is_mis(&g, &mis));
        assert_eq!(mis.iter().filter(|&&b| b).count(), 5 + 7);
    }
}
