//! Multi-trial experiment runner.
//!
//! Experiments repeat each configuration over many independently seeded
//! trials. Trials are embarrassingly parallel; [`run_trials`] fans them out
//! with rayon. Parallelism cannot affect results: trial `i` always uses
//! master seed `split_seed(base_seed, i)`.

use crate::engine::{SimConfig, Simulator};
use crate::protocol::{NodeRng, Protocol};
use crate::report::RunReport;
use crate::rng::split_seed;
use mis_graphs::{Graph, NodeId};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// One trial's outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrialOutcome {
    /// Index of the trial within its [`TrialSet`].
    pub trial: usize,
    /// Master seed the trial ran with.
    pub seed: u64,
    /// The full run report.
    pub report: RunReport,
    /// Whether the output was verified to be an MIS of the input graph.
    pub correct: bool,
}

/// Outcomes of a batch of trials of one configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrialSet {
    /// Per-trial outcomes, in trial order.
    pub outcomes: Vec<TrialOutcome>,
}

impl TrialSet {
    /// Number of trials.
    pub fn len(&self) -> usize {
        self.outcomes.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.outcomes.is_empty()
    }

    /// Fraction of trials whose output verified as an MIS.
    ///
    /// Returns [`f64::NAN`] on an empty set: "no data" must not masquerade
    /// as a measured 0% success rate.
    pub fn success_rate(&self) -> f64 {
        if self.outcomes.is_empty() {
            return f64::NAN;
        }
        self.outcomes.iter().filter(|o| o.correct).count() as f64 / self.outcomes.len() as f64
    }

    /// Per-trial energy complexities (max awake rounds).
    pub fn energies(&self) -> Vec<f64> {
        self.outcomes
            .iter()
            .map(|o| o.report.max_energy() as f64)
            .collect()
    }

    /// Per-trial node-averaged energies.
    pub fn avg_energies(&self) -> Vec<f64> {
        self.outcomes
            .iter()
            .map(|o| o.report.avg_energy())
            .collect()
    }

    /// Per-trial round complexities.
    pub fn rounds(&self) -> Vec<f64> {
        self.outcomes
            .iter()
            .map(|o| o.report.rounds as f64)
            .collect()
    }

    /// Mean of per-trial energy complexities ([`f64::NAN`] on an empty set).
    pub fn mean_energy(&self) -> f64 {
        mean(&self.energies())
    }

    /// Mean of per-trial round complexities ([`f64::NAN`] on an empty set).
    pub fn mean_rounds(&self) -> f64 {
        mean(&self.rounds())
    }

    /// Max energy over all trials (worst case observed).
    pub fn worst_energy(&self) -> u64 {
        self.outcomes
            .iter()
            .map(|o| o.report.max_energy())
            .max()
            .unwrap_or(0)
    }
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        f64::NAN
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Runs `trials` independently seeded runs of the protocol on `graph` and
/// verifies each output.
///
/// `factory` must be callable from multiple threads; it is invoked once per
/// (trial, node).
pub fn run_trials<P, F>(graph: &Graph, base: SimConfig, trials: usize, factory: F) -> TrialSet
where
    P: Protocol,
    F: Fn(NodeId, &mut NodeRng) -> P + Sync,
{
    let outcomes: Vec<TrialOutcome> = (0..trials)
        .into_par_iter()
        .map(|t| {
            let seed = split_seed(base.seed, t as u64);
            let config = SimConfig {
                seed,
                ..base.clone()
            };
            let report = Simulator::new(graph, config).run(|v, rng| factory(v, rng));
            let correct = report.is_correct_mis(graph);
            TrialOutcome {
                trial: t,
                seed,
                report,
                correct,
            }
        })
        .collect();
    TrialSet { outcomes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Action, ChannelModel, Feedback, NodeStatus};
    use mis_graphs::generators;

    /// Everyone transmits in round 0 and decides InMis — an MIS only on the
    /// empty graph.
    #[derive(Default)]
    struct Instant {
        done: bool,
    }
    impl Protocol for Instant {
        fn act(&mut self, _round: u64, _rng: &mut NodeRng) -> Action {
            Action::Transmit(crate::model::Message::unary())
        }
        fn feedback(&mut self, _round: u64, _fb: Feedback, _rng: &mut NodeRng) {
            self.done = true;
        }
        fn status(&self) -> NodeStatus {
            NodeStatus::InMis
        }
        fn finished(&self) -> bool {
            self.done
        }
    }

    #[test]
    fn trials_verify_against_graph() {
        let empty = generators::empty(5);
        let set = run_trials(&empty, SimConfig::new(ChannelModel::Cd), 8, |_, _| {
            Instant::default()
        });
        assert_eq!(set.len(), 8);
        assert_eq!(set.success_rate(), 1.0);
        assert_eq!(set.worst_energy(), 1);

        let edge = generators::path(2);
        let set = run_trials(&edge, SimConfig::new(ChannelModel::Cd), 4, |_, _| {
            Instant::default()
        });
        assert_eq!(set.success_rate(), 0.0); // both endpoints joined
    }

    #[test]
    fn trial_seeds_are_distinct_and_deterministic() {
        let g = generators::empty(2);
        let a = run_trials(
            &g,
            SimConfig::new(ChannelModel::Cd).with_seed(5),
            4,
            |_, _| Instant::default(),
        );
        let b = run_trials(
            &g,
            SimConfig::new(ChannelModel::Cd).with_seed(5),
            4,
            |_, _| Instant::default(),
        );
        assert_eq!(a, b);
        let seeds: std::collections::HashSet<u64> = a.outcomes.iter().map(|o| o.seed).collect();
        assert_eq!(seeds.len(), 4);
    }

    #[test]
    fn summary_statistics() {
        let g = generators::empty(3);
        let set = run_trials(&g, SimConfig::new(ChannelModel::Cd), 3, |_, _| {
            Instant::default()
        });
        assert_eq!(set.mean_energy(), 1.0);
        assert_eq!(set.mean_rounds(), 1.0);
        assert_eq!(set.energies().len(), 3);
        assert_eq!(set.avg_energies(), vec![1.0; 3]);
        assert!(!set.is_empty());
    }

    #[test]
    fn empty_trialset_summaries_are_nan_not_zero() {
        // An empty set has no data: a 0.0 here would read as "every trial
        // failed" / "zero energy", which is a different (wrong) claim.
        let set = TrialSet { outcomes: vec![] };
        assert!(set.success_rate().is_nan());
        assert!(set.mean_energy().is_nan());
        assert!(set.mean_rounds().is_nan());
        assert_eq!(set.worst_energy(), 0);
    }

    #[test]
    fn trials_propagate_fault_plans() {
        use crate::fault::FaultPlan;
        // Path 0-1: node 1 crashes at round 0 in every trial; node 0 joins
        // alone. With node 1 faulty the single-node set {0} is a correct
        // MIS of the induced survivor subgraph.
        let g = generators::path(2);
        let config =
            SimConfig::new(ChannelModel::Cd).with_faults(FaultPlan::none().with_crash(1, 0));
        let set = run_trials(&g, config, 4, |_, _| Instant::default());
        assert_eq!(set.len(), 4);
        assert_eq!(set.success_rate(), 1.0);
        for o in &set.outcomes {
            assert_eq!(o.report.faulty, vec![false, true]);
        }
    }
}
