//! Plain-text graph serialization.
//!
//! Format: first non-comment line is `n m`; each following line is an edge
//! `u v`. Lines starting with `#` are comments. This mirrors common edge-list
//! formats so generated workloads can be inspected or reused outside Rust.

use crate::error::GraphError;
use crate::graph::{Graph, GraphBuilder};
use std::fmt::Write as _;

/// Serializes a graph to the edge-list text format.
pub fn to_text(g: &Graph) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# energy-mis edge list");
    let _ = writeln!(out, "{} {}", g.len(), g.edge_count());
    for (u, v) in g.edges() {
        let _ = writeln!(out, "{u} {v}");
    }
    out
}

/// Parses the edge-list text format.
///
/// # Errors
///
/// Returns [`GraphError::Parse`] on malformed input and the underlying
/// construction error for invalid edges (self-loops, out-of-range ids).
pub fn from_text(text: &str) -> Result<Graph, GraphError> {
    let mut header: Option<(usize, usize)> = None;
    let mut builder: Option<GraphBuilder> = None;
    let mut edges_seen = 0usize;
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let lineno = idx + 1;
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let a: usize = parse_field(parts.next(), lineno)?;
        let b: usize = parse_field(parts.next(), lineno)?;
        if parts.next().is_some() {
            return Err(GraphError::Parse {
                line: lineno,
                message: "expected exactly two fields".into(),
            });
        }
        match builder {
            None => {
                header = Some((a, b));
                builder = Some(GraphBuilder::new(a));
            }
            Some(ref mut bl) => {
                bl.add_edge(a, b)?;
                edges_seen += 1;
            }
        }
    }
    let builder = builder.ok_or(GraphError::Parse {
        line: 0,
        message: "missing header line".into(),
    })?;
    let (_, m) = header.expect("header set when builder set");
    if edges_seen != m {
        return Err(GraphError::Parse {
            line: 0,
            message: format!("header declared {m} edges, found {edges_seen}"),
        });
    }
    Ok(builder.build())
}

fn parse_field(field: Option<&str>, line: usize) -> Result<usize, GraphError> {
    field
        .ok_or(GraphError::Parse {
            line,
            message: "missing field".into(),
        })?
        .parse()
        .map_err(|e| GraphError::Parse {
            line,
            message: format!("invalid integer: {e}"),
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn roundtrip() {
        let g = generators::gnp(40, 0.1, 8);
        let text = to_text(&g);
        let back = from_text(&text).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn roundtrip_empty() {
        let g = generators::empty(5);
        assert_eq!(from_text(&to_text(&g)).unwrap(), g);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let g = from_text("# hello\n\n3 1\n# mid\n0 2\n").unwrap();
        assert_eq!(g.len(), 3);
        assert!(g.has_edge(0, 2));
    }

    #[test]
    fn rejects_missing_header() {
        assert!(matches!(
            from_text("# only comments\n"),
            Err(GraphError::Parse { .. })
        ));
        assert!(matches!(from_text(""), Err(GraphError::Parse { .. })));
    }

    #[test]
    fn rejects_edge_count_mismatch() {
        let err = from_text("3 2\n0 1\n").unwrap_err();
        assert!(matches!(err, GraphError::Parse { .. }));
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_text("3 one\n").is_err());
        assert!(from_text("3 1\n0 1 2\n").is_err());
        assert!(from_text("3 1\n0 9\n").is_err());
    }
}
