//! Graph substrate for the energy-efficient radio-network MIS reproduction.
//!
//! This crate provides everything the simulator and the algorithms need from
//! the *topology* side of the paper's model (§1.1 of the paper): an immutable
//! compressed-sparse-row [`Graph`] type, a library of [`generators`] covering
//! the graph families the paper's analysis touches (arbitrary graphs via
//! G(n,p), unit-disk graphs, the Theorem-1 lower-bound family, stars,
//! cliques, grids, trees, …), and [`mis`] verification utilities that decide
//! whether an algorithm's output is a maximal independent set.
//!
//! # Quick example
//!
//! ```
//! use mis_graphs::{generators, mis};
//!
//! let g = generators::gnp(100, 0.05, 42);
//! let set = mis::greedy_mis(&g);
//! assert!(mis::is_mis(&g, &set));
//! ```
//!
//! All generators are deterministic given their seed, which is what makes the
//! experiment harness reproducible end to end.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

/// Structural graph analysis: degree histograms, component counts.
pub mod analysis;
/// Error types for graph construction, validation, and parsing.
pub mod error;
/// Deterministic generators for every evaluated graph family.
pub mod generators;
/// The immutable compressed-sparse-row graph type and its builder.
pub mod graph;
/// Plain-text edge-list serialization.
pub mod io;
/// Maximal-independent-set verification utilities.
pub mod mis;
/// Deterministic parallel MIS solving and verification.
pub mod parallel;
/// Pinned portable randomness (seed derivation and a frozen-stream RNG).
pub mod rng;

pub use error::GraphError;
pub use graph::{Graph, GraphBuilder, NodeId};
pub use mis::{is_independent, is_maximal, is_mis, MisViolation};
pub use parallel::{prio_mis, verify_mis_par, Elimination};
pub use rng::{split_seed, PortableRng};
