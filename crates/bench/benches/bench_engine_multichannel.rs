//! The multichannel tax: per-channel collision resolution vs the
//! single-channel fast path.
//!
//! Two workloads probe the two promises of the multichannel engine
//! (docs/MULTICHANNEL.md):
//!
//! - **F = 1 stays free** — the staggered sparse workload of
//!   `bench_engine_sparse` run with an explicit `with_channels(1)` config
//!   must cost the same as the default config: the engine gates every
//!   multichannel branch on cached booleans and allocates no per-channel
//!   state at F = 1;
//! - **F > 1 scales gently** — a channel-hopping workload (every node
//!   awake every round, alternating transmit/listen on a uniformly random
//!   channel) pays per-channel resolution and the reserved per-(channel,
//!   round, node) fade stream; the tax relative to F = 1 is pinned by the
//!   `multichannel_tax` ceilings in `BENCH_engine.json`.
//!
//! Two entry points:
//! - `cargo bench --bench bench_engine_multichannel` — full criterion run
//!   over n ∈ {10⁴, 10⁵} × F ∈ {1, 2, 4, 8}, plus an adaptive-jammer leg;
//! - `ENGINE_BENCH_SMOKE=1 cargo bench --bench bench_engine_multichannel`
//!   — a quick wall-clock check at n = 10⁵ that fails (exit 1) if the
//!   F = 1 ratio or any F-scaling tax exceeds 1.25 × its committed
//!   baseline ceiling: the CI regression gate.

use criterion::{criterion_group, BenchmarkId, Criterion};
use mis_bench::workload;
use mis_graphs::Graph;
use radio_netsim::{
    Action, ChannelModel, FaultPlan, Feedback, Message, NodeRng, NodeStatus, Protocol, SimConfig,
    Simulator,
};
use rand::Rng;
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Rounds the hopper workload keeps every node awake.
const HOP_ROUNDS: u64 = 64;

/// Alternates transmit/listen on a random channel for [`HOP_ROUNDS`]
/// rounds. The channel draw happens only when `channels > 1`, so the
/// F = 1 leg replays the exact single-channel draw sequence.
struct Hopper {
    rounds_left: u64,
    channels: u16,
    done: bool,
}

impl Protocol for Hopper {
    fn act(&mut self, round: u64, rng: &mut NodeRng) -> Action {
        if self.rounds_left == 0 {
            self.done = true;
            return Action::halt();
        }
        self.rounds_left -= 1;
        let action = if round % 2 == 0 {
            Action::Transmit(Message::unary())
        } else {
            Action::Listen
        };
        if self.channels > 1 {
            action.on_channel(rng.gen_range(0..self.channels))
        } else {
            action
        }
    }
    fn feedback(&mut self, _round: u64, _fb: Feedback, _rng: &mut NodeRng) {}
    fn status(&self) -> NodeStatus {
        NodeStatus::OutMis
    }
    fn finished(&self) -> bool {
        self.done
    }
}

/// The staggered sparse workload of `bench_engine_sparse`, reused for the
/// F = 1 noise gate.
struct Staggered {
    slot: u64,
    work_left: u64,
    done: bool,
}

impl Protocol for Staggered {
    fn act(&mut self, round: u64, _rng: &mut NodeRng) -> Action {
        if round < self.slot {
            return Action::Sleep { wake_at: self.slot };
        }
        if self.work_left == 0 {
            self.done = true;
            return Action::halt();
        }
        self.work_left -= 1;
        Action::Listen
    }
    fn feedback(&mut self, _round: u64, _fb: Feedback, _rng: &mut NodeRng) {}
    fn status(&self) -> NodeStatus {
        NodeStatus::OutMis
    }
    fn finished(&self) -> bool {
        self.done
    }
}

fn staggered(v: usize) -> Staggered {
    Staggered {
        slot: (v / 100) as u64 * 8,
        work_left: 2,
        done: false,
    }
}

fn run_hop(g: &Graph, channels: u16, faults: FaultPlan) -> u64 {
    let config = SimConfig::new(ChannelModel::Cd)
        .with_seed(1)
        .with_channels(channels)
        .with_faults(faults);
    let report = Simulator::new(g, config).run(|_, _| Hopper {
        rounds_left: HOP_ROUNDS,
        channels,
        done: false,
    });
    assert!(report.completed, "hopper workload must finish");
    report.rounds
}

fn run_staggered(g: &Graph, explicit_channels: bool) -> u64 {
    let mut config = SimConfig::new(ChannelModel::Cd).with_seed(1);
    if explicit_channels {
        config = config.with_channels(1);
    }
    let report = Simulator::new(g, config).run(|v, _| staggered(v));
    assert!(report.completed, "staggered workload must finish");
    report.rounds
}

fn bench(c: &mut Criterion) {
    for &n in &[10_000usize, 100_000] {
        let g = workload(n, 42);
        let mut group = c.benchmark_group(format!("engine_multichannel/n={n}"));
        group.sample_size(10);
        for channels in [1u16, 2, 4, 8] {
            group.bench_with_input(
                BenchmarkId::new("hop", format!("F={channels}")),
                &g,
                |b, g| b.iter(|| run_hop(g, channels, FaultPlan::none())),
            );
        }
        // The adversary leg: adaptive jamming adds the per-round busiest-
        // channel scan on top of per-channel resolution.
        group.bench_with_input(BenchmarkId::new("hop", "F=4/jam=1"), &g, |b, g| {
            b.iter(|| run_hop(g, 4, FaultPlan::none().with_adaptive_channel_jam(1)))
        });
        group.finish();
    }
}

criterion_group!(benches, bench);

/// Best-of-3 wall-clock time for one closure.
fn measure<F: FnMut()>(mut f: F) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..3 {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed());
    }
    best
}

/// Loads the committed tax ceilings
/// (`{"multichannel_tax": {"f1_noise/100000": …}}`).
fn load_baseline() -> HashMap<String, f64> {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_engine.json");
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
    let v: serde_json::Value = serde_json::from_str(&text).expect("baseline must parse");
    v["multichannel_tax"]
        .as_object()
        .expect("baseline needs a \"multichannel_tax\" table")
        .iter()
        .map(|(k, val)| (k.clone(), val.as_f64().expect("tax must be numeric")))
        .collect()
}

/// The CI regression gate: measured ratios must stay below 1.25 × their
/// committed ceilings (ratios cancel host clock speed, so the gate is
/// machine-portable). Unlike the speedup gates this one bounds from
/// *above*: the tax rows are conservative ceilings, not observed values.
fn smoke() {
    let baseline = load_baseline();
    let n = 100_000;
    let g = workload(n, 42);
    let mut failed = false;
    let mut gate = |key: String, ratio: f64| {
        let ceiling = baseline.get(&key).map_or(2.0, |&b| 1.25 * b);
        println!("{key}: ratio {ratio:.2}x (ceiling {ceiling:.2}x)");
        if ratio > ceiling {
            eprintln!("REGRESSION: {key} ratio {ratio:.2}x above ceiling {ceiling:.2}x");
            failed = true;
        }
    };

    // F = 1 noise gate: explicit channels=1 vs the default config on the
    // sparse staggered workload.
    let base = measure(|| {
        run_staggered(&g, false);
    });
    let f1 = measure(|| {
        run_staggered(&g, true);
    });
    gate(
        format!("f1_noise/{n}"),
        f1.as_secs_f64() / base.as_secs_f64().max(1e-9),
    );

    // F-scaling gates: hopper tax relative to the F = 1 hopper.
    let hop1 = measure(|| {
        run_hop(&g, 1, FaultPlan::none());
    });
    for channels in [2u16, 4] {
        let hop = measure(|| {
            run_hop(&g, channels, FaultPlan::none());
        });
        gate(
            format!("hop/{n}/F={channels}"),
            hop.as_secs_f64() / hop1.as_secs_f64().max(1e-9),
        );
    }

    if failed {
        std::process::exit(1);
    }
    println!("multichannel smoke: all ratios below their ceilings");
}

fn main() {
    if std::env::var_os("ENGINE_BENCH_SMOKE").is_some() {
        smoke();
        return;
    }
    benches();
    Criterion::default().configure_from_args().final_summary();
}
