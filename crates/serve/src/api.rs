//! Wire types for the `mis-serve` HTTP job API.
//!
//! Everything a client sends or receives is defined here as a plain serde
//! struct/enum, so the JSON schema is documented by the Rust types
//! themselves (and exercised by the runnable examples below). The
//! endpoint-by-endpoint reference lives in `docs/SERVE.md`.

use serde::{Deserialize, Serialize};

/// A job submission — the body of `POST /jobs`.
///
/// The two variants mirror the two things the workspace can compute:
/// whole experiment cells from `mis-experiments` and one-off simulator
/// runs. Both are content-addressed: the server derives the job id from
/// the request's canonical ingredients, so submitting the same request
/// twice yields the same id and — once computed — an instant cache hit.
///
/// ```
/// use mis_serve::JobRequest;
///
/// let req = JobRequest::Sim {
///     algorithm: "cd".to_string(),
///     family: "gnp-d8".to_string(),
///     n: 256,
///     seed: 42,
///     trials: 4,
///     trace: false,
///     threads: 1,
/// };
/// let json = serde_json::to_string(&req).unwrap();
/// assert!(json.contains("\"kind\":\"sim\""));
/// let back: JobRequest = serde_json::from_str(&json).unwrap();
/// assert_eq!(back, req);
///
/// // Optional fields default, so a minimal experiment submission is tiny.
/// let exp: JobRequest = serde_json::from_str(r#"{"kind":"experiment","id":"e7"}"#).unwrap();
/// assert_eq!(
///     exp,
///     JobRequest::Experiment { id: "e7".to_string(), seed: 0, quick: true }
/// );
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum JobRequest {
    /// Run one experiment module (`e1`..`e18`) and cache its rendered
    /// markdown report as the job payload.
    Experiment {
        /// Experiment id, e.g. `"e7"` (see `mis_experiments::ALL_IDS`).
        id: String,
        /// Master seed threaded into every cell of the experiment.
        #[serde(default)]
        seed: u64,
        /// Quick mode (smaller n, fewer trials). Defaults to `true` so a
        /// bare request stays cheap; pass `false` for paper-scale runs.
        #[serde(default = "default_true")]
        quick: bool,
    },
    /// Run an MIS algorithm on a generated graph family.
    Sim {
        /// Algorithm label: `cd`, `beeping`, `nocd`, `low-degree`, or
        /// `naive-luby`.
        algorithm: String,
        /// Graph family label accepted by `mis_graphs::generators::Family`,
        /// e.g. `"gnp-d8"`, `"path"`, `"star"`.
        family: String,
        /// Requested node count (the generator may round, e.g. grids).
        n: usize,
        /// Base seed for graph generation and the simulator schedule.
        #[serde(default)]
        seed: u64,
        /// Number of independent trials to aggregate (ignored when
        /// `trace` is set — traced jobs are single runs).
        #[serde(default = "default_trials")]
        trials: usize,
        /// When `true`, run a single traced simulation whose JSONL
        /// frames are streamed live at `GET /jobs/:id/stream`.
        #[serde(default)]
        trace: bool,
        /// Worker threads for the simulator engine (1 = sequential).
        #[serde(default = "default_threads")]
        threads: usize,
    },
}

fn default_true() -> bool {
    true
}

fn default_trials() -> usize {
    1
}

fn default_threads() -> usize {
    1
}

/// Lifecycle state of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum JobStatus {
    /// Accepted and waiting in the fair queue.
    Queued,
    /// A worker is executing the job right now.
    Running,
    /// Finished successfully; `payload` is populated.
    Done,
    /// The job panicked or failed; `error` is populated.
    Failed,
}

/// The externally visible state of one job — returned by `POST /jobs`
/// and `GET /jobs/:id`.
///
/// ```
/// use mis_serve::{JobStatus, JobView};
///
/// let view = JobView {
///     id: "8d2c9f41aa03be77".to_string(),
///     status: JobStatus::Done,
///     hit: true,
///     wall_ms: 0.4,
///     cost: 0,
///     payload: Some(serde_json::json!({"rounds": 12})),
///     error: None,
/// };
/// let json = serde_json::to_string(&view).unwrap();
/// assert!(json.contains("\"status\":\"done\""));
/// assert!(!json.contains("error"), "None fields are omitted on the wire");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobView {
    /// Content-addressed job id: the 16-hex `UnitKey` hash of the
    /// request's canonical ingredients.
    pub id: String,
    /// Current lifecycle state.
    pub status: JobStatus,
    /// `true` when the payload came from the cache without running the
    /// simulator (either an instant hit at submission, or a re-submission
    /// of a job this server already computed).
    pub hit: bool,
    /// Wall-clock milliseconds spent serving the job (cache read or
    /// full computation).
    pub wall_ms: f64,
    /// Simulator cost units attributed to the job (`0` for hits).
    pub cost: u64,
    /// Result payload once `status == Done`: markdown text for
    /// experiment jobs, aggregate statistics for sim jobs.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub payload: Option<serde_json::Value>,
    /// Failure message once `status == Failed`.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub error: Option<String>,
}

/// Per-client accounting inside [`StatsView`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClientStats {
    /// Client id as sent in the `X-Client` header (`"anon"` when absent).
    pub client: String,
    /// Jobs this client submitted (including rejected duplicates of its
    /// own in-flight jobs).
    pub submitted: u64,
    /// How many of those were answered from the cache.
    pub hits: u64,
}

/// Server-wide accounting — the body of `GET /stats`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatsView {
    /// Total job submissions accepted (hits + queued work).
    pub submitted: u64,
    /// Submissions answered instantly from the content-addressed cache.
    pub hits: u64,
    /// Submissions that required running the simulator.
    pub misses: u64,
    /// Jobs that ended in [`JobStatus::Failed`].
    pub failed: u64,
    /// Submissions rejected with `429` because the queue was full.
    pub rejected: u64,
    /// Jobs currently waiting in the queue.
    pub queued: u64,
    /// Jobs currently executing on workers.
    pub running: u64,
    /// Sum of simulator cost units over all completed misses (mirrors
    /// the orchestrator's `manifest.json` accounting).
    pub total_cost: u64,
    /// Sum of wall-clock milliseconds over all completed jobs.
    pub total_wall_ms: f64,
    /// `true` once shutdown has been requested: new `POST /jobs` are
    /// refused with `503` while in-flight jobs drain.
    pub draining: bool,
    /// Per-client breakdown, sorted by client id.
    pub clients: Vec<ClientStats>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_request_round_trips_with_defaults() {
        let json = r#"{"kind":"experiment","id":"e3","seed":9}"#;
        let req: JobRequest = serde_json::from_str(json).unwrap();
        assert_eq!(
            req,
            JobRequest::Experiment {
                id: "e3".to_string(),
                seed: 9,
                quick: true,
            }
        );
        let back: JobRequest = serde_json::from_str(&serde_json::to_string(&req).unwrap()).unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn sim_request_defaults_are_single_trial_untraced() {
        let json = r#"{"kind":"sim","algorithm":"beeping","family":"path","n":64}"#;
        let req: JobRequest = serde_json::from_str(json).unwrap();
        match req {
            JobRequest::Sim {
                seed,
                trials,
                trace,
                threads,
                ..
            } => {
                assert_eq!((seed, trials, trace, threads), (0, 1, false, 1));
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn unknown_kind_is_rejected() {
        let err = serde_json::from_str::<JobRequest>(r#"{"kind":"bogus"}"#);
        assert!(err.is_err());
    }

    #[test]
    fn job_view_omits_empty_optionals() {
        let view = JobView {
            id: "abc".to_string(),
            status: JobStatus::Queued,
            hit: false,
            wall_ms: 0.0,
            cost: 0,
            payload: None,
            error: None,
        };
        let json = serde_json::to_string(&view).unwrap();
        assert!(!json.contains("payload"));
        assert!(!json.contains("error"));
        assert!(json.contains("\"status\":\"queued\""));
    }

    #[test]
    fn stats_view_round_trips() {
        let stats = StatsView {
            submitted: 10,
            hits: 6,
            misses: 4,
            failed: 0,
            rejected: 1,
            queued: 2,
            running: 1,
            total_cost: 12345,
            total_wall_ms: 99.5,
            draining: false,
            clients: vec![ClientStats {
                client: "bench-c0".to_string(),
                submitted: 10,
                hits: 6,
            }],
        };
        let back: StatsView =
            serde_json::from_str(&serde_json::to_string(&stats).unwrap()).unwrap();
        assert_eq!(back, stats);
    }
}
