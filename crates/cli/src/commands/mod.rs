//! Command implementations.

pub mod bench_serve;
pub mod graph;
pub mod radio;
pub mod run;
pub mod solve;
pub mod trace;
pub mod verify;

use crate::args::Algorithm;
use mis_graphs::generators::Family;

/// The `mis-sim list` output.
pub fn list_text() -> String {
    let mut out = String::from("algorithms:\n");
    for (label, alg) in Algorithm::all() {
        let desc = match alg {
            Algorithm::Cd => "Algorithm 1 — energy-optimal MIS, CD model (Thm 2)",
            Algorithm::Beeping => "Algorithm 1 in the beeping model (§3.1)",
            Algorithm::BeepingNative => {
                "native beeping MIS with sender-side CD (§1.4 / [28]-style)"
            }
            Algorithm::NaiveLuby => "naive Luby baseline, CD model (§1.3)",
            Algorithm::NoCd => "Algorithm 2 — energy-efficient MIS, no-CD model (Thm 10)",
            Algorithm::LowDegree => "LowDegreeMIS / Davies-style baseline, no-CD (§4.2)",
            Algorithm::NoCdNaive => "naive Luby-over-backoff baseline, no-CD (§1.3)",
            Algorithm::UnknownDelta => "Algorithm 2 with 2^(2^i) Δ-guessing (§1.1 fn.1)",
            Algorithm::CongestLuby => "Luby, wired SLEEPING-CONGEST reference",
            Algorithm::CongestGhaffari => "Ghaffari, wired SLEEPING-CONGEST reference",
        };
        out.push_str(&format!("  {label:<17} {desc}\n"));
    }
    out.push_str("\nfamilies:\n");
    for fam in [
        Family::GnpAvgDegree(8),
        Family::GeometricAvgDegree(10),
        Family::Grid,
        Family::Star,
        Family::Clique,
        Family::Path,
        Family::Cycle,
        Family::Empty,
        Family::RandomTree,
        Family::BoundedDegree(4),
        Family::LowerBound,
        Family::PowerLaw(3),
    ] {
        let desc = match fam {
            Family::GnpAvgDegree(_) => "Erdős–Rényi G(n,p), parameter = average degree",
            Family::GeometricAvgDegree(_) => "unit-disk graph, parameter = average degree",
            Family::Grid => "2D grid",
            Family::Star => "star K_{1,n-1}",
            Family::Clique => "complete graph",
            Family::Path => "path",
            Family::Cycle => "cycle",
            Family::Empty => "isolated nodes",
            Family::RandomTree => "uniform random tree",
            Family::BoundedDegree(_) => "random graph with hard Δ cap, parameter = Δ",
            Family::LowerBound => "Theorem 1 hard instance (n/4 edges + n/2 isolated)",
            Family::PowerLaw(_) => "power-law (Barabási–Albert), parameter = edges per node",
        };
        out.push_str(&format!("  {:<17} {desc}\n", fam.label()));
    }
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn list_mentions_everything() {
        let text = super::list_text();
        for needle in [
            "cd",
            "nocd",
            "low-degree",
            "gnp-d8",
            "lowerbound",
            "congest-ghaffari",
            "plaw-3",
        ] {
            assert!(text.contains(needle), "missing {needle}");
        }
    }
}
