//! End-to-end contract tests for the experiment orchestrator: a warm
//! cache must replay a run byte-for-byte without touching the simulator,
//! and `--force` selectors must recompute exactly the named cells.
//!
//! E7 is the probe experiment throughout — it is the cheapest module with
//! a non-trivial unit structure (2 sender counts × 3 repetition counts =
//! 6 job units in quick mode).

use mis_experiments::{run_all, run_experiment_in, ExpConfig, Orchestrator};
use proptest::prelude::*;
use std::path::PathBuf;

/// A fresh per-test cache directory under the system temp dir.
fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mis-exp-cache-it-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// The determinism contract, end to end: for any master seed, a warm
    /// rerun renders byte-identical markdown from cache alone — zero
    /// simulator runs, every unit a hit.
    #[test]
    fn warm_cache_rerun_is_byte_identical_to_cold(seed in 0u64..1_000) {
        let dir = tmp_dir(&format!("prop-{seed}"));
        let cfg = ExpConfig::quick(seed);

        let cold_orch = Orchestrator::with_cache_dir(&dir);
        let cold = run_experiment_in("e7", &cfg, &cold_orch).to_markdown();
        prop_assert_eq!(cold_orch.hits(), 0, "cold run must not hit");
        let cold_misses = cold_orch.misses();
        prop_assert!(cold_misses > 0);

        let warm_orch = Orchestrator::with_cache_dir(&dir);
        let warm = run_experiment_in("e7", &cfg, &warm_orch).to_markdown();
        prop_assert_eq!(warm_orch.misses(), 0, "warm run performed simulator work");
        prop_assert_eq!(warm_orch.hits(), cold_misses);
        prop_assert_eq!(warm, cold);

        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// `--force e7:d=1` must recompute exactly the three `d=1` cells and
/// serve the other three from cache — and still render identical bytes.
#[test]
fn force_recomputes_exactly_the_named_cells() {
    let dir = tmp_dir("force");
    let cfg = ExpConfig::quick(77);

    let cold_orch = Orchestrator::with_cache_dir(&dir);
    let cold = run_experiment_in("e7", &cfg, &cold_orch).to_markdown();
    assert_eq!(cold_orch.misses(), 6, "e7 quick mode should have 6 units");

    let forced_orch = Orchestrator::with_cache_dir(&dir).with_force(&["e7:d=1".to_string()]);
    let forced = run_experiment_in("e7", &cfg, &forced_orch).to_markdown();
    assert_eq!(forced_orch.misses(), 3, "exactly the d=1 cells recompute");
    assert_eq!(forced_orch.hits(), 3, "the d=8 cells stay cached");
    assert_eq!(forced, cold);

    // A selector for a different experiment forces nothing here.
    let other_orch = Orchestrator::with_cache_dir(&dir).with_force(&["e2".to_string()]);
    run_experiment_in("e7", &cfg, &other_orch);
    assert_eq!(other_orch.misses(), 0);

    // An empty selector list means "force everything".
    let all_orch = Orchestrator::with_cache_dir(&dir).with_force(&[]);
    run_experiment_in("e7", &cfg, &all_orch);
    assert_eq!(all_orch.misses(), 6);

    let _ = std::fs::remove_dir_all(&dir);
}

/// The serve-layer contract behind warm `POST /jobs`: a whole-job value
/// cached through `unit()` must be readable back through `peek()` by a
/// *fresh* orchestrator over the same directory — identical value, no
/// closure run, hit counted — and a peek with a never-computed key must
/// stay `None` without perturbing the counters.
#[test]
fn peek_round_trips_whole_job_values() {
    use mis_experiments::UnitKey;

    let dir = tmp_dir("peek-job");
    let cfg = ExpConfig::quick(12);
    let key = UnitKey::new("serve", "experiment-e7")
        .with("id", "e7")
        .with("seed", cfg.seed)
        .with("quick", cfg.quick);

    let cold = Orchestrator::with_cache_dir(&dir);
    assert_eq!(cold.peek::<String>(&key), None);
    let rendered: String = cold.unit(&key, || run_experiment_in("e7", &cfg, &cold).to_markdown());
    assert!(cold.misses() > 0);

    let warm = Orchestrator::with_cache_dir(&dir);
    let peeked = warm.peek::<String>(&key).expect("whole-job value cached");
    assert_eq!(peeked, rendered);
    assert_eq!(
        (warm.hits(), warm.misses()),
        (1, 0),
        "peek is simulator-free"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// `run_all` returns outputs in input order regardless of which
/// experiment finishes first on the work-stealing pool.
#[test]
fn run_all_preserves_input_order() {
    let cfg = ExpConfig::quick(5);
    let orch = Orchestrator::ephemeral();
    let outputs = run_all(&["e7", "e1"], &cfg, &orch);
    let ids: Vec<&str> = outputs.iter().map(|o| o.id).collect();
    assert_eq!(ids, vec!["e7", "e1"]);
}
