//! Algorithm 1: the energy-optimal MIS algorithm for the CD model (§3).
//!
//! The algorithm runs `C·log n` *Luby phases* of `β·log n + 1` rounds each.
//! A phase is a bit-by-bit **competition** followed by a one-round
//! **check**:
//!
//! - each undecided node draws a fresh `β·log n`-bit random *rank* and walks
//!   it bit by bit: on a 1-bit it transmits, on a 0-bit it listens; hearing
//!   a 1 or a collision means some competitor with a higher prefix is still
//!   alive, so the node *loses* — it sleeps for the rest of the phase
//!   (this early sleep is the entire energy trick);
//! - a node that survives all bits **wins**: it transmits once more in the
//!   check round (announcing itself), sets `in-MIS`, and terminates;
//! - a loser listens in the check round; hearing a 1 or a collision means an
//!   MIS neighbor exists, so it sets `out-MIS` and terminates, otherwise it
//!   continues to the next phase.
//!
//! Theorem 2: with probability ≥ 1 − 1/n the output is an MIS, energy is
//! O(log n) and rounds are O(log²n).
//!
//! Setting [`EnergyMode::Naive`] disables the early sleep, yielding the
//! "straightforward Luby" baseline of §1.3 with Θ(log²n) energy.

use crate::params::CdParams;
use radio_netsim::{Action, Feedback, Message, NodeRng, NodeStatus, Protocol};
use rand::Rng;

/// Whether losers sleep out the rest of the phase (the paper's algorithm)
/// or stay awake listening (the naive Luby baseline).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnergyMode {
    /// Algorithm 1: a node that loses the competition sleeps until the
    /// check round.
    EarlySleep,
    /// Naive baseline: every non-terminated node stays awake through every
    /// round of every phase.
    Naive,
}

/// Per-node state machine for Algorithm 1.
///
/// Works unchanged in the beeping model (§3.1): the algorithm only ever
/// tests "heard a 1 or a collision", which [`Feedback::heard_activity`]
/// maps to "heard a beep" there.
#[derive(Debug, Clone)]
pub struct CdMis {
    params: CdParams,
    mode: EnergyMode,
    status: NodeStatus,
    finished: bool,
    /// Phase whose per-phase state (`lost`) is current.
    phase_of_state: u64,
    lost: bool,
    /// Whether the node is a winner awaiting its check-round `Sent`.
    winning: bool,
}

impl CdMis {
    /// Creates a node running Algorithm 1 with the given parameters.
    pub fn new(params: CdParams) -> CdMis {
        CdMis::with_mode(params, EnergyMode::EarlySleep)
    }

    /// Creates a node with an explicit [`EnergyMode`].
    pub fn with_mode(params: CdParams, mode: EnergyMode) -> CdMis {
        CdMis {
            params,
            mode,
            status: NodeStatus::Undecided,
            finished: false,
            phase_of_state: 0,
            lost: false,
            winning: false,
        }
    }

    /// The parameters this node runs with.
    pub fn params(&self) -> &CdParams {
        &self.params
    }

    /// The Luby phase a round belongs to.
    fn phase_of(&self, round: u64) -> u64 {
        round / self.params.phase_len()
    }

    /// Round offset within its phase.
    fn rel_of(&self, round: u64) -> u64 {
        round % self.params.phase_len()
    }

    fn enter_phase(&mut self, phase: u64) {
        if phase != self.phase_of_state {
            self.phase_of_state = phase;
            self.lost = false;
            self.winning = false;
        }
    }
}

impl Protocol for CdMis {
    fn act(&mut self, round: u64, rng: &mut NodeRng) -> Action {
        if round >= self.params.total_rounds() {
            // All phases exhausted while undecided: the algorithm failed for
            // this node; it retires undecided (counted as a run failure).
            self.finished = true;
            return Action::halt();
        }
        let rel = self.rel_of(round);
        self.enter_phase(self.phase_of(round));
        let bits = self.params.rank_bits() as u64;
        if rel < bits {
            if self.lost {
                return match self.mode {
                    // Algorithm 1 line 10: sleep for the rest of the phase.
                    EnergyMode::EarlySleep => Action::Sleep {
                        wake_at: check_round_of_phase(&self.params, self.phase_of(round)),
                    },
                    // Naive Luby: stay awake listening.
                    EnergyMode::Naive => Action::Listen,
                };
            }
            // Sample this phase's next rank bit lazily; the bits are i.i.d.
            // uniform so this is identical to drawing the rank up front
            // (Algorithm 1 line 3).
            if rng.gen_bool(0.5) {
                Action::Transmit(Message::unary())
            } else {
                Action::Listen
            }
        } else {
            // Check round.
            if self.lost {
                Action::Listen
            } else {
                self.winning = true;
                Action::Transmit(Message::unary())
            }
        }
    }

    fn feedback(&mut self, round: u64, fb: Feedback, _rng: &mut NodeRng) {
        let rel = self.rel_of(round);
        let bits = self.params.rank_bits() as u64;
        if rel < bits {
            if !self.lost && fb.heard_activity() {
                self.lost = true;
            }
        } else if self.winning {
            // The check-round transmission went out: the node is in the MIS.
            debug_assert_eq!(fb, Feedback::Sent);
            self.status = NodeStatus::InMis;
            self.finished = true;
        } else if fb.heard_activity() {
            // A neighbor won this phase.
            self.status = NodeStatus::OutMis;
            self.finished = true;
        }
    }

    fn status(&self) -> NodeStatus {
        self.status
    }

    fn finished(&self) -> bool {
        self.finished
    }

    fn may_transmit_before(&self, horizon: u64) -> bool {
        // A live competitor may transmit a rank bit at any time; a phase
        // loser only listens until the check round, and its next possible
        // transmission is the first rank bit of the *next* phase (one round
        // after the check round it sleeps to). Sound because `lost` is
        // current for `phase_of_state` and losing is absorbing within a
        // phase — hearing nothing new cannot un-lose the node.
        if self.finished {
            return false;
        }
        if !self.lost {
            return true;
        }
        check_round_of_phase(&self.params, self.phase_of_state) + 1 < horizon
    }
}

/// How the next round of a [`CdMis`] node will be scheduled: used by the
/// engine implicitly via sleep actions. Losers in [`EnergyMode::EarlySleep`]
/// sleep to the check round; this helper computes that round for tests.
pub fn check_round_of_phase(params: &CdParams, phase: u64) -> u64 {
    phase * params.phase_len() + params.rank_bits() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use mis_graphs::generators;
    use radio_netsim::{ChannelModel, SimConfig, Simulator};

    fn run_cd(
        g: &mis_graphs::Graph,
        params: CdParams,
        seed: u64,
        mode: EnergyMode,
    ) -> radio_netsim::RunReport {
        Simulator::new(g, SimConfig::new(ChannelModel::Cd).with_seed(seed))
            .run(|_, _| CdMis::with_mode(params, mode))
    }

    #[test]
    fn solves_small_graphs() {
        let params = CdParams::for_n(64);
        for g in [
            generators::path(30),
            generators::star(40),
            generators::clique(25),
            generators::cycle(33),
            generators::gnp(64, 0.1, 5),
            generators::empty(20),
            generators::lower_bound_family(48),
        ] {
            let report = run_cd(&g, params, 11, EnergyMode::EarlySleep);
            assert!(
                report.is_correct_mis(&g),
                "failed on {g:?}: {:?}",
                report.verify_mis(&g)
            );
        }
    }

    #[test]
    fn isolated_node_wins_first_phase() {
        let g = generators::empty(1);
        let params = CdParams::for_n(16);
        let report = run_cd(&g, params, 3, EnergyMode::EarlySleep);
        assert!(report.is_correct_mis(&g));
        // Decided in phase 0: within the first phase_len rounds.
        assert!(report.meters[0].decided_at.unwrap() < params.phase_len());
        // Energy: awake through all rank bits + 1 check round.
        assert_eq!(report.meters[0].energy(), params.phase_len());
    }

    #[test]
    fn energy_early_sleep_beats_naive_on_clique() {
        // On a clique the phase-0 winner is awake the whole phase in both
        // modes, so compare the *node-averaged* energy, where losers'
        // early sleep shows up.
        let g = generators::clique(60);
        let params = CdParams::for_n(60);
        let mut early_total = 0.0;
        let mut naive_total = 0.0;
        for seed in 0..5 {
            early_total += run_cd(&g, params, seed, EnergyMode::EarlySleep).avg_energy();
            naive_total += run_cd(&g, params, seed, EnergyMode::Naive).avg_energy();
        }
        assert!(
            early_total < naive_total,
            "early {early_total} !< naive {naive_total}"
        );
    }

    #[test]
    fn naive_mode_also_solves() {
        let g = generators::gnp(50, 0.15, 2);
        let params = CdParams::for_n(50);
        let report = run_cd(&g, params, 7, EnergyMode::Naive);
        assert!(report.is_correct_mis(&g));
    }

    #[test]
    fn works_in_beeping_model() {
        let g = generators::gnp(60, 0.1, 9);
        let params = CdParams::for_n(60);
        let report = Simulator::new(&g, SimConfig::new(ChannelModel::Beeping).with_seed(4))
            .run(|_, _| CdMis::new(params));
        assert!(report.is_correct_mis(&g));
    }

    #[test]
    fn rounds_within_schedule() {
        let g = generators::gnp(80, 0.08, 1);
        let params = CdParams::for_n(80);
        let report = run_cd(&g, params, 13, EnergyMode::EarlySleep);
        assert!(report.rounds <= params.total_rounds());
    }

    #[test]
    fn energy_scales_logarithmically() {
        // Energy at n=4096 should be well under the naive Θ(log²n): compare
        // against the full schedule length.
        let g = generators::gnp(512, 0.02, 3);
        let params = CdParams::for_n(512);
        let report = run_cd(&g, params, 21, EnergyMode::EarlySleep);
        assert!(report.is_correct_mis(&g));
        let energy = report.max_energy();
        // O(log n) regime: generous constant · log₂n; schedule is ~40·log²n.
        let log_n = (512f64).log2();
        assert!(
            (energy as f64) < 20.0 * log_n,
            "energy {energy} not O(log n)"
        );
    }

    #[test]
    fn check_round_helper() {
        let params = CdParams::for_n(64);
        assert_eq!(check_round_of_phase(&params, 0), params.rank_bits() as u64);
        assert_eq!(
            check_round_of_phase(&params, 2),
            2 * params.phase_len() + params.rank_bits() as u64
        );
    }

    #[test]
    fn transmit_oracle_is_sound_for_losers() {
        use rand::SeedableRng;
        let params = CdParams::for_n(64);
        let mut node = CdMis::new(params);
        let mut rng = radio_netsim::NodeRng::seed_from_u64(2);
        // A fresh competitor may always transmit.
        assert!(node.may_transmit_before(1));
        // Force a phase-0 loss: act at round 0, then hear activity.
        let _ = node.act(0, &mut rng);
        node.feedback(0, Feedback::Beep, &mut rng);
        assert!(node.lost);
        // A loser cannot transmit before the round after the check round...
        let check = check_round_of_phase(&params, 0);
        assert!(!node.may_transmit_before(check + 1));
        // ...but might transmit from the next phase's first rank bit on.
        assert!(node.may_transmit_before(check + 2));
        // A finished node never transmits again.
        node.finished = true;
        assert!(!node.may_transmit_before(u64::MAX));
    }

    #[test]
    fn deterministic_given_seed() {
        let g = generators::gnp(40, 0.1, 6);
        let params = CdParams::for_n(40);
        let a = run_cd(&g, params, 5, EnergyMode::EarlySleep);
        let b = run_cd(&g, params, 5, EnergyMode::EarlySleep);
        assert_eq!(a, b);
    }
}
