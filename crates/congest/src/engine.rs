//! The SLEEPING-CONGEST round engine.

use mis_graphs::{mis, Graph, NodeId};
use radio_netsim::{split_seed, NodeRng, NodeStatus};
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// What a node does after receiving a round's messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NextWake {
    /// Stay awake: act again next round.
    Next,
    /// Sleep through every round `< r` (must be in the future).
    At(u64),
    /// Sleep forever; the node must then report `finished()`.
    Halt,
}

/// A node protocol in the SLEEPING-CONGEST model.
///
/// Per awake round the engine calls [`CongestProtocol::send`], exchanges
/// all messages, then calls [`CongestProtocol::receive`] with everything
/// the node's awake neighbors sent this round.
pub trait CongestProtocol {
    /// The message type (conceptually ≤ O(log n) bits).
    type Msg: Clone;

    /// The message to broadcast this round, if any.
    fn send(&mut self, round: u64, rng: &mut NodeRng) -> Option<Self::Msg>;

    /// Delivers the messages broadcast this round by awake neighbors and
    /// returns when the node next wakes.
    fn receive(&mut self, round: u64, inbox: &[Self::Msg], rng: &mut NodeRng) -> NextWake;

    /// The node's current MIS status.
    fn status(&self) -> NodeStatus;

    /// Whether the node is permanently done.
    fn finished(&self) -> bool;
}

/// Result of one SLEEPING-CONGEST run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CongestReport {
    /// Final status per node.
    pub statuses: Vec<NodeStatus>,
    /// Awake rounds per node (the awake/energy complexity measure).
    pub awake: Vec<u64>,
    /// Total rounds until the last node finished.
    pub rounds: u64,
    /// Whether all nodes finished before the round cap.
    pub completed: bool,
}

impl CongestReport {
    /// Awake complexity: max awake rounds over nodes.
    pub fn max_awake(&self) -> u64 {
        self.awake.iter().copied().max().unwrap_or(0)
    }

    /// Node-averaged awake complexity (\[13\]'s measure).
    pub fn avg_awake(&self) -> f64 {
        if self.awake.is_empty() {
            0.0
        } else {
            self.awake.iter().sum::<u64>() as f64 / self.awake.len() as f64
        }
    }

    /// Membership mask of the computed set.
    pub fn mis_mask(&self) -> Vec<bool> {
        self.statuses
            .iter()
            .map(|&s| s == NodeStatus::InMis)
            .collect()
    }

    /// Whether the run completed with a verified MIS.
    ///
    /// # Panics
    ///
    /// Panics if `graph` has a different node count.
    pub fn is_correct_mis(&self, graph: &Graph) -> bool {
        assert_eq!(graph.len(), self.statuses.len(), "graph/run size mismatch");
        self.completed
            && self.statuses.iter().all(|s| s.is_decided())
            && mis::is_mis(graph, &self.mis_mask())
    }
}

/// Drives a [`CongestProtocol`] over a graph.
#[derive(Debug, Clone)]
pub struct CongestSim<'g> {
    graph: &'g Graph,
    seed: u64,
    max_rounds: u64,
}

impl<'g> CongestSim<'g> {
    /// Creates a simulator with the default round cap (10⁷).
    pub fn new(graph: &'g Graph, seed: u64) -> CongestSim<'g> {
        CongestSim {
            graph,
            seed,
            max_rounds: 10_000_000,
        }
    }

    /// Overrides the round cap.
    pub fn with_max_rounds(mut self, max_rounds: u64) -> CongestSim<'g> {
        self.max_rounds = max_rounds;
        self
    }

    /// Runs the protocol on every node until all finish or the cap hits.
    pub fn run<P, F>(&self, mut factory: F) -> CongestReport
    where
        P: CongestProtocol,
        F: FnMut(NodeId, &mut NodeRng) -> P,
    {
        let n = self.graph.len();
        let mut rngs: Vec<NodeRng> = (0..n)
            .map(|v| NodeRng::seed_from_u64(split_seed(self.seed, v as u64)))
            .collect();
        let mut nodes: Vec<P> = (0..n).map(|v| factory(v, &mut rngs[v])).collect();
        let mut awake = vec![0u64; n];
        let mut queue: BinaryHeap<Reverse<(u64, NodeId)>> = BinaryHeap::new();
        let mut live = 0usize;
        #[allow(clippy::needless_range_loop)]
        for v in 0..n {
            if !nodes[v].finished() {
                queue.push(Reverse((0, v)));
                live += 1;
            }
        }
        let mut sent: Vec<Option<P::Msg>> = (0..n).map(|_| None).collect();
        let mut sent_stamp = vec![u64::MAX; n];
        let mut last_round = 0u64;
        while live > 0 {
            let Reverse((round, _)) = *queue.peek().expect("live nodes queued");
            if round >= self.max_rounds {
                return CongestReport {
                    statuses: nodes.iter().map(|p| p.status()).collect(),
                    awake,
                    rounds: self.max_rounds,
                    completed: false,
                };
            }
            last_round = round;
            let mut actives: Vec<NodeId> = Vec::new();
            while let Some(&Reverse((r, v))) = queue.peek() {
                if r != round {
                    break;
                }
                queue.pop();
                actives.push(v);
            }
            // Send phase.
            for &v in &actives {
                awake[v] += 1;
                sent[v] = nodes[v].send(round, &mut rngs[v]);
                sent_stamp[v] = round;
            }
            // Receive phase.
            for &v in &actives {
                let inbox: Vec<P::Msg> = self
                    .graph
                    .neighbors(v)
                    .iter()
                    .filter(|&&u| sent_stamp[u] == round)
                    .filter_map(|&u| sent[u].clone())
                    .collect();
                let next = nodes[v].receive(round, &inbox, &mut rngs[v]);
                if nodes[v].finished() {
                    live -= 1;
                    continue;
                }
                match next {
                    NextWake::Next => queue.push(Reverse((round + 1, v))),
                    NextWake::At(r) => {
                        assert!(r > round, "protocol bug: sleeping to the past");
                        if r < self.max_rounds {
                            queue.push(Reverse((r, v)));
                        } else {
                            queue.push(Reverse((self.max_rounds, v)));
                        }
                    }
                    NextWake::Halt => {
                        // Halt without finished(): treated as finished with
                        // the current status (protocol's responsibility).
                        live -= 1;
                    }
                }
            }
        }
        CongestReport {
            statuses: nodes.iter().map(|p| p.status()).collect(),
            awake,
            rounds: if n == 0 { 0 } else { last_round + 1 },
            completed: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mis_graphs::generators;

    /// Broadcasts its id once; counts messages received; finishes.
    struct Counter {
        id: u64,
        got: usize,
        done: bool,
    }
    impl CongestProtocol for Counter {
        type Msg = u64;
        fn send(&mut self, _round: u64, _rng: &mut NodeRng) -> Option<u64> {
            Some(self.id)
        }
        fn receive(&mut self, _round: u64, inbox: &[u64], _rng: &mut NodeRng) -> NextWake {
            self.got = inbox.len();
            self.done = true;
            NextWake::Halt
        }
        fn status(&self) -> NodeStatus {
            NodeStatus::OutMis
        }
        fn finished(&self) -> bool {
            self.done
        }
    }

    #[test]
    fn all_messages_delivered_no_collisions() {
        let g = generators::clique(5);
        use std::sync::Mutex;
        let got: Mutex<Vec<usize>> = Mutex::new(vec![0; 5]);
        struct Obs<'a>(Counter, usize, &'a Mutex<Vec<usize>>);
        impl CongestProtocol for Obs<'_> {
            type Msg = u64;
            fn send(&mut self, round: u64, rng: &mut NodeRng) -> Option<u64> {
                self.0.send(round, rng)
            }
            fn receive(&mut self, round: u64, inbox: &[u64], rng: &mut NodeRng) -> NextWake {
                let r = self.0.receive(round, inbox, rng);
                self.2.lock().unwrap()[self.1] = self.0.got;
                r
            }
            fn status(&self) -> NodeStatus {
                self.0.status()
            }
            fn finished(&self) -> bool {
                self.0.finished()
            }
        }
        let report = CongestSim::new(&g, 1).run(|v, _| {
            Obs(
                Counter {
                    id: v as u64,
                    got: 0,
                    done: false,
                },
                v,
                &got,
            )
        });
        assert!(report.completed);
        assert_eq!(report.rounds, 1);
        // Every node heard all 4 neighbors simultaneously — the defining
        // difference from radio.
        assert_eq!(*got.lock().unwrap(), vec![4; 5]);
    }

    #[test]
    fn awake_accounting() {
        let g = generators::empty(2);
        let report = CongestSim::new(&g, 1).run(|v, _| Counter {
            id: v as u64,
            got: 0,
            done: false,
        });
        assert_eq!(report.max_awake(), 1);
        assert_eq!(report.avg_awake(), 1.0);
    }

    #[test]
    fn round_cap() {
        struct Forever;
        impl CongestProtocol for Forever {
            type Msg = ();
            fn send(&mut self, _round: u64, _rng: &mut NodeRng) -> Option<()> {
                None
            }
            fn receive(&mut self, _round: u64, _inbox: &[()], _rng: &mut NodeRng) -> NextWake {
                NextWake::Next
            }
            fn status(&self) -> NodeStatus {
                NodeStatus::Undecided
            }
            fn finished(&self) -> bool {
                false
            }
        }
        let g = generators::empty(1);
        let report = CongestSim::new(&g, 1)
            .with_max_rounds(10)
            .run(|_, _| Forever);
        assert!(!report.completed);
        assert_eq!(report.rounds, 10);
    }
}
