//! E3 family: Algorithm 2 (no-CD) full runs at increasing n.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mis_bench::workload;
use radio_mis::nocd::NoCdMis;
use radio_mis::params::NoCdParams;
use radio_netsim::{ChannelModel, SimConfig, Simulator};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("nocd_mis");
    group.sample_size(10);
    for n in [128usize, 256, 512] {
        let g = workload(n, 43);
        let params = NoCdParams::for_n(n, g.max_degree().max(2));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let report = Simulator::new(&g, SimConfig::new(ChannelModel::NoCd).with_seed(seed))
                    .run(|_, _| NoCdMis::new(params));
                assert!(report.completed);
                report.max_energy()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
