//! Cross-crate integration: the paper's comparative energy claims, checked
//! end to end on real runs.

use energy_mis::graphs::generators;
use energy_mis::mis::baselines::naive_luby_cd;
use energy_mis::mis::cd::CdMis;
use energy_mis::mis::nocd::NoCdMis;
use energy_mis::mis::params::{CdParams, NoCdParams};
use energy_mis::netsim::{split_seed, ChannelModel, SimConfig, Simulator};

/// §1.3: Algorithm 1's energy is strictly below naive Luby's once n is
/// large enough for log n ≪ log²n to bite.
#[test]
fn cd_energy_beats_naive_luby() {
    let n = 1024;
    let g = generators::gnp(n, 8.0 / (n as f64 - 1.0), 3);
    let params = CdParams::for_n(n);
    let mut cd_sum = 0.0;
    let mut naive_sum = 0.0;
    for t in 0..5 {
        let seed = split_seed(99, t);
        cd_sum += Simulator::new(&g, SimConfig::new(ChannelModel::Cd).with_seed(seed))
            .run(|_, _| CdMis::new(params))
            .avg_energy();
        naive_sum += Simulator::new(&g, SimConfig::new(ChannelModel::Cd).with_seed(seed))
            .run(|_, _| naive_luby_cd(params))
            .avg_energy();
    }
    assert!(
        cd_sum * 1.5 < naive_sum,
        "expected clear separation: cd {cd_sum} vs naive {naive_sum}"
    );
}

/// Theorem 2's headline inequality: CD energy stays within a small multiple
/// of log₂ n while the schedule is Θ(log²n).
#[test]
fn cd_energy_is_logarithmic_at_scale() {
    let n = 8192;
    let g = generators::gnp(n, 8.0 / (n as f64 - 1.0), 4);
    let params = CdParams::for_n(n);
    let report = Simulator::new(&g, SimConfig::new(ChannelModel::Cd).with_seed(17))
        .run(|_, _| CdMis::new(params));
    assert!(report.is_correct_mis(&g));
    let log_n = (n as f64).log2();
    assert!(
        (report.max_energy() as f64) < 15.0 * log_n,
        "energy {} vs 15·log n = {}",
        report.max_energy(),
        15.0 * log_n
    );
}

/// Theorem 10's headline: no-CD energy is a vanishing fraction of the round
/// complexity (the awake/total separation that defines the sleeping model).
#[test]
fn nocd_energy_is_sublinear_in_rounds() {
    let n = 512;
    let g = generators::gnp(n, 8.0 / (n as f64 - 1.0), 5);
    let params = NoCdParams::for_n(n, g.max_degree().max(2));
    let report = Simulator::new(&g, SimConfig::new(ChannelModel::NoCd).with_seed(23))
        .run(|_, _| NoCdMis::new(params));
    assert!(report.is_correct_mis(&g));
    assert!(
        report.max_energy() * 20 < report.rounds,
        "energy {} vs rounds {}",
        report.max_energy(),
        report.rounds
    );
}

/// §3.1: the beeping run of the same machine with the same seed produces
/// the *identical* energy ledger — unary communication means the channel
/// models are observationally equivalent for Algorithm 1 whenever no
/// information was carried by message contents.
#[test]
fn beeping_run_is_equivalent_to_cd_run() {
    let n = 256;
    let g = generators::gnp(n, 0.05, 6);
    let params = CdParams::for_n(n);
    let cd = Simulator::new(&g, SimConfig::new(ChannelModel::Cd).with_seed(31))
        .run(|_, _| CdMis::new(params));
    let beep = Simulator::new(&g, SimConfig::new(ChannelModel::Beeping).with_seed(31))
        .run(|_, _| CdMis::new(params));
    // CD distinguishes Heard/Collision, beeping collapses both to Beep; the
    // algorithm only tests heard_activity(), so the trajectories coincide.
    assert_eq!(cd.statuses, beep.statuses);
    assert_eq!(cd.meters, beep.meters);
    assert_eq!(cd.rounds, beep.rounds);
}

/// The Theorem-10 energy cap makes the worst-case energy deterministic.
#[test]
fn energy_cap_bounds_worst_case() {
    let n = 256;
    let g = generators::gnp(n, 0.08, 7);
    let params = NoCdParams::for_n(n, g.max_degree().max(2)).with_default_cap();
    let cap = params.energy_cap.unwrap();
    let report = Simulator::new(&g, SimConfig::new(ChannelModel::NoCd).with_seed(37))
        .run(|_, _| NoCdMis::new(params));
    // Slack: a node checks the cap at `act` time, so it can overshoot by at
    // most one sub-machine stretch; the default cap is generous enough that
    // correct runs don't trigger it at all.
    assert!(report.max_energy() <= cap + 1);
    assert!(report.is_correct_mis(&g));
}
