//! E6 — Lemmas 5 & 20: per-phase residual-graph decay.
//!
//! The correctness proofs hinge on the residual graph losing a constant
//! fraction of its edges per Luby phase in expectation: ≥ 1/2 in the CD
//! model (Lemma 5, residual = undecided nodes) and ≥ 1/64 in the no-CD
//! model (Lemma 20, residual = everything not yet `out-MIS`). Residual
//! sets are reconstructed from each node's decision round against the
//! phase schedule.

use crate::harness::{ExpConfig, ExperimentOutput, Section};
use crate::orchestrator::{Orchestrator, UnitKey};
use mis_graphs::generators::Family;
use mis_graphs::Graph;
use mis_stats::table::fmt_num;
use mis_stats::{Summary, Table};
use radio_mis::cd::CdMis;
use radio_mis::nocd::NoCdMis;
use radio_mis::params::{CdParams, NoCdParams};
use radio_netsim::{split_seed, ChannelModel, NodeStatus, RunReport, SimConfig, Simulator};
use serde::{Deserialize, Serialize};

/// Cached value of one residual-decay cell: per-trial phase-boundary edge
/// counts of the residual graph.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ResidualCounts {
    counts: Vec<Vec<usize>>,
    cost: u64,
}

/// Cached value of the metrics-vs-reconstruction cross-check cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct CrossCheck {
    boundaries: u32,
    mismatches: u32,
    cost: u64,
}

/// Edge counts of the residual graphs at each phase boundary, from a run
/// report. `keep(v, boundary_round)` decides residual membership.
fn residual_edges(
    g: &Graph,
    report: &RunReport,
    phase_len: u64,
    phases: u32,
    keep: impl Fn(&RunReport, usize, u64) -> bool,
) -> Vec<usize> {
    let mut counts = Vec::new();
    for i in 0..=phases as u64 {
        let boundary = i * phase_len; // end of phase i == start of phase i+1
        let mask: Vec<bool> = (0..g.len()).map(|v| keep(report, v, boundary)).collect();
        let edges = g.edges_within(&mask);
        counts.push(edges);
        if edges == 0 {
            break;
        }
    }
    counts
}

/// Residual rule for the CD model (Definition 4): undecided nodes only.
fn cd_keep(report: &RunReport, v: usize, boundary: u64) -> bool {
    match report.meters[v].decided_at {
        None => true,
        Some(r) => r >= boundary,
    }
}

/// Residual rule for the no-CD model (Definition 18): everything not yet
/// `out-MIS`.
fn nocd_keep(report: &RunReport, v: usize, boundary: u64) -> bool {
    if report.statuses[v] != NodeStatus::OutMis {
        return true;
    }
    match report.meters[v].decided_at {
        None => true,
        Some(r) => r >= boundary,
    }
}

/// Per-phase mean edge counts and shrink ratios over trials.
fn decay_table(all_counts: &[Vec<usize>], bound: f64) -> (Table, f64) {
    let max_phases = all_counts.iter().map(|c| c.len()).max().unwrap_or(0);
    let mut table = Table::new(["phase", "mean |E_i|", "mean |E_i|/|E_{i-1}|", "claimed ≤"]);
    let mut worst_mean_ratio: f64 = 0.0;
    for i in 1..max_phases {
        let mut ratios = Vec::new();
        let mut counts = Vec::new();
        for c in all_counts {
            if i < c.len() && c[i - 1] > 0 {
                ratios.push(c[i] as f64 / c[i - 1] as f64);
                counts.push(c[i] as f64);
            }
        }
        if ratios.is_empty() {
            break;
        }
        let r = Summary::of(&ratios).mean;
        worst_mean_ratio = worst_mean_ratio.max(r);
        table.push_row([
            i.to_string(),
            fmt_num(Summary::of(&counts).mean),
            fmt_num(r),
            fmt_num(bound),
        ]);
    }
    (table, worst_mean_ratio)
}

/// Runs E6.
pub fn run(cfg: &ExpConfig, orch: &Orchestrator) -> ExperimentOutput {
    let n = if cfg.quick { 256 } else { 1024 };
    let trials = cfg.trials(20);
    let g = Family::GnpAvgDegree(16).generate(n, cfg.seed ^ 0xE6);
    let graph_recipe = format!(
        "{}/seed={:#x}",
        Family::GnpAvgDegree(16).label(),
        cfg.seed ^ 0xE6
    );

    // CD model.
    let cd_params = CdParams::for_n(n);
    let cd_cell = orch.unit_with_cost(
        &UnitKey::new("e6", "residual/cd")
            .with("graph", &graph_recipe)
            .with("n", n)
            .with("alg", "CdMis")
            .with("params", format!("{cd_params:?}"))
            .with("seed", cfg.seed)
            .with("trials", trials),
        || {
            let mut cost = 0u64;
            let counts = (0..trials)
                .map(|t| {
                    let seed = split_seed(cfg.seed, t as u64);
                    let report =
                        Simulator::new(&g, SimConfig::new(ChannelModel::Cd).with_seed(seed))
                            .run(|_, _| CdMis::new(cd_params));
                    cost += report.meters.iter().map(|m| m.energy()).sum::<u64>();
                    residual_edges(
                        &g,
                        &report,
                        cd_params.phase_len(),
                        cd_params.phases(),
                        cd_keep,
                    )
                })
                .collect();
            ResidualCounts { counts, cost }
        },
        |c| c.cost,
    );
    let (cd_table, cd_worst) = decay_table(&cd_cell.counts, 0.5);

    // no-CD model.
    let nocd_params = NoCdParams::for_n(n, g.max_degree().max(2));
    let nocd_trials = cfg.trials(8);
    let nocd_cell = orch.unit_with_cost(
        &UnitKey::new("e6", "residual/nocd")
            .with("graph", &graph_recipe)
            .with("n", n)
            .with("alg", "NoCdMis")
            .with("params", format!("{nocd_params:?}"))
            .with("seed", cfg.seed ^ 0x66)
            .with("trials", nocd_trials),
        || {
            let mut cost = 0u64;
            let counts = (0..nocd_trials)
                .map(|t| {
                    let seed = split_seed(cfg.seed ^ 0x66, t as u64);
                    let report =
                        Simulator::new(&g, SimConfig::new(ChannelModel::NoCd).with_seed(seed))
                            .run(|_, _| NoCdMis::new(nocd_params));
                    cost += report.meters.iter().map(|m| m.energy()).sum::<u64>();
                    residual_edges(
                        &g,
                        &report,
                        nocd_params.t_luby(),
                        nocd_params.phases(),
                        nocd_keep,
                    )
                })
                .collect();
            ResidualCounts { counts, cost }
        },
        |c| c.cost,
    );
    let (nocd_table, nocd_worst) = decay_table(&nocd_cell.counts, 63.0 / 64.0);

    // Cross-check: the engine's round-metrics timeline and the decision-round
    // reconstruction above are two independent views of the same run, and must
    // agree on the undecided population at every phase boundary (decisions only
    // happen on processed rounds, so the last record before a boundary is
    // authoritative).
    let check_config = SimConfig::new(ChannelModel::Cd)
        .with_seed(split_seed(cfg.seed, 0))
        .with_round_metrics();
    let check = orch.unit_with_cost(
        &UnitKey::new("e6", "crosscheck/cd")
            .with("graph", &graph_recipe)
            .with("n", n)
            .with("alg", "CdMis")
            .with("params", format!("{cd_params:?}"))
            .with("sim", check_config.fingerprint()),
        || {
            let report = Simulator::new(&g, check_config.clone()).run(|_, _| CdMis::new(cd_params));
            let timeline = report.metrics_timeline();
            let mut boundaries = 0u32;
            let mut mismatches = 0u32;
            for i in 1..=u64::from(cd_params.phases()) {
                let boundary = i * cd_params.phase_len();
                let from_metrics = timeline
                    .iter()
                    .take_while(|m| m.round < boundary)
                    .last()
                    .map(|m| m.undecided() as usize)
                    .unwrap_or(g.len());
                let reconstructed = (0..g.len())
                    .filter(|&v| cd_keep(&report, v, boundary))
                    .count();
                boundaries += 1;
                if from_metrics != reconstructed {
                    mismatches += 1;
                }
                if reconstructed == 0 {
                    break;
                }
            }
            CrossCheck {
                boundaries,
                mismatches,
                cost: report.meters.iter().map(|m| m.energy()).sum(),
            }
        },
        |c| c.cost,
    );
    let crosscheck_finding = format!(
        "cross-check: {} mismatches across {} CD phase \
         boundaries between the engine's round-metrics `undecided()` and the \
         decision-round reconstruction used for the residual tables",
        check.mismatches, check.boundaries
    );

    ExperimentOutput {
        id: "e6",
        title: "residual-graph decay per Luby phase".into(),
        claim: "Lemma 5: E[|E_i|] ≤ |E_{i−1}|/2 per CD phase. Lemma 20: \
                E[|E_i|] ≤ (63/64)·|E_{i−1}| per no-CD phase (the residual keeps \
                in-MIS nodes and not-yet-notified neighbors)."
            .into(),
        sections: vec![
            Section {
                caption: format!("CD model (gnp-d16, n = {n}, {trials} trials)"),
                table: cd_table,
            },
            Section {
                caption: format!("no-CD model (same graph, {nocd_trials} trials)"),
                table: nocd_table,
            },
        ],
        findings: vec![
            format!(
                "CD: worst per-phase mean shrink ratio {:.3} ≤ 0.5 claimed — Lemma 5 holds \
                 with margin",
                cd_worst
            ),
            format!(
                "no-CD: worst per-phase mean shrink ratio {:.3} ≤ 63/64 ≈ 0.984 claimed — \
                 Lemma 20 holds with large margin (the bound is loose by design)",
                nocd_worst
            ),
            crosscheck_finding,
        ],
        charts: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_decays() {
        let out = run(&ExpConfig::quick(2), &Orchestrator::ephemeral());
        assert_eq!(out.sections.len(), 2);
        assert!(!out.sections[0].table.is_empty());
        assert!(out.findings[0].contains("Lemma 5"));
    }

    #[test]
    fn metrics_agree_with_reconstruction() {
        let out = run(&ExpConfig::quick(9), &Orchestrator::ephemeral());
        let check = out
            .findings
            .iter()
            .find(|f| f.contains("cross-check"))
            .expect("cross-check finding present");
        assert!(check.contains("0 mismatches"), "{check}");
    }
}
