//! The core immutable graph type, stored in compressed-sparse-row form.
//!
//! Graphs here model the *communication topology* of a radio network: simple
//! (no self-loops, no parallel edges), undirected, with nodes identified by
//! dense indices `0..n`. The representation is immutable after construction —
//! algorithms never mutate the topology — which lets the simulator share one
//! graph across many trials without copying.

use crate::error::GraphError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a node: a dense index in `0..graph.len()`.
pub type NodeId = usize;

/// An immutable simple undirected graph in compressed-sparse-row form.
///
/// Construct one with [`GraphBuilder`], [`Graph::from_edges`], or a generator
/// from [`crate::generators`].
///
/// # Examples
///
/// ```
/// use mis_graphs::Graph;
///
/// let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
/// assert_eq!(g.len(), 4);
/// assert_eq!(g.edge_count(), 3);
/// assert_eq!(g.degree(1), 2);
/// assert!(g.has_edge(2, 1) && !g.has_edge(0, 2));
/// ```
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Graph {
    /// `offsets[v]..offsets[v+1]` indexes `targets` for node `v`'s neighbors.
    offsets: Vec<usize>,
    /// Concatenated, per-node-sorted neighbor lists.
    targets: Vec<NodeId>,
    /// Number of undirected edges.
    edge_count: usize,
}

impl Graph {
    /// Builds a graph with `n` nodes from an undirected edge list.
    ///
    /// Duplicate edges (in either orientation) are deduplicated.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] if an endpoint is `>= n` and
    /// [`GraphError::SelfLoop`] if an edge joins a node to itself.
    pub fn from_edges(n: usize, edges: &[(NodeId, NodeId)]) -> Result<Graph, GraphError> {
        let mut b = GraphBuilder::new(n);
        for &(u, v) in edges {
            b.add_edge(u, v)?;
        }
        Ok(b.build())
    }

    /// Builds the graph with `n` nodes and no edges.
    pub fn empty(n: usize) -> Graph {
        Graph {
            offsets: vec![0; n + 1],
            targets: Vec::new(),
            edge_count: 0,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Degree of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn degree(&self, v: NodeId) -> usize {
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Maximum degree Δ of the graph (0 for an empty graph).
    pub fn max_degree(&self) -> usize {
        (0..self.len()).map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Average degree (0.0 for an empty graph).
    pub fn avg_degree(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            2.0 * self.edge_count as f64 / self.len() as f64
        }
    }

    /// The sorted neighbor list of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.targets[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Whether the undirected edge `{u, v}` is present. Order-insensitive in
    /// meaning; this method requires `u != v` to return `true`.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        if u >= self.len() || v >= self.len() || u == v {
            return false;
        }
        // Search the shorter adjacency list.
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// Iterates over every undirected edge once, as `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        (0..self.len()).flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// Iterates over all node ids `0..len()`.
    pub fn nodes(&self) -> std::ops::Range<NodeId> {
        0..self.len()
    }

    /// The subgraph induced by `keep` (nodes with `keep[v] == true`),
    /// together with the mapping from new ids to original ids.
    ///
    /// # Panics
    ///
    /// Panics if `keep.len() != self.len()`.
    pub fn induced_subgraph(&self, keep: &[bool]) -> (Graph, Vec<NodeId>) {
        assert_eq!(keep.len(), self.len(), "keep mask length mismatch");
        let mut new_id = vec![usize::MAX; self.len()];
        let mut back = Vec::new();
        for v in self.nodes() {
            if keep[v] {
                new_id[v] = back.len();
                back.push(v);
            }
        }
        let mut b = GraphBuilder::new(back.len());
        for (u, v) in self.edges() {
            if keep[u] && keep[v] {
                b.add_edge(new_id[u], new_id[v]).expect("validated edge");
            }
        }
        (b.build(), back)
    }

    /// Number of edges with both endpoints in `keep`.
    ///
    /// # Panics
    ///
    /// Panics if `keep.len() != self.len()`.
    pub fn edges_within(&self, keep: &[bool]) -> usize {
        assert_eq!(keep.len(), self.len(), "keep mask length mismatch");
        self.edges().filter(|&(u, v)| keep[u] && keep[v]).count()
    }

    /// Maximum degree of the subgraph induced by `keep`, without
    /// materializing the subgraph.
    ///
    /// # Panics
    ///
    /// Panics if `keep.len() != self.len()`.
    pub fn max_degree_within(&self, keep: &[bool]) -> usize {
        assert_eq!(keep.len(), self.len(), "keep mask length mismatch");
        self.nodes()
            .filter(|&v| keep[v])
            .map(|v| self.neighbors(v).iter().filter(|&&u| keep[u]).count())
            .max()
            .unwrap_or(0)
    }

    /// The line graph L(G): one node per edge of `self`, adjacent when the
    /// original edges share an endpoint. Returns the line graph and the
    /// mapping from line-graph node id to the original edge.
    ///
    /// An independent set in L(G) is a matching in G, which is how the
    /// `radio_mis::applications` module derives maximal matchings from MIS.
    pub fn line_graph(&self) -> (Graph, Vec<(NodeId, NodeId)>) {
        let edges: Vec<(NodeId, NodeId)> = self.edges().collect();
        let mut index_of_edge = std::collections::HashMap::new();
        for (i, &e) in edges.iter().enumerate() {
            index_of_edge.insert(e, i);
        }
        let mut b = GraphBuilder::new(edges.len());
        for v in self.nodes() {
            let nb = self.neighbors(v);
            // All edges incident to v are pairwise adjacent in L(G).
            let incident: Vec<usize> = nb
                .iter()
                .map(|&u| {
                    let key = if v < u { (v, u) } else { (u, v) };
                    index_of_edge[&key]
                })
                .collect();
            for (i, &a) in incident.iter().enumerate() {
                for &c in &incident[i + 1..] {
                    b.add_edge(a, c).expect("line-graph ids valid");
                }
            }
        }
        (b.build(), edges)
    }

    /// Disjoint union: the nodes of `other` are appended after `self`'s.
    pub fn disjoint_union(&self, other: &Graph) -> Graph {
        let shift = self.len();
        let mut b = GraphBuilder::new(self.len() + other.len());
        for (u, v) in self.edges() {
            b.add_edge(u, v).expect("validated edge");
        }
        for (u, v) in other.edges() {
            b.add_edge(u + shift, v + shift).expect("validated edge");
        }
        b.build()
    }

    /// Checks internal CSR invariants; used by tests and debug assertions.
    ///
    /// # Errors
    ///
    /// Returns a [`GraphError`] describing the first violated invariant.
    pub fn validate(&self) -> Result<(), GraphError> {
        let n = self.len();
        if *self.offsets.first().expect("offsets nonempty") != 0 {
            return Err(GraphError::Corrupt("offsets[0] != 0"));
        }
        if *self.offsets.last().expect("offsets nonempty") != self.targets.len() {
            return Err(GraphError::Corrupt("offsets end != targets.len()"));
        }
        if self.targets.len() != 2 * self.edge_count {
            return Err(GraphError::Corrupt("targets.len() != 2 * edge_count"));
        }
        for v in 0..n {
            if self.offsets[v] > self.offsets[v + 1] {
                return Err(GraphError::Corrupt("offsets not monotone"));
            }
            let nb = self.neighbors(v);
            for w in nb.windows(2) {
                if w[0] >= w[1] {
                    return Err(GraphError::Corrupt("adjacency not strictly sorted"));
                }
            }
            for &u in nb {
                if u >= n {
                    return Err(GraphError::NodeOutOfRange { node: u, len: n });
                }
                if u == v {
                    return Err(GraphError::SelfLoop { node: v });
                }
                if self.neighbors(u).binary_search(&v).is_err() {
                    return Err(GraphError::Corrupt("adjacency not symmetric"));
                }
            }
        }
        Ok(())
    }
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Graph")
            .field("nodes", &self.len())
            .field("edges", &self.edge_count)
            .field("max_degree", &self.max_degree())
            .finish()
    }
}

/// Incremental builder for [`Graph`].
///
/// # Examples
///
/// ```
/// use mis_graphs::GraphBuilder;
///
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(0, 1).unwrap();
/// b.add_edge(1, 2).unwrap();
/// b.add_edge(2, 1).unwrap(); // duplicate, deduplicated
/// let g = b.build();
/// assert_eq!(g.edge_count(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(NodeId, NodeId)>,
}

impl GraphBuilder {
    /// Starts a builder for a graph on `n` nodes.
    pub fn new(n: usize) -> GraphBuilder {
        GraphBuilder {
            n,
            edges: Vec::new(),
        }
    }

    /// Number of nodes the built graph will have.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Adds the undirected edge `{u, v}`. Duplicates are allowed and removed
    /// at [`GraphBuilder::build`] time.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] or [`GraphError::SelfLoop`] for
    /// invalid endpoints.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> Result<&mut Self, GraphError> {
        if u >= self.n {
            return Err(GraphError::NodeOutOfRange {
                node: u,
                len: self.n,
            });
        }
        if v >= self.n {
            return Err(GraphError::NodeOutOfRange {
                node: v,
                len: self.n,
            });
        }
        if u == v {
            return Err(GraphError::SelfLoop { node: u });
        }
        self.edges.push(if u < v { (u, v) } else { (v, u) });
        Ok(self)
    }

    /// Finalizes into an immutable [`Graph`], deduplicating edges.
    pub fn build(mut self) -> Graph {
        self.edges.sort_unstable();
        self.edges.dedup();
        let mut degree = vec![0usize; self.n];
        for &(u, v) in &self.edges {
            degree[u] += 1;
            degree[v] += 1;
        }
        let mut offsets = Vec::with_capacity(self.n + 1);
        offsets.push(0usize);
        for v in 0..self.n {
            offsets.push(offsets[v] + degree[v]);
        }
        let mut cursor = offsets.clone();
        let mut targets = vec![0 as NodeId; 2 * self.edges.len()];
        for &(u, v) in &self.edges {
            targets[cursor[u]] = v;
            cursor[u] += 1;
            targets[cursor[v]] = u;
            cursor[v] += 1;
        }
        // Each per-node slice is sorted because edges were globally sorted by
        // (min, max); the `v`-side inserts arrive in increasing `u` order and
        // the `u`-side inserts in increasing `v` order, but interleaving can
        // break ordering, so sort each slice (cheap: already nearly sorted).
        let graph = {
            for v in 0..self.n {
                targets[offsets[v]..offsets[v + 1]].sort_unstable();
            }
            Graph {
                offsets,
                targets,
                edge_count: self.edges.len(),
            }
        };
        debug_assert!(graph.validate().is_ok());
        graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = Graph::empty(5);
        assert_eq!(g.len(), 5);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.max_degree(), 0);
        assert!(!g.has_edge(0, 1));
        g.validate().unwrap();
    }

    #[test]
    fn zero_node_graph() {
        let g = Graph::empty(0);
        assert!(g.is_empty());
        assert_eq!(g.edges().count(), 0);
        g.validate().unwrap();
    }

    #[test]
    fn triangle() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]).unwrap();
        assert_eq!(g.edge_count(), 3);
        for v in 0..3 {
            assert_eq!(g.degree(v), 2);
        }
        assert!(g.has_edge(0, 2) && g.has_edge(2, 0));
        g.validate().unwrap();
    }

    #[test]
    fn dedup_edges() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 0), (0, 1)]).unwrap();
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn rejects_self_loop() {
        assert!(matches!(
            Graph::from_edges(3, &[(1, 1)]),
            Err(GraphError::SelfLoop { node: 1 })
        ));
    }

    #[test]
    fn rejects_out_of_range() {
        assert!(matches!(
            Graph::from_edges(3, &[(0, 3)]),
            Err(GraphError::NodeOutOfRange { node: 3, len: 3 })
        ));
    }

    #[test]
    fn neighbors_sorted() {
        let g = Graph::from_edges(5, &[(2, 4), (2, 0), (2, 3), (2, 1)]).unwrap();
        assert_eq!(g.neighbors(2), &[0, 1, 3, 4]);
        assert_eq!(g.degree(2), 4);
        assert_eq!(g.max_degree(), 4);
    }

    #[test]
    fn edges_iterates_once_each() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (0, 3)]).unwrap();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 3), (1, 2), (2, 3)]);
    }

    #[test]
    fn induced_subgraph_maps_back() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)]).unwrap();
        let keep = vec![true, false, true, true, false];
        let (sub, back) = g.induced_subgraph(&keep);
        assert_eq!(sub.len(), 3);
        assert_eq!(back, vec![0, 2, 3]);
        // Only the 2-3 edge survives: becomes (1, 2) in the subgraph.
        assert_eq!(sub.edge_count(), 1);
        assert!(sub.has_edge(1, 2));
        sub.validate().unwrap();
    }

    #[test]
    fn edges_within_mask() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        assert_eq!(g.edges_within(&[true, true, true, true]), 3);
        assert_eq!(g.edges_within(&[true, true, false, true]), 1);
        assert_eq!(g.edges_within(&[false, false, false, false]), 0);
    }

    #[test]
    fn max_degree_within_mask() {
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]).unwrap();
        assert_eq!(g.max_degree_within(&[true, true, true, true]), 3);
        assert_eq!(g.max_degree_within(&[true, true, false, false]), 1);
        assert_eq!(g.max_degree_within(&[false, true, true, true]), 0);
    }

    #[test]
    fn line_graph_of_path() {
        // P4: edges (0,1),(1,2),(2,3) -> line graph is P3.
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let (lg, edges) = g.line_graph();
        assert_eq!(lg.len(), 3);
        assert_eq!(lg.edge_count(), 2);
        assert_eq!(edges, vec![(0, 1), (1, 2), (2, 3)]);
        lg.validate().unwrap();
    }

    #[test]
    fn line_graph_of_star_is_clique() {
        let g = Graph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]).unwrap();
        let (lg, _) = g.line_graph();
        assert_eq!(lg.len(), 4);
        assert_eq!(lg.edge_count(), 6); // K4
    }

    #[test]
    fn line_graph_of_triangle_is_triangle() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]).unwrap();
        let (lg, _) = g.line_graph();
        assert_eq!(lg.len(), 3);
        assert_eq!(lg.edge_count(), 3);
    }

    #[test]
    fn disjoint_union_shifts() {
        let a = Graph::from_edges(2, &[(0, 1)]).unwrap();
        let b = Graph::from_edges(3, &[(0, 2)]).unwrap();
        let u = a.disjoint_union(&b);
        assert_eq!(u.len(), 5);
        assert_eq!(u.edge_count(), 2);
        assert!(u.has_edge(0, 1));
        assert!(u.has_edge(2, 4));
        u.validate().unwrap();
    }

    #[test]
    fn avg_degree() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        assert!((g.avg_degree() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn debug_is_nonempty() {
        let g = Graph::empty(1);
        assert!(!format!("{g:?}").is_empty());
    }
}
