//! The node-protocol interface driven by the simulator, plus the layered
//! wrapper contract ([`Layer`], [`VirtualClock`]) that lets one protocol
//! run another on a virtualized round clock (see `docs/CONSERVE.md`).

use crate::model::{Action, Feedback, NodeStatus};

/// The RNG handed to protocol callbacks: every node owns an independent,
/// deterministic stream derived from the run's master seed.
pub type NodeRng = rand::rngs::SmallRng;

/// A per-node distributed protocol, written as an explicit state machine.
///
/// The engine drives each non-finished node with a two-phase round contract:
///
/// 1. [`Protocol::act`] — the node declares what it does this round;
/// 2. [`Protocol::feedback`] — after global resolution, the node learns the
///    outcome (only for awake rounds) and may transition state.
///
/// A node that returns [`Action::Sleep`] is not polled again until its
/// `wake_at` round and receives no feedback for the skipped rounds (messages
/// sent to a sleeping node are lost — §1 of the paper). Do not rely on
/// being observed *between* scheduled rounds in any way: when every node
/// sleeps, the engine fast-forwards over the quiet span without processing
/// the intervening rounds at all (whichever
/// [`EngineMode`](crate::EngineMode) backend drives the run), so a
/// protocol's only clock is the `round` argument it is handed.
///
/// Protocols must be *oblivious to global state*: their only inputs are the
/// construction parameters (n, Δ, …), the round number, their private RNG,
/// and the feedback they hear. This is enforced by construction — the trait
/// gives access to nothing else.
pub trait Protocol {
    /// Declares the node's action for `round`.
    ///
    /// Only called at rounds the node is scheduled for (round 0, rounds
    /// following an awake round, and the `wake_at` of a sleep).
    fn act(&mut self, round: u64, rng: &mut NodeRng) -> Action;

    /// Delivers the outcome of an awake round (never called for sleeping
    /// rounds).
    fn feedback(&mut self, round: u64, fb: Feedback, rng: &mut NodeRng);

    /// The node's current (irrevocable once decided) MIS status.
    fn status(&self) -> NodeStatus;

    /// Whether the node is permanently done (will sleep forever). Finished
    /// nodes are retired by the engine; a run completes when every node is
    /// finished.
    fn finished(&self) -> bool;

    /// Called once when the node comes back from a crash-recovery window
    /// (see [`FaultPlan::with_recovery`](crate::FaultPlan::with_recovery)).
    ///
    /// The engine guarantees a full state reset regardless of this hook: it
    /// rebuilds the node via the run's factory and calls `on_restart` on
    /// the *fresh* instance, at the restart round, before the node's first
    /// post-recovery `act` (which happens at `round + 1`). Implementations
    /// use it to learn that they are a revived node rather than an original
    /// one — e.g. a self-healing wrapper switches into repair mode instead
    /// of re-running its initial schedule. The default does nothing.
    fn on_restart(&mut self, round: u64, rng: &mut NodeRng) {
        let _ = (round, rng);
    }

    /// Whether the protocol *might* transmit at one of its scheduled rounds
    /// strictly before `horizon`, assuming it hears nothing new in between.
    ///
    /// This is the scheduling oracle for energy-conserving wrappers: a
    /// wrapper that knows its inner machine cannot transmit before `horizon`
    /// may skip advertising its presence to the neighborhood for that span.
    /// The answer must be a *sound over-approximation* — returning `true`
    /// is always allowed (the default), returning `false` is a promise.
    /// A wrapper is entitled to panic if a protocol transmits inside a span
    /// it disclaimed.
    ///
    /// Must be side-effect free: implementations answer from current state
    /// and must not draw RNG or mutate anything.
    fn may_transmit_before(&self, horizon: u64) -> bool {
        let _ = horizon;
        true
    }
}

/// Blanket impl so `Box<dyn Protocol>` works where a concrete type is
/// expected.
impl<P: Protocol + ?Sized> Protocol for Box<P> {
    fn act(&mut self, round: u64, rng: &mut NodeRng) -> Action {
        (**self).act(round, rng)
    }
    fn feedback(&mut self, round: u64, fb: Feedback, rng: &mut NodeRng) {
        (**self).feedback(round, fb, rng)
    }
    fn status(&self) -> NodeStatus {
        (**self).status()
    }
    fn finished(&self) -> bool {
        (**self).finished()
    }
    fn on_restart(&mut self, round: u64, rng: &mut NodeRng) {
        (**self).on_restart(round, rng)
    }
    fn may_transmit_before(&self, horizon: u64) -> bool {
        (**self).may_transmit_before(horizon)
    }
}

/// A strictly ordered virtual round counter for layered protocols.
///
/// A wrapper that virtualizes its inner machine's clock (hands it a dense
/// round sequence decoupled from the engine's real rounds) threads every
/// inner callback through one of these. The clock enforces the part of the
/// wrapper contract the type system cannot: virtual time never runs
/// backwards. `act` ticks must be strictly increasing; the `feedback` for
/// an act reuses the same instant, so re-observing the current tick is
/// allowed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VirtualClock {
    now: Option<u64>,
}

impl VirtualClock {
    /// A clock that has not ticked yet.
    pub fn new() -> VirtualClock {
        VirtualClock::default()
    }

    /// The most recent virtual round handed to the inner machine, if any.
    pub fn now(&self) -> Option<u64> {
        self.now
    }

    /// Records that the inner machine is being driven at virtual round `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is below the last observed round — a wrapper bug: the
    /// inner machine would see time move backwards.
    pub fn observe(&mut self, v: u64) {
        if let Some(now) = self.now {
            assert!(
                v >= now,
                "virtual clock moved backwards: {v} after {now} (wrapper bug)"
            );
        }
        self.now = Some(v);
    }

    /// Forgets all history — for wrappers whose inner machine is rebuilt
    /// (crash recovery, repair epochs), where the fresh instance legally
    /// starts a fresh virtual timeline.
    pub fn reset(&mut self) {
        self.now = None;
    }
}

/// The contract of a *layered* protocol: a wrapper that owns the engine's
/// real rounds and drives an inner [`Protocol`] on a virtual clock.
///
/// Implementing this trait is a promise of the following delegation rules,
/// which `tests/` enforce for every in-tree wrapper:
///
/// - **status** — `status()` reports the inner machine's MIS decision
///   verbatim whenever an inner machine exists; the wrapper adds no
///   decision state of its own.
/// - **finished** — the wrapper only reports `finished()` once the inner
///   machine is finished *and* the wrapper holds no undelivered inner
///   action; a wrapper never outlives retirement with buffered work.
/// - **on_restart** — a restart resets the wrapper's scheduling state (its
///   [`VirtualClock`] may legally [`reset`](VirtualClock::reset)) and is
///   forwarded so the fresh inner machine learns it is a revived node.
/// - **virtual monotonicity** — between restarts, the virtual rounds
///   handed to the inner machine are non-decreasing, with `act` ticks
///   strictly increasing ([`VirtualClock::observe`] enforces this).
pub trait Layer: Protocol {
    /// The wrapped protocol type.
    type Inner: Protocol;

    /// The current inner machine, if one is live (wrappers that rebuild
    /// their inner machine may transiently have none).
    fn inner(&self) -> Option<&Self::Inner>;

    /// The most recent virtual round handed to the inner machine, if any.
    fn virtual_now(&self) -> Option<u64>;
}

/// Poll-style completion for composable sub-protocols (backoffs, competition
/// phases, …): `Pending` while the sub-machine still owns upcoming rounds,
/// `Ready(T)` once it has produced its result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubPoll<T> {
    /// The sub-protocol continues next round.
    Pending,
    /// The sub-protocol completed with this output; the parent machine owns
    /// the next round.
    Ready(T),
}

impl<T> SubPoll<T> {
    /// Returns the completed value, if any.
    pub fn ready(self) -> Option<T> {
        match self {
            SubPoll::Pending => None,
            SubPoll::Ready(t) => Some(t),
        }
    }

    /// Whether the sub-protocol is still running.
    pub fn is_pending(&self) -> bool {
        matches!(self, SubPoll::Pending)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Message;
    use rand::SeedableRng;

    struct Fixed;
    impl Protocol for Fixed {
        fn act(&mut self, _round: u64, _rng: &mut NodeRng) -> Action {
            Action::Transmit(Message::unary())
        }
        fn feedback(&mut self, _round: u64, _fb: Feedback, _rng: &mut NodeRng) {}
        fn status(&self) -> NodeStatus {
            NodeStatus::InMis
        }
        fn finished(&self) -> bool {
            true
        }
    }

    #[test]
    fn boxed_protocol_delegates() {
        let mut p: Box<dyn Protocol> = Box::new(Fixed);
        let mut rng = NodeRng::seed_from_u64(0);
        assert_eq!(p.act(0, &mut rng), Action::Transmit(Message::unary()));
        p.feedback(0, Feedback::Sent, &mut rng);
        assert_eq!(p.status(), NodeStatus::InMis);
        assert!(p.finished());
        // The default restart hook is a no-op and delegates through Box.
        p.on_restart(3, &mut rng);
        assert!(p.finished());
        // The default transmit oracle is the sound over-approximation and
        // delegates through Box too.
        assert!(p.may_transmit_before(0));
        assert!(p.may_transmit_before(u64::MAX));
    }

    struct Quiet;
    impl Protocol for Quiet {
        fn act(&mut self, round: u64, _rng: &mut NodeRng) -> Action {
            Action::Sleep {
                wake_at: round + 100,
            }
        }
        fn feedback(&mut self, _round: u64, _fb: Feedback, _rng: &mut NodeRng) {}
        fn status(&self) -> NodeStatus {
            NodeStatus::Undecided
        }
        fn finished(&self) -> bool {
            false
        }
        fn may_transmit_before(&self, horizon: u64) -> bool {
            horizon > 100
        }
    }

    #[test]
    fn may_transmit_before_override_delegates_through_box() {
        let p: Box<dyn Protocol> = Box::new(Quiet);
        assert!(!p.may_transmit_before(100));
        assert!(p.may_transmit_before(101));
    }

    #[test]
    fn virtual_clock_accepts_monotone_ticks() {
        let mut c = VirtualClock::new();
        assert_eq!(c.now(), None);
        c.observe(3);
        // A feedback callback re-observes the act's instant.
        c.observe(3);
        c.observe(7);
        assert_eq!(c.now(), Some(7));
        // A rebuilt inner machine starts a fresh timeline.
        c.reset();
        assert_eq!(c.now(), None);
        c.observe(0);
        assert_eq!(c.now(), Some(0));
    }

    #[test]
    #[should_panic(expected = "virtual clock moved backwards")]
    fn virtual_clock_rejects_backwards_ticks() {
        let mut c = VirtualClock::new();
        c.observe(5);
        c.observe(4);
    }

    #[test]
    fn subpoll_accessors() {
        let p: SubPoll<u32> = SubPoll::Pending;
        assert!(p.is_pending());
        assert_eq!(p.ready(), None);
        let r = SubPoll::Ready(7u32);
        assert!(!r.is_pending());
        assert_eq!(r.ready(), Some(7));
    }
}
