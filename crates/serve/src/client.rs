//! A small blocking client for the job API — used by the CLI's
//! `bench-serve` load generator and by the integration tests, and handy
//! as a library entry point for scripting the daemon from Rust.

use crate::api::{JobRequest, JobStatus, JobView, StatsView};
use crate::http::read_chunked;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// A blocking HTTP client for one `mis-serve` daemon.
///
/// ```
/// use mis_serve::{JobRequest, ServeClient, ServeConfig, Server};
/// use std::time::Duration;
///
/// let dir = std::env::temp_dir().join(format!("mis-serve-client-doc-{}", std::process::id()));
/// let _ = std::fs::remove_dir_all(&dir);
/// let mut cfg = ServeConfig::default();
/// cfg.addr = "127.0.0.1:0".to_string();
/// cfg.cache_dir = Some(dir.clone());
/// let server = Server::bind(cfg).unwrap();
/// let addr = server.local_addr().unwrap();
/// let handle = server.handle();
/// let daemon = std::thread::spawn(move || server.run());
///
/// let client = ServeClient::new(addr.to_string());
/// let view = client
///     .submit_and_wait(
///         &JobRequest::Sim {
///             algorithm: "cd".to_string(),
///             family: "path".to_string(),
///             n: 16,
///             seed: 3,
///             trials: 1,
///             trace: false,
///             threads: 1,
///         },
///         Duration::from_secs(120),
///     )
///     .unwrap();
/// assert!(view.payload.is_some());
/// assert_eq!(client.stats().unwrap().submitted, 1);
///
/// handle.shutdown();
/// daemon.join().unwrap().unwrap();
/// let _ = std::fs::remove_dir_all(&dir);
/// ```
#[derive(Debug, Clone)]
pub struct ServeClient {
    addr: String,
    client_id: String,
}

impl ServeClient {
    /// A client for the daemon at `addr` (host:port), identifying itself
    /// as `"anon"` until [`ServeClient::with_client_id`].
    pub fn new(addr: impl Into<String>) -> ServeClient {
        ServeClient {
            addr: addr.into(),
            client_id: "anon".to_string(),
        }
    }

    /// Set the `X-Client` id used for fair queueing and per-client stats.
    pub fn with_client_id(mut self, id: impl Into<String>) -> ServeClient {
        self.client_id = id.into();
        self
    }

    /// `POST /jobs`: submit a request, returning the job's view — `Done`
    /// with a payload on a cache hit, `Queued`/`Running` otherwise.
    pub fn submit(&self, request: &JobRequest) -> Result<JobView, String> {
        let body = serde_json::to_vec(request).map_err(|e| e.to_string())?;
        let (status, bytes) = self.roundtrip("POST", "/jobs", Some(&body))?;
        decode_or_error(status, &bytes)
    }

    /// `GET /jobs/:id`: poll one job.
    pub fn job(&self, id: &str) -> Result<JobView, String> {
        let (status, bytes) = self.roundtrip("GET", &format!("/jobs/{id}"), None)?;
        decode_or_error(status, &bytes)
    }

    /// Poll until the job leaves `Queued`/`Running` or `timeout` elapses.
    pub fn wait(&self, id: &str, timeout: Duration) -> Result<JobView, String> {
        let deadline = Instant::now() + timeout;
        loop {
            let view = self.job(id)?;
            match view.status {
                JobStatus::Done | JobStatus::Failed => return Ok(view),
                JobStatus::Queued | JobStatus::Running => {
                    if Instant::now() >= deadline {
                        return Err(format!("timed out waiting for job {id}"));
                    }
                    std::thread::sleep(Duration::from_millis(10));
                }
            }
        }
    }

    /// [`ServeClient::submit`] then [`ServeClient::wait`]. A cache hit
    /// returns without any polling.
    pub fn submit_and_wait(
        &self,
        request: &JobRequest,
        timeout: Duration,
    ) -> Result<JobView, String> {
        let view = self.submit(request)?;
        match view.status {
            JobStatus::Done | JobStatus::Failed => Ok(view),
            _ => self.wait(&view.id, timeout),
        }
    }

    /// `GET /jobs/:id/stream`: block until the job's trace stream
    /// completes and return the concatenated JSONL bytes (empty for
    /// untraced jobs and cache hits).
    pub fn stream(&self, id: &str) -> Result<Vec<u8>, String> {
        let stream = self.connect("GET", &format!("/jobs/{id}/stream"), None)?;
        let mut reader = BufReader::new(stream);
        let (status, headers) = read_head(&mut reader)?;
        if status != 200 {
            let bytes = read_plain_body(&mut reader, &headers)?;
            return Err(http_error(status, &bytes));
        }
        read_chunked(&mut reader).map_err(|e| e.to_string())
    }

    /// `GET /stats`: the server-wide accounting view.
    pub fn stats(&self) -> Result<StatsView, String> {
        let (status, bytes) = self.roundtrip("GET", "/stats", None)?;
        decode_or_error(status, &bytes)
    }

    fn connect(&self, method: &str, path: &str, body: Option<&[u8]>) -> Result<TcpStream, String> {
        let mut stream =
            TcpStream::connect(&self.addr).map_err(|e| format!("connect {}: {e}", self.addr))?;
        let mut head = format!(
            "{method} {path} HTTP/1.1\r\nHost: {}\r\nX-Client: {}\r\nConnection: close\r\n",
            self.addr, self.client_id
        );
        if let Some(body) = body {
            head.push_str(&format!(
                "Content-Type: application/json\r\nContent-Length: {}\r\n",
                body.len()
            ));
        }
        head.push_str("\r\n");
        stream
            .write_all(head.as_bytes())
            .map_err(|e| e.to_string())?;
        if let Some(body) = body {
            stream.write_all(body).map_err(|e| e.to_string())?;
        }
        stream.flush().map_err(|e| e.to_string())?;
        Ok(stream)
    }

    /// One full request/response exchange with a plain (non-chunked) body.
    fn roundtrip(
        &self,
        method: &str,
        path: &str,
        body: Option<&[u8]>,
    ) -> Result<(u16, Vec<u8>), String> {
        let stream = self.connect(method, path, body)?;
        let mut reader = BufReader::new(stream);
        let (status, headers) = read_head(&mut reader)?;
        let bytes = read_plain_body(&mut reader, &headers)?;
        Ok((status, bytes))
    }
}

fn read_head<R: BufRead>(reader: &mut R) -> Result<(u16, Vec<(String, String)>), String> {
    let mut status_line = String::new();
    reader
        .read_line(&mut status_line)
        .map_err(|e| e.to_string())?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("malformed status line: {status_line:?}"))?;
    let mut headers = Vec::new();
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).map_err(|e| e.to_string())?;
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }
    }
    Ok((status, headers))
}

fn read_plain_body<R: BufRead>(
    reader: &mut R,
    headers: &[(String, String)],
) -> Result<Vec<u8>, String> {
    let length: Option<usize> = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .and_then(|(_, v)| v.parse().ok());
    let mut bytes = Vec::new();
    match length {
        Some(len) => {
            bytes.resize(len, 0);
            reader.read_exact(&mut bytes).map_err(|e| e.to_string())?;
        }
        None => {
            reader.read_to_end(&mut bytes).map_err(|e| e.to_string())?;
        }
    }
    Ok(bytes)
}

fn http_error(status: u16, bytes: &[u8]) -> String {
    let msg = serde_json::from_slice::<serde_json::Value>(bytes)
        .ok()
        .and_then(|v| v.get("error").and_then(|e| e.as_str()).map(String::from))
        .unwrap_or_else(|| String::from_utf8_lossy(bytes).into_owned());
    format!("HTTP {status}: {msg}")
}

fn decode_or_error<T: serde::de::DeserializeOwned>(status: u16, bytes: &[u8]) -> Result<T, String> {
    if status >= 400 {
        return Err(http_error(status, bytes));
    }
    serde_json::from_slice(bytes).map_err(|e| format!("malformed response body: {e}"))
}
