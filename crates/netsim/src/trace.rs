//! Execution tracing for debugging and the per-lemma experiments.
//!
//! The engine emits [`TraceEvent`]s to a [`TraceSink`]. The default
//! [`NullTrace`] compiles to nothing; [`VecTrace`] records everything for
//! inspection in tests and experiment instrumentation.

use crate::model::{Action, Feedback, NodeStatus};
use mis_graphs::NodeId;

/// One engine event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A node declared an action at a round.
    Acted {
        /// Round number.
        round: u64,
        /// The acting node.
        node: NodeId,
        /// Its action.
        action: Action,
    },
    /// A node received feedback at a round.
    Fed {
        /// Round number.
        round: u64,
        /// The node receiving feedback.
        node: NodeId,
        /// The feedback delivered.
        feedback: Feedback,
    },
    /// A node's status changed.
    StatusChanged {
        /// Round number at which the change was observed.
        round: u64,
        /// The node.
        node: NodeId,
        /// The new status.
        status: NodeStatus,
    },
    /// A node was retired (finished).
    Finished {
        /// Round number.
        round: u64,
        /// The node.
        node: NodeId,
    },
}

/// Receives engine events.
pub trait TraceSink {
    /// Records one event.
    fn record(&mut self, event: TraceEvent);

    /// Whether the sink wants per-action/per-feedback events (the expensive
    /// ones). Status changes and finishes are always delivered. Sinks that
    /// return `false` let the engine skip event construction entirely.
    fn verbose(&self) -> bool {
        true
    }
}

/// Discards everything; the default sink.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullTrace;

impl TraceSink for NullTrace {
    fn record(&mut self, _event: TraceEvent) {}
    fn verbose(&self) -> bool {
        false
    }
}

/// Stores every event in order.
#[derive(Debug, Clone, Default)]
pub struct VecTrace {
    /// The recorded events, in emission order.
    pub events: Vec<TraceEvent>,
}

impl VecTrace {
    /// Creates an empty trace.
    pub fn new() -> VecTrace {
        VecTrace::default()
    }

    /// Iterates over the events of one node.
    pub fn for_node(&self, node: NodeId) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| match e {
            TraceEvent::Acted { node: n, .. }
            | TraceEvent::Fed { node: n, .. }
            | TraceEvent::StatusChanged { node: n, .. }
            | TraceEvent::Finished { node: n, .. } => *n == node,
        })
    }

    /// Number of awake actions recorded for a node (its traced energy).
    pub fn awake_actions(&self, node: NodeId) -> usize {
        self.for_node(node)
            .filter(|e| matches!(e, TraceEvent::Acted { action, .. } if action.is_awake()))
            .count()
    }
}

impl TraceSink for VecTrace {
    fn record(&mut self, event: TraceEvent) {
        self.events.push(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Message;

    #[test]
    fn vec_trace_filters_by_node() {
        let mut t = VecTrace::new();
        t.record(TraceEvent::Acted {
            round: 0,
            node: 1,
            action: Action::Listen,
        });
        t.record(TraceEvent::Acted {
            round: 0,
            node: 2,
            action: Action::Transmit(Message::unary()),
        });
        t.record(TraceEvent::Fed {
            round: 0,
            node: 1,
            feedback: Feedback::Heard(Message::unary()),
        });
        assert_eq!(t.for_node(1).count(), 2);
        assert_eq!(t.for_node(2).count(), 1);
        assert_eq!(t.awake_actions(1), 1);
        assert_eq!(t.awake_actions(3), 0);
    }

    #[test]
    fn null_trace_is_quiet() {
        let mut t = NullTrace;
        assert!(!t.verbose());
        t.record(TraceEvent::Finished { round: 0, node: 0 });
    }
}
