//! The conservation tax: `Conserve<CdMis>` vs the native machine.
//!
//! The combinator promises cheap energy savings (docs/CONSERVE.md): the
//! wrapped run stretches real time by ≈ 1 + A/W and adds one advertise
//! slot of wrapper work per attended epoch, while the engine's sparse
//! wake queue skips the slept-through remainder. This bench pins that
//! story in wall-clock terms — the wrapped run must stay within a small
//! constant factor of the native run, because almost all of the extra
//! rounds are slept rounds the engine never materializes.
//!
//! Two entry points:
//! - `cargo bench --bench bench_conserve_overhead` — full criterion run
//!   over n ∈ {10⁴, 10⁵} × W ∈ {4, 16, 64} plus the native leg;
//! - `ENGINE_BENCH_SMOKE=1 cargo bench --bench bench_conserve_overhead`
//!   — a quick wrapped/native wall-clock ratio check at n = 10⁴ that
//!   fails (exit 1) if any ratio exceeds 1.25 × its committed
//!   `conserve_overhead` ceiling in `BENCH_engine.json`: the CI gate.

use criterion::{criterion_group, BenchmarkId, Criterion};
use mis_bench::workload;
use mis_graphs::Graph;
use radio_mis::cd::CdMis;
use radio_mis::conserve::{Conserve, ConserveConfig};
use radio_mis::params::CdParams;
use radio_netsim::{ChannelModel, SimConfig, Simulator};
use std::collections::HashMap;
use std::time::{Duration, Instant};

fn run_native(g: &Graph) -> u64 {
    let params = CdParams::for_n(g.len().max(2));
    let config = SimConfig::new(ChannelModel::Cd).with_seed(1);
    let report = Simulator::new(g, config).run(|_, _| CdMis::new(params));
    assert!(report.completed, "native CdMis must finish");
    report.rounds
}

fn run_conserved(g: &Graph, slice: u64) -> u64 {
    let params = CdParams::for_n(g.len().max(2));
    let cfg = ConserveConfig::for_cd(slice);
    let config = SimConfig::new(ChannelModel::Cd).with_seed(1);
    let report = Simulator::new(g, config).run(move |_, _| Conserve::new(CdMis::new(params), cfg));
    assert!(report.completed, "conserved CdMis must finish");
    report.rounds
}

fn bench(c: &mut Criterion) {
    for &n in &[10_000usize, 100_000] {
        let g = workload(n, 42);
        let mut group = c.benchmark_group(format!("conserve_overhead/n={n}"));
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::new("cd", "native"), &g, |b, g| {
            b.iter(|| run_native(g))
        });
        for slice in [4u64, 16, 64] {
            group.bench_with_input(BenchmarkId::new("cd", format!("W={slice}")), &g, |b, g| {
                b.iter(|| run_conserved(g, slice))
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench);

/// Best-of-3 wall-clock time for one closure.
fn measure<F: FnMut()>(mut f: F) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..3 {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed());
    }
    best
}

/// Loads the committed overhead ceilings
/// (`{"conserve_overhead": {"wrap/10000/W=4": …}}`).
fn load_baseline() -> HashMap<String, f64> {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_engine.json");
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
    let v: serde_json::Value = serde_json::from_str(&text).expect("baseline must parse");
    v["conserve_overhead"]
        .as_object()
        .expect("baseline needs a \"conserve_overhead\" table")
        .iter()
        .map(|(k, val)| (k.clone(), val.as_f64().expect("ceiling must be numeric")))
        .collect()
}

/// The CI regression gate: measured wrapped/native wall ratios must stay
/// below 1.25 × their committed ceilings (both legs run on the same host,
/// so the quotient cancels clock speed). Like `multichannel_tax`, the rows
/// are conservative ceilings bounding from above, not observed values.
fn smoke() {
    let baseline = load_baseline();
    let n = 10_000;
    let g = workload(n, 42);
    let mut failed = false;
    let mut gate = |key: String, ratio: f64| {
        let ceiling = baseline.get(&key).map_or(8.0, |&b| 1.25 * b);
        println!("{key}: ratio {ratio:.2}x (ceiling {ceiling:.2}x)");
        if ratio > ceiling {
            eprintln!("REGRESSION: {key} ratio {ratio:.2}x above ceiling {ceiling:.2}x");
            failed = true;
        }
    };

    let native = measure(|| {
        run_native(&g);
    });
    for slice in [4u64, 16] {
        let wrapped = measure(|| {
            run_conserved(&g, slice);
        });
        gate(
            format!("wrap/{n}/W={slice}"),
            wrapped.as_secs_f64() / native.as_secs_f64().max(1e-9),
        );
    }

    if failed {
        std::process::exit(1);
    }
    println!("conserve smoke: all ratios below their ceilings");
}

fn main() {
    if std::env::var_os("ENGINE_BENCH_SMOKE").is_some() {
        smoke();
        return;
    }
    benches();
    Criterion::default().configure_from_args().final_summary();
}
