//! Time-series analysis of per-round metrics timelines.
//!
//! The observability layer in `radio-netsim` produces one metrics record
//! per processed round (awake counts, undecided population, cumulative
//! energy, …). The paper's arguments are *round-indexed*: Lemma 4 bounds
//! the per-phase survival probability of an undecided node, so the
//! undecided population should decay geometrically in rounds. This module
//! fits and summarizes such series.
//!
//! Series are passed as parallel slices `(rounds, values)` — the same
//! convention as [`crate::fit`] — so the module stays independent of the
//! simulator's record types; callers extract the field they care about
//! from each `RoundMetrics` record.
//!
//! ```
//! use mis_stats::timeline::exp_decay_fit;
//!
//! // A population halving every 10 rounds.
//! let rounds: Vec<f64> = (0..20).map(|r| r as f64).collect();
//! let ys: Vec<f64> = rounds.iter().map(|r| 1024.0 * (-0.0693 * r).exp()).collect();
//! let fit = exp_decay_fit(&rounds, &ys).unwrap();
//! assert!((fit.half_life() - 10.0).abs() < 0.1);
//! ```

use crate::summary::Summary;
use serde::{Deserialize, Serialize};

/// A fitted geometric decay `y(r) ≈ initial · exp(−rate · r)`.
///
/// ```
/// use mis_stats::timeline::exp_decay_fit;
///
/// let rounds: Vec<f64> = (0..30).map(|r| r as f64).collect();
/// let ys: Vec<f64> = rounds.iter().map(|r| 500.0 * (-0.2 * r).exp()).collect();
/// let fit = exp_decay_fit(&rounds, &ys).unwrap();
/// assert!((fit.rate - 0.2).abs() < 1e-9);
/// assert!((fit.eval(5.0) - 500.0 * (-1.0f64).exp()).abs() < 1e-6);
/// assert!(fit.half_life() < 4.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DecayFit {
    /// Decay rate per round (positive for a shrinking series).
    pub rate: f64,
    /// Fitted value at round 0.
    pub initial: f64,
    /// Coefficient of determination of the log-linear fit.
    pub r2: f64,
    /// Number of (strictly positive) points the fit used.
    pub points: usize,
}

impl DecayFit {
    /// Rounds for the fitted series to halve: `ln 2 / rate`
    /// (infinite for a non-decaying series).
    pub fn half_life(&self) -> f64 {
        if self.rate <= 0.0 {
            f64::INFINITY
        } else {
            std::f64::consts::LN_2 / self.rate
        }
    }

    /// The fitted value at round `r`.
    pub fn eval(&self, r: f64) -> f64 {
        self.initial * (-self.rate * r).exp()
    }
}

/// Fits `ys(rounds)` to a geometric decay by ordinary least squares on
/// `ln y` — the standard estimator for the per-round survival factor a
/// round-indexed potential argument predicts.
///
/// Non-positive values (the series hitting zero once everyone decided)
/// carry no log information and are skipped. Returns `None` if fewer than
/// two positive points remain.
///
/// # Panics
///
/// Panics if the slice lengths differ.
pub fn exp_decay_fit(rounds: &[f64], ys: &[f64]) -> Option<DecayFit> {
    assert_eq!(rounds.len(), ys.len(), "series length mismatch");
    let (xs, lns): (Vec<f64>, Vec<f64>) = rounds
        .iter()
        .zip(ys)
        .filter(|(_, &y)| y > 0.0)
        .map(|(&r, &y)| (r, y.ln()))
        .unzip();
    if xs.len() < 2 {
        return None;
    }
    let fit = crate::fit::linear_fit(&xs, &lns);
    Some(DecayFit {
        rate: -fit.slope,
        initial: fit.intercept.exp(),
        r2: fit.r2,
        points: xs.len(),
    })
}

/// Descriptive summary of one per-round series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimelineSummary {
    /// Distribution of the per-round values.
    pub values: Summary,
    /// Value at the first recorded round.
    pub first: f64,
    /// Value at the last recorded round.
    pub last: f64,
    /// Round at which the series peaked (first occurrence of the max).
    pub peak_round: f64,
    /// Area under the series by the trapezoid rule over recorded rounds —
    /// for an awake-count series this is total energy spent.
    pub auc: f64,
}

impl TimelineSummary {
    /// Summarizes a series given as parallel `(rounds, values)` slices.
    /// Returns `None` for an empty series.
    ///
    /// ```
    /// use mis_stats::TimelineSummary;
    ///
    /// // An awake-count series over (possibly non-contiguous) rounds.
    /// let s = TimelineSummary::of(&[0.0, 1.0, 4.0], &[2.0, 6.0, 2.0]).unwrap();
    /// assert_eq!(s.peak_round, 1.0);
    /// assert_eq!(s.first, 2.0);
    /// assert_eq!(s.last, 2.0);
    /// assert!((s.auc - 16.0).abs() < 1e-12); // trapezoid over the round gaps
    /// assert!(TimelineSummary::of(&[], &[]).is_none());
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths differ.
    pub fn of(rounds: &[f64], ys: &[f64]) -> Option<TimelineSummary> {
        assert_eq!(rounds.len(), ys.len(), "series length mismatch");
        if ys.is_empty() {
            return None;
        }
        let peak = ys
            .iter()
            .enumerate()
            .reduce(|a, b| if b.1 > a.1 { b } else { a })
            .expect("non-empty");
        Some(TimelineSummary {
            values: Summary::of(ys),
            first: ys[0],
            last: ys[ys.len() - 1],
            peak_round: rounds[peak.0],
            auc: trapezoid_auc(rounds, ys),
        })
    }
}

/// Area under the series by the trapezoid rule (0 for < 2 points).
/// Assumes `rounds` is ascending.
pub fn trapezoid_auc(rounds: &[f64], ys: &[f64]) -> f64 {
    rounds
        .windows(2)
        .zip(ys.windows(2))
        .map(|(r, y)| (r[1] - r[0]) * (y[0] + y[1]) / 2.0)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_decay_rate() {
        let rounds: Vec<f64> = (0..30).map(|r| r as f64).collect();
        let ys: Vec<f64> = rounds.iter().map(|r| 500.0 * (-0.2 * r).exp()).collect();
        let fit = exp_decay_fit(&rounds, &ys).unwrap();
        assert!((fit.rate - 0.2).abs() < 1e-9);
        assert!((fit.initial - 500.0).abs() < 1e-6);
        assert!((fit.r2 - 1.0).abs() < 1e-9);
        assert_eq!(fit.points, 30);
        assert!((fit.half_life() - std::f64::consts::LN_2 / 0.2).abs() < 1e-9);
        assert!((fit.eval(0.0) - 500.0).abs() < 1e-6);
    }

    #[test]
    fn skips_zeros_at_the_tail() {
        // The undecided count hits 0 once the run finishes; those rounds
        // must not poison the log fit.
        let rounds: Vec<f64> = (0..10).map(|r| r as f64).collect();
        let mut ys: Vec<f64> = rounds.iter().map(|r| 64.0 * (-0.5 * r).exp()).collect();
        ys[8] = 0.0;
        ys[9] = 0.0;
        let fit = exp_decay_fit(&rounds, &ys).unwrap();
        assert_eq!(fit.points, 8);
        assert!((fit.rate - 0.5).abs() < 1e-9);
    }

    #[test]
    fn too_few_points_is_none() {
        assert!(exp_decay_fit(&[0.0, 1.0], &[0.0, 0.0]).is_none());
        assert!(exp_decay_fit(&[3.0], &[5.0]).is_none());
        assert!(exp_decay_fit(&[], &[]).is_none());
    }

    #[test]
    fn growing_series_has_negative_rate() {
        let rounds = [0.0, 1.0, 2.0];
        let ys = [1.0, 2.0, 4.0];
        let fit = exp_decay_fit(&rounds, &ys).unwrap();
        assert!(fit.rate < 0.0);
        assert_eq!(fit.half_life(), f64::INFINITY);
    }

    #[test]
    fn timeline_summary_basics() {
        let rounds = [0.0, 1.0, 2.0, 3.0];
        let ys = [1.0, 5.0, 5.0, 2.0];
        let s = TimelineSummary::of(&rounds, &ys).unwrap();
        assert_eq!(s.first, 1.0);
        assert_eq!(s.last, 2.0);
        assert_eq!(s.peak_round, 1.0); // first occurrence of the max
        assert_eq!(s.values.count, 4);
        assert!((s.auc - (3.0 + 5.0 + 3.5)).abs() < 1e-12);
        assert!(TimelineSummary::of(&[], &[]).is_none());
    }

    #[test]
    fn auc_handles_gaps() {
        // Processed rounds may be non-contiguous (all-sleep rounds are
        // skipped); the trapezoid rule weights by the actual gap.
        let rounds = [0.0, 4.0];
        let ys = [2.0, 2.0];
        assert!((trapezoid_auc(&rounds, &ys) - 8.0).abs() < 1e-12);
        assert_eq!(trapezoid_auc(&[1.0], &[3.0]), 0.0);
    }
}
