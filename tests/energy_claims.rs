//! Cross-crate integration: the paper's comparative energy claims, checked
//! end to end on real runs.
//!
//! The [`budget`] module is a parameterized awake-slot-budget harness: it
//! turns "this protocol is awake at most B rounds per epoch of length L"
//! into a machine-checked claim, counted per node from the trace layer and
//! cross-checked in aggregate against the engine's round-metrics energy
//! counters. The native claims below reuse it for the per-phase ceilings
//! the schedules imply, and the `conserve_*` tests apply it to
//! [`Conserve`]-wrapped runs of the whole algorithm zoo (docs/CONSERVE.md).

use energy_mis::graphs::generators;
use energy_mis::mis::baselines::{naive_luby_cd, NaiveSimParams, NoCdNaive};
use energy_mis::mis::cd::CdMis;
use energy_mis::mis::conserve::{Conserve, ConserveConfig};
use energy_mis::mis::low_degree::LowDegreeMis;
use energy_mis::mis::nocd::NoCdMis;
use energy_mis::mis::params::{CdParams, LowDegreeParams, NoCdParams};
use energy_mis::netsim::{split_seed, ChannelModel, SimConfig, Simulator};

mod budget {
    //! The reusable awake-slot-budget harness.

    use energy_mis::graphs::Graph;
    use energy_mis::netsim::{RunReport, TraceEvent, VecTrace};

    /// A per-node, per-epoch awake-slot budget, plus an optional per-node
    /// multiplicative bound against a reference run.
    pub struct AwakeBudget {
        /// Epoch length in real rounds.
        pub epoch_len: u64,
        /// Hard ceiling on awake rounds per node per epoch.
        pub per_epoch: u64,
        /// If `Some((k, reference))`, each node's total awake rounds must
        /// also stay within `k ×` its energy in the reference run (and be
        /// zero where the reference is zero) — the transformer bound of an
        /// energy-conserving wrapper.
        pub vs_reference: Option<(u64, RunReport)>,
    }

    /// Asserts the budget against a traced run. `trace` must come from the
    /// same run as `report` (the per-node counts and the aggregate energy
    /// counters are required to agree — that identity is itself checked).
    pub fn assert_awake_budget(g: &Graph, report: &RunReport, trace: &VecTrace, b: &AwakeBudget) {
        assert!(b.epoch_len >= 1 && b.per_epoch >= 1, "degenerate budget");
        let mut traced_total = 0u64;
        for v in 0..g.len() {
            // Per-node, per-epoch ceiling, counted from the trace layer.
            let mut per_epoch = std::collections::HashMap::new();
            for e in trace.for_node(v) {
                if let TraceEvent::Acted { round, action, .. } = e {
                    if action.is_awake() {
                        *per_epoch.entry(round / b.epoch_len).or_insert(0u64) += 1;
                    }
                }
            }
            for (epoch, awake) in &per_epoch {
                assert!(
                    *awake <= b.per_epoch,
                    "node {v} awake {awake} rounds in epoch {epoch}, budget {}",
                    b.per_epoch
                );
            }
            // The trace and the energy meters must tell the same story.
            let traced = trace.awake_actions(v) as u64;
            assert_eq!(
                traced,
                report.meters[v].energy(),
                "node {v}: trace disagrees with the energy meter"
            );
            traced_total += traced;
            if let Some((k, reference)) = &b.vs_reference {
                let native = reference.meters[v].energy();
                assert!(
                    traced <= k * native,
                    "node {v}: {traced} awake rounds above {k}x reference {native}"
                );
                if native == 0 {
                    assert_eq!(traced, 0, "node {v} spent energy with no reference work");
                }
            }
        }
        // Aggregate cross-check against the engine's RoundMetrics energy
        // counters: per-epoch awake populations sum to the same total, and
        // no epoch exceeds n x the per-node ceiling.
        let timeline = report.metrics_timeline();
        if !timeline.is_empty() {
            let mut agg = std::collections::HashMap::new();
            for m in timeline {
                *agg.entry(m.round / b.epoch_len).or_insert(0u64) += u64::from(m.awake());
            }
            for (epoch, awake) in &agg {
                assert!(
                    *awake <= g.len() as u64 * b.per_epoch,
                    "epoch {epoch}: aggregate awake {awake} above n x budget"
                );
            }
            assert_eq!(
                agg.values().sum::<u64>(),
                traced_total,
                "round-metrics energy disagrees with the trace"
            );
            assert_eq!(timeline.last().unwrap().cumulative_energy, traced_total);
        }
    }
}

use budget::{assert_awake_budget, AwakeBudget};
use energy_mis::netsim::VecTrace;

/// Runs a factory traced, with round metrics on, so the harness can check
/// both observability channels against each other.
fn traced_run<P, F>(
    g: &energy_mis::graphs::Graph,
    model: ChannelModel,
    seed: u64,
    factory: F,
) -> (energy_mis::netsim::RunReport, VecTrace)
where
    P: energy_mis::netsim::Protocol + Send,
    F: FnMut(usize, &mut energy_mis::netsim::NodeRng) -> P + Send,
{
    let mut trace = VecTrace::new();
    let report = Simulator::new(
        g,
        SimConfig::new(model).with_seed(seed).with_round_metrics(),
    )
    .run_traced(factory, &mut trace);
    (report, trace)
}

/// §1.3: Algorithm 1's energy is strictly below naive Luby's once n is
/// large enough for log n ≪ log²n to bite.
#[test]
fn cd_energy_beats_naive_luby() {
    let n = 1024;
    let g = generators::gnp(n, 8.0 / (n as f64 - 1.0), 3);
    let params = CdParams::for_n(n);
    let mut cd_sum = 0.0;
    let mut naive_sum = 0.0;
    for t in 0..5 {
        let seed = split_seed(99, t);
        cd_sum += Simulator::new(&g, SimConfig::new(ChannelModel::Cd).with_seed(seed))
            .run(|_, _| CdMis::new(params))
            .avg_energy();
        naive_sum += Simulator::new(&g, SimConfig::new(ChannelModel::Cd).with_seed(seed))
            .run(|_, _| naive_luby_cd(params))
            .avg_energy();
    }
    assert!(
        cd_sum * 1.5 < naive_sum,
        "expected clear separation: cd {cd_sum} vs naive {naive_sum}"
    );
}

/// Theorem 2's headline inequality: CD energy stays within a small multiple
/// of log₂ n while the schedule is Θ(log²n) — and the native schedule obeys
/// the per-phase budget the harness formalizes (a node is awake at most one
/// full Luby phase per phase).
#[test]
fn cd_energy_is_logarithmic_at_scale() {
    let n = 8192;
    let g = generators::gnp(n, 8.0 / (n as f64 - 1.0), 4);
    let params = CdParams::for_n(n);
    let (report, trace) = traced_run(&g, ChannelModel::Cd, 17, |_, _| CdMis::new(params));
    assert!(report.is_correct_mis(&g));
    let log_n = (n as f64).log2();
    assert!(
        (report.max_energy() as f64) < 15.0 * log_n,
        "energy {} vs 15·log n = {}",
        report.max_energy(),
        15.0 * log_n
    );
    assert_awake_budget(
        &g,
        &report,
        &trace,
        &AwakeBudget {
            epoch_len: params.phase_len(),
            per_epoch: params.phase_len(),
            vs_reference: None,
        },
    );
}

/// Theorem 10's headline: no-CD energy is a vanishing fraction of the round
/// complexity (the awake/total separation that defines the sleeping model).
#[test]
fn nocd_energy_is_sublinear_in_rounds() {
    let n = 512;
    let g = generators::gnp(n, 8.0 / (n as f64 - 1.0), 5);
    let params = NoCdParams::for_n(n, g.max_degree().max(2));
    let report = Simulator::new(&g, SimConfig::new(ChannelModel::NoCd).with_seed(23))
        .run(|_, _| NoCdMis::new(params));
    assert!(report.is_correct_mis(&g));
    assert!(
        report.max_energy() * 20 < report.rounds,
        "energy {} vs rounds {}",
        report.max_energy(),
        report.rounds
    );
}

/// §3.1: the beeping run of the same machine with the same seed produces
/// the *identical* energy ledger — unary communication means the channel
/// models are observationally equivalent for Algorithm 1 whenever no
/// information was carried by message contents.
#[test]
fn beeping_run_is_equivalent_to_cd_run() {
    let n = 256;
    let g = generators::gnp(n, 0.05, 6);
    let params = CdParams::for_n(n);
    let cd = Simulator::new(&g, SimConfig::new(ChannelModel::Cd).with_seed(31))
        .run(|_, _| CdMis::new(params));
    let beep = Simulator::new(&g, SimConfig::new(ChannelModel::Beeping).with_seed(31))
        .run(|_, _| CdMis::new(params));
    // CD distinguishes Heard/Collision, beeping collapses both to Beep; the
    // algorithm only tests heard_activity(), so the trajectories coincide.
    assert_eq!(cd.statuses, beep.statuses);
    assert_eq!(cd.meters, beep.meters);
    assert_eq!(cd.rounds, beep.rounds);
}

/// The Theorem-10 energy cap makes the worst-case energy deterministic.
#[test]
fn energy_cap_bounds_worst_case() {
    let n = 256;
    let g = generators::gnp(n, 0.08, 7);
    let params = NoCdParams::for_n(n, g.max_degree().max(2)).with_default_cap();
    let cap = params.energy_cap.unwrap();
    let report = Simulator::new(&g, SimConfig::new(ChannelModel::NoCd).with_seed(37))
        .run(|_, _| NoCdMis::new(params));
    // Slack: a node checks the cap at `act` time, so it can overshoot by at
    // most one sub-machine stretch; the default cap is generous enough that
    // correct runs don't trigger it at all.
    assert!(report.max_energy() <= cap + 1);
    assert!(report.is_correct_mis(&g));
}

// ---------------------------------------------------------------------------
// Conserve<P> over the algorithm zoo: the generic wrapper's awake-slot
// budget, enforced by the same harness on every member (docs/CONSERVE.md).
// ---------------------------------------------------------------------------

/// The hard per-epoch ceiling every Conserve run obeys regardless of the
/// inner protocol: at most the advertise window plus the work slice.
fn conserve_budget(
    cfg: ConserveConfig,
    vs: Option<(u64, energy_mis::netsim::RunReport)>,
) -> AwakeBudget {
    AwakeBudget {
        epoch_len: cfg.epoch_len(),
        per_epoch: cfg.adv_slots + cfg.slice,
        vs_reference: vs,
    }
}

/// Conserve<CdMis> under the CD preset: decisions are *identical* to the
/// native run, per-node energy stays within (1 + A)× native, and every
/// epoch obeys the hard ceiling.
#[test]
fn conserve_cd_budget_and_native_equality() {
    let n = 96;
    let g = generators::gnp(n, 0.06, 41);
    let params = CdParams::for_n(n);
    let cfg = ConserveConfig::for_cd(16);
    let native = Simulator::new(&g, SimConfig::new(ChannelModel::Cd).with_seed(8))
        .run(|_, _| CdMis::new(params));
    let (report, trace) = traced_run(&g, ChannelModel::Cd, 8, |_, _| {
        Conserve::new(CdMis::new(params), cfg)
    });
    assert_eq!(
        native.statuses, report.statuses,
        "CD preset must be lossless"
    );
    assert!(report.is_correct_mis(&g), "{:?}", report.verify_mis(&g));
    assert_awake_budget(
        &g,
        &report,
        &trace,
        &conserve_budget(cfg, Some((1 + cfg.adv_slots, native))),
    );
}

/// Conserve<NoCdNaive> (the Decay-based no-CD stack) under the no-CD
/// preset: wake-up detection is only whp there, so the claim is a correct
/// MIS under the hard per-epoch ceiling — no native-equality clause.
#[test]
fn conserve_decay_stack_obeys_budget() {
    let n = 48;
    let g = generators::gnp(n, 0.10, 43);
    let cd = CdParams::for_n(n);
    let sim = NaiveSimParams::for_n(n, g.max_degree().max(2));
    let cfg = ConserveConfig::for_nocd(32);
    let (report, trace) = traced_run(&g, ChannelModel::NoCd, 9, move |_, _| {
        Conserve::new(NoCdNaive::new(cd, sim), cfg)
    });
    assert!(report.is_correct_mis(&g), "{:?}", report.verify_mis(&g));
    assert_awake_budget(&g, &report, &trace, &conserve_budget(cfg, None));
}

/// Conserve<LowDegreeMis> under the no-CD preset.
#[test]
fn conserve_low_degree_obeys_budget() {
    let n = 40;
    let g = generators::gnp(n, 0.08, 47);
    let params = LowDegreeParams::for_n(n, g.max_degree().max(2));
    let cfg = ConserveConfig::for_nocd(32);
    let (report, trace) = traced_run(&g, ChannelModel::NoCd, 10, move |_, _| {
        Conserve::new(LowDegreeMis::new(params), cfg)
    });
    assert!(report.is_correct_mis(&g), "{:?}", report.verify_mis(&g));
    assert_awake_budget(&g, &report, &trace, &conserve_budget(cfg, None));
}

/// Conserve<NoCdMis> (Algorithms 2–3, the full no-CD stack) under the
/// no-CD preset.
#[test]
fn conserve_nocd_stack_obeys_budget() {
    let n = 40;
    let g = generators::gnp(n, 0.08, 53);
    let params = NoCdParams::for_n(n, g.max_degree().max(2));
    let cfg = ConserveConfig::for_nocd(32);
    let (report, trace) = traced_run(&g, ChannelModel::NoCd, 11, move |_, _| {
        Conserve::new(NoCdMis::new(params), cfg)
    });
    assert!(report.is_correct_mis(&g), "{:?}", report.verify_mis(&g));
    assert_awake_budget(&g, &report, &trace, &conserve_budget(cfg, None));
}

/// The hard ceiling survives faults: crash-stop nodes and a continuous
/// jammer cannot push any survivor past its per-epoch budget (jammed
/// advertise slots read as activity, so affected nodes fall back to
/// attending their slices — spending energy, never exceeding the ceiling).
#[test]
fn conserve_budget_holds_under_crashes_and_jamming() {
    use energy_mis::netsim::FaultPlan;
    let n = 64;
    let g = generators::gnp(n, 0.08, 59);
    let params = CdParams::for_n(n);
    let cfg = ConserveConfig::for_cd(16);
    let mut trace = VecTrace::new();
    let config = SimConfig::new(ChannelModel::Cd)
        .with_seed(12)
        .with_round_metrics()
        .with_faults(
            FaultPlan::none()
                .with_crash(0, 3)
                .with_crash(1, 20)
                .with_jammer(2),
        );
    let report = Simulator::new(&g, config)
        .run_traced(|_, _| Conserve::new(CdMis::new(params), cfg), &mut trace);
    assert_awake_budget(&g, &report, &trace, &conserve_budget(cfg, None));
}
