//! E16 — churn and recovery: self-healing MIS maintenance under
//! crash-recovery faults.
//!
//! The paper computes an MIS once on a static network; this experiment
//! measures what it takes to *keep* one under the engine's recoverable
//! fault classes — explicit down windows, recover-by crashes, seeded churn,
//! and mid-run joins — using [`RepairingMis`] around Algorithm 1 (CD) as
//! the maintenance layer and a [`ConvergencePolicy`] as the stopwatch.
//! Per grid cell:
//!
//! - **reconverged fraction** — trials whose live-subgraph MIS became and
//!   stayed correct after the last scheduled fault (`converged_at` set);
//! - **watchdog aborts** — trials the quiescence watchdog had to kill;
//! - **mean `converged_at`** — over reconverged trials only (NaN-filtered
//!   via [`Summary::of_finite`], rendered `n/a` when none reconverged);
//! - **energy inflation** — mean max-energy vs the fault-free wrapper
//!   baseline (note: churned cells also run longer, so this folds the
//!   extended monitoring horizon in with the repair work itself);
//! - **recovery events** — revivals + joins actually injected (from the
//!   cumulative round-metrics counters).
//!
//! A final instrumented run audits the wrapper's own energy ledger: total
//! revoked decisions, awake rounds spent repairing, and awake rounds spent
//! monitoring, with measured rounds-per-repair compared against the claimed
//! bound (one repair re-runs the inner O(log n)-energy schedule at most
//! once, plus a constant number of cover checks).

use crate::harness::{pct, ExpConfig, ExperimentOutput, Section};
use crate::orchestrator::{Orchestrator, UnitKey};
use mis_graphs::generators::Family;
use mis_graphs::Graph;
use mis_stats::{LineChart, Summary, Table};
use radio_mis::cd::CdMis;
use radio_mis::params::CdParams;
use radio_mis::{RepairConfig, RepairingMis};
use radio_netsim::{
    split_seed, Action, ChannelModel, ConvergencePolicy, DownTime, FaultPlan, Feedback, NodeRng,
    NodeStatus, Protocol, SimConfig, Simulator,
};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::sync::Mutex;

/// Aggregates of one fault-plan grid cell — the cached unit value.
///
/// Convergence rounds are stored as the *finite* subset (`conv` is
/// recomputed at render time) because `serde_json` cannot round-trip the
/// NaN that marks a non-reconverged trial.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Cell {
    converged: usize,
    aborted: usize,
    trials: usize,
    finite_convs: Vec<f64>,
    mean_energy: f64,
    mean_events: f64,
    cost: u64,
}

impl Cell {
    fn conv(&self) -> Summary {
        Summary::of_finite(&self.finite_convs)
    }
}

/// Cached value of the instrumented repair-ledger audit run.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct AuditSample {
    repairs: u64,
    repair_rounds: u64,
    monitor_rounds: u64,
    rounds: u64,
    cost: u64,
}

#[allow(clippy::too_many_arguments)]
fn run_cell(
    orch: &Orchestrator,
    cell_id: &str,
    graph_recipe: &str,
    g: &Graph,
    params: CdParams,
    rc: RepairConfig,
    plan: &FaultPlan,
    policy: ConvergencePolicy,
    cap: u64,
    seed_base: u64,
    trials: usize,
) -> Cell {
    orch.unit_with_cost(
        &UnitKey::new("e16", cell_id)
            .with("graph", graph_recipe)
            .with("n", g.len())
            .with("alg", "RepairingMis/CdMis")
            .with("params", format!("{params:?}/{rc:?}"))
            .with("faults", format!("{plan:?}"))
            .with("policy", format!("{policy:?}"))
            .with("cap", cap)
            .with("seed", seed_base)
            .with("trials", trials),
        || {
            let outcomes: Vec<(f64, bool, u64, u64, u64)> = (0..trials)
                .into_par_iter()
                .map(|t| {
                    let config = SimConfig::new(ChannelModel::Cd)
                        .with_seed(split_seed(seed_base, t as u64))
                        .with_faults(plan.clone())
                        .with_convergence(policy)
                        .with_max_rounds(cap)
                        .with_round_metrics();
                    let report = Simulator::new(g, config).run(|_, _| {
                        RepairingMis::new(rc, move |_rng: &mut NodeRng| CdMis::new(params))
                    });
                    let conv = report.converged_at.map_or(f64::NAN, |c| c as f64);
                    let events = report
                        .metrics_timeline()
                        .last()
                        .map_or(0, |m| u64::from(m.recovered) + u64::from(m.joined));
                    (
                        conv,
                        report.watchdog_fired,
                        report.max_energy(),
                        events,
                        report.meters.iter().map(|m| m.energy()).sum(),
                    )
                })
                .collect();
            let t = outcomes.len().max(1) as f64;
            let convs: Vec<f64> = outcomes.iter().map(|o| o.0).collect();
            Cell {
                converged: convs.iter().filter(|c| c.is_finite()).count(),
                aborted: outcomes.iter().filter(|o| o.1).count(),
                trials: outcomes.len(),
                finite_convs: convs.into_iter().filter(|c| c.is_finite()).collect(),
                mean_energy: outcomes.iter().map(|o| o.2 as f64).sum::<f64>() / t,
                mean_events: outcomes.iter().map(|o| o.3 as f64).sum::<f64>() / t,
                cost: outcomes.iter().map(|o| o.4).sum(),
            }
        },
        |c| c.cost,
    )
}

fn push_cell_row(table: &mut Table, label: &str, cell: &Cell, base_energy: f64) {
    let conv = cell.conv();
    let conv_col = if conv.count == 0 {
        "n/a".to_string()
    } else {
        format!("{:.0}", conv.mean)
    };
    table.push_row([
        label.to_string(),
        pct(cell.converged, cell.trials),
        cell.aborted.to_string(),
        conv_col,
        format!("{:.2}", cell.mean_energy / base_energy.max(1.0)),
        format!("{:.1}", cell.mean_events),
    ]);
}

const CELL_COLUMNS: [&str; 6] = [
    "fault plan",
    "reconverged",
    "watchdog",
    "mean converged_at",
    "energy×",
    "events",
];

/// Wrapper that banks the repair ledger of every [`RepairingMis`] instance
/// — including instances replaced by an engine rebuild — when it is
/// dropped.
struct Audit<'a> {
    inner: RepairingMis<CdMis, Box<dyn FnMut(&mut NodeRng) -> CdMis + Send>>,
    totals: &'a Mutex<(u64, u64, u64)>,
}

impl Drop for Audit<'_> {
    fn drop(&mut self) {
        let mut t = self.totals.lock().expect("no poisoning");
        t.0 += u64::from(self.inner.repairs);
        t.1 += self.inner.repair_rounds;
        t.2 += self.inner.monitor_rounds;
    }
}

impl Protocol for Audit<'_> {
    fn act(&mut self, round: u64, rng: &mut NodeRng) -> Action {
        self.inner.act(round, rng)
    }
    fn feedback(&mut self, round: u64, fb: Feedback, rng: &mut NodeRng) {
        self.inner.feedback(round, fb, rng);
    }
    fn status(&self) -> NodeStatus {
        self.inner.status()
    }
    fn finished(&self) -> bool {
        self.inner.finished()
    }
    fn on_restart(&mut self, round: u64, rng: &mut NodeRng) {
        self.inner.on_restart(round, rng);
    }
}

/// Runs E16.
pub fn run(cfg: &ExpConfig, orch: &Orchestrator) -> ExperimentOutput {
    let n = if cfg.quick { 24 } else { 64 };
    let trials = cfg.trials(9);
    let g = Family::GnpAvgDegree(6).generate(n, cfg.seed ^ 0x16);
    let graph_recipe = format!(
        "{}/seed={:#x}",
        Family::GnpAvgDegree(6).label(),
        cfg.seed ^ 0x16
    );
    let params = CdParams::for_n(4 * n);
    let rc = RepairConfig::for_cd(params.total_rounds());
    let e = rc.epoch_len();
    let policy = ConvergencePolicy::new(3 * e).with_quiescence(40 * e);
    let cap = 200 * e;
    let churn_until = 6 * e;
    let downtime = DownTime::Uniform {
        lo: e / 2,
        hi: 2 * e,
    };

    // Fault-free wrapper baseline: epoch 0 solves the MIS, the policy stops
    // after the stability window, and the energy is the inner schedule plus
    // a few epochs of monitoring.
    let base = run_cell(
        orch,
        "baseline",
        &graph_recipe,
        &g,
        params,
        rc,
        &FaultPlan::none(),
        policy,
        cap,
        cfg.seed ^ 0x60,
        trials,
    );
    let base_energy = base.mean_energy;

    // Axis 1: churn load, expressed as the expected number of outages per
    // node over the churn window (per-round rate = load / window).
    let loads: &[f64] = if cfg.quick {
        &[0.0, 1.0, 3.0]
    } else {
        &[0.0, 0.5, 1.0, 2.0, 4.0]
    };
    let mut churn_table = Table::new(CELL_COLUMNS);
    let mut conv_series = Vec::new();
    let mut abort_series = Vec::new();
    let mut churn_cells = Vec::new();
    for (i, &load) in loads.iter().enumerate() {
        let plan = if load == 0.0 {
            FaultPlan::none()
        } else {
            FaultPlan::none().with_churn(load / churn_until as f64, churn_until, downtime)
        };
        let cell = run_cell(
            orch,
            &format!("churn/load={load:.1}"),
            &graph_recipe,
            &g,
            params,
            rc,
            &plan,
            policy,
            cap,
            split_seed(cfg.seed ^ 0x61, i as u64),
            trials,
        );
        push_cell_row(
            &mut churn_table,
            &format!("churn ×{load:.1}"),
            &cell,
            base_energy,
        );
        conv_series.push((load, cell.converged as f64 / cell.trials.max(1) as f64));
        abort_series.push((load, cell.aborted as f64 / cell.trials.max(1) as f64));
        churn_cells.push((load, cell));
    }
    let mut churn_chart = LineChart::new(
        "reconvergence vs churn load",
        "expected outages per node",
        "fraction of trials",
    );
    churn_chart.push_series("reconverged", conv_series);
    churn_chart.push_series("watchdog aborted", abort_series);

    // Axis 2: fault kind, at a fixed moderate intensity each.
    let kinds: Vec<(String, FaultPlan)> = vec![
        (
            "1 down window".into(),
            FaultPlan::none().with_recovery(0, e + 1, 2 * e),
        ),
        (
            "3 down windows".into(),
            FaultPlan::none()
                .with_recovery(0, e + 1, 2 * e)
                .with_recovery(1, e + 2, 3 * e)
                .with_recovery(2, 2 * e, 3 * e + e / 2),
        ),
        (
            "crashes, recover-by".into(),
            FaultPlan::none()
                .with_random_crashes(n / 8, 2 * e)
                .with_recover_by(4 * e),
        ),
        (
            "3 joins".into(),
            FaultPlan::none()
                .with_join(n - 1, e / 2)
                .with_join(n - 2, e)
                .with_join(n - 3, 2 * e),
        ),
        (
            "churn ×1 + 3 joins".into(),
            FaultPlan::none()
                .with_churn(1.0 / churn_until as f64, churn_until, downtime)
                .with_join(n - 1, e / 2)
                .with_join(n - 2, e)
                .with_join(n - 3, 2 * e),
        ),
    ];
    let mut kind_table = Table::new(CELL_COLUMNS);
    let mut kind_cells = Vec::new();
    for (i, (label, plan)) in kinds.iter().enumerate() {
        let cell = run_cell(
            orch,
            &format!("kind/{label}"),
            &graph_recipe,
            &g,
            params,
            rc,
            plan,
            policy,
            cap,
            split_seed(cfg.seed ^ 0x62, i as u64),
            trials,
        );
        push_cell_row(&mut kind_table, label, &cell, base_energy);
        kind_cells.push((label.clone(), cell));
    }

    // Repair energy audit: one instrumented churn run, banking every
    // instance's ledger (including pre-revival instances) on drop.
    let audit_plan = FaultPlan::none().with_churn(2.0 / churn_until as f64, churn_until, downtime);
    let audit_config = SimConfig::new(ChannelModel::Cd)
        .with_seed(cfg.seed ^ 0x63)
        .with_faults(audit_plan)
        .with_convergence(policy)
        .with_max_rounds(cap);
    let audit = orch.unit_with_cost(
        &UnitKey::new("e16", "audit/churn")
            .with("graph", &graph_recipe)
            .with("n", n)
            .with("alg", "RepairingMis/CdMis/audit")
            .with("params", format!("{params:?}/{rc:?}"))
            .with("sim", audit_config.fingerprint()),
        || {
            let totals = Mutex::new((0u64, 0u64, 0u64));
            let report = Simulator::new(&g, audit_config.clone()).run(|_, _| Audit {
                inner: RepairingMis::new(
                    rc,
                    Box::new(move |_rng: &mut NodeRng| CdMis::new(params)),
                ),
                totals: &totals,
            });
            let (repairs, repair_rounds, monitor_rounds) = *totals.lock().expect("no poisoning");
            AuditSample {
                repairs,
                repair_rounds,
                monitor_rounds,
                rounds: report.rounds,
                cost: report.meters.iter().map(|m| m.energy()).sum(),
            }
        },
        |a| a.cost,
    );
    let (repairs, repair_rounds, monitor_rounds) =
        (audit.repairs, audit.repair_rounds, audit.monitor_rounds);
    // Claimed bound per repair: one inner-schedule re-run (O(log n) awake
    // rounds — measured as the fault-free mean energy of plain CdMis) plus
    // miss_threshold + 1 cover checks.
    let plain_config = SimConfig::new(ChannelModel::Cd).with_seed(cfg.seed ^ 0x64);
    let plain = orch.report(
        &UnitKey::new("e16", "audit/plain-cd")
            .with("graph", &graph_recipe)
            .with("n", n)
            .with("alg", "CdMis")
            .with("params", format!("{params:?}"))
            .with("sim", plain_config.fingerprint()),
        || Simulator::new(&g, plain_config.clone()).run(|_, _| CdMis::new(params)),
    );
    let claimed_per_repair = plain.meters.iter().map(|m| m.energy() as f64).sum::<f64>()
        / plain.len().max(1) as f64
        + f64::from(rc.miss_threshold + 1);
    let measured_per_repair = if repairs == 0 {
        f64::NAN
    } else {
        repair_rounds as f64 / repairs as f64
    };
    let epochs_elapsed = (audit.rounds / e).max(1);
    let mut audit_table = Table::new(["quantity", "value"]);
    audit_table.push_row(["revoked decisions (repairs)".into(), repairs.to_string()]);
    audit_table.push_row([
        "repair awake rounds (total)".into(),
        repair_rounds.to_string(),
    ]);
    audit_table.push_row([
        "measured awake rounds / repair".into(),
        if measured_per_repair.is_nan() {
            "n/a".to_string()
        } else {
            format!("{measured_per_repair:.1}")
        },
    ]);
    audit_table.push_row([
        "claimed bound / repair".into(),
        format!("{claimed_per_repair:.1}"),
    ]);
    audit_table.push_row([
        "monitor awake rounds / node / epoch".into(),
        format!(
            "{:.2}",
            monitor_rounds as f64 / (n as f64 * epochs_elapsed as f64)
        ),
    ]);

    // Findings.
    let finite_ok = churn_cells
        .iter()
        .map(|(_, c)| c)
        .chain(kind_cells.iter().map(|(_, c)| c))
        .all(|c| c.converged == c.trials);
    let worst_churn = churn_cells.last();
    let mut findings = vec![
        format!(
            "every finite-churn cell reports converged_at: {}",
            if finite_ok {
                "yes — all trials of all cells reconverged under the fault-aware \
                 live-subgraph check"
            } else {
                "NO — at least one trial failed to reconverge (see watchdog column)"
            }
        ),
        format!(
            "the repair layer's measured cost per revoked decision is {} awake rounds \
             vs a claimed bound of {:.1} (one inner-schedule re-run plus \
             {} cover checks); monitoring costs {:.2} awake rounds per node per \
             {e}-round epoch",
            if measured_per_repair.is_nan() {
                "n/a (no repairs triggered)".to_string()
            } else {
                format!("{measured_per_repair:.1}")
            },
            claimed_per_repair,
            rc.miss_threshold + 1,
            monitor_rounds as f64 / (n as f64 * epochs_elapsed as f64),
        ),
        "energy inflation under churn folds two effects together: the repair work \
         itself and the longer maintenance horizon (churned runs monitor until the \
         policy's stability window clears after the last revival)"
            .into(),
    ];
    if let Some((load, cell)) = worst_churn {
        let conv = cell.conv();
        findings.push(format!(
            "at churn ×{load:.1} ({:.1} revivals+joins per trial) the run still \
             reconverges in {}/{} trials, converging on average at round {}",
            cell.mean_events,
            cell.converged,
            cell.trials,
            if conv.count == 0 {
                "n/a".to_string()
            } else {
                format!("{:.0}", conv.mean)
            }
        ));
    }

    ExperimentOutput {
        id: "e16",
        title: "churn and recovery: self-healing MIS maintenance".into(),
        claim: "No claim in the paper — its network is static. This experiment \
                measures the cost of *maintaining* the paper's MIS under \
                crash-recovery, churn, and join faults with the RepairingMis \
                wrapper (cover/duel/repair epochs) around Algorithm 1."
            .into(),
        sections: vec![
            Section {
                caption: format!(
                    "churn-load sweep (gnp-d6, n = {n}, {trials} trials, epoch {e} rounds, \
                     churn window {churn_until} rounds, energy vs fault-free wrapper \
                     baseline {base_energy:.0})"
                ),
                table: churn_table,
            },
            Section {
                caption: "fault-kind grid (explicit windows, recover-by crashes, joins, \
                          churn + joins)"
                    .into(),
                table: kind_table,
            },
            Section {
                caption: "repair energy audit (one instrumented churn ×2 run; ledger \
                          banked per protocol instance on drop)"
                    .into(),
                table: audit_table,
            },
        ],
        findings,
        charts: vec![("e16_churn_sweep".into(), churn_chart)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_reconverges_every_cell() {
        let out = run(&ExpConfig::quick(16), &Orchestrator::ephemeral());
        assert_eq!(out.id, "e16");
        assert_eq!(out.sections.len(), 3);
        assert_eq!(out.charts.len(), 1);
        // One row per churn load, one per fault kind, five audit rows.
        assert_eq!(out.sections[0].table.len(), 3);
        assert_eq!(out.sections[1].table.len(), 5);
        assert_eq!(out.sections[2].table.len(), 5);
        // The acceptance gate: every finite-churn cell reported converged_at.
        assert!(
            out.findings.iter().any(|f| f.contains("yes — all trials")),
            "findings: {:?}",
            out.findings
        );
    }
}
