//! Multi-trial experiment runner.
//!
//! Experiments repeat each configuration over many independently seeded
//! trials. Trials are embarrassingly parallel; [`run_trials`] fans them out
//! with rayon. Parallelism cannot affect results: trial `i` always uses
//! master seed `split_seed(base_seed, i)`. Every other config field —
//! including the [`EngineMode`](crate::EngineMode) scheduling backend —
//! is inherited unchanged from the base config, and since the backends
//! are byte-equivalent, a sweep's results never depend on the mode.
//!
//! # Hardening
//!
//! A long sweep must survive its worst trial. Three mechanisms, all opt-in
//! or automatic:
//!
//! - **Panic isolation**: every trial runs under
//!   [`std::panic::catch_unwind`]. A panicking protocol (or a panicking
//!   engine assertion) is recorded as a [`TrialFailure`] — seed, fault
//!   plan, and panic payload — in [`TrialSet::failures`] instead of tearing
//!   down the rayon pool and losing the other trials' work. Summary
//!   statistics are computed over the successful trials only.
//! - **Wall-clock budget** ([`run_trials_budgeted`]): trials whose run time
//!   exceeds the budget are recorded as failures. The check is
//!   cooperative — it happens when the trial's (round-bounded) run
//!   returns — so the hard bound on a runaway trial remains
//!   [`SimConfig::max_rounds`] and the
//!   [`ConvergencePolicy`](crate::ConvergencePolicy) quiescence watchdog;
//!   the wall budget converts "too slow" into data instead of a hung sweep.
//! - **Checkpointed resume** ([`run_trials_resumable`]): each finished
//!   trial is appended to a JSONL checkpoint file as it completes, so an
//!   interrupted sweep (SIGKILL, power loss) loses at most the trials that
//!   were mid-flight; re-running with the same file skips the recorded
//!   trials and fills in only the missing ones.

use crate::engine::{SimConfig, Simulator};
use crate::fault::FaultPlan;
use crate::protocol::{NodeRng, Protocol};
use crate::report::RunReport;
use crate::rng::split_seed;
use mis_graphs::{Graph, NodeId};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::io::{self, BufRead, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One trial's outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrialOutcome {
    /// Index of the trial within its [`TrialSet`].
    pub trial: usize,
    /// Master seed the trial ran with.
    pub seed: u64,
    /// The full run report.
    pub report: RunReport,
    /// Whether the output was verified to be an MIS of the input graph.
    pub correct: bool,
}

/// A trial that did not produce a report: its protocol (or the engine's
/// contract checks) panicked, or it blew its wall-clock budget. Everything
/// needed to reproduce the failure deterministically is recorded.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrialFailure {
    /// Index of the trial within its [`TrialSet`].
    pub trial: usize,
    /// Master seed the trial ran with — rerun with this seed to reproduce.
    pub seed: u64,
    /// The fault plan the trial ran under.
    pub faults: FaultPlan,
    /// The panic payload (or the budget-violation description).
    pub panic: String,
}

/// Outcomes of a batch of trials of one configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrialSet {
    /// Per-trial outcomes of the trials that completed, in trial order.
    pub outcomes: Vec<TrialOutcome>,
    /// Trials that panicked or blew their budget, in trial order. Empty on
    /// a healthy sweep; absent from (and defaulted when reading) records
    /// written before failure tracking existed.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub failures: Vec<TrialFailure>,
}

impl TrialSet {
    /// Number of *successful* trials (see [`TrialSet::failed`] for the
    /// rest).
    pub fn len(&self) -> usize {
        self.outcomes.len()
    }

    /// Whether no trial succeeded.
    pub fn is_empty(&self) -> bool {
        self.outcomes.is_empty()
    }

    /// Number of failed trials.
    pub fn failed(&self) -> usize {
        self.failures.len()
    }

    /// Total trials attempted (successes + failures).
    pub fn attempted(&self) -> usize {
        self.outcomes.len() + self.failures.len()
    }

    /// Fraction of *successful* trials whose output verified as an MIS.
    ///
    /// Returns [`f64::NAN`] when no trial succeeded: "no data" must not
    /// masquerade as a measured 0% success rate.
    pub fn success_rate(&self) -> f64 {
        if self.outcomes.is_empty() {
            return f64::NAN;
        }
        self.outcomes.iter().filter(|o| o.correct).count() as f64 / self.outcomes.len() as f64
    }

    /// Per-trial energy complexities (max awake rounds) of the successful
    /// trials.
    pub fn energies(&self) -> Vec<f64> {
        self.outcomes
            .iter()
            .map(|o| o.report.max_energy() as f64)
            .collect()
    }

    /// Per-trial node-averaged energies of the successful trials.
    pub fn avg_energies(&self) -> Vec<f64> {
        self.outcomes
            .iter()
            .map(|o| o.report.avg_energy())
            .collect()
    }

    /// Per-trial round complexities of the successful trials.
    pub fn rounds(&self) -> Vec<f64> {
        self.outcomes
            .iter()
            .map(|o| o.report.rounds as f64)
            .collect()
    }

    /// Mean of per-trial energy complexities ([`f64::NAN`] when no trial
    /// succeeded).
    pub fn mean_energy(&self) -> f64 {
        mean(&self.energies())
    }

    /// Mean of per-trial round complexities ([`f64::NAN`] when no trial
    /// succeeded).
    pub fn mean_rounds(&self) -> f64 {
        mean(&self.rounds())
    }

    /// Max energy over all successful trials (worst case observed).
    pub fn worst_energy(&self) -> u64 {
        self.outcomes
            .iter()
            .map(|o| o.report.max_energy())
            .max()
            .unwrap_or(0)
    }
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        f64::NAN
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs trial `t` in isolation: panics become [`TrialFailure`]s, and a
/// trial that outlives `budget` is demoted to a failure after the fact.
fn run_one<P, F>(
    graph: &Graph,
    base: &SimConfig,
    t: usize,
    budget: Option<Duration>,
    factory: &F,
) -> Result<TrialOutcome, TrialFailure>
where
    P: Protocol + Send,
    F: Fn(NodeId, &mut NodeRng) -> P + Sync,
{
    let seed = split_seed(base.seed, t as u64);
    let config = SimConfig {
        seed,
        ..base.clone()
    };
    let failure = |panic: String| TrialFailure {
        trial: t,
        seed,
        faults: base.faults.clone(),
        panic,
    };
    let started = Instant::now();
    match catch_unwind(AssertUnwindSafe(|| {
        Simulator::new(graph, config).run(|v, rng| factory(v, rng))
    })) {
        Ok(report) => {
            let elapsed = started.elapsed();
            if let Some(b) = budget {
                if elapsed > b {
                    return Err(failure(format!(
                        "exceeded wall-clock budget: ran {elapsed:.1?} of {b:.1?} allowed"
                    )));
                }
            }
            let correct = report.is_correct_mis(graph);
            Ok(TrialOutcome {
                trial: t,
                seed,
                report,
                correct,
            })
        }
        Err(payload) => Err(failure(panic_message(payload))),
    }
}

fn collect_set(results: Vec<Result<TrialOutcome, TrialFailure>>) -> TrialSet {
    let mut outcomes = Vec::new();
    let mut failures = Vec::new();
    for r in results {
        match r {
            Ok(o) => outcomes.push(o),
            Err(f) => failures.push(f),
        }
    }
    TrialSet { outcomes, failures }
}

/// Runs `trials` independently seeded runs of the protocol on `graph` and
/// verifies each output. Panicking trials are isolated and recorded in
/// [`TrialSet::failures`] (module docs).
///
/// `factory` must be callable from multiple threads; it is invoked once per
/// (trial, node).
pub fn run_trials<P, F>(graph: &Graph, base: SimConfig, trials: usize, factory: F) -> TrialSet
where
    P: Protocol + Send,
    F: Fn(NodeId, &mut NodeRng) -> P + Sync,
{
    let results: Vec<_> = (0..trials)
        .into_par_iter()
        .map(|t| run_one(graph, &base, t, None, &factory))
        .collect();
    collect_set(results)
}

/// [`run_trials`] with a per-trial wall-clock budget: a trial that takes
/// longer is recorded as a [`TrialFailure`] instead of an outcome. The
/// check is cooperative (module docs): it fires when the trial's
/// round-bounded run returns, not mid-run.
pub fn run_trials_budgeted<P, F>(
    graph: &Graph,
    base: SimConfig,
    trials: usize,
    budget: Duration,
    factory: F,
) -> TrialSet
where
    P: Protocol + Send,
    F: Fn(NodeId, &mut NodeRng) -> P + Sync,
{
    let results: Vec<_> = (0..trials)
        .into_par_iter()
        .map(|t| run_one(graph, &base, t, Some(budget), &factory))
        .collect();
    collect_set(results)
}

/// One line of a resume checkpoint file.
#[derive(Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
enum CheckpointRecord {
    /// A completed trial.
    Outcome(TrialOutcome),
    /// A failed (panicked / over-budget) trial.
    Failure(TrialFailure),
}

impl CheckpointRecord {
    fn trial(&self) -> usize {
        match self {
            CheckpointRecord::Outcome(o) => o.trial,
            CheckpointRecord::Failure(f) => f.trial,
        }
    }
}

/// Reads the surviving records of a (possibly truncated) checkpoint file.
///
/// A process killed mid-write leaves at most one partial trailing line;
/// parsing stops at the first malformed line, so everything before it is
/// recovered and anything after it is re-run rather than trusted.
fn read_checkpoint(path: &Path) -> io::Result<BTreeMap<usize, CheckpointRecord>> {
    let mut done = BTreeMap::new();
    let file = match std::fs::File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(done),
        Err(e) => return Err(e),
    };
    for line in io::BufReader::new(file).lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        match serde_json::from_str::<CheckpointRecord>(&line) {
            Ok(rec) => {
                done.entry(rec.trial()).or_insert(rec);
            }
            Err(_) => break,
        }
    }
    Ok(done)
}

/// [`run_trials`] with crash-safe checkpointing: every finished trial is
/// appended to the JSONL file at `checkpoint` as soon as it completes, and
/// trials already recorded there are *not* re-run — their recorded results
/// are merged into the returned [`TrialSet`] instead.
///
/// Interrupting the sweep (Ctrl-C, SIGKILL, power loss) therefore loses at
/// most the trials that were mid-flight; invoking the same sweep again
/// with the same `checkpoint` path resumes where it left off. Determinism
/// makes the merge sound: trial `t` always runs with seed
/// `split_seed(base.seed, t)`, so a recorded trial is byte-identical to
/// what a re-run would produce.
///
/// `budget` is the optional per-trial wall-clock budget of
/// [`run_trials_budgeted`].
///
/// # Errors
///
/// Propagates I/O errors from reading or appending the checkpoint file.
/// Trial results are never a source of errors — panics and budget
/// violations land in [`TrialSet::failures`].
pub fn run_trials_resumable<P, F>(
    graph: &Graph,
    base: SimConfig,
    trials: usize,
    budget: Option<Duration>,
    checkpoint: &Path,
    factory: F,
) -> io::Result<TrialSet>
where
    P: Protocol + Send,
    F: Fn(NodeId, &mut NodeRng) -> P + Sync,
{
    let mut done = read_checkpoint(checkpoint)?;
    done.retain(|&t, _| t < trials);
    let pending: Vec<usize> = (0..trials).filter(|t| !done.contains_key(t)).collect();

    let file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(checkpoint)?;
    let sink = Mutex::new(file);
    let fresh: Vec<io::Result<CheckpointRecord>> = pending
        .into_par_iter()
        .map(|t| {
            let rec = match run_one(graph, &base, t, budget, &factory) {
                Ok(o) => CheckpointRecord::Outcome(o),
                Err(f) => CheckpointRecord::Failure(f),
            };
            let mut line = serde_json::to_string(&rec).expect("checkpoint records serialize");
            line.push('\n');
            let mut file = sink.lock().expect("checkpoint writer lock");
            file.write_all(line.as_bytes())?;
            file.flush()?;
            Ok(rec)
        })
        .collect();
    for rec in fresh {
        let rec = rec?;
        done.insert(rec.trial(), rec);
    }

    let mut outcomes = Vec::new();
    let mut failures = Vec::new();
    for (_, rec) in done {
        match rec {
            CheckpointRecord::Outcome(o) => outcomes.push(o),
            CheckpointRecord::Failure(f) => failures.push(f),
        }
    }
    Ok(TrialSet { outcomes, failures })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Action, ChannelModel, Feedback, NodeStatus};
    use mis_graphs::generators;
    use rand::SeedableRng;

    /// Everyone transmits in round 0 and decides InMis — an MIS only on the
    /// empty graph.
    #[derive(Default)]
    struct Instant {
        done: bool,
    }
    impl Protocol for Instant {
        fn act(&mut self, _round: u64, _rng: &mut NodeRng) -> Action {
            Action::Transmit(crate::model::Message::unary())
        }
        fn feedback(&mut self, _round: u64, _fb: Feedback, _rng: &mut NodeRng) {
            self.done = true;
        }
        fn status(&self) -> NodeStatus {
            NodeStatus::InMis
        }
        fn finished(&self) -> bool {
            self.done
        }
    }

    /// Panics (from `act`) when constructed with an odd trial seed's low
    /// bit — used via explicit flagging below instead to stay seed-exact.
    struct PanicOn {
        panic: bool,
        done: bool,
    }
    impl Protocol for PanicOn {
        fn act(&mut self, _round: u64, _rng: &mut NodeRng) -> Action {
            assert!(!self.panic, "deliberate test panic");
            Action::Transmit(crate::model::Message::unary())
        }
        fn feedback(&mut self, _round: u64, _fb: Feedback, _rng: &mut NodeRng) {
            self.done = true;
        }
        fn status(&self) -> NodeStatus {
            NodeStatus::InMis
        }
        fn finished(&self) -> bool {
            self.done
        }
    }

    #[test]
    fn trials_verify_against_graph() {
        let empty = generators::empty(5);
        let set = run_trials(&empty, SimConfig::new(ChannelModel::Cd), 8, |_, _| {
            Instant::default()
        });
        assert_eq!(set.len(), 8);
        assert_eq!(set.success_rate(), 1.0);
        assert_eq!(set.worst_energy(), 1);

        let edge = generators::path(2);
        let set = run_trials(&edge, SimConfig::new(ChannelModel::Cd), 4, |_, _| {
            Instant::default()
        });
        assert_eq!(set.success_rate(), 0.0); // both endpoints joined
    }

    #[test]
    fn trial_seeds_are_distinct_and_deterministic() {
        let g = generators::empty(2);
        let a = run_trials(
            &g,
            SimConfig::new(ChannelModel::Cd).with_seed(5),
            4,
            |_, _| Instant::default(),
        );
        let b = run_trials(
            &g,
            SimConfig::new(ChannelModel::Cd).with_seed(5),
            4,
            |_, _| Instant::default(),
        );
        assert_eq!(a, b);
        let seeds: std::collections::HashSet<u64> = a.outcomes.iter().map(|o| o.seed).collect();
        assert_eq!(seeds.len(), 4);
    }

    #[test]
    fn summary_statistics() {
        let g = generators::empty(3);
        let set = run_trials(&g, SimConfig::new(ChannelModel::Cd), 3, |_, _| {
            Instant::default()
        });
        assert_eq!(set.mean_energy(), 1.0);
        assert_eq!(set.mean_rounds(), 1.0);
        assert_eq!(set.energies().len(), 3);
        assert_eq!(set.avg_energies(), vec![1.0; 3]);
        assert!(!set.is_empty());
        assert_eq!(set.failed(), 0);
        assert_eq!(set.attempted(), 3);
    }

    #[test]
    fn empty_trialset_summaries_are_nan_not_zero() {
        // An empty set has no data: a 0.0 here would read as "every trial
        // failed" / "zero energy", which is a different (wrong) claim.
        let set = TrialSet {
            outcomes: vec![],
            failures: vec![],
        };
        assert!(set.success_rate().is_nan());
        assert!(set.mean_energy().is_nan());
        assert!(set.mean_rounds().is_nan());
        assert_eq!(set.worst_energy(), 0);
    }

    #[test]
    fn trials_propagate_fault_plans() {
        use crate::fault::FaultPlan;
        // Path 0-1: node 1 crashes at round 0 in every trial; node 0 joins
        // alone. With node 1 faulty the single-node set {0} is a correct
        // MIS of the induced survivor subgraph.
        let g = generators::path(2);
        let config =
            SimConfig::new(ChannelModel::Cd).with_faults(FaultPlan::none().with_crash(1, 0));
        let set = run_trials(&g, config, 4, |_, _| Instant::default());
        assert_eq!(set.len(), 4);
        assert_eq!(set.success_rate(), 1.0);
        for o in &set.outcomes {
            assert_eq!(o.report.faulty, vec![false, true]);
        }
    }

    /// Satellite regression: one deliberately panicking trial (trial 2,
    /// recognized by its seed-derived node-0 RNG stream) must not poison
    /// the sweep — it lands in `failures` with its seed and fault plan,
    /// every other trial's outcome is intact, and summaries are computed
    /// over the survivors.
    #[test]
    fn panicking_trial_lands_in_failures_with_seed_and_plan() {
        use crate::fault::FaultPlan;
        use std::sync::atomic::{AtomicUsize, Ordering};

        let g = generators::empty(4);
        let plan = FaultPlan::none().with_crash(3, 50);
        let base = SimConfig::new(ChannelModel::Cd)
            .with_seed(21)
            .with_faults(plan.clone());
        let bad_seed = split_seed(21, 2);
        // The factory sees (node, rng) but not the trial index; recover it
        // from the node-0 RNG stream, which is seeded from the trial seed.
        let hits = AtomicUsize::new(0);
        let set = run_trials(&g, base, 5, |v, rng| {
            use rand::RngCore;
            let mut probe = NodeRng::seed_from_u64(split_seed(bad_seed, v as u64));
            let is_bad = probe.next_u64() == rng.clone().next_u64();
            if is_bad {
                hits.fetch_add(1, Ordering::Relaxed);
            }
            PanicOn {
                panic: is_bad,
                done: false,
            }
        });
        assert_eq!(hits.load(Ordering::Relaxed), 4, "all 4 nodes of trial 2");
        assert_eq!(set.len(), 4, "four trials survived");
        assert_eq!(set.failed(), 1);
        assert_eq!(set.attempted(), 5);
        let f = &set.failures[0];
        assert_eq!(f.trial, 2);
        assert_eq!(f.seed, bad_seed);
        assert_eq!(f.faults, plan);
        assert!(f.panic.contains("deliberate test panic"), "{}", f.panic);
        // Outcomes are intact and in trial order, skipping the failure.
        let trials: Vec<usize> = set.outcomes.iter().map(|o| o.trial).collect();
        assert_eq!(trials, vec![0, 1, 3, 4]);
        // Summaries are over the four survivors, not NaN and not diluted.
        assert_eq!(set.success_rate(), 1.0);
        assert_eq!(set.mean_energy(), 1.0);
    }

    #[test]
    fn all_failing_set_has_nan_summaries() {
        let g = generators::empty(2);
        let set = run_trials(&g, SimConfig::new(ChannelModel::Cd), 3, |_, _| PanicOn {
            panic: true,
            done: false,
        });
        assert!(set.is_empty());
        assert_eq!(set.failed(), 3);
        assert!(set.success_rate().is_nan());
        assert!(set.mean_energy().is_nan());
        assert!(set.mean_rounds().is_nan());
    }

    #[test]
    fn budgeted_runs_demote_slow_trials() {
        let g = generators::empty(2);
        // Zero budget: every trial exceeds it (cooperatively, post-run).
        let set = run_trials_budgeted(
            &g,
            SimConfig::new(ChannelModel::Cd),
            3,
            Duration::from_secs(0),
            |_, _| Instant::default(),
        );
        assert_eq!(set.failed(), 3);
        assert!(set.failures[0].panic.contains("wall-clock budget"));
        // A generous budget keeps everything.
        let set = run_trials_budgeted(
            &g,
            SimConfig::new(ChannelModel::Cd),
            3,
            Duration::from_secs(3600),
            |_, _| Instant::default(),
        );
        assert_eq!(set.failed(), 0);
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn resumable_checkpoints_and_resumes() {
        let g = generators::empty(3);
        let dir = std::env::temp_dir().join(format!(
            "netsim-resume-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sweep.jsonl");
        let _ = std::fs::remove_file(&path);

        let base = SimConfig::new(ChannelModel::Cd).with_seed(9);
        // First pass: only 3 of the eventual 6 trials.
        let first =
            run_trials_resumable(&g, base.clone(), 3, None, &path, |_, _| Instant::default())
                .unwrap();
        assert_eq!(first.len(), 3);
        let lines_after_first = std::fs::read_to_string(&path).unwrap().lines().count();
        assert_eq!(lines_after_first, 3);

        // Second pass asks for 6: the 3 recorded trials are not re-run.
        let second =
            run_trials_resumable(&g, base.clone(), 6, None, &path, |_, _| Instant::default())
                .unwrap();
        assert_eq!(second.len(), 6);
        assert_eq!(
            std::fs::read_to_string(&path).unwrap().lines().count(),
            6,
            "only the 3 new trials were appended"
        );
        // The merged set is identical to a fresh full run.
        let fresh = run_trials(&g, base.clone(), 6, |_, _| Instant::default());
        assert_eq!(second, fresh);

        // A truncated trailing line (killed mid-write) is tolerated: the
        // damaged trial is re-run, the intact ones are kept.
        let mut contents = std::fs::read_to_string(&path).unwrap();
        contents.truncate(contents.len() - 7); // damage the last line
        std::fs::write(&path, &contents).unwrap();
        let third =
            run_trials_resumable(&g, base, 6, None, &path, |_, _| Instant::default()).unwrap();
        assert_eq!(third, fresh);

        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn resumable_records_failures_and_does_not_retry_them() {
        let g = generators::empty(2);
        let dir = std::env::temp_dir().join(format!(
            "netsim-resume-fail-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sweep.jsonl");
        let _ = std::fs::remove_file(&path);

        let base = SimConfig::new(ChannelModel::Cd).with_seed(3);
        let set = run_trials_resumable(&g, base.clone(), 2, None, &path, |_, _| PanicOn {
            panic: true,
            done: false,
        })
        .unwrap();
        assert_eq!(set.failed(), 2);
        // Resuming sees the recorded failures and runs nothing new — the
        // factory would succeed now, but the records win.
        let resumed = run_trials_resumable(&g, base, 2, None, &path, |_, _| PanicOn {
            panic: false,
            done: false,
        })
        .unwrap();
        assert_eq!(resumed.failed(), 2);
        assert_eq!(resumed.len(), 0);

        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir(&dir);
    }
}
