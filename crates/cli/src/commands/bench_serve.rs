//! `mis-sim bench-serve` — the load generator for the `mis-serve` job
//! daemon (docs/SERVE.md).
//!
//! Two passes over the same job matrix: a **cold** pass where every
//! (client, job) pair submits a distinct seed — so every submission must
//! miss the content-addressed cache and run the simulator — and a
//! **warm** pass that re-submits the identical requests, which must all
//! hit. The report prints both hit rates and client-observed latency
//! quantiles side by side; CI asserts the `0%`/`100%` lines verbatim.

use crate::args::BenchServeOpts;
use mis_serve::{JobRequest, ServeClient, ServeConfig, ServeHandle, Server};
use std::time::{Duration, Instant};

/// Per-submission observation from a client thread.
struct Sample {
    hit: bool,
    latency_ms: f64,
}

/// An in-process daemon: its shutdown handle and the thread running it.
type LocalServer = (
    ServeHandle,
    std::thread::JoinHandle<std::io::Result<mis_serve::ServeSummary>>,
);

/// Runs the benchmark and renders the report.
///
/// # Errors
///
/// Returns a message when the daemon cannot be reached, a submission is
/// rejected, or a job fails.
pub fn execute(opts: &BenchServeOpts) -> Result<String, String> {
    // Resolve the target: an external daemon, or an in-process server on
    // a fresh (or caller-chosen) cache directory.
    let mut local: Option<LocalServer> = None;
    let mut scratch: Option<std::path::PathBuf> = None;
    let addr = match &opts.addr {
        Some(addr) => addr.clone(),
        None => {
            let cache_dir = match &opts.cache_dir {
                Some(dir) => std::path::PathBuf::from(dir),
                None => {
                    let dir = std::env::temp_dir()
                        .join(format!("mis-serve-bench-{}", std::process::id()));
                    let _ = std::fs::remove_dir_all(&dir);
                    scratch = Some(dir.clone());
                    dir
                }
            };
            let cfg = ServeConfig {
                addr: "127.0.0.1:0".to_string(),
                cache_dir: Some(cache_dir),
                workers: 4,
                queue_capacity: (opts.clients * opts.jobs * 2).max(64),
            };
            let server = Server::bind(cfg).map_err(|e| format!("bench-serve: bind: {e}"))?;
            let addr = server
                .local_addr()
                .map_err(|e| format!("bench-serve: local addr: {e}"))?
                .to_string();
            let handle = server.handle();
            let daemon = std::thread::spawn(move || server.run());
            local = Some((handle, daemon));
            addr
        }
    };

    let result = run_passes(opts, &addr);

    if let Some((handle, daemon)) = local {
        handle.shutdown();
        daemon
            .join()
            .map_err(|_| "bench-serve: server thread panicked".to_string())?
            .map_err(|e| format!("bench-serve: server error: {e}"))?;
    }
    if let Some(dir) = scratch {
        let _ = std::fs::remove_dir_all(&dir);
    }
    result
}

fn run_passes(opts: &BenchServeOpts, addr: &str) -> Result<String, String> {
    let total = opts.clients * opts.jobs;
    let cold = fan_out(opts, addr)?;
    let warm = fan_out(opts, addr)?;

    let mut out = format!(
        "bench-serve: {} clients × {} jobs = {} submissions ({} on {}, n={}, trials={}) via {addr}\n",
        opts.clients,
        opts.jobs,
        total,
        opts.algorithm.label(),
        opts.family.label(),
        opts.n,
        opts.trials,
    );
    out.push_str(&pass_line("cold pass", &cold));
    out.push_str(&pass_line("warm pass", &warm));
    let cold_p50 = percentile(&cold, 0.50);
    let warm_p50 = percentile(&warm, 0.50);
    if warm_p50 > 0.0 {
        out.push_str(&format!(
            "speedup: warm p50 is {:.1}× faster than cold p50\n",
            cold_p50 / warm_p50
        ));
    }
    Ok(out)
}

/// One pass: every client thread submits its whole job slice and waits
/// each job to completion, all clients concurrently.
fn fan_out(opts: &BenchServeOpts, addr: &str) -> Result<Vec<Sample>, String> {
    let handles: Vec<_> = (0..opts.clients)
        .map(|c| {
            let opts = opts.clone();
            let addr = addr.to_string();
            std::thread::spawn(move || -> Result<Vec<Sample>, String> {
                let client = ServeClient::new(addr).with_client_id(format!("bench-c{c}"));
                let mut samples = Vec::with_capacity(opts.jobs);
                for j in 0..opts.jobs {
                    let request = JobRequest::Sim {
                        algorithm: opts.algorithm.label().to_string(),
                        family: opts.family.label().to_string(),
                        n: opts.n,
                        seed: opts.seed + (c * opts.jobs + j) as u64,
                        trials: opts.trials,
                        trace: false,
                        threads: 1,
                    };
                    let started = Instant::now();
                    let view = client.submit_and_wait(&request, Duration::from_secs(600))?;
                    let latency_ms = started.elapsed().as_secs_f64() * 1e3;
                    if let Some(error) = view.error {
                        return Err(format!("job {} failed: {error}", view.id));
                    }
                    samples.push(Sample {
                        hit: view.hit,
                        latency_ms,
                    });
                }
                Ok(samples)
            })
        })
        .collect();

    let mut samples = Vec::new();
    for handle in handles {
        let slice = handle
            .join()
            .map_err(|_| "bench-serve: client thread panicked".to_string())??;
        samples.extend(slice);
    }
    Ok(samples)
}

fn pass_line(label: &str, samples: &[Sample]) -> String {
    let hits = samples.iter().filter(|s| s.hit).count();
    let total = samples.len().max(1);
    let rate = hits * 100 / total;
    format!(
        "{label}: hit rate {rate}% ({hits}/{}) · p50 {:.1}ms · p90 {:.1}ms · max {:.1}ms\n",
        samples.len(),
        percentile(samples, 0.50),
        percentile(samples, 0.90),
        percentile(samples, 1.00),
    )
}

/// Latency percentile over a sample set (nearest-rank; 1.0 = max).
fn percentile(samples: &[Sample], q: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut latencies: Vec<f64> = samples.iter().map(|s| s.latency_ms).collect();
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let rank = ((latencies.len() as f64 * q).ceil() as usize).clamp(1, latencies.len());
    latencies[rank - 1]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::{Algorithm, BenchServeOpts};
    use mis_graphs::generators::Family;

    /// End-to-end over a real socket: the cold pass misses everything,
    /// the warm pass hits everything — the exact lines CI greps for.
    #[test]
    fn cold_then_warm_hit_rates_are_0_then_100() {
        let opts = BenchServeOpts {
            addr: None,
            clients: 3,
            jobs: 2,
            algorithm: Algorithm::Cd,
            family: Family::Path,
            n: 24,
            seed: 400,
            trials: 1,
            cache_dir: None,
        };
        let report = execute(&opts).unwrap();
        assert!(
            report.contains("cold pass: hit rate 0% (0/6)"),
            "report was:\n{report}"
        );
        assert!(
            report.contains("warm pass: hit rate 100% (6/6)"),
            "report was:\n{report}"
        );
        assert!(report.contains("speedup:"), "report was:\n{report}");
    }
}
