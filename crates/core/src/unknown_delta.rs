//! Unknown-Δ execution via doubly-exponential guessing (§1.1, footnote 1).
//!
//! When no degree bound is known, the paper sketches running the no-CD
//! algorithm with guesses `Δ_i = 2^(2^i)`: too-small guesses may leave
//! portions of the output non-independent; affected vertices must detect
//! this and retry with the next guess. The guessing costs an O(loglog n)
//! factor in energy and O(1) in rounds, because the epoch lengths grow
//! geometrically in `log Δ_i` so the final (valid) epoch dominates.
//!
//! The paper omits the details ("sufficiently complicated"); this module
//! implements a faithful-but-pragmatic reconstruction, documented in
//! DESIGN.md:
//!
//! - epoch `i` runs a full Algorithm 2 schedule with `Δ_i` among the still
//!   undecided nodes;
//! - each epoch ends with an **audit window**: every node currently
//!   believing itself in the MIS alternates sender/listener roles over
//!   `Θ(log n)` backoff iterations; *hearing* another MIS node is proof of
//!   an independence violation, and the hearer reverts to undecided (at
//!   least one of any conflicting pair keeps its membership);
//! - nodes dominated by a reverted MIS node are not individually repaired
//!   (that is the part the paper leaves open); the residual error rate is
//!   exactly what experiment E12 measures, alongside the energy/round
//!   overhead factors;
//! - the final epoch uses `Δ ≥ n`, where Algorithm 2's own guarantee
//!   applies unconditionally.

use crate::nocd::NoCdMis;
use crate::params::{log2f, NoCdParams};
use radio_netsim::{Action, Feedback, Message, NodeRng, NodeStatus, Protocol};
use rand::Rng;

/// The sequence of degree guesses: 2^(2^i), capped at (and terminated by)
/// `n`.
pub fn delta_guesses(n: usize) -> Vec<usize> {
    let mut guesses = Vec::new();
    let mut exp: u32 = 1;
    loop {
        if exp as u64 >= 63 || (1u64 << exp) as usize >= n {
            guesses.push(n.max(2));
            break;
        }
        guesses.push(1usize << exp);
        exp = exp.saturating_mul(2);
    }
    guesses
}

/// Schedule of one epoch: the Algorithm 2 window plus the audit window.
#[derive(Debug, Clone, Copy)]
struct Epoch {
    start: u64,
    alg_len: u64,
    audit_iters: u64,
    audit_w: u64,
}

impl Epoch {
    fn audit_start(&self) -> u64 {
        self.start + self.alg_len
    }
    fn end(&self) -> u64 {
        self.audit_start() + self.audit_iters * self.audit_w
    }
}

/// Algorithm 2 without a known Δ: doubly-exponential guessing with
/// end-of-epoch conflict audits.
#[derive(Debug, Clone)]
pub struct UnknownDeltaMis {
    /// Template parameters (everything except `delta`, which each epoch
    /// overrides).
    template: NoCdParams,
    epochs: Vec<(usize, Epoch)>,
    cur_epoch: usize,
    inner: Option<NoCdMis>,
    status: NodeStatus,
    /// Number of times this node reverted after a failed audit.
    reverts: u32,
    /// Audit sub-state: role for the current iteration
    /// (iteration index, transmit round or listener marker).
    audit_iter: Option<(u64, Option<u64>)>,
    heard_conflict: bool,
    finished: bool,
}

impl UnknownDeltaMis {
    /// Creates a node that runs Algorithm 2 with Δ-guessing. `template`
    /// supplies all constants; its `delta` field is ignored.
    pub fn new(n: usize, template: NoCdParams) -> UnknownDeltaMis {
        let audit_iters = (2.0 * log2f(n)).ceil() as u64;
        let mut epochs = Vec::new();
        let mut start = 0u64;
        for guess in delta_guesses(n) {
            let params = NoCdParams {
                delta: guess,
                ..template
            };
            let epoch = Epoch {
                start,
                alg_len: params.total_rounds(),
                audit_iters,
                audit_w: crate::backoff::backoff_window(guess) as u64,
            };
            start = epoch.end();
            epochs.push((guess, epoch));
        }
        UnknownDeltaMis {
            template,
            epochs,
            cur_epoch: 0,
            inner: None,
            status: NodeStatus::Undecided,
            reverts: 0,
            audit_iter: None,
            heard_conflict: false,
            finished: false,
        }
    }

    /// The degree guesses this node will try, in order.
    pub fn guesses(&self) -> Vec<usize> {
        self.epochs.iter().map(|&(g, _)| g).collect()
    }

    /// Total schedule length over all epochs.
    pub fn total_rounds(&self) -> u64 {
        self.epochs.last().map(|&(_, e)| e.end()).unwrap_or(0)
    }

    /// Number of audit-triggered reverts this node performed.
    pub fn reverts(&self) -> u32 {
        self.reverts
    }

    fn epoch_of(&self, round: u64) -> usize {
        // Epochs are few (loglog n); linear scan is fine.
        self.epochs
            .iter()
            .position(|&(_, e)| round < e.end())
            .unwrap_or(self.epochs.len() - 1)
    }
}

impl Protocol for UnknownDeltaMis {
    fn act(&mut self, round: u64, rng: &mut NodeRng) -> Action {
        if round >= self.total_rounds() {
            self.finished = true;
            return Action::halt();
        }
        let idx = self.epoch_of(round);
        let (guess, epoch) = self.epochs[idx];
        if idx != self.cur_epoch {
            // Entering a new epoch: undecided nodes start a fresh inner run.
            self.cur_epoch = idx;
            self.inner = None;
            self.audit_iter = None;
            self.heard_conflict = false;
        }
        if round < epoch.audit_start() {
            // Algorithm 2 section of the epoch. Undecided nodes run a
            // fresh full instance; MIS nodes from earlier epochs run an
            // announce-only instance so later competitors stay dominated.
            if self.status == NodeStatus::OutMis {
                self.finished = true;
                return Action::halt();
            }
            if self.inner.is_none() {
                if round != epoch.start {
                    // Missed the epoch start (e.g. just reverted in the
                    // audit): wait for the next epoch.
                    return Action::Sleep {
                        wake_at: epoch.end().min(self.total_rounds()),
                    };
                }
                let params = NoCdParams {
                    delta: guess,
                    ..self.template
                };
                self.inner = Some(if self.status == NodeStatus::InMis {
                    NoCdMis::new_in_mis(params)
                } else {
                    NoCdMis::new(params)
                });
            }
            let inner = self.inner.as_mut().expect("just ensured");
            let inner_round = round - epoch.start;
            let action = inner.act(inner_round, rng);
            self.status = inner.status();
            if self.status == NodeStatus::OutMis {
                self.finished = true;
                return Action::halt();
            }
            // Translate sleep targets back to absolute rounds; an inner
            // halt means "done with this epoch's schedule".
            match action {
                Action::Sleep { wake_at } => {
                    let abs = if wake_at == u64::MAX || inner.finished() {
                        epoch.audit_start()
                    } else {
                        (epoch.start + wake_at).min(epoch.audit_start())
                    };
                    Action::Sleep {
                        wake_at: abs.max(round + 1),
                    }
                }
                other => other,
            }
        } else {
            // Audit window: MIS nodes probe for adjacent MIS nodes.
            if self.status != NodeStatus::InMis || self.heard_conflict {
                return Action::Sleep {
                    wake_at: epoch.end().min(self.total_rounds()),
                };
            }
            let off = round - epoch.audit_start();
            let iter = off / epoch.audit_w;
            let iter_start = epoch.audit_start() + iter * epoch.audit_w;
            let role = match self.audit_iter {
                Some((i, role)) if i == iter => role,
                _ => {
                    let role = if rng.gen_bool(0.5) {
                        let x = crate::backoff::capped_geometric(rng, epoch.audit_w as u32);
                        Some(iter_start + x as u64 - 1)
                    } else {
                        None // listener
                    };
                    self.audit_iter = Some((iter, role));
                    role
                }
            };
            match role {
                None => Action::Listen,
                Some(tx) => {
                    if round < tx {
                        Action::Sleep { wake_at: tx }
                    } else if round == tx {
                        Action::Transmit(Message::unary())
                    } else {
                        Action::Sleep {
                            wake_at: (iter_start + epoch.audit_w).min(epoch.end()),
                        }
                    }
                }
            }
        }
    }

    fn feedback(&mut self, round: u64, fb: Feedback, rng: &mut NodeRng) {
        let idx = self.epoch_of(round);
        let (_, epoch) = self.epochs[idx];
        if round < epoch.audit_start() {
            if let Some(inner) = self.inner.as_mut() {
                inner.feedback(round - epoch.start, fb, rng);
                self.status = inner.status();
            }
        } else if self.status == NodeStatus::InMis && fb.heard_activity() {
            // Another MIS node is adjacent: independence violated under a
            // too-small guess. Revert and retry next epoch.
            self.heard_conflict = true;
            self.status = NodeStatus::Undecided;
            self.reverts += 1;
            self.inner = None;
        }
    }

    fn status(&self) -> NodeStatus {
        self.status
    }

    fn finished(&self) -> bool {
        self.finished
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mis_graphs::generators;
    use radio_netsim::{ChannelModel, SimConfig, Simulator};

    #[test]
    fn guess_sequence_shape() {
        assert_eq!(delta_guesses(1000), vec![2, 4, 16, 256, 1000]);
        assert_eq!(delta_guesses(10), vec![2, 4, 10]);
        assert_eq!(delta_guesses(2), vec![2]);
        assert_eq!(delta_guesses(3), vec![2, 3]);
        // Last guess always ≥ n (valid bound).
        for n in [2usize, 5, 17, 300, 70_000] {
            assert!(*delta_guesses(n).last().unwrap() >= n);
        }
    }

    fn run_unknown(g: &mis_graphs::Graph, seed: u64) -> radio_netsim::RunReport {
        let n_bound = (4 * g.len()).max(64);
        let template = NoCdParams::for_n(n_bound, 2 /* overridden */);
        Simulator::new(g, SimConfig::new(ChannelModel::NoCd).with_seed(seed))
            .run(|_, _| UnknownDeltaMis::new(n_bound, template))
    }

    #[test]
    fn solves_low_degree_graphs_without_delta() {
        for g in [
            generators::path(16),
            generators::cycle(12),
            generators::empty(8),
        ] {
            let report = run_unknown(&g, 3);
            assert!(
                report.is_correct_mis(&g),
                "failed on {g:?}: {:?}",
                report.verify_mis(&g)
            );
        }
    }

    #[test]
    fn solves_star_where_first_guesses_are_wrong() {
        // Star hub degree 19 ≫ first guesses 2, 4, 16.
        let g = generators::star(20);
        let mut successes = 0;
        for seed in 0..5 {
            if run_unknown(&g, seed).is_correct_mis(&g) {
                successes += 1;
            }
        }
        assert!(successes >= 4, "only {successes}/5 succeeded");
    }

    #[test]
    fn schedule_is_guess_sum() {
        let template = NoCdParams::for_n(64, 2);
        let node = UnknownDeltaMis::new(64, template);
        let mut expected = 0u64;
        let audit_iters = (2.0 * log2f(64)).ceil() as u64;
        for guess in delta_guesses(64) {
            let params = NoCdParams {
                delta: guess,
                ..template
            };
            expected +=
                params.total_rounds() + audit_iters * crate::backoff::backoff_window(guess) as u64;
        }
        assert_eq!(node.total_rounds(), expected);
    }

    #[test]
    fn round_overhead_is_constant_factor() {
        // Total schedule with guessing ≤ c × the known-Δ schedule at Δ = n.
        let n = 1 << 12;
        let template = NoCdParams::for_n(n, 2);
        let node = UnknownDeltaMis::new(n, template);
        let known = NoCdParams::for_n(n, n).total_rounds();
        let ratio = node.total_rounds() as f64 / known as f64;
        // The Δ-independent T_G component repeats once per epoch, so the
        // reconstruction's overhead is a little above the footnote's ideal
        // O(1); E12 reports the measured factor.
        assert!(ratio < 4.0, "round overhead ratio {ratio} too large");
    }
}
