//! Experiment runner binary.
//!
//! ```text
//! experiments <id>|all [--quick] [--seed N] [--threads N] [--out FILE]
//!             [--svg-dir DIR] [--cache-dir DIR] [--only LIST] [--force]
//! ```
//!
//! `--out` writes the rendered markdown (the results section of
//! `EXPERIMENTS.md`); otherwise prints to stdout.
//!
//! `--cache-dir` turns on the content-addressed result cache: every
//! `(experiment, cell, trial-block)` job unit is keyed by its full recipe
//! and reruns recompute only invalidated cells (see
//! `docs/EXPERIMENT_PIPELINE.md`). `--only e02,e15` restricts the run to
//! the named experiments (selectors may carry a cell prefix, e.g.
//! `e15:loss`); `--force` bypasses cache *reads* for the selected units
//! (all units without `--only`) while still writing fresh results back.
//!
//! `--threads N` shards each simulation's intra-round phases across N
//! workers. Thread count never changes results (the engine's determinism
//! contract, `docs/PARALLEL_ENGINE.md`), so like the cache flags it is
//! absent from the generated header and from every cache key: a sweep
//! cached serially replays warm under any `--threads`.
//!
//! The generated header records only the inputs that determine the output
//! bytes (target, `--quick`, `--seed`) — never the cache flags or the
//! thread count, so cached and fresh renders are byte-identical.

use mis_experiments::orchestrator::canonical_experiment_id;
use mis_experiments::{run_all, ExpConfig, Orchestrator, ALL_IDS};
use std::io::Write;
use std::time::Instant;

fn usage() -> ! {
    eprintln!(
        "usage: experiments <{}|all> [--quick] [--seed N] [--threads N] [--out FILE] \
         [--svg-dir DIR] [--cache-dir DIR] [--only LIST] [--force]",
        ALL_IDS.join("|")
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut target: Option<String> = None;
    let mut cfg = ExpConfig::default();
    let mut out_path: Option<String> = None;
    let mut svg_dir: Option<String> = None;
    let mut cache_dir: Option<String> = None;
    let mut only: Option<Vec<String>> = None;
    let mut force = false;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => cfg.quick = true,
            "--seed" => {
                let v = it.next().unwrap_or_else(|| usage());
                cfg.seed = v.parse().unwrap_or_else(|_| usage());
            }
            "--threads" => {
                let v = it.next().unwrap_or_else(|| usage());
                cfg.threads = v.parse().unwrap_or_else(|_| usage());
                if cfg.threads == 0 {
                    eprintln!("--threads must be ≥ 1");
                    usage();
                }
            }
            "--out" => out_path = Some(it.next().unwrap_or_else(|| usage())),
            "--svg-dir" => svg_dir = Some(it.next().unwrap_or_else(|| usage())),
            "--cache-dir" => cache_dir = Some(it.next().unwrap_or_else(|| usage())),
            "--only" => {
                let list = it.next().unwrap_or_else(|| usage());
                only = Some(
                    list.split(',')
                        .map(str::trim)
                        .filter(|s| !s.is_empty())
                        .map(str::to_string)
                        .collect(),
                );
            }
            "--force" => force = true,
            other if target.is_none() && !other.starts_with('-') => {
                target = Some(other.to_string());
            }
            _ => usage(),
        }
    }
    let target = target.unwrap_or_else(|| usage());
    let mut ids: Vec<&str> = if target == "all" {
        ALL_IDS.to_vec()
    } else if ALL_IDS.contains(&target.as_str()) {
        vec![ALL_IDS[ALL_IDS.iter().position(|&i| i == target).unwrap()]]
    } else {
        usage()
    };

    // --only narrows the run to the selected experiments (the part of a
    // selector before any `:` cell prefix).
    if let Some(selectors) = &only {
        let wanted: Vec<String> = selectors
            .iter()
            .filter_map(|s| {
                let exp = s.split(':').next().unwrap_or(s);
                let id = canonical_experiment_id(exp);
                if id.is_none() {
                    eprintln!("--only: unknown experiment in selector {s:?}");
                }
                id
            })
            .collect();
        ids.retain(|id| wanted.iter().any(|w| w == id));
        if ids.is_empty() {
            eprintln!("--only matched no experiments");
            std::process::exit(2);
        }
    }

    let mut orch = match &cache_dir {
        Some(dir) => Orchestrator::with_cache_dir(dir),
        None => Orchestrator::ephemeral(),
    }
    .with_progress()
    .with_run_context(cfg.seed, cfg.quick);
    if force {
        // Scope the invalidation to the --only selectors; a bare --force
        // recomputes every selected unit.
        orch = orch.with_force(only.as_deref().unwrap_or(&[]));
    }
    orch.announce_plan();

    // The header records exactly what determines the bytes below it;
    // cache flags are deliberately absent (cached == fresh, byte for
    // byte).
    let mut rendered = String::new();
    rendered.push_str(&format!(
        "<!-- generated by `experiments {target}{} --seed {}` -->\n\n",
        if cfg.quick { " --quick" } else { "" },
        cfg.seed,
    ));
    let t0 = Instant::now();
    eprintln!(
        "running {} experiment{} on the shared scheduler …",
        ids.len(),
        if ids.len() == 1 { "" } else { "s" }
    );
    let outputs = run_all(&ids, &cfg, &orch);
    eprintln!("rendered in {:.1}s", t0.elapsed().as_secs_f64());
    for output in &outputs {
        if let Some(dir) = &svg_dir {
            std::fs::create_dir_all(dir).expect("create svg dir");
            for (stem, chart) in &output.charts {
                let path = std::path::Path::new(dir).join(format!("{stem}.svg"));
                std::fs::write(&path, chart.to_svg()).expect("write svg");
                eprintln!("  figure {}", path.display());
            }
        }
        rendered.push_str(&output.to_markdown());
        rendered.push('\n');
    }

    eprintln!("{}", orch.summary_line());
    if orch.cache_enabled() {
        eprint!("{}", orch.manifest().summary_table().to_markdown());
        if let Some(path) = orch.write_manifest() {
            eprintln!("manifest {}", path.display());
        }
    }

    match out_path {
        Some(path) => {
            let mut f = std::fs::File::create(&path)
                .unwrap_or_else(|e| panic!("cannot create {path}: {e}"));
            f.write_all(rendered.as_bytes()).expect("write output");
            eprintln!("wrote {path}");
        }
        None => print!("{rendered}"),
    }
}
