//! Algorithm 2: the energy-efficient MIS algorithm for the no-CD model
//! (§5) — O(log²n·loglog n) energy, O(log³n·log Δ) rounds (Theorem 10).
//!
//! Each of the `C·log n` Luby phases occupies a fixed window of
//! `T_L = T_C + 2·T_B(C′·log n) + T_G + T_B(1)` rounds, split into five
//! sections all nodes agree on by round arithmetic (§5.2):
//!
//! | section          | undecided       | win            | commit                | lose     | in-MIS   |
//! |------------------|-----------------|----------------|-----------------------|----------|----------|
//! | competition T_C  | [`Competition`] | —              | —                     | —        | sleep    |
//! | deep check 1     | —               | `Rec-EBackoff` | sleep                 | sleep    | `Snd`    |
//! | deep check 2     | —               | —              | `Rec-EBackoff`        | sleep    | `Snd`    |
//! | LowDegreeMIS T_G | —               | —              | [`LowDegreeInstance`] | sleep    | sleep    |
//! | shallow check    | —               | —              | —                     | `Rec(1)` | `Snd(1)` |
//!
//! - A **win** node deep-checks for an existing MIS neighbor: hearing one →
//!   `out-MIS` (terminate); silence → it *joins* and immediately announces
//!   in deep check 2.
//! - A **commit** node deep-checks too; survivors (the set C_i*) run
//!   LowDegreeMIS among themselves — Corollary 13 guarantees that subgraph
//!   has max degree O(log n), so the instance is parameterized with
//!   `d_max = κ·log n`.
//! - **Lose** nodes only pay the O(log Δ) *shallow* check (§5.1.2): they
//!   detect MIS neighbors with constant probability per phase — rather
//!   than w.h.p. — which is what keeps their per-phase energy small; the
//!   residual-graph analysis (Lemmas 19–20) absorbs the resulting
//!   stragglers.
//!
//! The optional energy cap implements Theorem 10's closing remark: a node
//! exceeding the Θ(log²n·loglog n) threshold sleeps forever and decides
//! arbitrarily, making the energy bound deterministic.

use crate::backoff::{RecEBackoff, SndEBackoff};
use crate::competition::{Competition, CompetitionOutcome};
use crate::low_degree::LowDegreeInstance;
use crate::params::NoCdParams;
use radio_netsim::{Action, Feedback, NodeRng, NodeStatus, Protocol};
use serde::{Deserialize, Serialize};

/// Internal per-node status, refining [`NodeStatus`] with the transient
/// competition outcomes of Algorithm 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Internal {
    Undecided,
    Win,
    Commit,
    Lose,
    InMis,
    OutMis,
}

/// Which schedule section a running receiver belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Sect {
    Deep1,
    Deep2,
    Shallow,
}

#[derive(Debug, Clone)]
enum Machine {
    Comp(Competition),
    Snd(SndEBackoff),
    Rec(RecEBackoff, Sect),
    Ld(Box<LowDegreeInstance>),
}

/// Serializable mirror of [`CompetitionOutcome`] for diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PhaseOutcome {
    /// Won the competition (never heard).
    Win,
    /// Committed, then heard.
    Commit,
    /// Heard at the first 0-bit.
    Lose,
}

/// Awake-round attribution per component of Algorithm 2 — the empirical
/// version of the paper's Figure 2 color coding.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// Competition (Algorithm 3) awake rounds: sender backoffs on 1-bits
    /// plus receiver backoffs on 0-bits.
    pub competition: u64,
    /// Deep-check listening (win/commit nodes, Algorithm 2 lines 9 & 18).
    pub deep_checks: u64,
    /// LowDegreeMIS participation (the T_G window).
    pub low_degree: u64,
    /// Shallow-check listening (losers, line 28).
    pub shallow_checks: u64,
    /// MIS-node announcements (sender backoffs, lines 7, 15, 26).
    pub announcements: u64,
}

impl EnergyBreakdown {
    /// Total attributed awake rounds.
    pub fn total(&self) -> u64 {
        self.competition
            + self.deep_checks
            + self.low_degree
            + self.shallow_checks
            + self.announcements
    }
}

/// Per-phase diagnostic record used by the Lemma 11–15 experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseRecord {
    /// Luby phase index.
    pub phase: u32,
    /// Outcome of the phase's competition.
    pub outcome: PhaseOutcome,
    /// Bitty phase at which the node committed, if it did.
    pub committed_at_bit: Option<u32>,
}

/// The Algorithm 2 node state machine.
#[derive(Debug, Clone)]
pub struct NoCdMis {
    params: NoCdParams,
    // Cached schedule offsets within a phase.
    s_deep1: u64,
    s_deep2: u64,
    s_ld: u64,
    s_shallow: u64,
    t_luby: u64,
    total: u64,
    status: Internal,
    machine: Option<Machine>,
    finished: bool,
    awake_spent: u64,
    breakdown: EnergyBreakdown,
    capped: bool,
    ld_timed_out: bool,
    history: Vec<PhaseRecord>,
}

impl NoCdMis {
    /// Creates a node running Algorithm 2.
    pub fn new(params: NoCdParams) -> NoCdMis {
        let t_c = params.t_competition();
        let t_b = params.t_backoff(params.k_deep());
        let t_g = params.t_g();
        NoCdMis {
            s_deep1: t_c,
            s_deep2: t_c + t_b,
            s_ld: t_c + 2 * t_b,
            s_shallow: t_c + 2 * t_b + t_g,
            t_luby: params.t_luby(),
            total: params.total_rounds(),
            status: Internal::Undecided,
            machine: None,
            finished: false,
            awake_spent: 0,
            breakdown: EnergyBreakdown::default(),
            capped: false,
            ld_timed_out: false,
            history: Vec::new(),
            params,
        }
    }

    /// Creates a node that is already (irrevocably) in the MIS and only
    /// performs the announcement sections of every phase. Used by
    /// [`crate::unknown_delta`], where MIS nodes from earlier epochs must
    /// keep announcing so later epochs' competitors stay dominated.
    pub fn new_in_mis(params: NoCdParams) -> NoCdMis {
        let mut node = NoCdMis::new(params);
        node.status = Internal::InMis;
        node
    }

    /// The parameters this node runs with.
    pub fn params(&self) -> &NoCdParams {
        &self.params
    }

    /// Awake rounds this node has spent so far.
    pub fn awake_spent(&self) -> u64 {
        self.awake_spent
    }

    /// Awake rounds attributed to each component of the algorithm (the
    /// empirical Figure 2).
    pub fn energy_breakdown(&self) -> EnergyBreakdown {
        self.breakdown
    }

    /// Whether the Theorem-10 energy cap fired for this node.
    pub fn capped(&self) -> bool {
        self.capped
    }

    /// Whether a LowDegreeMIS window ended with this node undecided
    /// (timeout rule applied).
    pub fn ld_timed_out(&self) -> bool {
        self.ld_timed_out
    }

    /// Per-phase competition records (diagnostics for Lemmas 11–15).
    pub fn history(&self) -> &[PhaseRecord] {
        &self.history
    }

    fn phase_of(&self, round: u64) -> u64 {
        round / self.t_luby
    }

    fn off_of(&self, round: u64) -> u64 {
        round % self.t_luby
    }

    fn phase_base(&self, phase: u64) -> u64 {
        phase * self.t_luby
    }

    /// Retires the node with its current public status.
    fn terminate(&mut self) -> Action {
        self.finished = true;
        self.machine = None;
        Action::halt()
    }

    /// Applies the result of a completed sub-machine.
    fn close_machine(&mut self, round: u64) {
        let Some(machine) = self.machine.take() else {
            return;
        };
        match machine {
            Machine::Comp(mut comp) => {
                comp.finalize(round);
                let phase = self.phase_of(round.saturating_sub(1)) as u32;
                let outcome = comp.outcome();
                self.history.push(PhaseRecord {
                    phase,
                    outcome: match outcome {
                        CompetitionOutcome::Win { .. } => PhaseOutcome::Win,
                        CompetitionOutcome::Commit => PhaseOutcome::Commit,
                        CompetitionOutcome::Lose => PhaseOutcome::Lose,
                    },
                    committed_at_bit: comp.committed_at_bit(),
                });
                self.status = match outcome {
                    CompetitionOutcome::Win { .. } => Internal::Win,
                    CompetitionOutcome::Commit => Internal::Commit,
                    CompetitionOutcome::Lose => Internal::Lose,
                };
            }
            Machine::Snd(_) => {}
            Machine::Rec(rec, sect) => match sect {
                Sect::Deep1 => {
                    // Algorithm 2 lines 9–11.
                    if rec.heard() {
                        self.status = Internal::OutMis;
                    } else {
                        self.status = Internal::InMis;
                    }
                }
                Sect::Deep2 => {
                    // Algorithm 2 lines 18–22.
                    if rec.heard() {
                        self.status = Internal::OutMis;
                    }
                    // else: stays Commit; the LowDegreeMIS window follows.
                }
                Sect::Shallow => {
                    // Algorithm 2 lines 28–30.
                    if rec.heard() {
                        self.status = Internal::OutMis;
                    } else {
                        self.status = Internal::Undecided;
                    }
                }
            },
            Machine::Ld(mut ld) => {
                ld.finalize(round);
                if ld.timed_out() {
                    self.ld_timed_out = true;
                }
                self.status = match ld.decision() {
                    NodeStatus::InMis => Internal::InMis,
                    NodeStatus::OutMis => Internal::OutMis,
                    NodeStatus::Undecided => unreachable!("finalize always decides"),
                };
            }
        }
    }

    fn machine_done(&self, round: u64) -> bool {
        match &self.machine {
            Some(Machine::Comp(c)) => c.is_done(round),
            Some(Machine::Snd(s)) => s.is_done(round),
            Some(Machine::Rec(r, _)) => r.is_done(round),
            Some(Machine::Ld(l)) => l.is_done(round),
            None => false,
        }
    }

    /// Picks the next activity for a node with no running machine.
    fn schedule(&mut self, round: u64, rng: &mut NodeRng) -> Action {
        let phase = self.phase_of(round);
        let off = self.off_of(round);
        let base = self.phase_base(phase);
        let k = self.params.k_deep();
        let delta = self.params.delta.max(1);
        match self.status {
            Internal::OutMis => self.terminate(),
            Internal::Undecided => {
                debug_assert_eq!(off, 0, "undecided nodes re-enter at phase starts");
                let comp = Competition::new(round, &self.params);
                self.machine = Some(Machine::Comp(comp));
                self.delegate(round, rng)
            }
            Internal::Win => {
                debug_assert_eq!(off, self.s_deep1, "winners act at deep check 1");
                let rec = RecEBackoff::new_full(round, k, delta);
                self.machine = Some(Machine::Rec(rec, Sect::Deep1));
                self.delegate(round, rng)
            }
            Internal::Commit => {
                if off < self.s_deep2 {
                    Action::Sleep {
                        wake_at: base + self.s_deep2,
                    }
                } else if off == self.s_deep2 {
                    let rec = RecEBackoff::new_full(round, k, delta);
                    self.machine = Some(Machine::Rec(rec, Sect::Deep2));
                    self.delegate(round, rng)
                } else {
                    debug_assert_eq!(off, self.s_ld, "committed nodes act at the T_G window");
                    let ld = LowDegreeInstance::new(round, self.params.low_degree_params());
                    self.machine = Some(Machine::Ld(Box::new(ld)));
                    self.delegate(round, rng)
                }
            }
            Internal::Lose => {
                if off < self.s_shallow {
                    Action::Sleep {
                        wake_at: base + self.s_shallow,
                    }
                } else {
                    debug_assert_eq!(off, self.s_shallow);
                    let rec = RecEBackoff::new_full(round, self.params.shallow_k(), delta);
                    self.machine = Some(Machine::Rec(rec, Sect::Shallow));
                    self.delegate(round, rng)
                }
            }
            Internal::InMis => {
                // Announce in both deep checks and the shallow check; sleep
                // through the competition and the T_G window.
                if off < self.s_deep1 {
                    Action::Sleep {
                        wake_at: base + self.s_deep1,
                    }
                } else if off == self.s_deep1 || off == self.s_deep2 {
                    let snd = SndEBackoff::new(round, k, delta, rng);
                    self.machine = Some(Machine::Snd(snd));
                    self.delegate(round, rng)
                } else if off < self.s_shallow {
                    Action::Sleep {
                        wake_at: base + self.s_shallow,
                    }
                } else {
                    debug_assert_eq!(off, self.s_shallow);
                    let snd = SndEBackoff::new(round, self.params.shallow_k(), delta, rng);
                    self.machine = Some(Machine::Snd(snd));
                    self.delegate(round, rng)
                }
            }
        }
    }

    fn delegate(&mut self, round: u64, rng: &mut NodeRng) -> Action {
        match self.machine.as_mut().expect("machine present") {
            Machine::Comp(c) => c.act(round, rng),
            Machine::Snd(s) => s.act(round),
            Machine::Rec(r, _) => r.act(round),
            Machine::Ld(l) => l.act(round, rng),
        }
    }
}

impl Protocol for NoCdMis {
    fn act(&mut self, round: u64, rng: &mut NodeRng) -> Action {
        // Theorem 10 thresholding: past the cap, sleep forever and decide
        // arbitrarily (out unless already in).
        if let Some(cap) = self.params.energy_cap {
            if self.awake_spent >= cap && !matches!(self.status, Internal::InMis | Internal::OutMis)
            {
                self.capped = true;
                self.status = Internal::OutMis;
                return self.terminate();
            }
        }
        if self.machine_done(round) {
            self.close_machine(round);
            if self.status == Internal::OutMis {
                return self.terminate();
            }
        }
        if round >= self.total {
            return self.terminate();
        }
        let action = if self.machine.is_some() {
            self.delegate(round, rng)
        } else {
            self.schedule(round, rng)
        };
        if action.is_awake() {
            self.awake_spent += 1;
            // Attribute the awake round to the component that owns the
            // current machine (Figure 2's color coding).
            match &self.machine {
                Some(Machine::Comp(_)) => self.breakdown.competition += 1,
                Some(Machine::Rec(_, Sect::Deep1 | Sect::Deep2)) => self.breakdown.deep_checks += 1,
                Some(Machine::Rec(_, Sect::Shallow)) => self.breakdown.shallow_checks += 1,
                Some(Machine::Ld(_)) => self.breakdown.low_degree += 1,
                // Snd machines only exist for in-MIS announcements.
                Some(Machine::Snd(_)) => self.breakdown.announcements += 1,
                None => {}
            }
        }
        action
    }

    fn feedback(&mut self, round: u64, fb: Feedback, _rng: &mut NodeRng) {
        match self.machine.as_mut() {
            Some(Machine::Comp(c)) => c.feedback(round, fb),
            Some(Machine::Rec(r, _)) => r.feedback(round, fb),
            Some(Machine::Ld(l)) => l.feedback(round, fb),
            Some(Machine::Snd(_)) | None => {}
        }
    }

    fn status(&self) -> NodeStatus {
        match self.status {
            Internal::InMis => NodeStatus::InMis,
            Internal::OutMis => NodeStatus::OutMis,
            _ => NodeStatus::Undecided,
        }
    }

    fn finished(&self) -> bool {
        self.finished
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mis_graphs::generators;
    use radio_netsim::{ChannelModel, SimConfig, Simulator};

    fn run_nocd(g: &mis_graphs::Graph, seed: u64) -> radio_netsim::RunReport {
        let params = NoCdParams::for_n((4 * g.len()).max(64), g.max_degree().max(2));
        Simulator::new(g, SimConfig::new(ChannelModel::NoCd).with_seed(seed))
            .run(|_, _| NoCdMis::new(params))
    }

    #[test]
    fn solves_tiny_graphs() {
        for g in [
            generators::empty(4),
            generators::path(2),
            generators::path(8),
            generators::star(10),
        ] {
            let report = run_nocd(&g, 5);
            assert!(
                report.is_correct_mis(&g),
                "failed on {g:?}: {:?}",
                report.verify_mis(&g)
            );
        }
    }

    #[test]
    fn solves_medium_graphs() {
        for g in [
            generators::gnp(48, 0.1, 2),
            generators::clique(20),
            generators::grid2d(6, 6),
            generators::lower_bound_family(32),
        ] {
            let report = run_nocd(&g, 9);
            assert!(
                report.is_correct_mis(&g),
                "failed on {g:?}: {:?}",
                report.verify_mis(&g)
            );
        }
    }

    #[test]
    fn rounds_within_schedule() {
        let g = generators::gnp(40, 0.1, 3);
        let params = NoCdParams::for_n(160, g.max_degree().max(2));
        let report = Simulator::new(&g, SimConfig::new(ChannelModel::NoCd).with_seed(1))
            .run(|_, _| NoCdMis::new(params));
        assert!(report.is_correct_mis(&g));
        assert!(report.rounds <= params.total_rounds() + 1);
    }

    #[test]
    fn energy_well_below_rounds() {
        // The whole point: max energy ≪ round complexity.
        let g = generators::gnp(64, 0.15, 7);
        let report = run_nocd(&g, 11);
        assert!(report.is_correct_mis(&g));
        assert!(
            report.max_energy() * 4 < report.rounds,
            "energy {} not ≪ rounds {}",
            report.max_energy(),
            report.rounds
        );
    }

    #[test]
    fn history_records_phases() {
        let g = generators::clique(12);
        let params = NoCdParams::for_n(64, 11);
        use std::sync::Mutex;
        let cell: Mutex<Vec<Vec<PhaseRecord>>> = Mutex::new(vec![Vec::new(); g.len()]);
        struct Harvest<'a> {
            inner: NoCdMis,
            id: usize,
            cell: &'a Mutex<Vec<Vec<PhaseRecord>>>,
        }
        impl Protocol for Harvest<'_> {
            fn act(&mut self, round: u64, rng: &mut NodeRng) -> Action {
                let a = self.inner.act(round, rng);
                self.cell.lock().unwrap()[self.id] = self.inner.history().to_vec();
                a
            }
            fn feedback(&mut self, round: u64, fb: Feedback, rng: &mut NodeRng) {
                self.inner.feedback(round, fb, rng)
            }
            fn status(&self) -> NodeStatus {
                self.inner.status()
            }
            fn finished(&self) -> bool {
                self.inner.finished()
            }
        }
        let report =
            Simulator::new(&g, SimConfig::new(ChannelModel::NoCd).with_seed(3)).run(|v, _| {
                Harvest {
                    inner: NoCdMis::new(params),
                    id: v,
                    cell: &cell,
                }
            });
        assert!(report.is_correct_mis(&g));
        let histories = cell.into_inner().unwrap();
        // Some node ran a competition, and at most one node per phase can
        // win on a clique (winners are independent there).
        assert!(histories.iter().any(|h| !h.is_empty()));
        let mut wins_per_phase = std::collections::HashMap::new();
        for h in &histories {
            for rec in h {
                if rec.outcome == PhaseOutcome::Win {
                    *wins_per_phase.entry(rec.phase).or_insert(0u32) += 1;
                }
            }
        }
        for (phase, wins) in wins_per_phase {
            assert!(wins <= 1, "phase {phase} had {wins} winners on a clique");
        }
    }

    #[test]
    fn energy_breakdown_accounts_for_everything() {
        use std::sync::Mutex;
        let g = generators::gnp(32, 0.15, 6);
        let params = NoCdParams::for_n(128, g.max_degree().max(2));
        let cell: Mutex<Vec<EnergyBreakdown>> =
            Mutex::new(vec![EnergyBreakdown::default(); g.len()]);
        struct Harvest<'a> {
            inner: NoCdMis,
            id: usize,
            cell: &'a Mutex<Vec<EnergyBreakdown>>,
        }
        impl Protocol for Harvest<'_> {
            fn act(&mut self, round: u64, rng: &mut NodeRng) -> Action {
                let a = self.inner.act(round, rng);
                self.cell.lock().unwrap()[self.id] = self.inner.energy_breakdown();
                a
            }
            fn feedback(&mut self, round: u64, fb: Feedback, rng: &mut NodeRng) {
                self.inner.feedback(round, fb, rng)
            }
            fn status(&self) -> NodeStatus {
                self.inner.status()
            }
            fn finished(&self) -> bool {
                self.inner.finished()
            }
        }
        let report =
            Simulator::new(&g, SimConfig::new(ChannelModel::NoCd).with_seed(4)).run(|v, _| {
                Harvest {
                    inner: NoCdMis::new(params),
                    id: v,
                    cell: &cell,
                }
            });
        assert!(report.is_correct_mis(&g));
        let breakdowns = cell.into_inner().unwrap();
        for (v, b) in breakdowns.iter().enumerate() {
            // Every awake round the meter saw is attributed to a component.
            assert_eq!(
                b.total(),
                report.meters[v].energy(),
                "node {v}: breakdown {b:?} vs meter {}",
                report.meters[v].energy()
            );
        }
        // Across the run, the competition and at least one check component
        // must show up.
        let sum = breakdowns
            .iter()
            .fold(EnergyBreakdown::default(), |acc, b| EnergyBreakdown {
                competition: acc.competition + b.competition,
                deep_checks: acc.deep_checks + b.deep_checks,
                low_degree: acc.low_degree + b.low_degree,
                shallow_checks: acc.shallow_checks + b.shallow_checks,
                announcements: acc.announcements + b.announcements,
            });
        assert!(sum.competition > 0);
        assert!(sum.deep_checks > 0);
        assert!(sum.announcements > 0);
    }

    #[test]
    fn energy_cap_fires_and_caps() {
        let g = generators::gnp(48, 0.2, 1);
        let mut params = NoCdParams::for_n(192, g.max_degree().max(2));
        params.energy_cap = Some(30); // absurdly low: force capping
        let report = Simulator::new(&g, SimConfig::new(ChannelModel::NoCd).with_seed(2))
            .run(|_, _| NoCdMis::new(params));
        // The run completes, energy stays near the cap (a node can overshoot
        // by at most the stretch to its next act), and correctness is
        // (expectedly) sacrificed.
        assert!(report.completed);
        assert!(report.max_energy() <= 30 + params.t_backoff(params.k_deep()));
    }

    #[test]
    fn deterministic_given_seed() {
        let g = generators::gnp(32, 0.15, 4);
        let a = run_nocd(&g, 8);
        let b = run_nocd(&g, 8);
        assert_eq!(a, b);
    }
}
