//! Applications built on the MIS primitives: maximal matching and
//! (Δ+1)-coloring.
//!
//! The paper's introduction motivates MIS as *the* building block for
//! higher-level coordination in ad-hoc networks (communication backbones,
//! scheduling). This module demonstrates two classical reductions on top of
//! the radio algorithms:
//!
//! - **Maximal matching** = MIS on the line graph L(G). (The paper's
//!   bibliography \[14\] gives a *native* energy-efficient radio matching
//!   algorithm; this reduction is the application demo, not a
//!   reimplementation of \[14\] — the line-graph "nodes" are simulated
//!   radios, one per link.)
//! - **(Δ+1)-coloring** by iterated MIS: repeatedly compute an MIS among
//!   the still-uncolored nodes; iteration `i`'s MIS becomes color class
//!   `i`. Every uncolored node is dominated each round, so it loses at
//!   least one uncolored neighbor per iteration and needs at most
//!   `deg(v) + 1` iterations — at most Δ+1 colors.

use crate::cd::CdMis;
use crate::params::CdParams;
use mis_graphs::{Graph, NodeId};
use radio_netsim::{split_seed, ChannelModel, SimConfig, Simulator};

/// Outcome of a matching/coloring computation, with the energy spent by
/// the underlying MIS runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppReport<T> {
    /// The computed object.
    pub result: T,
    /// Max awake rounds over all (simulated) nodes, summed across the MIS
    /// runs the application made.
    pub energy: u64,
    /// Total rounds across the MIS runs.
    pub rounds: u64,
    /// Number of MIS runs performed.
    pub mis_runs: u32,
}

/// Errors from the application layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AppError {
    /// An underlying MIS run failed verification (probability 1/poly(n)).
    MisFailed {
        /// Which MIS run failed (0-based).
        run: u32,
    },
}

impl std::fmt::Display for AppError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AppError::MisFailed { run } => write!(f, "underlying MIS run {run} failed"),
        }
    }
}

impl std::error::Error for AppError {}

/// Computes a maximal matching of `g` by running Algorithm 1 (CD model) on
/// the line graph L(G).
///
/// # Errors
///
/// Returns [`AppError::MisFailed`] if the MIS run fails verification
/// (probability 1/poly of the parameter n).
pub fn maximal_matching(
    g: &Graph,
    seed: u64,
) -> Result<AppReport<Vec<(NodeId, NodeId)>>, AppError> {
    let (lg, edge_of) = g.line_graph();
    if lg.is_empty() {
        return Ok(AppReport {
            result: Vec::new(),
            energy: 0,
            rounds: 0,
            mis_runs: 0,
        });
    }
    let params = CdParams::for_n((4 * lg.len()).max(64));
    let report = Simulator::new(&lg, SimConfig::new(ChannelModel::Cd).with_seed(seed))
        .run(|_, _| CdMis::new(params));
    if !report.is_correct_mis(&lg) {
        return Err(AppError::MisFailed { run: 0 });
    }
    let matching: Vec<(NodeId, NodeId)> = report
        .mis_mask()
        .iter()
        .enumerate()
        .filter(|(_, &b)| b)
        .map(|(i, _)| edge_of[i])
        .collect();
    Ok(AppReport {
        result: matching,
        energy: report.max_energy(),
        rounds: report.rounds,
        mis_runs: 1,
    })
}

/// Colors `g` with at most Δ+1 colors by iterated MIS (Algorithm 1, CD
/// model, one fresh schedule per color class).
///
/// # Errors
///
/// Returns [`AppError::MisFailed`] if any MIS run fails verification.
pub fn coloring_via_mis(g: &Graph, seed: u64) -> Result<AppReport<Vec<usize>>, AppError> {
    let mut colors = vec![usize::MAX; g.len()];
    let mut energy = 0u64;
    let mut rounds = 0u64;
    let mut run = 0u32;
    let params = CdParams::for_n((4 * g.len()).max(64));
    while colors.contains(&usize::MAX) {
        let keep: Vec<bool> = colors.iter().map(|&c| c == usize::MAX).collect();
        let (sub, back) = g.induced_subgraph(&keep);
        let report = Simulator::new(
            &sub,
            SimConfig::new(ChannelModel::Cd).with_seed(split_seed(seed, run as u64)),
        )
        .run(|_, _| CdMis::new(params));
        if !report.is_correct_mis(&sub) {
            return Err(AppError::MisFailed { run });
        }
        for (i, &in_mis) in report.mis_mask().iter().enumerate() {
            if in_mis {
                colors[back[i]] = run as usize;
            }
        }
        energy += report.max_energy();
        rounds += report.rounds;
        run += 1;
        debug_assert!(run as usize <= g.len() + 1, "coloring failed to progress");
    }
    Ok(AppReport {
        result: colors,
        energy,
        rounds,
        mis_runs: run,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mis_graphs::{generators, mis};

    #[test]
    fn matching_on_standard_graphs() {
        for g in [
            generators::path(20),
            generators::cycle(15),
            generators::star(12),
            generators::gnp(40, 0.15, 3),
            generators::grid2d(5, 6),
        ] {
            let report = maximal_matching(&g, 7).unwrap();
            assert!(
                mis::is_maximal_matching(&g, &report.result),
                "invalid matching on {g:?}"
            );
            assert_eq!(report.mis_runs, 1);
        }
    }

    #[test]
    fn matching_on_empty_graph() {
        let g = generators::empty(5);
        let report = maximal_matching(&g, 1).unwrap();
        assert!(report.result.is_empty());
        assert_eq!(report.energy, 0);
    }

    #[test]
    fn matching_on_star_is_single_edge() {
        let g = generators::star(10);
        let report = maximal_matching(&g, 2).unwrap();
        assert_eq!(report.result.len(), 1);
        assert_eq!(report.result[0].0, 0); // hub is in every edge
    }

    #[test]
    fn coloring_on_standard_graphs() {
        for g in [
            generators::path(20),
            generators::cycle(15),
            generators::clique(10),
            generators::gnp(48, 0.12, 5),
            generators::grid2d(5, 6),
        ] {
            let report = coloring_via_mis(&g, 11).unwrap();
            assert!(
                mis::is_proper_coloring(&g, &report.result),
                "improper coloring on {g:?}"
            );
            let used = report.result.iter().max().unwrap() + 1;
            assert!(
                used <= g.max_degree() + 1,
                "{used} colors > Δ+1 = {}",
                g.max_degree() + 1
            );
        }
    }

    #[test]
    fn coloring_clique_uses_exactly_n_colors() {
        let g = generators::clique(7);
        let report = coloring_via_mis(&g, 3).unwrap();
        let mut cs = report.result.clone();
        cs.sort_unstable();
        cs.dedup();
        assert_eq!(cs.len(), 7);
        assert_eq!(report.mis_runs, 7);
    }

    #[test]
    fn coloring_empty_graph_uses_one_color() {
        let g = generators::empty(6);
        let report = coloring_via_mis(&g, 1).unwrap();
        assert!(report.result.iter().all(|&c| c == 0));
        assert_eq!(report.mis_runs, 1);
    }

    #[test]
    fn error_display() {
        assert_eq!(
            AppError::MisFailed { run: 3 }.to_string(),
            "underlying MIS run 3 failed"
        );
    }
}
