//! Per-round channel metrics.
//!
//! The paper's claims are statements about *per-round* quantities — how many
//! nodes are awake, how fast the undecided population decays, how much
//! energy has been spent by round `r` — while [`crate::RunReport`] only
//! carries end-of-run totals. [`RoundMetrics`] is the per-round record the
//! engine aggregates cheaply inside its existing round loop; a run collects
//! one record per *processed* round (rounds in which every node slept are
//! skipped by the engine and therefore produce no record — exactly as they
//! cost no energy). Consumers must index the timeline by each record's
//! `round` field, never by position: a gap between consecutive records is
//! a fast-forwarded quiet span, during which every column was frozen at
//! the earlier record's value. Both engine scheduling backends
//! ([`EngineMode`](crate::EngineMode)) emit identical timelines — the
//! skip-gap structure is part of the equivalence contract checked by the
//! `engine_differential` suite.
//!
//! Metrics flow through two channels, both opt-in and both zero-cost when
//! unused:
//!
//! - [`SimConfig::with_round_metrics`](crate::SimConfig::with_round_metrics)
//!   stores the full timeline in [`RunReport::metrics`](crate::RunReport);
//! - a [`TraceSink`](crate::TraceSink) whose mask includes
//!   [`EventKind::RoundMetrics`](crate::EventKind) receives one
//!   [`TraceEvent::RoundEnd`](crate::TraceEvent) per processed round,
//!   suitable for streaming (see [`crate::JsonlTrace`]).
//!
//! # Fault counters
//!
//! Runs under a non-inert [`FaultPlan`](crate::FaultPlan) extend the record
//! with per-round fault accounting: `faded_edges` (per-edge fade draws that
//! destroyed a signal), `jammed_receptions` (listeners whose channel was
//! polluted by surviving jammer noise), the `jamming` population column
//! (active jammers), and the cumulative `crashed` column. Fault-free runs
//! leave all four at zero.
//!
//! Runs with crash-*recovery* clauses (see
//! [`FaultPlan::with_recovery`](crate::FaultPlan::with_recovery)) further
//! extend the record with `recovered` and `joined` (cumulative lifecycle
//! events) and `repairing` (the current count of nodes whose earlier
//! decision was revoked and who have not re-decided). All three stay zero
//! on recovery-free runs and deserialize as zero from older records.

use serde::{Deserialize, Serialize};

/// Channel-level counters for one processed simulation round.
///
/// Counting conventions (all verified by the aggregation-invariant tests):
///
/// - `transmitting + listening + sleeping + finished + jamming + crashed
///   == n` for every record, where `finished` counts nodes retired
///   *strictly before* the round began (a node that finishes during the
///   round is still counted in the awake or sleeping population of that
///   round) and `crashed` likewise counts nodes that crashed strictly
///   before the round began;
/// - `joined_mis` and `decided` are cumulative *through the end of* the
///   round, so they form monotone completion curves;
/// - channel counters (`collisions`, `receptions`, `lost_receptions`,
///   `jammed_receptions`) describe the channel *after* per-edge fading:
///   a reception is a successful post-fade decode, a lost reception is a
///   listener silenced entirely by fading, and the two are disjoint;
/// - the final record's `cumulative_energy` equals the sum of all
///   [`EnergyMeter`](crate::EnergyMeter) totals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoundMetrics {
    /// The round this record describes.
    pub round: u64,
    /// Nodes that transmitted this round (including radio-dormant nodes
    /// that *chose* to transmit — they spend the energy even though their
    /// signal never reaches the channel).
    pub transmitting: u32,
    /// Nodes that listened this round.
    pub listening: u32,
    /// Nodes that were asleep this round (including nodes that chose
    /// `Sleep` when polled) and had not yet finished, crashed, or started
    /// jamming before the round began.
    pub sleeping: u32,
    /// Nodes retired (finished) strictly before this round began.
    pub finished: u32,
    /// Listeners whose post-fade channel was undecodable: ≥ 2 surviving
    /// arrivals, or surviving jammer noise on top of anything. This counts
    /// the *physical* collision regardless of whether the channel model
    /// makes it observable (CD reports `Collision`, no-CD reports
    /// `Silence`, beeping reports `Beep`). Without loss or jammers this is
    /// exactly "listeners with ≥ 2 transmitting neighbors".
    pub collisions: u32,
    /// Listeners that successfully decoded a message this round: exactly
    /// one arrival survived fading and it was a real transmission, not
    /// jammer noise.
    pub receptions: u32,
    /// Listeners with ≥ 1 arriving signal, all of which were destroyed by
    /// per-edge fading ([`FaultPlan::with_loss`](crate::FaultPlan::with_loss))
    /// — the listener heard silence where it physically should not have.
    pub lost_receptions: u32,
    /// Active jammer nodes this round (awake, not yet crashed). A
    /// population column: jammers are neither transmitting protocol
    /// messages nor listening.
    #[serde(default)]
    pub jamming: u32,
    /// Nodes crashed strictly before this round began (cumulative).
    #[serde(default)]
    pub crashed: u32,
    /// Per-edge fade draws this round that destroyed an arriving signal.
    /// One lost reception can account for several faded edges (every
    /// arrival at the listener faded). Sender-side beep detection
    /// short-circuits after the first surviving signal, so its untested
    /// edges are not counted.
    #[serde(default)]
    pub faded_edges: u32,
    /// Listeners whose surviving channel contained jammer noise this round
    /// (their feedback was degraded to a collision/beep/silence even if a
    /// real message also arrived).
    #[serde(default)]
    pub jammed_receptions: u32,
    /// Nodes that came back from a down window through the end of this
    /// round (cumulative). A node that churns twice counts twice.
    #[serde(default)]
    pub recovered: u32,
    /// Nodes that joined mid-run through the end of this round
    /// (cumulative).
    #[serde(default)]
    pub joined: u32,
    /// Channels disrupted by a global channel adversary this round
    /// ([`FaultPlan::with_channel_jam`](crate::FaultPlan::with_channel_jam);
    /// docs/MULTICHANNEL.md). Always zero on single-channel runs.
    #[serde(default)]
    pub jammed_channels: u32,
    /// Nodes whose earlier decision has been revoked (by a self-healing
    /// wrapper or a down window) and who have not re-decided yet — the
    /// population currently under repair. Not cumulative.
    #[serde(default)]
    pub repairing: u32,
    /// Nodes whose status is `InMis` at the end of this round (cumulative).
    pub joined_mis: u32,
    /// Nodes whose status is decided (in or out of the MIS) at the end of
    /// this round (cumulative).
    pub decided: u32,
    /// Total awake node-rounds spent through the end of this round — the
    /// running sum of `transmitting + listening` over all processed rounds.
    pub cumulative_energy: u64,
}

impl RoundMetrics {
    /// Nodes awake this round (`transmitting + listening`; jammers are not
    /// protocol participants and are excluded).
    pub fn awake(&self) -> u32 {
        self.transmitting + self.listening
    }

    /// Total node count this record describes (`transmitting + listening +
    /// sleeping + finished + jamming + crashed`).
    pub fn node_count(&self) -> u32 {
        self.transmitting
            + self.listening
            + self.sleeping
            + self.finished
            + self.jamming
            + self.crashed
    }

    /// Nodes still undecided at the end of this round.
    pub fn undecided(&self) -> u32 {
        self.node_count() - self.decided
    }
}

/// Per-channel counters for one processed round of a multichannel run
/// (docs/MULTICHANNEL.md). Collected into
/// [`RunReport::channel_metrics`](crate::RunReport::channel_metrics) only
/// when [`SimConfig::with_round_metrics`](crate::SimConfig::with_round_metrics)
/// is on **and** [`SimConfig::channels`](crate::SimConfig::channels) `> 1`:
/// single-channel reports never carry the field, keeping their JSON
/// byte-identical to pre-multichannel output. One record per (processed
/// round, channel) pair, channels ascending within a round.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChannelRoundMetrics {
    /// The round this record describes.
    pub round: u64,
    /// The channel this record describes (`0..F`).
    pub channel: u16,
    /// Whether a global channel adversary disrupted this channel this
    /// round.
    pub jammed: bool,
    /// On-air transmissions on this channel (dormant radios excluded).
    pub transmitting: u32,
    /// Listeners tuned to this channel.
    pub listening: u32,
    /// Listeners on this channel whose post-fade reception was undecodable
    /// (≥ 2 surviving arrivals, surviving wideband jammer noise, or the
    /// channel itself jammed).
    pub collisions: u32,
    /// Listeners on this channel that successfully decoded a message.
    pub receptions: u32,
}

/// One round's raw counters, handed to the accumulator when the round
/// closes. Groups what used to be a long positional argument list.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct RoundCounters {
    /// The round being closed.
    pub round: u64,
    /// Total node count.
    pub n: usize,
    /// Nodes finished strictly before the round began.
    pub finished_before: u32,
    /// Nodes crashed strictly before the round began.
    pub crashed_before: u32,
    /// Active jammers this round.
    pub jamming: u32,
    /// Nodes that chose `Transmit` this round.
    pub transmitting: u32,
    /// Nodes that chose `Listen` this round.
    pub listening: u32,
    /// Post-fade undecodable listens.
    pub collisions: u32,
    /// Post-fade successful decodes.
    pub receptions: u32,
    /// Listeners silenced entirely by fading.
    pub lost_receptions: u32,
    /// Per-edge fade draws that destroyed a signal.
    pub faded_edges: u32,
    /// Listeners with surviving jammer noise.
    pub jammed_receptions: u32,
    /// Recovery events through the end of the round (cumulative).
    pub recovered: u32,
    /// Mid-run joins through the end of the round (cumulative).
    pub joined: u32,
    /// Channels disrupted by a global channel adversary this round.
    pub jammed_channels: u32,
}

/// Running cumulative state the engine threads across rounds while
/// aggregating [`RoundMetrics`].
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct MetricsAccumulator {
    /// Cumulative count of nodes currently `InMis`.
    pub joined_mis: u32,
    /// Cumulative count of decided nodes.
    pub decided: u32,
    /// Current count of nodes whose decision was revoked and not yet
    /// re-made.
    pub repairing: u32,
    /// Cumulative awake node-rounds.
    pub cumulative_energy: u64,
}

impl MetricsAccumulator {
    /// Closes one round: folds this round's counters together with the
    /// running cumulative state into a [`RoundMetrics`] record.
    pub(crate) fn finish_round(&mut self, c: RoundCounters) -> RoundMetrics {
        self.cumulative_energy += u64::from(c.transmitting) + u64::from(c.listening);
        RoundMetrics {
            round: c.round,
            transmitting: c.transmitting,
            listening: c.listening,
            sleeping: c.n as u32
                - c.finished_before
                - c.crashed_before
                - c.jamming
                - c.transmitting
                - c.listening,
            finished: c.finished_before,
            collisions: c.collisions,
            receptions: c.receptions,
            lost_receptions: c.lost_receptions,
            jamming: c.jamming,
            crashed: c.crashed_before,
            faded_edges: c.faded_edges,
            jammed_receptions: c.jammed_receptions,
            recovered: c.recovered,
            joined: c.joined,
            jammed_channels: c.jammed_channels,
            repairing: self.repairing,
            joined_mis: self.joined_mis,
            decided: self.decided,
            cumulative_energy: self.cumulative_energy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_quantities() {
        let m = RoundMetrics {
            round: 3,
            transmitting: 2,
            listening: 5,
            sleeping: 1,
            finished: 4,
            jamming: 1,
            crashed: 2,
            decided: 9,
            ..RoundMetrics::default()
        };
        assert_eq!(m.awake(), 7);
        assert_eq!(m.node_count(), 15);
        assert_eq!(m.undecided(), 6);
    }

    #[test]
    fn accumulator_folds_rounds() {
        let mut acc = MetricsAccumulator {
            decided: 1,
            ..MetricsAccumulator::default()
        };
        let a = acc.finish_round(RoundCounters {
            round: 0,
            n: 4,
            transmitting: 2,
            listening: 2,
            collisions: 1,
            ..RoundCounters::default()
        });
        assert_eq!(a.cumulative_energy, 4);
        assert_eq!(a.sleeping, 0);
        assert_eq!(a.decided, 1);
        let b = acc.finish_round(RoundCounters {
            round: 5,
            n: 4,
            finished_before: 1,
            transmitting: 1,
            ..RoundCounters::default()
        });
        assert_eq!(b.cumulative_energy, 5);
        assert_eq!(b.sleeping, 2);
        assert_eq!(b.finished, 1);
        assert_eq!(b.node_count(), 4);
    }

    #[test]
    fn accumulator_accounts_fault_populations() {
        let mut acc = MetricsAccumulator::default();
        let m = acc.finish_round(RoundCounters {
            round: 2,
            n: 10,
            finished_before: 1,
            crashed_before: 2,
            jamming: 3,
            transmitting: 1,
            listening: 2,
            faded_edges: 7,
            jammed_receptions: 2,
            lost_receptions: 1,
            ..RoundCounters::default()
        });
        assert_eq!(m.sleeping, 1);
        assert_eq!(m.node_count(), 10);
        assert_eq!(m.jamming, 3);
        assert_eq!(m.crashed, 2);
        assert_eq!(m.faded_edges, 7);
        assert_eq!(m.jammed_receptions, 2);
        // Energy counts only protocol participants.
        assert_eq!(m.cumulative_energy, 3);
    }

    #[test]
    fn serde_roundtrip() {
        let m = RoundMetrics {
            round: 7,
            transmitting: 1,
            listening: 2,
            sleeping: 3,
            finished: 4,
            collisions: 1,
            receptions: 2,
            lost_receptions: 1,
            jamming: 2,
            crashed: 1,
            faded_edges: 5,
            jammed_receptions: 1,
            recovered: 2,
            joined: 1,
            jammed_channels: 1,
            repairing: 1,
            joined_mis: 2,
            decided: 4,
            cumulative_energy: 99,
        };
        let json = serde_json::to_string(&m).unwrap();
        let back: RoundMetrics = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn old_records_deserialize_with_zero_fault_counters() {
        // PR 1 records predate the fault counters; serde must default them.
        let json = r#"{"round":1,"transmitting":1,"listening":1,"sleeping":0,
            "finished":0,"collisions":0,"receptions":1,"lost_receptions":0,
            "joined_mis":0,"decided":0,"cumulative_energy":2}"#;
        let m: RoundMetrics = serde_json::from_str(json).unwrap();
        assert_eq!(m.jamming, 0);
        assert_eq!(m.crashed, 0);
        assert_eq!(m.faded_edges, 0);
        assert_eq!(m.jammed_receptions, 0);
        assert_eq!(m.recovered, 0);
        assert_eq!(m.joined, 0);
        assert_eq!(m.repairing, 0);
        assert_eq!(m.jammed_channels, 0);
        assert_eq!(m.node_count(), 2);
    }

    #[test]
    fn accumulator_carries_recovery_counters() {
        let mut acc = MetricsAccumulator {
            repairing: 2,
            ..MetricsAccumulator::default()
        };
        let m = acc.finish_round(RoundCounters {
            round: 4,
            n: 6,
            crashed_before: 1,
            listening: 2,
            recovered: 3,
            joined: 1,
            ..RoundCounters::default()
        });
        assert_eq!(m.recovered, 3);
        assert_eq!(m.joined, 1);
        assert_eq!(m.repairing, 2);
        // A node sitting in a down window is part of the `crashed`
        // population column, so the identity still balances.
        assert_eq!(m.node_count(), 6);
    }
}
