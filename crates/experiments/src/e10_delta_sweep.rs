//! E10 — Theorem 10's log Δ round factor.
//!
//! Fixes n and sweeps the degree bound Δ over bounded-degree random
//! graphs. Rounds should grow affinely in W = ⌈log₂ Δ⌉ + 1 (the backoff
//! window), while max energy should grow much more slowly (only the
//! pre-commit full-Δ listens and the Δ-dependent sender schedules feel Δ).

use crate::harness::{pct, ExpConfig, ExperimentOutput, Section};
use crate::orchestrator::{Orchestrator, UnitKey};
use mis_graphs::generators;
use mis_stats::fit::linear_fit;
use mis_stats::table::fmt_num;
use mis_stats::{LineChart, Summary, Table};
use radio_mis::backoff::backoff_window;
use radio_mis::nocd::NoCdMis;
use radio_mis::params::NoCdParams;
use radio_netsim::{ChannelModel, SimConfig};

/// Runs E10.
pub fn run(cfg: &ExpConfig, orch: &Orchestrator) -> ExperimentOutput {
    let n = if cfg.quick { 128 } else { 512 };
    let trials = cfg.trials(9);
    let deltas: Vec<usize> = if cfg.quick {
        vec![4, 16, 64]
    } else {
        vec![4, 8, 16, 32, 64, 128]
    };
    let mut table = Table::new([
        "Δ bound",
        "W",
        "rounds (mean)",
        "schedule T",
        "energy (mean)",
        "success",
    ]);
    let mut ws = Vec::new();
    let mut rounds_means = Vec::new();
    let mut energy_means = Vec::new();
    for &d in &deltas {
        let g = generators::bounded_degree(n, d, cfg.seed ^ d as u64);
        let params = NoCdParams::for_n(n, d);
        let stats = orch.trials(
            UnitKey::new("e10", format!("delta={d}"))
                .with(
                    "graph",
                    format!("bounded-degree/{d}/seed={:#x}", cfg.seed ^ d as u64),
                )
                .with("alg", "NoCdMis")
                .with("params", format!("{params:?}")),
            &g,
            SimConfig::new(ChannelModel::NoCd).with_seed(cfg.seed ^ (d as u64) << 16),
            trials,
            |_, _| NoCdMis::new(params),
        );
        let rs = Summary::of(&stats.rounds);
        let es = Summary::of(&stats.energies);
        table.push_row([
            d.to_string(),
            backoff_window(d).to_string(),
            fmt_num(rs.mean),
            params.total_rounds().to_string(),
            fmt_num(es.mean),
            pct(stats.correct, stats.successes()),
        ]);
        ws.push(backoff_window(d) as f64);
        rounds_means.push(rs.mean);
        energy_means.push(es.mean);
    }
    let round_fit = linear_fit(&ws, &rounds_means);
    let mut chart = LineChart::new(
        "Algorithm 2: rounds and energy vs backoff window W",
        "W = ceil(log2 max-degree) + 1",
        "rounds / energy (log scale)",
    )
    .with_log_y();
    chart.push_series(
        "rounds (mean)",
        ws.iter().copied().zip(rounds_means.iter().copied()),
    );
    chart.push_series(
        "max energy (mean)",
        ws.iter().copied().zip(energy_means.iter().copied()),
    );
    let energy_growth = energy_means.last().unwrap_or(&1.0) / energy_means.first().unwrap_or(&1.0);
    let round_growth = rounds_means.last().unwrap_or(&1.0) / rounds_means.first().unwrap_or(&1.0);

    ExperimentOutput {
        id: "e10",
        title: "round complexity's log Δ factor".into(),
        claim: "Theorem 10: rounds are O(log³n·log Δ) — affine in log Δ at fixed n — \
                while energy O(log²n·loglog n) is (nearly) Δ-independent."
            .into(),
        sections: vec![Section {
            caption: format!("bounded-degree graphs, n = {n}, {trials} trials per Δ"),
            table,
        }],
        findings: vec![
            format!(
                "rounds vs W = ⌈log Δ⌉+1: linear fit R² = {:.3} — the log Δ factor is \
                 visible and affine",
                round_fit.r2
            ),
            format!(
                "across the sweep, rounds grew {round_growth:.1}× while max energy grew \
                 only {energy_growth:.1}× — energy is (nearly) Δ-insensitive as claimed"
            ),
        ],
        charts: vec![("e10_rounds_vs_window".into(), chart)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_shows_delta_factor() {
        let out = run(&ExpConfig::quick(19), &Orchestrator::ephemeral());
        assert!(!out.sections[0].table.is_empty());
    }
}
