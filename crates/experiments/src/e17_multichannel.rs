//! E17 — multichannel jamming resilience: the t-resilient MIS in the
//! Daum–Kuhn model.
//!
//! The paper's algorithms assume a single reliable channel; this experiment
//! measures what F parallel channels and an adversary jamming t < F of them
//! per round do to the MIS problem, using
//! [`MultichannelMis`](radio_mis::MultichannelMis) (Luby phases lifted onto
//! channel-hopping Decay blocks) against the engine's channel adversaries.
//! Three questions, one section each:
//!
//! - **channel tax** — with no jamming, how do rounds and energy scale in
//!   F? The protocol spreads each Decay sweep over F channels, so a block
//!   needs Θ(F) more windows for the same per-block success bound;
//! - **resilience premium** — at fixed F, how does the measured cost track
//!   the Θ(F²/(F−t)) block stretch as the adaptive jammer's budget t grows?
//!   Daum–Kuhn's multichannel lower bounds make exactly this F/(F−t)
//!   slowdown unavoidable for any t-resilient protocol;
//! - **why resilience needs a jam-aware protocol** — the paper's Algorithm 1
//!   run unchanged on a jammed 2-channel network: the adaptive jammer
//!   concentrates on the protocol's single channel and forges collisions,
//!   so every competition is void and the check round converts jamming
//!   noise into false `OutMis` decisions.
//!
//! Success rates here are the fault-aware `TrialSet` correctness check;
//! the headline is the contrast between the last section's two rows.

use crate::harness::{pct, ExpConfig, ExperimentOutput, Section};
use crate::orchestrator::{Orchestrator, TrialStats, UnitKey};
use mis_graphs::generators::Family;
use mis_graphs::Graph;
use mis_stats::{LineChart, Summary, Table};
use radio_mis::cd::CdMis;
use radio_mis::params::{CdParams, MultichannelParams};
use radio_mis::MultichannelMis;
use radio_netsim::{split_seed, ChannelModel, FaultPlan, SimConfig};

/// Runs one cached trial block of [`MultichannelMis`] under `plan`.
#[allow(clippy::too_many_arguments)]
fn mc_cell(
    orch: &Orchestrator,
    cell_id: &str,
    graph_recipe: &str,
    g: &Graph,
    params: MultichannelParams,
    plan: FaultPlan,
    seed: u64,
    trials: usize,
) -> TrialStats {
    let config = SimConfig::new(ChannelModel::Cd)
        .with_channels(params.channels)
        .with_seed(seed)
        .with_faults(plan);
    orch.trials(
        UnitKey::new("e17", cell_id)
            .with("graph", graph_recipe)
            .with("alg", "MultichannelMis")
            .with("params", format!("{params:?}")),
        g,
        config,
        trials,
        move |v, _| MultichannelMis::with_id(params, v),
    )
}

fn mean(xs: &[f64]) -> f64 {
    Summary::of(xs).mean
}

/// Runs E17.
pub fn run(cfg: &ExpConfig, orch: &Orchestrator) -> ExperimentOutput {
    let n = if cfg.quick { 24 } else { 64 };
    // The protocol's n-bound (rank width, block sizing) is held at 64 in
    // both modes: quick mode shrinks the graph but not the ranks, so
    // identical-rank ties stay negligible and the measured F/(F−t)
    // scaling is the same quantity at both sizes.
    let n_bound = 64;
    let trials = cfg.trials(9);
    let g = Family::GnpAvgDegree(6).generate(n, cfg.seed ^ 0x17);
    let graph_recipe = format!(
        "{}/seed={:#x}",
        Family::GnpAvgDegree(6).label(),
        cfg.seed ^ 0x17
    );

    // Axis 1: channel count, no adversary. The windows-per-block column is
    // the knob the analysis turns: Θ(γ·F·log n) at t = 0.
    let channel_counts: &[u16] = if cfg.quick { &[1, 2] } else { &[1, 2, 4] };
    let mut tax_table = Table::new([
        "channels F",
        "windows/block",
        "success",
        "rounds",
        "energy(max)",
        "energy(avg)",
    ]);
    let mut tax_cells = Vec::new();
    for (i, &f) in channel_counts.iter().enumerate() {
        let params = MultichannelParams::for_n(n_bound, f, 0);
        let stats = mc_cell(
            orch,
            &format!("tax/F={f}"),
            &graph_recipe,
            &g,
            params,
            FaultPlan::none(),
            split_seed(cfg.seed ^ 0x70, i as u64),
            trials,
        );
        tax_table.push_row([
            f.to_string(),
            params.windows_per_block().to_string(),
            pct(stats.correct, stats.attempted),
            format!("{:.0}", mean(&stats.rounds)),
            format!("{:.0}", mean(&stats.energies)),
            format!("{:.1}", mean(&stats.avg_energies)),
        ]);
        tax_cells.push((f, stats));
    }

    // Axis 2: adaptive jamming budget t at fixed F. The theory column is
    // the windows-per-block stretch F/(F−t) relative to the t = 0 row —
    // the Daum–Kuhn price of resilience.
    let f_fixed: u16 = if cfg.quick { 2 } else { 4 };
    let budgets: Vec<u16> = (0..f_fixed).collect();
    let mut res_table = Table::new([
        "jammed t",
        "stretch (theory)",
        "success",
        "rounds",
        "rounds ×",
        "energy(max)",
    ]);
    let mut res_cells = Vec::new();
    let mut round_series = Vec::new();
    for (i, &t) in budgets.iter().enumerate() {
        let params = MultichannelParams::for_n(n_bound, f_fixed, t);
        let plan = if t == 0 {
            FaultPlan::none()
        } else {
            FaultPlan::none().with_adaptive_channel_jam(t)
        };
        let stats = mc_cell(
            orch,
            &format!("resilience/F={f_fixed}/t={t}"),
            &graph_recipe,
            &g,
            params,
            plan,
            split_seed(cfg.seed ^ 0x71, i as u64),
            trials,
        );
        res_cells.push((t, stats));
        round_series.push((
            f64::from(t),
            mean(&res_cells.last().expect("just pushed").1.rounds),
        ));
    }
    let base_rounds = mean(&res_cells[0].1.rounds).max(1.0);
    for (t, stats) in &res_cells {
        let theory = f64::from(f_fixed) / f64::from(f_fixed - t);
        res_table.push_row([
            t.to_string(),
            format!("{theory:.2}"),
            pct(stats.correct, stats.attempted),
            format!("{:.0}", mean(&stats.rounds)),
            format!("{:.2}", mean(&stats.rounds) / base_rounds),
            format!("{:.0}", mean(&stats.energies)),
        ]);
    }
    let mut res_chart = LineChart::new(
        format!("rounds vs jamming budget (F = {f_fixed})"),
        "jammed channels t",
        "rounds to MIS",
    );
    res_chart.push_series("measured", round_series);
    res_chart.push_series(
        "t=0 × F/(F−t)",
        budgets
            .iter()
            .map(|&t| {
                (
                    f64::from(t),
                    base_rounds * f64::from(f_fixed) / f64::from(f_fixed - t),
                )
            })
            .collect(),
    );

    // Axis 3: the headline contrast. Algorithm 1 (CdMis) is channel-blind;
    // on a jammed 2-channel network the adaptive jammer owns its channel.
    let jam = FaultPlan::none().with_adaptive_channel_jam(1);
    let cd_params = CdParams::for_n(n);
    let naive = orch.trials(
        UnitKey::new("e17", "headline/cd-mis")
            .with("graph", &graph_recipe)
            .with("alg", "CdMis")
            .with("params", format!("{cd_params:?}")),
        &g,
        SimConfig::new(ChannelModel::Cd)
            .with_channels(2)
            .with_seed(cfg.seed ^ 0x72)
            .with_faults(jam.clone()),
        trials,
        |_, _| CdMis::new(cd_params),
    );
    let mc_params = MultichannelParams::for_n(n_bound, 2, 1);
    let resilient = mc_cell(
        orch,
        "headline/multichannel",
        &graph_recipe,
        &g,
        mc_params,
        jam,
        cfg.seed ^ 0x73,
        trials,
    );
    let mut headline_table = Table::new(["algorithm", "success", "rounds", "energy(max)"]);
    headline_table.push_row([
        "CdMis (channel-blind)".into(),
        pct(naive.correct, naive.attempted),
        format!("{:.0}", mean(&naive.rounds)),
        format!("{:.0}", mean(&naive.energies)),
    ]);
    headline_table.push_row([
        "MultichannelMis (t = 1)".into(),
        pct(resilient.correct, resilient.attempted),
        format!("{:.0}", mean(&resilient.rounds)),
        format!("{:.0}", mean(&resilient.energies)),
    ]);

    // Findings.
    let all_resilient_correct = tax_cells
        .iter()
        .map(|(_, s)| s)
        .chain(res_cells.iter().map(|(_, s)| s))
        .chain(std::iter::once(&resilient))
        .all(|s| s.correct == s.attempted);
    let worst = res_cells.last().expect("at least the t = 0 cell");
    let worst_theory = f64::from(f_fixed) / f64::from(f_fixed - worst.0);
    let findings = vec![
        format!(
            "every MultichannelMis cell solves MIS: {}",
            if all_resilient_correct {
                "yes — all trials of all channel counts and jamming budgets verified"
            } else {
                "NO — at least one trial failed (see success columns)"
            }
        ),
        format!(
            "at F = {f_fixed}, t = {} the measured round inflation over t = 0 is {:.2}× \
             against a theoretical block stretch of {:.2}× — the Daum–Kuhn F/(F−t) \
             price of jamming resilience (their lower bounds make a slowdown of this \
             order unavoidable for any t-resilient protocol)",
            worst.0,
            mean(&worst.1.rounds) / base_rounds,
            worst_theory,
        ),
        format!(
            "the channel-blind Algorithm 1 survives {} of {} trials on a jammed \
             2-channel network, vs {} of {} for MultichannelMis: in the CD model a \
             jammed channel reads as Collision, so a protocol that is not \
             clean-reception-only converts jamming noise into false decisions",
            naive.correct, naive.attempted, resilient.correct, resilient.attempted,
        ),
        "jamming can only add perceived activity in the CD model, never suppress it; \
         MultichannelMis therefore acts only on cleanly heard messages and pays for \
         resilience purely in rounds and energy, not in correctness"
            .into(),
    ];

    ExperimentOutput {
        id: "e17",
        title: "multichannel jamming resilience (Daum–Kuhn model)".into(),
        claim: "No claim in the paper — its model is single-channel and reliable. \
                This experiment measures the cost of extending Algorithm 1's \
                guarantees to F-channel networks with an adversary jamming t < F \
                channels per round, where Daum–Kuhn-style bounds predict a \
                Θ(F/(F−t)) slowdown."
            .into(),
        sections: vec![
            Section {
                caption: format!(
                    "channel tax: unjammed F-sweep (gnp-d6, n = {n}, {trials} trials)"
                ),
                table: tax_table,
            },
            Section {
                caption: format!(
                    "resilience premium: adaptive jammer budget sweep at F = {f_fixed}"
                ),
                table: res_table,
            },
            Section {
                caption: "channel-blind baseline vs the t-resilient protocol \
                          (F = 2, adaptive jammer, t = 1)"
                    .into(),
                table: headline_table,
            },
        ],
        findings,
        charts: vec![("e17_resilience_sweep".into(), res_chart)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_contrasts_blind_and_resilient_protocols() {
        let out = run(&ExpConfig::quick(17), &Orchestrator::ephemeral());
        assert_eq!(out.id, "e17");
        assert_eq!(out.sections.len(), 3);
        assert_eq!(out.charts.len(), 1);
        // Quick mode: F ∈ {1, 2} for the tax sweep, t ∈ {0, 1} at F = 2.
        assert_eq!(out.sections[0].table.len(), 2);
        assert_eq!(out.sections[1].table.len(), 2);
        assert_eq!(out.sections[2].table.len(), 2);
        // The acceptance gates: every resilient cell solved MIS, and the
        // channel-blind baseline did not survive the jammer.
        assert!(
            out.findings.iter().any(|f| f.contains("yes — all trials")),
            "findings: {:?}",
            out.findings
        );
        assert!(
            out.findings
                .iter()
                .any(|f| f.contains("survives 0 of") && f.contains("jammed")),
            "findings: {:?}",
            out.findings
        );
    }
}
