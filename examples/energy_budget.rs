//! Theorem 1, live: what happens to MIS when nodes can only afford `b`
//! awake rounds?
//!
//! Runs Algorithm 1 under a hard energy cap on the paper's adversarial
//! topology (disjoint edges + isolated nodes) and prints the failure rate
//! as the budget crosses the ½·log₂ n threshold.
//!
//! ```text
//! cargo run --release --example energy_budget
//! ```

use energy_mis::graphs::generators;
use energy_mis::mis::cd::CdMis;
use energy_mis::mis::lower_bound::{theorem1_failure_floor, EnergyCapped};
use energy_mis::mis::params::CdParams;
use energy_mis::netsim::{split_seed, ChannelModel, SimConfig, Simulator};

fn main() {
    let n = 4096;
    let graph = generators::lower_bound_family(n);
    let params = CdParams::for_n(n);
    let trials = 40;
    let half_log = (n as f64).log2() / 2.0;
    println!(
        "hard instance: {} matched pairs + {} isolated nodes (n = {n}, ½·log₂ n = {half_log:.1})",
        n / 4,
        n / 2
    );
    println!();
    println!(
        "{:>6} | {:>12} | {:>12}",
        "budget", "failure rate", "Thm 1 floor"
    );
    println!("{:->6}-+-{:->12}-+-{:->12}", "", "", "");
    for b in (0..=30).step_by(3) {
        let mut failures = 0;
        for t in 0..trials {
            let seed = split_seed(0xB0D6E7, (b << 16) ^ t);
            let report = Simulator::new(&graph, SimConfig::new(ChannelModel::Cd).with_seed(seed))
                .run(|_, _| EnergyCapped::new(CdMis::new(params), b));
            if !report.is_correct_mis(&graph) {
                failures += 1;
            }
        }
        println!(
            "{b:>6} | {:>11.0}% | {:>12.3}",
            100.0 * failures as f64 / trials as f64,
            theorem1_failure_floor(n, b)
        );
    }
    println!();
    println!("Below ~½·log₂ n awake rounds, tie-breaking the matched pairs is hopeless —");
    println!("the Ω(log n) energy lower bound in action.");
}
