//! E15 — beyond the model: a (fault kind × intensity) degradation grid.
//!
//! The paper's model is lossless, crash-free, noise-free, and synchronous
//! (§1.1). This experiment injects each departure separately through the
//! engine's [`FaultPlan`] and measures how Algorithm 1 (CD) and Algorithm 2
//! (no-CD) degrade along three axes per cell:
//!
//! - **MIS success rate** — fault-aware verification: faulty (crashed /
//!   jamming) nodes are exempt, so the protocol is judged only on what the
//!   surviving network could still achieve;
//! - **residual undecided fraction** — undecided non-faulty nodes at the
//!   horizon, the "stuck population" a fault leaves behind;
//! - **energy inflation** — mean max-energy relative to the fault-free
//!   baseline of the same algorithm.
//!
//! Fault kinds swept: per-edge reception loss, crash-stop faults, jammer
//! nodes, and staggered wake-up windows. Jammed neighborhoods can be
//! permanently undecidable (a CD listener bordering a jammer hears noise
//! forever), so every cell runs under a round cap of 20× the fault-free
//! round count — hitting the cap is itself the measured degradation.

use crate::harness::{pct, ExpConfig, ExperimentOutput, Section};
use crate::orchestrator::{Orchestrator, UnitKey};
use mis_graphs::generators::Family;
use mis_graphs::Graph;
use mis_stats::{LineChart, Table};
use radio_mis::cd::CdMis;
use radio_mis::nocd::NoCdMis;
use radio_mis::params::{CdParams, NoCdParams};
use radio_netsim::{split_seed, ChannelModel, FaultPlan, SimConfig, Simulator};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

#[derive(Clone, Copy)]
enum Alg {
    Cd,
    NoCd,
}

/// Aggregates of one (algorithm, fault plan) grid cell — the cached unit
/// value of the fault grid.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Cell {
    success: f64,
    undecided: f64,
    mean_energy: f64,
    mean_rounds: f64,
    cost: u64,
}

/// Cached value of one fault-counter validation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct CounterRow {
    faded: u64,
    lost: u64,
    crashed: u32,
    jamming: u32,
    jammed: u64,
    cost: u64,
}

#[allow(clippy::too_many_arguments)]
fn run_cell(
    orch: &Orchestrator,
    cell_id: &str,
    graph_recipe: &str,
    g: &Graph,
    alg: Alg,
    cd: CdParams,
    nocd: NoCdParams,
    plan: &FaultPlan,
    cap: u64,
    seed_base: u64,
    trials: usize,
) -> Cell {
    let (alg_label, params_fp) = match alg {
        Alg::Cd => ("CdMis", format!("{cd:?}")),
        Alg::NoCd => ("NoCdMis", format!("{nocd:?}")),
    };
    orch.unit_with_cost(
        &UnitKey::new("e15", cell_id)
            .with("graph", graph_recipe)
            .with("n", g.len())
            .with("alg", alg_label)
            .with("params", params_fp)
            .with("faults", format!("{plan:?}"))
            .with("cap", cap)
            .with("seed", seed_base)
            .with("trials", trials),
        || {
            let outcomes: Vec<(bool, f64, u64, u64, u64)> = (0..trials)
                .into_par_iter()
                .map(|t| {
                    let seed = split_seed(seed_base, t as u64);
                    let channel = match alg {
                        Alg::Cd => ChannelModel::Cd,
                        Alg::NoCd => ChannelModel::NoCd,
                    };
                    let config = SimConfig::new(channel)
                        .with_seed(seed)
                        .with_faults(plan.clone())
                        .with_max_rounds(cap);
                    let sim = Simulator::new(g, config);
                    let report = match alg {
                        Alg::Cd => sim.run(|_, _| CdMis::new(cd)),
                        Alg::NoCd => sim.run(|_, _| NoCdMis::new(nocd)),
                    };
                    let faulty = report.faulty.iter().filter(|&&f| f).count();
                    let non_faulty = (report.len() - faulty).max(1);
                    (
                        report.is_correct_mis(g),
                        report.undecided_count() as f64 / non_faulty as f64,
                        report.max_energy(),
                        report.rounds,
                        report.meters.iter().map(|m| m.energy()).sum(),
                    )
                })
                .collect();
            let t = outcomes.len().max(1) as f64;
            Cell {
                success: outcomes.iter().filter(|o| o.0).count() as f64 / t,
                undecided: outcomes.iter().map(|o| o.1).sum::<f64>() / t,
                mean_energy: outcomes.iter().map(|o| o.2 as f64).sum::<f64>() / t,
                mean_rounds: outcomes.iter().map(|o| o.3 as f64).sum::<f64>() / t,
                cost: outcomes.iter().map(|o| o.4).sum(),
            }
        },
        |c| c.cost,
    )
}

/// One grid sweep: per intensity, both algorithms, three metrics each.
#[allow(clippy::too_many_arguments)]
fn sweep(
    orch: &Orchestrator,
    kind: &str,
    graph_recipe: &str,
    g: &Graph,
    cd: CdParams,
    nocd: NoCdParams,
    cap: u64,
    trials: usize,
    seed: u64,
    intensities: &[(String, f64, FaultPlan)],
    baselines: &(Cell, Cell),
) -> (Table, LineChart, Vec<(String, Cell, Cell)>) {
    let mut table = Table::new([
        "intensity",
        "A1 success",
        "A1 undecided",
        "A1 energy×",
        "A2 success",
        "A2 undecided",
        "A2 energy×",
    ]);
    let mut chart_cd = Vec::new();
    let mut chart_nocd = Vec::new();
    let mut cells = Vec::new();
    for (i, (label, x, plan)) in intensities.iter().enumerate() {
        let a1 = run_cell(
            orch,
            &format!("{kind}/{label}/A1"),
            graph_recipe,
            g,
            Alg::Cd,
            cd,
            nocd,
            plan,
            cap,
            split_seed(seed, 2 * i as u64),
            trials,
        );
        let a2 = run_cell(
            orch,
            &format!("{kind}/{label}/A2"),
            graph_recipe,
            g,
            Alg::NoCd,
            cd,
            nocd,
            plan,
            cap,
            split_seed(seed, 2 * i as u64 + 1),
            trials,
        );
        let ratio = |c: &Cell, b: &Cell| c.mean_energy / b.mean_energy.max(1.0);
        table.push_row([
            label.clone(),
            pct((a1.success * trials as f64).round() as usize, trials),
            format!("{:.2}", a1.undecided),
            format!("{:.2}", ratio(&a1, &baselines.0)),
            pct((a2.success * trials as f64).round() as usize, trials),
            format!("{:.2}", a2.undecided),
            format!("{:.2}", ratio(&a2, &baselines.1)),
        ]);
        chart_cd.push((*x, a1.success));
        chart_nocd.push((*x, a2.success));
        cells.push((label.clone(), a1, a2));
    }
    let mut chart = LineChart::new("success vs fault intensity", "intensity", "success rate");
    chart.push_series("Algorithm 1 (CD)", chart_cd);
    chart.push_series("Algorithm 2 (no-CD)", chart_nocd);
    (table, chart, cells)
}

/// Runs E15.
pub fn run(cfg: &ExpConfig, orch: &Orchestrator) -> ExperimentOutput {
    let n = if cfg.quick { 64 } else { 256 };
    let trials = cfg.trials(12);
    let g = Family::GnpAvgDegree(8).generate(n, cfg.seed ^ 0x15);
    let cd_params = CdParams::for_n(4 * n);
    let nocd_params = NoCdParams::for_n(4 * n, g.max_degree().max(2));
    let graph_recipe = format!(
        "{}/seed={:#x}",
        Family::GnpAvgDegree(8).label(),
        cfg.seed ^ 0x15
    );

    // Fault-free baselines (also the 0-intensity cell of every sweep) and
    // the shared round cap: 20× the slower baseline's mean rounds.
    let base_cd = run_cell(
        orch,
        "baseline/A1",
        &graph_recipe,
        &g,
        Alg::Cd,
        cd_params,
        nocd_params,
        &FaultPlan::none(),
        1_000_000_000,
        cfg.seed ^ 0x50,
        trials,
    );
    let base_nocd = run_cell(
        orch,
        "baseline/A2",
        &graph_recipe,
        &g,
        Alg::NoCd,
        cd_params,
        nocd_params,
        &FaultPlan::none(),
        1_000_000_000,
        cfg.seed ^ 0x55,
        trials,
    );
    let base_rounds = base_cd.mean_rounds.max(base_nocd.mean_rounds).max(50.0) as u64;
    let cap = 20 * base_rounds;
    let baselines = (base_cd, base_nocd);

    // The (fault kind × intensity) grid.
    let losses: &[f64] = if cfg.quick {
        &[0.0, 0.3, 0.9]
    } else {
        &[0.0, 0.1, 0.3, 0.5, 0.7, 0.9]
    };
    let loss_axis: Vec<(String, f64, FaultPlan)> = losses
        .iter()
        .map(|&p| (format!("loss {p:.1}"), p, FaultPlan::none().with_loss(p)))
        .collect();

    let crash_fracs: &[f64] = if cfg.quick {
        &[0.0, 0.1, 0.3]
    } else {
        &[0.0, 0.05, 0.1, 0.2, 0.4]
    };
    let crash_axis: Vec<(String, f64, FaultPlan)> = crash_fracs
        .iter()
        .map(|&f| {
            let k = (f * n as f64).round() as usize;
            let plan = if k == 0 {
                FaultPlan::none()
            } else {
                FaultPlan::none().with_random_crashes(k, base_rounds)
            };
            (format!("{:.0}% crash", 100.0 * f), f, plan)
        })
        .collect();

    let jam_counts: &[usize] = if cfg.quick {
        &[0, 1, 4]
    } else {
        &[0, 1, 2, 4, 8]
    };
    let jam_axis: Vec<(String, f64, FaultPlan)> = jam_counts
        .iter()
        .map(|&k| {
            let plan = if k == 0 {
                FaultPlan::none()
            } else {
                FaultPlan::none().with_random_jammers(k)
            };
            (format!("{k} jammers"), k as f64, plan)
        })
        .collect();

    let stagger_phases: &[u64] = if cfg.quick {
        &[0, 1, 8]
    } else {
        &[0, 1, 2, 4, 8, 16]
    };
    let wake_axis: Vec<(String, f64, FaultPlan)> = stagger_phases
        .iter()
        .map(|&ph| {
            let w = ph * cd_params.phase_len();
            let plan = if w == 0 {
                FaultPlan::none()
            } else {
                FaultPlan::none().with_wake_window(w)
            };
            (format!("{ph} phases"), ph as f64, plan)
        })
        .collect();

    let (loss_table, loss_chart, loss_cells) = sweep(
        orch,
        "loss",
        &graph_recipe,
        &g,
        cd_params,
        nocd_params,
        cap,
        trials,
        cfg.seed ^ 0x51,
        &loss_axis,
        &baselines,
    );
    let (crash_table, crash_chart, crash_cells) = sweep(
        orch,
        "crash",
        &graph_recipe,
        &g,
        cd_params,
        nocd_params,
        cap,
        trials,
        cfg.seed ^ 0x52,
        &crash_axis,
        &baselines,
    );
    let (jam_table, jam_chart, jam_cells) = sweep(
        orch,
        "jam",
        &graph_recipe,
        &g,
        cd_params,
        nocd_params,
        cap,
        trials,
        cfg.seed ^ 0x53,
        &jam_axis,
        &baselines,
    );
    let (wake_table, wake_chart, _) = sweep(
        orch,
        "wake",
        &graph_recipe,
        &g,
        cd_params,
        nocd_params,
        cap,
        trials,
        cfg.seed ^ 0x54,
        &wake_axis,
        &baselines,
    );

    // Fault-counter validation: one metrics-enabled run per fault kind.
    // Each counter is the observable that substantiates the corresponding
    // degradation claim (see EXPERIMENTS.md).
    let mut counter_table = Table::new([
        "fault",
        "faded edges",
        "lost receptions",
        "crashed",
        "peak jamming",
        "jammed receptions",
    ]);
    let counter_plans = [
        ("loss 0.3", FaultPlan::none().with_loss(0.3)),
        (
            "10% crash",
            FaultPlan::none().with_random_crashes(n / 10, base_rounds),
        ),
        ("2 jammers", FaultPlan::none().with_random_jammers(2)),
    ];
    let mut counters_seen = true;
    for (label, plan) in &counter_plans {
        let config = SimConfig::new(ChannelModel::NoCd)
            .with_seed(split_seed(cfg.seed ^ 0x56, counter_table.len() as u64))
            .with_faults(plan.clone())
            .with_max_rounds(cap)
            .with_round_metrics();
        let row = orch.unit_with_cost(
            &UnitKey::new("e15", format!("counters/{label}"))
                .with("graph", &graph_recipe)
                .with("n", n)
                .with("alg", "NoCdMis")
                .with("params", format!("{nocd_params:?}"))
                .with("sim", config.fingerprint()),
            || {
                let report =
                    Simulator::new(&g, config.clone()).run(|_, _| NoCdMis::new(nocd_params));
                let tl = report.metrics_timeline();
                CounterRow {
                    faded: tl.iter().map(|m| u64::from(m.faded_edges)).sum(),
                    lost: tl.iter().map(|m| u64::from(m.lost_receptions)).sum(),
                    crashed: tl.iter().map(|m| m.crashed).max().unwrap_or(0),
                    jamming: tl.iter().map(|m| m.jamming).max().unwrap_or(0),
                    jammed: tl.iter().map(|m| u64::from(m.jammed_receptions)).sum(),
                    cost: report.meters.iter().map(|m| m.energy()).sum(),
                }
            },
            |r| r.cost,
        );
        counters_seen &= match *label {
            "loss 0.3" => row.faded > 0 && row.lost > 0,
            "10% crash" => row.crashed > 0,
            _ => row.jamming > 0,
        };
        counter_table.push_row([
            (*label).to_string(),
            row.faded.to_string(),
            row.lost.to_string(),
            row.crashed.to_string(),
            row.jamming.to_string(),
            row.jammed.to_string(),
        ]);
    }

    // Findings from characteristic grid cells.
    let mid = |cells: &[(String, Cell, Cell)], needle: &str| {
        cells
            .iter()
            .find(|(l, _, _)| l.contains(needle))
            .map(|(_, a1, a2)| (a1.success, a2.success))
    };
    let (cd_loss_mid, nocd_loss_mid) = mid(&loss_cells, "0.3").unwrap_or((0.0, 1.0));
    let worst_jam = jam_cells.last();
    let crash_last = crash_cells.last();

    let mut findings = vec![
        format!(
            "at 30% reception loss Algorithm 2 succeeds {:.0}% of the time (its Θ(log n) \
             backoff repetitions are natural redundancy) vs {:.0}% for Algorithm 1's \
             one-shot CD rounds",
            100.0 * nocd_loss_mid,
            100.0 * cd_loss_mid
        ),
        "crash-stop faults are the mildest departure: the fault-aware verifier scores \
         the surviving subgraph, and both algorithms keep solving it — crashes remove \
         contenders instead of corrupting the channel"
            .into(),
        "jammers are qualitatively worse than loss: a jammed neighborhood is \
         *permanently* undecidable, so success collapses to whether the random jammer \
         placement spares the graph, and capped runs inflate energy for the stuck \
         nodes"
            .into(),
        "sub-phase wake staggering is absorbed by the shared round clock; staggering \
         across several phases breaks Algorithm 1 (missed one-shot announcements) — \
         §1.1's synchronous wake-up assumption is load-bearing"
            .into(),
        format!(
            "fault counters in the round metrics substantiate each claim directly \
             (faded_edges/lost_receptions for loss, cumulative crashed for crashes, \
             jamming/jammed_receptions for jammers): per-kind validation runs {}",
            if counters_seen {
                "all counted the injected fault"
            } else {
                "MISSED a fault kind"
            }
        ),
    ];
    if let Some((label, a1, a2)) = worst_jam {
        findings.push(format!(
            "at {label}: Algorithm 1 leaves {:.0}% / Algorithm 2 {:.0}% of surviving \
             nodes undecided at the 20× horizon",
            100.0 * a1.undecided,
            100.0 * a2.undecided
        ));
    }
    if let Some((label, a1, a2)) = crash_last {
        findings.push(format!(
            "at {label}: success stays at {:.0}% (A1) / {:.0}% (A2) under the \
             fault-aware verifier",
            100.0 * a1.success,
            100.0 * a2.success
        ));
    }

    ExperimentOutput {
        id: "e15",
        title: "robustness beyond the paper's model: fault-injection grid".into(),
        claim: "No claim in the paper — the model is lossless, crash-free, noise-free \
                and synchronous (§1.1). This experiment measures how far each \
                assumption carries under injected faults."
            .into(),
        sections: vec![
            Section {
                caption: format!(
                    "per-edge reception loss (gnp-d8, n = {n}, {trials} trials, cap {cap} rounds)"
                ),
                table: loss_table,
            },
            Section {
                caption: "crash-stop faults (random nodes, crash rounds uniform in the \
                          fault-free round budget)"
                    .into(),
                table: crash_table,
            },
            Section {
                caption: "adversarial jammers (random placement, noise every awake round)".into(),
                table: jam_table,
            },
            Section {
                caption: "staggered wake-up (random offsets, window in CD Luby phases)".into(),
                table: wake_table,
            },
            Section {
                caption: "fault-counter validation (Algorithm 2, one metrics-enabled run \
                          per fault kind)"
                    .into(),
                table: counter_table,
            },
        ],
        findings,
        charts: vec![
            ("e15_loss_sweep".into(), loss_chart),
            ("e15_crash_sweep".into(), crash_chart),
            ("e15_jam_sweep".into(), jam_chart),
            ("e15_wake_stagger".into(), wake_chart),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_covers_the_full_fault_grid() {
        let out = run(&ExpConfig::quick(41), &Orchestrator::ephemeral());
        assert_eq!(out.sections.len(), 5);
        assert_eq!(out.charts.len(), 4);
        // Every sweep's fault-free cell must succeed outright.
        for s in &out.sections[..4] {
            assert!(s.table.to_markdown().contains("100%"), "{}", s.caption);
        }
        // One counter-validation row per fault kind.
        assert_eq!(out.sections[4].table.len(), 3);
        assert!(out
            .findings
            .iter()
            .any(|f| f.contains("all counted the injected fault")));
    }
}
