//! The generic energy-conservation combinator `Conserve<P>`.
//!
//! [`Conserve`] runs *any* inner [`Protocol`] under the Dani–Hayes "wake up
//! your neighbors" scheme (PAPERS.md): real time is sliced into epochs of
//! `A + W` rounds — `A` *advertise* slots followed by a *work slice* that
//! simulates `W` virtual rounds of the inner protocol on a dense virtual
//! clock shared by every node. A node whose inner machine might transmit
//! during the coming slice announces itself in the advertise slots; a node
//! whose inner machine would only listen keeps the radio on just for the
//! advertise slots, and if the whole neighborhood stays silent there it
//! *buffers and replays* the slice — feeding the inner machine the
//! [`Feedback::Silence`] it would provably have heard — instead of
//! listening through it. The inner protocol's decisions are preserved while
//! per-node awake time is bounded per epoch (see `docs/CONSERVE.md` for the
//! scheme, the exact guarantees, and the awake-bound table).
//!
//! # Guarantees
//!
//! - **Per-epoch awake ceiling**: a node is awake at most `A + W` rounds
//!   per epoch, and at most `A` plus its inner machine's awake rounds in
//!   the epoch's slice.
//! - **Transformer bound**: on a fault-free run, a node's total awake
//!   rounds are at most `(1 + A) ×` its inner machine's awake rounds in
//!   the corresponding native run (every attended epoch contains at least
//!   one natively-awake inner round, because sleep chains are drained
//!   eagerly at epoch entry).
//! - **Decision preservation**: with the CD preset ([`ConserveConfig::
//!   for_cd`], `A = 1`, deterministic advertisement) on a fault-free
//!   single-channel run, the wrapper draws no randomness of its own and
//!   the inner machines see byte-identical callback sequences to the
//!   native run — same decisions, same RNG streams. The no-CD preset
//!   ([`ConserveConfig::for_nocd`]) detects neighborhood wake-ups only
//!   with high probability (collisions read as silence without CD), so
//!   there the guarantee is a verifier-correct MIS, not native equality.
//!
//! The scheme relies on [`Protocol::may_transmit_before`] being a *sound*
//! over-approximation: the wrapper panics if an inner machine transmits
//! inside a slice it disclaimed.

use radio_netsim::{Action, Feedback, Layer, Message, NodeRng, NodeStatus, Protocol, VirtualClock};
use rand::Rng;

/// Epoch geometry and advertisement policy for [`Conserve`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConserveConfig {
    /// Virtual work rounds per epoch (`W ≥ 1`).
    pub slice: u64,
    /// Advertise slots per epoch (`A ≥ 1`).
    pub adv_slots: u64,
    /// Probability that an advertiser transmits in a non-final advertise
    /// slot (the final slot always transmits). Irrelevant at `A = 1`.
    pub adv_tx_prob: f64,
}

impl ConserveConfig {
    /// A config with explicit geometry.
    ///
    /// # Panics
    ///
    /// Panics unless `slice ≥ 1`, `adv_slots ≥ 1`, and the probability is
    /// in `[0, 1]`.
    pub fn new(slice: u64, adv_slots: u64, adv_tx_prob: f64) -> ConserveConfig {
        assert!(
            slice >= 1,
            "Conserve needs at least one work round per epoch"
        );
        assert!(adv_slots >= 1, "Conserve needs at least one advertise slot");
        assert!(
            (0.0..=1.0).contains(&adv_tx_prob),
            "advertise probability {adv_tx_prob} outside [0, 1]"
        );
        ConserveConfig {
            slice,
            adv_slots,
            adv_tx_prob,
        }
    }

    /// The CD/beeping preset: one deterministic advertise slot. A single
    /// transmitter is heard, and simultaneous transmitters produce a
    /// Collision/Beep — either way [`Feedback::heard_activity`] is `true`,
    /// so wake-ups are detected with certainty and the wrapper draws no
    /// randomness (the native-equality preset).
    pub fn for_cd(slice: u64) -> ConserveConfig {
        ConserveConfig::new(slice, 1, 1.0)
    }

    /// The no-CD preset: eight advertise slots at transmit probability ½
    /// (plus the deterministic final slot). Without collision detection a
    /// collided slot reads as silence, so detection is only
    /// with-high-probability; the repeated independent slots drive the
    /// miss probability down geometrically.
    pub fn for_nocd(slice: u64) -> ConserveConfig {
        ConserveConfig::new(slice, 8, 0.5)
    }

    /// Real rounds per epoch (`A + W`).
    pub fn epoch_len(&self) -> u64 {
        self.adv_slots + self.slice
    }

    /// The epoch a virtual round belongs to.
    pub fn epoch_of_virtual(&self, v: u64) -> u64 {
        v / self.slice
    }

    /// The real round simulating virtual round `v` — the shared affine map
    /// `real(v) = epoch(v)·(A+W) + A + (v mod W)`.
    pub fn real_of_virtual(&self, v: u64) -> u64 {
        self.epoch_of_virtual(v) * self.epoch_len() + self.adv_slots + (v % self.slice)
    }

    /// The largest virtual round at or before real round `r` (the virtual
    /// "now" used when a node first wakes mid-run).
    pub fn virtual_floor(&self, r: u64) -> u64 {
        let epoch = r / self.epoch_len();
        let off = r % self.epoch_len();
        epoch * self.slice + off.saturating_sub(self.adv_slots).min(self.slice - 1)
    }

    /// A stable label for cache keys and table rows (`"W16/A1/p1.00"`).
    pub fn label(&self) -> String {
        format!(
            "W{}/A{}/p{:.2}",
            self.slice, self.adv_slots, self.adv_tx_prob
        )
    }
}

/// The energy-conservation wrapper; see the [module docs](self).
#[derive(Debug, Clone)]
pub struct Conserve<P> {
    inner: P,
    cfg: ConserveConfig,
    clock: VirtualClock,
    /// Next virtual round the inner machine is scheduled for.
    vdue: u64,
    /// The inner machine's undelivered action at `vdue` (never a sleep:
    /// sleep chains are consumed when this is filled).
    pending: Option<Action>,
    /// Epoch whose entry processing (drain + role decision) has run.
    entered: Option<u64>,
    /// Role this epoch: `true` = advertiser (inner may transmit in the
    /// slice), `false` = watcher.
    advertiser: bool,
    /// Watcher only: heard activity in an advertise slot this epoch.
    heard_wake: bool,
    /// The inner machine slept forever without reporting `finished()`; the
    /// wrapper parks with it.
    parked: bool,
}

impl<P: Protocol> Conserve<P> {
    /// Wraps `inner` under `cfg`. Every node of a run must be wrapped with
    /// the same config: the epoch grid is global, and an unwrapped node's
    /// slice traffic would collide with advertise slots.
    pub fn new(inner: P, cfg: ConserveConfig) -> Conserve<P> {
        Conserve {
            inner,
            cfg,
            clock: VirtualClock::new(),
            vdue: 0,
            pending: None,
            entered: None,
            advertiser: false,
            heard_wake: false,
            parked: false,
        }
    }

    /// The epoch geometry this wrapper runs under.
    pub fn config(&self) -> ConserveConfig {
        self.cfg
    }

    /// Polls the inner machine at `self.vdue`, ticking the virtual clock.
    fn inner_act(&mut self, rng: &mut NodeRng) -> Action {
        self.clock.observe(self.vdue);
        self.inner.act(self.vdue, rng)
    }

    /// Consumes the inner machine's sleep chain until an awake action is
    /// cached in `pending`, the machine finishes, or it parks forever.
    /// Sleeps need no channel, so draining them eagerly at epoch entry is
    /// behavior-preserving — and it guarantees every attended epoch holds
    /// at least one natively-awake inner round (the transformer bound).
    fn drain(&mut self, rng: &mut NodeRng) {
        while self.pending.is_none() && !self.inner.finished() && !self.parked {
            match self.inner_act(rng) {
                Action::Sleep { wake_at } => {
                    if wake_at == u64::MAX {
                        self.parked = true;
                    } else {
                        assert!(wake_at > self.vdue, "inner protocol slept backwards");
                        self.vdue = wake_at;
                    }
                }
                awake => self.pending = Some(awake),
            }
        }
    }

    /// Takes the next inner action at `self.vdue` — the cached one if the
    /// drain already polled it, a live poll otherwise.
    fn take_due(&mut self, rng: &mut NodeRng) -> Action {
        match self.pending.take() {
            Some(action) => action,
            None => self.inner_act(rng),
        }
    }

    /// The buffered-replay path: every advertise slot of `epoch` was
    /// silent, so no neighbor's inner machine transmits anywhere in the
    /// epoch's slice (transmitters advertise — that is what
    /// [`Protocol::may_transmit_before`] soundness buys). The inner
    /// machine's listens in this slice would each have heard
    /// [`Feedback::Silence`]; deliver exactly that without the radio.
    fn replay_slice(&mut self, epoch: u64, rng: &mut NodeRng) {
        let end = (epoch + 1) * self.cfg.slice;
        while self.vdue < end && !self.parked {
            if self.inner.finished() && self.pending.is_none() {
                break;
            }
            match self.take_due(rng) {
                Action::Sleep { wake_at } => {
                    if wake_at == u64::MAX {
                        self.parked = true;
                    } else {
                        assert!(wake_at > self.vdue, "inner protocol slept backwards");
                        self.vdue = wake_at;
                    }
                }
                Action::Listen | Action::ListenOn(_) => {
                    self.clock.observe(self.vdue);
                    self.inner.feedback(self.vdue, Feedback::Silence, rng);
                    self.vdue += 1;
                }
                Action::Transmit(_) | Action::TransmitOn(..) => panic!(
                    "Conserve contract breach: inner protocol transmitted at virtual \
                     round {} inside a slice its may_transmit_before() disclaimed",
                    self.vdue
                ),
            }
        }
    }

    /// Maps a sleep of the inner machine to the wrapper's real-round sleep:
    /// within the current epoch's slice, straight to the mapped work round;
    /// across epochs, to the target epoch's advertise window (the wrapper
    /// must hear that epoch's wake-ups before deciding how to run it).
    fn sleep_towards(&self, epoch: u64) -> Action {
        let target = self.cfg.epoch_of_virtual(self.vdue);
        if target == epoch {
            Action::Sleep {
                wake_at: self.cfg.real_of_virtual(self.vdue),
            }
        } else {
            Action::Sleep {
                wake_at: target * self.cfg.epoch_len(),
            }
        }
    }
}

impl<P: Protocol> Protocol for Conserve<P> {
    fn act(&mut self, round: u64, rng: &mut NodeRng) -> Action {
        if self.finished() || self.parked {
            return Action::halt();
        }
        let a = self.cfg.adv_slots;
        let l = self.cfg.epoch_len();
        let w = self.cfg.slice;
        let epoch = round / l;
        let off = round % l;
        if off < a {
            if self.entered != Some(epoch) {
                // Epoch entry: catch the virtual clock up (first wake of a
                // staggered or restarted node), then drain the sleep chain
                // so `pending`/`vdue` describe the next awake inner round.
                self.vdue = self.vdue.max(epoch * w);
                self.drain(rng);
                self.entered = Some(epoch);
                if self.parked || (self.inner.finished() && self.pending.is_none()) {
                    return Action::halt();
                }
                let target = self.cfg.epoch_of_virtual(self.vdue);
                if target != epoch {
                    // The slice holds no inner work: skip this epoch for
                    // free, straight to the advertise window that matters.
                    return Action::Sleep {
                        wake_at: target * l,
                    };
                }
                self.advertiser = matches!(
                    self.pending,
                    Some(Action::Transmit(_)) | Some(Action::TransmitOn(..))
                ) || self.inner.may_transmit_before((epoch + 1) * w);
                self.heard_wake = false;
            }
            if self.advertiser {
                // The final slot transmits deterministically, so at A = 1
                // the wrapper draws no randomness at all (native-equality
                // preset); earlier slots randomize so that no-CD listeners
                // get collision-free slots with high probability.
                if off == a - 1 || rng.gen_bool(self.cfg.adv_tx_prob) {
                    Action::Transmit(Message::unary())
                } else {
                    Action::Listen
                }
            } else {
                Action::Listen
            }
        } else {
            let v = epoch * w + (off - a);
            if self.entered != Some(epoch) {
                // Woke mid-slice with no advertise information (initial
                // wake window or recovery): execute faithfully — always
                // sound, just without this epoch's savings.
                self.vdue = self.vdue.max(v);
                self.entered = Some(epoch);
                self.advertiser = true;
                self.heard_wake = true;
            }
            if v < self.vdue {
                return self.sleep_towards(epoch);
            }
            debug_assert_eq!(v, self.vdue, "work slot out of phase with vdue");
            match self.take_due(rng) {
                Action::Sleep { wake_at } => {
                    if wake_at == u64::MAX {
                        self.parked = true;
                        return Action::halt();
                    }
                    assert!(wake_at > v, "inner protocol slept backwards");
                    self.vdue = wake_at;
                    self.sleep_towards(epoch)
                }
                awake => awake,
            }
        }
    }

    fn feedback(&mut self, round: u64, fb: Feedback, rng: &mut NodeRng) {
        let a = self.cfg.adv_slots;
        let l = self.cfg.epoch_len();
        let epoch = round / l;
        let off = round % l;
        if off < a {
            // Advertise-slot outcome. Advertisers ignore it; watchers
            // collect wake-up evidence and, if the whole window was
            // silent, replay the slice instead of attending it.
            if !self.advertiser {
                if fb.heard_activity() {
                    self.heard_wake = true;
                }
                if off == a - 1 && !self.heard_wake {
                    self.replay_slice(epoch, rng);
                }
            }
        } else {
            let v = epoch * self.cfg.slice + (off - a);
            self.clock.observe(v);
            self.inner.feedback(v, fb, rng);
            self.vdue = v + 1;
        }
    }

    fn status(&self) -> NodeStatus {
        self.inner.status()
    }

    fn finished(&self) -> bool {
        self.inner.finished() && self.pending.is_none()
    }

    fn on_restart(&mut self, round: u64, rng: &mut NodeRng) {
        // Fresh factory-built instance at the restart round: reset the
        // wrapper's scheduling state and hand the inner machine its virtual
        // restart instant. The first post-recovery act (round + 1) re-runs
        // epoch entry.
        self.clock.reset();
        self.entered = None;
        self.pending = None;
        self.heard_wake = false;
        self.advertiser = false;
        self.parked = false;
        self.vdue = self.cfg.virtual_floor(round);
        self.inner.on_restart(self.vdue, rng);
    }

    fn may_transmit_before(&self, horizon: u64) -> bool {
        // The wrapper itself transmits (advertises) only when its inner
        // machine might; delegate with the horizon mapped to virtual time.
        if self.finished() || self.parked {
            return false;
        }
        if matches!(
            self.pending,
            Some(Action::Transmit(_)) | Some(Action::TransmitOn(..))
        ) {
            return true;
        }
        self.inner
            .may_transmit_before(self.cfg.virtual_floor(horizon))
    }
}

impl<P: Protocol> Layer for Conserve<P> {
    type Inner = P;

    fn inner(&self) -> Option<&P> {
        Some(&self.inner)
    }

    fn virtual_now(&self) -> Option<u64> {
        self.clock.now()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cd::CdMis;
    use crate::params::CdParams;
    use mis_graphs::generators;
    use radio_netsim::{ChannelModel, RunReport, SimConfig, Simulator};
    use std::sync::{Arc, Mutex};

    fn run_native(g: &mis_graphs::Graph, params: CdParams, seed: u64) -> RunReport {
        Simulator::new(g, SimConfig::new(ChannelModel::Cd).with_seed(seed))
            .run(|_, _| CdMis::new(params))
    }

    fn run_conserved(
        g: &mis_graphs::Graph,
        params: CdParams,
        cfg: ConserveConfig,
        seed: u64,
    ) -> RunReport {
        Simulator::new(g, SimConfig::new(ChannelModel::Cd).with_seed(seed))
            .run(|_, _| Conserve::new(CdMis::new(params), cfg))
    }

    #[test]
    fn epoch_geometry_maps_virtual_rounds() {
        let cfg = ConserveConfig::new(16, 2, 0.5);
        assert_eq!(cfg.epoch_len(), 18);
        assert_eq!(cfg.real_of_virtual(0), 2);
        assert_eq!(cfg.real_of_virtual(15), 17);
        assert_eq!(cfg.real_of_virtual(16), 20);
        // The floor inverts the map on work rounds and clamps advertise
        // slots to the epoch's slice start.
        assert_eq!(cfg.virtual_floor(2), 0);
        assert_eq!(cfg.virtual_floor(17), 15);
        assert_eq!(cfg.virtual_floor(18), 16);
        assert_eq!(cfg.virtual_floor(19), 16);
        assert_eq!(cfg.virtual_floor(20), 16);
        for v in [0u64, 1, 15, 16, 40, 1000] {
            assert_eq!(cfg.virtual_floor(cfg.real_of_virtual(v)), v);
        }
    }

    #[test]
    #[should_panic(expected = "at least one advertise slot")]
    fn config_rejects_zero_advertise_slots() {
        ConserveConfig::new(8, 0, 1.0);
    }

    #[test]
    fn cd_preset_preserves_native_decisions_exactly() {
        // The native-equality theorem, checked end to end: with the CD
        // preset the wrapper draws no RNG, so every inner machine sees the
        // byte-identical callback sequence and decides identically.
        for (n, p, seed) in [(24, 0.15, 3u64), (40, 0.08, 11), (16, 0.3, 7)] {
            let g = generators::gnp(n, p, seed);
            let params = CdParams::for_n(64);
            let native = run_native(&g, params, seed);
            for slice in [4u64, 16, 64] {
                let conserved = run_conserved(&g, params, ConserveConfig::for_cd(slice), seed);
                assert_eq!(
                    native.statuses, conserved.statuses,
                    "decisions diverged at slice {slice} on n={n} seed={seed}"
                );
                assert!(
                    conserved.is_correct_mis(&g),
                    "{:?}",
                    conserved.verify_mis(&g)
                );
            }
        }
    }

    #[test]
    fn cd_preset_bounds_awake_rounds_per_node() {
        let g = generators::gnp(32, 0.12, 5);
        let params = CdParams::for_n(64);
        let cfg = ConserveConfig::for_cd(16);
        let native = run_native(&g, params, 5);
        let conserved = run_conserved(&g, params, cfg, 5);
        for v in 0..g.len() {
            let nat = native.meters[v].energy();
            let cons = conserved.meters[v].energy();
            assert!(
                cons <= (1 + cfg.adv_slots) * nat,
                "node {v}: conserved {cons} above (1+A)x native {nat}"
            );
            if nat == 0 {
                assert_eq!(cons, 0, "node {v} spent energy with no native work");
            }
        }
        // The round stretch is bounded by the epoch geometry: at most one
        // extra epoch, each 1 + A/W longer than its slice.
        let stretch = (1 + native.rounds / cfg.slice + 1) * cfg.epoch_len();
        assert!(
            conserved.rounds <= stretch,
            "rounds {} above geometric stretch {stretch}",
            conserved.rounds
        );
    }

    /// An inner machine that listens for a fixed span and logs every
    /// feedback it receives, tagged with its virtual round.
    struct LogListener {
        until: u64,
        log: Arc<Mutex<Vec<(u64, Feedback)>>>,
        done: bool,
    }

    impl Protocol for LogListener {
        fn act(&mut self, round: u64, _rng: &mut NodeRng) -> Action {
            if round >= self.until {
                self.done = true;
                return Action::halt();
            }
            Action::Listen
        }
        fn feedback(&mut self, round: u64, fb: Feedback, _rng: &mut NodeRng) {
            self.log.lock().unwrap().push((round, fb));
        }
        fn status(&self) -> NodeStatus {
            NodeStatus::OutMis
        }
        fn finished(&self) -> bool {
            self.done
        }
        fn may_transmit_before(&self, _horizon: u64) -> bool {
            false
        }
    }

    /// An inner machine that sleeps, then transmits once at a fixed
    /// virtual round and halts.
    struct OneShot {
        at: u64,
        done: bool,
    }

    impl Protocol for OneShot {
        fn act(&mut self, round: u64, _rng: &mut NodeRng) -> Action {
            if round < self.at {
                return Action::Sleep { wake_at: self.at };
            }
            Action::Transmit(Message::unary())
        }
        fn feedback(&mut self, _round: u64, _fb: Feedback, _rng: &mut NodeRng) {
            self.done = true;
        }
        fn status(&self) -> NodeStatus {
            NodeStatus::InMis
        }
        fn finished(&self) -> bool {
            self.done
        }
        fn may_transmit_before(&self, horizon: u64) -> bool {
            !self.done && self.at < horizon
        }
    }

    /// The sleeping-message-loss footgun, and Conserve's compensation: a
    /// wrapper that naively sleeps through rounds drops the traffic its
    /// inner machine was owed, while Conserve's advertise-then-attend
    /// scheme delivers it.
    #[test]
    fn buffered_replay_compensates_for_sleeping_message_loss() {
        let g = generators::path(2);
        let log = Arc::new(Mutex::new(Vec::new()));

        // Naive control: node 1's wrapper sleeps its radio through real
        // rounds [0, 8) and only then runs its inner listener — node 0's
        // transmission at round 3 lands on a sleeping radio and is lost.
        struct SleepShim<P> {
            inner: P,
            from: u64,
        }
        impl<P: Protocol> Protocol for SleepShim<P> {
            fn act(&mut self, round: u64, rng: &mut NodeRng) -> Action {
                if round < self.from {
                    return Action::Sleep { wake_at: self.from };
                }
                self.inner.act(round - self.from, rng)
            }
            fn feedback(&mut self, round: u64, fb: Feedback, rng: &mut NodeRng) {
                self.inner.feedback(round - self.from, fb, rng)
            }
            fn status(&self) -> NodeStatus {
                self.inner.status()
            }
            fn finished(&self) -> bool {
                self.inner.finished()
            }
        }

        let naive_log = Arc::clone(&log);
        Simulator::new(&g, SimConfig::new(ChannelModel::Cd).with_seed(1)).run(|v, _| {
            let log = Arc::clone(&naive_log);
            let b: Box<dyn Protocol + Send> = if v == 0 {
                Box::new(OneShot { at: 3, done: false })
            } else {
                Box::new(SleepShim {
                    inner: LogListener {
                        until: 8,
                        log,
                        done: false,
                    },
                    from: 8,
                })
            };
            b
        });
        let heard_naive = log
            .lock()
            .unwrap()
            .iter()
            .filter(|(_, fb)| fb.heard_activity())
            .count();
        assert_eq!(
            heard_naive, 0,
            "the footgun did not fire: a sleeping wrapper should lose inner traffic"
        );

        // Conserve: node 0 advertises its slice, node 1 attends it and
        // hears the transmission at the same virtual round natively.
        log.lock().unwrap().clear();
        let cons_log = Arc::clone(&log);
        Simulator::new(&g, SimConfig::new(ChannelModel::Cd).with_seed(1)).run(|v, _| {
            let log = Arc::clone(&cons_log);
            let b: Box<dyn Protocol + Send> = if v == 0 {
                Box::new(Conserve::new(
                    OneShot { at: 3, done: false },
                    ConserveConfig::for_cd(8),
                ))
            } else {
                Box::new(Conserve::new(
                    LogListener {
                        until: 8,
                        log,
                        done: false,
                    },
                    ConserveConfig::for_cd(8),
                ))
            };
            b
        });
        let entries = log.lock().unwrap().clone();
        assert!(
            entries.iter().any(|(v, fb)| *v == 3 && fb.heard_activity()),
            "Conserve lost the inner transmission: {entries:?}"
        );
    }

    #[test]
    fn silent_neighborhood_triggers_buffered_replay() {
        // An isolated listener: nothing can ever wake it, so after the
        // (silent) advertise slot it replays the whole slice — the inner
        // machine hears its 5 Silences, but the node is awake only for
        // advertise slots.
        let g = generators::path(1);
        let log = Arc::new(Mutex::new(Vec::new()));
        let factory_log = Arc::clone(&log);
        let report =
            Simulator::new(&g, SimConfig::new(ChannelModel::Cd).with_seed(2)).run(move |_, _| {
                Conserve::new(
                    LogListener {
                        until: 5,
                        log: Arc::clone(&factory_log),
                        done: false,
                    },
                    ConserveConfig::for_cd(16),
                )
            });
        let entries = log.lock().unwrap().clone();
        assert_eq!(
            entries,
            (0..5).map(|v| (v, Feedback::Silence)).collect::<Vec<_>>(),
            "replay must feed the inner machine its silent rounds in order"
        );
        // One advertise slot is the node's entire awake time: the listens
        // were replayed, not attended.
        assert_eq!(report.meters[0].energy(), 1);
        assert!(report.completed);
    }

    #[test]
    #[should_panic(expected = "Conserve contract breach")]
    fn replay_panics_when_the_inner_machine_lies() {
        // An inner machine that disclaims transmission but transmits at
        // virtual round 1: the replay path must refuse to fake feedback
        // for it.
        struct Liar {
            done: bool,
        }
        impl Protocol for Liar {
            fn act(&mut self, round: u64, _rng: &mut NodeRng) -> Action {
                if round == 0 {
                    Action::Listen
                } else {
                    Action::Transmit(Message::unary())
                }
            }
            fn feedback(&mut self, round: u64, _fb: Feedback, _rng: &mut NodeRng) {
                self.done = round > 0;
            }
            fn status(&self) -> NodeStatus {
                NodeStatus::OutMis
            }
            fn finished(&self) -> bool {
                self.done
            }
            fn may_transmit_before(&self, _horizon: u64) -> bool {
                false
            }
        }
        let g = generators::path(1);
        Simulator::new(&g, SimConfig::new(ChannelModel::Cd).with_seed(3))
            .run(|_, _| Conserve::new(Liar { done: false }, ConserveConfig::for_cd(8)));
    }

    #[test]
    fn layer_delegation_and_virtual_clock() {
        let params = CdParams::for_n(64);
        let cfg = ConserveConfig::for_cd(8);
        let mut c = Conserve::new(CdMis::new(params), cfg);
        // Fresh wrapper: no virtual time yet, status delegates.
        assert_eq!(c.virtual_now(), None);
        assert_eq!(c.status(), c.inner().unwrap().status());
        assert!(!c.finished());

        let mut rng = <NodeRng as rand::SeedableRng>::seed_from_u64(9);
        let a0 = c.act(0, &mut rng);
        // Epoch entry drained the inner machine at virtual round 0.
        assert_eq!(c.virtual_now(), Some(0));
        assert!(
            a0.is_awake(),
            "CdMis starts awake, so its wrapper advertises"
        );
        assert_eq!(c.status(), c.inner().unwrap().status());

        // A restart resets the virtual timeline and scheduling state.
        c.on_restart(40, &mut rng);
        assert_eq!(c.virtual_now(), None);
        assert!(!c.finished());
        let cfg_check = c.config();
        assert_eq!(cfg_check, cfg);
    }

    #[test]
    fn wrapper_transmit_oracle_delegates_with_mapped_horizon() {
        let cfg = ConserveConfig::for_cd(8);
        let c = Conserve::new(
            OneShot {
                at: 20,
                done: false,
            },
            cfg,
        );
        // OneShot transmits at virtual 20, i.e. real round 24 under W=8,
        // A=1; the wrapper's oracle maps horizons back to virtual time.
        assert!(!c.may_transmit_before(cfg.real_of_virtual(20)));
        assert!(c.may_transmit_before(cfg.real_of_virtual(21)));
    }
}
