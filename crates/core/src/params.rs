//! Algorithm parameters and the paper's constants.
//!
//! The paper's constants (§3.1, §5.2) are chosen for the asymptotic
//! 1/poly(n) failure guarantee: β ≥ 4, κ ≥ 5, C ≥ 4/log(64/63) ≈ 177, and
//! C′ large enough that `Rec-EBackoff(C′·log n, Δ)` succeeds with
//! probability 1 − 1/n⁵ (C′ ≈ 26). Those values are available as the
//! `paper` presets; they make finite-n runs extremely long without changing
//! the asymptotic shape. The `for_n` presets use calibrated smaller
//! constants that the test suite verifies still succeed with high empirical
//! probability at experiment scales — every experiment records which preset
//! it used.

use serde::{Deserialize, Serialize};

/// ⌈log₂(max(x, 2))⌉ — the paper's `log` is base 2 and our schedules need
/// it to be ≥ 1.
pub fn log2_ceil(x: usize) -> u32 {
    let x = x.max(2);
    (usize::BITS - (x - 1).leading_zeros()).max(1)
}

/// log₂(max(n, 2)) as a float, for scaling constants.
pub fn log2f(n: usize) -> f64 {
    (n.max(2) as f64).log2()
}

/// Parameters for Algorithm 1 (CD model, §3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CdParams {
    /// Shared upper bound on the network size (§1.1).
    pub n: usize,
    /// β: rank length multiplier — ranks are ⌈β·log₂ n⌉ bits.
    pub beta: f64,
    /// C: Luby-phase multiplier — the algorithm runs ⌈C·log₂ n⌉ phases.
    pub c: f64,
}

impl CdParams {
    /// The paper's asymptotic-regime constants (β = 4, C = 4).
    pub fn paper(n: usize) -> CdParams {
        CdParams {
            n,
            beta: 4.0,
            c: 4.0,
        }
    }

    /// Calibrated experiment preset (β = 2, C = 4): succeeds with high
    /// empirical probability for n up to ~10⁶ while keeping runs short.
    pub fn for_n(n: usize) -> CdParams {
        CdParams {
            n,
            beta: 2.0,
            c: 4.0,
        }
    }

    /// Number of rank bits per Luby phase: ⌈β·log₂ n⌉ (Algorithm 1 line 3).
    pub fn rank_bits(&self) -> u32 {
        (self.beta * log2f(self.n)).ceil().max(1.0) as u32
    }

    /// Number of Luby phases: ⌈C·log₂ n⌉ (Algorithm 1 line 2).
    pub fn phases(&self) -> u32 {
        (self.c * log2f(self.n)).ceil().max(1.0) as u32
    }

    /// Rounds in one Luby phase: β·log n competition rounds + 1 check round.
    pub fn phase_len(&self) -> u64 {
        self.rank_bits() as u64 + 1
    }

    /// Total schedule length (the algorithm's worst-case round complexity):
    /// C·log n · (β·log n + 1) = O(log²n).
    pub fn total_rounds(&self) -> u64 {
        self.phases() as u64 * self.phase_len()
    }
}

/// Parameters for the t-resilient multichannel MIS (Daum–Kuhn model).
///
/// The protocol lifts Algorithm 1's Luby phases onto `channels` parallel
/// channels of which an adversary may jam up to `resilience` per round.
/// Every single-channel competition/check *round* becomes a *block* of
/// channel-hopping Decay slots sized so that a clean (singleton, unjammed)
/// reception happens inside the block with probability ≥ 1 − 1/poly(n):
/// blocks are `windows_per_block · decay_window` slots, where
/// `windows_per_block = ⌈γ·F²/(F−t)·log₂ n⌉` carries the Daum–Kuhn
/// F²/(F−t) jamming overhead and `decay_window` sweeps transmit
/// probabilities 1, ½, …, 1/2n to defeat unknown contention.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MultichannelParams {
    /// Shared upper bound on the network size (§1.1).
    pub n: usize,
    /// F: number of parallel channels the radios can tune to (F ≥ 1).
    pub channels: u16,
    /// t: jamming budget the schedule must tolerate — the adversary may
    /// disrupt up to t < F channels per round.
    pub resilience: u16,
    /// β: rank length multiplier — ranks are ⌈β·log₂ n⌉ bits.
    pub beta: f64,
    /// C: Luby-phase multiplier — the algorithm runs ⌈C·log₂ n⌉ phases.
    pub c: f64,
    /// γ: Decay-window multiplier per block — blocks hold
    /// ⌈γ·F²/(F−t)·log₂ n⌉ windows.
    pub gamma: f64,
}

impl MultichannelParams {
    /// The asymptotic-regime constants (β = 4, C = 4, γ = 12).
    ///
    /// Panics if `resilience >= channels` or `channels == 0`: with every
    /// channel jammed no protocol can communicate (Daum–Kuhn assume t < F).
    pub fn paper(n: usize, channels: u16, resilience: u16) -> MultichannelParams {
        MultichannelParams::preset(n, channels, resilience, 4.0, 4.0, 12.0)
    }

    /// Calibrated experiment preset (β = 2, C = 4, γ = 6): per-block clean
    /// reception failure is ≤ exp(−γ·log₂n/e) ≈ n^−3.2, small enough that
    /// rank ties (the same failure mode as [`CdParams`]) dominate at
    /// experiment scales.
    pub fn for_n(n: usize, channels: u16, resilience: u16) -> MultichannelParams {
        MultichannelParams::preset(n, channels, resilience, 2.0, 4.0, 6.0)
    }

    fn preset(
        n: usize,
        channels: u16,
        resilience: u16,
        beta: f64,
        c: f64,
        gamma: f64,
    ) -> MultichannelParams {
        assert!(channels >= 1, "multichannel MIS needs at least one channel");
        assert!(
            resilience < channels,
            "resilience t = {resilience} must be < channels F = {channels}"
        );
        MultichannelParams {
            n,
            channels,
            resilience,
            beta,
            c,
            gamma,
        }
    }

    /// Number of rank bits per Luby phase: ⌈β·log₂ n⌉.
    pub fn rank_bits(&self) -> u32 {
        (self.beta * log2f(self.n)).ceil().max(1.0) as u32
    }

    /// Number of Luby phases: ⌈C·log₂ n⌉.
    pub fn phases(&self) -> u32 {
        (self.c * log2f(self.n)).ceil().max(1.0) as u32
    }

    /// Decay-window width W = ⌈log₂(2n)⌉: sweeping transmit probability
    /// 2⁻ʲ for j = 0..W covers any caller count up to n.
    pub fn decay_window(&self) -> u32 {
        log2_ceil(2 * self.n.max(1))
    }

    /// Windows per block: ⌈γ·F²/(F−t)·log₂ n⌉ — the Daum–Kuhn jamming
    /// overhead. A random (listener, caller) channel meeting lands on an
    /// unjammed channel with probability ≥ (F−t)/F², so this many windows
    /// drive the per-block miss probability below 1/poly(n).
    pub fn windows_per_block(&self) -> u32 {
        let f = self.channels as f64;
        let t = self.resilience as f64;
        (self.gamma * f * f / (f - t) * log2f(self.n))
            .ceil()
            .max(1.0) as u32
    }

    /// Slots in one block (one lifted competition/check round):
    /// `windows_per_block · decay_window`.
    pub fn block_len(&self) -> u64 {
        self.windows_per_block() as u64 * self.decay_window() as u64
    }

    /// Blocks in one Luby phase: `rank_bits` competition blocks + 1 check
    /// block.
    pub fn blocks_per_phase(&self) -> u64 {
        self.rank_bits() as u64 + 1
    }

    /// Slots in one Luby phase.
    pub fn phase_len(&self) -> u64 {
        self.blocks_per_phase() * self.block_len()
    }

    /// Total schedule length: O(F²/(F−t) · log⁴n) slots (phases ×
    /// blocks-per-phase × block length).
    pub fn total_rounds(&self) -> u64 {
        self.phases() as u64 * self.phase_len()
    }
}

/// Parameters for LowDegreeMIS (§4.2): the Davies-style radio simulation of
/// Ghaffari's MIS algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LowDegreeParams {
    /// Shared upper bound on the network size.
    pub n: usize,
    /// Upper bound on the maximum degree of the (sub)graph the instance
    /// runs on: κ·log n inside Algorithm 2 (Corollary 13), Δ standalone.
    pub d_max: usize,
    /// Ghaffari-round multiplier: the instance simulates ⌈c_g·log₂ n⌉
    /// rounds of Ghaffari's algorithm.
    pub c_g: f64,
    /// Mark-exchange iterations multiplier (conflict detection w.h.p.).
    pub c_m: f64,
    /// MIS-notification iterations multiplier.
    pub c_n: f64,
    /// Degree-estimate trials per scale multiplier.
    pub c_e: f64,
}

impl LowDegreeParams {
    /// The paper-regime constants.
    pub fn paper(n: usize, d_max: usize) -> LowDegreeParams {
        LowDegreeParams {
            n,
            d_max,
            c_g: 8.0,
            c_m: 26.0,
            c_n: 26.0,
            c_e: 8.0,
        }
    }

    /// Calibrated experiment preset.
    pub fn for_n(n: usize, d_max: usize) -> LowDegreeParams {
        LowDegreeParams {
            n,
            d_max,
            c_g: 3.0,
            c_m: 2.0,
            c_n: 2.0,
            c_e: 1.0,
        }
    }

    /// Simulated Ghaffari rounds: ⌈c_g·log₂ n⌉.
    pub fn ghaffari_rounds(&self) -> u32 {
        (self.c_g * log2f(self.n)).ceil().max(1.0) as u32
    }

    /// Decay-window width: ⌈log₂(2·d_max)⌉ rounds cover sender counts up
    /// to d_max.
    pub fn window(&self) -> u32 {
        log2_ceil(2 * self.d_max.max(1))
    }

    /// Mark-exchange iterations per Ghaffari round.
    pub fn mark_iterations(&self) -> u32 {
        (self.c_m * log2f(self.n)).ceil().max(1.0) as u32
    }

    /// Notification iterations per Ghaffari round.
    pub fn notify_iterations(&self) -> u32 {
        (self.c_n * log2f(self.n)).ceil().max(1.0) as u32
    }

    /// Degree-estimate scales: j = 0..scales(), probing transmit
    /// probability p·2⁻ʲ.
    pub fn estimate_scales(&self) -> u32 {
        log2_ceil(2 * self.d_max.max(1)) + 1
    }

    /// Degree-estimate trials per scale.
    pub fn estimate_trials(&self) -> u32 {
        (self.c_e * log2f(self.n)).ceil().max(1.0) as u32
    }

    /// Smallest desire level: 2^-(min_desire_exp). Ghaffari's p never drops
    /// below 1/(4·d_max).
    pub fn min_desire_exp(&self) -> u32 {
        log2_ceil(4 * self.d_max.max(1))
    }

    /// Rounds of the mark-exchange section.
    pub fn t_mark(&self) -> u64 {
        self.mark_iterations() as u64 * self.window() as u64
    }

    /// Rounds of the notification section.
    pub fn t_notify(&self) -> u64 {
        self.notify_iterations() as u64 * self.window() as u64
    }

    /// Rounds of the degree-estimate section (one round per trial).
    pub fn t_estimate(&self) -> u64 {
        self.estimate_scales() as u64 * self.estimate_trials() as u64
    }

    /// Rounds of one simulated Ghaffari round.
    pub fn t_round(&self) -> u64 {
        self.t_mark() + self.t_notify() + self.t_estimate()
    }

    /// Total schedule length T_G = O(log²n·log d_max).
    pub fn total_rounds(&self) -> u64 {
        self.ghaffari_rounds() as u64 * self.t_round()
    }
}

/// Parameters for Algorithm 2 (no-CD model, §5).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoCdParams {
    /// Shared upper bound on the network size.
    pub n: usize,
    /// Shared upper bound Δ on the maximum degree (§1.1). When Δ is
    /// unknown, use [`crate::unknown_delta`] or pass `n`.
    pub delta: usize,
    /// β: rank length multiplier.
    pub beta: f64,
    /// C: Luby-phase multiplier (paper: C ≥ 4/log(64/63)).
    pub c: f64,
    /// κ: committed-degree multiplier — committed nodes assume ≤ κ·log n
    /// undecided neighbors (§5.1.1, Corollary 13).
    pub kappa: f64,
    /// C′: deep-check/backoff repetition multiplier — deep checks run
    /// ⌈C′·log₂ n⌉ backoff iterations.
    pub c_prime: f64,
    /// LowDegreeMIS tuning for the committed-subgraph instances.
    pub ld_c_g: f64,
    /// See [`LowDegreeParams::c_m`].
    pub ld_c_m: f64,
    /// See [`LowDegreeParams::c_n`].
    pub ld_c_n: f64,
    /// See [`LowDegreeParams::c_e`].
    pub ld_c_e: f64,
    /// Optional hard energy cap (Theorem 10's thresholding): a node that
    /// exceeds it sleeps forever and decides arbitrarily. `None` disables.
    pub energy_cap: Option<u64>,
    /// Ablation (E11): replace the O(log Δ) shallow check with a full
    /// deep check for losers — the design §5.1.2 argues against.
    pub ablate_deep_shallow: bool,
    /// Ablation (E11): disable the committed-degree reduction of §5.1.1
    /// (committed nodes keep Δ_est = Δ).
    pub ablate_no_commit_reduction: bool,
}

impl NoCdParams {
    /// The paper's asymptotic-regime constants (β = 4, κ = 5,
    /// C = 4/log₂(64/63) ≈ 177, C′ = 26).
    pub fn paper(n: usize, delta: usize) -> NoCdParams {
        NoCdParams {
            n,
            delta,
            beta: 4.0,
            c: 4.0 / (64f64 / 63.0).log2(),
            kappa: 5.0,
            c_prime: 26.0,
            ld_c_g: 8.0,
            ld_c_m: 26.0,
            ld_c_n: 26.0,
            ld_c_e: 8.0,
            energy_cap: None,
            ablate_deep_shallow: false,
            ablate_no_commit_reduction: false,
        }
    }

    /// Calibrated experiment preset: the test suite validates it reaches
    /// high success rates at experiment scales. beta = 2.5 keeps rank-tie
    /// probability around 2^(-2.5 log n) per pair-phase - ties are the
    /// dominant empirical failure mode on low-degree graphs (two tied
    /// neighbors never hear each other and both win).
    pub fn for_n(n: usize, delta: usize) -> NoCdParams {
        NoCdParams {
            n,
            delta,
            beta: 2.5,
            c: 4.0,
            kappa: 4.0,
            c_prime: 2.0,
            ld_c_g: 3.0,
            ld_c_m: 2.0,
            ld_c_n: 2.0,
            ld_c_e: 1.0,
            energy_cap: None,
            ablate_deep_shallow: false,
            ablate_no_commit_reduction: false,
        }
    }

    /// Number of rank bits per Luby phase.
    pub fn rank_bits(&self) -> u32 {
        (self.beta * log2f(self.n)).ceil().max(1.0) as u32
    }

    /// Number of Luby phases.
    pub fn phases(&self) -> u32 {
        (self.c * log2f(self.n)).ceil().max(1.0) as u32
    }

    /// Deep-check backoff iterations k = ⌈C′·log₂ n⌉.
    pub fn k_deep(&self) -> u32 {
        (self.c_prime * log2f(self.n)).ceil().max(1.0) as u32
    }

    /// Backoff window width W = ⌈log₂ Δ⌉ + 1 (see
    /// [`crate::backoff::backoff_window`] for why the +1).
    pub fn window(&self) -> u32 {
        log2_ceil(self.delta.max(2)) + 1
    }

    /// T_B(k): rounds of a k-repeated backoff = k·W (Lemma 8).
    pub fn t_backoff(&self, k: u32) -> u64 {
        k as u64 * self.window() as u64
    }

    /// The reduced degree estimate committed nodes adopt:
    /// min(Δ, ⌈κ·log₂ n⌉) (Algorithm 3 line 12). The E11 ablation keeps
    /// Δ_est = Δ instead.
    pub fn committed_degree(&self) -> usize {
        if self.ablate_no_commit_reduction {
            self.delta.max(1)
        } else {
            ((self.kappa * log2f(self.n)).ceil().max(1.0) as usize).min(self.delta.max(1))
        }
    }

    /// Backoff repetitions of the end-of-phase check losers run: 1 (the
    /// paper's shallow check) unless the E11 ablation upgrades it to a
    /// deep check.
    pub fn shallow_k(&self) -> u32 {
        if self.ablate_deep_shallow {
            self.k_deep()
        } else {
            1
        }
    }

    /// T_C: competition length = (rank bits)·T_B(k_deep) (§5.2).
    pub fn t_competition(&self) -> u64 {
        self.rank_bits() as u64 * self.t_backoff(self.k_deep())
    }

    /// LowDegreeMIS parameters for the committed-subgraph instance
    /// (d_max = κ·log n).
    pub fn low_degree_params(&self) -> LowDegreeParams {
        LowDegreeParams {
            n: self.n,
            d_max: self.committed_degree(),
            c_g: self.ld_c_g,
            c_m: self.ld_c_m,
            c_n: self.ld_c_n,
            c_e: self.ld_c_e,
        }
    }

    /// T_G: LowDegreeMIS window length.
    pub fn t_g(&self) -> u64 {
        self.low_degree_params().total_rounds()
    }

    /// T_L: one full Luby phase =
    /// T_C + 2·T_B(C′ log n) + T_G + T_B(shallow_k) (§5.2; shallow_k = 1
    /// unless ablated).
    pub fn t_luby(&self) -> u64 {
        self.t_competition()
            + 2 * self.t_backoff(self.k_deep())
            + self.t_g()
            + self.t_backoff(self.shallow_k())
    }

    /// Total schedule length.
    pub fn total_rounds(&self) -> u64 {
        self.phases() as u64 * self.t_luby()
    }

    /// The default energy threshold used when [`NoCdParams::energy_cap`] is
    /// enabled via [`NoCdParams::with_default_cap`]:
    /// Θ(log²n·loglog n) with a generous constant.
    pub fn default_energy_cap(&self) -> u64 {
        let l = log2f(self.n);
        let ll = log2f(log2f(self.n).ceil() as usize).max(1.0);
        (64.0 * l * l * ll).ceil() as u64
    }

    /// Enables the Theorem-10 energy threshold at the default value.
    pub fn with_default_cap(mut self) -> NoCdParams {
        self.energy_cap = Some(self.default_energy_cap());
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log2_ceil_values() {
        assert_eq!(log2_ceil(0), 1);
        assert_eq!(log2_ceil(1), 1);
        assert_eq!(log2_ceil(2), 1);
        assert_eq!(log2_ceil(3), 2);
        assert_eq!(log2_ceil(4), 2);
        assert_eq!(log2_ceil(5), 3);
        assert_eq!(log2_ceil(1024), 10);
        assert_eq!(log2_ceil(1025), 11);
    }

    #[test]
    fn cd_params_scaling() {
        let p = CdParams::for_n(1024);
        assert_eq!(p.rank_bits(), 20); // 2·log2(1024)
        assert_eq!(p.phases(), 40);
        assert_eq!(p.phase_len(), 21);
        assert_eq!(p.total_rounds(), 40 * 21);
        // Paper preset is at least as large.
        let paper = CdParams::paper(1024);
        assert!(paper.rank_bits() >= p.rank_bits());
    }

    #[test]
    fn cd_params_tiny_n() {
        let p = CdParams::for_n(1);
        assert!(p.rank_bits() >= 1);
        assert!(p.phases() >= 1);
    }

    #[test]
    fn nocd_sections_add_up() {
        let p = NoCdParams::for_n(256, 32);
        let t_l = p.t_competition() + 2 * p.t_backoff(p.k_deep()) + p.t_g() + p.t_backoff(1);
        assert_eq!(p.shallow_k(), 1);
        assert_eq!(p.t_luby(), t_l);
        assert_eq!(p.total_rounds(), p.phases() as u64 * t_l);
        assert!(p.window() >= 1);
        assert_eq!(p.window(), 6);
    }

    #[test]
    fn committed_degree_capped_by_delta() {
        let p = NoCdParams::for_n(1 << 20, 8);
        assert_eq!(p.committed_degree(), 8);
        let p = NoCdParams::for_n(256, 10_000);
        assert_eq!(p.committed_degree(), 32); // κ=4 · log2(256)=8
    }

    #[test]
    fn low_degree_sections_add_up() {
        let p = LowDegreeParams::for_n(256, 32);
        assert_eq!(p.t_round(), p.t_mark() + p.t_notify() + p.t_estimate());
        assert_eq!(p.total_rounds(), p.ghaffari_rounds() as u64 * p.t_round());
        assert!(p.window() >= 1);
        assert!(p.min_desire_exp() >= p.window());
    }

    #[test]
    fn paper_constants_match_text() {
        let p = NoCdParams::paper(1 << 16, 64);
        assert_eq!(p.beta, 4.0);
        assert_eq!(p.kappa, 5.0);
        // C ≥ 4 / log(64/63) ≈ 176.7
        assert!(p.c > 176.0 && p.c < 178.0);
        // C′ yields (7/8)^(C′ log n) ≤ n⁻⁵.
        let failure = (7f64 / 8.0).powf(p.c_prime * log2f(p.n));
        assert!(failure <= (p.n as f64).powi(-5));
    }

    #[test]
    fn default_cap_grows_like_log2_loglog() {
        let small = NoCdParams::for_n(1 << 8, 16).default_energy_cap();
        let large = NoCdParams::for_n(1 << 16, 16).default_energy_cap();
        // 16²·4 / 8²·3 = 1024/192 ≈ 5.3× growth expected.
        let ratio = large as f64 / small as f64;
        assert!(ratio > 3.0 && ratio < 8.0, "ratio {ratio}");
        let capped = NoCdParams::for_n(1 << 8, 16).with_default_cap();
        assert_eq!(capped.energy_cap, Some(small));
    }

    #[test]
    fn ablations_change_schedule() {
        let base = NoCdParams::for_n(1 << 14, 1 << 10);
        let deep = NoCdParams {
            ablate_deep_shallow: true,
            ..base
        };
        assert_eq!(deep.shallow_k(), deep.k_deep());
        assert!(deep.t_luby() > base.t_luby());
        let nored = NoCdParams {
            ablate_no_commit_reduction: true,
            ..base
        };
        assert_eq!(nored.committed_degree(), 1 << 10);
        assert!(nored.committed_degree() > base.committed_degree());
        // Larger d_max for LowDegreeMIS ⇒ longer T_G.
        assert!(nored.t_g() > base.t_g());
    }

    #[test]
    fn serde_roundtrip() {
        let p = NoCdParams::for_n(100, 10);
        let json = serde_json::to_string(&p).unwrap();
        let back: NoCdParams = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }

    #[test]
    fn multichannel_params_scaling() {
        let p = MultichannelParams::for_n(64, 4, 0);
        assert_eq!(p.rank_bits(), 12); // 2·log2(64)
        assert_eq!(p.decay_window(), 7); // ⌈log2(128)⌉
                                         // γ·F²/(F−t)·log₂n = 6·4·6 with t = 0.
        assert_eq!(p.windows_per_block(), 144);
        assert_eq!(p.block_len(), 144 * 7);
        assert_eq!(p.phase_len(), 13 * p.block_len());
        assert_eq!(p.total_rounds(), p.phases() as u64 * p.phase_len());

        // The jamming overhead doubles each time t halves the clean
        // channels: F²/(F−t) is 4, 8, 16 for t = 0, 2, 3 at F = 4.
        let t2 = MultichannelParams::for_n(64, 4, 2);
        let t3 = MultichannelParams::for_n(64, 4, 3);
        assert_eq!(t2.windows_per_block(), 2 * p.windows_per_block());
        assert_eq!(t3.windows_per_block(), 4 * p.windows_per_block());

        // Single channel, no jamming: the F²/(F−t) factor degenerates to 1.
        let single = MultichannelParams::for_n(64, 1, 0);
        assert_eq!(single.windows_per_block(), 36); // 6·log2(64)

        // Paper preset is at least as conservative.
        let paper = MultichannelParams::paper(64, 4, 2);
        assert!(paper.rank_bits() >= t2.rank_bits());
        assert!(paper.windows_per_block() >= t2.windows_per_block());
    }

    #[test]
    #[should_panic(expected = "must be < channels")]
    fn multichannel_params_reject_full_jamming() {
        MultichannelParams::for_n(64, 2, 2);
    }

    #[test]
    fn multichannel_serde_roundtrip() {
        let p = MultichannelParams::for_n(128, 4, 1);
        let json = serde_json::to_string(&p).unwrap();
        let back: MultichannelParams = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}
