//! Deterministic graph families: paths, cycles, stars, cliques, grids, trees.

use crate::graph::{Graph, GraphBuilder};

/// The empty graph on `n` nodes (no edges). Every node is isolated and must
/// therefore join any MIS.
pub fn empty(n: usize) -> Graph {
    Graph::empty(n)
}

/// The path P_n: `0 - 1 - … - (n-1)`.
///
/// ```
/// let g = mis_graphs::generators::path(5);
/// assert_eq!(g.len(), 5);
/// assert_eq!(g.edge_count(), 4);
/// assert_eq!(g.neighbors(2), &[1, 3]);
/// ```
pub fn path(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for v in 1..n {
        b.add_edge(v - 1, v).expect("consecutive ids valid");
    }
    b.build()
}

/// The cycle C_n. For `n < 3` this degenerates to a path (no self-loops or
/// parallel edges are created).
pub fn cycle(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for v in 1..n {
        b.add_edge(v - 1, v).expect("consecutive ids valid");
    }
    if n >= 3 {
        b.add_edge(n - 1, 0).expect("ids valid");
    }
    b.build()
}

/// The star K_{1,n-1}: node 0 is the hub adjacent to all others. The extreme
/// Δ = n − 1 topology; stresses collision handling because every leaf
/// transmission contends at the hub.
pub fn star(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for v in 1..n {
        b.add_edge(0, v).expect("ids valid");
    }
    b.build()
}

/// The complete graph K_n. The unique MIS is any single node.
pub fn clique(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            b.add_edge(u, v).expect("ids valid");
        }
    }
    b.build()
}

/// The complete bipartite graph K_{a,b}: sides `0..a` and `a..a+b`.
pub fn complete_bipartite(a: usize, b: usize) -> Graph {
    let mut builder = GraphBuilder::new(a + b);
    for u in 0..a {
        for v in a..(a + b) {
            builder.add_edge(u, v).expect("ids valid");
        }
    }
    builder.build()
}

/// The `rows × cols` 2D grid graph with 4-neighborhoods. Node `(r, c)` has
/// id `r * cols + c`.
///
/// ```
/// let g = mis_graphs::generators::grid2d(3, 4);
/// assert_eq!(g.len(), 12);
/// // Interior nodes have all four neighbors; corners have two.
/// assert_eq!(g.degree(1 * 4 + 1), 4);
/// assert_eq!(g.degree(0), 2);
/// ```
pub fn grid2d(rows: usize, cols: usize) -> Graph {
    let mut b = GraphBuilder::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            let v = r * cols + c;
            if c + 1 < cols {
                b.add_edge(v, v + 1).expect("ids valid");
            }
            if r + 1 < rows {
                b.add_edge(v, v + cols).expect("ids valid");
            }
        }
    }
    b.build()
}

/// The complete binary tree on `n` nodes: node `v` has children `2v+1` and
/// `2v+2` when present.
pub fn binary_tree(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for v in 1..n {
        b.add_edge(v, (v - 1) / 2).expect("ids valid");
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_shape() {
        let g = path(5);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(2), 2);
        assert_eq!(g.max_degree(), 2);
        assert_eq!(path(0).len(), 0);
        assert_eq!(path(1).edge_count(), 0);
    }

    #[test]
    fn cycle_shape() {
        let g = cycle(5);
        assert_eq!(g.edge_count(), 5);
        for v in 0..5 {
            assert_eq!(g.degree(v), 2);
        }
        // Degenerate sizes don't create loops.
        assert_eq!(cycle(2).edge_count(), 1);
        assert_eq!(cycle(1).edge_count(), 0);
    }

    #[test]
    fn star_shape() {
        let g = star(6);
        assert_eq!(g.degree(0), 5);
        assert_eq!(g.max_degree(), 5);
        for v in 1..6 {
            assert_eq!(g.degree(v), 1);
        }
        assert_eq!(star(1).edge_count(), 0);
    }

    #[test]
    fn clique_shape() {
        let g = clique(6);
        assert_eq!(g.edge_count(), 15);
        assert_eq!(g.max_degree(), 5);
        assert_eq!(clique(0).len(), 0);
        assert_eq!(clique(1).edge_count(), 0);
    }

    #[test]
    fn complete_bipartite_shape() {
        let g = complete_bipartite(3, 4);
        assert_eq!(g.len(), 7);
        assert_eq!(g.edge_count(), 12);
        assert_eq!(g.degree(0), 4);
        assert_eq!(g.degree(3), 3);
        assert!(!g.has_edge(0, 1)); // same side
        assert!(g.has_edge(0, 3));
    }

    #[test]
    fn grid_shape() {
        let g = grid2d(3, 4);
        assert_eq!(g.len(), 12);
        // edges: 3*(4-1) horizontal + (3-1)*4 vertical = 9 + 8 = 17
        assert_eq!(g.edge_count(), 17);
        assert_eq!(g.max_degree(), 4);
        assert_eq!(g.degree(0), 2); // corner
        assert_eq!(grid2d(1, 5).edge_count(), 4); // degenerates to a path
    }

    #[test]
    fn binary_tree_shape() {
        let g = binary_tree(7);
        assert_eq!(g.edge_count(), 6);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(1), 3);
        assert_eq!(g.degree(6), 1);
    }
}
