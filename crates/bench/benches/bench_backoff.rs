//! E7 family: the backoff primitives on a star (hub receiver, leaf senders).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mis_graphs::generators;
use radio_mis::backoff::{RecEBackoff, SndEBackoff};
use radio_netsim::{
    Action, ChannelModel, Feedback, NodeRng, NodeStatus, Protocol, SimConfig, Simulator,
};

enum Node {
    Snd(SndEBackoff, bool),
    Rec(RecEBackoff, bool),
}
impl Protocol for Node {
    fn act(&mut self, round: u64, _rng: &mut NodeRng) -> Action {
        match self {
            Node::Snd(m, done) => {
                if m.is_done(round) {
                    *done = true;
                    Action::halt()
                } else {
                    m.act(round)
                }
            }
            Node::Rec(m, done) => {
                if m.is_done(round) {
                    *done = true;
                    Action::halt()
                } else {
                    m.act(round)
                }
            }
        }
    }
    fn feedback(&mut self, round: u64, fb: Feedback, _rng: &mut NodeRng) {
        if let Node::Rec(m, _) = self {
            m.feedback(round, fb);
        }
    }
    fn status(&self) -> NodeStatus {
        NodeStatus::OutMis
    }
    fn finished(&self) -> bool {
        match self {
            Node::Snd(_, d) | Node::Rec(_, d) => *d,
        }
    }
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("backoff");
    for d in [8usize, 128] {
        let g = generators::star(d + 1);
        group.bench_with_input(BenchmarkId::from_parameter(d), &d, |b, _| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let report = Simulator::new(&g, SimConfig::new(ChannelModel::NoCd).with_seed(seed))
                    .run(|v, rng| {
                        if v == 0 {
                            Node::Rec(RecEBackoff::new(0, 16, 1024, 1024), false)
                        } else {
                            Node::Snd(SndEBackoff::new(0, 16, 1024, rng), false)
                        }
                    });
                report.rounds
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
